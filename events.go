package sc

import "github.com/shortcircuit-db/sc/internal/obs"

// Event is one observation from a refresh, simulation or optimization run.
type Event = obs.Event

// EventKind enumerates event types.
type EventKind = obs.Kind

// Event kinds emitted by the Controller, the simulator and the optimizer.
const (
	// NodeStart: a node's refresh began.
	NodeStart = obs.NodeStart
	// NodeDone: a node's refresh finished (output produced).
	NodeDone = obs.NodeDone
	// Materialized: a node's output finished writing to external storage.
	Materialized = obs.Materialized
	// Evicted: a flagged output left the Memory Catalog.
	Evicted = obs.Evicted
	// IterationDone: one alternating-optimization iteration completed.
	IterationDone = obs.IterationDone
	// MemoryHighWater: the Memory Catalog reached a new peak.
	MemoryHighWater = obs.MemoryHighWater
	// EncodeDone: a node's output was compressed (WithEncoding); Bytes is
	// the raw size, Encoded the compressed size, Ratio their quotient,
	// Elapsed the encode time.
	EncodeDone = obs.EncodeDone
	// DecodeDone: a compressed Memory Catalog entry or chunked storage
	// file was decompressed in full to serve a read; Elapsed is the
	// decode time.
	DecodeDone = obs.DecodeDone
	// KernelDone: a node's plan ran (at least partly) on the
	// compressed-execution kernels (WithVectorized); Lowered,
	// ChunksSkipped, CodeFilteredRows and DecodesAvoided report what the
	// encoded-domain execution saved, Bytes the raw bytes it still
	// materialized.
	KernelDone = obs.KernelDone
)

// Observer receives the event stream of a refresh. Implementations must be
// safe for concurrent use when running with WithConcurrency(k > 1).
type Observer = obs.Observer

// ObserverFunc adapts a function to Observer.
type ObserverFunc = obs.Func

// MultiObserver fans events out to every non-nil observer, in order.
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }
