package sc

import (
	"time"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/exec"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/sim"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/table"
)

// MV declares one materialized view: a SQL statement whose result is
// materialized under Name. Supported SQL: SELECT-PROJECT-JOIN with
// GROUP BY/ORDER BY/LIMIT; inputs are other MVs (by name) or base tables
// on storage.
type MV struct {
	Name string
	SQL  string
}

// Store is the external-storage abstraction MVs materialize to.
type Store = storage.Store

// NewMemStore returns an in-process store for tests and examples.
func NewMemStore() *storage.MemStore { return storage.NewMemStore() }

// NewFSStore returns a filesystem-backed store rooted at dir.
func NewFSStore(dir string) (*storage.FSStore, error) { return storage.NewFSStore(dir) }

// NewThrottledStore wraps a store with a bandwidth/latency model so fast
// local disks reproduce storage-bound behaviour.
func NewThrottledStore(inner Store, readBW, writeBW float64, latency time.Duration) Store {
	return &storage.Throttled{Inner: inner, ReadBWBps: readBW, WriteBWBps: writeBW, Latency: latency}
}

// SaveTable writes a table to a store in S/C's columnar format.
func SaveTable(st Store, name string, t *table.Table) error {
	return exec.SaveTable(st, name, t)
}

// LoadTable reads a table written by SaveTable (or by a refresh run).
func LoadTable(st Store, name string) (*table.Table, error) {
	return exec.LoadTable(st, name)
}

// Runner executes MV refresh runs on the real engine.
type Runner struct {
	workload *exec.Workload
	graph    *dag.Graph
	store    Store
	memory   int64
}

// NewRunner builds a runner for the given MVs over a store holding the
// base tables. memory is the Memory Catalog budget in bytes. Dependencies
// are extracted from the SQL statements.
func NewRunner(mvs []MV, store Store, memory int64) (*Runner, error) {
	w := &exec.Workload{}
	for _, mv := range mvs {
		w.Nodes = append(w.Nodes, exec.NodeSpec{Name: mv.Name, SQL: mv.SQL})
	}
	g, _, err := w.BuildGraph()
	if err != nil {
		return nil, err
	}
	return &Runner{workload: w, graph: g, store: store, memory: memory}, nil
}

// Graph exposes the extracted dependency graph.
func (r *Runner) Graph() *dag.Graph { return r.graph }

// NodeMetrics is the per-node execution metadata of a run (§III-A).
type NodeMetrics = exec.NodeMetrics

// RunResult aggregates a refresh run.
type RunResult = exec.RunResult

// Run refreshes every MV following the plan, returning per-node metrics.
// A nil plan means the unoptimized baseline: topological order, nothing
// kept in memory.
func (r *Runner) Run(plan *Plan) (*RunResult, error) {
	if plan == nil {
		topo, err := r.graph.TopoSort()
		if err != nil {
			return nil, err
		}
		plan = core.NewPlan(topo)
	}
	ctl := &exec.Controller{Store: r.store, Mem: memcat.New(r.memory)}
	return ctl.Run(r.workload, r.graph, plan)
}

// ProblemFromMetrics derives an optimization problem from observed run
// metrics: sizes are observed output sizes and scores follow the §IV model
// under the device profile.
func (r *Runner) ProblemFromMetrics(res *RunResult, d DeviceProfile) *Problem {
	sizes := make([]int64, r.graph.Len())
	for _, nm := range res.Nodes {
		if id := r.graph.Lookup(nm.Name); id != dag.Invalid {
			sizes[id] = nm.OutputBytes
		}
	}
	p := &Problem{G: r.graph, Sizes: sizes, Memory: r.memory}
	EstimateScores(p, d)
	return p
}

// SimNode parameterizes one MV update for simulation.
type SimNode = sim.Node

// SimWorkload pairs a graph with simulation parameters.
type SimWorkload = sim.Workload

// SimConfig controls a simulated run.
type SimConfig = sim.Config

// SimResult is a simulated run outcome.
type SimResult = sim.Result

// Simulate runs the calibrated discrete-event simulator: serial node
// execution, background materialization sharing the write channel, Memory
// Catalog accounting. It reproduces the paper's large-scale experiments
// without moving real bytes.
func Simulate(w *SimWorkload, plan *Plan, cfg SimConfig) (*SimResult, error) {
	return sim.Run(w, plan, cfg)
}
