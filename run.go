package sc

import (
	"context"
	"time"

	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/exec"
	"github.com/shortcircuit-db/sc/internal/sim"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/table"
)

// MV declares one materialized view: a SQL statement whose result is
// materialized under Name. Supported SQL: SELECT-PROJECT-JOIN with
// GROUP BY/ORDER BY/LIMIT; inputs are other MVs (by name) or base tables
// on storage.
type MV struct {
	Name string
	SQL  string
}

// Store is the external-storage abstraction MVs materialize to.
type Store = storage.Store

// NewMemStore returns an in-process store for tests and examples.
func NewMemStore() *storage.MemStore { return storage.NewMemStore() }

// NewFSStore returns a filesystem-backed store rooted at dir.
func NewFSStore(dir string) (*storage.FSStore, error) { return storage.NewFSStore(dir) }

// NewThrottledStore wraps a store with a bandwidth/latency model so fast
// local disks reproduce storage-bound behaviour.
func NewThrottledStore(inner Store, readBW, writeBW float64, latency time.Duration) Store {
	return &storage.Throttled{Inner: inner, ReadBWBps: readBW, WriteBWBps: writeBW, Latency: latency}
}

// SaveTable writes a table to a store in S/C's columnar format.
func SaveTable(st Store, name string, t *table.Table) error {
	return exec.SaveTable(st, name, t)
}

// SaveTableChunked compresses and writes a table in the chunked columnar
// format. Base tables saved this way are scanned per chunk by vectorized
// sessions (WithVectorized) instead of paying a whole-table decode, and
// feed the compressed intermediate pipeline without a fallback.
func SaveTableChunked(st Store, name string, t *table.Table, opts EncodingOptions) error {
	return exec.SaveTableChunked(st, name, t, opts)
}

// LoadTable reads a table written by SaveTable (or by a refresh run).
func LoadTable(st Store, name string) (*table.Table, error) {
	return exec.LoadTable(st, name)
}

// NodeMetrics is the per-node execution metadata of a run (§III-A).
type NodeMetrics = exec.NodeMetrics

// RunResult aggregates a refresh run.
type RunResult = exec.RunResult

// Runner executes MV refresh runs on the real engine.
//
// Deprecated: use New, whose Refresher adds cancellation, observation,
// concurrency and the adaptive metadata loop. Runner remains as a thin
// wrapper.
type Runner struct {
	ref *Refresher
}

// NewRunner builds a runner for the given MVs over a store holding the
// base tables. memory is the Memory Catalog budget in bytes. Dependencies
// are extracted from the SQL statements.
//
// Deprecated: use New with WithMemory.
func NewRunner(mvs []MV, store Store, memory int64) (*Runner, error) {
	ref, err := New(mvs, store, WithMemory(memory))
	if err != nil {
		return nil, err
	}
	return &Runner{ref: ref}, nil
}

// Graph exposes the extracted dependency graph.
func (r *Runner) Graph() *dag.Graph { return r.ref.Graph() }

// Run refreshes every MV following the plan, returning per-node metrics.
// A nil plan means the unoptimized baseline: topological order, nothing
// kept in memory.
//
// Deprecated: use Refresher.Run or Refresher.RunPlan, which honor a
// context.
func (r *Runner) Run(plan *Plan) (*RunResult, error) {
	return r.ref.RunPlan(context.Background(), plan)
}

// ProblemFromMetrics derives an optimization problem from observed run
// metrics: sizes are observed output sizes and scores follow the §IV model
// under the device profile.
func (r *Runner) ProblemFromMetrics(res *RunResult, d DeviceProfile) *Problem {
	g := r.ref.Graph()
	sizes := make([]int64, g.Len())
	for _, nm := range res.Nodes {
		if id := g.Lookup(nm.Name); id != dag.Invalid {
			sizes[id] = nm.OutputBytes
		}
	}
	p := &Problem{G: g, Sizes: sizes, Memory: r.ref.cfg.memory}
	EstimateScores(p, d)
	return p
}

// SimNode parameterizes one MV update for simulation.
type SimNode = sim.Node

// SimWorkload pairs a graph with simulation parameters.
type SimWorkload = sim.Workload

// SimConfig controls a simulated run.
type SimConfig = sim.Config

// SimResult is a simulated run outcome.
type SimResult = sim.Result

// SimulatePlan runs the calibrated discrete-event simulator: serial node
// execution, background materialization sharing the write channel, Memory
// Catalog accounting. It reproduces the paper's large-scale experiments
// without moving real bytes. The context is honored between simulated
// nodes; cfg.Observer receives the simulated event stream.
func SimulatePlan(ctx context.Context, w *SimWorkload, plan *Plan, cfg SimConfig) (*SimResult, error) {
	return sim.Run(ctx, w, plan, cfg)
}

// Simulate runs the simulator without a context.
//
// Deprecated: use SimulatePlan (or Refresher.Simulate for a session).
func Simulate(w *SimWorkload, plan *Plan, cfg SimConfig) (*SimResult, error) {
	return SimulatePlan(context.Background(), w, plan, cfg)
}
