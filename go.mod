module github.com/shortcircuit-db/sc

go 1.24
