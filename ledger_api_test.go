package sc_test

import (
	"context"
	"path/filepath"
	"testing"

	sc "github.com/shortcircuit-db/sc"
)

// TestWithLedgerRecordsHistory pins the library facade: WithLedger records
// every Refresh into the run ledger, History returns them newest first,
// Baselines exposes the learned per-node means, and the NDJSON file is
// replayed by a fresh session.
func TestWithLedgerRecordsHistory(t *testing.T) {
	store := sc.NewMemStore()
	baseTables(t, store)
	path := filepath.Join(t.TempDir(), "runs.ndjson")
	ref, err := sc.New(chainMVs(), store, sc.WithMemory(1<<20), sc.WithLedger(path))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ref.Refresh(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	hist := ref.History(sc.RunFilter{})
	if len(hist) != 3 {
		t.Fatalf("history = %d runs, want 3", len(hist))
	}
	latest := hist[0]
	if latest.Outcome != "succeeded" || len(latest.Nodes) != 4 {
		t.Fatalf("latest run: %+v", latest)
	}
	if latest.WallSeconds <= 0 || latest.TraceID == "" {
		t.Fatalf("summary missing trace-derived fields: %+v", latest)
	}
	bs := ref.Baselines()
	if len(bs) != 4 {
		t.Fatalf("baselines = %+v, want all 4 nodes", bs)
	}
	for _, b := range bs {
		if b.Samples != 3 {
			t.Fatalf("baseline %s samples = %d, want 3", b.Node, b.Samples)
		}
	}
	// Limit filter narrows the view.
	if got := ref.History(sc.RunFilter{Limit: 1}); len(got) != 1 || got[0].RunID != latest.RunID {
		t.Fatalf("limit filter: %+v", got)
	}

	// A fresh session over the same file replays the history.
	ref2, err := sc.New(chainMVs(), store, sc.WithMemory(1<<20), sc.WithLedger(path))
	if err != nil {
		t.Fatal(err)
	}
	if got := ref2.History(sc.RunFilter{}); len(got) != 3 {
		t.Fatalf("replayed history = %d runs, want 3", len(got))
	}
	if bs := ref2.Baselines(); len(bs) != 4 || bs[0].Samples != 3 {
		t.Fatalf("replayed baselines: %+v", bs)
	}

	// Without the option, history is simply absent.
	ref3, err := sc.New(chainMVs(), store, sc.WithMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref3.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := ref3.History(sc.RunFilter{}); got != nil {
		t.Fatalf("no-ledger session returned history: %+v", got)
	}
}
