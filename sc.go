// Package sc is Short-Circuit (S/C): a system that speeds up the refresh of
// a DAG of materialized views under a bounded Memory Catalog, reproducing
// "S/C: Speeding up Data Materialization with Bounded Memory" (ICDE 2023).
//
// Given MV definitions with acyclic dependencies, S/C jointly optimizes
// (1) the MV refresh order and (2) which intermediate results to keep
// temporarily in memory, so downstream updates read hot inputs at memory
// speed while materialization to external storage proceeds in the
// background. All MVs are still fully materialized, so SLAs are unaffected.
//
// The main entry point is the Refresher, a long-lived session that unifies
// run → observe → re-optimize for a recurring pipeline:
//
//	ref, err := sc.New(mvs, store,
//		sc.WithMemory(1<<30),
//		sc.WithConcurrency(4),
//		sc.WithObserver(sc.ObserverFunc(func(e sc.Event) { log.Println(e.Kind, e.Node) })),
//	)
//	...
//	res, err := ref.Refresh(ctx) // run, record metadata, re-optimize
//
// Refreshes honor ctx cancellation and deadlines mid-run. Flagging and
// ordering strategies are pluggable: implement Selector or Orderer,
// register them with RegisterSelector/RegisterOrderer, and pass them via
// WithFlagSelector/WithOrderer.
//
// For pure optimization problems (no SQL, no storage) build a Problem with
// GraphBuilder and call Solve:
//
//	g := sc.NewGraphBuilder()
//	a := g.Node("mv_a", sizeA, scoreA)
//	b := g.Node("mv_b", sizeB, scoreB)
//	g.Edge(a, b) // mv_b reads mv_a
//	plan, stats, err := sc.Solve(ctx, g.Problem(memoryBudget))
//
// The plan's Order and FlaggedIDs drive either the real Controller
// (Refresher) or the calibrated simulator (Refresher.Simulate, SimulatePlan).
package sc

import (
	"context"
	"time"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/flagsel"
	"github.com/shortcircuit-db/sc/internal/opt"
	"github.com/shortcircuit-db/sc/internal/order"
)

// NodeID identifies a node in a workload graph.
type NodeID = dag.NodeID

// Problem is an S/C Opt instance: dependency graph, per-node output sizes,
// per-node speedup scores, and the Memory Catalog budget.
type Problem = core.Problem

// Plan is an optimized refresh plan: an execution order plus the flagged
// set kept in the Memory Catalog.
type Plan = core.Plan

// DeviceProfile describes storage and memory performance for score
// estimation and simulation.
type DeviceProfile = costmodel.DeviceProfile

// EncodingOptions configures the compressed columnar subsystem enabled by
// WithEncoding: per-column codec selection mode, chunking and sampling.
// The zero value selects codecs automatically with default chunking.
type EncodingOptions = encoding.Options

// EncodingMode selects how codecs are chosen; see EncodingAuto and
// EncodingRaw.
type EncodingMode = encoding.Mode

// Encoding modes.
const (
	// EncodingAuto samples each column chunk and picks the smallest of the
	// applicable codecs (dictionary, run-length, delta + bit-packing,
	// scaled-decimal floats, raw).
	EncodingAuto = encoding.ModeAuto
	// EncodingRaw stores every chunk uncompressed in the v2 format; useful
	// as an explicit baseline in experiments.
	EncodingRaw = encoding.ModeRaw
)

// PaperProfile returns the device profile of the paper's evaluation
// environment (§VI-A), with bandwidths expressed as effective table-I/O
// throughput.
func PaperProfile() DeviceProfile { return costmodel.PaperProfile() }

// Selector chooses which node outputs to keep in the Memory Catalog for a
// fixed execution order (S/C Opt Nodes, Problem 2 of the paper). Built-in
// implementations are available via SelectorByName: "mkp" (the paper's
// SimplifiedMKP, the default), "greedy", "random", "ratio".
type Selector = flagsel.Selector

// Orderer produces a topological execution order given the flagged set
// (S/C Opt Order, Problem 3 of the paper). Built-in implementations are
// available via OrdererByName: "ma-dfs" (the paper's, the default), "dfs",
// "kahn", "sa", "separator".
type Orderer = order.Orderer

// RegisterSelector makes a custom flagging strategy available under name
// (case-insensitive) to SelectorByName and to anything that looks
// strategies up by name (cmd/scopt JSON inputs, config files). The factory
// receives the seed passed at lookup. It panics if name is empty or already
// registered.
func RegisterSelector(name string, factory func(seed int64) Selector) {
	flagsel.Register(name, factory)
}

// RegisterOrderer makes a custom ordering strategy available under name
// (case-insensitive). The factory receives the seed passed at lookup. It
// panics if name is empty or already registered.
func RegisterOrderer(name string, factory func(seed int64) Orderer) {
	order.Register(name, factory)
}

// SelectorByName returns the registered selector, seeding randomized ones.
func SelectorByName(name string, seed int64) (Selector, error) {
	return flagsel.New(name, seed)
}

// OrdererByName returns the registered orderer, seeding randomized ones.
func OrdererByName(name string, seed int64) (Orderer, error) {
	return order.New(name, seed)
}

// SelectorNames lists registered selector names, sorted.
func SelectorNames() []string { return flagsel.Names() }

// OrdererNames lists registered orderer names, sorted.
func OrdererNames() []string { return order.Names() }

// GraphBuilder assembles a Problem incrementally.
type GraphBuilder struct {
	g      *dag.Graph
	sizes  []int64
	scores []float64
}

// NewGraphBuilder returns an empty builder.
func NewGraphBuilder() *GraphBuilder {
	return &GraphBuilder{g: dag.New()}
}

// Node adds an MV update with its intermediate-table size in bytes and its
// speedup score in seconds (use EstimateScores to derive scores from sizes
// and a device profile).
func (b *GraphBuilder) Node(name string, sizeBytes int64, score float64) NodeID {
	id := b.g.AddNode(name)
	b.sizes = append(b.sizes, sizeBytes)
	b.scores = append(b.scores, score)
	return id
}

// Edge declares that child consumes parent's output.
func (b *GraphBuilder) Edge(parent, child NodeID) error {
	return b.g.AddEdge(parent, child)
}

// Problem finalizes the builder with the given Memory Catalog size.
func (b *GraphBuilder) Problem(memory int64) *Problem {
	return &Problem{
		G:      b.g,
		Sizes:  append([]int64(nil), b.sizes...),
		Scores: append([]float64(nil), b.scores...),
		Memory: memory,
	}
}

// EstimateScores fills the problem's scores from its sizes and a device
// profile using the paper's §IV formula: per-child read savings plus the
// overlapped write saving.
func EstimateScores(p *Problem, d DeviceProfile) {
	p.Scores = costmodel.Scores(d, p.G, p.Sizes)
}

// Stats reports optimizer behaviour.
type Stats struct {
	Iterations int
	Score      float64       // total speedup score of flagged nodes (seconds)
	PeakMemory int64         // peak Memory Catalog bytes of the plan
	Elapsed    time.Duration // optimization wall-clock
	StopReason string
}

// Solve solves S/C Opt (Problem 1 of the paper) and returns a feasible
// plan: a topological execution order and a flagged set whose peak resident
// size never exceeds the Memory Catalog budget. The context is honored
// between alternating-optimization iterations. Recognized options:
// WithFlagSelector, WithOrderer, WithSeed, WithMaxIterations, WithObserver
// (IterationDone events).
func Solve(ctx context.Context, p *Problem, opts ...Option) (*Plan, *Stats, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, nil, err
	}
	sel, ord, err := cfg.algorithms()
	if err != nil {
		return nil, nil, err
	}
	pl, st, err := opt.Solve(ctx, p, opt.Options{
		Selector:      sel,
		Orderer:       ord,
		MaxIterations: cfg.maxIterations,
		Observer:      cfg.observer,
	})
	if err != nil {
		return nil, nil, err
	}
	return pl, &Stats{
		Iterations: st.Iterations,
		Score:      st.Score,
		PeakMemory: st.PeakMemory,
		Elapsed:    st.Elapsed,
		StopReason: st.StopReason,
	}, nil
}

// Options configures Optimize.
//
// Deprecated: use Solve with functional options.
type Options struct {
	// Selector solves S/C Opt Nodes; nil means the paper's SimplifiedMKP.
	// Use SelectorByName to resolve registered algorithms.
	Selector Selector
	// Orderer solves S/C Opt Order; nil means the paper's MA-DFS.
	// Use OrdererByName to resolve registered algorithms.
	Orderer Orderer
	// Seed is retained for compatibility; seeds now feed SelectorByName /
	// OrdererByName directly.
	Seed int64
	// MaxIterations caps alternating optimization (0 = default).
	MaxIterations int
}

// Optimize solves S/C Opt without a context.
//
// Deprecated: use Solve, which honors cancellation and functional options.
func Optimize(p *Problem, o Options) (*Plan, *Stats, error) {
	opts := []Option{WithSeed(o.Seed), WithMaxIterations(o.MaxIterations)}
	if o.Selector != nil {
		opts = append(opts, WithFlagSelector(o.Selector))
	}
	if o.Orderer != nil {
		opts = append(opts, WithOrderer(o.Orderer))
	}
	return Solve(context.Background(), p, opts...)
}

// Feasible reports whether the plan's flagged set fits in the problem's
// Memory Catalog at every step of its order.
func Feasible(p *Problem, pl *Plan) bool { return core.Feasible(p, pl) }

// PeakMemory returns the plan's peak Memory Catalog usage in bytes under
// the unit-time model of §IV.
func PeakMemory(p *Problem, pl *Plan) int64 { return core.PeakMemoryUsage(p, pl) }
