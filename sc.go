// Package sc is Short-Circuit (S/C): a system that speeds up the refresh of
// a DAG of materialized views under a bounded Memory Catalog, reproducing
// "S/C: Speeding up Data Materialization with Bounded Memory" (ICDE 2023).
//
// Given MV definitions with acyclic dependencies, S/C jointly optimizes
// (1) the MV refresh order and (2) which intermediate results to keep
// temporarily in memory, so downstream updates read hot inputs at memory
// speed while materialization to external storage proceeds in the
// background. All MVs are still fully materialized, so SLAs are unaffected.
//
// Typical use:
//
//	g := sc.NewGraphBuilder()
//	a := g.Node("mv_a", sizeA, scoreA)
//	b := g.Node("mv_b", sizeB, scoreB)
//	g.Edge(a, b) // mv_b reads mv_a
//	plan, stats, err := sc.Optimize(g.Problem(memoryBudget), sc.Options{})
//
// The plan's Order and FlaggedIDs drive either the real SQL controller
// (sc.Runner) or the calibrated simulator (sc.Simulate).
package sc

import (
	"time"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/flagsel"
	"github.com/shortcircuit-db/sc/internal/opt"
	"github.com/shortcircuit-db/sc/internal/order"
)

// NodeID identifies a node in a workload graph.
type NodeID = dag.NodeID

// Problem is an S/C Opt instance: dependency graph, per-node output sizes,
// per-node speedup scores, and the Memory Catalog budget.
type Problem = core.Problem

// Plan is an optimized refresh plan: an execution order plus the flagged
// set kept in the Memory Catalog.
type Plan = core.Plan

// DeviceProfile describes storage and memory performance for score
// estimation and simulation.
type DeviceProfile = costmodel.DeviceProfile

// PaperProfile returns the device profile of the paper's evaluation
// environment (§VI-A), with bandwidths expressed as effective table-I/O
// throughput.
func PaperProfile() DeviceProfile { return costmodel.PaperProfile() }

// GraphBuilder assembles a Problem incrementally.
type GraphBuilder struct {
	g      *dag.Graph
	sizes  []int64
	scores []float64
}

// NewGraphBuilder returns an empty builder.
func NewGraphBuilder() *GraphBuilder {
	return &GraphBuilder{g: dag.New()}
}

// Node adds an MV update with its intermediate-table size in bytes and its
// speedup score in seconds (use EstimateScores to derive scores from sizes
// and a device profile).
func (b *GraphBuilder) Node(name string, sizeBytes int64, score float64) NodeID {
	id := b.g.AddNode(name)
	b.sizes = append(b.sizes, sizeBytes)
	b.scores = append(b.scores, score)
	return id
}

// Edge declares that child consumes parent's output.
func (b *GraphBuilder) Edge(parent, child NodeID) error {
	return b.g.AddEdge(parent, child)
}

// Problem finalizes the builder with the given Memory Catalog size.
func (b *GraphBuilder) Problem(memory int64) *Problem {
	return &Problem{
		G:      b.g,
		Sizes:  append([]int64(nil), b.sizes...),
		Scores: append([]float64(nil), b.scores...),
		Memory: memory,
	}
}

// EstimateScores fills the problem's scores from its sizes and a device
// profile using the paper's §IV formula: per-child read savings plus the
// overlapped write saving.
func EstimateScores(p *Problem, d DeviceProfile) {
	p.Scores = costmodel.Scores(d, p.G, p.Sizes)
}

// Options configures Optimize. The zero value runs the paper's algorithm:
// SimplifiedMKP flagging + MA-DFS ordering under alternating optimization.
type Options struct {
	// FlagAlgorithm: "mkp" (default), "greedy", "random", "ratio".
	FlagAlgorithm string
	// OrderAlgorithm: "ma-dfs" (default), "dfs", "kahn", "sa", "separator".
	OrderAlgorithm string
	// Seed feeds the randomized algorithms.
	Seed int64
	// MaxIterations caps alternating optimization (0 = default).
	MaxIterations int
}

// Stats reports optimizer behaviour.
type Stats struct {
	Iterations int
	Score      float64       // total speedup score of flagged nodes (seconds)
	PeakMemory int64         // peak Memory Catalog bytes of the plan
	Elapsed    time.Duration // optimization wall-clock
	StopReason string
}

// Optimize solves S/C Opt (Problem 1 of the paper) and returns a feasible
// plan: a topological execution order and a flagged set whose peak resident
// size never exceeds the Memory Catalog budget.
func Optimize(p *Problem, o Options) (*Plan, *Stats, error) {
	var sel flagsel.Selector
	var ord order.Orderer
	var err error
	if o.FlagAlgorithm != "" {
		sel, err = flagsel.ByName(o.FlagAlgorithm, o.Seed)
		if err != nil {
			return nil, nil, err
		}
	}
	if o.OrderAlgorithm != "" {
		ord, err = order.ByName(o.OrderAlgorithm, o.Seed)
		if err != nil {
			return nil, nil, err
		}
	}
	pl, st, err := opt.Solve(p, opt.Options{
		Selector:      sel,
		Orderer:       ord,
		MaxIterations: o.MaxIterations,
	})
	if err != nil {
		return nil, nil, err
	}
	return pl, &Stats{
		Iterations: st.Iterations,
		Score:      st.Score,
		PeakMemory: st.PeakMemory,
		Elapsed:    st.Elapsed,
		StopReason: st.StopReason,
	}, nil
}

// Feasible reports whether the plan's flagged set fits in the problem's
// Memory Catalog at every step of its order.
func Feasible(p *Problem, pl *Plan) bool { return core.Feasible(p, pl) }

// PeakMemory returns the plan's peak Memory Catalog usage in bytes under
// the unit-time model of §IV.
func PeakMemory(p *Problem, pl *Plan) int64 { return core.PeakMemoryUsage(p, pl) }
