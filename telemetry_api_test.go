package sc_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	sc "github.com/shortcircuit-db/sc"
)

// TestWithTelemetryTracesRun exercises the facade tracing path: a traced
// session assembles a trace per run, correlates metrics observations with
// the run ID, and exports the spans through a file exporter.
func TestWithTelemetryTracesRun(t *testing.T) {
	store := sc.NewMemStore()
	baseTables(t, store)
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	exp, err := sc.NewFileTraceExporter(path)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sc.New(chainMVs(), store, sc.WithTelemetry(exp))
	if err != nil {
		t.Fatal(err)
	}
	if ref.LastTrace() != nil {
		t.Fatal("LastTrace non-nil before any run")
	}
	if _, err := ref.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}

	tr := ref.LastTrace()
	if tr == nil {
		t.Fatal("no trace after a traced run")
	}
	if tr.RunID != "run-000001" {
		t.Fatalf("run ID %q", tr.RunID)
	}
	if len(tr.Spans) != 5 { // root + m1..m4
		t.Fatalf("%d spans, want 5", len(tr.Spans))
	}
	root := tr.Spans[0]
	if root.Name != "refresh" || root.StrAttr("sc.run_id") != tr.RunID {
		t.Fatalf("root span %q attrs %v", root.Name, root.Attrs)
	}
	nodes := map[string]bool{}
	for _, sp := range tr.Spans[1:] {
		if sp.Parent != root.SpanID {
			t.Fatalf("span %q not parented under root", sp.Name)
		}
		nodes[sp.StrAttr("sc.node")] = true
	}
	for _, mv := range []string{"m1", "m2", "m3", "m4"} {
		if !nodes[mv] {
			t.Fatalf("no span for %q (have %v)", mv, nodes)
		}
	}

	// The chain pipeline's critical path is the whole chain, and the chain
	// accounts for (nearly) all of the wall time.
	cp := tr.CriticalPath
	if strings.Join(cp.Chain, ",") != "m1,m2,m3,m4" {
		t.Fatalf("chain %v", cp.Chain)
	}
	if cp.Coverage < 0.9 || cp.Coverage > 1.0001 {
		t.Fatalf("coverage %v", cp.Coverage)
	}

	// Metrics observations carry the same run ID.
	if o, ok := ref.Metrics().Latest("m1"); !ok || o.RunID != tr.RunID {
		t.Fatalf("observation run ID %q, want %q", o.RunID, tr.RunID)
	}

	// A second run gets the next run ID.
	if _, err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := ref.LastTrace().RunID; got != "run-000002" {
		t.Fatalf("second run ID %q", got)
	}

	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d exported payloads, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"resourceSpans"`) || !strings.Contains(lines[0], "run-000001") {
		t.Fatalf("first payload: %.120s", lines[0])
	}
}

func TestLastTraceNilWithoutTelemetry(t *testing.T) {
	store := sc.NewMemStore()
	baseTables(t, store)
	ref, err := sc.New(chainMVs(), store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ref.LastTrace() != nil {
		t.Fatal("LastTrace non-nil without WithTelemetry")
	}
}
