package sc_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	sc "github.com/shortcircuit-db/sc"
)

// slowReadStore injects a settable latency into reads of one object — the
// library-facade twin of the gateway's synthetic node slowdown.
type slowReadStore struct {
	sc.Store
	target  string
	delayNs atomic.Int64
}

func (s *slowReadStore) Read(name string) ([]byte, error) {
	if ns := s.delayNs.Load(); ns > 0 && strings.Contains(name, s.target) {
		time.Sleep(time.Duration(ns))
	}
	return s.Store.Read(name)
}

// TestRefresherExplainAndAlerts pins the facade half of the introspection
// layer: Explain reports a decision with a flip condition for every MV
// before any refresh has run, and WithAlerts pushes an induced wall
// regression to the webhook exactly once inside the dedup cooldown.
func TestRefresherExplainAndAlerts(t *testing.T) {
	var (
		hookMu sync.Mutex
		bodies []string
	)
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		hookMu.Lock()
		bodies = append(bodies, string(b))
		hookMu.Unlock()
	}))
	defer hook.Close()

	store := sc.NewMemStore()
	baseTables(t, store)
	ds := &slowReadStore{Store: store, target: "events"}
	ref, err := sc.New(chainMVs(), ds,
		sc.WithMemory(1<<20),
		sc.WithAlerts(hook.URL, time.Minute),
	)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := ref.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 4 || len(rep.Decisions) != 4 {
		t.Fatalf("explain covers %d/%d nodes, want 4", len(rep.Decisions), rep.Nodes)
	}
	var flagged int
	for _, d := range rep.Decisions {
		if d.Class == "" || d.Flip == "" {
			t.Fatalf("decision %s missing class or flip: %+v", d.Node, d)
		}
		if d.Flagged {
			flagged++
		}
	}
	if flagged != rep.FlaggedCount {
		t.Fatalf("flagged count %d != %d flagged decisions", rep.FlaggedCount, flagged)
	}

	// Three healthy refreshes learn per-node wall baselines; two slowed
	// ones regress. Only the first may alert — the second lands inside the
	// cooldown window.
	for i := 0; i < 3; i++ {
		if _, err := ref.Refresh(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ds.delayNs.Store(int64(150 * time.Millisecond))
	for i := 0; i < 2; i++ {
		if _, err := ref.Refresh(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ds.delayNs.Store(0)
	if err := ref.Close(); err != nil { // drains the alert queue
		t.Fatal(err)
	}

	hookMu.Lock()
	got := append([]string(nil), bodies...)
	hookMu.Unlock()
	var wall int
	for _, b := range got {
		if strings.Contains(b, `"kind":"wall_regression"`) {
			wall++
			if !strings.Contains(b, `"node":"m1"`) {
				t.Fatalf("regression alert names wrong node: %s", b)
			}
		}
	}
	if wall != 1 {
		t.Fatalf("wall_regression deliveries = %d, want exactly 1 (bodies: %q)", wall, got)
	}
	st := ref.AlertStats()
	if st.Delivered != int64(len(got)) || st.Delivered == 0 {
		t.Fatalf("stats %+v disagree with %d webhook bodies", st, len(got))
	}
}

// TestWithAlertsValidation covers the option's error path.
func TestWithAlertsValidation(t *testing.T) {
	store := sc.NewMemStore()
	baseTables(t, store)
	if _, err := sc.New(chainMVs(), store, sc.WithMemory(1<<20), sc.WithAlerts("", 0)); err == nil {
		t.Fatal("empty webhook URL accepted")
	}
}
