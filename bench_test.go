// Benchmarks regenerating the paper's tables and figures (§VI). Each
// Benchmark<Exp> drives the same harness as `scbench <exp>`; the
// per-iteration work is one full regeneration of that experiment's data,
// so -benchtime=1x reproduces the artifact exactly once:
//
//	go test -bench=. -benchmem -benchtime=1x
package sc_test

import (
	"context"
	"io"
	"testing"

	sc "github.com/shortcircuit-db/sc"
	"github.com/shortcircuit-db/sc/internal/bench"
	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/sim"
	"github.com/shortcircuit-db/sc/internal/tpcds"
	"github.com/shortcircuit-db/sc/internal/wlgen"
)

// BenchmarkFig3Breakdown regenerates the Figure 3 motivation breakdown.
func BenchmarkFig3Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Workloads regenerates the Table III workload summary.
func BenchmarkTable3Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9EndToEnd regenerates Figure 9: six methods × five workloads
// on both 100GB datasets.
func BenchmarkFig9EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig9(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Scales regenerates Figure 10: speedup across 10GB–1TB.
func BenchmarkFig10Scales(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig10(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Memory regenerates Figure 11: the Memory Catalog sweep.
func BenchmarkFig11Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig11(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Latency regenerates Table IV: read/compute/query latency
// by Memory Catalog size.
func BenchmarkTable4Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table4(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Ablation regenerates Figure 12: the subproblem-solution
// ablation.
func BenchmarkFig12Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig12(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Cluster regenerates Table V: 1–5 worker scaling.
func BenchmarkTable5Cluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13OptTime regenerates Figure 13: optimizer runtime vs DAG
// size for the six method combinations (reduced DAG count per iteration).
func BenchmarkFig13OptTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig13(io.Discard, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14Sweeps regenerates Figure 14: savings vs DAG generation
// parameters (reduced DAG count per iteration).
func BenchmarkFig14Sweeps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig14(io.Discard, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealEngine runs the real-engine validation: generate data, run
// the SQL pipeline unoptimized and with S/C on throttled storage, verify
// identical outputs.
func BenchmarkRealEngine(b *testing.B) {
	cfg := bench.DefaultRealConfig()
	cfg.ScaleFactor = 0.5
	for i := 0; i < b.N; i++ {
		if err := bench.Real(context.Background(), io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the optimization core ---

// BenchmarkOptimize100Nodes measures one full alternating optimization of
// a 100-node synthetic DAG (the paper reports ≈20ms for MKP+MA-DFS).
func BenchmarkOptimize100Nodes(b *testing.B) {
	gen, err := wlgen.Generate(wlgen.Params{Nodes: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	p := gen.Problem(2<<30, costmodel.PaperProfile())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sc.Optimize(p, sc.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateWorkload measures one simulated refresh of the I/O 1
// workload at 100GB.
func BenchmarkSimulateWorkload(b *testing.B) {
	d := costmodel.PaperProfile()
	w, p, err := tpcds.Build(tpcds.IO1, tpcds.ScaleBytes(100), tpcds.Regular(),
		tpcds.MemoryForFraction(tpcds.ScaleBytes(100), 0.016), d)
	if err != nil {
		b.Fatal(err)
	}
	order, err := w.G.TopoSort()
	if err != nil {
		b.Fatal(err)
	}
	plan := core.NewPlan(order)
	cfg := sim.Config{Device: d, Memory: p.Memory}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(context.Background(), w, plan, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblateDecisions regenerates the DESIGN.md design-decision
// ablations (write-channel model, termination metric, order choice).
func BenchmarkAblateDecisions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Ablate(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
