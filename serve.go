package sc

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"

	"github.com/shortcircuit-db/sc/internal/gateway"
)

// Gateway is the multi-tenant refresh gateway: a server hosting many named
// pipelines over one shared Memory Catalog budget, with per-tenant slices
// and footprint-reserving admission control. Build one with NewGateway,
// mount Gateway.Handler on any HTTP server (or use Serve), and drive it
// over the /v1 API or programmatically via Register/Trigger/QueryMV.
type Gateway = gateway.Server

// GatewayConfig configures NewGateway and Serve; GlobalBudget (the shared
// catalog capacity in bytes) is the only required field.
type GatewayConfig = gateway.Config

// GatewayPipeline registers one pipeline: its MV DAG, tenant, budget
// slice, refresh interval and seed data.
type GatewayPipeline = gateway.PipelineSpec

// GatewayMV declares one MV of a gateway pipeline.
type GatewayMV = gateway.MVSpec

// GatewayRun is a triggered refresh; wait on Done and read Status.
type GatewayRun = gateway.Run

// GatewayRunStatus is a refresh run's externally visible state.
type GatewayRunStatus = gateway.RunStatus

// GatewayStats is the server-wide admission and budget snapshot.
type GatewayStats = gateway.Stats

// ErrRefreshQueueFull is returned by Gateway triggers when the bounded
// admission queue is at capacity (HTTP 429 on the wire).
var ErrRefreshQueueFull = gateway.ErrQueueFull

// NewGateway builds a refresh gateway and starts its scheduler. Close it
// when done.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	return gateway.NewServer(cfg)
}

// TPCDSPipeline returns a registration for the built-in TPC-DS-like real
// workload seeded at the given scale factor, with the compressed path
// enabled.
func TPCDSPipeline(name, tenant string, scaleFactor float64) GatewayPipeline {
	return gateway.TPCDSSpec(name, tenant, scaleFactor)
}

// Serve runs a refresh gateway over HTTP on addr until ctx is canceled,
// then shuts down gracefully: in-flight requests get a short drain window
// and running refreshes are canceled, which releases their reservations.
// It returns the error that stopped the listener, or nil on a clean
// ctx-driven shutdown.
func Serve(ctx context.Context, addr string, cfg GatewayConfig) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveListener(ctx, ln, cfg, nil)
}

// serveListener is the testable core of Serve: ready (optional) receives
// the bound address once the gateway is accepting connections.
func serveListener(ctx context.Context, ln net.Listener, cfg GatewayConfig, ready chan<- net.Addr) error {
	g, err := gateway.NewServer(cfg)
	if err != nil {
		ln.Close()
		return err
	}
	srv := &http.Server{Handler: g.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if ready != nil {
		ready <- ln.Addr()
	}
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
		g.Close()
		<-errc
		return nil
	case err := <-errc:
		g.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
