package sc_test

import (
	"context"
	"sync"
	"testing"

	sc "github.com/shortcircuit-db/sc"
)

// TestWithEncodingEndToEnd runs a full refresh session with the compressed
// columnar subsystem on: outputs must match the uncompressed session
// row-for-row, the event stream must carry encode/decode telemetry, and the
// optimizer's problem must weigh nodes at their compressed footprint.
func TestWithEncodingEndToEnd(t *testing.T) {
	run := func(opts ...sc.Option) (*sc.RunResult, *sc.Refresher, sc.Store) {
		store := sc.NewMemStore()
		baseTables(t, store)
		ref, err := sc.New(chainMVs(), store, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ref.Refresh(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res, ref, store
	}

	var mu sync.Mutex
	var encodes, decodes int
	obs := sc.ObserverFunc(func(e sc.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e.Kind {
		case sc.EncodeDone:
			encodes++
			if e.Ratio <= 0 || e.Encoded <= 0 {
				t.Errorf("EncodeDone with Ratio=%f Encoded=%d", e.Ratio, e.Encoded)
			}
		case sc.DecodeDone:
			decodes++
		}
	})

	_, refPlain, storePlain := run(sc.WithMemory(1 << 20))
	_, refComp, storeComp := run(sc.WithMemory(1<<20), sc.WithEncoding(sc.EncodingOptions{}), sc.WithObserver(obs))

	for _, mv := range []string{"m1", "m2", "m3", "m4"} {
		a, err := sc.LoadTable(storePlain, mv)
		if err != nil {
			t.Fatalf("load %s (plain): %v", mv, err)
		}
		b, err := sc.LoadTable(storeComp, mv)
		if err != nil {
			t.Fatalf("load %s (encoded): %v", mv, err)
		}
		if a.NumRows() != b.NumRows() || !a.Schema.Equal(b.Schema) {
			t.Fatalf("%s: shape differs with encoding on", mv)
		}
		for i := 0; i < a.NumRows(); i++ {
			ra, rb := a.Row(i), b.Row(i)
			for c := range ra {
				if ra[c] != rb[c] {
					t.Fatalf("%s row %d: %v vs %v", mv, i, ra[c], rb[c])
				}
			}
		}
	}

	mu.Lock()
	if encodes != len(chainMVs()) {
		t.Fatalf("EncodeDone events = %d, want %d", encodes, len(chainMVs()))
	}
	mu.Unlock()

	// The optimizer must see compressed sizes: big nodes shrink, and even
	// tiny ones (a COUNT(*) result) only grow by bounded framing overhead.
	const framing = 128
	pPlain, pComp := refPlain.Problem(), refComp.Problem()
	smaller := false
	for i := range pPlain.Sizes {
		if pComp.Sizes[i] > pPlain.Sizes[i]+framing {
			t.Fatalf("node %d: compressed size %d far above raw %d", i, pComp.Sizes[i], pPlain.Sizes[i])
		}
		if pComp.Sizes[i] < pPlain.Sizes[i] {
			smaller = true
		}
	}
	if !smaller {
		t.Fatal("no node got smaller with encoding on")
	}
}

// TestWithEncodingRawMode keeps the v2 format but disables compression.
func TestWithEncodingRawMode(t *testing.T) {
	store := sc.NewMemStore()
	baseTables(t, store)
	ref, err := sc.New(chainMVs(), store,
		sc.WithMemory(1<<20),
		sc.WithEncoding(sc.EncodingOptions{Mode: sc.EncodingRaw}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.LoadTable(store, "m1"); err != nil {
		t.Fatalf("raw-mode v2 object unreadable: %v", err)
	}
}
