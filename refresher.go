package sc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shortcircuit-db/sc/internal/chunkio"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/exec"
	"github.com/shortcircuit-db/sc/internal/introspect"
	"github.com/shortcircuit-db/sc/internal/introspect/alert"
	"github.com/shortcircuit-db/sc/internal/ledger"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/metrics"
	"github.com/shortcircuit-db/sc/internal/obs"
	"github.com/shortcircuit-db/sc/internal/sim"
	"github.com/shortcircuit-db/sc/internal/telemetry"
)

// Refresher is a long-lived MV refresh session: it executes refresh runs on
// the real engine, records execution metadata (§III-A), and re-optimizes
// the plan from what it observed, so recurring pipelines improve run over
// run. All methods honor context cancellation and deadlines, and a
// Refresher is safe for concurrent use (runs are serialized internally at
// the planning level; the Controller parallelizes within a run when
// WithConcurrency is set).
type Refresher struct {
	workload *exec.Workload
	graph    *dag.Graph
	base     [][]string // per node, the base tables its statement scans
	store    Store
	cfg      *config
	md       *metrics.Store
	chunked  *chunkio.Session // session dictionary cache; nil when disabled

	runSeq atomic.Int64 // run counter feeding telemetry run IDs

	led *ledger.Ledger // run history + baselines; nil without WithLedger

	alerts      *alert.Notifier // webhook notifier; nil without WithAlerts
	verMu       sync.Mutex
	lastVerdict string // previous health verdict, for transition alerts

	// linkMu guards lastNodeSpans separately from mu: the collector's link
	// resolver fires during run execution, outside any mu critical section.
	linkMu        sync.Mutex
	lastNodeSpans map[string]telemetry.SpanContext

	mu        sync.Mutex
	plan      *Plan
	stats     *Stats
	lastTrace *RunTrace
}

// New builds a refresh session for the given MVs over a store holding the
// base tables. Dependencies are extracted from the SQL statements. See the
// With* options for memory budget, strategies, observation and concurrency.
func New(mvs []MV, store Store, opts ...Option) (*Refresher, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	if store == nil {
		return nil, errors.New("sc: nil store")
	}
	if len(mvs) == 0 {
		return nil, errors.New("sc: no MVs declared")
	}
	w := &exec.Workload{}
	for _, mv := range mvs {
		w.Nodes = append(w.Nodes, exec.NodeSpec{Name: mv.Name, SQL: mv.SQL})
	}
	g, base, err := w.BuildGraph()
	if err != nil {
		return nil, err
	}
	r := &Refresher{
		workload: w,
		graph:    g,
		base:     base,
		store:    store,
		cfg:      cfg,
		md:       metrics.NewStore(),
	}
	if cfg.vectorized && cfg.dictCache {
		// The session dictionary cache lives with the Refresher, so each
		// Refresh reuses the dictionaries the previous run derived.
		r.chunked = chunkio.NewSession()
	}
	if cfg.ledger {
		led, err := ledger.New(ledger.Config{Path: cfg.ledgerPath})
		if err != nil {
			return nil, err
		}
		r.led = led
	}
	if cfg.alertURL != "" {
		r.alerts = alert.New(alert.Config{URL: cfg.alertURL, Cooldown: cfg.alertCooldown})
	}
	return r, nil
}

// Close drains the session's push surfaces: pending alert webhook
// deliveries are flushed and the ledger (and its NDJSON file, if any) is
// closed. A Refresher without WithAlerts/WithLedger needs no Close.
func (r *Refresher) Close() error {
	if r.alerts != nil {
		r.alerts.Close()
	}
	if r.led != nil {
		return r.led.Close()
	}
	return nil
}

// Graph exposes the extracted dependency graph.
func (r *Refresher) Graph() *dag.Graph { return r.graph }

// Metrics exposes the execution-metadata store accumulated across runs.
func (r *Refresher) Metrics() *metrics.Store { return r.md }

// Plan returns the current refresh plan, or nil before the first
// optimization.
func (r *Refresher) Plan() *Plan {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.plan == nil {
		return nil
	}
	return r.plan.Clone()
}

// Stats returns the optimizer stats of the current plan, or nil before the
// first optimization.
func (r *Refresher) Stats() *Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stats == nil {
		return nil
	}
	st := *r.stats
	return &st
}

// Problem derives the session's current optimization problem: sizes from
// the latest observations (WithSizeGuess for never-observed nodes), scores
// from the §IV model under the session's device profile. With WithEncoding
// the knapsack weighs nodes at their compressed footprint and the disk
// terms of the score model move encoded bytes, so compression genuinely
// changes which nodes get flagged and in which order the DAG runs.
func (r *Refresher) Problem() *Problem {
	raw := r.md.Sizes(r.graph, r.cfg.sizeGuess)
	if r.cfg.encoding == nil {
		return &Problem{
			G:      r.graph,
			Sizes:  raw,
			Scores: r.md.Scores(r.graph, raw, r.cfg.device),
			Memory: r.cfg.memory,
		}
	}
	enc := r.md.EncodedSizes(r.graph, r.cfg.sizeGuess)
	return &Problem{
		G:      r.graph,
		Sizes:  enc, // Memory Catalog holds compressed entries
		Scores: r.md.ScoresSized(r.graph, raw, enc, r.cfg.device),
		Memory: r.cfg.memory,
	}
}

// Optimize re-plans the session from the observed execution metadata and
// returns the new plan, which subsequent Run/Refresh calls execute.
func (r *Refresher) Optimize(ctx context.Context) (*Plan, *Stats, error) {
	plan, stats, err := Solve(ctx, r.Problem(),
		WithFlagSelector(r.cfg.selector),
		WithOrderer(r.cfg.orderer),
		WithSeed(r.cfg.seed),
		WithMaxIterations(r.cfg.maxIterations),
		WithObserver(r.cfg.observer),
	)
	if err != nil {
		return nil, nil, err
	}
	r.mu.Lock()
	r.plan = plan.Clone()
	st := *stats
	r.stats = &st
	r.mu.Unlock()
	return plan, stats, nil
}

// Run executes one refresh with the session's current plan (the
// unoptimized topological baseline before the first Optimize), recording
// execution metadata for future planning. When ctx is cancelled mid-run the
// partial result of the completed nodes is returned with ctx.Err().
func (r *Refresher) Run(ctx context.Context) (*RunResult, error) {
	return r.RunPlan(ctx, r.Plan())
}

// baselinePlan is the unoptimized default: topological order, nothing kept
// in memory.
func (r *Refresher) baselinePlan() (*Plan, error) {
	topo, err := r.graph.TopoSort()
	if err != nil {
		return nil, err
	}
	return &Plan{Order: topo, Flagged: make([]bool, r.graph.Len())}, nil
}

// RunPlan executes one refresh following an explicit plan. A nil plan means
// the unoptimized baseline: topological order, nothing kept in memory.
func (r *Refresher) RunPlan(ctx context.Context, plan *Plan) (*RunResult, error) {
	if plan == nil {
		var err error
		if plan, err = r.baselinePlan(); err != nil {
			return nil, err
		}
	}
	var col *telemetry.Collector
	var runID string
	if r.cfg.tracing {
		runID = telemetry.RunID(r.runSeq.Add(1))
		col = telemetry.NewCollector(telemetry.CollectorConfig{
			RunID:        runID,
			RootName:     "refresh",
			Profile:      true,
			LinkResolver: r.nodeSpanResolver(),
		})
	}
	ctl := &exec.Controller{
		Store:        r.store,
		Mem:          memcat.New(r.cfg.memory),
		Obs:          obs.Multi(metrics.NewRecorder(r.md), r.cfg.observer, col.Observer()),
		RunID:        runID,
		Concurrency:  r.cfg.concurrency,
		Encoding:     r.cfg.encoding,
		Vectorized:   r.cfg.vectorized,
		ParallelScan: r.cfg.parallelScan,
		Chunked:      r.chunked,
	}
	res, err := ctl.Run(ctx, r.workload, r.graph, plan)
	if col != nil {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		col.Finish(time.Time{}, msg)
		spans := col.Spans()
		tr := &RunTrace{
			RunID:        runID,
			Spans:        spans,
			CriticalPath: telemetry.CriticalPath(spans, r.parentNames()),
		}
		r.mu.Lock()
		r.lastTrace = tr
		r.mu.Unlock()
		r.rememberNodeSpans(spans)
		if r.led != nil {
			meta := ledger.Meta{
				RunID:         runID,
				Pipeline:      "session",
				Outcome:       ledger.OutcomeSucceeded,
				ReservedBytes: r.cfg.memory,
			}
			if err != nil {
				meta.Outcome = ledger.OutcomeFailed
				meta.Err = msg
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					meta.Outcome = ledger.OutcomeCanceled
				}
			}
			if res != nil {
				meta.ActualPeakBytes = res.PeakMemory
				meta.FallbackWrites = res.FallbackWrites
			}
			sum, _ := r.led.Append(ledger.Summarize(spans, r.parentNames(), meta))
			r.notifyRun(sum)
		}
		if r.cfg.traceExporter != nil {
			r.cfg.traceExporter.Export(spans)
		}
	}
	return res, err
}

// notifyRun pushes the run's ledger anomalies — and the session's
// health-verdict transition, when this run changed it — to the WithAlerts
// webhook. The first observed verdict establishes the baseline silently.
func (r *Refresher) notifyRun(sum ledger.RunSummary) {
	if r.alerts == nil {
		return
	}
	for _, a := range sum.Anomalies {
		r.alerts.Notify(alert.Event{
			Pipeline: sum.Pipeline,
			Kind:     a.Kind,
			Severity: "warning",
			Summary:  "session refresh: " + a.Kind + " " + a.Detail,
			RunID:    sum.RunID,
			Node:     a.Node,
			Observed: a.Observed,
			Baseline: a.Baseline,
			Sigma:    a.Score,
		})
	}
	h := r.led.Health(sum.Pipeline, ledger.HealthConfig{})
	r.verMu.Lock()
	prev := r.lastVerdict
	r.lastVerdict = h.Verdict
	r.verMu.Unlock()
	if prev == "" || prev == h.Verdict {
		return
	}
	sev := "info"
	switch h.Verdict {
	case ledger.VerdictFailing:
		sev = "critical"
	case ledger.VerdictDegraded:
		sev = "warning"
	}
	r.alerts.Notify(alert.Event{
		Pipeline:    sum.Pipeline,
		Kind:        "health_transition",
		Severity:    sev,
		Summary:     "session went " + h.Verdict + " (was " + prev + ")",
		RunID:       sum.RunID,
		FromVerdict: prev,
		ToVerdict:   h.Verdict,
	})
}

// AlertStats reports the WithAlerts notifier's lifetime delivery counters
// (delivered, dropped, deduped, retried), or zeros without WithAlerts.
func (r *Refresher) AlertStats() AlertStats {
	if r.alerts == nil {
		return AlertStats{}
	}
	return r.alerts.Stats()
}

// Explain reconstructs, for every MV of the session, why the current plan
// flags or skips it under the bounded Memory Catalog budget: the sized
// speedup score (split into read and write savings), raw vs
// EWMA-predicted encoded bytes, the marginal byte cost at the node's
// residency window that decided the flag, and what would flip the
// decision. It explains the plan subsequent Run/Refresh calls would
// execute — solving one first when the session has not optimized yet —
// and re-decides nothing.
func (r *Refresher) Explain(ctx context.Context) (*ExplainReport, error) {
	prob := r.Problem()
	plan := r.Plan()
	if plan == nil {
		var err error
		plan, _, err = Solve(ctx, prob,
			WithFlagSelector(r.cfg.selector),
			WithOrderer(r.cfg.orderer),
			WithSeed(r.cfg.seed),
			WithMaxIterations(r.cfg.maxIterations),
		)
		if err != nil {
			return nil, err
		}
	}
	n := r.graph.Len()
	names := make([]string, n)
	for i := range names {
		names[i] = r.graph.Name(dag.NodeID(i))
	}
	raw := r.md.Sizes(r.graph, r.cfg.sizeGuess)
	in := introspect.ExplainInput{
		Problem:  prob,
		Plan:     plan,
		Names:    names,
		RawBytes: raw,
		Encoding: r.cfg.encoding != nil,
		Device:   r.cfg.device,
	}
	if r.cfg.encoding != nil {
		in.PredictedBytes = make([]int64, n)
		for i, name := range names {
			in.PredictedBytes[i] = r.md.PredictEncoded(name, raw[i])
		}
	}
	return introspect.Explain(in), nil
}

// History returns the session run ledger's summaries, newest first, or nil
// without WithLedger. An empty filter returns everything retained.
func (r *Refresher) History(f RunFilter) []RunSummary {
	if r.led == nil {
		return nil
	}
	return r.led.Runs(f)
}

// Baselines returns the ledger's learned per-node baselines, or nil without
// WithLedger.
func (r *Refresher) Baselines() []NodeBaseline {
	if r.led == nil {
		return nil
	}
	return r.led.Baselines("session")
}

// rememberNodeSpans records each node's span context so the next run's
// cache hits can link back to the producing span.
func (r *Refresher) rememberNodeSpans(spans []telemetry.Span) {
	r.linkMu.Lock()
	defer r.linkMu.Unlock()
	if r.lastNodeSpans == nil {
		r.lastNodeSpans = make(map[string]telemetry.SpanContext)
	}
	for _, s := range spans {
		for _, a := range s.Attrs {
			if a.Key == telemetry.AttrNode && a.Type == telemetry.AttrString {
				r.lastNodeSpans[a.Str] = telemetry.SpanContext{
					TraceID: s.TraceID, SpanID: s.SpanID, Sampled: true,
				}
			}
		}
	}
}

// nodeSpanResolver resolves a node name to the span that produced its
// output in a previous run — the cross-run half of span linking.
func (r *Refresher) nodeSpanResolver() func(string) (telemetry.SpanContext, bool) {
	return func(node string) (telemetry.SpanContext, bool) {
		r.linkMu.Lock()
		defer r.linkMu.Unlock()
		sc, ok := r.lastNodeSpans[node]
		return sc, ok
	}
}

// parentNames maps each node to its upstream MVs by name, the shape the
// critical-path analysis consumes.
func (r *Refresher) parentNames() map[string][]string {
	parents := make(map[string][]string, r.graph.Len())
	for i := 0; i < r.graph.Len(); i++ {
		id := dag.NodeID(i)
		name := r.graph.Name(id)
		for _, par := range r.graph.Parents(id) {
			parents[name] = append(parents[name], r.graph.Name(par))
		}
	}
	return parents
}

// Refresh is the adaptive loop of §III-A in one call: execute a refresh
// with the current plan, feed the observed metadata back, and re-optimize
// for the next call. The returned result is the run that just executed; the
// improved plan takes effect on the next Refresh/Run.
func (r *Refresher) Refresh(ctx context.Context) (*RunResult, error) {
	res, err := r.Run(ctx)
	if err != nil {
		return res, err
	}
	if _, _, err := r.Optimize(ctx); err != nil {
		return res, err
	}
	return res, nil
}

// Simulate predicts a refresh run with the session's current plan on the
// calibrated discrete-event simulator, parameterized by the observed
// execution metadata (run at least once first for meaningful numbers) and
// the session's device profile. No real bytes move.
func (r *Refresher) Simulate(ctx context.Context) (*SimResult, error) {
	w := &sim.Workload{G: r.graph}
	for i := 0; i < r.graph.Len(); i++ {
		name := r.graph.Name(dag.NodeID(i))
		node := sim.Node{Name: name, OutputBytes: r.cfg.sizeGuess}
		if o, ok := r.md.Latest(name); ok {
			node.OutputBytes = o.OutputBytes
			node.ComputeSeconds = o.ComputeTime.Seconds()
		}
		// Base tables are always read from external storage; their encoded
		// sizes are what a refresh actually moves.
		for _, bt := range r.base[i] {
			if sz, err := exec.TableSize(r.store, bt); err == nil {
				node.BaseReadBytes += sz
			}
		}
		w.Nodes = append(w.Nodes, node)
	}
	plan := r.Plan()
	if plan == nil {
		var err error
		if plan, err = r.baselinePlan(); err != nil {
			return nil, err
		}
	}
	return sim.Run(ctx, w, plan, sim.Config{
		Device:   r.cfg.device,
		Memory:   r.cfg.memory,
		Observer: r.cfg.observer,
	})
}
