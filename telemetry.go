package sc

import (
	"github.com/shortcircuit-db/sc/internal/telemetry"
)

// Span is one completed span of a traced refresh run: the root span covers
// the whole run, one child span covers each executed node, and encode/
// decode/kernel completions attach as span events.
type Span = telemetry.Span

// SpanEvent is a point-in-time event attached to a Span.
type SpanEvent = telemetry.SpanEvent

// SpanAttr is one key/value attribute on a Span or SpanEvent.
type SpanAttr = telemetry.Attr

// CritReport is the critical-path analysis of one run's spans: the longest
// blocking chain through the DAG and each node's self vs wait time.
type CritReport = telemetry.CritReport

// CritNode is one node's accounting within a CritReport.
type CritNode = telemetry.CritNode

// TraceExporter receives each completed run trace. Export must not block:
// the built-in exporters buffer or write synchronously to local files.
type TraceExporter = telemetry.Exporter

// NewOTLPTraceExporter returns an exporter that posts traces to an
// OTLP/HTTP JSON collector endpoint (e.g. http://localhost:4318/v1/traces)
// with batching, a bounded queue and exponential-backoff retries. Close it
// when the session ends to flush the queue.
func NewOTLPTraceExporter(endpoint string) (TraceExporter, error) {
	return telemetry.NewOTLP(telemetry.OTLPConfig{Endpoint: endpoint, Service: "sc"})
}

// NewFileTraceExporter returns an exporter appending each run's trace to
// path as one OTLP/HTTP JSON payload per line; "-" writes to stdout.
func NewFileTraceExporter(path string) (TraceExporter, error) {
	return telemetry.NewFileExporter(path, "sc")
}

// RunTrace is the assembled trace of one completed Refresher run.
type RunTrace struct {
	// RunID identifies the run; node observations recorded in Metrics
	// carry the same ID.
	RunID string
	// Spans lists the run's spans, root first.
	Spans []Span
	// CriticalPath reports the longest blocking chain through the DAG.
	CriticalPath CritReport
}

// LastTrace returns the trace of the most recently completed run, or nil
// before the first run or when the session was built without
// WithTelemetry.
func (r *Refresher) LastTrace() *RunTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastTrace
}
