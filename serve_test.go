package sc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestServeLifecycle boots the gateway over a real listener, drives one
// register → trigger → query session through the public HTTP API, and
// shuts down via context cancellation.
func TestServeLifecycle(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- serveListener(ctx, ln, GatewayConfig{GlobalBudget: 1 << 20}, ready)
	}()
	addr := <-ready
	base := fmt.Sprintf("http://%s", addr)

	reg := map[string]any{
		"name":   "beer",
		"tenant": "brewer",
		"mvs": []map[string]string{
			{"name": "mv_daily", "sql": "SELECT day, SUM(amount) AS revenue FROM sales GROUP BY day"},
			{"name": "mv_top", "sql": "SELECT day, revenue FROM mv_daily WHERE revenue >= 10"},
		},
		"tables": map[string]any{
			"sales": map[string]any{
				"schema": []map[string]string{
					{"name": "day", "type": "int"},
					{"name": "item", "type": "str"},
					{"name": "amount", "type": "float"},
				},
				"rows": [][]any{{1, "ale", 10.0}, {2, "bock", 5.0}, {2, "ale", 7.5}},
			},
		},
	}
	body, _ := json.Marshal(reg)
	resp, err := http.Post(base+"/v1/pipelines", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/pipelines/beer/refresh?wait=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st GatewayRunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != "succeeded" {
		t.Fatalf("run = %+v", st)
	}

	resp, err = http.Get(base + "/v1/pipelines/beer/mvs/mv_daily")
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		Rows int `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.Rows != 2 {
		t.Fatalf("mv_daily rows = %d", tr.Rows)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
}

// TestNewGatewayFacade exercises the programmatic facade with the built-in
// TPC-DS pipeline helper.
func TestNewGatewayFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("tpc-ds seed in -short")
	}
	g, err := NewGateway(GatewayConfig{GlobalBudget: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Register(TPCDSPipeline("dw", "analytics", 0.1)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGateway(GatewayConfig{}); err == nil {
		t.Fatal("zero budget accepted")
	}
	stats := g.Stats()
	if stats.Pipelines != 1 || stats.BudgetBytes != 8<<20 {
		t.Fatalf("stats = %+v", stats)
	}
}
