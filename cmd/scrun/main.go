// Command scrun simulates one of the paper's TPC-DS workloads under a
// chosen method and prints the plan and execution timeline.
//
// Usage:
//
//	scrun -workload "I/O 1" -scale 100 -variant tpcds -mem 0.016 -method sc
//
// Methods: noopt, lru, random, greedy, ratio, sc. With -progress, the
// run's event stream (node starts/completions, materialization, Memory
// Catalog evictions and high-water marks) is printed live to stderr and a
// critical-path breakdown of the simulated timeline follows the summary.
// With -trace-file, the run's trace (root span plus one span per node, on
// the virtual clock) is written as OTLP/HTTP JSON, one payload per line;
// "-" writes to stdout. With -ledger-file, the run's summary is appended to
// an NDJSON run ledger whose history seeds per-node baselines; -explain
// then diffs this run against those baselines, calls out regressed nodes
// and detector anomalies, and exits 3 when any anomaly was flagged — so CI
// jobs and cron wrappers fail loudly on a regression instead of needing to
// parse the report.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/shortcircuit-db/sc/internal/bench"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/ledger"
	"github.com/shortcircuit-db/sc/internal/obs"
	"github.com/shortcircuit-db/sc/internal/sim"
	"github.com/shortcircuit-db/sc/internal/telemetry"
	"github.com/shortcircuit-db/sc/internal/tpcds"
)

func main() {
	workload := flag.String("workload", "I/O 1", `workload: "I/O 1".."I/O 3", "Compute 1", "Compute 2"`)
	scale := flag.Int("scale", 100, "dataset scale in GB")
	variant := flag.String("variant", "tpcds", "dataset variant: tpcds or tpcdsp")
	memFrac := flag.Float64("mem", 0.016, "Memory Catalog as a fraction of data size")
	method := flag.String("method", "sc", "method: noopt, lru, random, greedy, ratio, sc")
	workers := flag.Int("workers", 1, "cluster worker count")
	progress := flag.Bool("progress", false, "stream refresh events to stderr as the run advances")
	traceFile := flag.String("trace-file", "", `write the run's OTLP JSON trace here ("-" = stdout)`)
	ledgerFile := flag.String("ledger-file", "", "append this run's summary to an NDJSON run ledger (replayed for baselines)")
	explain := flag.Bool("explain", false, "diff this run against the ledger baselines and call out regressed nodes")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	v := tpcds.Regular()
	if strings.EqualFold(*variant, "tpcdsp") {
		v = tpcds.Partitioned()
	}
	var m bench.Method
	found := false
	for _, cand := range bench.Methods() {
		key := strings.ToLower(strings.Fields(cand.Name)[0])
		if strings.HasPrefix(key, strings.ToLower(*method)) || (*method == "sc" && strings.HasPrefix(cand.Name, "S/C")) {
			m, found = cand, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "scrun: unknown method %q\n", *method)
		os.Exit(2)
	}

	d := costmodel.PaperProfile()
	scaleBytes := tpcds.ScaleBytes(*scale)
	mem := tpcds.MemoryForFraction(scaleBytes, *memFrac)
	w, p, err := tpcds.Build(tpcds.WorkloadName(*workload), scaleBytes, v, mem, d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scrun:", err)
		os.Exit(1)
	}
	plan, elapsed, err := bench.PlanFor(m, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scrun:", err)
		os.Exit(1)
	}
	cfg := sim.Config{Device: d, Memory: mem, Workers: *workers, LRU: m.LRU}
	if *progress {
		cfg.Observer = progressPrinter(os.Stderr)
	}
	var col *telemetry.Collector
	if *progress || *traceFile != "" || *ledgerFile != "" || *explain {
		// The simulator reports the virtual clock in Elapsed; the collector
		// maps it onto span times so the trace and critical path are in
		// simulated seconds.
		cfg.RunID = telemetry.RunID(1)
		col = telemetry.NewCollector(telemetry.CollectorConfig{
			RunID:    cfg.RunID,
			RootName: "simulate " + *workload,
			Virtual:  true,
		})
		col.SetRootAttrs(telemetry.Str("sc.method", m.Name), telemetry.Int("sc.scale_gb", int64(*scale)))
		cfg.Observer = obs.Multi(cfg.Observer, col)
	}
	res, err := sim.Run(ctx, w, plan, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scrun:", err)
		os.Exit(1)
	}

	fmt.Printf("workload %s on %dGB %s, Memory Catalog %.1f MB, method %s (optimized in %v)\n",
		*workload, *scale, v.Name, float64(mem)/1e6, m.Name, elapsed.Round(10e3))
	fmt.Printf("%-16s %10s %10s %10s %10s %8s\n", "node", "start", "end", "read", "write", "flagged")
	for _, nt := range res.Timeline {
		flag := ""
		if nt.Flagged {
			flag = "mem"
		}
		fmt.Printf("%-16s %9.1fs %9.1fs %9.2fs %9.2fs %8s\n",
			nt.Name, nt.Start, nt.End, nt.ReadSec, nt.WriteSec, flag)
	}
	fmt.Printf("\nend-to-end %.1fs  (read %.1fs, compute %.1fs, blocking write %.1fs, peak memory %.1f MB)\n",
		res.Total, res.ReadSeconds, res.ComputeSeconds, res.WriteSeconds, float64(res.PeakMemory)/1e6)

	regressionExit := false
	if col != nil {
		col.Finish(time.Time{}, "")
		spans := col.Spans()
		parents := make(map[string][]string, len(w.Nodes))
		for i, n := range w.Nodes {
			for _, par := range w.G.Parents(dag.NodeID(i)) {
				parents[n.Name] = append(parents[n.Name], w.Nodes[par].Name)
			}
		}
		cp := telemetry.CriticalPath(spans, parents)
		if *progress {
			printCriticalPath(os.Stderr, cp)
		}
		if *ledgerFile != "" || *explain {
			led, err := ledger.New(ledger.Config{Path: *ledgerFile})
			if err != nil {
				fmt.Fprintln(os.Stderr, "scrun:", err)
				os.Exit(1)
			}
			// Key the history by workload so baselines compare like with like.
			pipeline := "sim:" + *workload
			sum, _ := led.Append(ledger.Summarize(spans, parents, ledger.Meta{
				RunID:           cfg.RunID,
				Pipeline:        pipeline,
				Outcome:         ledger.OutcomeSucceeded,
				WallSeconds:     res.Total,
				ReservedBytes:   mem,
				ActualPeakBytes: res.PeakMemory,
			}))
			if *explain {
				printExplain(os.Stdout, led, pipeline, sum)
				// A flagged regression fails the command (exit 3) after the
				// ledger and trace are safely written.
				regressionExit = len(sum.Anomalies) > 0
			}
			if err := led.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "scrun: ledger:", err)
				os.Exit(1)
			}
		}
		if *traceFile != "" {
			exp, err := telemetry.NewFileExporter(*traceFile, "scrun")
			if err != nil {
				fmt.Fprintln(os.Stderr, "scrun:", err)
				os.Exit(1)
			}
			exp.Export(spans)
			err = exp.Err()
			if cerr := exp.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "scrun: trace:", err)
				os.Exit(1)
			}
		}
	}
	if regressionExit {
		fmt.Fprintln(os.Stderr, "scrun: regression flagged against baseline (see explain above)")
		os.Exit(3)
	}
}

// printExplain diffs the just-appended run against the ledger's learned
// baselines: per-node latest vs baseline wall with regressed nodes called
// out, then any anomalies the detector flagged.
func printExplain(out *os.File, led *ledger.Ledger, pipeline string, sum ledger.RunSummary) {
	regressed := make(map[string]bool)
	for _, a := range sum.Anomalies {
		if a.Node != "" {
			regressed[a.Node] = true
		}
	}
	base := make(map[string]ledger.NodeBaseline)
	for _, nb := range led.Baselines(pipeline) {
		base[nb.Node] = nb
	}
	fmt.Fprintf(out, "\nrun %s vs baseline (%s):\n", sum.RunID, pipeline)
	fmt.Fprintf(out, "%-16s %12s %12s %8s\n", "node", "latest", "baseline", "")
	for _, n := range sum.Nodes {
		mark := ""
		if regressed[n.Node] {
			mark = "REGRESSED"
		}
		nb, ok := base[n.Node]
		// The just-appended run is already folded into the baseline; with
		// fewer than two samples the mean IS this run, so show "new".
		if !ok || nb.Samples < 2 {
			fmt.Fprintf(out, "%-16s %11.2fs %12s %8s\n", n.Node, n.WallSeconds, "new", mark)
			continue
		}
		fmt.Fprintf(out, "%-16s %11.2fs %11.2fs %8s\n", n.Node, n.WallSeconds, nb.WallMeanSeconds, mark)
	}
	if sum.ReservedBytes > 0 {
		fmt.Fprintf(out, "memory: reserved %.1f MB, actual peak %.1f MB (mispredict %.0f%%)\n",
			float64(sum.ReservedBytes)/1e6, float64(sum.ActualPeakBytes)/1e6, sum.Mispredict*100)
	}
	if len(sum.Anomalies) == 0 {
		fmt.Fprintln(out, "no anomalies against baseline")
		return
	}
	for _, a := range sum.Anomalies {
		fmt.Fprintf(out, "anomaly: %s %s (observed %.3g, baseline %.3g) %s\n",
			a.Kind, a.Node, a.Observed, a.Baseline, a.Detail)
	}
}

// printCriticalPath renders the longest blocking chain through the DAG:
// which nodes the simulated wall clock actually waited on, and how each
// split between executing and blocking on upstream work.
func printCriticalPath(out *os.File, cp telemetry.CritReport) {
	if len(cp.Chain) == 0 {
		return
	}
	fmt.Fprintf(out, "\ncritical path: %s (%.1fs of %.1fs wall, %.0f%%)\n",
		strings.Join(cp.Chain, " -> "), cp.ChainSeconds, cp.WallSeconds, cp.Coverage*100)
	onChain := make(map[string]bool, len(cp.Chain))
	for _, n := range cp.Chain {
		onChain[n] = true
	}
	for _, n := range cp.Nodes {
		if !onChain[n.Node] {
			continue
		}
		fmt.Fprintf(out, "  %-16s self %8.1fs  wait %8.1fs\n", n.Node, n.SelfSeconds, n.WaitSeconds)
	}
}

// progressPrinter renders the refresh event stream as one line per event,
// stamped with the virtual clock.
func progressPrinter(out *os.File) obs.Observer {
	return obs.Func(func(e obs.Event) {
		at := e.Elapsed.Seconds()
		switch e.Kind {
		case obs.NodeStart:
			fmt.Fprintf(out, "[%8.1fs] start  %-16s (step %d)\n", at, e.Node, e.Step)
		case obs.NodeDone:
			state := "written"
			if e.Flagged {
				state = "in-memory"
			}
			fmt.Fprintf(out, "[%8.1fs] done   %-16s %s (%.1f MB, read %.2fs, write %.2fs)\n",
				at, e.Node, state, float64(e.Bytes)/1e6, e.Read.Seconds(), e.Write.Seconds())
		case obs.Materialized:
			fmt.Fprintf(out, "[%8.1fs] stored %-16s (%.1f MB on external storage)\n", at, e.Node, float64(e.Bytes)/1e6)
		case obs.Evicted:
			fmt.Fprintf(out, "[%8.1fs] evict  %-16s (%.1f MB released)\n", at, e.Node, float64(e.Bytes)/1e6)
		case obs.MemoryHighWater:
			fmt.Fprintf(out, "[%8.1fs] memory high-water %.1f MB\n", at, float64(e.Bytes)/1e6)
		}
	})
}
