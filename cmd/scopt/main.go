// Command scopt runs the S/C optimizer as a filter: a JSON problem on
// stdin, a JSON plan on stdout. This is how external pipeline tools (dbt,
// Airflow operators) integrate the optimizer without linking Go code.
//
// Input format:
//
//	{
//	  "nodes": [{"name": "mv_a", "size": 1073741824, "score": 12.5}, ...],
//	  "edges": [["mv_a", "mv_b"], ...],
//	  "memory": 1717986918,
//	  "flag_algorithm": "mkp",   // optional
//	  "order_algorithm": "ma-dfs" // optional
//	}
//
// Scores may be omitted (0); pass "estimate_scores": true to derive them
// from sizes with the paper's device profile.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"

	sc "github.com/shortcircuit-db/sc"
)

type inputNode struct {
	Name  string  `json:"name"`
	Size  int64   `json:"size"`
	Score float64 `json:"score"`
}

type input struct {
	Nodes          []inputNode `json:"nodes"`
	Edges          [][2]string `json:"edges"`
	Memory         int64       `json:"memory"`
	FlagAlgorithm  string      `json:"flag_algorithm"`
	OrderAlgorithm string      `json:"order_algorithm"`
	EstimateScores bool        `json:"estimate_scores"`
	Seed           int64       `json:"seed"`
}

type output struct {
	Order      []string `json:"order"`
	Flagged    []string `json:"flagged"`
	Score      float64  `json:"score_seconds"`
	PeakMemory int64    `json:"peak_memory_bytes"`
	Iterations int      `json:"iterations"`
	ElapsedUS  int64    `json:"elapsed_us"`
}

func main() {
	var in input
	dec := json.NewDecoder(os.Stdin)
	if err := dec.Decode(&in); err != nil {
		fail("decode input: %v", err)
	}
	b := sc.NewGraphBuilder()
	ids := make(map[string]sc.NodeID, len(in.Nodes))
	for _, n := range in.Nodes {
		if _, dup := ids[n.Name]; dup {
			fail("duplicate node %q", n.Name)
		}
		ids[n.Name] = b.Node(n.Name, n.Size, n.Score)
	}
	for _, e := range in.Edges {
		p, ok := ids[e[0]]
		if !ok {
			fail("edge references unknown node %q", e[0])
		}
		c, ok := ids[e[1]]
		if !ok {
			fail("edge references unknown node %q", e[1])
		}
		if err := b.Edge(p, c); err != nil {
			fail("%v", err)
		}
	}
	p := b.Problem(in.Memory)
	if in.EstimateScores {
		sc.EstimateScores(p, sc.PaperProfile())
	}
	// The JSON algorithm names resolve through the public registries, so
	// strategies registered by embedding programs are reachable here too.
	opts := []sc.Option{sc.WithSeed(in.Seed)}
	if in.FlagAlgorithm != "" {
		sel, err := sc.SelectorByName(in.FlagAlgorithm, in.Seed)
		if err != nil {
			fail("%v", err)
		}
		opts = append(opts, sc.WithFlagSelector(sel))
	}
	if in.OrderAlgorithm != "" {
		ord, err := sc.OrdererByName(in.OrderAlgorithm, in.Seed)
		if err != nil {
			fail("%v", err)
		}
		opts = append(opts, sc.WithOrderer(ord))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	plan, stats, err := sc.Solve(ctx, p, opts...)
	if err != nil {
		fail("%v", err)
	}
	out := output{
		Score:      stats.Score,
		PeakMemory: stats.PeakMemory,
		Iterations: stats.Iterations,
		ElapsedUS:  stats.Elapsed.Microseconds(),
	}
	for _, id := range plan.Order {
		out.Order = append(out.Order, p.G.Name(id))
	}
	for _, id := range plan.FlaggedIDs() {
		out.Flagged = append(out.Flagged, p.G.Name(id))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fail("encode output: %v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scopt: "+format+"\n", args...)
	os.Exit(1)
}
