// Command scserve runs the multi-tenant refresh gateway: an HTTP server
// hosting many named MV pipelines over one shared Memory Catalog budget.
//
// Usage:
//
//	scserve [-addr :8080] [-budget-mb 256] [-slice-mb 0] [-queue 64]
//	        [-queue-timeout 30s] [-headroom 1.25] [-concurrency 2]
//	        [-data DIR] [-trace-otlp URL] [-trace-file PATH]
//	        [-ledger-file PATH] [-ledger-cap 512] [-tail-sample]
//	        [-slo-seconds 60] [-alert-webhook URL] [-alert-cooldown 5m]
//	        [-pprof ADDR]
//
// Pipelines are registered and refreshed over the /v1 HTTP API; see the
// README's Serving section for the routes and an example curl session.
// With -data, each pipeline's tables live under DIR/<pipeline>/ on the
// filesystem; the default keeps them in memory.
//
// Every finished run lands in the run ledger (GET /v1/runs); per-pipeline
// health — SLO attainment, learned baselines, top regressions — is served
// at /v1/pipelines/{name}/health. -ledger-file persists run summaries as
// NDJSON and replays them on restart so baselines survive. -tail-sample
// keeps exported traces only for anomalous, failed, or slow runs.
//
// Live state introspection is always on: GET /v1/state/catalog (Memory
// Catalog residents, codec mix, eviction timeline), GET /v1/state/sched
// (token pool, reservations, admission queue with blocking reasons) and
// GET /v1/pipelines/{name}/explain (per-MV flag decisions with flip
// conditions). -alert-webhook pushes ledger anomalies and health-verdict
// transitions to that URL as JSON POSTs — bounded queue, retried with
// backoff, deduplicated per (pipeline, kind) within -alert-cooldown —
// instead of waiting for /metrics to be scraped.
//
// Every refresh run is traced (root span, queue-admission span, one span
// per executed node); traces are served at /v1/runs/{id}/trace and
// exported with -trace-otlp (an OTLP/HTTP JSON collector endpoint, e.g.
// http://localhost:4318/v1/traces) or -trace-file (NDJSON of OTLP
// payloads, "-" = stdout). -pprof serves net/http/pprof on a separate
// debug listener (keep it off public interfaces).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	sc "github.com/shortcircuit-db/sc"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	budgetMB := flag.Int64("budget-mb", 256, "shared Memory Catalog budget (MiB)")
	sliceMB := flag.Int64("slice-mb", 0, "default per-tenant budget slice (MiB, 0 = whole budget)")
	queue := flag.Int("queue", 64, "max queued refresh triggers")
	queueTimeout := flag.Duration("queue-timeout", 30*time.Second, "queued trigger deadline")
	headroom := flag.Float64("headroom", 1.25, "reservation headroom over the predicted footprint")
	concurrency := flag.Int("concurrency", 2, "worker pool per refresh")
	dataDir := flag.String("data", "", "store pipeline tables under this directory (default: in memory)")
	traceOTLP := flag.String("trace-otlp", "", "export run traces to this OTLP/HTTP JSON endpoint")
	traceFile := flag.String("trace-file", "", `append run traces to this file as OTLP JSON lines ("-" = stdout)`)
	noTrace := flag.Bool("no-trace", false, "disable per-run trace collection")
	ledgerFile := flag.String("ledger-file", "", "persist per-run ledger summaries to this NDJSON file (replayed on start)")
	ledgerCap := flag.Int("ledger-cap", 512, "in-memory run ledger capacity")
	tailSample := flag.Bool("tail-sample", false, "export only anomalous, failed, or slow run traces")
	sloSeconds := flag.Float64("slo-seconds", 60, "refresh latency SLO used by /health and tail sampling")
	alertWebhook := flag.String("alert-webhook", "", "POST anomaly and health-transition alerts to this URL")
	alertCooldown := flag.Duration("alert-cooldown", 5*time.Minute, "alert dedup window per (pipeline, kind)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060)")
	flag.Parse()

	cfg := sc.GatewayConfig{
		GlobalBudget:   *budgetMB << 20,
		DefaultSlice:   *sliceMB << 20,
		QueueLimit:     *queue,
		QueueTimeout:   *queueTimeout,
		Headroom:       *headroom,
		Concurrency:    *concurrency,
		DisableTracing: *noTrace,
		LedgerPath:     *ledgerFile,
		LedgerCapacity: *ledgerCap,
		TailSample:     *tailSample,
		SLOSeconds:     *sloSeconds,
		AlertWebhook:   *alertWebhook,
		AlertCooldown:  *alertCooldown,
	}
	if *alertWebhook != "" {
		log.Printf("scserve: alerting to %s (cooldown %s)", *alertWebhook, *alertCooldown)
	}
	if *traceOTLP != "" && *traceFile != "" {
		fmt.Fprintln(os.Stderr, "scserve: -trace-otlp and -trace-file are mutually exclusive")
		os.Exit(2)
	}
	switch {
	case *traceOTLP != "":
		exp, err := telemetry.NewOTLP(telemetry.OTLPConfig{Endpoint: *traceOTLP, Service: "scserve"})
		if err != nil {
			fmt.Fprintln(os.Stderr, "scserve:", err)
			os.Exit(2)
		}
		defer exp.Close()
		cfg.TraceExporter = exp
		log.Printf("scserve: exporting traces to %s", *traceOTLP)
	case *traceFile != "":
		exp, err := telemetry.NewFileExporter(*traceFile, "scserve")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scserve:", err)
			os.Exit(2)
		}
		defer exp.Close()
		cfg.TraceExporter = exp
		log.Printf("scserve: writing traces to %s", *traceFile)
	}
	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on
		// http.DefaultServeMux; serve that mux on the debug listener only —
		// the gateway API uses its own mux and never exposes profiling.
		go func() {
			log.Printf("scserve: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("scserve: pprof listener: %v", err)
			}
		}()
	}
	if *dataDir != "" {
		root := *dataDir
		cfg.NewStore = func(pipeline string) storage.Store {
			st, err := storage.NewFSStore(filepath.Join(root, pipeline))
			if err != nil {
				log.Printf("scserve: pipeline %q: %v; falling back to memory", pipeline, err)
				return storage.NewMemStore()
			}
			return st
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	log.Printf("scserve: listening on %s (budget %d MiB, queue %d, timeout %s)",
		*addr, *budgetMB, *queue, *queueTimeout)
	if err := sc.Serve(ctx, *addr, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "scserve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("scserve: shut down")
}
