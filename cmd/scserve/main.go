// Command scserve runs the multi-tenant refresh gateway: an HTTP server
// hosting many named MV pipelines over one shared Memory Catalog budget.
//
// Usage:
//
//	scserve [-addr :8080] [-budget-mb 256] [-slice-mb 0] [-queue 64]
//	        [-queue-timeout 30s] [-headroom 1.25] [-concurrency 2]
//	        [-data DIR]
//
// Pipelines are registered and refreshed over the /v1 HTTP API; see the
// README's Serving section for the routes and an example curl session.
// With -data, each pipeline's tables live under DIR/<pipeline>/ on the
// filesystem; the default keeps them in memory.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	sc "github.com/shortcircuit-db/sc"
	"github.com/shortcircuit-db/sc/internal/storage"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	budgetMB := flag.Int64("budget-mb", 256, "shared Memory Catalog budget (MiB)")
	sliceMB := flag.Int64("slice-mb", 0, "default per-tenant budget slice (MiB, 0 = whole budget)")
	queue := flag.Int("queue", 64, "max queued refresh triggers")
	queueTimeout := flag.Duration("queue-timeout", 30*time.Second, "queued trigger deadline")
	headroom := flag.Float64("headroom", 1.25, "reservation headroom over the predicted footprint")
	concurrency := flag.Int("concurrency", 2, "worker pool per refresh")
	dataDir := flag.String("data", "", "store pipeline tables under this directory (default: in memory)")
	flag.Parse()

	cfg := sc.GatewayConfig{
		GlobalBudget: *budgetMB << 20,
		DefaultSlice: *sliceMB << 20,
		QueueLimit:   *queue,
		QueueTimeout: *queueTimeout,
		Headroom:     *headroom,
		Concurrency:  *concurrency,
	}
	if *dataDir != "" {
		root := *dataDir
		cfg.NewStore = func(pipeline string) storage.Store {
			st, err := storage.NewFSStore(filepath.Join(root, pipeline))
			if err != nil {
				log.Printf("scserve: pipeline %q: %v; falling back to memory", pipeline, err)
				return storage.NewMemStore()
			}
			return st
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	log.Printf("scserve: listening on %s (budget %d MiB, queue %d, timeout %s)",
		*addr, *budgetMB, *queue, *queueTimeout)
	if err := sc.Serve(ctx, *addr, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "scserve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("scserve: shut down")
}
