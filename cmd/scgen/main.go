// Command scgen generates test inputs: TPC-DS-like base-table data
// directories for the real engine, and synthetic DAG workload specs (in
// scopt's JSON format) from the §VI-H generator.
//
// Usage:
//
//	scgen data -dir ./data -sf 1.0 -seed 42
//	scgen dag  -nodes 100 -hw 1.0 -outdeg 4 -stddev 1 -seed 7 > wl.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	sc "github.com/shortcircuit-db/sc"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/exec"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/tpcds"
	"github.com/shortcircuit-db/sc/internal/wlgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "data":
		genData(os.Args[2:])
	case "dag":
		genDAG(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: scgen data|dag [flags]")
	os.Exit(2)
}

func genData(args []string) {
	fs := flag.NewFlagSet("data", flag.ExitOnError)
	dir := fs.String("dir", "./scdata", "output directory")
	sf := fs.Float64("sf", 1.0, "scale factor")
	seed := fs.Int64("seed", 42, "generator seed")
	_ = fs.Parse(args)

	ds, err := tpcds.Generate(tpcds.GenConfig{ScaleFactor: *sf, Seed: *seed})
	if err != nil {
		fail(err)
	}
	store, err := storage.NewFSStore(*dir)
	if err != nil {
		fail(err)
	}
	if err := ds.Save(store, exec.SaveTable); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d tables (%.1f MB uncompressed) to %s\n",
		len(ds.Tables), float64(ds.TotalBytes())/1e6, *dir)
}

func genDAG(args []string) {
	fs := flag.NewFlagSet("dag", flag.ExitOnError)
	nodes := fs.Int("nodes", 100, "node count")
	hw := fs.Float64("hw", 1.0, "height/width ratio")
	outdeg := fs.Int("outdeg", 4, "max outdegree")
	stddev := fs.Float64("stddev", 1.0, "stage node count stddev")
	seed := fs.Int64("seed", 7, "generator seed")
	memory := fs.Int64("memory", 2<<30, "memory budget to embed")
	flagAlg := fs.String("flagalg", "", "flagging algorithm to embed (see sc.SelectorNames)")
	orderAlg := fs.String("orderalg", "", "ordering algorithm to embed (see sc.OrdererNames)")
	_ = fs.Parse(args)

	// Validate embedded algorithm names against the registries up front, so
	// a typo fails here instead of inside the consumer's scopt run.
	if *flagAlg != "" {
		if _, err := sc.SelectorByName(*flagAlg, *seed); err != nil {
			fail(err)
		}
	}
	if *orderAlg != "" {
		if _, err := sc.OrdererByName(*orderAlg, *seed); err != nil {
			fail(err)
		}
	}

	gen, err := wlgen.Generate(wlgen.Params{
		Nodes: *nodes, HeightWidth: *hw, MaxOutdegree: *outdeg, StageStdDev: *stddev, Seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	type jsonNode struct {
		Name  string  `json:"name"`
		Size  int64   `json:"size"`
		Score float64 `json:"score"`
	}
	out := struct {
		Nodes          []jsonNode  `json:"nodes"`
		Edges          [][2]string `json:"edges"`
		Memory         int64       `json:"memory"`
		EstimateScores bool        `json:"estimate_scores"`
		FlagAlgorithm  string      `json:"flag_algorithm,omitempty"`
		OrderAlgorithm string      `json:"order_algorithm,omitempty"`
		Seed           int64       `json:"seed,omitempty"`
	}{Memory: *memory, EstimateScores: true, FlagAlgorithm: *flagAlg, OrderAlgorithm: *orderAlg, Seed: *seed}
	g := gen.Workload.G
	for i, n := range gen.Workload.Nodes {
		out.Nodes = append(out.Nodes, jsonNode{Name: n.Name, Size: n.OutputBytes})
		for _, c := range g.Children(dag.NodeID(i)) {
			out.Edges = append(out.Edges, [2]string{n.Name, g.Name(c)})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "scgen:", err)
	os.Exit(1)
}
