// Command scbench regenerates the paper's evaluation tables and figures
// (§VI) from the calibrated simulator, the optimizer and the real engine.
//
// Usage:
//
//	scbench [experiment...]
//
// Experiments: fig3, table3, fig9, fig10, fig11, table4, fig12, table5,
// fig13, fig14, ablate, real, encoding, kernels, gateway, all (default:
// all). fig13/fig14 accept -dags N to control the number of generated
// DAGs per setting; real, encoding, kernels and gateway accept -sf for
// the dataset scale factor, and gateway additionally -tenants. encoding,
// kernels and gateway write machine-readable BENCH_encoding.json /
// BENCH_kernels.json / BENCH_gateway.json (bytes written/decoded, wall
// time, kernel counters, refresh/read latency percentiles) into -benchout
// so future PRs have a perf trajectory to compare against.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"github.com/shortcircuit-db/sc/internal/bench"
)

func main() {
	dags := flag.Int("dags", 25, "generated DAGs per setting for fig13/fig14")
	sf := flag.Float64("sf", 1.0, "dataset scale factor for the real-engine run")
	tenants := flag.Int("tenants", 4, "concurrent tenants for the gateway experiment")
	workers := flag.Int("workers", 0, "max scheduler tokens for the kernels parallel-scan sweep (0 = no sweep; k sweeps 1,2,4,...,k)")
	benchout := flag.String("benchout", ".", "directory for machine-readable BENCH_*.json results")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// A second interrupt terminates immediately: unregister the handler as
	// soon as the first one cancels the context.
	go func() {
		<-ctx.Done()
		stop()
	}()

	experiments := flag.Args()
	if len(experiments) == 0 || (len(experiments) == 1 && experiments[0] == "all") {
		experiments = []string{"fig3", "table3", "fig9", "fig10", "fig11", "table4", "fig12", "table5", "fig13", "fig14", "ablate", "real", "encoding", "kernels", "gateway"}
	}
	out := os.Stdout
	for _, exp := range experiments {
		if err := ctx.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "scbench: interrupted")
			os.Exit(130)
		}
		start := time.Now()
		var err error
		switch exp {
		case "fig3":
			err = bench.Fig3(out)
		case "table3":
			err = bench.Table3(out)
		case "fig9":
			err = bench.Fig9(out)
		case "fig10":
			err = bench.Fig10(out)
		case "fig11":
			err = bench.Fig11(out)
		case "table4":
			err = bench.Table4(out)
		case "fig12":
			err = bench.Fig12(out)
		case "table5":
			err = bench.Table5(out)
		case "fig13":
			err = bench.Fig13(out, *dags)
		case "fig14":
			err = bench.Fig14(out, *dags)
		case "ablate":
			err = bench.Ablate(out)
		case "real":
			cfg := bench.DefaultRealConfig()
			cfg.ScaleFactor = *sf
			err = bench.Real(ctx, out, cfg)
		case "encoding":
			cfg := bench.DefaultEncodingConfig()
			cfg.ScaleFactor = *sf
			cfg.OutDir = *benchout
			err = bench.Encoding(ctx, out, cfg)
		case "kernels":
			cfg := bench.DefaultKernelsConfig()
			cfg.ScaleFactor = *sf
			cfg.OutDir = *benchout
			cfg.Workers = workerSweep(*workers)
			err = bench.Kernels(ctx, out, cfg)
		case "gateway":
			cfg := bench.DefaultGatewayConfig()
			cfg.ScaleFactor = *sf
			cfg.Tenants = *tenants
			cfg.OutDir = *benchout
			err = bench.Gateway(ctx, out, cfg)
		default:
			err = fmt.Errorf("unknown experiment %q", exp)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scbench: %s: %v\n", exp, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "[%s completed in %v]\n\n", exp, time.Since(start).Round(time.Millisecond))
	}
	_ = io.Discard
}

// workerSweep expands -workers k into the token budgets to sweep: powers
// of two from 1 up to and including k. 0 or 1 disables the sweep.
func workerSweep(max int) []int {
	if max <= 1 {
		return nil
	}
	var ws []int
	for w := 1; w < max; w *= 2 {
		ws = append(ws, w)
	}
	return append(ws, max)
}
