package sc

import "github.com/shortcircuit-db/sc/internal/ledger"

// RunSummary is one refresh run's ledger record: outcome, wall and queue
// time, per-node timing from the trace, byte and compression accounting,
// the critical path, predicted-vs-actual peak memory, and any anomalies
// the detector flagged against the learned baselines. Produced by sessions
// built with WithLedger (Refresher.History) and by the gateway
// (GET /v1/runs, Gateway.RunHistory).
type RunSummary = ledger.RunSummary

// RunNodeSummary is one node's slice of a RunSummary.
type RunNodeSummary = ledger.NodeSummary

// RunAnomaly is one detector finding on a run: the kind (wall_regression,
// bytes_regression, ratio_collapse, eviction_storm, kernel_fallback,
// admission_mispredict), the node involved, and observed vs baseline.
type RunAnomaly = ledger.Anomaly

// RunFilter selects ledger history: exact pipeline/tenant/outcome matches,
// anomalous-only, and a result cap. The zero value selects everything.
type RunFilter = ledger.Filter

// NodeBaseline is a learned per-node EWMA baseline snapshot.
type NodeBaseline = ledger.NodeBaseline

// PipelineHealth is a pipeline's rolled-up health over the ledger window:
// SLO attainment and burn rate, latency percentiles, baseline-vs-latest
// per node, top regressions, misprediction ratio and a verdict. Served by
// the gateway at GET /v1/pipelines/{name}/health and via
// Gateway.PipelineHealth.
type PipelineHealth = ledger.Health
