package sc_test

import (
	"context"
	"testing"

	sc "github.com/shortcircuit-db/sc"
	"github.com/shortcircuit-db/sc/internal/table"
)

// chunkedMVs is a join-over-join pipeline with an aggregate on top: the
// shape the compressed intermediate pipeline keeps in code space end to
// end.
func chunkedMVs() []sc.MV {
	return []sc.MV{
		{Name: "joined2", SQL: `
			SELECT s.item AS item, s.amount AS amount, c.cat AS cat, r.fee AS fee
			FROM sales s
			JOIN cats c ON s.item = c.item
			JOIN rates r ON s.item = r.item`},
		{Name: "cat_counts", SQL: `SELECT cat, COUNT(*) AS n FROM joined2 GROUP BY cat`},
	}
}

func chunkedStore(t *testing.T) sc.Store {
	t.Helper()
	st := sc.NewMemStore()
	sales := table.New(table.NewSchema(
		table.Column{Name: "item", Type: table.Str},
		table.Column{Name: "amount", Type: table.Int},
	))
	for i := 0; i < 300; i++ {
		sales.Cols[0].Strs = append(sales.Cols[0].Strs, []string{"pen", "ink", "pad"}[i%3])
		sales.Cols[1].Ints = append(sales.Cols[1].Ints, int64(i%7))
	}
	cats := table.New(table.NewSchema(
		table.Column{Name: "item", Type: table.Str},
		table.Column{Name: "cat", Type: table.Str},
	))
	rates := table.New(table.NewSchema(
		table.Column{Name: "item", Type: table.Str},
		table.Column{Name: "fee", Type: table.Int},
	))
	for i, item := range []string{"pen", "ink"} {
		cats.Cols[0].Strs = append(cats.Cols[0].Strs, item)
		cats.Cols[1].Strs = append(cats.Cols[1].Strs, "c-"+item)
		rates.Cols[0].Strs = append(rates.Cols[0].Strs, item)
		rates.Cols[1].Ints = append(rates.Cols[1].Ints, int64(i+1))
	}
	for name, tb := range map[string]*table.Table{"sales": sales, "cats": cats, "rates": rates} {
		if err := sc.SaveTableChunked(st, name, tb, sc.EncodingOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestSessionDictCacheAcrossRuns: a vectorized+encoded session must (a)
// materialize the same MVs as the row engine and (b) report dictionary
// reuse on the second refresh; WithSessionDictCache(false) must not.
func TestSessionDictCacheAcrossRuns(t *testing.T) {
	ctx := context.Background()

	rowStore := chunkedStore(t)
	rowRef, err := sc.New(chunkedMVs(), rowStore, sc.WithEncoding(sc.EncodingOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rowRef.Run(ctx); err != nil {
		t.Fatal(err)
	}

	run := func(opts ...sc.Option) (*sc.Refresher, sc.Store) {
		st := chunkedStore(t)
		ref, err := sc.New(chunkedMVs(), st,
			append([]sc.Option{sc.WithEncoding(sc.EncodingOptions{}), sc.WithVectorized(true)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return ref, st
	}

	ref, st := run()
	reusedAt := func(res *sc.RunResult) int64 {
		var total int64
		for _, n := range res.Nodes {
			total += n.DictReused
		}
		return total
	}
	res1, err := ref.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res1.Nodes {
		if n.KernelFallbacks != 0 {
			t.Fatalf("node %s fell back to the row engine: %+v", n.Name, n)
		}
	}
	res2, err := ref.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if reusedAt(res2) == 0 {
		t.Fatal("second Run reports no dictionary reuse")
	}

	// Same MVs as the row engine, value for value.
	for _, mv := range chunkedMVs() {
		want, err := sc.LoadTable(rowStore, mv.Name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.LoadTable(st, mv.Name)
		if err != nil {
			t.Fatal(err)
		}
		if want.NumRows() == 0 || want.NumRows() != got.NumRows() || !want.Schema.Equal(got.Schema) {
			t.Fatalf("MV %q: shape differs (%d vs %d rows)", mv.Name, want.NumRows(), got.NumRows())
		}
		for r := 0; r < want.NumRows(); r++ {
			for c := range want.Cols {
				if want.Cols[c].Value(r) != got.Cols[c].Value(r) {
					t.Fatalf("MV %q row %d col %d differs", mv.Name, r, c)
				}
			}
		}
	}

	// Disabled cache: no reuse on repeated runs.
	off, _ := run(sc.WithSessionDictCache(false))
	if _, err := off.Run(ctx); err != nil {
		t.Fatal(err)
	}
	resOff, err := off.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if reusedAt(resOff) != 0 {
		t.Fatal("WithSessionDictCache(false) still reused dictionaries")
	}
}
