// Salespipeline: a dbt-style retail MV pipeline on the real engine.
//
// Generates a TPC-DS-like dataset, declares twelve dependent materialized
// views in SQL, runs the pipeline unoptimized over NFS-like throttled
// storage, feeds the observed execution metadata back into the optimizer
// (§III-A), and re-runs with S/C's plan — reporting measured wall-clock
// speedup and verifying the MVs are identical.
//
//	go run ./examples/salespipeline
package main

import (
	"fmt"
	"log"
	"time"

	sc "github.com/shortcircuit-db/sc"
	"github.com/shortcircuit-db/sc/internal/exec"
	"github.com/shortcircuit-db/sc/internal/tpcds"
)

func main() {
	// 1. Generate base tables and store them on a throttled (NFS-like)
	//    store: 50 MB/s reads, 30 MB/s writes, 2ms access latency.
	ds, err := tpcds.Generate(tpcds.GenConfig{ScaleFactor: 1.0, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	newStore := func() sc.Store {
		inner := sc.NewMemStore()
		if err := ds.Save(inner, exec.SaveTable); err != nil {
			log.Fatal(err)
		}
		return sc.NewThrottledStore(inner, 50e6, 30e6, 2*time.Millisecond)
	}
	fmt.Printf("generated %d base tables, %.1f MB\n", len(ds.Tables), float64(ds.TotalBytes())/1e6)

	// 2. Declare the MV pipeline (profit report in the style of the
	//    paper's I/O 1 workload).
	var mvs []sc.MV
	for _, n := range tpcds.RealWorkload().Nodes {
		mvs = append(mvs, sc.MV{Name: n.Name, SQL: n.SQL})
	}
	memory := ds.TotalBytes() / 3 // Memory Catalog: a third of the dataset

	// 3. Baseline run: topological order, nothing kept in memory.
	baseRunner, err := sc.NewRunner(mvs, newStore(), 0)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := baseRunner.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:  %v end-to-end (%v reading inputs, %v computing)\n",
		baseline.Total.Round(time.Millisecond), baseline.TotalRead().Round(time.Millisecond),
		baseline.TotalCompute().Round(time.Millisecond))

	// 4. Optimize with the observed metadata and a device profile that
	//    matches the throttled store.
	device := sc.DeviceProfile{
		DiskReadBW: 50e6, DiskWriteBW: 30e6, DiskLatency: 2 * time.Millisecond,
		MemReadBW: 10e9, MemWriteBW: 10e9, ComputeScale: 1,
	}
	runner, err := sc.NewRunner(mvs, newStore(), memory)
	if err != nil {
		log.Fatal(err)
	}
	problem := runner.ProblemFromMetrics(baseline, device)
	plan, stats, err := sc.Optimize(problem, sc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer: flagged %d of %d MVs (score %.2fs) in %v\n",
		len(plan.FlaggedIDs()), len(mvs), stats.Score, stats.Elapsed.Round(time.Microsecond))
	for _, id := range plan.FlaggedIDs() {
		fmt.Printf("  keep in memory: %s\n", problem.G.Name(id))
	}

	// 5. S/C run.
	ours, err := runner.Run(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S/C:       %v end-to-end (%v reading inputs, %d inputs served from memory)\n",
		ours.Total.Round(time.Millisecond), ours.TotalRead().Round(time.Millisecond), memReads(ours))
	fmt.Printf("\nmeasured speedup: %.2fx  (peak Memory Catalog %.1f MB)\n",
		float64(baseline.Total)/float64(ours.Total), float64(ours.PeakMemory)/1e6)
}

func memReads(r *sc.RunResult) int {
	var n int
	for _, nm := range r.Nodes {
		n += nm.MemReads
	}
	return n
}
