// Salespipeline: a dbt-style retail MV pipeline on the real engine.
//
// Generates a TPC-DS-like dataset, declares twelve dependent materialized
// views in SQL, and drives one Refresher session through the §III-A loop:
// an unoptimized run over NFS-like throttled storage collects execution
// metadata, Optimize plans from what was observed, and the S/C run measures
// the wall-clock speedup — while an Observer watches the event stream
// (materializations, Memory Catalog evictions, the high-water mark).
//
//	go run ./examples/salespipeline
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	sc "github.com/shortcircuit-db/sc"
	"github.com/shortcircuit-db/sc/internal/exec"
	"github.com/shortcircuit-db/sc/internal/tpcds"
)

func main() {
	ctx := context.Background()

	// 1. Generate base tables on a throttled (NFS-like) store: 50 MB/s
	//    reads, 30 MB/s writes, 2ms access latency.
	ds, err := tpcds.Generate(tpcds.GenConfig{ScaleFactor: 1.0, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	inner := sc.NewMemStore()
	if err := ds.Save(inner, exec.SaveTable); err != nil {
		log.Fatal(err)
	}
	store := sc.NewThrottledStore(inner, 50e6, 30e6, 2*time.Millisecond)
	fmt.Printf("generated %d base tables, %.1f MB\n", len(ds.Tables), float64(ds.TotalBytes())/1e6)

	// 2. Declare the MV pipeline (profit report in the style of the
	//    paper's I/O 1 workload) and open a refresh session.
	var mvs []sc.MV
	for _, n := range tpcds.RealWorkload().Nodes {
		mvs = append(mvs, sc.MV{Name: n.Name, SQL: n.SQL})
	}
	device := sc.DeviceProfile{
		DiskReadBW: 50e6, DiskWriteBW: 30e6, DiskLatency: 2 * time.Millisecond,
		MemReadBW: 10e9, MemWriteBW: 10e9, ComputeScale: 1,
	}
	var evictions atomic.Int64
	var highWater atomic.Int64
	watch := sc.ObserverFunc(func(e sc.Event) {
		switch e.Kind {
		case sc.Evicted:
			evictions.Add(1)
		case sc.MemoryHighWater:
			highWater.Store(e.Bytes)
		}
	})
	ref, err := sc.New(mvs, store,
		sc.WithMemory(ds.TotalBytes()/3), // Memory Catalog: a third of the dataset
		sc.WithDevice(device),
		sc.WithObserver(watch),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Baseline run: no plan yet, so topological order, nothing kept in
	//    memory — and the session records every node's execution metadata.
	baseline, err := ref.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:  %v end-to-end (%v reading inputs, %v computing)\n",
		baseline.Total.Round(time.Millisecond), baseline.TotalRead().Round(time.Millisecond),
		baseline.TotalCompute().Round(time.Millisecond))

	// 4. Optimize from the observed metadata.
	plan, stats, err := ref.Optimize(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer: flagged %d of %d MVs (score %.2fs) in %v\n",
		len(plan.FlaggedIDs()), len(mvs), stats.Score, stats.Elapsed.Round(time.Microsecond))
	for _, id := range plan.FlaggedIDs() {
		fmt.Printf("  keep in memory: %s\n", ref.Graph().Name(id))
	}

	// 5. S/C run with the optimized plan.
	ours, err := ref.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S/C:       %v end-to-end (%v reading inputs, %d inputs served from memory)\n",
		ours.Total.Round(time.Millisecond), ours.TotalRead().Round(time.Millisecond), memReads(ours))
	fmt.Printf("\nmeasured speedup: %.2fx  (peak Memory Catalog %.1f MB, %d evictions observed, high water %.1f MB)\n",
		float64(baseline.Total)/float64(ours.Total), float64(ours.PeakMemory)/1e6,
		evictions.Load(), float64(highWater.Load())/1e6)
}

func memReads(r *sc.RunResult) int {
	var n int
	for _, nm := range r.Nodes {
		n += nm.MemReads
	}
	return n
}
