// Quickstart: optimize and simulate the paper's Figure 7 toy workload.
//
// Six MV updates with a 100GB Memory Catalog: executing v4 before v3 lets
// S/C keep both 100GB intermediates in memory at different times, tripling
// the total speedup score compared to the naive order.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	sc "github.com/shortcircuit-db/sc"
)

func main() {
	const gb = int64(1) << 30

	b := sc.NewGraphBuilder()
	v1 := b.Node("v1", 100*gb, 100)
	v2 := b.Node("v2", 10*gb, 10)
	v3 := b.Node("v3", 100*gb, 100)
	v4 := b.Node("v4", 10*gb, 10)
	v5 := b.Node("v5", 10*gb, 10)
	v6 := b.Node("v6", 10*gb, 10)
	must(b.Edge(v1, v2))
	must(b.Edge(v1, v4))
	must(b.Edge(v2, v3))
	must(b.Edge(v3, v5))
	_ = v6 // isolated MV: no dependencies

	p := b.Problem(100 * gb)
	plan, stats, err := sc.Solve(context.Background(), p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("S/C quickstart — Figure 7 workload")
	fmt.Print("execution order: ")
	for i, id := range plan.Order {
		if i > 0 {
			fmt.Print(" → ")
		}
		fmt.Print(p.G.Name(id))
	}
	fmt.Println()
	fmt.Print("kept in Memory Catalog: ")
	for i, id := range plan.FlaggedIDs() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(p.G.Name(id))
	}
	fmt.Printf("\ntotal speedup score: %.0f  (peak memory %d GB of %d GB budget)\n",
		stats.Score, sc.PeakMemory(p, plan)/gb, p.Memory/gb)
	fmt.Printf("converged in %d iterations (%v): %s\n\n", stats.Iterations, stats.Elapsed, stats.StopReason)

	// Simulate the refresh run against the paper's device profile and
	// compare with the unoptimized topological baseline.
	w := &sc.SimWorkload{G: p.G}
	for i := range p.Sizes {
		w.Nodes = append(w.Nodes, sc.SimNode{
			Name:           p.G.Name(sc.NodeID(i)),
			OutputBytes:    p.Sizes[i],
			BaseReadBytes:  p.Sizes[i] / 2,
			ComputeSeconds: 5,
		})
	}
	cfg := sc.SimConfig{Device: sc.PaperProfile(), Memory: p.Memory}
	topo, err := p.G.TopoSort()
	if err != nil {
		log.Fatal(err)
	}
	basePlan := &sc.Plan{Order: topo, Flagged: make([]bool, p.G.Len())}
	base, err := sc.SimulatePlan(context.Background(), w, basePlan, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ours, err := sc.SimulatePlan(context.Background(), w, plan, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated refresh: baseline %.0fs → S/C %.0fs (%.2fx speedup)\n",
		base.Total, ours.Total, base.Total/ours.Total)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
