// Adaptive: the §III-A execution-metadata feedback loop.
//
// Recurring pipelines drift: tables grow, selectivities change. This
// example runs the same MV pipeline across three simulated "days" of data
// growth with a single long-lived Refresher session. Each Refresh call
// executes the current plan, records the observed metadata, and
// re-optimizes for the next day — showing the plan adapting as nodes leave
// the flagged set when their outputs outgrow the Memory Catalog.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sc "github.com/shortcircuit-db/sc"
	"github.com/shortcircuit-db/sc/internal/exec"
	"github.com/shortcircuit-db/sc/internal/tpcds"
)

func main() {
	var mvs []sc.MV
	for _, n := range tpcds.RealWorkload().Nodes {
		mvs = append(mvs, sc.MV{Name: n.Name, SQL: n.SQL})
	}
	device := sc.DeviceProfile{
		DiskReadBW: 50e6, DiskWriteBW: 30e6, DiskLatency: 2 * time.Millisecond,
		MemReadBW: 10e9, MemWriteBW: 10e9, ComputeScale: 1,
	}

	// One store, one session: ingestion rewrites the base tables in place
	// each day, the NFS-like throttle shapes the refresh traffic.
	inner := sc.NewMemStore()
	store := sc.NewThrottledStore(inner, 50e6, 30e6, 2*time.Millisecond)
	ref, err := sc.New(mvs, store,
		sc.WithMemory(384<<10),   // fixed 384KB Memory Catalog across days
		sc.WithDevice(device),    // score model matching the throttled store
		sc.WithSizeGuess(32<<10), // optimistic 32KB guess before any observation
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Day 0 has no observations: the first plan flags from size guesses.
	if _, _, err := ref.Optimize(ctx); err != nil {
		log.Fatal(err)
	}

	for day, sf := range []float64{0.5, 1.0, 2.0} {
		// Fresh ingestion at today's data volume.
		ds, err := tpcds.Generate(tpcds.GenConfig{ScaleFactor: sf, Seed: int64(100 + day)})
		if err != nil {
			log.Fatal(err)
		}
		if err := ds.Save(inner, exec.SaveTable); err != nil {
			log.Fatal(err)
		}

		planned := len(ref.Plan().FlaggedIDs())
		res, err := ref.Refresh(ctx) // run today's plan, observe, re-optimize
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d (scale %.1f, %.1f MB data): %2d/%d MVs flagged, refresh %v, peak memory %.1f MB, fallbacks %d\n",
			day+1, sf, float64(ds.TotalBytes())/1e6,
			planned, ref.Graph().Len(),
			res.Total.Round(time.Millisecond), float64(res.PeakMemory)/1e6, res.FallbackWrites)
	}
	fmt.Println("\nDay 1 plans from default size estimates; later days plan from observed")
	fmt.Println("metadata. When data outgrows stale estimates mid-run, the Controller")
	fmt.Println("falls back to disk for outputs that no longer fit — no manual retuning.")
}
