// Adaptive: the §III-A execution-metadata feedback loop.
//
// Recurring pipelines drift: tables grow, selectivities change. This
// example runs the same MV pipeline across three simulated "days" of data
// growth. Each day it re-optimizes using the metadata observed on the
// previous run (sizes from the metrics store), showing the plan adapting —
// nodes leave the flagged set as their outputs outgrow the Memory Catalog.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	sc "github.com/shortcircuit-db/sc"
	"github.com/shortcircuit-db/sc/internal/exec"
	"github.com/shortcircuit-db/sc/internal/metrics"
	"github.com/shortcircuit-db/sc/internal/tpcds"
)

func main() {
	mvsSpec := tpcds.RealWorkload()
	var mvs []sc.MV
	for _, n := range mvsSpec.Nodes {
		mvs = append(mvs, sc.MV{Name: n.Name, SQL: n.SQL})
	}
	device := sc.DeviceProfile{
		DiskReadBW: 50e6, DiskWriteBW: 30e6, DiskLatency: 2 * time.Millisecond,
		MemReadBW: 10e9, MemWriteBW: 10e9, ComputeScale: 1,
	}
	md := metrics.NewStore()
	const memory = int64(384) << 10 // fixed 384KB Memory Catalog across days

	var plan *sc.Plan
	for day, sf := range []float64{0.5, 1.0, 2.0} {
		// Fresh ingestion at today's data volume.
		ds, err := tpcds.Generate(tpcds.GenConfig{ScaleFactor: sf, Seed: int64(100 + day)})
		if err != nil {
			log.Fatal(err)
		}
		inner := sc.NewMemStore()
		if err := ds.Save(inner, exec.SaveTable); err != nil {
			log.Fatal(err)
		}
		store := sc.NewThrottledStore(inner, 50e6, 30e6, 2*time.Millisecond)
		runner, err := sc.NewRunner(mvs, store, memory)
		if err != nil {
			log.Fatal(err)
		}
		g := runner.Graph()

		// Optimize with yesterday's observations (day 0 has none: the
		// optimizer sees fallback sizes and flags conservatively).
		sizes := md.Sizes(g, 32<<10) // optimistic 32KB guess before any observation
		p := &sc.Problem{G: g, Sizes: sizes, Memory: memory}
		sc.EstimateScores(p, device)
		plan, _, err = sc.Optimize(p, sc.Options{})
		if err != nil {
			log.Fatal(err)
		}

		res, err := runner.Run(plan)
		if err != nil {
			log.Fatal(err)
		}
		// Record today's observations for tomorrow.
		for _, n := range res.Nodes {
			md.Record(metrics.Observation{
				Name: n.Name, OutputBytes: n.OutputBytes,
				ReadTime: n.ReadTime, WriteTime: n.WriteTime, ComputeTime: n.ComputeTime,
				When: time.Now(),
			})
		}
		fmt.Printf("day %d (scale %.1f, %.1f MB data): %2d/%d MVs flagged, refresh %v, peak memory %.1f MB, fallbacks %d\n",
			day+1, sf, float64(ds.TotalBytes())/1e6,
			len(plan.FlaggedIDs()), g.Len(),
			res.Total.Round(time.Millisecond), float64(res.PeakMemory)/1e6, res.FallbackWrites)
	}
	fmt.Println("\nDay 1 plans from default size estimates; later days plan from observed")
	fmt.Println("metadata. When data outgrows stale estimates mid-run, the Controller")
	fmt.Println("falls back to disk for outputs that no longer fit — no manual retuning.")
}
