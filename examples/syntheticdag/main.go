// Syntheticdag: optimize a generated 100-node ETL workload (§VI-H) and
// inspect the Memory Catalog timeline.
//
// The workload generator produces a layered DAG in the style of Spark
// stage graphs with a Markov chain deciding node operations. S/C optimizes
// it in milliseconds; the simulator shows where the bounded memory is
// spent over the run.
//
//	go run ./examples/syntheticdag
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	sc "github.com/shortcircuit-db/sc"
	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/wlgen"
)

func main() {
	gen, err := wlgen.Generate(wlgen.Params{
		Nodes:        100,
		HeightWidth:  1,
		MaxOutdegree: 4,
		StageStdDev:  1,
		Seed:         2023,
	})
	if err != nil {
		log.Fatal(err)
	}
	const memory = int64(16) << 30
	device := sc.PaperProfile()
	p := gen.Problem(memory, device)

	plan, stats, err := sc.Solve(context.Background(), p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic workload: %d nodes, %d edges, %d stages\n",
		p.G.Len(), p.G.NumEdges(), len(gen.Stages))
	fmt.Printf("optimized in %v: %d/%d nodes flagged, score %.1fs, %d iterations\n\n",
		stats.Elapsed.Round(1000), len(plan.FlaggedIDs()), p.G.Len(), stats.Score, stats.Iterations)

	cfg := sc.SimConfig{Device: device, Memory: memory}
	topo, err := p.G.TopoSort()
	if err != nil {
		log.Fatal(err)
	}
	base, err := sc.SimulatePlan(context.Background(), gen.Workload, &sc.Plan{Order: topo, Flagged: make([]bool, p.G.Len())}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ours, err := sc.SimulatePlan(context.Background(), gen.Workload, plan, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated refresh: baseline %.0fs → S/C %.0fs (%.2fx)\n\n",
		base.Total, ours.Total, base.Total/ours.Total)

	// Memory Catalog occupancy over the optimized run (unit-time model).
	fmt.Println("Memory Catalog occupancy by execution step:")
	timeline := core.MemoryTimeline(p, plan)
	const width = 48
	for step := 0; step < len(timeline); step += 5 {
		frac := float64(timeline[step]) / float64(memory)
		bar := strings.Repeat("█", int(frac*width))
		fmt.Printf("step %3d |%-*s| %4.0f%%\n", step, width, bar, frac*100)
	}
}
