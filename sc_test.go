package sc_test

import (
	"context"
	"strings"
	"testing"
	"time"

	sc "github.com/shortcircuit-db/sc"
	"github.com/shortcircuit-db/sc/internal/table"
)

const gb = int64(1) << 30

func figure7Builder() (*sc.GraphBuilder, []sc.NodeID) {
	b := sc.NewGraphBuilder()
	var ids []sc.NodeID
	sizes := []int64{100 * gb, 10 * gb, 100 * gb, 10 * gb, 10 * gb, 10 * gb}
	scores := []float64{100, 10, 100, 10, 10, 10}
	for i, name := range []string{"v1", "v2", "v3", "v4", "v5", "v6"} {
		ids = append(ids, b.Node(name, sizes[i], scores[i]))
	}
	mustEdge := func(p, c sc.NodeID) {
		if err := b.Edge(p, c); err != nil {
			panic(err)
		}
	}
	mustEdge(ids[0], ids[1])
	mustEdge(ids[0], ids[3])
	mustEdge(ids[1], ids[2])
	mustEdge(ids[2], ids[4])
	return b, ids
}

func TestOptimizePublicAPI(t *testing.T) {
	b, _ := figure7Builder()
	p := b.Problem(100 * gb)
	plan, stats, err := sc.Optimize(p, sc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Feasible(p, plan) {
		t.Fatal("infeasible plan")
	}
	if stats.Score < 120 {
		t.Fatalf("score = %v, want ≥ 120", stats.Score)
	}
	if sc.PeakMemory(p, plan) > p.Memory {
		t.Fatal("peak above budget")
	}
}

func TestSolveAlgorithmSelection(t *testing.T) {
	b, _ := figure7Builder()
	p := b.Problem(100 * gb)
	for _, flagAlg := range sc.SelectorNames() {
		for _, ordAlg := range sc.OrdererNames() {
			sel, err := sc.SelectorByName(flagAlg, 3)
			if err != nil {
				t.Fatal(err)
			}
			ord, err := sc.OrdererByName(ordAlg, 3)
			if err != nil {
				t.Fatal(err)
			}
			plan, _, err := sc.Solve(context.Background(), p,
				sc.WithFlagSelector(sel), sc.WithOrderer(ord))
			if err != nil {
				t.Fatalf("%s+%s: %v", flagAlg, ordAlg, err)
			}
			if !sc.Feasible(p, plan) {
				t.Fatalf("%s+%s: infeasible", flagAlg, ordAlg)
			}
		}
	}
	if _, err := sc.SelectorByName("nope", 0); err == nil {
		t.Fatal("unknown flag algorithm accepted")
	}
	if _, err := sc.OrdererByName("nope", 0); err == nil {
		t.Fatal("unknown order algorithm accepted")
	}
}

func TestEstimateScores(t *testing.T) {
	b, _ := figure7Builder()
	p := b.Problem(100 * gb)
	sc.EstimateScores(p, sc.PaperProfile())
	for i, s := range p.Scores {
		if s < 0 {
			t.Fatalf("score %d negative", i)
		}
	}
	// v1 (100GB, two children) must score far above v6 (10GB, childless).
	if p.Scores[0] <= p.Scores[5] {
		t.Fatalf("scores: v1 %v <= v6 %v", p.Scores[0], p.Scores[5])
	}
}

func baseTables(t *testing.T, store sc.Store) {
	t.Helper()
	events := table.New(table.NewSchema(
		table.Column{Name: "user_id", Type: table.Int},
		table.Column{Name: "kind", Type: table.Str},
		table.Column{Name: "value", Type: table.Float},
	))
	kinds := []string{"view", "click", "buy"}
	for i := 0; i < 600; i++ {
		if err := events.AppendRow(
			table.IntValue(int64(i%37)),
			table.StrValue(kinds[i%3]),
			table.FloatValue(float64(i%100)),
		); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.SaveTable(store, "events", events); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerEndToEnd(t *testing.T) {
	store := sc.NewMemStore()
	baseTables(t, store)
	mvs := []sc.MV{
		{Name: "by_user", SQL: `SELECT user_id, SUM(value) AS total, COUNT(*) AS n FROM events GROUP BY user_id`},
		{Name: "heavy_users", SQL: `SELECT user_id, total FROM by_user WHERE total > 500 ORDER BY total DESC`},
		{Name: "user_count", SQL: `SELECT COUNT(*) AS users FROM by_user`},
	}
	runner, err := sc.NewRunner(mvs, store, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if runner.Graph().Len() != 3 {
		t.Fatalf("graph nodes = %d", runner.Graph().Len())
	}
	// Baseline run.
	baseline, err := runner.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Nodes) != 3 {
		t.Fatalf("executed %d nodes", len(baseline.Nodes))
	}
	// Optimize from observed metrics, re-run.
	p := runner.ProblemFromMetrics(baseline, sc.PaperProfile())
	plan, _, err := sc.Optimize(p, sc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Outputs must exist and match the baseline run's.
	for _, name := range []string{"by_user", "heavy_users", "user_count"} {
		got, err := sc.LoadTable(store, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.NumRows() == 0 && name != "heavy_users" {
			t.Fatalf("%s empty", name)
		}
	}
	if res.PeakMemory > 64<<20 {
		t.Fatal("memory budget exceeded")
	}
}

func TestRunnerRejectsBadSQL(t *testing.T) {
	store := sc.NewMemStore()
	if _, err := sc.NewRunner([]sc.MV{{Name: "x", SQL: "NOT SQL AT ALL"}}, store, 0); err == nil {
		t.Fatal("bad SQL accepted")
	}
}

func TestThrottledStoreSlowsRuns(t *testing.T) {
	fast := sc.NewMemStore()
	baseTables(t, fast)
	slow := sc.NewThrottledStore(fast, 2e6, 2e6, time.Millisecond)
	mvs := []sc.MV{{Name: "agg", SQL: `SELECT kind, COUNT(*) AS n FROM events GROUP BY kind`}}
	runner, err := sc.NewRunner(mvs, slow, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := runner.Run(nil); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("throttle had no effect")
	}
}

func TestSimulatePublicAPI(t *testing.T) {
	b, _ := figure7Builder()
	p := b.Problem(100 * gb)
	plan, _, err := sc.Optimize(p, sc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := &sc.SimWorkload{G: p.G}
	for i := range p.Sizes {
		w.Nodes = append(w.Nodes, sc.SimNode{
			Name:        p.G.Name(sc.NodeID(i)),
			OutputBytes: p.Sizes[i], ComputeSeconds: 1,
		})
	}
	res, err := sc.Simulate(w, plan, sc.SimConfig{Device: sc.PaperProfile(), Memory: p.Memory})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 || int64(res.PeakMemory) > p.Memory {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestGraphBuilderEdgeValidation(t *testing.T) {
	b := sc.NewGraphBuilder()
	a := b.Node("a", 1, 1)
	if err := b.Edge(a, a); err == nil {
		t.Fatal("self edge accepted")
	}
	if err := b.Edge(a, 99); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestRunnerSQLErrorMentionsNode(t *testing.T) {
	store := sc.NewMemStore()
	baseTables(t, store)
	mvs := []sc.MV{{Name: "broken", SQL: `SELECT missing_col FROM events`}}
	runner, err := sc.NewRunner(mvs, store, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = runner.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("err = %v", err)
	}
}
