package sc_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	sc "github.com/shortcircuit-db/sc"
)

// chainMVs returns a 4-deep linear pipeline over the events base table.
func chainMVs() []sc.MV {
	return []sc.MV{
		{Name: "m1", SQL: `SELECT user_id, SUM(value) AS total FROM events GROUP BY user_id`},
		{Name: "m2", SQL: `SELECT user_id, total FROM m1 WHERE total > 100`},
		{Name: "m3", SQL: `SELECT user_id, total FROM m2 ORDER BY total DESC`},
		{Name: "m4", SQL: `SELECT COUNT(*) AS n FROM m3`},
	}
}

// branchMVs returns a diamond-with-fanout DAG: one aggregation root, four
// independent mid nodes, and a final consumer — independent nodes for the
// worker pool to overlap.
func branchMVs() []sc.MV {
	mvs := []sc.MV{
		{Name: "root_agg", SQL: `SELECT user_id, kind, SUM(value) AS total, COUNT(*) AS n FROM events GROUP BY user_id, kind`},
	}
	for i := 0; i < 4; i++ {
		mvs = append(mvs, sc.MV{
			Name: fmt.Sprintf("mid%d", i),
			SQL:  fmt.Sprintf(`SELECT user_id, total FROM root_agg WHERE total > %d`, i*50),
		})
	}
	mvs = append(mvs, sc.MV{Name: "final", SQL: `SELECT COUNT(*) AS rows FROM mid0`})
	return mvs
}

func TestNewValidatesInputs(t *testing.T) {
	store := sc.NewMemStore()
	mvs := chainMVs()
	if _, err := sc.New(mvs, nil); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := sc.New(nil, store); err == nil {
		t.Fatal("empty MV list accepted")
	}
	if _, err := sc.New(mvs, store, sc.WithMemory(-1)); err == nil {
		t.Fatal("negative memory budget accepted")
	}
	if _, err := sc.New(mvs, store, sc.WithMaxIterations(-2)); err == nil {
		t.Fatal("negative iteration cap accepted")
	}
	if _, err := sc.New(mvs, store, sc.WithSizeGuess(-5)); err == nil {
		t.Fatal("negative size guess accepted")
	}
}

func TestUnknownRegistryNames(t *testing.T) {
	if _, err := sc.SelectorByName("no-such-selector", 1); err == nil || !strings.Contains(err.Error(), "no-such-selector") {
		t.Fatalf("err = %v, want unknown-selector error naming the input", err)
	}
	if _, err := sc.OrdererByName("no-such-orderer", 1); err == nil || !strings.Contains(err.Error(), "no-such-orderer") {
		t.Fatalf("err = %v, want unknown-orderer error naming the input", err)
	}
}

// The registries are process-global, so test registrations must happen at
// most once even when the test binary reruns tests (-count > 1).
var registerTestStrategies sync.Once

func TestDuplicateRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	registerDupTestNames()
	mustPanic("duplicate selector", func() {
		sc.RegisterSelector("dup-sel-test", func(int64) sc.Selector { return nil })
	})
	mustPanic("duplicate orderer", func() {
		sc.RegisterOrderer("DUP-ORD-TEST", func(int64) sc.Orderer { return nil }) // case-insensitive
	})
	mustPanic("empty selector name", func() {
		sc.RegisterSelector("", func(int64) sc.Selector { return nil })
	})
	mustPanic("nil orderer factory", func() {
		sc.RegisterOrderer("nil-factory-test", nil)
	})
}

func TestSolveHonorsCancelledContext(t *testing.T) {
	b, _ := figure7Builder()
	p := b.Problem(100 * gb)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sc.Solve(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCancelStopsRefreshMidRun(t *testing.T) {
	store := sc.NewMemStore()
	baseTables(t, store)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	watch := sc.ObserverFunc(func(e sc.Event) {
		if e.Kind == sc.NodeDone {
			once.Do(cancel) // pull the plug after the first node completes
		}
	})
	ref, err := sc.New(chainMVs(), store, sc.WithObserver(watch))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial RunResult returned")
	}
	if n := len(res.Nodes); n < 1 || n >= 4 {
		t.Fatalf("partial result has %d nodes, want at least 1 and fewer than 4", n)
	}
	// The tail of the chain must not have been materialized.
	if _, err := sc.LoadTable(store, "m4"); err == nil {
		t.Fatal("m4 materialized despite cancellation")
	}
}

// registerDupTestNames registers the throwaway strategies used by the
// duplicate-registration and custom-selector tests, once per process.
func registerDupTestNames() {
	registerTestStrategies.Do(func() {
		sc.RegisterSelector("dup-sel-test", func(int64) sc.Selector { return nil })
		sc.RegisterOrderer("dup-ord-test", func(int64) sc.Orderer { return nil })
		sc.RegisterSelector("root-flagger", func(int64) sc.Selector { return rootFlagger{} })
	})
}

// rootFlaggerInvocations counts Select calls across the process; the
// registered factory has to outlive any single test run.
var rootFlaggerInvocations atomic.Int32

// rootFlagger is a custom Selector implemented purely against the public
// API surface (aliases make the internal types nameable).
type rootFlagger struct{}

func (rootFlagger) Name() string { return "root-flagger" }

func (rootFlagger) Select(p *sc.Problem, order []sc.NodeID) (*sc.Plan, error) {
	rootFlaggerInvocations.Add(1)
	pl := &sc.Plan{Order: append([]sc.NodeID(nil), order...), Flagged: make([]bool, len(order))}
	for i := range pl.Flagged {
		id := sc.NodeID(i)
		if len(p.G.Parents(id)) == 0 && p.Sizes[i] <= p.Memory {
			pl.Flagged[i] = true
		}
	}
	return pl, nil
}

func TestCustomRegisteredSelectorEndToEnd(t *testing.T) {
	registerDupTestNames()
	rootFlaggerInvocations.Store(0)
	sel, err := sc.SelectorByName("Root-Flagger", 0) // case-insensitive lookup
	if err != nil {
		t.Fatal(err)
	}
	store := sc.NewMemStore()
	baseTables(t, store)
	ref, err := sc.New(chainMVs(), store,
		sc.WithMemory(64<<20),
		sc.WithFlagSelector(sel),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// First refresh runs the baseline and re-plans with the custom selector.
	if _, err := ref.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if rootFlaggerInvocations.Load() == 0 {
		t.Fatal("custom selector never invoked")
	}
	plan := ref.Plan()
	if plan == nil {
		t.Fatal("no plan after Refresh")
	}
	rootID := ref.Graph().Lookup("m1")
	if !plan.Flagged[rootID] {
		t.Fatal("custom selector's root flag not in the session plan")
	}
	// Second run executes that plan: m1 must be served from memory.
	res, err := ref.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var m1Flagged bool
	var memReads int
	for _, nm := range res.Nodes {
		if nm.Name == "m1" {
			m1Flagged = nm.Flagged
		}
		memReads += nm.MemReads
	}
	if !m1Flagged || memReads == 0 {
		t.Fatalf("custom plan not executed end-to-end: m1 flagged=%v, memory reads=%d", m1Flagged, memReads)
	}
}

func TestConcurrentRunMatchesSerialByteForByte(t *testing.T) {
	const memory = int64(64) << 20
	run := func(concurrency int) (*sc.RunResult, sc.Store, *sc.Plan) {
		t.Helper()
		store := sc.NewMemStore()
		baseTables(t, store)
		ref, err := sc.New(branchMVs(), store,
			sc.WithMemory(memory),
			sc.WithConcurrency(concurrency),
		)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		// Baseline collects metadata, Optimize flags from it, second run
		// exercises the Memory Catalog (+ worker pool when concurrent).
		if _, err := ref.Refresh(ctx); err != nil {
			t.Fatal(err)
		}
		res, err := ref.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res, store, ref.Plan()
	}

	serialRes, serialStore, plan := run(1)
	concRes, concStore, _ := run(4)

	if len(plan.FlaggedIDs()) == 0 {
		t.Fatal("optimizer flagged nothing; test exercises no Memory Catalog traffic")
	}
	if serialRes.PeakMemory > memory || concRes.PeakMemory > memory {
		t.Fatalf("Memory Catalog budget exceeded: serial peak %d, concurrent peak %d, budget %d",
			serialRes.PeakMemory, concRes.PeakMemory, memory)
	}
	for _, mv := range branchMVs() {
		a, err := serialStore.Read(mv.Name + ".sct")
		if err != nil {
			t.Fatalf("serial %s: %v", mv.Name, err)
		}
		b, err := concStore.Read(mv.Name + ".sct")
		if err != nil {
			t.Fatalf("concurrent %s: %v", mv.Name, err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs between serial and concurrent runs (%d vs %d bytes)", mv.Name, len(a), len(b))
		}
	}
	if len(concRes.Nodes) != len(serialRes.Nodes) {
		t.Fatalf("node metrics count differs: %d vs %d", len(concRes.Nodes), len(serialRes.Nodes))
	}
}

func TestObserverEventStream(t *testing.T) {
	store := sc.NewMemStore()
	baseTables(t, store)
	var mu sync.Mutex
	counts := map[sc.EventKind]int{}
	watch := sc.ObserverFunc(func(e sc.Event) {
		mu.Lock()
		counts[e.Kind]++
		mu.Unlock()
	})
	ref, err := sc.New(chainMVs(), store,
		sc.WithMemory(64<<20),
		sc.WithObserver(watch),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := ref.Refresh(ctx); err != nil { // baseline + optimize
		t.Fatal(err)
	}
	if _, err := ref.Run(ctx); err != nil { // flagged run
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if counts[sc.NodeStart] != 8 || counts[sc.NodeDone] != 8 { // 4 nodes × 2 runs
		t.Fatalf("node events: %d starts, %d dones, want 8 each", counts[sc.NodeStart], counts[sc.NodeDone])
	}
	if counts[sc.Materialized] != 8 {
		t.Fatalf("materialized events = %d, want 8", counts[sc.Materialized])
	}
	if counts[sc.IterationDone] == 0 {
		t.Fatal("no IterationDone events from Optimize")
	}
	if counts[sc.Evicted] == 0 {
		t.Fatal("no Evicted events despite flagged run")
	}
	if counts[sc.MemoryHighWater] == 0 {
		t.Fatal("no MemoryHighWater events despite flagged run")
	}
}

func TestRefresherSimulatePredictsFromMetadata(t *testing.T) {
	store := sc.NewMemStore()
	baseTables(t, store)
	ref, err := sc.New(chainMVs(), store, sc.WithMemory(64<<20))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := ref.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	simRes, err := ref.Simulate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Total <= 0 {
		t.Fatalf("simulated total = %v", simRes.Total)
	}
	if simRes.ReadSeconds <= 0 {
		t.Fatalf("simulated read time = %v; base-table bytes not modelled", simRes.ReadSeconds)
	}
	// Simulation honors cancellation too.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := ref.Simulate(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("simulate err = %v, want context.Canceled", err)
	}
}

func TestRefresherDeadline(t *testing.T) {
	store := sc.NewMemStore()
	baseTables(t, store)
	// A store so slow the 4-node chain cannot finish inside the deadline.
	slow := sc.NewThrottledStore(store, 1e6, 1e6, 5*time.Millisecond)
	ref, err := sc.New(chainMVs(), slow)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := ref.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
