package table

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleSchema() Schema {
	return NewSchema(
		Column{Name: "id", Type: Int},
		Column{Name: "price", Type: Float},
		Column{Name: "name", Type: Str},
	)
}

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tb := New(sampleSchema())
	rows := [][]Value{
		{IntValue(1), FloatValue(9.5), StrValue("ale")},
		{IntValue(2), FloatValue(3.25), StrValue("bock")},
		{IntValue(3), FloatValue(7.0), StrValue("stout")},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestSchemaColIndexCaseInsensitive(t *testing.T) {
	s := sampleSchema()
	if s.ColIndex("PRICE") != 1 {
		t.Fatalf("ColIndex(PRICE) = %d", s.ColIndex("PRICE"))
	}
	if s.ColIndex("missing") != -1 {
		t.Fatal("missing column found")
	}
}

func TestSchemaEqualAndString(t *testing.T) {
	a, b := sampleSchema(), sampleSchema()
	if !a.Equal(b) {
		t.Fatal("identical schemas unequal")
	}
	b.Cols[0].Type = Float
	if a.Equal(b) {
		t.Fatal("different schemas equal")
	}
	if a.String() != "(id INT, price FLOAT, name STRING)" {
		t.Fatalf("String = %s", a.String())
	}
}

func TestAppendRowAndAccess(t *testing.T) {
	tb := sampleTable(t)
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	row := tb.Row(1)
	if row[0].I != 2 || row[1].F != 3.25 || row[2].S != "bock" {
		t.Fatalf("Row(1) = %v", row)
	}
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRowArityAndTypeErrors(t *testing.T) {
	tb := New(sampleSchema())
	if err := tb.AppendRow(IntValue(1)); err == nil {
		t.Fatal("short row accepted")
	}
	if err := tb.AppendRow(StrValue("x"), FloatValue(1), StrValue("y")); err == nil {
		t.Fatal("type-mismatched row accepted")
	}
}

func TestGather(t *testing.T) {
	tb := sampleTable(t)
	g := tb.Gather([]int{2, 0})
	if g.NumRows() != 2 {
		t.Fatalf("NumRows = %d", g.NumRows())
	}
	if g.Row(0)[2].S != "stout" || g.Row(1)[2].S != "ale" {
		t.Fatalf("gather rows wrong: %v %v", g.Row(0), g.Row(1))
	}
	// Original untouched.
	if tb.NumRows() != 3 {
		t.Fatal("gather mutated source")
	}
}

func TestByteSizeGrowsWithRows(t *testing.T) {
	tb := sampleTable(t)
	before := tb.ByteSize()
	if before <= 0 {
		t.Fatal("zero size for populated table")
	}
	if err := tb.AppendRow(IntValue(4), FloatValue(1), StrValue("ipa")); err != nil {
		t.Fatal(err)
	}
	if tb.ByteSize() <= before {
		t.Fatal("ByteSize did not grow")
	}
}

func TestColumnLookup(t *testing.T) {
	tb := sampleTable(t)
	if v := tb.Column("name"); v == nil || v.Strs[0] != "ale" {
		t.Fatalf("Column(name) = %v", v)
	}
	if tb.Column("nope") != nil {
		t.Fatal("missing column returned non-nil")
	}
}

func TestValueCompare(t *testing.T) {
	lt, err := IntValue(1).Compare(FloatValue(2.5))
	if err != nil || lt != -1 {
		t.Fatalf("1 vs 2.5: %d, %v", lt, err)
	}
	eq, err := StrValue("a").Compare(StrValue("a"))
	if err != nil || eq != 0 {
		t.Fatalf("a vs a: %d, %v", eq, err)
	}
	if _, err := StrValue("a").Compare(IntValue(1)); err == nil {
		t.Fatal("string vs int accepted")
	}
}

func TestValueString(t *testing.T) {
	if IntValue(7).String() != "7" || FloatValue(2.5).String() != "2.5" || StrValue("x").String() != "x" {
		t.Fatal("Value.String misformats")
	}
}

func TestVectorAppendTypeMismatch(t *testing.T) {
	v := &Vector{Type: Int}
	if err := v.Append(StrValue("x")); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestValidateDetectsRaggedColumns(t *testing.T) {
	tb := sampleTable(t)
	tb.Cols[0].Ints = tb.Cols[0].Ints[:1]
	if err := tb.Validate(); err == nil {
		t.Fatal("ragged table validated")
	}
}

func TestValidateDetectsTypeDrift(t *testing.T) {
	tb := sampleTable(t)
	tb.Cols[0] = &Vector{Type: Str, Strs: []string{"a", "b", "c"}}
	if err := tb.Validate(); err == nil {
		t.Fatal("type drift validated")
	}
}

func TestGatherRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New(sampleSchema())
		n := rng.Intn(50)
		for i := 0; i < n; i++ {
			if err := tb.AppendRow(IntValue(rng.Int63n(100)), FloatValue(rng.Float64()), StrValue("s")); err != nil {
				return false
			}
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		g := tb.Gather(idx)
		if g.NumRows() != n {
			return false
		}
		for i := 0; i < n; i++ {
			a, b := tb.Row(i), g.Row(i)
			for c := range a {
				if a[c] != b[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
