// Package table provides the in-memory columnar table representation used
// by the execution engine, the Memory Catalog and the on-disk format: a
// schema of typed columns plus one value vector per column.
package table

import (
	"fmt"
	"strings"
)

// Type enumerates column types. The engine supports 64-bit integers,
// 64-bit floats and strings, which covers the TPC-DS workloads used in the
// paper's evaluation (dates are encoded as yyyymmdd integers, as TPC-DS
// surrogate keys do).
type Type uint8

// Column types.
const (
	Int Type = iota
	Float
	Str
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case Str:
		return "STRING"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Column is a named, typed column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from name:type pairs.
func NewSchema(cols ...Column) Schema { return Schema{Cols: cols} }

// ColIndex returns the index of the named column, or -1. Matching is
// case-insensitive, like SQL identifiers.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// NumCols returns the number of columns.
func (s Schema) NumCols() int { return len(s.Cols) }

// Equal reports whether two schemas have identical columns.
func (s Schema) Equal(o Schema) bool {
	if len(s.Cols) != len(o.Cols) {
		return false
	}
	for i := range s.Cols {
		if s.Cols[i] != o.Cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(a INT, b STRING)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Vector is a typed column of values; exactly one of the slices is in use,
// determined by Type.
type Vector struct {
	Type   Type
	Ints   []int64
	Floats []float64
	Strs   []string
}

// Len returns the number of values.
func (v *Vector) Len() int {
	switch v.Type {
	case Int:
		return len(v.Ints)
	case Float:
		return len(v.Floats)
	default:
		return len(v.Strs)
	}
}

// Append adds a value; it must match the vector type.
func (v *Vector) Append(val Value) error {
	if val.Type != v.Type {
		return fmt.Errorf("table: append %s value to %s vector", val.Type, v.Type)
	}
	switch v.Type {
	case Int:
		v.Ints = append(v.Ints, val.I)
	case Float:
		v.Floats = append(v.Floats, val.F)
	default:
		v.Strs = append(v.Strs, val.S)
	}
	return nil
}

// Value reads the value at row i.
func (v *Vector) Value(i int) Value {
	switch v.Type {
	case Int:
		return IntValue(v.Ints[i])
	case Float:
		return FloatValue(v.Floats[i])
	default:
		return StrValue(v.Strs[i])
	}
}

// Gather returns a new vector with the values at the given row indices.
func (v *Vector) Gather(idx []int) *Vector {
	out := &Vector{Type: v.Type}
	switch v.Type {
	case Int:
		out.Ints = make([]int64, len(idx))
		for k, i := range idx {
			out.Ints[k] = v.Ints[i]
		}
	case Float:
		out.Floats = make([]float64, len(idx))
		for k, i := range idx {
			out.Floats[k] = v.Floats[i]
		}
	default:
		out.Strs = make([]string, len(idx))
		for k, i := range idx {
			out.Strs[k] = v.Strs[i]
		}
	}
	return out
}

// ByteSize estimates the in-memory footprint of the vector.
func (v *Vector) ByteSize() int64 {
	switch v.Type {
	case Int, Float:
		return int64(v.Len()) * 8
	default:
		var n int64
		for _, s := range v.Strs {
			n += int64(len(s)) + 16 // string header overhead
		}
		return n
	}
}

// Value is a dynamically typed scalar.
type Value struct {
	Type Type
	I    int64
	F    float64
	S    string
}

// IntValue wraps an int64.
func IntValue(i int64) Value { return Value{Type: Int, I: i} }

// FloatValue wraps a float64.
func FloatValue(f float64) Value { return Value{Type: Float, F: f} }

// StrValue wraps a string.
func StrValue(s string) Value { return Value{Type: Str, S: s} }

// AsFloat converts numeric values to float64 for arithmetic.
func (v Value) AsFloat() float64 {
	if v.Type == Int {
		return float64(v.I)
	}
	return v.F
}

// Compare orders two values of the same type: -1, 0, or 1. Numeric types
// compare cross-type (INT vs FLOAT) by value.
func (v Value) Compare(o Value) (int, error) {
	if v.Type == Str || o.Type == Str {
		if v.Type != Str || o.Type != Str {
			return 0, fmt.Errorf("table: cannot compare %s with %s", v.Type, o.Type)
		}
		return strings.Compare(v.S, o.S), nil
	}
	a, b := v.AsFloat(), o.AsFloat()
	switch {
	case a < b:
		return -1, nil
	case a > b:
		return 1, nil
	default:
		return 0, nil
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Type {
	case Int:
		return fmt.Sprintf("%d", v.I)
	case Float:
		return fmt.Sprintf("%g", v.F)
	default:
		return v.S
	}
}

// Table is a columnar table: a schema plus one vector per column, all of
// equal length.
type Table struct {
	Schema Schema
	Cols   []*Vector
}

// New creates an empty table with the given schema.
func New(schema Schema) *Table {
	t := &Table{Schema: schema, Cols: make([]*Vector, len(schema.Cols))}
	for i, c := range schema.Cols {
		t.Cols[i] = &Vector{Type: c.Type}
	}
	return t
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// AppendRow appends one value per column.
func (t *Table) AppendRow(vals ...Value) error {
	if len(vals) != len(t.Cols) {
		return fmt.Errorf("table: row has %d values, schema has %d columns", len(vals), len(t.Cols))
	}
	for i, v := range vals {
		if err := t.Cols[i].Append(v); err != nil {
			return fmt.Errorf("table: column %q: %w", t.Schema.Cols[i].Name, err)
		}
	}
	return nil
}

// Row materializes row i as values (for tests and display; the engine works
// columnar where it matters).
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.Cols))
	for c, v := range t.Cols {
		out[c] = v.Value(i)
	}
	return out
}

// Gather returns a new table containing the given rows in order.
func (t *Table) Gather(idx []int) *Table {
	out := &Table{Schema: t.Schema, Cols: make([]*Vector, len(t.Cols))}
	for c, v := range t.Cols {
		out.Cols[c] = v.Gather(idx)
	}
	return out
}

// ByteSize estimates the table's in-memory footprint; the Memory Catalog
// accounts with this value.
func (t *Table) ByteSize() int64 {
	var n int64
	for _, v := range t.Cols {
		n += v.ByteSize()
	}
	return n
}

// Column returns the vector of the named column, or nil.
func (t *Table) Column(name string) *Vector {
	i := t.Schema.ColIndex(name)
	if i < 0 {
		return nil
	}
	return t.Cols[i]
}

// Validate checks that all column vectors agree in length and type.
func (t *Table) Validate() error {
	if len(t.Cols) != len(t.Schema.Cols) {
		return fmt.Errorf("table: %d vectors for %d schema columns", len(t.Cols), len(t.Schema.Cols))
	}
	n := t.NumRows()
	for i, v := range t.Cols {
		if v.Type != t.Schema.Cols[i].Type {
			return fmt.Errorf("table: column %q type %s, schema says %s", t.Schema.Cols[i].Name, v.Type, t.Schema.Cols[i].Type)
		}
		if v.Len() != n {
			return fmt.Errorf("table: column %q has %d rows, want %d", t.Schema.Cols[i].Name, v.Len(), n)
		}
	}
	return nil
}
