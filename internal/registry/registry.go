// Package registry is the shared name→factory machinery behind the
// pluggable algorithm registries (flagging selectors, orderers). Lookups
// are case-insensitive; registration is panic-on-duplicate so wiring
// mistakes surface at startup rather than mid-refresh.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry maps case-insensitive names to seeded factories of T.
type Registry[T any] struct {
	pkg     string            // package prefix for error/panic messages
	noun    string            // what an entry is called, e.g. "selector"
	aliases map[string]string // historical spellings → canonical names

	mu      sync.RWMutex
	entries map[string]func(seed int64) T
}

// New returns an empty registry. aliases may be nil.
func New[T any](pkg, noun string, aliases map[string]string) *Registry[T] {
	return &Registry[T]{
		pkg:     pkg,
		noun:    noun,
		aliases: aliases,
		entries: make(map[string]func(seed int64) T),
	}
}

// Register makes a factory available under name. It panics on an empty
// name, a nil factory, or a duplicate registration.
func (r *Registry[T]) Register(name string, f func(seed int64) T) {
	key := strings.ToLower(name)
	if key == "" {
		panic(fmt.Sprintf("%s: Register with empty name", r.pkg))
	}
	if f == nil {
		panic(fmt.Sprintf("%s: Register(%q) with nil factory", r.pkg, name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[key]; dup {
		panic(fmt.Sprintf("%s: Register(%q) called twice", r.pkg, name))
	}
	r.entries[key] = f
}

// New returns the entry registered under name (case-insensitive, aliases
// resolved), constructed with seed.
func (r *Registry[T]) New(name string, seed int64) (T, error) {
	key := strings.ToLower(name)
	if canon, ok := r.aliases[key]; ok {
		key = canon
	}
	r.mu.RLock()
	f, ok := r.entries[key]
	r.mu.RUnlock()
	if !ok {
		var zero T
		return zero, fmt.Errorf("%s: unknown %s %q (registered: %s)",
			r.pkg, r.noun, name, strings.Join(r.Names(), ", "))
	}
	return f(seed), nil
}

// Names lists registered canonical names, sorted.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for k := range r.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
