// Package sched is S/C's scheduler-wide token budget: one pool of worker
// tokens (one token ≈ one core's worth of work) plus a byte ceiling for
// in-flight decoded partitions, shared by every layer that creates
// parallelism — the exec Controller's node dispatcher, the kernels'
// intra-node chunk-parallel scans, and gateway admission. Because all of
// them draw from the same pool, concurrency × memory stays bounded no
// matter how parallelism nests: a Controller running k nodes has handed
// out k tokens, and a kernel inside one of those nodes can only widen by
// borrowing tokens the dispatcher is not using.
//
// Deadlock freedom comes from a simple discipline: only top-level
// dispatchers block waiting for a token (via TokenCh); nested borrowers —
// the chunk-parallel kernels — use TryAcquire and fall back to running
// serially on the token their node already holds. A borrower therefore
// never waits on a resource held by its own ancestor.
package sched

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Scheduler is a fixed-size token pool with a byte ceiling. The zero value
// is not usable; construct with New. All methods are safe for concurrent
// use.
type Scheduler struct {
	tokens int
	ch     chan struct{}

	byteCeiling int64
	bytes       atomic.Int64 // reserved in-flight partition bytes

	committed atomic.Int64 // admission-side soft commitments, in tokens

	borrowed  atomic.Int64 // successful TryAcquire grants
	borrowsNA atomic.Int64 // TryAcquire misses (pool empty)
}

// New builds a scheduler with the given token count and byte ceiling for
// in-flight decoded partition bytes. tokens < 1 defaults to GOMAXPROCS;
// byteCeiling <= 0 means unlimited bytes.
func New(tokens int, byteCeiling int64) *Scheduler {
	if tokens < 1 {
		tokens = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{tokens: tokens, ch: make(chan struct{}, tokens), byteCeiling: byteCeiling}
	for i := 0; i < tokens; i++ {
		s.ch <- struct{}{}
	}
	return s
}

// Tokens returns the pool size.
func (s *Scheduler) Tokens() int { return s.tokens }

// TokenCh exposes the pool for select-based blocking acquisition: a
// receive that succeeds grants one token, which must be returned with
// Release. Only top-level dispatchers may block here.
func (s *Scheduler) TokenCh() <-chan struct{} { return s.ch }

// Acquire blocks until a token is available. Only top-level dispatchers
// may call it; nested work must use TryAcquire.
func (s *Scheduler) Acquire() { <-s.ch }

// TryAcquire grants a token without blocking. Callers that already hold a
// token (kernels widening a scan) use this so nesting can never deadlock:
// a miss means "run on the token you have".
func (s *Scheduler) TryAcquire() bool {
	select {
	case <-s.ch:
		s.borrowed.Add(1)
		return true
	default:
		s.borrowsNA.Add(1)
		return false
	}
}

// Release returns one token to the pool. Releasing more tokens than were
// acquired panics: it means two layers think they own the same token.
func (s *Scheduler) Release() {
	select {
	case s.ch <- struct{}{}:
	default:
		panic("sched: Release without matching acquire")
	}
}

// TryReserveBytes reserves n bytes of in-flight decoded partition budget,
// failing (without blocking) when the ceiling would be exceeded. n <= 0 is
// a no-op success. A successful reservation must be returned with
// ReleaseBytes(n).
func (s *Scheduler) TryReserveBytes(n int64) bool {
	if n <= 0 || s.byteCeiling <= 0 {
		return true
	}
	for {
		cur := s.bytes.Load()
		if cur+n > s.byteCeiling {
			return false
		}
		if s.bytes.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// ReleaseBytes returns a TryReserveBytes reservation.
func (s *Scheduler) ReleaseBytes(n int64) {
	if n <= 0 || s.byteCeiling <= 0 {
		return
	}
	if s.bytes.Add(-n) < 0 {
		panic(fmt.Sprintf("sched: ReleaseBytes(%d) below zero", n))
	}
}

// TryCommit records an admission-side soft commitment of n tokens — the
// planned width of a run about to be admitted — failing when commitments
// would exceed the pool size. Commitments do not remove runtime tokens
// (runs borrow those as they execute); they bound how much planned
// parallelism admission lets in at once. Undo with Uncommit.
func (s *Scheduler) TryCommit(n int) bool {
	if n <= 0 {
		return true
	}
	for {
		cur := s.committed.Load()
		if cur+int64(n) > int64(s.tokens) {
			return false
		}
		if s.committed.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

// Uncommit returns a TryCommit commitment.
func (s *Scheduler) Uncommit(n int) {
	if n <= 0 {
		return
	}
	if s.committed.Add(-int64(n)) < 0 {
		panic(fmt.Sprintf("sched: Uncommit(%d) below zero", n))
	}
}

// Committed returns the current admission commitment, in tokens.
func (s *Scheduler) Committed() int { return int(s.committed.Load()) }

// Snapshot is a point-in-time view of the pool for gauges, tests and the
// introspection layer (it serializes into GET /v1/state/sched).
type Snapshot struct {
	Tokens        int   `json:"tokens"`           // pool size
	Idle          int   `json:"tokens_idle"`      // tokens currently in the pool
	InFlight      int   `json:"tokens_in_flight"` // tokens handed out right now
	Committed     int   `json:"tokens_committed"` // admission soft commitments
	ReservedBytes int64 `json:"reserved_bytes"`   // in-flight decoded partition bytes
	ByteCeiling   int64 `json:"byte_ceiling"`
	Borrowed      int64 `json:"borrows"`       // lifetime successful TryAcquire grants
	BorrowMisses  int64 `json:"borrow_misses"` // lifetime TryAcquire misses
}

// Stats returns a snapshot of the pool.
func (s *Scheduler) Stats() Snapshot {
	idle := len(s.ch)
	return Snapshot{
		Tokens:        s.tokens,
		Idle:          idle,
		InFlight:      s.tokens - idle,
		Committed:     int(s.committed.Load()),
		ReservedBytes: s.bytes.Load(),
		ByteCeiling:   s.byteCeiling,
		Borrowed:      s.borrowed.Load(),
		BorrowMisses:  s.borrowsNA.Load(),
	}
}
