package sched

import (
	"sync"
	"testing"
)

func TestTokenPool(t *testing.T) {
	s := New(2, 0)
	if s.Tokens() != 2 {
		t.Fatalf("Tokens() = %d, want 2", s.Tokens())
	}
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("expected two tokens available")
	}
	if s.TryAcquire() {
		t.Fatal("third TryAcquire should miss on a 2-token pool")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("released token should be borrowable again")
	}
	s.Release()
	s.Release()
	st := s.Stats()
	if st.Idle != 2 || st.Borrowed != 3 || st.BorrowMisses != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release on a full pool should panic")
		}
	}()
	New(1, 0).Release()
}

func TestByteCeiling(t *testing.T) {
	s := New(1, 100)
	if !s.TryReserveBytes(60) {
		t.Fatal("60 of 100 should fit")
	}
	if s.TryReserveBytes(50) {
		t.Fatal("60+50 exceeds the 100-byte ceiling")
	}
	if !s.TryReserveBytes(40) {
		t.Fatal("60+40 exactly fits")
	}
	s.ReleaseBytes(60)
	s.ReleaseBytes(40)
	if s.Stats().ReservedBytes != 0 {
		t.Fatalf("bytes not returned: %+v", s.Stats())
	}
	// Unlimited ceiling accepts anything and never tracks.
	u := New(1, 0)
	if !u.TryReserveBytes(1 << 60) {
		t.Fatal("unlimited ceiling should accept any reservation")
	}
}

func TestCommitLedger(t *testing.T) {
	s := New(4, 0)
	if !s.TryCommit(3) {
		t.Fatal("3 of 4 should commit")
	}
	if s.TryCommit(2) {
		t.Fatal("3+2 exceeds 4 tokens")
	}
	if !s.TryCommit(1) {
		t.Fatal("3+1 exactly fits")
	}
	s.Uncommit(4)
	if s.Committed() != 0 {
		t.Fatalf("Committed() = %d after full uncommit", s.Committed())
	}
	// Commitments are a planning ledger: they do not consume runtime tokens.
	if !s.TryCommit(4) {
		t.Fatal("recommit failed")
	}
	for i := 0; i < 4; i++ {
		if !s.TryAcquire() {
			t.Fatal("commitments must not remove runtime tokens")
		}
	}
	for i := 0; i < 4; i++ {
		s.Release()
	}
	s.Uncommit(4)
}

func TestConcurrentBorrowNeverOversubscribes(t *testing.T) {
	const tokens = 4
	s := New(tokens, 0)
	var held, peak, mu = 0, 0, sync.Mutex{}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !s.TryAcquire() {
					continue
				}
				mu.Lock()
				held++
				if held > peak {
					peak = held
				}
				mu.Unlock()
				mu.Lock()
				held--
				mu.Unlock()
				s.Release()
			}
		}()
	}
	wg.Wait()
	if peak > tokens {
		t.Fatalf("peak concurrent holders %d > pool size %d", peak, tokens)
	}
	if s.Stats().Idle != tokens {
		t.Fatalf("tokens leaked: %+v", s.Stats())
	}
}

func TestDefaultTokens(t *testing.T) {
	if New(0, 0).Tokens() < 1 {
		t.Fatal("default token count must be at least 1")
	}
}
