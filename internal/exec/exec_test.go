package exec

import (
	"context"
	"strings"
	"testing"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/table"
)

// pipelineFixture stores a sales base table and returns a 3-node workload:
//
//	sales ─→ mv_daily ─→ mv_top
//	              └────→ mv_count
func pipelineFixture(t *testing.T) (*Workload, storage.Store) {
	t.Helper()
	store := storage.NewMemStore()
	sales := table.New(table.NewSchema(
		table.Column{Name: "day", Type: table.Int},
		table.Column{Name: "item", Type: table.Str},
		table.Column{Name: "amount", Type: table.Float},
	))
	rows := []struct {
		day    int64
		item   string
		amount float64
	}{
		{1, "ale", 10}, {1, "bock", 5}, {2, "ale", 7}, {2, "ale", 3}, {3, "stout", 20},
	}
	for _, r := range rows {
		if err := sales.AppendRow(table.IntValue(r.day), table.StrValue(r.item), table.FloatValue(r.amount)); err != nil {
			t.Fatal(err)
		}
	}
	if err := SaveTable(store, "sales", sales); err != nil {
		t.Fatal(err)
	}
	w := &Workload{Nodes: []NodeSpec{
		{Name: "mv_daily", SQL: `SELECT day, SUM(amount) AS revenue FROM sales GROUP BY day`},
		{Name: "mv_top", SQL: `SELECT day, revenue FROM mv_daily WHERE revenue >= 10 ORDER BY revenue DESC`},
		{Name: "mv_count", SQL: `SELECT COUNT(*) AS days FROM mv_daily`},
	}}
	return w, store
}

func TestBuildGraph(t *testing.T) {
	w, _ := pipelineFixture(t)
	g, base, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 || g.NumEdges() != 2 {
		t.Fatalf("graph: %d nodes %d edges", g.Len(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Fatalf("edges = %v", g.Edges())
	}
	if len(base[0]) != 1 || base[0][0] != "sales" {
		t.Fatalf("base[0] = %v", base[0])
	}
	if len(base[1]) != 0 || len(base[2]) != 0 {
		t.Fatalf("base = %v", base)
	}
}

func TestBuildGraphRejectsDuplicatesAndCycles(t *testing.T) {
	dup := &Workload{Nodes: []NodeSpec{
		{Name: "a", SQL: "SELECT x FROM t"},
		{Name: "a", SQL: "SELECT x FROM t"},
	}}
	if _, _, err := dup.BuildGraph(); err == nil {
		t.Fatal("duplicate names accepted")
	}
	cyc := &Workload{Nodes: []NodeSpec{
		{Name: "a", SQL: "SELECT x FROM b"},
		{Name: "b", SQL: "SELECT x FROM a"},
	}}
	if _, _, err := cyc.BuildGraph(); err == nil {
		t.Fatal("cycle accepted")
	}
}

func runPipeline(t *testing.T, flagDaily bool) (*RunResult, storage.Store) {
	t.Helper()
	w, store := pipelineFixture(t)
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	plan := core.NewPlan(order)
	if flagDaily {
		plan.Flagged[0] = true
	}
	ctl := &Controller{Store: store, Mem: memcat.New(1 << 20)}
	res, err := ctl.Run(context.Background(), w, g, plan)
	if err != nil {
		t.Fatal(err)
	}
	return res, store
}

func TestRunMaterializesAllNodes(t *testing.T) {
	res, store := runPipeline(t, false)
	if len(res.Nodes) != 3 {
		t.Fatalf("node metrics = %d", len(res.Nodes))
	}
	for _, name := range []string{"mv_daily", "mv_top", "mv_count"} {
		tb, err := LoadTable(store, name)
		if err != nil {
			t.Fatalf("%s not materialized: %v", name, err)
		}
		if tb.NumRows() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	// Check content: mv_daily has 3 days with revenues 15, 10, 20.
	daily, _ := LoadTable(store, "mv_daily")
	if daily.NumRows() != 3 {
		t.Fatalf("mv_daily rows = %d", daily.NumRows())
	}
	count, _ := LoadTable(store, "mv_count")
	if count.Cols[0].Ints[0] != 3 {
		t.Fatalf("mv_count = %v", count.Row(0))
	}
}

func TestRunFlaggedServesChildrenFromMemory(t *testing.T) {
	res, _ := runPipeline(t, true)
	var daily, top, count *NodeMetrics
	for i := range res.Nodes {
		switch res.Nodes[i].Name {
		case "mv_daily":
			daily = &res.Nodes[i]
		case "mv_top":
			top = &res.Nodes[i]
		case "mv_count":
			count = &res.Nodes[i]
		}
	}
	if !daily.Flagged || daily.WriteTime != 0 {
		t.Fatalf("mv_daily metrics: %+v", daily)
	}
	if top.MemReads != 1 || top.DiskReads != 0 {
		t.Fatalf("mv_top reads: %+v", top)
	}
	if count.MemReads != 1 {
		t.Fatalf("mv_count reads: %+v", count)
	}
	if res.PeakMemory == 0 {
		t.Fatal("no memory usage recorded")
	}
}

func TestRunUnflaggedReadsFromDisk(t *testing.T) {
	res, _ := runPipeline(t, false)
	for _, n := range res.Nodes {
		if n.MemReads != 0 {
			t.Fatalf("%s read from memory without flagging", n.Name)
		}
	}
}

func TestFlaggedOutputsReleasedAfterRun(t *testing.T) {
	w, store := pipelineFixture(t)
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, _ := g.TopoSort()
	plan := core.NewPlan(order)
	plan.Flagged[0] = true
	plan.Flagged[1] = true // childless: released once materialized
	mem := memcat.New(1 << 20)
	ctl := &Controller{Store: store, Mem: mem}
	if _, err := ctl.Run(context.Background(), w, g, plan); err != nil {
		t.Fatal(err)
	}
	if names := mem.Names(); len(names) != 0 {
		t.Fatalf("memory catalog not drained: %v", names)
	}
	if mem.Used() != 0 {
		t.Fatalf("Used = %d after run", mem.Used())
	}
}

func TestOversizedFlaggedFallsBackToDisk(t *testing.T) {
	w, store := pipelineFixture(t)
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, _ := g.TopoSort()
	plan := core.NewPlan(order)
	plan.Flagged[0] = true
	ctl := &Controller{Store: store, Mem: memcat.New(1)} // absurdly small
	res, err := ctl.Run(context.Background(), w, g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackWrites != 1 {
		t.Fatalf("FallbackWrites = %d", res.FallbackWrites)
	}
	// Result must still be correct and materialized.
	if _, err := LoadTable(store, "mv_top"); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadPlans(t *testing.T) {
	w, store := pipelineFixture(t)
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	ctl := &Controller{Store: store, Mem: memcat.New(1 << 20)}
	short := &core.Plan{Order: []dag.NodeID{0}, Flagged: make([]bool, 3)}
	if _, err := ctl.Run(context.Background(), w, g, short); err == nil {
		t.Fatal("short plan accepted")
	}
	bad := &core.Plan{Order: []dag.NodeID{1, 0, 2}, Flagged: make([]bool, 3)}
	if _, err := ctl.Run(context.Background(), w, g, bad); err == nil {
		t.Fatal("non-topological plan accepted")
	}
}

func TestRunSurfacesSQLErrors(t *testing.T) {
	store := storage.NewMemStore()
	w := &Workload{Nodes: []NodeSpec{{Name: "bad", SQL: "SELECT nope FROM missing"}}}
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	ctl := &Controller{Store: store, Mem: memcat.New(1 << 20)}
	_, err = ctl.Run(context.Background(), w, g, core.NewPlan([]dag.NodeID{0}))
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v", err)
	}
}

func TestFlaggedAndUnflaggedProduceIdenticalOutputs(t *testing.T) {
	_, storeA := runPipeline(t, false)
	_, storeB := runPipeline(t, true)
	for _, name := range []string{"mv_daily", "mv_top", "mv_count"} {
		a, err := LoadTable(storeA, name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := LoadTable(storeB, name)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumRows() != b.NumRows() || !a.Schema.Equal(b.Schema) {
			t.Fatalf("%s differs between flagged and unflagged runs", name)
		}
		for i := 0; i < a.NumRows(); i++ {
			ra, rb := a.Row(i), b.Row(i)
			for c := range ra {
				if ra[c] != rb[c] {
					t.Fatalf("%s row %d differs: %v vs %v", name, i, ra, rb)
				}
			}
		}
	}
}
