package exec

import (
	"context"
	"errors"
	"testing"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/storage"
)

// faultFixture arms a Faulty store around the sales pipeline fixture.
func faultFixture(t *testing.T) (*Workload, *storage.Faulty) {
	t.Helper()
	w, inner := pipelineFixture(t)
	return w, storage.NewFaulty(inner)
}

func TestRunSurfacesBaseTableReadFault(t *testing.T) {
	w, store := faultFixture(t)
	store.FailRead("sales.sct")
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, _ := g.TopoSort()
	ctl := &Controller{Store: store, Mem: memcat.New(1 << 20)}
	_, err = ctl.Run(context.Background(), w, g, core.NewPlan(order))
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want injected read fault", err)
	}
}

func TestRunSurfacesSynchronousWriteFault(t *testing.T) {
	w, store := faultFixture(t)
	store.FailWrite("mv_top.sct")
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, _ := g.TopoSort()
	ctl := &Controller{Store: store, Mem: memcat.New(1 << 20)}
	_, err = ctl.Run(context.Background(), w, g, core.NewPlan(order))
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want injected write fault", err)
	}
}

func TestRunSurfacesBackgroundMaterializationFault(t *testing.T) {
	w, store := faultFixture(t)
	store.FailWrite("mv_daily.sct") // flagged: written in the background
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, _ := g.TopoSort()
	plan := core.NewPlan(order)
	plan.Flagged[0] = true // mv_daily
	ctl := &Controller{Store: store, Mem: memcat.New(1 << 20)}
	_, err = ctl.Run(context.Background(), w, g, plan)
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want injected background-write fault", err)
	}
}

func TestDownstreamStillServedFromMemoryWhenMaterializationFails(t *testing.T) {
	// Even though mv_daily's materialization fails, its children read it
	// from the Memory Catalog and complete; the run then reports the
	// background error after finishing.
	w, store := faultFixture(t)
	store.FailWrite("mv_daily.sct")
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, _ := g.TopoSort()
	plan := core.NewPlan(order)
	plan.Flagged[0] = true
	ctl := &Controller{Store: store, Mem: memcat.New(1 << 20)}
	_, err = ctl.Run(context.Background(), w, g, plan)
	if err == nil {
		t.Fatal("background fault swallowed")
	}
	// The downstream MVs were still produced and persisted.
	for _, name := range []string{"mv_top", "mv_count"} {
		if _, err := LoadTable(store, name); err != nil {
			t.Fatalf("%s missing after background fault: %v", name, err)
		}
	}
}

func TestRunStopsAtFirstFailureAfterN(t *testing.T) {
	w, store := faultFixture(t)
	store.FailWriteAfter = 1 // first MV write succeeds, second fails
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, _ := g.TopoSort()
	ctl := &Controller{Store: store, Mem: memcat.New(1 << 20)}
	_, err = ctl.Run(context.Background(), w, g, core.NewPlan(order))
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
}
