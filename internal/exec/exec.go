// Package exec implements S/C's Controller (§III-B/C): it executes the
// nodes of an MV refresh workload in the order computed by the optimizer,
// creates flagged outputs directly in the Memory Catalog, materializes them
// to external storage in the background overlapped with downstream compute,
// and frees each flagged output once every dependent has executed and its
// materialization has completed.
//
// The Controller is context-aware (cancellation is honored between nodes
// and at every input-read and write boundary within a node), emits obs
// events as it works, and can execute independent DAG nodes on a bounded
// worker pool (Concurrency > 1) while the Memory Catalog keeps enforcing
// the byte budget.
package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shortcircuit-db/sc/internal/chunkio"
	"github.com/shortcircuit-db/sc/internal/colfmt"
	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/kernels"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/obs"
	"github.com/shortcircuit-db/sc/internal/sched"
	"github.com/shortcircuit-db/sc/internal/sql"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/table"
)

// NodeSpec declares one MV update: a SQL statement whose output is
// materialized under Name. Inputs are whatever tables the statement scans:
// other nodes' outputs (matched by name) or base tables on storage.
type NodeSpec struct {
	Name string
	SQL  string
}

// Workload is a set of MV updates with dependencies implied by table names.
type Workload struct {
	Nodes []NodeSpec
}

// BuildGraph extracts the dependency DAG: an edge u→v whenever node v's
// statement scans node u's output. It also returns, per node, the base
// tables (non-node inputs) it scans.
func (w *Workload) BuildGraph() (*dag.Graph, [][]string, error) {
	g := dag.New()
	byName := make(map[string]dag.NodeID, len(w.Nodes))
	for _, n := range w.Nodes {
		if _, dup := byName[n.Name]; dup {
			return nil, nil, fmt.Errorf("exec: duplicate node %q", n.Name)
		}
		byName[n.Name] = g.AddNode(n.Name)
	}
	base := make([][]string, len(w.Nodes))
	for i, n := range w.Nodes {
		inputs, err := sql.InputTables(n.SQL)
		if err != nil {
			return nil, nil, fmt.Errorf("exec: node %q: %w", n.Name, err)
		}
		for _, in := range inputs {
			if pid, ok := byName[in]; ok {
				if err := g.AddEdge(pid, dag.NodeID(i)); err != nil {
					return nil, nil, fmt.Errorf("exec: node %q: %w", n.Name, err)
				}
			} else {
				base[i] = append(base[i], in)
			}
		}
	}
	if !g.IsAcyclic() {
		return nil, nil, dag.ErrCycle
	}
	return g, base, nil
}

// NodeMetrics records one node's execution, the observations §III-A feeds
// back into the optimizer.
type NodeMetrics struct {
	Name         string
	ReadTime     time.Duration // resolving all inputs (includes lazy decode)
	ComputeTime  time.Duration // running the plan
	WriteTime    time.Duration // blocking write (zero for flagged nodes)
	EncodeTime   time.Duration // serializing (and compressing) the output
	OutputBytes  int64         // in-memory size of the output
	EncodedSize  int64         // bytes written to storage
	CatalogBytes int64         // bytes accounted in the Memory Catalog (0 if unflagged)
	Rows         int
	Flagged      bool
	MemReads     int // inputs served from the Memory Catalog
	DiskReads    int // inputs read from storage

	// Compressed-execution kernel counters (zero unless Vectorized).
	LoweredOps       int64 // plan operators served by kernels
	KernelFallbacks  int64 // kernel executions that reverted to the row engine
	ChunksSkipped    int64 // column-chunks eliminated without decoding
	CodeFilteredRows int64 // rows filtered on encoded codes/runs
	DecodesAvoided   int64 // column-chunk decodes avoided
	KernelBytes      int64 // raw bytes the kernels materialized
	JoinBuildRows    int64 // rows hashed into code-space join build tables
	JoinProbeRows    int64 // rows probed against code-space join build tables

	// Compressed intermediate pipeline counters (zero unless the node's
	// output left a kernel as chunks).
	ChunksPassed    int64 // output chunks passed through or emitted from codes
	ReencodedChunks int64 // output chunks re-encoded from materialized values
	DictReused      int64 // output chunks served by the session dictionary cache
}

// RunResult aggregates a refresh run.
type RunResult struct {
	Total          time.Duration // end-to-end: start → all MVs materialized
	Nodes          []NodeMetrics // in plan order (completed nodes only, on error)
	FallbackWrites int           // flagged outputs that did not fit in memory
	PeakMemory     int64         // Memory Catalog high-water mark
	// PeakDecodedCache is the high-water mark of the catalog's decoded-view
	// cache — droppable derived state bounded separately from the catalog
	// budget. Total memory footprint peaks at up to PeakMemory plus this.
	PeakDecodedCache int64
}

// TotalRead sums the nodes' input read times.
func (r *RunResult) TotalRead() time.Duration {
	var d time.Duration
	for _, n := range r.Nodes {
		d += n.ReadTime
	}
	return d
}

// TotalCompute sums the nodes' compute times.
func (r *RunResult) TotalCompute() time.Duration {
	var d time.Duration
	for _, n := range r.Nodes {
		d += n.ComputeTime
	}
	return d
}

// Controller coordinates one MV refresh run.
type Controller struct {
	Store storage.Store   // external storage holding base tables and MVs
	Mem   *memcat.Catalog // bounded Memory Catalog (nil disables flagging)
	Obs   obs.Observer    // optional event stream (must be concurrency-safe)
	// RunID, when non-empty, scopes the event stream: every event this run
	// emits carries RunID plus a per-run monotonic Seq (see obs.WithRun), so
	// consumers of a shared stream — a gateway pool running concurrent
	// refreshes, a trace exporter — can attribute interleaved events to the
	// right run. Empty leaves events unscoped (single-run CLI usage).
	RunID string
	// Concurrency is the run's token budget: up to k independent DAG nodes
	// execute at a time, each on one borrowed token. Values <= 1 run nodes
	// serially in exact plan order. With k > 1 a node starts as soon as all
	// its parents have finished, preferring nodes earliest in the plan
	// order; the Memory Catalog budget is still enforced byte-for-byte (an
	// output that no longer fits falls back to a blocking write, exactly as
	// in the serial path). When Sched is nil a private k-token pool is
	// created per Run; tokens the dispatcher is not using are available to
	// the kernels' chunk-parallel scans (see ParallelScan), which is how a
	// chain-shaped plan still saturates k cores.
	Concurrency int
	// Sched, when non-nil, is a shared scheduler-wide token pool (the
	// gateway hands every concurrent run the same one, so tenants cannot
	// oversubscribe cores). The dispatcher borrows a token per in-flight
	// node — still capped at Concurrency per run — and returns it when the
	// node finishes. Nil creates a private pool of Concurrency tokens.
	Sched *sched.Scheduler
	// ParallelScan (with Vectorized) lets kernels split a chunk walk
	// across idle scheduler tokens, with byte-identical output. Tokens are
	// only ever borrowed non-blocking, so nested parallelism cannot
	// deadlock the node dispatcher.
	ParallelScan bool
	// Encoding, when non-nil, enables the compressed columnar subsystem:
	// outputs are compressed once per node, stored compressed in the
	// Memory Catalog (accounted at compressed size, decoded lazily on
	// read) and written to storage in the chunked colfmt format. Nil
	// keeps the legacy v1 path. Reads handle both formats either way.
	Encoding *encoding.Options
	// Vectorized, when true, lowers each node's plan onto the
	// compressed-execution kernels (internal/kernels): supported
	// Filter/Aggregate subtrees run directly on encoded chunks — comparing
	// dictionary codes, consuming RLE runs, materializing only surviving
	// rows — and inputs resolve as per-chunk lazy readers instead of
	// paying a whole-table decode. Unsupported subtrees and non-chunked
	// inputs fall back to the row engine with byte-identical results.
	// Most effective together with Encoding (which makes catalog entries
	// and stored files chunked).
	Vectorized bool
	// Chunked, when non-nil (and Vectorized), carries the session
	// dictionary cache across refresh runs: kernel outputs emitted as
	// compressed chunks reuse the previous run's dictionaries instead of
	// rebuilding them. A single Session must not be shared by overlapping
	// Run invocations.
	Chunked *chunkio.Session
}

// flaggedState tracks the two release conditions of a flagged output
// (§III-C): all dependents executed, and background materialization done.
type flaggedState struct {
	mu       sync.Mutex
	children int
	written  bool
	released bool
}

// runState is the shared state of one Run invocation.
type runState struct {
	c       *Controller
	w       *Workload
	g       *dag.Graph
	pos     []int // plan position per node
	schemas *schemaCache
	sched   *sched.Scheduler // resolved token pool (Controller.Sched or private)

	states []*flaggedState // per node; non-nil once the node's output was Put

	wgBG     sync.WaitGroup // outstanding background materializations
	bgMu     sync.Mutex
	bgErr    error
	peakSeen atomic.Int64 // last high-water mark reported via MemoryHighWater

	fallbacks atomic.Int64
}

// completion is what a worker reports back to the dispatcher.
type completion struct {
	id  dag.NodeID
	m   NodeMetrics
	err error
}

// Run executes the workload following the plan. The plan's order indexes
// into w.Nodes via the graph built by BuildGraph; Flagged marks nodes whose
// outputs live in the Memory Catalog until their dependents finish.
//
// Cancellation: when ctx is cancelled or expires, no new node starts and
// in-flight node execution stops at its next input-read or write boundary;
// Run returns the partial RunResult of the nodes that completed together
// with ctx.Err(). Background materializations already handed to the store
// are awaited before returning (Store.Write is not context-aware), so no
// goroutine outlives Run. On other errors the partial result is returned
// as well.
func (c *Controller) Run(ctx context.Context, w *Workload, g *dag.Graph, plan *core.Plan) (*RunResult, error) {
	if len(plan.Order) != len(w.Nodes) {
		return nil, fmt.Errorf("exec: plan has %d steps for %d nodes", len(plan.Order), len(w.Nodes))
	}
	if !g.IsTopological(plan.Order) {
		return nil, fmt.Errorf("exec: plan order is not topological")
	}
	start := time.Now()
	n := g.Len()
	c.Chunked.BeginRun() // nil-safe; snapshots the dictionary-reuse baseline

	if c.RunID != "" && c.Obs != nil {
		// Shallow-copy the controller with a run-scoped observer so every
		// emission below carries RunID/Seq without touching the caller's
		// Controller (Run may be invoked again with a different run ID).
		cc := *c
		cc.Obs = obs.WithRun(c.RunID, c.Obs)
		c = &cc
	}

	rs := &runState{
		c:       c,
		w:       w,
		g:       g,
		pos:     core.Positions(plan.Order),
		schemas: newSchemaCache(c.Store, c.Mem),
		states:  make([]*flaggedState, n),
	}

	workers := c.Concurrency
	if workers < 1 {
		workers = 1
	}
	// The node dispatcher borrows one token per in-flight node from the
	// scheduler-wide pool — shared across runs when the caller supplies
	// one, private otherwise. The pool is deliberately NOT capped at the
	// node count: on a chain-shaped plan only one node runs at a time, and
	// the idle tokens are exactly what the kernels' chunk-parallel scans
	// borrow to keep the cores busy.
	sc := c.Sched
	if sc == nil {
		sc = sched.New(workers, 0)
	}
	rs.sched = sc

	doneCh := make(chan completion)
	var wgNodes sync.WaitGroup

	// Dispatcher: when a ready node and a token are both available, start
	// the earliest-in-plan ready node on its own goroutine holding that
	// token; fold completions back into the schedule. Nodes release their
	// token before reporting done, so a finishing node's token is
	// immediately available — to this dispatcher, to a concurrent run
	// sharing the pool, or to an intra-node scan.
	indeg := make([]int, n)
	ready := &posHeap{pos: rs.pos}
	for i := 0; i < n; i++ {
		indeg[i] = len(g.Parents(dag.NodeID(i)))
		if indeg[i] == 0 {
			ready.push(dag.NodeID(i))
		}
	}
	metricsAt := make([]*NodeMetrics, n) // indexed by plan position
	inflight, executed := 0, 0
	var runErr error

	handle := func(comp completion) {
		inflight--
		if comp.err != nil {
			if runErr == nil {
				runErr = comp.err
			}
			return
		}
		executed++
		m := comp.m
		metricsAt[rs.pos[comp.id]] = &m
		// This node consumed its parents: drop their dependent counts.
		for _, par := range g.Parents(comp.id) {
			if st := rs.states[par]; st != nil {
				st.mu.Lock()
				st.children--
				rs.release(par, st)
				st.mu.Unlock()
			}
		}
		for _, child := range g.Children(comp.id) {
			indeg[child]--
			if indeg[child] == 0 {
				ready.push(child)
			}
		}
	}

	for executed < n && runErr == nil {
		var tokenCh <-chan struct{}
		if ready.len() > 0 && inflight < workers {
			tokenCh = sc.TokenCh()
		}
		if tokenCh == nil && inflight == 0 {
			// Nothing runnable and nothing in flight: the only way out is a
			// bug (the order was validated topological above).
			runErr = fmt.Errorf("exec: scheduler stalled with %d/%d nodes executed", executed, n)
			break
		}
		select {
		case <-tokenCh:
			id := ready.pop()
			inflight++
			wgNodes.Add(1)
			go func(id dag.NodeID) {
				defer wgNodes.Done()
				m, err := rs.execNode(ctx, id, plan.Flagged[id])
				sc.Release()
				doneCh <- completion{id: id, m: m, err: err}
			}(id)
		case comp := <-doneCh:
			handle(comp)
		case <-ctx.Done():
			if runErr == nil {
				runErr = ctx.Err()
			}
		}
	}
	for inflight > 0 {
		handle(<-doneCh)
	}
	wgNodes.Wait()

	// All MVs materialized: the end-to-end point the paper measures.
	rs.wgBG.Wait()
	if runErr == nil {
		rs.bgMu.Lock()
		runErr = rs.bgErr
		rs.bgMu.Unlock()
	}

	// A cancelled or failed run can strand flagged outputs: the release
	// protocol frees an entry only once every dependent has executed, so a
	// node whose children never ran keeps its bytes resident forever. That
	// is invisible when each run gets a throwaway catalog, but a long-lived
	// catalog (the gateway's shared budget pool) would leak those bytes
	// across refreshes — so sweep whatever release did not. Workers and
	// background writers are done at this point: no further release races.
	if c.Mem != nil {
		for i, st := range rs.states {
			if st == nil {
				continue
			}
			st.mu.Lock()
			if !st.released {
				st.released = true
				id := dag.NodeID(i)
				name := g.Name(id)
				if size, err := c.Mem.Size(name); err == nil {
					_ = c.Mem.DeleteReason(name, "sweep")
					obs.Emit(c.Obs, obs.Event{Kind: obs.Evicted, Node: name, Step: rs.pos[id], Bytes: size})
				}
			}
			st.mu.Unlock()
		}
	}

	res := &RunResult{FallbackWrites: int(rs.fallbacks.Load())}
	for _, m := range metricsAt {
		if m != nil {
			res.Nodes = append(res.Nodes, *m)
		}
	}
	res.Total = time.Since(start)
	if c.Mem != nil {
		res.PeakMemory = c.Mem.Peak()
		res.PeakDecodedCache = c.Mem.DecodedCachePeak()
	}
	return res, runErr
}

// execNode runs one node end to end: plan the SQL, execute it, then either
// Put the output in the Memory Catalog (flagged, materialized in the
// background) or write it synchronously to storage.
func (rs *runState) execNode(ctx context.Context, id dag.NodeID, flagged bool) (m NodeMetrics, err error) {
	c := rs.c
	spec := rs.w.Nodes[id]
	step := rs.pos[id]
	m.Name = spec.Name
	m.Flagged = flagged && c.Mem != nil

	if err := ctx.Err(); err != nil {
		return m, err
	}
	obs.Emit(c.Obs, obs.Event{Kind: obs.NodeStart, Node: spec.Name, Step: step})
	nodeStart := time.Now()
	defer func() {
		if err != nil {
			obs.Emit(c.Obs, obs.Event{Kind: obs.NodeDone, Node: spec.Name, Step: step, Err: err, Elapsed: time.Since(nodeStart)})
		}
	}()

	// Plan the statement against current schemas.
	stmt, err := sql.Parse(spec.SQL)
	if err != nil {
		return m, fmt.Errorf("exec: node %q: %w", spec.Name, err)
	}
	planNode, _, err := sql.Plan(stmt, rs.schemas)
	if err != nil {
		return m, fmt.Errorf("exec: node %q: %w", spec.Name, err)
	}
	var kst *kernels.Stats
	if c.Vectorized {
		kst = &kernels.Stats{}
		opts := encoding.Options{}
		if c.Encoding != nil {
			opts = *c.Encoding
		}
		planNode = kernels.LowerEnv(planNode, kst, &kernels.Env{
			Session: c.Chunked, Node: spec.Name, Opts: opts,
		})
	}

	// Execute with a resolver that tracks where inputs came from and
	// honors cancellation between input reads.
	var readTime time.Duration
	// One-entry cache of the last physical storage read: a kernel's
	// chunked probe that falls back (legacy v1 file, schema mismatch)
	// hands its bytes to the row path instead of paying the (possibly
	// throttled) store twice for the same object. A node's plan executes
	// on one goroutine, so no locking is needed.
	var lastRead struct {
		name string
		data []byte
	}
	readObject := func(name string) ([]byte, error) {
		if lastRead.name == name {
			return lastRead.data, nil
		}
		data, err := c.Store.Read(tableObject(name))
		if err != nil {
			return nil, err
		}
		m.DiskReads++
		lastRead.name, lastRead.data = name, data
		return data, nil
	}
	ectx := &engine.Context{Resolve: func(name string) (*table.Table, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		defer func() { readTime += time.Since(t0) }()
		if c.Mem != nil {
			d0 := time.Now()
			if t, info, ok := c.Mem.GetTable(name); ok {
				// DecodeDone reports the decode work this read actually
				// performed: reads served from the catalog's decoded-view
				// cache decode nothing and emit nothing, so k downstream
				// readers of one flagged MV no longer look like k full
				// decodes.
				if info.Decoded > 0 {
					ratio := 1.0
					if info.Encoded > 0 {
						ratio = float64(info.Decoded) / float64(info.Encoded)
					}
					obs.Emit(c.Obs, obs.Event{
						Kind: obs.DecodeDone, Node: name, Step: step,
						Bytes: info.Decoded, Encoded: info.Encoded,
						Ratio: ratio, Elapsed: time.Since(d0),
					})
				} else {
					// Served by the decoded-view cache or a plain resident
					// entry: no decode work at all. Report the reuse so the
					// consuming span can link to the producing one.
					obs.Emit(c.Obs, obs.Event{
						Kind: obs.CacheHit, Node: spec.Name, Source: name,
						Step: step, Bytes: t.ByteSize(),
					})
				}
				m.MemReads++
				return t, nil
			}
			// Not resident (or undecodable): fall back to storage below.
		}
		data, err := readObject(name)
		if err != nil {
			return nil, err
		}
		d0 := time.Now()
		t, err := colfmt.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("decode %q: %w", name, err)
		}
		if colfmt.IsChunked(data) {
			// A full decode of a chunked file is the cost the kernels'
			// per-chunk readers exist to avoid; report it like a catalog
			// decode so observers can account decoded bytes either way.
			bytes := t.ByteSize()
			ratio := 1.0
			if len(data) > 0 {
				ratio = float64(bytes) / float64(len(data))
			}
			obs.Emit(c.Obs, obs.Event{
				Kind: obs.DecodeDone, Node: name, Step: step,
				Bytes: bytes, Encoded: int64(len(data)),
				Ratio: ratio, Elapsed: time.Since(d0),
			})
		}
		return t, nil
	}}
	if c.Vectorized {
		// Kernels may widen a chunk walk by borrowing tokens the node
		// dispatcher is not using (non-blocking, so nesting never
		// deadlocks); output stays byte-identical to serial.
		ectx.Sched = rs.sched
		ectx.ParallelScan = c.ParallelScan
		// Per-chunk lazy resolution for kernel scans: compressed catalog
		// entries are served as-is (no decode), chunked storage files are
		// parsed without decompressing any chunk. (nil, nil) sends the
		// kernel to its row-engine fallback, which resolves via Resolve
		// above and surfaces any read error itself.
		ectx.ResolveCompressed = func(name string) (*encoding.Compressed, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			t0 := time.Now()
			defer func() { readTime += time.Since(t0) }()
			if c.Mem != nil {
				// GetCompressed counts the hit and serves the chunks without
				// ever touching the decoded-view cache: an entry consumed
				// only in chunk form stays out of the decoded budget.
				if ct, _, ok := c.Mem.GetCompressed(name); ok {
					m.MemReads++
					obs.Emit(c.Obs, obs.Event{
						Kind: obs.CacheHit, Node: spec.Name, Source: name,
						Step: step, Bytes: ct.RawBytes,
					})
					return ct, nil
				}
				if _, ok := c.Mem.Peek(name); ok {
					return nil, nil // plain resident entry: row path is cheaper
				}
			}
			data, err := readObject(name)
			if err != nil || !colfmt.IsChunked(data) {
				return nil, nil
			}
			ct, err := colfmt.DecodeCompressed(data)
			if err != nil {
				return nil, nil
			}
			return ct, nil
		}
	}

	t0 := time.Now()
	var out *table.Table
	var ct *encoding.Compressed
	if co, chunked := planNode.(kernels.ChunkedOp); chunked && c.Encoding != nil {
		// Chunked-output root: the kernel's compressed chunks go straight
		// into the Memory Catalog and the storage format — the output never
		// materializes as rows and never pays the encode-from-rows round
		// trip. A kernel fallback returns the row-engine table instead (ct
		// nil), which takes the classic path below.
		ct, out, err = co.RunChunked(ectx)
	} else {
		out, err = planNode.Run(ectx)
	}
	if err != nil {
		return m, fmt.Errorf("exec: node %q: %w", spec.Name, err)
	}
	m.ComputeTime = time.Since(t0) - readTime
	m.ReadTime = readTime
	if ct != nil {
		m.OutputBytes = ct.RawBytes
		m.Rows = ct.NRows
		rs.schemas.learn(spec.Name, ct.Schema)
	} else {
		m.OutputBytes = out.ByteSize()
		m.Rows = out.NumRows()
		rs.schemas.learn(spec.Name, out.Schema)
	}
	if kst != nil && kst.Lowered > 0 {
		m.LoweredOps = kst.Lowered
		m.KernelFallbacks = kst.Fallbacks
		m.ChunksSkipped = kst.ChunksSkipped
		m.CodeFilteredRows = kst.CodeFilteredRows
		m.DecodesAvoided = kst.DecodesAvoided
		m.KernelBytes = kst.DecodedBytes
		m.JoinBuildRows = kst.JoinBuildRows
		m.JoinProbeRows = kst.JoinProbeRows
		m.ChunksPassed = kst.ChunksPassed
		m.ReencodedChunks = kst.ReencodedChunks
		m.DictReused = kst.DictReused
		obs.Emit(c.Obs, obs.Event{
			Kind: obs.KernelDone, Node: spec.Name, Step: step,
			Lowered: kst.Lowered, Fallbacks: kst.Fallbacks,
			ChunksSkipped:    kst.ChunksSkipped,
			CodeFilteredRows: kst.CodeFilteredRows, DecodesAvoided: kst.DecodesAvoided,
			JoinBuildRows: kst.JoinBuildRows, JoinProbeRows: kst.JoinProbeRows,
			ChunksPassed: kst.ChunksPassed, ReencodedChunks: kst.ReencodedChunks,
			DictReused: kst.DictReused,
			Bytes:      kst.DecodedBytes,
		})
	}

	if err := ctx.Err(); err != nil {
		return m, err
	}
	var encoded []byte
	e0 := time.Now()
	switch {
	case ct != nil:
		encoded, err = colfmt.EncodeCompressed(ct)
	case c.Encoding != nil:
		ct, err = encoding.FromTable(out, *c.Encoding)
		if err == nil {
			encoded, err = colfmt.EncodeCompressed(ct)
		}
	default:
		encoded, err = colfmt.Encode(out)
	}
	if err != nil {
		return m, fmt.Errorf("exec: node %q: %w", spec.Name, err)
	}
	m.EncodeTime = time.Since(e0)
	m.EncodedSize = int64(len(encoded))
	if ct != nil {
		// Ratio is computed from the same pair the event reports, so
		// observers see consistent numbers (DecodeDone likewise reports
		// the catalog-entry pair it quotes).
		ratio := 1.0
		if m.EncodedSize > 0 {
			ratio = float64(m.OutputBytes) / float64(m.EncodedSize)
		}
		obs.Emit(c.Obs, obs.Event{
			Kind: obs.EncodeDone, Node: spec.Name, Step: step,
			Bytes: m.OutputBytes, Encoded: m.EncodedSize,
			Ratio: ratio, Elapsed: m.EncodeTime,
		})
	}

	if m.Flagged {
		var putErr error
		if ct != nil {
			putErr = c.Mem.PutEntry(spec.Name, ct)
			m.CatalogBytes = ct.SizeBytes()
		} else {
			putErr = c.Mem.Put(spec.Name, out)
			m.CatalogBytes = m.OutputBytes
		}
		if putErr != nil {
			// Does not fit: fall back to the unflagged path.
			m.Flagged = false
			m.CatalogBytes = 0
			rs.fallbacks.Add(1)
		} else {
			rs.noteHighWater()
		}
	}
	if m.Flagged {
		st := &flaggedState{children: len(rs.g.Children(id))}
		rs.states[id] = st
		rs.wgBG.Add(1)
		go func(name string, data []byte) {
			defer rs.wgBG.Done()
			err := c.Store.Write(tableObject(name), data)
			if err != nil {
				rs.bgMu.Lock()
				if rs.bgErr == nil {
					rs.bgErr = fmt.Errorf("exec: materialize %q: %w", name, err)
				}
				rs.bgMu.Unlock()
			} else {
				obs.Emit(c.Obs, obs.Event{Kind: obs.Materialized, Node: name, Step: step, Bytes: int64(len(data))})
			}
			st.mu.Lock()
			st.written = true
			rs.release(id, st)
			st.mu.Unlock()
		}(spec.Name, encoded)
	} else {
		tw := time.Now()
		if err := c.Store.Write(tableObject(spec.Name), encoded); err != nil {
			return m, fmt.Errorf("exec: write %q: %w", spec.Name, err)
		}
		m.WriteTime = time.Since(tw)
		obs.Emit(c.Obs, obs.Event{Kind: obs.Materialized, Node: spec.Name, Step: step, Bytes: m.EncodedSize})
	}

	obs.Emit(c.Obs, obs.Event{
		Kind: obs.NodeDone, Node: spec.Name, Step: step,
		Bytes: m.OutputBytes, Encoded: m.EncodedSize, Elapsed: time.Since(nodeStart),
		Read: m.ReadTime, Write: m.WriteTime, Compute: m.ComputeTime,
		Flagged: m.Flagged,
	})
	return m, nil
}

// release frees a flagged output when both §III-C conditions hold: all
// dependents done and the background materialization finished. Callers hold
// st.mu.
func (rs *runState) release(id dag.NodeID, st *flaggedState) {
	if st.children == 0 && st.written && !st.released {
		st.released = true
		name := rs.g.Name(id)
		// Size, not Get: eviction must not pay a decompression.
		size, _ := rs.c.Mem.Size(name)
		_ = rs.c.Mem.DeleteReason(name, "release")
		obs.Emit(rs.c.Obs, obs.Event{Kind: obs.Evicted, Node: name, Step: rs.pos[id], Bytes: size})
	}
}

// noteHighWater emits MemoryHighWater when the catalog peak grows.
func (rs *runState) noteHighWater() {
	peak := rs.c.Mem.Peak()
	for {
		seen := rs.peakSeen.Load()
		if peak <= seen {
			return
		}
		if rs.peakSeen.CompareAndSwap(seen, peak) {
			obs.Emit(rs.c.Obs, obs.Event{Kind: obs.MemoryHighWater, Step: -1, Bytes: peak})
			return
		}
	}
}

// posHeap is a min-heap of node IDs keyed by plan position, so the
// dispatcher always hands out the ready node the optimizer wanted first.
type posHeap struct {
	pos []int
	a   []dag.NodeID
}

func (h *posHeap) len() int           { return len(h.a) }
func (h *posHeap) peek() dag.NodeID   { return h.a[0] }
func (h *posHeap) less(i, j int) bool { return h.pos[h.a[i]] < h.pos[h.a[j]] }

func (h *posHeap) push(x dag.NodeID) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *posHeap) pop() dag.NodeID {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.less(l, small) {
			small = l
		}
		if r < last && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}

// tableObject maps a table name to its storage object name.
func tableObject(name string) string { return name + ".sct" }

// TableSize returns the encoded size of a stored table — the bytes a
// refresh actually moves when reading it from external storage.
func TableSize(st storage.Store, name string) (int64, error) {
	return st.Size(tableObject(name))
}

// LoadTable reads and decodes a table from storage.
func LoadTable(st storage.Store, name string) (*table.Table, error) {
	data, err := st.Read(tableObject(name))
	if err != nil {
		return nil, err
	}
	return colfmt.Decode(data)
}

// SaveTable encodes and writes a table to storage in the v1 format.
func SaveTable(st storage.Store, name string, t *table.Table) error {
	data, err := colfmt.Encode(t)
	if err != nil {
		return err
	}
	return st.Write(tableObject(name), data)
}

// SaveTableChunked compresses and writes a table to storage in the
// chunked format, which the kernels' per-chunk readers can scan without a
// whole-table decode.
func SaveTableChunked(st storage.Store, name string, t *table.Table, opts encoding.Options) error {
	data, err := colfmt.EncodeV2(t, opts)
	if err != nil {
		return err
	}
	return st.Write(tableObject(name), data)
}

// schemaCache resolves table schemas for the SQL planner: first from
// schemas learned this run, then the Memory Catalog, then storage headers.
// It is safe for concurrent use by the worker pool.
type schemaCache struct {
	store storage.Store
	mem   *memcat.Catalog
	mu    sync.RWMutex
	known map[string]table.Schema
}

func newSchemaCache(st storage.Store, mem *memcat.Catalog) *schemaCache {
	return &schemaCache{store: st, mem: mem, known: make(map[string]table.Schema)}
}

func (s *schemaCache) learn(name string, sch table.Schema) {
	s.mu.Lock()
	s.known[name] = sch
	s.mu.Unlock()
}

// TableSchema implements sql.Catalog.
func (s *schemaCache) TableSchema(name string) (table.Schema, error) {
	s.mu.RLock()
	sch, ok := s.known[name]
	s.mu.RUnlock()
	if ok {
		return sch, nil
	}
	if s.mem != nil {
		if e, ok := s.mem.GetEntry(name); ok {
			// Compressed entries carry their schema; plain entries hand the
			// table back as-is. Neither pays a decode here.
			if ct, compressed := e.(*encoding.Compressed); compressed {
				s.learn(name, ct.Schema)
				return ct.Schema, nil
			}
			if t, err := e.Table(); err == nil {
				s.learn(name, t.Schema)
				return t.Schema, nil
			}
		}
	}
	data, err := s.store.Read(tableObject(name))
	if err != nil {
		return table.Schema{}, err
	}
	sch, _, err = colfmt.DecodeSchema(data)
	if err != nil {
		return table.Schema{}, err
	}
	s.learn(name, sch)
	return sch, nil
}
