// Package exec implements S/C's Controller (§III-B/C): it executes the
// nodes of an MV refresh workload in the order computed by the optimizer,
// creates flagged outputs directly in the Memory Catalog, materializes them
// to external storage in the background overlapped with downstream compute,
// and frees each flagged output once every dependent has executed and its
// materialization has completed.
package exec

import (
	"fmt"
	"sync"
	"time"

	"github.com/shortcircuit-db/sc/internal/colfmt"
	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/sql"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/table"
)

// NodeSpec declares one MV update: a SQL statement whose output is
// materialized under Name. Inputs are whatever tables the statement scans:
// other nodes' outputs (matched by name) or base tables on storage.
type NodeSpec struct {
	Name string
	SQL  string
}

// Workload is a set of MV updates with dependencies implied by table names.
type Workload struct {
	Nodes []NodeSpec
}

// BuildGraph extracts the dependency DAG: an edge u→v whenever node v's
// statement scans node u's output. It also returns, per node, the base
// tables (non-node inputs) it scans.
func (w *Workload) BuildGraph() (*dag.Graph, [][]string, error) {
	g := dag.New()
	byName := make(map[string]dag.NodeID, len(w.Nodes))
	for _, n := range w.Nodes {
		if _, dup := byName[n.Name]; dup {
			return nil, nil, fmt.Errorf("exec: duplicate node %q", n.Name)
		}
		byName[n.Name] = g.AddNode(n.Name)
	}
	base := make([][]string, len(w.Nodes))
	for i, n := range w.Nodes {
		inputs, err := sql.InputTables(n.SQL)
		if err != nil {
			return nil, nil, fmt.Errorf("exec: node %q: %w", n.Name, err)
		}
		for _, in := range inputs {
			if pid, ok := byName[in]; ok {
				if err := g.AddEdge(pid, dag.NodeID(i)); err != nil {
					return nil, nil, fmt.Errorf("exec: node %q: %w", n.Name, err)
				}
			} else {
				base[i] = append(base[i], in)
			}
		}
	}
	if !g.IsAcyclic() {
		return nil, nil, dag.ErrCycle
	}
	return g, base, nil
}

// NodeMetrics records one node's execution, the observations §III-A feeds
// back into the optimizer.
type NodeMetrics struct {
	Name        string
	ReadTime    time.Duration // resolving all inputs
	ComputeTime time.Duration // running the plan
	WriteTime   time.Duration // blocking write (zero for flagged nodes)
	OutputBytes int64         // in-memory size of the output
	EncodedSize int64         // bytes written to storage
	Rows        int
	Flagged     bool
	MemReads    int // inputs served from the Memory Catalog
	DiskReads   int // inputs read from storage
}

// RunResult aggregates a refresh run.
type RunResult struct {
	Total          time.Duration // end-to-end: start → all MVs materialized
	Nodes          []NodeMetrics // in execution order
	FallbackWrites int           // flagged outputs that did not fit in memory
	PeakMemory     int64         // Memory Catalog high-water mark
}

// TotalRead sums the nodes' input read times.
func (r *RunResult) TotalRead() time.Duration {
	var d time.Duration
	for _, n := range r.Nodes {
		d += n.ReadTime
	}
	return d
}

// TotalCompute sums the nodes' compute times.
func (r *RunResult) TotalCompute() time.Duration {
	var d time.Duration
	for _, n := range r.Nodes {
		d += n.ComputeTime
	}
	return d
}

// Controller coordinates one MV refresh run.
type Controller struct {
	Store storage.Store   // external storage holding base tables and MVs
	Mem   *memcat.Catalog // bounded Memory Catalog (nil disables flagging)
}

// Run executes the workload following the plan. The plan's order indexes
// into w.Nodes via the graph built by BuildGraph; Flagged marks nodes whose
// outputs live in the Memory Catalog until their dependents finish.
func (c *Controller) Run(w *Workload, g *dag.Graph, plan *core.Plan) (*RunResult, error) {
	if len(plan.Order) != len(w.Nodes) {
		return nil, fmt.Errorf("exec: plan has %d steps for %d nodes", len(plan.Order), len(w.Nodes))
	}
	if !g.IsTopological(plan.Order) {
		return nil, fmt.Errorf("exec: plan order is not topological")
	}
	start := time.Now()
	res := &RunResult{}

	// Remaining-children refcounts control release of flagged outputs.
	remaining := make([]int, g.Len())
	for i := 0; i < g.Len(); i++ {
		remaining[i] = len(g.Children(dag.NodeID(i)))
	}
	type flaggedState struct {
		mu       sync.Mutex
		children int
		written  bool
		released bool
	}
	states := make([]*flaggedState, g.Len())
	var wg sync.WaitGroup
	var bgErr error
	var bgMu sync.Mutex

	release := func(id dag.NodeID, st *flaggedState) {
		// Free when both conditions hold (§III-C): all dependents done
		// and the background materialization finished.
		if st.children == 0 && st.written && !st.released {
			st.released = true
			_ = c.Mem.Delete(g.Name(id))
		}
	}

	schemas := newSchemaCache(c.Store, c.Mem)

	for _, id := range plan.Order {
		spec := w.Nodes[id]
		var m NodeMetrics
		m.Name = spec.Name
		m.Flagged = plan.Flagged[id] && c.Mem != nil

		// Plan the statement against current schemas.
		stmt, err := sql.Parse(spec.SQL)
		if err != nil {
			return nil, fmt.Errorf("exec: node %q: %w", spec.Name, err)
		}
		planNode, _, err := sql.Plan(stmt, schemas)
		if err != nil {
			return nil, fmt.Errorf("exec: node %q: %w", spec.Name, err)
		}

		// Execute with a resolver that tracks where inputs came from.
		var readTime time.Duration
		ctx := &engine.Context{Resolve: func(name string) (*table.Table, error) {
			t0 := time.Now()
			defer func() { readTime += time.Since(t0) }()
			if c.Mem != nil {
				if t, ok := c.Mem.Get(name); ok {
					m.MemReads++
					return t, nil
				}
			}
			data, err := c.Store.Read(tableObject(name))
			if err != nil {
				return nil, err
			}
			t, err := colfmt.Decode(data)
			if err != nil {
				return nil, fmt.Errorf("decode %q: %w", name, err)
			}
			m.DiskReads++
			return t, nil
		}}

		t0 := time.Now()
		out, err := planNode.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("exec: node %q: %w", spec.Name, err)
		}
		m.ComputeTime = time.Since(t0) - readTime
		m.ReadTime = readTime
		m.OutputBytes = out.ByteSize()
		m.Rows = out.NumRows()
		schemas.learn(spec.Name, out.Schema)

		encoded, err := colfmt.Encode(out)
		if err != nil {
			return nil, fmt.Errorf("exec: node %q: %w", spec.Name, err)
		}
		m.EncodedSize = int64(len(encoded))

		if m.Flagged {
			if err := c.Mem.Put(spec.Name, out); err != nil {
				// Does not fit: fall back to the unflagged path.
				m.Flagged = false
				res.FallbackWrites++
			}
		}
		if m.Flagged {
			st := &flaggedState{children: remaining[id]}
			states[id] = st
			wg.Add(1)
			go func(name string, data []byte, st *flaggedState, id dag.NodeID) {
				defer wg.Done()
				err := c.Store.Write(tableObject(name), data)
				st.mu.Lock()
				defer st.mu.Unlock()
				if err != nil {
					bgMu.Lock()
					if bgErr == nil {
						bgErr = fmt.Errorf("exec: materialize %q: %w", name, err)
					}
					bgMu.Unlock()
				}
				st.written = true
				release(id, st)
			}(spec.Name, encoded, st, id)
		} else {
			tw := time.Now()
			if err := c.Store.Write(tableObject(spec.Name), encoded); err != nil {
				return nil, fmt.Errorf("exec: write %q: %w", spec.Name, err)
			}
			m.WriteTime = time.Since(tw)
		}

		// This node consumed its parents: drop refcounts, maybe release.
		for _, par := range g.Parents(id) {
			remaining[par]--
			if st := states[par]; st != nil {
				st.mu.Lock()
				st.children = remaining[par]
				release(par, st)
				st.mu.Unlock()
			}
		}
		res.Nodes = append(res.Nodes, m)
	}

	wg.Wait() // all MVs materialized: the end-to-end point the paper measures
	if bgErr != nil {
		return nil, bgErr
	}
	res.Total = time.Since(start)
	if c.Mem != nil {
		res.PeakMemory = c.Mem.Peak()
	}
	return res, nil
}

// tableObject maps a table name to its storage object name.
func tableObject(name string) string { return name + ".sct" }

// LoadTable reads and decodes a table from storage.
func LoadTable(st storage.Store, name string) (*table.Table, error) {
	data, err := st.Read(tableObject(name))
	if err != nil {
		return nil, err
	}
	return colfmt.Decode(data)
}

// SaveTable encodes and writes a table to storage.
func SaveTable(st storage.Store, name string, t *table.Table) error {
	data, err := colfmt.Encode(t)
	if err != nil {
		return err
	}
	return st.Write(tableObject(name), data)
}

// schemaCache resolves table schemas for the SQL planner: first from
// schemas learned this run, then the Memory Catalog, then storage headers.
type schemaCache struct {
	store storage.Store
	mem   *memcat.Catalog
	known map[string]table.Schema
}

func newSchemaCache(st storage.Store, mem *memcat.Catalog) *schemaCache {
	return &schemaCache{store: st, mem: mem, known: make(map[string]table.Schema)}
}

func (s *schemaCache) learn(name string, sch table.Schema) { s.known[name] = sch }

// TableSchema implements sql.Catalog.
func (s *schemaCache) TableSchema(name string) (table.Schema, error) {
	if sch, ok := s.known[name]; ok {
		return sch, nil
	}
	if s.mem != nil {
		if t, ok := s.mem.Get(name); ok {
			s.known[name] = t.Schema
			return t.Schema, nil
		}
	}
	data, err := s.store.Read(tableObject(name))
	if err != nil {
		return table.Schema{}, err
	}
	sch, _, err := colfmt.DecodeSchema(data)
	if err != nil {
		return table.Schema{}, err
	}
	s.known[name] = sch
	return sch, nil
}
