package exec

import (
	"bytes"
	"context"
	"testing"

	"github.com/shortcircuit-db/sc/internal/chunkio"
	"github.com/shortcircuit-db/sc/internal/colfmt"
	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/table"
)

// chunkedWorkload is a two-level join tree (a join probing another join's
// output) whose only dependent aggregates the joined MV — every consumer
// can run in code space.
func chunkedWorkload() *Workload {
	return &Workload{Nodes: []NodeSpec{
		{Name: "j2", SQL: `
			SELECT s.item AS item, s.amount AS amount, c.cat AS cat, r.fee AS fee
			FROM sales s
			JOIN cats c ON s.item = c.item
			JOIN rates r ON s.item = r.item`},
		{Name: "by_cat", SQL: `SELECT cat, COUNT(*) AS n FROM j2 GROUP BY cat`},
	}}
}

func chunkedBaseTables(t *testing.T) map[string]*table.Table {
	t.Helper()
	sales := table.New(table.NewSchema(
		table.Column{Name: "item", Type: table.Str},
		table.Column{Name: "amount", Type: table.Int},
	))
	for i := 0; i < 400; i++ {
		sales.Cols[0].Strs = append(sales.Cols[0].Strs, []string{"pen", "ink", "pad", "jar"}[i%4])
		sales.Cols[1].Ints = append(sales.Cols[1].Ints, int64(i%9))
	}
	cats := table.New(table.NewSchema(
		table.Column{Name: "item", Type: table.Str},
		table.Column{Name: "cat", Type: table.Str},
	))
	rates := table.New(table.NewSchema(
		table.Column{Name: "item", Type: table.Str},
		table.Column{Name: "fee", Type: table.Int},
	))
	for i, item := range []string{"pen", "ink", "pad"} { // "jar" dropped by the joins
		cats.Cols[0].Strs = append(cats.Cols[0].Strs, item)
		cats.Cols[1].Strs = append(cats.Cols[1].Strs, "c"+item)
		rates.Cols[0].Strs = append(rates.Cols[0].Strs, item)
		rates.Cols[1].Ints = append(rates.Cols[1].Ints, int64(i))
	}
	return map[string]*table.Table{"sales": sales, "cats": cats, "rates": rates}
}

func runChunkedWorkload(t *testing.T, ctl *Controller) *RunResult {
	t.Helper()
	w := chunkedWorkload()
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	plan := core.NewPlan(topo)
	for i := range plan.Flagged {
		plan.Flagged[i] = true
	}
	res, err := ctl.Run(context.Background(), w, g, plan)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChunkedIntermediatesEndToEnd: the two-level join tree runs entirely
// in code space — no kernel fallbacks, chunked output stored directly, the
// decoded-view cache untouched — and the MVs match the row engine's.
func TestChunkedIntermediatesEndToEnd(t *testing.T) {
	enc := encoding.Options{ChunkRows: 64}
	newStore := func() storage.Store {
		st := storage.NewMemStore()
		for name, tb := range chunkedBaseTables(t) {
			if err := SaveTableChunked(st, name, tb, enc); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}

	rowStore := newStore()
	runChunkedWorkload(t, &Controller{Store: rowStore, Mem: memcat.New(1 << 30), Encoding: &enc})

	vecStore := newStore()
	sess := chunkio.NewSession()
	ctl := &Controller{Store: vecStore, Mem: memcat.New(1 << 30), Encoding: &enc, Vectorized: true, Chunked: sess}
	res := runChunkedWorkload(t, ctl)

	var j2 *NodeMetrics
	for i := range res.Nodes {
		if res.Nodes[i].Name == "j2" {
			j2 = &res.Nodes[i]
		}
	}
	if j2 == nil {
		t.Fatal("no metrics for j2")
	}
	if j2.LoweredOps == 0 || j2.KernelFallbacks != 0 {
		t.Fatalf("join-over-join did not stay in code space: %+v", j2)
	}
	if j2.ChunksPassed == 0 {
		t.Fatalf("j2 emitted no code-space output chunks: %+v", j2)
	}
	if j2.JoinProbeRows == 0 {
		t.Fatalf("j2 never probed in code space: %+v", j2)
	}
	// Every consumer of the flagged intermediates reads chunks, so the
	// decoded-view cache must stay empty (views nobody materialized are
	// never charged).
	if res.PeakDecodedCache != 0 {
		t.Fatalf("decoded-view cache peaked at %d for chunk-only consumers", res.PeakDecodedCache)
	}

	g, _, _ := chunkedWorkload().BuildGraph()
	for i := 0; i < g.Len(); i++ {
		name := g.Name(dag.NodeID(i))
		want, err := LoadTable(rowStore, name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := LoadTable(vecStore, name)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := colfmt.Encode(want)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := colfmt.Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Fatalf("MV %q differs between row-engine and chunked runs", name)
		}
	}

	// A second refresh through the same session reuses the dictionaries the
	// first run derived.
	res2 := runChunkedWorkload(t, ctl)
	var reused int64
	for _, n := range res2.Nodes {
		reused += n.DictReused
	}
	if reused == 0 {
		t.Fatal("repeated refresh reports no dictionary reuse")
	}
}
