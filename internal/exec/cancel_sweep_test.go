package exec

import (
	"context"
	"errors"
	"testing"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/obs"
)

// TestCancelReleasesFlaggedEntries is the regression test for the
// cancellation sweep: a run cancelled after a flagged output was created
// but before all its dependents executed must leave the Memory Catalog
// exactly as it found it — no stranded entries, no stale decoded views.
// Before the sweep existed, the release protocol (all dependents executed
// AND materialization done) never fired for such entries and a long-lived
// catalog leaked their bytes forever.
func TestCancelReleasesFlaggedEntries(t *testing.T) {
	w, store := pipelineFixture(t)
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	plan := core.NewPlan(order)
	plan.Flagged[0] = true // mv_daily: two dependents, only one will run

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel after the first dependent finishes: mv_daily has been Put (and
	// read once, so a decoded view exists), but its second dependent never
	// executes — the release protocol alone would strand the entry.
	firstChildDone := false
	canceller := obs.Func(func(e obs.Event) {
		if e.Kind == obs.NodeDone && e.Node != "mv_daily" && !firstChildDone {
			firstChildDone = true
			cancel()
		}
	})

	pool := memcat.NewPool(1 << 20)
	mem := pool.NewCatalog(1 << 20)
	enc := encoding.Options{}
	ctl := &Controller{Store: store, Mem: mem, Obs: canceller, Encoding: &enc}
	_, err = ctl.Run(ctx, w, g, plan)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	if used := mem.Used(); used != 0 {
		t.Fatalf("catalog Used = %d after cancelled run, want 0 (stranded flagged entries)", used)
	}
	if _, err := mem.Size("mv_daily"); err == nil {
		t.Fatal("mv_daily still resident after cancelled run")
	}
	if dec := mem.DecodedCacheUsed(); dec != 0 {
		t.Fatalf("decoded-view cache holds %d bytes after cancelled run, want 0", dec)
	}
	if got := pool.Used(); got != 0 {
		t.Fatalf("shared pool Used = %d after cancelled run, want 0", got)
	}
	if left := mem.Detach(); left != 0 {
		t.Fatalf("Detach credited %d leftover bytes, want 0", left)
	}
}

// TestCancelSweepEmitsEviction pins the observable half of the sweep: the
// stranded entry leaves through the same Evicted event a normal release
// emits, so metrics and dashboards see the bytes go.
func TestCancelSweepEmitsEviction(t *testing.T) {
	w, store := pipelineFixture(t)
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	plan := core.NewPlan(order)
	plan.Flagged[0] = true

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	evicted := make(map[string]bool)
	o := obs.Func(func(e obs.Event) {
		switch e.Kind {
		case obs.NodeDone:
			if e.Node == "mv_daily" {
				cancel() // no dependent ever runs
			}
		case obs.Evicted:
			evicted[e.Node] = true
		}
	})
	ctl := &Controller{Store: store, Mem: memcat.New(1 << 20), Obs: o}
	if _, err := ctl.Run(ctx, w, g, plan); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !evicted["mv_daily"] {
		t.Fatal("sweep did not emit Evicted for the stranded entry")
	}
}
