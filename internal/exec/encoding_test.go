package exec

import (
	"context"
	"sync"
	"testing"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/obs"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/table"
)

// wideFixture stores a compressible sales table (serial keys, categories,
// decimal prices) and a two-level workload over it.
func wideFixture(t *testing.T, rows int) (*Workload, storage.Store) {
	t.Helper()
	store := storage.NewMemStore()
	sales := table.New(table.NewSchema(
		table.Column{Name: "day", Type: table.Int},
		table.Column{Name: "item", Type: table.Str},
		table.Column{Name: "amount", Type: table.Float},
	))
	cats := []string{"ale", "bock", "stout", "porter"}
	for i := 0; i < rows; i++ {
		if err := sales.AppendRow(
			table.IntValue(int64(i/16+1)),
			table.StrValue(cats[i%len(cats)]),
			table.FloatValue(float64(i%977+100)/100),
		); err != nil {
			t.Fatal(err)
		}
	}
	if err := SaveTable(store, "sales", sales); err != nil {
		t.Fatal(err)
	}
	w := &Workload{Nodes: []NodeSpec{
		{Name: "mv_daily", SQL: `SELECT day, item, SUM(amount) AS revenue FROM sales GROUP BY day, item`},
		{Name: "mv_top", SQL: `SELECT day, revenue FROM mv_daily WHERE revenue >= 10 ORDER BY revenue DESC`},
		{Name: "mv_count", SQL: `SELECT COUNT(*) AS groups FROM mv_daily`},
	}}
	return w, store
}

// runWide executes the fixture with node 0 flagged, with or without the
// encoding subsystem.
func runWide(t *testing.T, enc *encoding.Options, o obs.Observer) (*RunResult, storage.Store) {
	t.Helper()
	w, store := wideFixture(t, 4096)
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	plan := core.NewPlan(order)
	plan.Flagged[0] = true
	ctl := &Controller{Store: store, Mem: memcat.New(1 << 22), Encoding: enc, Obs: o}
	res, err := ctl.Run(context.Background(), w, g, plan)
	if err != nil {
		t.Fatal(err)
	}
	return res, store
}

// TestEncodingProducesIdenticalMVs: with and without encoding, every
// materialized view decodes to the same rows — the format change is
// invisible to readers.
func TestEncodingProducesIdenticalMVs(t *testing.T) {
	_, plain := runWide(t, nil, nil)
	_, comp := runWide(t, &encoding.Options{}, nil)
	for _, mv := range []string{"mv_daily", "mv_top", "mv_count"} {
		a, err := LoadTable(plain, mv)
		if err != nil {
			t.Fatalf("load %s (v1): %v", mv, err)
		}
		b, err := LoadTable(comp, mv)
		if err != nil {
			t.Fatalf("load %s (v2): %v", mv, err)
		}
		if a.NumRows() != b.NumRows() || !a.Schema.Equal(b.Schema) {
			t.Fatalf("%s: shape differs between v1 and v2 runs", mv)
		}
		for i := 0; i < a.NumRows(); i++ {
			ra, rb := a.Row(i), b.Row(i)
			for c := range ra {
				if ra[c] != rb[c] {
					t.Fatalf("%s row %d col %d: %v vs %v", mv, i, c, ra[c], rb[c])
				}
			}
		}
	}
}

// TestEncodingShrinksWritesAndCatalog: v2 objects on storage and the
// Memory Catalog peak must both be smaller than the uncompressed run's.
func TestEncodingShrinksWritesAndCatalog(t *testing.T) {
	resPlain, plain := runWide(t, nil, nil)
	resComp, comp := runWide(t, &encoding.Options{}, nil)

	szPlain, err := TableSize(plain, "mv_daily")
	if err != nil {
		t.Fatal(err)
	}
	szComp, err := TableSize(comp, "mv_daily")
	if err != nil {
		t.Fatal(err)
	}
	if szComp >= szPlain {
		t.Fatalf("v2 object (%d B) not smaller than v1 (%d B)", szComp, szPlain)
	}
	if resComp.PeakMemory >= resPlain.PeakMemory {
		t.Fatalf("compressed catalog peak %d not below plain %d", resComp.PeakMemory, resPlain.PeakMemory)
	}
	var daily *NodeMetrics
	for i := range resComp.Nodes {
		if resComp.Nodes[i].Name == "mv_daily" {
			daily = &resComp.Nodes[i]
		}
	}
	if daily == nil || !daily.Flagged {
		t.Fatal("mv_daily was not flagged")
	}
	if daily.CatalogBytes <= 0 || daily.CatalogBytes >= daily.OutputBytes {
		t.Fatalf("CatalogBytes = %d, OutputBytes = %d: want compressed accounting", daily.CatalogBytes, daily.OutputBytes)
	}
}

// eventLog is a concurrency-safe observer for tests.
type eventLog struct {
	mu     sync.Mutex
	events []obs.Event
}

func (l *eventLog) OnEvent(e obs.Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) byKind(k obs.Kind) []obs.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []obs.Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// TestEncodingEmitsObsEvents: every node reports an EncodeDone with a
// sane ratio, and flagged reads report DecodeDone.
func TestEncodingEmitsObsEvents(t *testing.T) {
	log := &eventLog{}
	runWide(t, &encoding.Options{}, log)
	encs := log.byKind(obs.EncodeDone)
	if len(encs) != 3 {
		t.Fatalf("EncodeDone events = %d, want 3", len(encs))
	}
	for _, e := range encs {
		if e.Encoded <= 0 || e.Ratio <= 0 {
			t.Fatalf("EncodeDone %s: Encoded=%d Ratio=%f", e.Node, e.Encoded, e.Ratio)
		}
	}
	decs := log.byKind(obs.DecodeDone)
	if len(decs) == 0 {
		t.Fatal("no DecodeDone events for flagged reads")
	}
	for _, e := range decs {
		if e.Node != "mv_daily" {
			t.Fatalf("DecodeDone for %s, only mv_daily is flagged", e.Node)
		}
		if e.Encoded <= 0 || e.Ratio < 1 {
			t.Fatalf("DecodeDone: Encoded=%d Ratio=%f", e.Encoded, e.Ratio)
		}
	}
}

// TestEncodingOversizedFallsBack: the fallback path still works when the
// compressed output exceeds the budget.
func TestEncodingOversizedFallsBack(t *testing.T) {
	w, store := wideFixture(t, 4096)
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	plan := core.NewPlan(order)
	plan.Flagged[0] = true
	ctl := &Controller{Store: store, Mem: memcat.New(64), Encoding: &encoding.Options{}}
	res, err := ctl.Run(context.Background(), w, g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackWrites != 1 {
		t.Fatalf("FallbackWrites = %d, want 1", res.FallbackWrites)
	}
	if _, err := LoadTable(store, "mv_daily"); err != nil {
		t.Fatalf("fallback write unreadable: %v", err)
	}
}

// TestEncodingConcurrentRunIdentical: the worker pool path with encoding
// produces the same MVs as the serial path.
func TestEncodingConcurrentRunIdentical(t *testing.T) {
	w, store := wideFixture(t, 4096)
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	plan := core.NewPlan(order)
	plan.Flagged[0] = true
	ctl := &Controller{Store: store, Mem: memcat.New(1 << 22), Encoding: &encoding.Options{}, Concurrency: 4}
	if _, err := ctl.Run(context.Background(), w, g, plan); err != nil {
		t.Fatal(err)
	}
	_, serialStore := runWide(t, &encoding.Options{}, nil)
	for _, mv := range []string{"mv_daily", "mv_top", "mv_count"} {
		a, err := serialStore.Read(tableObject(mv))
		if err != nil {
			t.Fatal(err)
		}
		b, err := store.Read(tableObject(mv))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s: concurrent encoded bytes differ from serial", mv)
		}
	}
}

// TestDecodeOncePerResidentEntry is the repeated-read regression: mv_daily
// is flagged and read by two downstream nodes, which used to cost two full
// decodes and two full-size DecodeDone events. With the catalog's
// decoded-view cache the second read is served without decoding, so exactly
// one DecodeDone arrives — and it reports the bytes actually decoded.
func TestDecodeOncePerResidentEntry(t *testing.T) {
	log := &eventLog{}
	runWide(t, &encoding.Options{}, log)
	decs := log.byKind(obs.DecodeDone)
	if len(decs) != 1 {
		t.Fatalf("DecodeDone events = %d, want 1 (one decode for two downstream readers)", len(decs))
	}
	e := decs[0]
	if e.Node != "mv_daily" {
		t.Fatalf("DecodeDone for %q, want mv_daily", e.Node)
	}
	if e.Bytes <= 0 || e.Encoded <= 0 || e.Bytes <= e.Encoded {
		t.Fatalf("DecodeDone Bytes=%d Encoded=%d: want actual decode work", e.Bytes, e.Encoded)
	}
}
