package exec

import (
	"context"
	"errors"
	"testing"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/leakcheck"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/obs"
	"github.com/shortcircuit-db/sc/internal/sched"
)

// TestControllerCancelNoGoroutineLeak cancels a concurrent run mid-flight
// and asserts every worker goroutine exits and every borrowed scheduler
// token is returned. The worker pool borrows tokens from a shared
// scheduler here — the same composition the gateway uses — so a stuck
// dispatcher or an unreturned token after cancellation fails the test.
func TestControllerCancelNoGoroutineLeak(t *testing.T) {
	defer leakcheck.Check(t)

	tok := sched.New(4, 0)
	for i := 0; i < 5; i++ {
		w, store := pipelineFixture(t)
		g, _, err := w.BuildGraph()
		if err != nil {
			t.Fatal(err)
		}
		order, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		plan := core.NewPlan(order)

		ctx, cancel := context.WithCancel(context.Background())
		cancelled := false
		canceller := obs.Func(func(e obs.Event) {
			if e.Kind == obs.NodeDone && !cancelled {
				cancelled = true
				cancel()
			}
		})
		ctl := &Controller{
			Store: store, Mem: memcat.New(1 << 20), Obs: canceller,
			Encoding: &encoding.Options{}, Vectorized: true,
			Concurrency: 4, Sched: tok, ParallelScan: true,
		}
		_, err = ctl.Run(ctx, w, g, plan)
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: err = %v, want nil or context.Canceled", i, err)
		}
		if st := tok.Stats(); st.Idle != st.Tokens || st.ReservedBytes != 0 {
			t.Fatalf("run %d: scheduler tokens leaked after cancel: %+v", i, st)
		}
	}
}

// TestControllerCompletedRunNoGoroutineLeak is the happy-path twin: a run
// that finishes normally must also wind down its pool completely.
func TestControllerCompletedRunNoGoroutineLeak(t *testing.T) {
	defer leakcheck.Check(t)

	w, store := pipelineFixture(t)
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	tok := sched.New(3, 0)
	ctl := &Controller{
		Store: store, Mem: memcat.New(1 << 20),
		Encoding: &encoding.Options{}, Vectorized: true,
		Concurrency: 3, Sched: tok, ParallelScan: true,
	}
	if _, err := ctl.Run(context.Background(), w, g, core.NewPlan(order)); err != nil {
		t.Fatal(err)
	}
	if st := tok.Stats(); st.Idle != st.Tokens || st.ReservedBytes != 0 {
		t.Fatalf("scheduler tokens leaked after completed run: %+v", st)
	}
}
