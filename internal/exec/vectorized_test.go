package exec

import (
	"bytes"
	"context"
	"testing"

	"github.com/shortcircuit-db/sc/internal/colfmt"
	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/obs"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/table"
)

// vecWorkload exercises every lowering rule: filter over a base scan,
// aggregates (with and without a filter beneath), a join with a one-sided
// pushable predicate, and downstream nodes reading flagged compressed MVs.
func vecWorkload() *Workload {
	return &Workload{Nodes: []NodeSpec{
		{Name: "hot", SQL: `SELECT * FROM events WHERE kind = 'click' AND amount > 2`},
		{Name: "by_kind", SQL: `SELECT kind, COUNT(*) AS n, SUM(amount) AS total FROM events GROUP BY kind`},
		{Name: "hot_stats", SQL: `SELECT kind, SUM(amount * qty) AS weighted FROM hot GROUP BY kind`},
		{Name: "joined", SQL: `
			SELECT h.kind AS kind, h.amount AS amount, d.label AS label
			FROM hot h JOIN dims d ON h.kind = d.kind
			WHERE d.label <> 'skip' AND h.qty >= 1`},
		{Name: "top", SQL: `SELECT kind, amount FROM joined ORDER BY amount DESC LIMIT 5`},
	}}
}

func vecBaseTables(t *testing.T) map[string]*table.Table {
	t.Helper()
	events := table.New(table.NewSchema(
		table.Column{Name: "kind", Type: table.Str},
		table.Column{Name: "amount", Type: table.Float},
		table.Column{Name: "qty", Type: table.Int},
	))
	kinds := []string{"click", "view", "click", "click", "buy"}
	for i := 0; i < 500; i++ {
		if err := events.AppendRow(
			table.StrValue(kinds[i%len(kinds)]),
			table.FloatValue(float64(i%17)/2),
			table.IntValue(int64(i%5)),
		); err != nil {
			t.Fatal(err)
		}
	}
	dims := table.New(table.NewSchema(
		table.Column{Name: "kind", Type: table.Str},
		table.Column{Name: "label", Type: table.Str},
	))
	for _, row := range [][2]string{{"click", "c"}, {"view", "skip"}, {"buy", "b"}} {
		if err := dims.AppendRow(table.StrValue(row[0]), table.StrValue(row[1])); err != nil {
			t.Fatal(err)
		}
	}
	return map[string]*table.Table{"events": events, "dims": dims}
}

func runVecWorkload(t *testing.T, vectorized bool, o obs.Observer) (map[string][]byte, *RunResult) {
	t.Helper()
	st := storage.NewMemStore()
	enc := encoding.Options{ChunkRows: 64}
	for name, tb := range vecBaseTables(t) {
		if err := SaveTableChunked(st, name, tb, enc); err != nil {
			t.Fatal(err)
		}
	}
	w := vecWorkload()
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	plan := core.NewPlan(topo)
	for i := range plan.Flagged {
		plan.Flagged[i] = true // keep everything resident: reads hit compressed entries
	}
	ctl := &Controller{
		Store:      st,
		Mem:        memcat.New(1 << 30),
		Encoding:   &enc,
		Vectorized: vectorized,
		Obs:        o,
	}
	res, err := ctl.Run(context.Background(), w, g, plan)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for i := 0; i < g.Len(); i++ {
		name := g.Name(dag.NodeID(i))
		data, err := st.Read(tableObject(name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	return out, res
}

// canonical re-encodes a stored MV in the v1 layout, so runs that chose
// different chunk boundaries or codecs (the chunked-output pipeline does)
// still compare byte-for-byte on content.
func canonical(t *testing.T, data []byte) []byte {
	t.Helper()
	tb, err := colfmt.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := colfmt.Encode(tb)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestVectorizedEndToEnd runs the same workload through the row engine and
// the kernels and requires byte-identical materialized outputs (canonical
// form: the chunked pipeline may pick different chunk layouts, but the
// decoded tables must match byte for byte).
func TestVectorizedEndToEnd(t *testing.T) {
	want, _ := runVecWorkload(t, false, nil)
	var kernelEvents int
	got, res := runVecWorkload(t, true, obs.Func(func(e obs.Event) {
		if e.Kind == obs.KernelDone {
			kernelEvents++
		}
	}))
	for name, data := range want {
		if !bytes.Equal(canonical(t, data), canonical(t, got[name])) {
			t.Fatalf("MV %q differs between row-engine and vectorized runs", name)
		}
	}
	if kernelEvents == 0 {
		t.Fatal("no KernelDone events: the vectorized run never engaged the kernels")
	}
	var lowered, skipped, codeRows int64
	for _, n := range res.Nodes {
		lowered += n.LoweredOps
		skipped += n.ChunksSkipped
		codeRows += n.CodeFilteredRows
	}
	if lowered == 0 {
		t.Fatal("no plan operators were lowered")
	}
	if codeRows == 0 {
		t.Fatal("no rows were filtered in code space")
	}
	t.Logf("lowered=%d chunksSkipped=%d codeFilteredRows=%d", lowered, skipped, codeRows)
}

// TestVectorizedWithoutEncoding checks the degenerate setup: vectorized
// execution over v1 storage falls back everywhere, still matches, and
// reports its fallbacks in the metrics.
func TestVectorizedWithoutEncoding(t *testing.T) {
	var fallbacks int64
	run := func(vectorized bool) map[string][]byte {
		st := storage.NewMemStore()
		for name, tb := range vecBaseTables(t) {
			if err := SaveTable(st, name, tb); err != nil {
				t.Fatal(err)
			}
		}
		w := vecWorkload()
		g, _, err := w.BuildGraph()
		if err != nil {
			t.Fatal(err)
		}
		topo, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		ctl := &Controller{Store: st, Mem: memcat.New(0), Vectorized: vectorized}
		res, err := ctl.Run(context.Background(), w, g, core.NewPlan(topo))
		if err != nil {
			t.Fatal(err)
		}
		if vectorized {
			for _, n := range res.Nodes {
				fallbacks += n.KernelFallbacks
			}
		}
		out := make(map[string][]byte)
		for i := 0; i < g.Len(); i++ {
			name := g.Name(dag.NodeID(i))
			data, err := st.Read(tableObject(name))
			if err != nil {
				t.Fatal(err)
			}
			out[name] = data
		}
		return out
	}
	want := run(false)
	got := run(true)
	for name, data := range want {
		if !bytes.Equal(data, got[name]) {
			t.Fatalf("MV %q differs between row-engine and fallback vectorized runs", name)
		}
	}
	if fallbacks == 0 {
		t.Fatal("kernels over v1 storage reported no fallbacks")
	}
}
