package gateway

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/shortcircuit-db/sc/internal/obs"
)

// Prometheus text-exposition registry, hand-rolled so the gateway stays
// dependency-free. Families follow exporter conventions: unit-suffixed
// names, _total on counters, cumulative _bucket/_sum/_count histograms.
// Two renderings share the registry: the classic text format (0.0.4) and
// OpenMetrics 1.0 (negotiated via Accept), which additionally carries
// exemplars — per-bucket trace IDs tying a latency observation to the run
// trace that produced it.

// labelKey joins label values into a map key; \x1f cannot appear in a
// sane label value.
func labelKey(lvs []string) string { return strings.Join(lvs, "\x1f") }

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func labelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	b.WriteByte('}')
	return b.String()
}

// counterVec is a labeled monotonically increasing counter family.
type counterVec struct {
	name, help string
	labels     []string

	mu   sync.Mutex
	vals map[string]float64
	lvs  map[string][]string
}

func newCounterVec(name, help string, labels ...string) *counterVec {
	return &counterVec{name: name, help: help, labels: labels,
		vals: make(map[string]float64), lvs: make(map[string][]string)}
}

func (c *counterVec) add(v float64, labelValues ...string) {
	if v == 0 {
		return
	}
	k := labelKey(labelValues)
	c.mu.Lock()
	if _, ok := c.vals[k]; !ok {
		c.lvs[k] = append([]string(nil), labelValues...)
	}
	c.vals[k] += v
	c.mu.Unlock()
}

func (c *counterVec) write(w io.Writer, om bool) {
	c.mu.Lock()
	keys := make([]string, 0, len(c.vals))
	for k := range c.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	family := c.name
	if om {
		// OpenMetrics names the counter family without the _total suffix;
		// the sample line keeps it.
		family = strings.TrimSuffix(c.name, "_total")
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", family, c.help, family)
	for _, k := range keys {
		fmt.Fprintf(w, "%s%s %g\n", c.name, labelPairs(c.labels, c.lvs[k]), c.vals[k])
	}
	c.mu.Unlock()
}

// histVec is a labeled cumulative histogram family.
type histVec struct {
	name, help string
	labels     []string
	buckets    []float64 // upper bounds, ascending; +Inf implied

	mu sync.Mutex
	m  map[string]*histCell
}

type histCell struct {
	lvs    []string
	counts []int64
	sum    float64
	count  int64
	// exemplars holds the latest exemplar per bucket (len(buckets)+1, the
	// last slot for +Inf); rendered only in the OpenMetrics exposition.
	exemplars []*exemplar
}

// exemplar ties one histogram observation to its trace.
type exemplar struct {
	labels string // rendered label body, e.g. trace_id="abc..."
	v      float64
	ts     time.Time
}

func newHistVec(name, help string, buckets []float64, labels ...string) *histVec {
	return &histVec{name: name, help: help, labels: labels, buckets: buckets,
		m: make(map[string]*histCell)}
}

func (h *histVec) observe(v float64, labelValues ...string) {
	h.observeExemplar(v, "", labelValues...)
}

// observeExemplar records v and, when exLabels is non-empty (e.g.
// `trace_id="..."`), attaches it as the exemplar of the lowest bucket that
// counts v.
func (h *histVec) observeExemplar(v float64, exLabels string, labelValues ...string) {
	k := labelKey(labelValues)
	h.mu.Lock()
	cell := h.m[k]
	if cell == nil {
		cell = &histCell{
			lvs:       append([]string(nil), labelValues...),
			counts:    make([]int64, len(h.buckets)),
			exemplars: make([]*exemplar, len(h.buckets)+1),
		}
		h.m[k] = cell
	}
	slot := len(h.buckets) // +Inf
	for i, ub := range h.buckets {
		if v <= ub {
			cell.counts[i]++
			if i < slot {
				slot = i
			}
		}
	}
	cell.sum += v
	cell.count++
	if exLabels != "" {
		cell.exemplars[slot] = &exemplar{labels: exLabels, v: v, ts: time.Now()}
	}
	h.mu.Unlock()
}

func (h *histVec) write(w io.Writer, om bool) {
	h.mu.Lock()
	keys := make([]string, 0, len(h.m))
	for k := range h.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	for _, k := range keys {
		cell := h.m[k]
		bucketLine := func(le string, count int64, slot int) {
			lvs := append(append([]string(nil), cell.lvs...), le)
			fmt.Fprintf(w, "%s_bucket%s %d", h.name,
				labelPairs(append(append([]string(nil), h.labels...), "le"), lvs), count)
			if om && slot < len(cell.exemplars) {
				if ex := cell.exemplars[slot]; ex != nil {
					// OpenMetrics exemplar: value # {labels} exemplar_value ts
					fmt.Fprintf(w, " # {%s} %g %.3f", ex.labels, ex.v, float64(ex.ts.UnixNano())/1e9)
				}
			}
			fmt.Fprintln(w)
		}
		for i, ub := range h.buckets {
			bucketLine(fmt.Sprintf("%g", ub), cell.counts[i], i)
		}
		bucketLine("+Inf", cell.count, len(h.buckets))
		fmt.Fprintf(w, "%s_sum%s %g\n", h.name, labelPairs(h.labels, cell.lvs), cell.sum)
		fmt.Fprintf(w, "%s_count%s %d\n", h.name, labelPairs(h.labels, cell.lvs), cell.count)
	}
	h.mu.Unlock()
}

// gaugeSample is one scrape-time gauge reading.
type gaugeSample struct {
	lvs []string
	v   float64
}

// gaugeVec is a labeled gauge family whose values are collected at scrape
// time — queue depth and catalog byte gauges read live server state
// instead of being kept in sync event by event.
type gaugeVec struct {
	name, help string
	labels     []string
	collect    func() []gaugeSample
}

func (g *gaugeVec) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
	samples := g.collect()
	sort.Slice(samples, func(i, j int) bool {
		return labelKey(samples[i].lvs) < labelKey(samples[j].lvs)
	})
	for _, s := range samples {
		fmt.Fprintf(w, "%s%s %g\n", g.name, labelPairs(g.labels, s.lvs), s.v)
	}
}

// latencyBuckets spans queue waits through multi-minute refreshes.
var latencyBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// prom is the gateway's metric registry: the obs stream lands in counters
// and histograms here, and the /metrics handler writes the exposition.
type prom struct {
	refreshes       *counterVec // tenant, pipeline, status
	triggers        *counterVec // outcome
	decodeBytes     *counterVec // tenant, pipeline
	encodeBytes     *counterVec // tenant, pipeline
	materialized    *counterVec // tenant, pipeline
	evictions       *counterVec // tenant, pipeline
	kernelFallbacks *counterVec // tenant, pipeline
	anomalies       *counterVec // pipeline, kind
	eventsDropped   *counterVec // tenant, pipeline
	traceSampled    *counterVec // decision
	refreshSeconds  *histVec    // tenant, pipeline
	queueWait       *histVec    // (none)
	mvReadSeconds   *histVec    // (none)

	gauges []*gaugeVec
}

func newProm() *prom {
	return &prom{
		refreshes: newCounterVec("scserve_refreshes_total",
			"Completed refresh runs by terminal status.", "tenant", "pipeline", "status"),
		triggers: newCounterVec("scserve_triggers_total",
			"Trigger admission outcomes.", "outcome"),
		decodeBytes: newCounterVec("scserve_decode_bytes_total",
			"Raw bytes decoded serving catalog and chunked-file reads.", "tenant", "pipeline"),
		encodeBytes: newCounterVec("scserve_encode_bytes_total",
			"Encoded bytes produced by node outputs.", "tenant", "pipeline"),
		materialized: newCounterVec("scserve_materialized_bytes_total",
			"Bytes materialized to external storage.", "tenant", "pipeline"),
		evictions: newCounterVec("scserve_evictions_total",
			"Flagged outputs released from the shared catalog.", "tenant", "pipeline"),
		kernelFallbacks: newCounterVec("scserve_kernel_fallbacks_total",
			"Kernel executions that reverted to the row engine.", "tenant", "pipeline"),
		anomalies: newCounterVec("scserve_anomalies_total",
			"Baseline anomalies detected in finished runs.", "pipeline", "kind"),
		eventsDropped: newCounterVec("scserve_run_events_dropped_total",
			"Run events dropped by the bounded event buffer.", "tenant", "pipeline"),
		traceSampled: newCounterVec("scserve_traces_sampled_total",
			"Tail-sampling decisions on finished run traces.", "decision"),
		refreshSeconds: newHistVec("scserve_refresh_seconds",
			"End-to-end refresh latency (trigger to all MVs materialized), including queue wait.",
			latencyBuckets, "tenant", "pipeline"),
		queueWait: newHistVec("scserve_queue_wait_seconds",
			"Time triggers spent queued before admission.", latencyBuckets),
		mvReadSeconds: newHistVec("scserve_mv_read_seconds",
			"Server-side MV query latency.", latencyBuckets),
	}
}

// runObserver adapts one run's obs stream into the registry.
func (p *prom) runObserver(tenant, pipeline string) obs.Observer {
	return obs.Func(func(e obs.Event) {
		switch e.Kind {
		case obs.DecodeDone:
			p.decodeBytes.add(float64(e.Bytes), tenant, pipeline)
		case obs.EncodeDone:
			p.encodeBytes.add(float64(e.Encoded), tenant, pipeline)
		case obs.Materialized:
			p.materialized.add(float64(e.Bytes), tenant, pipeline)
		case obs.Evicted:
			p.evictions.add(1, tenant, pipeline)
		case obs.KernelDone:
			p.kernelFallbacks.add(float64(e.Fallbacks), tenant, pipeline)
		}
	})
}

// addGauge registers a scrape-time gauge family.
func (p *prom) addGauge(name, help string, labels []string, collect func() []gaugeSample) {
	p.gauges = append(p.gauges, &gaugeVec{name: name, help: help, labels: labels, collect: collect})
}

// write renders the full exposition; om selects OpenMetrics 1.0 (counter
// families named without _total, exemplars on histogram buckets, trailing
// # EOF) over the classic 0.0.4 text format.
func (p *prom) write(w io.Writer, om bool) {
	p.refreshes.write(w, om)
	p.triggers.write(w, om)
	p.decodeBytes.write(w, om)
	p.encodeBytes.write(w, om)
	p.materialized.write(w, om)
	p.evictions.write(w, om)
	p.kernelFallbacks.write(w, om)
	p.anomalies.write(w, om)
	p.eventsDropped.write(w, om)
	p.traceSampled.write(w, om)
	for _, g := range p.gauges {
		g.write(w)
	}
	p.refreshSeconds.write(w, om)
	p.queueWait.write(w, om)
	p.mvReadSeconds.write(w, om)
	if om {
		io.WriteString(w, "# EOF\n")
	}
}
