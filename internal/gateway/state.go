package gateway

import (
	"context"
	"fmt"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/introspect"
	"github.com/shortcircuit-db/sc/internal/introspect/alert"
	"github.com/shortcircuit-db/sc/internal/ledger"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/opt"
)

// serverEvLogCap bounds the server-wide eviction timeline: evictions
// harvested from finished run catalogs, newest wins.
const serverEvLogCap = 256

// buildProblem assembles the pipeline's current knapsack exactly as
// planTrigger sees it: learned (EWMA) encoded sizes and sized scores when
// the pipeline encodes, raw sizes otherwise. raw is always the
// uncompressed footprint vector (the memory-access side of the scores).
func (s *Server) buildProblem(p *pipeline) (prob *core.Problem, raw []int64) {
	slice := s.adm.tenantSlice(p.tenant)
	raw = p.md.Sizes(p.graph, s.cfg.SizeGuess)
	prob = &core.Problem{G: p.graph, Memory: slice}
	if p.encOpts != nil {
		enc := p.md.EncodedSizes(p.graph, s.cfg.SizeGuess)
		prob.Sizes = enc
		prob.Scores = p.md.ScoresSized(p.graph, raw, enc, s.device)
	} else {
		prob.Sizes = raw
		prob.Scores = p.md.Scores(p.graph, raw, s.device)
	}
	return prob, raw
}

// CatalogState snapshots the shared Memory Catalog for
// GET /v1/state/catalog: every entry resident in a live run's catalog with
// its owner, codec mix, decoded-view residency and eviction rank under the
// cost-model score, plus the bounded eviction timeline. The report's
// UsedBytes comes from the pool and EntryBytes from summing entries — the
// two agree byte-for-byte because every run catalog draws from the pool.
func (s *Server) CatalogState() introspect.CatalogReport {
	now := s.cfg.Clock()
	rep := introspect.CatalogReport{
		At:            now,
		BudgetBytes:   s.pool.Capacity(),
		ReservedBytes: s.pool.Reserved(),
		UsedBytes:     s.pool.Used(),
		PeakUsedBytes: s.pool.PeakUsed(),
	}

	type liveRun struct {
		id, pipeline, tenant string
		cat                  *memcat.Catalog
		p                    *pipeline
	}
	var live []liveRun
	s.mu.Lock()
	for _, r := range s.runs {
		r.mu.Lock()
		cat := r.cat
		r.mu.Unlock()
		if cat != nil {
			live = append(live, liveRun{r.id, r.pipeline, r.tenant, cat, s.pipelines[r.pipeline]})
		}
	}
	s.mu.Unlock()

	for _, lr := range live {
		// Score each resident entry under the pipeline's current knapsack,
		// so eviction rank reflects what the optimizer values right now.
		score := make(map[string]float64)
		if lr.p != nil {
			prob, _ := s.buildProblem(lr.p)
			for i, n := range lr.p.workload.Nodes {
				score[n.Name] = prob.Scores[i]
			}
		}
		for _, e := range lr.cat.Entries() {
			ce := introspect.CatalogEntry{
				Pipeline: lr.pipeline, Tenant: lr.tenant, RunID: lr.id,
				EntryInfo: e,
			}
			if !e.LastAccess.IsZero() {
				ce.LastAccessAgeSeconds = now.Sub(e.LastAccess).Seconds()
			}
			ce.ScoreSeconds = score[e.Name]
			rep.Entries = append(rep.Entries, ce)
		}
		for _, ev := range lr.cat.Evictions() {
			rep.Evictions = append(rep.Evictions, introspect.EvictionEvent{
				Pipeline: lr.pipeline, Tenant: lr.tenant, RunID: lr.id, Eviction: ev,
			})
		}
		rep.EvictionsSeen += lr.cat.EvictionsSeen()
	}

	// Prepend the server-wide timeline (evictions harvested from finished
	// runs), oldest first, before the live catalogs' own rings.
	s.evMu.Lock()
	rep.Evictions = append(append([]introspect.EvictionEvent{}, s.evlog...), rep.Evictions...)
	rep.EvictionsSeen += s.evSeen
	s.evMu.Unlock()

	introspect.FinishCatalogReport(&rep)
	return rep
}

// harvestEvictions folds a finishing run catalog's eviction ring into the
// server-wide timeline, attributed to the run whose budget pressure caused
// them.
func (s *Server) harvestEvictions(r *Run, cat *memcat.Catalog) {
	evs := cat.Evictions()
	seen := cat.EvictionsSeen()
	if seen == 0 {
		return
	}
	s.evMu.Lock()
	defer s.evMu.Unlock()
	s.evSeen += seen
	for _, ev := range evs {
		s.evlog = append(s.evlog, introspect.EvictionEvent{
			Pipeline: r.pipeline, Tenant: r.tenant, RunID: r.id, Eviction: ev,
		})
	}
	if over := len(s.evlog) - serverEvLogCap; over > 0 {
		s.evlog = append(s.evlog[:0], s.evlog[over:]...)
	}
}

// SchedState snapshots the scheduler for GET /v1/state/sched: the
// token pool (in flight, idle, soft-committed), the in-flight byte
// reservations, and the admission queue with each trigger's blocking
// reason.
func (s *Server) SchedState() introspect.SchedReport {
	rep := introspect.SchedReport{
		At:                  s.cfg.Clock(),
		Snapshot:            s.sched.Stats(),
		BudgetBytes:         s.pool.Capacity(),
		ReservedCatalogByte: s.pool.Reserved(),
		Queue:               s.adm.queueSnapshot(),
	}
	rep.QueueDepth = len(rep.Queue)
	for _, t := range s.tenantNames() {
		rep.Tenants = append(rep.Tenants, introspect.TenantState{
			Tenant:        t,
			SliceBytes:    s.adm.tenantSlice(t),
			ReservedBytes: s.adm.tenantReserved(t),
		})
	}
	return rep
}

// ExplainPipeline re-solves the pipeline's knapsack from its current
// learned execution metadata — exactly the plan the next trigger would run
// — and explains every MV's flag decision: the sized score, predicted
// encoded bytes, the marginal byte cost that decided it, and what would
// flip it. The body of GET /v1/pipelines/{p}/explain.
func (s *Server) ExplainPipeline(name string) (*introspect.ExplainReport, error) {
	s.mu.Lock()
	p, ok := s.pipelines[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: pipeline %q", ErrNotFound, name)
	}
	prob, raw := s.buildProblem(p)
	plan, _, err := opt.Solve(context.Background(), prob, opt.Options{})
	if err != nil {
		return nil, err
	}
	names := make([]string, len(p.workload.Nodes))
	for i, n := range p.workload.Nodes {
		names[i] = n.Name
	}
	in := introspect.ExplainInput{
		Pipeline: name,
		Problem:  prob,
		Plan:     plan,
		Names:    names,
		RawBytes: raw,
		Encoding: p.encOpts != nil,
		Device:   s.device,
	}
	if p.encOpts != nil {
		in.PredictedBytes = make([]int64, len(names))
		for i, n := range names {
			in.PredictedBytes[i] = p.md.PredictEncoded(n, raw[i])
		}
	}
	return introspect.Explain(in), nil
}

// notifyRun pushes the run's flagging-adjacent surprises to the alert
// webhook: one event per ledger anomaly, plus the pipeline's
// health-verdict transition when this run changed it. The first observed
// verdict for a pipeline establishes the baseline silently, so a fresh
// gateway does not alert "unknown became healthy" on every first run.
func (s *Server) notifyRun(r *Run, sum ledger.RunSummary) {
	if s.alerts == nil {
		return
	}
	for _, a := range sum.Anomalies {
		s.alerts.Notify(alert.Event{
			Pipeline: r.pipeline,
			Kind:     a.Kind,
			Severity: "warning",
			Summary:  anomalySummary(r.pipeline, a),
			RunID:    r.id,
			Node:     a.Node,
			Observed: a.Observed,
			Baseline: a.Baseline,
			Sigma:    a.Score,
		})
	}
	h := s.led.Health(r.pipeline, ledger.HealthConfig{SLOSeconds: s.cfg.SLOSeconds})
	s.verMu.Lock()
	prev := s.lastVerdict[r.pipeline]
	s.lastVerdict[r.pipeline] = h.Verdict
	s.verMu.Unlock()
	if prev == "" || prev == h.Verdict {
		return
	}
	sev := "info"
	switch h.Verdict {
	case ledger.VerdictFailing:
		sev = "critical"
	case ledger.VerdictDegraded:
		sev = "warning"
	}
	s.alerts.Notify(alert.Event{
		Pipeline:    r.pipeline,
		Kind:        "health_transition",
		Severity:    sev,
		Summary:     fmt.Sprintf("pipeline %s went %s (was %s)", r.pipeline, h.Verdict, prev),
		RunID:       r.id,
		FromVerdict: prev,
		ToVerdict:   h.Verdict,
	})
}

func anomalySummary(pipeline string, a ledger.Anomaly) string {
	msg := fmt.Sprintf("pipeline %s: %s", pipeline, a.Kind)
	if a.Node != "" {
		msg += " at node " + a.Node
	}
	if a.Detail != "" {
		msg += ": " + a.Detail
	}
	return msg
}
