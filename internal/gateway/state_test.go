package gateway

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/shortcircuit-db/sc/internal/introspect"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/table"
)

// gateStore wraps a Store and holds every Write on a gate channel while it
// is closed. Flagged outputs release from the Memory Catalog only after
// their background materialization finishes, so a closed gate pins every
// flagged entry resident — the deterministic freeze-frame the catalog
// introspection tests snapshot against.
type gateStore struct {
	storage.Store
	mu      sync.Mutex
	gate    chan struct{}
	arrived atomic.Int32 // writes that reached the gate since block()
}

func (g *gateStore) block() {
	g.mu.Lock()
	g.gate = make(chan struct{})
	g.arrived.Store(0)
	g.mu.Unlock()
}

func (g *gateStore) open() {
	g.mu.Lock()
	if g.gate != nil {
		close(g.gate)
		g.gate = nil
	}
	g.mu.Unlock()
}

func (g *gateStore) Write(name string, data []byte) error {
	g.mu.Lock()
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		g.arrived.Add(1)
		<-gate
	}
	return g.Store.Write(name, data)
}

// scrapeGauge fetches /metrics and returns the value of an unlabeled gauge.
func scrapeGauge(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("gauge %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("gauge %s not in exposition", name)
	return 0
}

// TestStateCatalogAndSchedIntrospection freezes a refresh mid-flight (all
// background materializations gated) and checks that GET /v1/state/catalog
// agrees byte-for-byte with the pool and the /metrics gauges, that a second
// trigger shows up in GET /v1/state/sched blocked on the busy pipeline, and
// that opening the gate drains everything into the server-wide eviction
// timeline with per-run attribution.
func TestStateCatalogAndSchedIntrospection(t *testing.T) {
	gs := &gateStore{Store: storage.NewMemStore()}
	s, ts := newTestGateway(t, Config{
		// Room for all three MVs at the 1 MiB-per-node size guess, so the
		// optimizer flags the whole pipeline on the first (unlearned) run.
		GlobalBudget: 8 << 20,
		NewStore:     func(string) storage.Store { return gs },
	})
	if err := s.Register(PipelineSpec{
		Name: "beer", Tenant: "brewer",
		MVs:    pipelineRequest("", "").MVs,
		Tables: map[string]*table.Table{"sales": mustTable(t, salesJSON())},
	}); err != nil {
		t.Fatal(err)
	}

	// The tiny sales MVs all fit the 1 MiB budget with positive scores, so
	// the optimizer flags all three; the catalog assertions below lean on
	// that, so pin it via the explain surface first.
	exp, err := s.ExplainPipeline("beer")
	if err != nil {
		t.Fatal(err)
	}
	if exp.FlaggedCount != 3 {
		t.Fatalf("flagged %d of %d MVs, want all 3: %+v", exp.FlaggedCount, exp.Nodes, exp.Decisions)
	}

	gs.block()
	r1, err := s.Trigger("beer")
	if err != nil {
		t.Fatal(err)
	}
	// All three flagged outputs are Put into the catalog and then handed to
	// background writers that are now parked at the gate: once the third
	// arrives, the run is quiescent and the catalog is a fixed point.
	for deadline := time.Now().Add(5 * time.Second); gs.arrived.Load() < 3; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/3 materializations reached the gate", gs.arrived.Load())
		}
		time.Sleep(time.Millisecond)
	}

	rep := s.CatalogState()
	if rep.EntryCount != 3 || len(rep.Entries) != 3 {
		t.Fatalf("entries = %d, want 3: %+v", rep.EntryCount, rep.Entries)
	}
	if rep.EntryBytes != rep.UsedBytes {
		t.Fatalf("per-entry sum %d disagrees with pool used %d", rep.EntryBytes, rep.UsedBytes)
	}
	if rep.BudgetBytes != 8<<20 || rep.ReservedBytes <= 0 {
		t.Fatalf("budget %d reserved %d", rep.BudgetBytes, rep.ReservedBytes)
	}
	ranks := make(map[int]bool)
	for _, e := range rep.Entries {
		if e.Pipeline != "beer" || e.Tenant != "brewer" || e.RunID != r1.ID() {
			t.Fatalf("entry attribution: %+v", e)
		}
		if e.ScoreSeconds <= 0 {
			t.Fatalf("entry %s has no cost-model score: %+v", e.Name, e)
		}
		if e.LastAccessAgeSeconds < 0 {
			t.Fatalf("entry %s: negative last-access age", e.Name)
		}
		ranks[e.EvictionRank] = true
	}
	if !ranks[1] || !ranks[2] || !ranks[3] {
		t.Fatalf("eviction ranks not a 1..3 permutation: %+v", rep.Entries)
	}

	// The HTTP surface serves the same report, and the /metrics catalog
	// gauges agree with its byte totals — nothing can move while the gate
	// holds every writer.
	resp, err := http.Get(ts.URL + "/v1/state/catalog")
	if err != nil {
		t.Fatal(err)
	}
	httpRep := decodeBody[introspect.CatalogReport](t, resp)
	if httpRep.EntryCount != 3 || httpRep.EntryBytes != rep.EntryBytes {
		t.Fatalf("HTTP catalog = %d entries %d bytes, want 3 / %d",
			httpRep.EntryCount, httpRep.EntryBytes, rep.EntryBytes)
	}
	if got := scrapeGauge(t, ts.URL, "scserve_catalog_entry_bytes"); int64(got) != rep.EntryBytes {
		t.Fatalf("scserve_catalog_entry_bytes = %g, want %d", got, rep.EntryBytes)
	}
	if got := scrapeGauge(t, ts.URL, "scserve_catalog_used_bytes"); int64(got) != rep.EntryBytes {
		t.Fatalf("scserve_catalog_used_bytes = %g, want %d", got, rep.EntryBytes)
	}

	// A second trigger on the busy pipeline queues; the scheduler snapshot
	// must name what it is blocked on.
	r2, err := s.Trigger("beer")
	if err != nil {
		t.Fatal(err)
	}
	sr := s.SchedState()
	if sr.QueueDepth != 1 || len(sr.Queue) != 1 {
		t.Fatalf("queue depth = %d, want 1: %+v", sr.QueueDepth, sr.Queue)
	}
	qe := sr.Queue[0]
	if qe.Pipeline != "beer" || qe.Tenant != "brewer" || qe.BlockedOn != "pipeline-busy" {
		t.Fatalf("queue head = %+v, want beer blocked on pipeline-busy", qe)
	}
	if qe.NeedBytes <= 0 {
		t.Fatalf("queued trigger reserves nothing: %+v", qe)
	}
	var brewer *introspect.TenantState
	for i := range sr.Tenants {
		if sr.Tenants[i].Tenant == "brewer" {
			brewer = &sr.Tenants[i]
		}
	}
	if brewer == nil || brewer.ReservedBytes <= 0 || brewer.SliceBytes != 8<<20 {
		t.Fatalf("tenant state: %+v", sr.Tenants)
	}
	resp, err = http.Get(ts.URL + "/v1/state/sched")
	if err != nil {
		t.Fatal(err)
	}
	httpSched := decodeBody[introspect.SchedReport](t, resp)
	if httpSched.QueueDepth != 1 || httpSched.Queue[0].BlockedOn != "pipeline-busy" {
		t.Fatalf("HTTP sched state: %+v", httpSched)
	}

	// Open the gate: both runs drain; the per-run "release" deletions are
	// harvested into the server-wide eviction timeline with attribution.
	gs.open()
	<-r1.done
	<-r2.done
	for _, r := range []*Run{r1, r2} {
		if st := r.Status(); st.State != StateSucceeded {
			t.Fatalf("run %s: %q (%s)", r.ID(), st.State, st.Error)
		}
	}
	rep = s.CatalogState()
	if rep.EntryCount != 0 || rep.UsedBytes != 0 {
		t.Fatalf("catalog not drained: %d entries, %d bytes", rep.EntryCount, rep.UsedBytes)
	}
	if rep.EvictionsSeen < 6 {
		t.Fatalf("evictions seen = %d, want >= 6 (3 releases per run)", rep.EvictionsSeen)
	}
	byRun := make(map[string]int)
	for _, ev := range rep.Evictions {
		if ev.Reason != "release" {
			t.Fatalf("unexpected eviction reason %q: %+v", ev.Reason, ev)
		}
		byRun[ev.RunID]++
	}
	if byRun[r1.ID()] != 3 || byRun[r2.ID()] != 3 {
		t.Fatalf("eviction attribution = %v, want 3 per run", byRun)
	}
	if got := scrapeGauge(t, ts.URL, "scserve_catalog_evictions_total"); got < 6 {
		t.Fatalf("scserve_catalog_evictions_total = %g, want >= 6", got)
	}
}

// TestExplainPipelineHTTP checks that GET /v1/pipelines/{p}/explain
// reports a decision with a sized score for every MV of a registered
// TPC-DS pipeline, before any refresh has run.
func TestExplainPipelineHTTP(t *testing.T) {
	s, ts := newTestGateway(t, Config{GlobalBudget: 8 << 20})
	spec := TPCDSSpec("dw", "analytics", 0.01)
	if err := s.Register(spec); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/pipelines/dw/explain")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("explain: %d %s", resp.StatusCode, b)
	}
	rep := decodeBody[introspect.ExplainReport](t, resp)
	if rep.Pipeline != "dw" || rep.Nodes != len(spec.MVs) || len(rep.Decisions) != len(spec.MVs) {
		t.Fatalf("explain covers %d decisions over %d nodes, want %d", len(rep.Decisions), rep.Nodes, len(spec.MVs))
	}
	want := make(map[string]bool, len(spec.MVs))
	for _, mv := range spec.MVs {
		want[mv.Name] = true
	}
	var flagged int
	for _, d := range rep.Decisions {
		if !want[d.Node] {
			t.Fatalf("decision for unknown MV %q", d.Node)
		}
		if d.Class == "" || d.Flip == "" {
			t.Fatalf("decision %s missing class or flip condition: %+v", d.Node, d)
		}
		if d.Flagged {
			flagged++
			if d.ScoreSeconds <= 0 {
				t.Fatalf("flagged %s without a positive sized score: %+v", d.Node, d)
			}
		}
	}
	if flagged != rep.FlaggedCount {
		t.Fatalf("flagged count %d != %d flagged decisions", rep.FlaggedCount, flagged)
	}

	resp, err = http.Get(ts.URL + "/v1/pipelines/ghost/explain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost explain: %d", resp.StatusCode)
	}
}

// TestGatewayAlertWebhookEndToEnd is the alerting acceptance path: an
// induced wall regression must reach the webhook exactly once — surviving
// one simulated 5xx on first delivery — with no duplicate inside the dedup
// cooldown, alongside the pipeline's health-verdict transition.
func TestGatewayAlertWebhookEndToEnd(t *testing.T) {
	var (
		hookMu  sync.Mutex
		bodies  []string
		fail503 = true
	)
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		hookMu.Lock()
		defer hookMu.Unlock()
		if fail503 {
			fail503 = false
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		bodies = append(bodies, string(b))
	}))
	defer hook.Close()

	ds := &delayStore{Store: storage.NewMemStore(), target: "sales"}
	s, _ := newTestGateway(t, Config{
		AlertWebhook: hook.URL,
		NewStore:     func(string) storage.Store { return ds },
	})
	if err := s.Register(PipelineSpec{
		Name: "beer", Tenant: "brewer",
		MVs:    pipelineRequest("", "").MVs,
		Tables: map[string]*table.Table{"sales": mustTable(t, salesJSON())},
	}); err != nil {
		t.Fatal(err)
	}

	// Four healthy refreshes learn the per-node wall baselines and settle
	// the health verdict (the first verdict is established silently).
	for i := 0; i < 4; i++ {
		refreshOK(t, s, "beer")
	}
	// Two slowed refreshes: the first regresses and must alert; the second
	// lands inside the default cooldown, so whether or not the detector
	// re-flags it, no second wall_regression may reach the webhook.
	ds.delayNs.Store(int64(150 * time.Millisecond))
	refreshOK(t, s, "beer")
	refreshOK(t, s, "beer")
	ds.delayNs.Store(0)

	// Close drains the notifier queue; newTestGateway's cleanup close is a
	// no-op afterwards.
	s.Close()

	hookMu.Lock()
	got := append([]string(nil), bodies...)
	hookMu.Unlock()
	var wallAlerts, transitions int
	for _, b := range got {
		switch {
		case strings.Contains(b, `"kind":"wall_regression"`):
			wallAlerts++
			for _, want := range []string{`"pipeline":"beer"`, `"node":"mv_daily"`, `"severity":"warning"`} {
				if !strings.Contains(b, want) {
					t.Fatalf("wall alert missing %s: %s", want, b)
				}
			}
		case strings.Contains(b, `"kind":"health_transition"`):
			transitions++
			if !strings.Contains(b, `"to_verdict":"degraded"`) {
				t.Fatalf("transition alert: %s", b)
			}
		}
	}
	if wallAlerts != 1 {
		t.Fatalf("wall_regression deliveries = %d, want exactly 1 (bodies: %q)", wallAlerts, got)
	}
	if transitions != 1 {
		t.Fatalf("health transitions = %d, want 1 (bodies: %q)", transitions, got)
	}
	st := s.alerts.Stats()
	if st.Retries < 1 {
		t.Fatalf("stats = %+v, want at least one retry for the simulated 503", st)
	}
	if st.Delivered != int64(len(got)) {
		t.Fatalf("delivered %d but webhook saw %d bodies", st.Delivered, len(got))
	}
}
