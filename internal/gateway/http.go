package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/shortcircuit-db/sc/internal/ledger"
	"github.com/shortcircuit-db/sc/internal/table"
	"github.com/shortcircuit-db/sc/internal/telemetry"
)

// registerRequest is the JSON body of POST /v1/pipelines.
type registerRequest struct {
	Name        string `json:"name"`
	Tenant      string `json:"tenant,omitempty"`
	TenantSlice int64  `json:"tenant_slice_bytes,omitempty"`
	// Workload names a built-in MV DAG instead of spelling out mvs:
	// "tpcds-real" is the repo's 12-node TPC-DS store_sales pipeline
	// (pair it with seed_tpcds_sf).
	Workload   string               `json:"workload,omitempty"`
	MVs        []MVSpec             `json:"mvs"`
	Every      string               `json:"every,omitempty"` // Go duration, e.g. "30s"
	Encoding   bool                 `json:"encoding,omitempty"`
	Vectorized bool                 `json:"vectorized,omitempty"`
	SeedTPCDS  float64              `json:"seed_tpcds_sf,omitempty"`
	Tables     map[string]tableJSON `json:"tables,omitempty"`
}

// tableJSON is an inline base table: a schema plus row-major values.
type tableJSON struct {
	Schema []columnJSON `json:"schema"`
	Rows   [][]any      `json:"rows"`
}

type columnJSON struct {
	Name string `json:"name"`
	Type string `json:"type"` // int | float | str
}

// toTable materializes an inline table.
func (tj tableJSON) toTable() (*table.Table, error) {
	cols := make([]table.Column, len(tj.Schema))
	for i, c := range tj.Schema {
		col := table.Column{Name: c.Name}
		switch c.Type {
		case "int":
			col.Type = table.Int
		case "float":
			col.Type = table.Float
		case "str", "string":
			col.Type = table.Str
		default:
			return nil, fmt.Errorf("column %q: unknown type %q", c.Name, c.Type)
		}
		cols[i] = col
	}
	t := table.New(table.NewSchema(cols...))
	for ri, row := range tj.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("row %d: %d values for %d columns", ri, len(row), len(cols))
		}
		vals := make([]table.Value, len(row))
		for ci, v := range row {
			switch cols[ci].Type {
			case table.Int:
				f, ok := v.(float64)
				if !ok {
					return nil, fmt.Errorf("row %d col %q: want int", ri, cols[ci].Name)
				}
				vals[ci] = table.IntValue(int64(f))
			case table.Float:
				f, ok := v.(float64)
				if !ok {
					return nil, fmt.Errorf("row %d col %q: want float", ri, cols[ci].Name)
				}
				vals[ci] = table.FloatValue(f)
			case table.Str:
				s, ok := v.(string)
				if !ok {
					return nil, fmt.Errorf("row %d col %q: want string", ri, cols[ci].Name)
				}
				vals[ci] = table.StrValue(s)
			}
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// tableResponse is the JSON shape of an MV query result.
type tableResponse struct {
	Pipeline string   `json:"pipeline"`
	MV       string   `json:"mv"`
	Columns  []string `json:"columns"`
	Types    []string `json:"types"`
	Rows     int      `json:"rows"`
	Data     [][]any  `json:"data"`
}

func toTableResponse(pipeline, mv string, t *table.Table) tableResponse {
	resp := tableResponse{Pipeline: pipeline, MV: mv, Rows: t.NumRows()}
	for _, c := range t.Schema.Cols {
		resp.Columns = append(resp.Columns, c.Name)
		resp.Types = append(resp.Types, c.Type.String())
	}
	resp.Data = make([][]any, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		row := make([]any, len(t.Schema.Cols))
		for j, v := range t.Row(i) {
			switch v.Type {
			case table.Int:
				row[j] = v.I
			case table.Float:
				row[j] = v.F
			default:
				row[j] = v.S
			}
		}
		resp.Data[i] = row
	}
	return resp
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

// writeError maps gateway errors to HTTP status codes. ErrQueueFull is 429
// (back off and retry); unknown names are 404; bad input is 400. Handler
// bugs aside, the gateway never answers 5xx for admission pressure — that
// is the acceptance bar the bench asserts.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrAlreadyExists):
		code = http.StatusConflict
	}
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// Handler returns the gateway's HTTP API:
//
//	POST   /v1/pipelines                      register a pipeline
//	GET    /v1/pipelines                      list pipelines
//	GET    /v1/pipelines/{name}               pipeline info
//	DELETE /v1/pipelines/{name}               unregister
//	POST   /v1/pipelines/{name}/refresh       trigger a refresh (?wait=1 blocks)
//	GET    /v1/pipelines/{name}/mvs/{mv}      query a materialized view (?limit=N)
//	GET    /v1/pipelines/{name}/health        SLO attainment, baselines, regressions
//	GET    /v1/pipelines/{name}/explain       per-MV flag decisions: scores, byte costs, flip conditions
//	GET    /v1/state/catalog                  Memory Catalog residents, codec mix, eviction ranks and timeline
//	GET    /v1/state/sched                    scheduler tokens, byte reservations, admission queue with blockers
//	GET    /v1/runs                           ledger history (?pipeline=&tenant=&outcome=&anomalous=1&limit=N)
//	GET    /v1/runs/{id}                      run status
//	POST   /v1/runs/{id}/cancel               cancel a queued or running refresh
//	GET    /v1/runs/{id}/events               NDJSON progress stream (SSE with Accept: text/event-stream)
//	GET    /v1/runs/{id}/trace                run trace: spans + critical-path analysis
//	GET    /metrics                           Prometheus exposition (OpenMetrics with exemplars when negotiated)
//	GET    /healthz                           server stats
//
// Refresh triggers accept a W3C traceparent header; the run's root span
// joins the caller's trace and the response echoes the run's own
// traceparent so clients can link further work under it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/pipelines", s.handleRegister)
	mux.HandleFunc("GET /v1/pipelines", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Pipelines())
	})
	mux.HandleFunc("GET /v1/pipelines/{name}", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.Pipeline(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /v1/pipelines/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Unregister(r.PathValue("name")); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/pipelines/{name}/refresh", s.handleTrigger)
	mux.HandleFunc("GET /v1/pipelines/{name}/mvs/{mv}", s.handleQueryMV)
	mux.HandleFunc("GET /v1/pipelines/{name}/health", func(w http.ResponseWriter, r *http.Request) {
		h, err := s.PipelineHealth(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, h)
	})
	mux.HandleFunc("GET /v1/pipelines/{name}/explain", func(w http.ResponseWriter, r *http.Request) {
		rep, err := s.ExplainPipeline(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("GET /v1/state/catalog", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.CatalogState())
	})
	mux.HandleFunc("GET /v1/state/sched", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.SchedState())
	})
	mux.HandleFunc("GET /v1/runs", s.handleRunHistory)
	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Run(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/runs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.CancelRun(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/runs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		rep, err := s.RunTrace(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// Content negotiation: an Accept naming OpenMetrics gets the 1.0
		// exposition (with exemplars); everything else the classic format.
		om := strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
		if om {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		} else {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		}
		s.prom.write(w, om)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec := PipelineSpec{
		Name:        req.Name,
		Tenant:      req.Tenant,
		TenantSlice: req.TenantSlice,
		MVs:         req.MVs,
		Encoding:    req.Encoding,
		Vectorized:  req.Vectorized,
		SeedTPCDS:   req.SeedTPCDS,
	}
	if len(spec.MVs) == 0 && req.Workload != "" {
		switch req.Workload {
		case "tpcds-real":
			spec.MVs = TPCDSSpec("", "", 0).MVs
		default:
			writeError(w, fmt.Errorf("unknown workload %q", req.Workload))
			return
		}
	}
	if req.Every != "" {
		d, err := time.ParseDuration(req.Every)
		if err != nil {
			writeError(w, fmt.Errorf("bad every: %w", err))
			return
		}
		spec.Every = d
	}
	if len(req.Tables) > 0 {
		spec.Tables = make(map[string]*table.Table, len(req.Tables))
		for name, tj := range req.Tables {
			t, err := tj.toTable()
			if err != nil {
				writeError(w, fmt.Errorf("table %q: %w", name, err))
				return
			}
			spec.Tables[name] = t
		}
	}
	if err := s.Register(spec); err != nil {
		writeError(w, err)
		return
	}
	info, err := s.Pipeline(spec.Name)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleTrigger(w http.ResponseWriter, r *http.Request) {
	// A valid W3C traceparent joins the run's trace to the caller's; a
	// malformed one is ignored rather than rejected, per the spec.
	parent, _ := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
	run, err := s.TriggerTrace(r.PathValue("name"), parent)
	if err != nil {
		writeError(w, err)
		return
	}
	if tp := run.Traceparent(); tp != "" {
		w.Header().Set("traceparent", tp)
	}
	if r.URL.Query().Get("wait") == "" {
		writeJSON(w, http.StatusAccepted, run.status())
		return
	}
	// wait mode: block until the run reaches a terminal state; a client
	// disconnect cancels the refresh and releases its reservation.
	select {
	case <-run.done:
		writeJSON(w, http.StatusOK, run.status())
	case <-r.Context().Done():
		_, _ = s.CancelRun(run.id)
	}
}

// runHistoryResponse is the JSON shape of GET /v1/runs.
type runHistoryResponse struct {
	Runs  []ledger.RunSummary `json:"runs"`
	Count int                 `json:"count"`
}

// handleRunHistory serves the ledger's run history, newest first.
// Query params: pipeline, tenant, outcome filter exact values;
// anomalous=1 keeps only flagged runs; limit caps results (default 50).
func (s *Server) handleRunHistory(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := ledger.Filter{
		Pipeline: q.Get("pipeline"),
		Tenant:   q.Get("tenant"),
		Outcome:  q.Get("outcome"),
		Limit:    50,
	}
	if v := q.Get("anomalous"); v == "1" || v == "true" {
		f.Anomalous = true
	}
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeError(w, fmt.Errorf("bad limit %q", ls))
			return
		}
		f.Limit = n
	}
	runs := s.RunHistory(f)
	if runs == nil {
		runs = []ledger.RunSummary{}
	}
	writeJSON(w, http.StatusOK, runHistoryResponse{Runs: runs, Count: len(runs)})
}

func (s *Server) handleQueryMV(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil {
			writeError(w, fmt.Errorf("bad limit: %w", err))
			return
		}
		limit = n
	}
	name, mv := r.PathValue("name"), r.PathValue("mv")
	t, err := s.QueryMV(name, mv, limit)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toTableResponse(name, mv, t))
}

// handleEvents streams a run's obs events as NDJSON (or SSE when the
// client asks for text/event-stream): buffered events replay first, then
// the stream follows live until the run finishes or the client leaves.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run, err := s.runHandle(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	sse := r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	from := 0
	for {
		events, done, wake := run.events.next(from)
		for _, e := range events {
			if sse {
				fmt.Fprint(w, "data: ")
			}
			if err := enc.Encode(e); err != nil {
				return
			}
			if sse {
				fmt.Fprint(w, "\n")
			}
		}
		from += len(events)
		if len(events) > 0 && flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}
