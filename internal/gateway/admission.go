package gateway

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/shortcircuit-db/sc/internal/introspect"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/sched"
)

// ErrQueueFull reports that the refresh queue is at capacity; the HTTP
// layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("gateway: refresh queue full")

// ticket is one trigger awaiting admission: a predicted catalog footprint
// to reserve, the tenant slice and pipeline it belongs to, and a deadline
// after which queuing is pointless.
type ticket struct {
	tenant   string
	pipeline string
	need     int64 // predicted footprint to reserve (bytes)
	tokens   int   // scheduler tokens to commit alongside the bytes
	deadline time.Time

	mu       sync.Mutex
	canceled bool
	blocked  string // what last held this ticket at the queue head

	// start runs the admitted trigger (called outside the admitter lock);
	// expire finalizes a ticket whose deadline passed while queued.
	start  func(*ticket)
	expire func(*ticket)
}

func (t *ticket) markCanceled() {
	t.mu.Lock()
	t.canceled = true
	t.mu.Unlock()
}

func (t *ticket) isCanceled() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.canceled
}

// setBlocked records why the pump could not admit this ticket, so the
// run's queue-admission span can attribute its wait.
func (t *ticket) setBlocked(reason string) {
	t.mu.Lock()
	t.blocked = reason
	t.mu.Unlock()
}

func (t *ticket) blockedOn() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.blocked
}

// tenantBudget is one tenant's slice of the shared catalog: admission
// reserves against it exactly as against the global pool, so a noisy
// tenant queues behind its own slice instead of starving the others.
type tenantBudget struct {
	slice    int64
	reserved int64
}

// admitter is the scheduler-wide admission controller of the gateway: each
// trigger reserves its predicted footprint against the shared pool AND its
// tenant slice before the refresh is admitted; triggers that do not fit
// wait in a bounded FIFO. Admission is strictly in queue order — a blocked
// head blocks the tail, which is what makes "queues the rest in order"
// testable — and one pipeline never runs two refreshes concurrently (its
// storage objects and session dictionary cache are per-pipeline state).
type admitter struct {
	pool     *memcat.Pool
	sched    *sched.Scheduler // token budget committed alongside bytes; nil skips token gating
	maxQueue int
	now      func() time.Time

	mu      sync.Mutex
	tenants map[string]*tenantBudget
	queue   []*ticket
	busy    map[string]bool // pipelines with an admitted refresh in flight

	// counters for /metrics and Stats
	admitted int64
	enqueued int64
	rejected int64
	expired  int64
}

func newAdmitter(pool *memcat.Pool, sc *sched.Scheduler, maxQueue int, now func() time.Time) *admitter {
	if now == nil {
		now = time.Now
	}
	return &admitter{
		pool:     pool,
		sched:    sc,
		maxQueue: maxQueue,
		now:      now,
		tenants:  make(map[string]*tenantBudget),
		busy:     make(map[string]bool),
	}
}

// addTenant registers a tenant slice; the first registration wins. A
// non-positive slice defaults to the pool capacity (no per-tenant bound
// beyond the global one).
func (a *admitter) addTenant(name string, slice int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.tenants[name]; ok {
		return
	}
	if slice <= 0 || slice > a.pool.Capacity() {
		slice = a.pool.Capacity()
	}
	a.tenants[name] = &tenantBudget{slice: slice}
}

// tenantSlice reports a tenant's configured slice.
func (a *admitter) tenantSlice(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.tenants[name]; ok {
		return t.slice
	}
	return 0
}

// tenantReserved reports a tenant's currently reserved bytes.
func (a *admitter) tenantReserved(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.tenants[name]; ok {
		return t.reserved
	}
	return 0
}

// submit offers a ticket: it is either admitted immediately (start is
// invoked and submit returns true), queued (false, nil), or rejected with
// ErrQueueFull. The ticket's need must already be clamped to its tenant
// slice, so every ticket is eventually admittable.
func (a *admitter) submit(t *ticket) (bool, error) {
	a.mu.Lock()
	if _, ok := a.tenants[t.tenant]; !ok {
		a.mu.Unlock()
		return false, fmt.Errorf("gateway: unknown tenant %q", t.tenant)
	}
	if len(a.queue) >= a.maxQueue {
		a.rejected++
		a.mu.Unlock()
		return false, ErrQueueFull
	}
	a.queue = append(a.queue, t)
	a.enqueued++
	started, expired := a.pumpLocked()
	a.mu.Unlock()
	admittedNow := dispatch(t, started, expired)
	return admittedNow, nil
}

// finish releases a completed refresh's reservation — bytes and scheduler
// tokens — and admits whatever now fits, in order.
func (a *admitter) finish(tenant, pipeline string, need int64, tokens int) {
	a.mu.Lock()
	delete(a.busy, pipeline)
	if tb, ok := a.tenants[tenant]; ok {
		tb.reserved -= need
		if tb.reserved < 0 {
			tb.reserved = 0
		}
	}
	a.pool.Release(need)
	if a.sched != nil {
		a.sched.Uncommit(tokens)
	}
	started, expired := a.pumpLocked()
	a.mu.Unlock()
	dispatch(nil, started, expired)
}

// reap expires overdue queued tickets; the server calls it periodically so
// deadlines are honored even when no refresh completes.
func (a *admitter) reap() {
	a.mu.Lock()
	started, expired := a.pumpLocked()
	a.mu.Unlock()
	dispatch(nil, started, expired)
}

// queueSnapshot lists the queued tickets in admission order for the
// introspection layer, each with the reason the pump last recorded for
// not admitting it. Only the head carries a live blocking reason (strict
// FIFO: the tail waits on the head), so deeper entries report
// "queued-behind-head" unless they were once blocked at the head
// themselves.
func (a *admitter) queueSnapshot() []introspect.QueueEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]introspect.QueueEntry, 0, len(a.queue))
	for i, t := range a.queue {
		if t.isCanceled() {
			continue
		}
		qe := introspect.QueueEntry{
			Position:  i,
			Tenant:    t.tenant,
			Pipeline:  t.pipeline,
			NeedBytes: t.need,
			Tokens:    t.tokens,
			Deadline:  t.deadline,
			BlockedOn: t.blockedOn(),
		}
		if i > 0 && qe.BlockedOn == "" {
			qe.BlockedOn = "queued-behind-head"
		}
		out = append(out, qe)
	}
	return out
}

// depth returns the number of queued (not yet admitted) tickets.
func (a *admitter) depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

func (a *admitter) counters() (admitted, enqueued, rejected, expired int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitted, a.enqueued, a.rejected, a.expired
}

// pumpLocked drains the queue head-first: canceled and expired tickets are
// removed; the first live ticket is admitted if its pipeline is idle and
// both its tenant slice and the global pool can hold its reservation, else
// pumping stops (strict FIFO). It returns the tickets to start and to
// expire; callers invoke their callbacks after releasing a.mu, so a start
// callback can re-enter the admitter. Callers hold a.mu.
func (a *admitter) pumpLocked() (started, expired []*ticket) {
	now := a.now()
	for len(a.queue) > 0 {
		head := a.queue[0]
		if head.isCanceled() {
			a.queue = a.queue[1:]
			continue
		}
		if !head.deadline.IsZero() && now.After(head.deadline) {
			a.queue = a.queue[1:]
			a.expired++
			expired = append(expired, head)
			continue
		}
		if a.busy[head.pipeline] {
			head.setBlocked("pipeline-busy")
			break
		}
		tb := a.tenants[head.tenant]
		if tb == nil || tb.reserved+head.need > tb.slice {
			head.setBlocked("tenant-slice")
			break
		}
		if !a.pool.TryReserve(head.need) {
			head.setBlocked("catalog-bytes")
			break
		}
		// The run's node-pool width is soft-committed against the scheduler
		// token budget, so admission bounds planned cores exactly as it
		// bounds planned bytes. Commitments don't consume runtime tokens —
		// they cap how many runs' worth of width can be in flight at once.
		if a.sched != nil && !a.sched.TryCommit(head.tokens) {
			a.pool.Release(head.need)
			head.setBlocked("sched-tokens")
			break
		}
		tb.reserved += head.need
		a.busy[head.pipeline] = true
		a.queue = a.queue[1:]
		a.admitted++
		started = append(started, head)
	}
	return started, expired
}

// dispatch invokes the pump's verdicts outside the admitter lock and
// reports whether the submitted ticket (nil for finish/reap callers) was
// among those started.
func dispatch(submitted *ticket, started, expired []*ticket) bool {
	admittedNow := false
	for _, t := range expired {
		if t.expire != nil {
			t.expire(t)
		}
	}
	for _, t := range started {
		if t == submitted {
			admittedNow = true
		}
		if t.start != nil {
			t.start(t)
		}
	}
	return admittedNow
}

// cancelQueued marks a queued ticket canceled; it is dropped at the next
// pump. Safe to call for already-admitted tickets (no effect).
func (a *admitter) cancelQueued(t *ticket) {
	t.markCanceled()
	a.reap()
}
