package gateway

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestPromExpositionGolden pins the full /metrics exposition — family
// naming, HELP/TYPE lines, label ordering and escaping, histogram
// bucket/sum/count layout — against a golden file, so exporter-convention
// regressions show up as a diff instead of a scrape-time surprise.
func TestPromExpositionGolden(t *testing.T) {
	p := newProm()
	p.refreshes.add(1, "acme", "beer", "succeeded")
	p.refreshes.add(2, "acme", "beer", "failed")
	// Label values with quotes, backslashes and newlines must be escaped
	// per the exposition format.
	p.refreshes.add(1, `ten"ant`, "pi\\pe\nline", "succeeded")
	p.triggers.add(3, "accepted")
	p.triggers.add(1, "queue_full")
	p.decodeBytes.add(4096, "acme", "beer")
	p.encodeBytes.add(1024, "acme", "beer")
	p.materialized.add(1<<20, "acme", "beer")
	p.evictions.add(1, "acme", "beer")
	p.kernelFallbacks.add(2, "acme", "beer")
	p.addGauge("scserve_queue_depth", "Refresh triggers currently queued.", nil,
		func() []gaugeSample { return []gaugeSample{{v: 2}} })
	p.addGauge("scserve_catalog_bytes", "Shared catalog residency by tenant.", []string{"tenant"},
		func() []gaugeSample {
			return []gaugeSample{
				{lvs: []string{"zeta"}, v: 1},
				{lvs: []string{"acme"}, v: 12345},
			}
		})
	p.anomalies.add(1, "beer", "wall_regression")
	p.eventsDropped.add(5, "acme", "beer")
	p.traceSampled.add(3, "dropped")
	p.traceSampled.add(1, "kept")
	p.refreshSeconds.observe(0.2, "acme", "beer")
	p.refreshSeconds.observe(75, "acme", "beer")
	p.queueWait.observe(0.004)
	p.mvReadSeconds.observe(0.03)

	var buf bytes.Buffer
	p.write(&buf, false)

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from %s (run with -update to accept):\ngot:\n%s\nwant:\n%s",
			golden, firstDiff(buf.String(), string(want)), firstDiff(string(want), buf.String()))
	}
}

// TestPromOpenMetrics checks the negotiated OpenMetrics rendering:
// counter families drop the _total suffix in HELP/TYPE (but keep it on
// samples), exemplars attach to the bucket that counted the observation,
// and the exposition ends with # EOF.
func TestPromOpenMetrics(t *testing.T) {
	p := newProm()
	p.refreshes.add(1, "acme", "beer", "succeeded")
	p.refreshSeconds.observeExemplar(0.2, `trace_id="0af7651916cd43dd8448eb211c80319c"`, "acme", "beer")

	var buf bytes.Buffer
	p.write(&buf, true)
	out := buf.String()

	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("OpenMetrics exposition must end with # EOF, got tail %q", out[max(0, len(out)-40):])
	}
	if !strings.Contains(out, "# TYPE scserve_refreshes counter\n") {
		t.Fatalf("counter family should be named without _total in OM mode:\n%s", out)
	}
	if !strings.Contains(out, `scserve_refreshes_total{tenant="acme",pipeline="beer",status="succeeded"} 1`) {
		t.Fatalf("counter sample keeps the _total suffix:\n%s", out)
	}
	wantEx := `le="0.25"} 1 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.2`
	if !strings.Contains(out, wantEx) {
		t.Fatalf("exemplar missing from lowest counting bucket, want substring %q in:\n%s", wantEx, out)
	}
	// Classic mode must not leak exemplars.
	var classic bytes.Buffer
	p.write(&classic, false)
	if strings.Contains(classic.String(), "trace_id") {
		t.Fatal("classic exposition must not carry exemplars")
	}
}

// firstDiff returns the first line of a that differs from b, for a readable
// failure message.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i, line := range al {
		if i >= len(bl) || line != bl[i] {
			return line
		}
	}
	return "(prefix of other)"
}
