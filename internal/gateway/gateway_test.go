package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/shortcircuit-db/sc/internal/table"
)

// salesJSON is the canonical inline base table used across the HTTP tests.
func salesJSON() tableJSON {
	return tableJSON{
		Schema: []columnJSON{
			{Name: "day", Type: "int"},
			{Name: "item", Type: "str"},
			{Name: "amount", Type: "float"},
		},
		Rows: [][]any{
			{float64(1), "ale", float64(10)},
			{float64(1), "bock", float64(5)},
			{float64(2), "ale", float64(7)},
			{float64(2), "ale", float64(3)},
			{float64(3), "stout", float64(20)},
		},
	}
}

func pipelineRequest(name, tenant string) registerRequest {
	return registerRequest{
		Name:   name,
		Tenant: tenant,
		MVs: []MVSpec{
			{Name: "mv_daily", SQL: `SELECT day, SUM(amount) AS revenue FROM sales GROUP BY day`},
			{Name: "mv_top", SQL: `SELECT day, revenue FROM mv_daily WHERE revenue >= 10 ORDER BY revenue DESC`},
			{Name: "mv_count", SQL: `SELECT COUNT(*) AS days FROM mv_daily`},
		},
		Tables: map[string]tableJSON{"sales": salesJSON()},
	}
}

func newTestGateway(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.GlobalBudget == 0 {
		cfg.GlobalBudget = 1 << 20
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestGatewayEndToEnd walks the full HTTP session: register a pipeline
// with inline base tables, trigger a refresh synchronously, read the MVs
// back, replay the run's NDJSON event stream, and scrape /metrics.
func TestGatewayEndToEnd(t *testing.T) {
	s, ts := newTestGateway(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/pipelines", pipelineRequest("beer", "brewer"))
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("register: %d %s", resp.StatusCode, b)
	}
	info := decodeBody[PipelineInfo](t, resp)
	if info.Name != "beer" || info.Tenant != "brewer" || len(info.MVs) != 3 {
		t.Fatalf("info = %+v", info)
	}

	// Duplicate registration conflicts.
	resp = postJSON(t, ts.URL+"/v1/pipelines", pipelineRequest("beer", "brewer"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: %d", resp.StatusCode)
	}

	// Synchronous refresh.
	resp = postJSON(t, ts.URL+"/v1/pipelines/beer/refresh?wait=1", nil)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("refresh: %d %s", resp.StatusCode, b)
	}
	st := decodeBody[RunStatus](t, resp)
	if st.State != StateSucceeded {
		t.Fatalf("run state = %q (%s)", st.State, st.Error)
	}
	if st.Nodes != 3 {
		t.Fatalf("nodes = %d, want 3", st.Nodes)
	}

	// Status endpoint agrees.
	resp, err := http.Get(ts.URL + "/v1/runs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeBody[RunStatus](t, resp); got.State != StateSucceeded {
		t.Fatalf("status = %+v", got)
	}

	// Query an MV (limit applies).
	resp, err = http.Get(ts.URL + "/v1/pipelines/beer/mvs/mv_daily?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	tr := decodeBody[tableResponse](t, resp)
	if tr.Rows != 2 || len(tr.Columns) != 2 || tr.Columns[0] != "day" {
		t.Fatalf("mv_daily = %+v", tr)
	}
	resp, err = http.Get(ts.URL + "/v1/pipelines/beer/mvs/mv_count")
	if err != nil {
		t.Fatal(err)
	}
	tr = decodeBody[tableResponse](t, resp)
	if tr.Rows != 1 || tr.Data[0][0].(float64) != 3 {
		t.Fatalf("mv_count = %+v", tr)
	}

	// Unknown MV and pipeline are 404.
	for _, path := range []string{"/v1/pipelines/beer/mvs/nope", "/v1/pipelines/nope/mvs/mv_daily", "/v1/runs/run-999999"} {
		resp, err = http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %d, want 404", path, resp.StatusCode)
		}
	}

	// The run's event stream replays as NDJSON.
	resp, err = http.Get(ts.URL + "/v1/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type = %q", ct)
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e struct {
			Kind string `json:"kind"`
			Node string `json:"node"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		kinds[e.Kind]++
	}
	if kinds["NodeDone"] != 3 || kinds["Materialized"] != 3 {
		t.Fatalf("event kinds = %v", kinds)
	}

	// /metrics exposes the refresh.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`scserve_refreshes_total{tenant="brewer",pipeline="beer",status="succeeded"} 1`,
		`scserve_catalog_budget_bytes 1.048576e+06`,
		"# TYPE scserve_refresh_seconds histogram",
		`scserve_tenant_slice_bytes{tenant="brewer"}`,
		"scserve_queue_depth 0",
		"# TYPE scserve_mv_read_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	// /healthz reports the admission counters.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody[Stats](t, resp)
	if stats.Pipelines != 1 || stats.Admitted != 1 || stats.ReservedBytes != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.PeakReserved > s.pool.Capacity() {
		t.Fatalf("peak reserved %d over budget", stats.PeakReserved)
	}
}

// TestGatewayCancelQueuedRun triggers the same pipeline twice — the
// second queues behind the busy first — and cancels the queued one.
func TestGatewayCancelQueuedRun(t *testing.T) {
	s, ts := newTestGateway(t, Config{})
	if err := s.Register(PipelineSpec{
		Name: "p", Tenant: "t",
		MVs:    pipelineRequest("", "").MVs,
		Tables: map[string]*table.Table{"sales": mustTable(t, salesJSON())},
	}); err != nil {
		t.Fatal(err)
	}

	// Hold the pipeline busy: trigger programmatically, then trigger again
	// over HTTP and cancel the queued run. To dodge the race where the
	// first run finishes before the second trigger, retry until we catch a
	// queued state.
	for attempt := 0; attempt < 20; attempt++ {
		r1, err := s.Trigger("p")
		if err != nil {
			t.Fatal(err)
		}
		resp := postJSON(t, ts.URL+"/v1/pipelines/p/refresh", nil)
		if resp.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("trigger: %d %s", resp.StatusCode, b)
		}
		st := decodeBody[RunStatus](t, resp)
		<-r1.done
		if st.State != StateQueued {
			// The first run won the race; drain and retry.
			r2, err := s.runHandle(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			<-r2.done
			continue
		}
		resp = postJSON(t, ts.URL+"/v1/runs/"+st.ID+"/cancel", nil)
		got := decodeBody[RunStatus](t, resp)
		if got.State != StateCanceled && got.State != StateSucceeded {
			t.Fatalf("cancel state = %q", got.State)
		}
		if got.State == StateCanceled {
			if s.pool.Reserved() != 0 {
				// r1 finished already; its reservation must be gone, and the
				// canceled run never took one.
				t.Fatalf("reserved = %d after cancel", s.pool.Reserved())
			}
			return
		}
	}
	t.Skip("could not catch a queued run in 20 attempts (machine too fast/slow)")
}

// TestGatewayWaitDisconnectCancels verifies the wait-mode contract: a
// client that goes away cancels its refresh, and the cancellation releases
// every reserved byte.
func TestGatewayWaitDisconnectCancels(t *testing.T) {
	s, ts := newTestGateway(t, Config{})
	if err := s.Register(PipelineSpec{
		Name: "p", Tenant: "t",
		MVs:    pipelineRequest("", "").MVs,
		Tables: map[string]*table.Table{"sales": mustTable(t, salesJSON())},
	}); err != nil {
		t.Fatal(err)
	}
	// A request context canceled mid-wait triggers CancelRun; simulate via
	// a client timeout far shorter than... the refresh is fast, so instead
	// drive the handler contract directly: trigger, then cancel.
	r, err := s.Trigger("p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CancelRun(r.id); err != nil {
		t.Fatal(err)
	}
	<-r.done
	st, err := s.Run(r.id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled && st.State != StateSucceeded {
		t.Fatalf("state = %q", st.State)
	}
	if got := s.pool.Reserved(); got != 0 {
		t.Fatalf("reserved = %d after terminal run", got)
	}
	if got := s.pool.Used(); got != 0 {
		t.Fatalf("used = %d after terminal run", got)
	}
	_ = ts
}

// TestGatewayCronFires registers a pipeline with a short interval and
// waits for the scheduler to refresh it without any explicit trigger.
func TestGatewayCronFires(t *testing.T) {
	s, _ := newTestGateway(t, Config{})
	if err := s.Register(PipelineSpec{
		Name: "cron", Tenant: "t",
		Every:  50 * time.Millisecond,
		MVs:    pipelineRequest("", "").MVs,
		Tables: map[string]*table.Table{"sales": mustTable(t, salesJSON())},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		info, err := s.Pipeline("cron")
		if err != nil {
			t.Fatal(err)
		}
		if info.Runs > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("cron never fired")
}

// TestGatewayEncodedPipeline exercises the compressed path end to end:
// encoding + vectorized registration, two refreshes (the second replans
// from observed metadata), and MV reads that decode chunked storage.
func TestGatewayEncodedPipeline(t *testing.T) {
	s, _ := newTestGateway(t, Config{})
	if err := s.Register(PipelineSpec{
		Name: "enc", Tenant: "t",
		Encoding: true, Vectorized: true,
		MVs:    pipelineRequest("", "").MVs,
		Tables: map[string]*table.Table{"sales": mustTable(t, salesJSON())},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r, err := s.Trigger("enc")
		if err != nil {
			t.Fatal(err)
		}
		<-r.done
		st, _ := s.Run(r.id)
		if st.State != StateSucceeded {
			t.Fatalf("refresh %d: %q (%s)", i, st.State, st.Error)
		}
	}
	got, err := s.QueryMV("enc", "mv_daily", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("mv_daily rows = %d", got.NumRows())
	}
	if used := s.pool.Used(); used != 0 {
		t.Fatalf("pool used = %d after refreshes", used)
	}
}

// TestGatewaySeedTPCDS registers the TPC-DS-backed real workload pipeline
// the CI smoke job uses and refreshes it once.
func TestGatewaySeedTPCDS(t *testing.T) {
	if testing.Short() {
		t.Skip("tpc-ds seed in -short")
	}
	s, _ := newTestGateway(t, Config{GlobalBudget: 8 << 20})
	if err := s.Register(TPCDSSpec("dw", "analytics", 0.1)); err != nil {
		t.Fatal(err)
	}
	r, err := s.Trigger("dw")
	if err != nil {
		t.Fatal(err)
	}
	<-r.done
	st, _ := s.Run(r.id)
	if st.State != StateSucceeded {
		t.Fatalf("tpcds refresh: %q (%s)", st.State, st.Error)
	}
	got, err := s.QueryMV("dw", "top_items", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() == 0 {
		t.Fatal("top_items empty")
	}
}

func mustTable(t *testing.T, tj tableJSON) *table.Table {
	t.Helper()
	tab, err := tj.toTable()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestTableJSONRoundTrip covers the inline-table codec's error paths.
func TestTableJSONRoundTrip(t *testing.T) {
	tab := mustTable(t, salesJSON())
	if tab.NumRows() != 5 || tab.Schema.NumCols() != 3 {
		t.Fatalf("table = %d rows %d cols", tab.NumRows(), tab.Schema.NumCols())
	}
	bad := []tableJSON{
		{Schema: []columnJSON{{Name: "x", Type: "blob"}}},
		{Schema: []columnJSON{{Name: "x", Type: "int"}}, Rows: [][]any{{"nope"}}},
		{Schema: []columnJSON{{Name: "x", Type: "int"}}, Rows: [][]any{{float64(1), float64(2)}}},
		{Schema: []columnJSON{{Name: "x", Type: "str"}}, Rows: [][]any{{float64(1)}}},
	}
	for i, tj := range bad {
		if _, err := tj.toTable(); err == nil {
			t.Fatalf("bad table %d accepted", i)
		}
	}
}

// TestPromExposition unit-checks the hand-rolled text format.
func TestPromExposition(t *testing.T) {
	p := newProm()
	p.refreshes.add(1, "t1", `p"quote`, "succeeded")
	p.refreshes.add(2, "t1", `p"quote`, "succeeded")
	p.queueWait.observe(0.004)
	p.queueWait.observe(2)
	p.addGauge("scserve_queue_depth", "Queued.", nil, func() []gaugeSample {
		return []gaugeSample{{v: 7}}
	})
	var b bytes.Buffer
	p.write(&b, false)
	text := b.String()
	for _, want := range []string{
		`scserve_refreshes_total{tenant="t1",pipeline="p\"quote",status="succeeded"} 3`,
		"# TYPE scserve_refreshes_total counter",
		`scserve_queue_wait_seconds_bucket{le="0.005"} 1`,
		`scserve_queue_wait_seconds_bucket{le="+Inf"} 2`,
		"scserve_queue_wait_seconds_count 2",
		"scserve_queue_depth 7",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "\x1f") {
		t.Fatal("label-key separator leaked into exposition")
	}
}

// TestServerRejectsBadConfigAndSpecs covers validation paths.
func TestServerRejectsBadConfigAndSpecs(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Fatal("zero budget accepted")
	}
	s, _ := newTestGateway(t, Config{})
	if err := s.Register(PipelineSpec{Name: "", MVs: []MVSpec{{Name: "a", SQL: "SELECT x FROM t"}}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.Register(PipelineSpec{Name: "p"}); err == nil {
		t.Fatal("no MVs accepted")
	}
	if err := s.Register(PipelineSpec{Name: "p", MVs: []MVSpec{
		{Name: "a", SQL: "SELECT x FROM b"},
		{Name: "b", SQL: "SELECT x FROM a"},
	}}); err == nil {
		t.Fatal("cyclic workload accepted")
	}
	if err := s.Unregister("ghost"); err == nil {
		t.Fatal("unregister of unknown pipeline accepted")
	}
	if _, err := s.Trigger("ghost"); err == nil {
		t.Fatal("trigger of unknown pipeline accepted")
	}
	if _, err := s.CancelRun("run-000000"); err == nil {
		t.Fatal("cancel of unknown run accepted")
	}
}

// TestRegisterWorkloadShortcut registers via the HTTP "workload" shortcut
// instead of spelling out the MV list.
func TestRegisterWorkloadShortcut(t *testing.T) {
	s, ts := newTestGateway(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/pipelines", map[string]any{"name": "w", "workload": "tpcds-real"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("workload register: code %d", resp.StatusCode)
	}
	info, err := s.Pipeline("w")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(TPCDSSpec("", "", 0).MVs); len(info.MVs) != want {
		t.Fatalf("workload shortcut built %d MVs, want %d", len(info.MVs), want)
	}

	resp = postJSON(t, ts.URL+"/v1/pipelines", map[string]any{"name": "x", "workload": "nope"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown workload: code %d", resp.StatusCode)
	}
}
