package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/shortcircuit-db/sc/internal/table"
	"github.com/shortcircuit-db/sc/internal/telemetry"
)

// TestGatewayTraceEndToEnd drives a traced refresh over HTTP: the trigger
// carries a client traceparent, the run's spans join that trace, and
// GET /v1/runs/{id}/trace serves the assembled spans with critical-path
// analysis.
func TestGatewayTraceEndToEnd(t *testing.T) {
	var exported bytes.Buffer
	exp := telemetry.NewWriterExporter(&exported, "sc-test")
	_, ts := newTestGateway(t, Config{TraceExporter: exp})

	resp := postJSON(t, ts.URL+"/v1/pipelines", pipelineRequest("beer", "brewer"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}

	client := telemetry.SpanContext{TraceID: telemetry.NewTraceID(), SpanID: telemetry.NewSpanID(), Sampled: true}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/pipelines/beer/refresh?wait=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", client.Traceparent())
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// The response echoes the run's own traceparent, inside the client's
	// trace.
	tp, ok := telemetry.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q", resp.Header.Get("traceparent"))
	}
	if tp.TraceID != client.TraceID {
		t.Fatalf("run trace %s did not join client trace %s", tp.TraceID, client.TraceID)
	}
	st := decodeBody[RunStatus](t, resp)
	if st.State != StateSucceeded {
		t.Fatalf("run state = %q (%s)", st.State, st.Error)
	}

	resp, err = http.Get(ts.URL + "/v1/runs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	rep := decodeBody[TraceReport](t, resp)
	if rep.RunID != st.ID || !rep.Complete || rep.State != StateSucceeded {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.TraceID != client.TraceID.String() {
		t.Fatalf("trace ID %s, want client's %s", rep.TraceID, client.TraceID)
	}

	// One root span, one admission span, one span per executed node.
	root := rep.Spans[0]
	if root.ParentSpanID != client.SpanID.String() {
		t.Fatalf("root parent %q, want client span %s", root.ParentSpanID, client.SpanID)
	}
	if root.Attrs["sc.run_id"] != st.ID || root.Attrs["sc.pipeline"] != "beer" || root.Attrs["sc.state"] != StateSucceeded {
		t.Fatalf("root attrs: %v", root.Attrs)
	}
	// Profiling deltas are stamped on the root.
	for _, key := range []string{"runtime.heap_alloc_bytes", "runtime.goroutine_peak", "runtime.gc_pause_seconds"} {
		if _, ok := root.Attrs[key]; !ok {
			t.Fatalf("root missing profile attr %q: %v", key, root.Attrs)
		}
	}
	nodes := map[string]telemetry.SpanJSON{}
	admission := false
	for _, sp := range rep.Spans[1:] {
		if sp.ParentSpanID != root.SpanID {
			t.Fatalf("span %q parent %q, want root %q", sp.Name, sp.ParentSpanID, root.SpanID)
		}
		if n, ok := sp.Attrs["sc.node"].(string); ok {
			nodes[n] = sp
		} else if sp.Name == "queue admission" {
			admission = true
		}
	}
	if !admission {
		t.Fatal("queue admission span missing")
	}
	for _, mv := range []string{"mv_daily", "mv_top", "mv_count"} {
		if _, ok := nodes[mv]; !ok {
			t.Fatalf("no span for node %q (have %v)", mv, nodes)
		}
	}

	// Critical path: mv_daily feeds both others, so every chain starts
	// there; accounting telescopes to the last node's end offset.
	cp := rep.CriticalPath
	if len(cp.Chain) < 2 || cp.Chain[0] != "mv_daily" {
		t.Fatalf("chain %v", cp.Chain)
	}
	if cp.WallSeconds <= 0 || cp.ChainSeconds <= 0 || cp.Coverage <= 0 || cp.Coverage > 1.0001 {
		t.Fatalf("accounting: wall %v chain %v coverage %v", cp.WallSeconds, cp.ChainSeconds, cp.Coverage)
	}
	if len(cp.Nodes) != 3 {
		t.Fatalf("%d crit nodes", len(cp.Nodes))
	}

	// The exporter received the finished trace as one OTLP JSON line.
	line := strings.TrimSpace(exported.String())
	if strings.Contains(line, "\n") {
		t.Fatalf("expected one exported trace, got: %q", line)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("exported line not OTLP JSON: %v", err)
	}
	if !strings.Contains(line, `"`+st.ID+`"`) {
		t.Fatal("exported payload missing run ID attr")
	}
}

func TestGatewayTraceDisabled(t *testing.T) {
	_, ts := newTestGateway(t, Config{DisableTracing: true})
	resp := postJSON(t, ts.URL+"/v1/pipelines", pipelineRequest("beer", "brewer"))
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/pipelines/beer/refresh?wait=1", nil)
	if h := resp.Header.Get("traceparent"); h != "" {
		t.Fatalf("traceparent %q with tracing disabled", h)
	}
	st := decodeBody[RunStatus](t, resp)
	if st.State != StateSucceeded {
		t.Fatalf("state %q", st.State)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/trace with tracing disabled: %d, want 404", resp.StatusCode)
	}
}

// TestGatewayTraceTerminalWithoutRun checks a trigger that never executes
// (canceled while queued) still finishes its trace: root span closed with
// the terminal state, no node spans, trace exported.
func TestGatewayTraceTerminalWithoutRun(t *testing.T) {
	var exported bytes.Buffer
	s, _ := newTestGateway(t, Config{TraceExporter: telemetry.NewWriterExporter(&exported, "")})
	if err := s.Register(PipelineSpec{
		Name: "p", Tenant: "t",
		MVs:    pipelineRequest("", "").MVs,
		Tables: map[string]*table.Table{"sales": mustTable(t, salesJSON())},
	}); err != nil {
		t.Fatal(err)
	}
	r, err := s.Trigger("p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CancelRun(r.id); err != nil {
		t.Fatal(err)
	}
	<-r.done
	rep, err := s.RunTrace(r.id)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("trace not finished after terminal state: %+v", rep)
	}
	st, _ := s.Run(r.id)
	if rep.State != st.State {
		t.Fatalf("trace state %q, run state %q", rep.State, st.State)
	}
	if rep.Spans[0].Attrs["sc.state"] != st.State {
		t.Fatalf("root sc.state attr: %v", rep.Spans[0].Attrs)
	}
	if exported.Len() == 0 {
		t.Fatal("terminal run's trace was not exported")
	}
}
