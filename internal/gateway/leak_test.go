package gateway

import (
	"net/http/httptest"
	"testing"
	"time"

	"github.com/shortcircuit-db/sc/internal/leakcheck"
)

// TestServerCloseNoGoroutineLeak shuts the gateway down with work in
// every state — a finished run, a running refresh, and a queued ticket —
// and asserts Close reaps all of it: the scheduler loop, the async run
// goroutines, and the admission queue waiters all exit.
func TestServerCloseNoGoroutineLeak(t *testing.T) {
	defer leakcheck.Check(t)

	cfg := Config{
		GlobalBudget: 1 << 20,
		LedgerPath:   t.TempDir() + "/ledger.ndjson",
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// One completed synchronous run.
	resp := postJSON(t, ts.URL+"/v1/pipelines", pipelineRequest("leak_done", "acme"))
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/pipelines/leak_done/refresh?wait=1", nil)
	resp.Body.Close()

	// One async run: likely still in flight when Close fires.
	resp = postJSON(t, ts.URL+"/v1/pipelines/leak_done/refresh", nil)
	resp.Body.Close()

	ts.Close()
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Server.Close did not return within 30s")
	}
	// leakcheck runs in the deferred Check: anything the gateway spawned
	// and failed to reap is reported with its stack.
}

// TestServerDoubleCloseNoGoroutineLeak pins that Close is idempotent and
// still leaves nothing behind when called twice.
func TestServerDoubleCloseNoGoroutineLeak(t *testing.T) {
	defer leakcheck.Check(t)

	s, err := NewServer(Config{GlobalBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
}
