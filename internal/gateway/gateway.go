// Package gateway is the multi-tenant refresh gateway: a server hosting
// many named MV pipelines over ONE shared Memory Catalog budget. Each
// registered pipeline keeps its own metrics store, session dictionary
// cache and storage namespace; every refresh trigger is re-planned from
// the pipeline's observed execution metadata, its predicted peak catalog
// footprint is reserved against the tenant's slice and the global pool by
// the admission controller, and only then does the refresh run. Triggers
// that do not fit queue in a bounded FIFO with a deadline; cancellation —
// explicit or by client disconnect — releases reservations and evicts
// partial state, so the shared budget can never leak.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/shortcircuit-db/sc/internal/chunkio"
	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/exec"
	"github.com/shortcircuit-db/sc/internal/introspect"
	"github.com/shortcircuit-db/sc/internal/introspect/alert"
	"github.com/shortcircuit-db/sc/internal/ledger"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/metrics"
	"github.com/shortcircuit-db/sc/internal/obs"
	"github.com/shortcircuit-db/sc/internal/opt"
	"github.com/shortcircuit-db/sc/internal/sched"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/table"
	"github.com/shortcircuit-db/sc/internal/telemetry"
	"github.com/shortcircuit-db/sc/internal/tpcds"
)

// Errors the HTTP layer maps to status codes.
var (
	ErrNotFound      = errors.New("gateway: not found")
	ErrAlreadyExists = errors.New("gateway: pipeline already exists")
)

// Config configures a Server. The zero value of every field but
// GlobalBudget has a sensible default.
type Config struct {
	// GlobalBudget is the shared Memory Catalog capacity in bytes across
	// all tenants; required.
	GlobalBudget int64
	// DefaultSlice bounds a tenant's share of the budget when its
	// registration does not say; 0 means the whole budget.
	DefaultSlice int64
	// QueueLimit bounds the refresh trigger queue; beyond it triggers are
	// rejected with ErrQueueFull (HTTP 429). Default 64.
	QueueLimit int
	// QueueTimeout is how long a queued trigger may wait for admission
	// before it expires. Default 30s.
	QueueTimeout time.Duration
	// Headroom multiplies the predicted peak footprint when sizing a
	// reservation, absorbing estimation error. Default 1.25, min 1.
	Headroom float64
	// SizeGuess is the per-node output-size assumption before any
	// observation. Default 1MB.
	SizeGuess int64
	// Concurrency is each run's scheduler-token budget — up to this many
	// DAG nodes of one refresh execute at a time. Default 2.
	Concurrency int
	// SchedTokens is the server-wide scheduler token budget (one token ≈
	// one core) that every run's node pool and — with ParallelScan —
	// intra-node chunk walks draw from. Admission soft-commits each run's
	// Concurrency against it, so the planned width across all tenants
	// never exceeds the machine's budget. Default 4×Concurrency.
	SchedTokens int
	// ParallelScan lets the compressed-execution kernels split a node's
	// chunk walk across idle scheduler tokens; outputs stay byte-identical
	// to the serial walk. Off by default.
	ParallelScan bool
	// NewStore creates a pipeline's storage backend; default is an
	// in-memory store per pipeline.
	NewStore func(pipeline string) storage.Store
	// Clock injects time for tests; default time.Now.
	Clock func() time.Time
	// DisableTracing turns off per-run trace collection. By default every
	// refresh assembles a trace — a root span covering enqueue to finish, a
	// queue-admission child span, and one span per executed node — served
	// at GET /v1/runs/{id}/trace with critical-path analysis.
	DisableTracing bool
	// TraceExporter receives each finished run's spans (OTLP or file
	// exporter from internal/telemetry). Nil exports nothing; traces are
	// still collected and served over HTTP unless DisableTracing is set.
	TraceExporter telemetry.Exporter
	// TailSample keeps exported traces only for runs worth keeping —
	// anomalous, slow against the pipeline's learned baseline, or not
	// succeeded — and drops the rest. Off by default (every trace exports).
	TailSample bool
	// LedgerPath persists per-run summaries as NDJSON and replays them on
	// startup, so baselines survive restarts. "" keeps the run ledger in
	// memory only.
	LedgerPath string
	// LedgerCapacity bounds the in-memory run-history ring. Default 512.
	LedgerCapacity int
	// SLOSeconds is the refresh-latency objective /v1/pipelines/{p}/health
	// reports attainment against. Default 60.
	SLOSeconds float64
	// AlertWebhook, when set, pushes ledger anomalies and health-verdict
	// transitions to this URL as JSON POSTs instead of waiting to be
	// scraped: bounded queue, exponential-backoff retry, per-(pipeline,
	// kind) dedup. "" disables alerting.
	AlertWebhook string
	// AlertCooldown is the dedup window per (pipeline, kind). Default 5m.
	AlertCooldown time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.GlobalBudget <= 0 {
		return c, errors.New("gateway: GlobalBudget must be positive")
	}
	if c.DefaultSlice <= 0 || c.DefaultSlice > c.GlobalBudget {
		c.DefaultSlice = c.GlobalBudget
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 30 * time.Second
	}
	if c.Headroom < 1 {
		c.Headroom = 1.25
	}
	if c.SizeGuess <= 0 {
		c.SizeGuess = 1 << 20
	}
	if c.Concurrency < 1 {
		c.Concurrency = 2
	}
	if c.SchedTokens < 1 {
		c.SchedTokens = 4 * c.Concurrency
	}
	if c.SchedTokens < c.Concurrency {
		c.SchedTokens = c.Concurrency
	}
	if c.NewStore == nil {
		c.NewStore = func(string) storage.Store { return storage.NewMemStore() }
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.LedgerCapacity <= 0 {
		c.LedgerCapacity = 512
	}
	if c.SLOSeconds <= 0 {
		c.SLOSeconds = 60
	}
	return c, nil
}

// MVSpec declares one MV of a pipeline registration.
type MVSpec struct {
	Name string `json:"name"`
	SQL  string `json:"sql"`
}

// PipelineSpec registers a pipeline.
type PipelineSpec struct {
	Name        string
	Tenant      string        // defaults to "default"
	TenantSlice int64         // tenant budget slice; first registration wins
	MVs         []MVSpec      // the refresh DAG, dependencies implied by table names
	Every       time.Duration // cron interval; 0 = manual triggers only
	Encoding    bool          // compressed catalog entries and chunked storage
	Vectorized  bool          // compressed-execution kernels

	// SeedTPCDS seeds the pipeline's store with the TPC-DS-like dataset at
	// this scale factor (0 = none).
	SeedTPCDS float64
	// Tables seeds explicit base tables.
	Tables map[string]*table.Table
}

// TPCDSSpec builds a registration for the repo's TPC-DS-like real
// workload (the 12-node store_sales pipeline), seeded at the given scale
// factor with the compressed path enabled — what the CI smoke job and the
// gateway bench register.
func TPCDSSpec(name, tenant string, sf float64) PipelineSpec {
	w := tpcds.RealWorkload()
	spec := PipelineSpec{
		Name: name, Tenant: tenant,
		SeedTPCDS: sf,
		Encoding:  true, Vectorized: true,
	}
	for _, n := range w.Nodes {
		spec.MVs = append(spec.MVs, MVSpec{Name: n.Name, SQL: n.SQL})
	}
	return spec
}

// pipeline is one registered refresh DAG with its per-pipeline state.
type pipeline struct {
	name       string
	tenant     string
	workload   *exec.Workload
	graph      *dag.Graph
	parents    map[string][]string // node name -> DAG parent names (critical path)
	store      storage.Store
	md         *metrics.Store
	session    *chunkio.Session
	encOpts    *encoding.Options
	vectorized bool
	every      time.Duration
	created    time.Time

	mu        sync.Mutex
	nextFire  time.Time
	lastRunID string
	runsTotal int64
}

// Run states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateSucceeded = "succeeded"
	StateFailed    = "failed"
	StateCanceled  = "canceled"
	StateExpired   = "expired"
)

// Run is one refresh trigger through its lifecycle: queued by admission,
// running, then terminal. Wait on Done and read Status.
type Run struct {
	id       string
	pipeline string
	tenant   string
	need     int64 // reserved catalog bytes
	tokens   int   // scheduler tokens committed at admission

	// admission predictions, for the trace and status surfaces
	predictedWall float64 // ledger-learned wall seconds, 0 without history
	learnedNeed   bool    // need came from observed peaks, not the planner

	events  *eventBuf
	done    chan struct{} // closed on any terminal state
	tkt     *ticket
	trace   *telemetry.Collector // nil when tracing is disabled
	parents map[string][]string  // pipeline DAG shape, for critical-path analysis

	mu         sync.Mutex
	state      string
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time
	cancelRun  context.CancelFunc // set while running
	cat        *memcat.Catalog    // live catalog while running
	errMsg     string
	nodes      int
	flagged    int
	fallbacks  int
	leftover   int64 // bytes the detach sweep had to credit back
	actualPeak int64 // run catalog high-water mark, vs the reservation
}

// RunStatus is a run's externally visible snapshot.
type RunStatus struct {
	ID               string    `json:"id"`
	Pipeline         string    `json:"pipeline"`
	Tenant           string    `json:"tenant"`
	State            string    `json:"state"`
	ReservedBytes    int64     `json:"reserved_bytes"`
	ReservedTokens   int       `json:"reserved_tokens,omitempty"`
	LearnedReserve   bool      `json:"learned_reserve,omitempty"`
	PredictedSeconds float64   `json:"predicted_seconds,omitempty"`
	ActualPeakBytes  int64     `json:"actual_peak_bytes,omitempty"`
	EnqueuedAt       time.Time `json:"enqueued_at"`
	StartedAt        time.Time `json:"started_at,omitzero"`
	FinishedAt       time.Time `json:"finished_at,omitzero"`
	QueueWaitSeconds float64   `json:"queue_wait_seconds,omitempty"`
	ElapsedSeconds   float64   `json:"elapsed_seconds,omitempty"`
	Nodes            int       `json:"nodes,omitempty"`
	Flagged          int       `json:"flagged,omitempty"`
	FallbackWrites   int       `json:"fallback_writes,omitempty"`
	Error            string    `json:"error,omitempty"`
	EventsDropped    int64     `json:"events_dropped,omitempty"`
}

// ID returns the run's identifier.
func (r *Run) ID() string { return r.id }

// Done is closed when the run reaches a terminal state.
func (r *Run) Done() <-chan struct{} { return r.done }

// Traceparent returns the run's root span as a W3C traceparent value, or
// "" when tracing is disabled.
func (r *Run) Traceparent() string {
	if r.trace == nil {
		return ""
	}
	return r.trace.Context().Traceparent()
}

// Status snapshots the run.
func (r *Run) Status() RunStatus { return r.status() }

func (r *Run) status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunStatus{
		ID: r.id, Pipeline: r.pipeline, Tenant: r.tenant, State: r.state,
		ReservedBytes: r.need, ReservedTokens: r.tokens,
		LearnedReserve: r.learnedNeed, PredictedSeconds: r.predictedWall,
		ActualPeakBytes: r.actualPeak, EnqueuedAt: r.enqueuedAt,
		StartedAt: r.startedAt, FinishedAt: r.finishedAt,
		Nodes: r.nodes, Flagged: r.flagged, FallbackWrites: r.fallbacks,
		Error: r.errMsg, EventsDropped: r.events.droppedCount(),
	}
	if !r.startedAt.IsZero() {
		st.QueueWaitSeconds = r.startedAt.Sub(r.enqueuedAt).Seconds()
	}
	if !r.finishedAt.IsZero() {
		st.ElapsedSeconds = r.finishedAt.Sub(r.enqueuedAt).Seconds()
	}
	return st
}

// Stats is the server-wide snapshot backing /healthz and the bench report.
type Stats struct {
	Pipelines     int   `json:"pipelines"`
	QueueDepth    int   `json:"queue_depth"`
	Admitted      int64 `json:"admitted"`
	Enqueued      int64 `json:"enqueued"`
	Rejected      int64 `json:"rejected"`
	Expired       int64 `json:"expired"`
	BudgetBytes   int64 `json:"budget_bytes"`
	ReservedBytes int64 `json:"reserved_bytes"`
	UsedBytes     int64 `json:"used_bytes"`
	PeakUsedBytes int64 `json:"peak_used_bytes"`
	PeakReserved  int64 `json:"peak_reserved_bytes"`
	// Scheduler token budget: total pool size, tokens idle right now,
	// tokens soft-committed by admitted runs, and lifetime chunk-parallel
	// borrows by the kernels.
	SchedTokens    int   `json:"sched_tokens"`
	SchedIdle      int   `json:"sched_tokens_idle"`
	SchedCommitted int   `json:"sched_tokens_committed"`
	SchedBorrows   int64 `json:"sched_borrows"`
}

// Server hosts the pipelines and schedules their refreshes against the
// shared budget.
type Server struct {
	cfg    Config
	pool   *memcat.Pool
	sched  *sched.Scheduler
	adm    *admitter
	prom   *prom
	device costmodel.DeviceProfile
	led    *ledger.Ledger
	alerts *alert.Notifier // nil without AlertWebhook

	// lastVerdict tracks each pipeline's health verdict so notifyRun can
	// alert on transitions, not states. Own mutex: read on the run finish
	// path, which must not contend with s.mu.
	verMu       sync.Mutex
	lastVerdict map[string]string

	// evlog is the server-wide eviction timeline, harvested from run
	// catalogs as they detach (bounded at serverEvLogCap, oldest dropped).
	evMu   sync.Mutex
	evlog  []introspect.EvictionEvent
	evSeen int64

	mu        sync.Mutex
	pipelines map[string]*pipeline
	runs      map[string]*Run
	runSeq    int64

	// lastNodeSpans remembers, per pipeline, each node's span from the most
	// recent finished trace, so a later run that reuses cached state (a
	// session dictionary, a surviving catalog entry) can link back to the
	// producing span. Guarded by its own mutex: the resolver runs inside
	// collector callbacks and must not contend with s.mu.
	linkMu        sync.Mutex
	lastNodeSpans map[string]map[string]telemetry.SpanContext

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
	runWG    sync.WaitGroup
}

// NewServer validates the config and starts the scheduler loop (cron fires
// and queue-deadline reaping). Close releases it.
func NewServer(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	led, err := ledger.New(ledger.Config{
		Capacity: cfg.LedgerCapacity,
		Path:     cfg.LedgerPath,
		Detector: ledger.DetectorConfig{SlowSeconds: cfg.SLOSeconds},
	})
	if err != nil {
		return nil, err
	}
	pool := memcat.NewPool(cfg.GlobalBudget)
	// One scheduler-wide token budget for every run's node pool and
	// chunk-parallel scans; its byte ceiling (in-flight decoded partition
	// bytes) rides the same global budget the catalog pool enforces.
	tok := sched.New(cfg.SchedTokens, cfg.GlobalBudget)
	s := &Server{
		cfg:           cfg,
		pool:          pool,
		sched:         tok,
		adm:           newAdmitter(pool, tok, cfg.QueueLimit, cfg.Clock),
		prom:          newProm(),
		device:        costmodel.PaperProfile(),
		led:           led,
		pipelines:     make(map[string]*pipeline),
		runs:          make(map[string]*Run),
		lastNodeSpans: make(map[string]map[string]telemetry.SpanContext),
		lastVerdict:   make(map[string]string),
		stopCh:        make(chan struct{}),
	}
	if cfg.AlertWebhook != "" {
		s.alerts = alert.New(alert.Config{
			URL:      cfg.AlertWebhook,
			Cooldown: cfg.AlertCooldown,
			Now:      cfg.Clock,
		})
	}
	s.registerGauges()
	s.wg.Add(1)
	go s.schedulerLoop()
	return s, nil
}

// Close stops the scheduler, cancels running refreshes and waits for them.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.wg.Wait()
	s.mu.Lock()
	for _, r := range s.runs {
		r.mu.Lock()
		if r.state == StateRunning && r.cancelRun != nil {
			r.cancelRun()
		}
		tkt := r.tkt
		r.mu.Unlock()
		if tkt != nil {
			s.cancelIfQueued(r, tkt)
		}
	}
	s.mu.Unlock()
	s.runWG.Wait()
	if s.alerts != nil {
		s.alerts.Close() // after runWG: every finish path has notified
	}
	_ = s.led.Close()
}

// schedulerLoop reaps queue deadlines and fires cron triggers.
func (s *Server) schedulerLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			s.adm.reap()
			s.fireCron()
		}
	}
}

// fireCron triggers every pipeline whose interval elapsed.
func (s *Server) fireCron() {
	now := s.cfg.Clock()
	var due []string
	s.mu.Lock()
	for name, p := range s.pipelines {
		p.mu.Lock()
		if p.every > 0 && !p.nextFire.After(now) {
			p.nextFire = now.Add(p.every)
			due = append(due, name)
		}
		p.mu.Unlock()
	}
	s.mu.Unlock()
	for _, name := range due {
		// Cron fires best-effort: a full queue drops the tick, the next one
		// tries again.
		_, _ = s.Trigger(name)
	}
}

// Register adds a pipeline. The spec's base tables are written to the
// pipeline's store before the first trigger can run.
func (s *Server) Register(spec PipelineSpec) error {
	if spec.Name == "" {
		return errors.New("gateway: pipeline name required")
	}
	if len(spec.MVs) == 0 {
		return errors.New("gateway: pipeline needs at least one MV")
	}
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	w := &exec.Workload{}
	for _, mv := range spec.MVs {
		w.Nodes = append(w.Nodes, exec.NodeSpec{Name: mv.Name, SQL: mv.SQL})
	}
	g, _, err := w.BuildGraph()
	if err != nil {
		return err
	}
	parents := make(map[string][]string, len(w.Nodes))
	for i, n := range w.Nodes {
		for _, par := range g.Parents(dag.NodeID(i)) {
			parents[n.Name] = append(parents[n.Name], w.Nodes[par].Name)
		}
	}
	p := &pipeline{
		name:       spec.Name,
		tenant:     spec.Tenant,
		workload:   w,
		graph:      g,
		parents:    parents,
		store:      s.cfg.NewStore(spec.Name),
		md:         metrics.NewStore(),
		vectorized: spec.Vectorized,
		every:      spec.Every,
		created:    s.cfg.Clock(),
	}
	if spec.Encoding {
		p.encOpts = &encoding.Options{}
	}
	if spec.Vectorized {
		p.session = chunkio.NewSession()
	}
	if p.every > 0 {
		p.nextFire = p.created.Add(p.every)
	}
	if err := s.seed(p, spec); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.pipelines[spec.Name]; dup {
		return fmt.Errorf("%w: %q", ErrAlreadyExists, spec.Name)
	}
	s.pipelines[spec.Name] = p
	slice := spec.TenantSlice
	if slice <= 0 {
		slice = s.cfg.DefaultSlice
	}
	s.adm.addTenant(spec.Tenant, slice)
	return nil
}

// seed writes the spec's base tables into the pipeline's store, chunked
// when the pipeline runs with encoding so the kernels can engage.
func (s *Server) seed(p *pipeline, spec PipelineSpec) error {
	save := func(st storage.Store, name string, t *table.Table) error {
		if p.encOpts != nil {
			return exec.SaveTableChunked(st, name, t, *p.encOpts)
		}
		return exec.SaveTable(st, name, t)
	}
	if spec.SeedTPCDS > 0 {
		ds, err := tpcds.Generate(tpcds.GenConfig{ScaleFactor: spec.SeedTPCDS, Seed: 1})
		if err != nil {
			return err
		}
		if err := ds.Save(p.store, save); err != nil {
			return err
		}
	}
	for name, t := range spec.Tables {
		if err := save(p.store, name, t); err != nil {
			return err
		}
	}
	return nil
}

// Unregister removes a pipeline. In-flight runs keep their store and
// finish normally.
func (s *Server) Unregister(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pipelines[name]; !ok {
		return fmt.Errorf("%w: pipeline %q", ErrNotFound, name)
	}
	delete(s.pipelines, name)
	return nil
}

// PipelineInfo is a pipeline's externally visible snapshot.
type PipelineInfo struct {
	Name         string   `json:"name"`
	Tenant       string   `json:"tenant"`
	MVs          []string `json:"mvs"`
	EverySeconds float64  `json:"every_seconds,omitempty"`
	Encoding     bool     `json:"encoding"`
	Vectorized   bool     `json:"vectorized"`
	Runs         int64    `json:"runs"`
	LastRunID    string   `json:"last_run_id,omitempty"`
	SliceBytes   int64    `json:"tenant_slice_bytes"`
}

func (s *Server) info(p *pipeline) PipelineInfo {
	mvs := make([]string, 0, len(p.workload.Nodes))
	for _, n := range p.workload.Nodes {
		mvs = append(mvs, n.Name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return PipelineInfo{
		Name: p.name, Tenant: p.tenant, MVs: mvs,
		EverySeconds: p.every.Seconds(),
		Encoding:     p.encOpts != nil, Vectorized: p.vectorized,
		Runs: p.runsTotal, LastRunID: p.lastRunID,
		SliceBytes: s.adm.tenantSlice(p.tenant),
	}
}

// Pipeline returns one pipeline's snapshot.
func (s *Server) Pipeline(name string) (PipelineInfo, error) {
	s.mu.Lock()
	p, ok := s.pipelines[name]
	s.mu.Unlock()
	if !ok {
		return PipelineInfo{}, fmt.Errorf("%w: pipeline %q", ErrNotFound, name)
	}
	return s.info(p), nil
}

// Pipelines lists all pipeline snapshots.
func (s *Server) Pipelines() []PipelineInfo {
	s.mu.Lock()
	ps := make([]*pipeline, 0, len(s.pipelines))
	for _, p := range s.pipelines {
		ps = append(ps, p)
	}
	s.mu.Unlock()
	infos := make([]PipelineInfo, 0, len(ps))
	for _, p := range ps {
		infos = append(infos, s.info(p))
	}
	return infos
}

// planned is a trigger's plan and predicted reservation.
type planned struct {
	plan *core.Plan
	need int64
	// predictedWall is the ledger's learned run wall time, 0 before enough
	// succeeded runs exist to trust it.
	predictedWall float64
	// learnedNeed reports whether need came from the ledger's observed
	// peaks rather than the planner's static estimate.
	learnedNeed bool
}

// planTrigger re-plans the pipeline from its current execution metadata
// and predicts the refresh's catalog footprint: encoded sizes via the
// learned compression ratios (EWMA), scores under the device profile, the
// knapsack solved against the tenant slice, and the plan's peak usage
// inflated by the headroom factor. Every trigger replans, so the gateway
// IS the paper's observe → re-optimize loop.
func (s *Server) planTrigger(ctx context.Context, p *pipeline) (planned, error) {
	slice := s.adm.tenantSlice(p.tenant)
	prob, _ := s.buildProblem(p)
	plan, _, err := opt.Solve(ctx, prob, opt.Options{})
	if err != nil {
		return planned{}, err
	}
	peak := core.PeakMemoryUsage(prob, plan)
	need := int64(float64(peak) * s.cfg.Headroom)
	if need > slice {
		need = slice
	}
	if need < peak {
		need = peak
	}
	pl := planned{plan: plan, need: need}
	// Once enough succeeded runs exist, the ledger's observed peaks beat
	// the planner's static size guesses. Shrink-only: the learned estimate
	// (mean + sigma, inflated by the same headroom) may trim an
	// over-reservation so more tenants fit, but never grows the ask beyond
	// what the planner proved admissible — and a miss merely degrades to
	// blocking writes, which the mispredict detector flags and the next
	// runs' learning corrects.
	if hint, ok := s.led.AdmissionHint(p.name); ok {
		learned := int64((hint.PeakBytesMean + hint.PeakBytesSigma) * s.cfg.Headroom)
		if learned > 0 && learned < pl.need {
			pl.need = learned
			pl.learnedNeed = true
		}
		pl.predictedWall = hint.WallMeanSeconds
		// The learned per-node wall baselines give a structural estimate —
		// the DAG's critical path through EWMA node means — that tracks the
		// workload's shape where the run-level mean only tracks its history.
		// Prefer it whenever enough per-node history exists.
		if cp := s.led.CriticalPathSeconds(p.name, p.parents); cp > 0 {
			pl.predictedWall = cp
		}
	}
	return pl, nil
}

// Trigger requests a refresh of the named pipeline. It returns the run in
// state queued or running; ErrQueueFull when the queue is at capacity.
func (s *Server) Trigger(name string) (*Run, error) {
	return s.TriggerTrace(name, telemetry.SpanContext{})
}

// TriggerTrace is Trigger with trace-context propagation: when parent is
// valid (a client's W3C traceparent), the run's root span joins that trace
// instead of starting a new one.
func (s *Server) TriggerTrace(name string, parent telemetry.SpanContext) (*Run, error) {
	s.mu.Lock()
	p, ok := s.pipelines[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: pipeline %q", ErrNotFound, name)
	}
	pl, err := s.planTrigger(context.Background(), p)
	if err != nil {
		return nil, err
	}
	now := s.cfg.Clock()
	s.mu.Lock()
	s.runSeq++
	r := &Run{
		id:            fmt.Sprintf("run-%06d", s.runSeq),
		pipeline:      p.name,
		tenant:        p.tenant,
		need:          pl.need,
		tokens:        s.cfg.Concurrency,
		predictedWall: pl.predictedWall,
		learnedNeed:   pl.learnedNeed,
		events:        newEventBuf(),
		done:          make(chan struct{}),
		state:         StateQueued,
	}
	r.enqueuedAt = now
	if !s.cfg.DisableTracing {
		// The root span opens at enqueue, so queue wait is on the trace.
		r.trace = telemetry.NewCollector(telemetry.CollectorConfig{
			RunID:        r.id,
			Parent:       parent,
			Start:        now,
			Profile:      true,
			LinkResolver: s.nodeSpanResolver(p.name),
		})
		attrs := []telemetry.Attr{
			telemetry.Str("sc.pipeline", p.name),
			telemetry.Str("sc.tenant", p.tenant),
			telemetry.Int("sc.reserved_bytes", pl.need),
			telemetry.Int("sc.reserved_tokens", int64(r.tokens)),
		}
		if pl.predictedWall > 0 {
			attrs = append(attrs, telemetry.Float("sc.predicted_seconds", pl.predictedWall))
		}
		r.trace.SetRootAttrs(attrs...)
		r.parents = p.parents
	}
	s.runs[r.id] = r
	s.mu.Unlock()

	r.tkt = &ticket{
		tenant:   p.tenant,
		pipeline: p.name,
		need:     pl.need,
		tokens:   r.tokens,
		deadline: now.Add(s.cfg.QueueTimeout),
		start:    func(*ticket) { s.startRun(r, p, pl.plan) },
		expire:   func(*ticket) { s.expireRun(r) },
	}
	admittedNow, err := s.adm.submit(r.tkt)
	if err != nil {
		s.mu.Lock()
		delete(s.runs, r.id)
		s.mu.Unlock()
		s.prom.triggers.add(1, "rejected")
		return nil, err
	}
	if admittedNow {
		s.prom.triggers.add(1, "admitted")
	} else {
		s.prom.triggers.add(1, "queued")
	}
	return r, nil
}

// startRun is the admitter's start callback: the reservation is held; move
// the run to running and execute it on its own goroutine.
func (s *Server) startRun(r *Run, p *pipeline, plan *core.Plan) {
	now := s.cfg.Clock()
	r.mu.Lock()
	if r.state != StateQueued {
		// Canceled between pump and callback; give the reservation back.
		r.mu.Unlock()
		s.adm.finish(r.tenant, r.pipeline, r.need, r.tokens)
		return
	}
	r.state = StateRunning
	r.startedAt = now
	ctx, cancel := context.WithCancel(context.Background())
	r.cancelRun = cancel
	r.mu.Unlock()
	if r.trace != nil {
		attrs := []telemetry.Attr{
			telemetry.Str("sc.tenant", r.tenant),
			telemetry.Int("sc.reserved_bytes", r.need),
			telemetry.Int("sc.reserved_tokens", int64(r.tokens)),
		}
		// Attribute the queue wait: what the pump last saw holding this
		// trigger at the head — catalog bytes, scheduler tokens, the
		// tenant's slice, or its own pipeline still running.
		if b := r.tkt.blockedOn(); b != "" {
			attrs = append(attrs, telemetry.Str("sc.blocked_on", b))
		}
		r.trace.AddChildSpan("queue admission", r.enqueuedAt, now, attrs...)
	}
	s.prom.queueWait.observe(now.Sub(r.enqueuedAt).Seconds())
	s.runWG.Add(1)
	go func() {
		defer s.runWG.Done()
		s.execute(ctx, r, p, plan)
	}()
}

// execute runs one admitted refresh: a per-run catalog attached to the
// shared pool, capacity exactly the reservation, so the pool-wide bound
// holds byte-for-byte no matter what the run does.
func (s *Server) execute(ctx context.Context, r *Run, p *pipeline, plan *core.Plan) {
	cat := s.pool.NewCatalog(r.need)
	r.mu.Lock()
	r.cat = cat
	r.mu.Unlock()

	ctl := &exec.Controller{
		Store:        p.store,
		Mem:          cat,
		Obs:          obs.Multi(metrics.NewRecorder(p.md), r.events, s.prom.runObserver(r.tenant, r.pipeline), r.trace.Observer()),
		RunID:        r.id,
		Concurrency:  s.cfg.Concurrency,
		Sched:        s.sched,
		ParallelScan: s.cfg.ParallelScan,
		Encoding:     p.encOpts,
		Vectorized:   p.vectorized,
		Chunked:      p.session,
	}
	res, runErr := ctl.Run(ctx, p.workload, p.graph, plan)

	actualPeak := cat.Peak() // before Detach zeroes the accounting
	s.harvestEvictions(r, cat)
	leftover := cat.Detach()
	s.adm.finish(r.tenant, r.pipeline, r.need, r.tokens)

	now := s.cfg.Clock()
	state := StateSucceeded
	switch {
	case runErr != nil && errors.Is(runErr, context.Canceled):
		state = StateCanceled
	case runErr != nil:
		state = StateFailed
	}
	r.mu.Lock()
	r.state = state
	r.finishedAt = now
	r.cat = nil
	r.cancelRun = nil
	r.leftover = leftover
	r.actualPeak = actualPeak
	if runErr != nil {
		r.errMsg = runErr.Error()
	}
	if res != nil {
		r.nodes = len(res.Nodes)
		r.fallbacks = res.FallbackWrites
		for _, n := range res.Nodes {
			if n.Flagged {
				r.flagged++
			}
		}
	}
	r.mu.Unlock()

	p.mu.Lock()
	p.lastRunID = r.id
	p.runsTotal++
	p.mu.Unlock()

	s.finishTrace(r, now, state)
	s.prom.refreshes.add(1, r.tenant, r.pipeline, state)
	exemplar := ""
	if r.trace != nil {
		exemplar = fmt.Sprintf("trace_id=%q", r.trace.Context().TraceID.String())
	}
	s.prom.refreshSeconds.observeExemplar(now.Sub(r.enqueuedAt).Seconds(), exemplar, r.tenant, r.pipeline)
	r.events.close()
	close(r.done)
}

// finishTrace ends the run's observability lifecycle: it closes the root
// span at the terminal state, summarizes the run into the ledger (which
// judges it against the pipeline's learned baselines), remembers node
// spans for future cross-run links, and — when TailSample is on — exports
// the trace only if the ledger's decision says it is worth keeping.
func (s *Server) finishTrace(r *Run, now time.Time, state string) {
	var spans []telemetry.Span
	if r.trace != nil {
		r.mu.Lock()
		errMsg := r.errMsg
		actualPeak := r.actualPeak
		r.mu.Unlock()
		if errMsg == "" && state != StateSucceeded {
			errMsg = state
		}
		r.trace.SetRootAttrs(
			telemetry.Str("sc.state", state),
			telemetry.Int("sc.actual_peak_bytes", actualPeak),
		)
		r.trace.Finish(now, errMsg)
		spans = r.trace.Spans()
		s.rememberNodeSpans(r.pipeline, spans)
	}
	st := r.status()
	sum, dec := s.led.Append(ledger.Summarize(spans, r.parents, ledger.Meta{
		RunID: r.id, Pipeline: r.pipeline, Tenant: r.tenant, Outcome: state,
		Start:       st.EnqueuedAt,
		WallSeconds: st.ElapsedSeconds, QueueWaitSeconds: st.QueueWaitSeconds,
		ReservedBytes: st.ReservedBytes, ActualPeakBytes: st.ActualPeakBytes,
		FallbackWrites: st.FallbackWrites,
		EventsDropped:  st.EventsDropped, Err: st.Error,
	}))
	for _, a := range sum.Anomalies {
		s.prom.anomalies.add(1, r.pipeline, a.Kind)
	}
	s.notifyRun(r, sum)
	if st.EventsDropped > 0 {
		s.prom.eventsDropped.add(float64(st.EventsDropped), r.tenant, r.pipeline)
	}
	if r.trace != nil && s.cfg.TraceExporter != nil {
		if !s.cfg.TailSample || dec.Keep {
			s.cfg.TraceExporter.Export(spans)
			s.prom.traceSampled.add(1, "kept")
		} else {
			s.prom.traceSampled.add(1, "dropped")
		}
	}
}

// rememberNodeSpans updates the pipeline's node → span map from a
// finished trace, feeding the cross-run link resolver.
func (s *Server) rememberNodeSpans(pipeline string, spans []telemetry.Span) {
	s.linkMu.Lock()
	defer s.linkMu.Unlock()
	m := s.lastNodeSpans[pipeline]
	if m == nil {
		m = make(map[string]telemetry.SpanContext)
		s.lastNodeSpans[pipeline] = m
	}
	for _, sp := range spans {
		if node := sp.StrAttr(telemetry.AttrNode); node != "" {
			m[node] = telemetry.SpanContext{TraceID: sp.TraceID, SpanID: sp.SpanID, Sampled: true}
		}
	}
}

// nodeSpanResolver maps a node to its span in the pipeline's previous run,
// for cross-run cache-reuse links.
func (s *Server) nodeSpanResolver(pipeline string) func(string) (telemetry.SpanContext, bool) {
	return func(node string) (telemetry.SpanContext, bool) {
		s.linkMu.Lock()
		defer s.linkMu.Unlock()
		sc, ok := s.lastNodeSpans[pipeline][node]
		return sc, ok
	}
}

// Ledger exposes the run-history store (history endpoints, the bench).
func (s *Server) Ledger() *ledger.Ledger { return s.led }

// RunHistory returns retained run summaries, newest first.
func (s *Server) RunHistory(f ledger.Filter) []ledger.RunSummary {
	return s.led.Runs(f)
}

// PipelineHealth reports SLO attainment, baseline-vs-latest per node and
// regressions for one registered pipeline over the ledger window.
func (s *Server) PipelineHealth(name string) (ledger.Health, error) {
	s.mu.Lock()
	_, ok := s.pipelines[name]
	s.mu.Unlock()
	if !ok {
		return ledger.Health{}, fmt.Errorf("%w: pipeline %q", ErrNotFound, name)
	}
	return s.led.Health(name, ledger.HealthConfig{SLOSeconds: s.cfg.SLOSeconds}), nil
}

// expireRun is the admitter's expire callback: the queue deadline passed.
func (s *Server) expireRun(r *Run) {
	now := s.cfg.Clock()
	r.mu.Lock()
	if r.state != StateQueued {
		r.mu.Unlock()
		return
	}
	r.state = StateExpired
	r.finishedAt = now
	r.mu.Unlock()
	s.finishTrace(r, now, StateExpired)
	s.prom.triggers.add(1, "expired")
	s.prom.refreshes.add(1, r.tenant, r.pipeline, StateExpired)
	r.events.close()
	close(r.done)
}

// cancelIfQueued finalizes a still-queued run as canceled. Returns whether
// it took effect.
func (s *Server) cancelIfQueued(r *Run, tkt *ticket) bool {
	r.mu.Lock()
	if r.state != StateQueued {
		r.mu.Unlock()
		return false
	}
	now := s.cfg.Clock()
	r.state = StateCanceled
	r.finishedAt = now
	r.mu.Unlock()
	tkt.markCanceled()
	s.finishTrace(r, now, StateCanceled)
	s.prom.refreshes.add(1, r.tenant, r.pipeline, StateCanceled)
	r.events.close()
	close(r.done)
	return true
}

// CancelRun cancels a run: a queued trigger is dropped from the queue, a
// running refresh has its context canceled — the Controller stops at the
// next boundary and the cancellation sweep plus catalog detach release
// every reserved and resident byte.
func (s *Server) CancelRun(id string) (RunStatus, error) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: run %q", ErrNotFound, id)
	}
	if s.cancelIfQueued(r, r.tkt) {
		s.adm.reap()
		return r.status(), nil
	}
	r.mu.Lock()
	if r.state == StateRunning && r.cancelRun != nil {
		r.cancelRun()
	}
	r.mu.Unlock()
	return r.status(), nil
}

// Run returns a run's snapshot.
func (s *Server) Run(id string) (RunStatus, error) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: run %q", ErrNotFound, id)
	}
	return r.status(), nil
}

// TraceReport is a run's trace with its critical-path analysis — the body
// of GET /v1/runs/{id}/trace.
type TraceReport struct {
	RunID       string `json:"run_id"`
	Pipeline    string `json:"pipeline"`
	State       string `json:"state"`
	TraceID     string `json:"trace_id"`
	Traceparent string `json:"traceparent"`
	// Complete is false while the run is still queued or executing; spans
	// and the critical path then cover only what has happened so far.
	Complete     bool                 `json:"complete"`
	CriticalPath telemetry.CritReport `json:"critical_path"`
	Spans        []telemetry.SpanJSON `json:"spans"`
}

// RunTrace returns a run's trace snapshot and critical-path analysis.
// ErrNotFound covers both unknown runs and a gateway running with
// DisableTracing.
func (s *Server) RunTrace(id string) (TraceReport, error) {
	r, err := s.runHandle(id)
	if err != nil {
		return TraceReport{}, err
	}
	if r.trace == nil {
		return TraceReport{}, fmt.Errorf("%w: run %q has no trace (tracing disabled)", ErrNotFound, id)
	}
	spans := r.trace.Spans()
	st := r.status()
	return TraceReport{
		RunID:        r.id,
		Pipeline:     r.pipeline,
		State:        st.State,
		TraceID:      spans[0].TraceID.String(),
		Traceparent:  r.trace.Context().Traceparent(),
		Complete:     r.trace.Finished(),
		CriticalPath: telemetry.CriticalPath(spans, r.parents),
		Spans:        telemetry.SpansToJSON(spans),
	}, nil
}

// runHandle returns the run object itself (the HTTP layer streams its
// events and waits on done).
func (s *Server) runHandle(id string) (*Run, error) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: run %q", ErrNotFound, id)
	}
	return r, nil
}

// QueryMV reads a materialized view from the pipeline's store. limit <= 0
// returns all rows.
func (s *Server) QueryMV(pipelineName, mv string, limit int) (*table.Table, error) {
	s.mu.Lock()
	p, ok := s.pipelines[pipelineName]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: pipeline %q", ErrNotFound, pipelineName)
	}
	known := false
	for _, n := range p.workload.Nodes {
		if n.Name == mv {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("%w: mv %q in pipeline %q", ErrNotFound, mv, pipelineName)
	}
	start := time.Now()
	t, err := exec.LoadTable(p.store, mv)
	if err != nil {
		return nil, fmt.Errorf("%w: mv %q not materialized yet", ErrNotFound, mv)
	}
	s.prom.mvReadSeconds.observe(time.Since(start).Seconds())
	if limit > 0 && t.NumRows() > limit {
		idx := make([]int, limit)
		for i := range idx {
			idx[i] = i
		}
		t = t.Gather(idx)
	}
	return t, nil
}

// Stats snapshots server-wide admission and budget state.
func (s *Server) Stats() Stats {
	adm, enq, rej, exp := s.adm.counters()
	s.mu.Lock()
	n := len(s.pipelines)
	s.mu.Unlock()
	snap := s.sched.Stats()
	return Stats{
		Pipelines:      n,
		QueueDepth:     s.adm.depth(),
		Admitted:       adm,
		Enqueued:       enq,
		Rejected:       rej,
		Expired:        exp,
		BudgetBytes:    s.pool.Capacity(),
		ReservedBytes:  s.pool.Reserved(),
		UsedBytes:      s.pool.Used(),
		PeakUsedBytes:  s.pool.PeakUsed(),
		PeakReserved:   s.pool.PeakReserved(),
		SchedTokens:    snap.Tokens,
		SchedIdle:      snap.Idle,
		SchedCommitted: snap.Committed,
		SchedBorrows:   snap.Borrowed,
	}
}

// tenantNames lists tenants with registered slices.
func (s *Server) tenantNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool)
	var names []string
	for _, p := range s.pipelines {
		if !seen[p.tenant] {
			seen[p.tenant] = true
			names = append(names, p.tenant)
		}
	}
	return names
}

// registerGauges wires the scrape-time gauges to live server state.
func (s *Server) registerGauges() {
	s.prom.addGauge("scserve_queue_depth",
		"Triggers waiting for admission.", nil, func() []gaugeSample {
			return []gaugeSample{{v: float64(s.adm.depth())}}
		})
	s.prom.addGauge("scserve_catalog_budget_bytes",
		"Global shared Memory Catalog budget.", nil, func() []gaugeSample {
			return []gaugeSample{{v: float64(s.pool.Capacity())}}
		})
	s.prom.addGauge("scserve_catalog_reserved_bytes",
		"Bytes reserved by admitted refreshes.", nil, func() []gaugeSample {
			return []gaugeSample{{v: float64(s.pool.Reserved())}}
		})
	s.prom.addGauge("scserve_catalog_used_bytes",
		"Bytes resident across all run catalogs.", nil, func() []gaugeSample {
			return []gaugeSample{{v: float64(s.pool.Used())}}
		})
	s.prom.addGauge("scserve_catalog_peak_used_bytes",
		"High-water mark of resident bytes.", nil, func() []gaugeSample {
			return []gaugeSample{{v: float64(s.pool.PeakUsed())}}
		})
	s.prom.addGauge("scserve_tenant_slice_bytes",
		"Configured tenant budget slice.", []string{"tenant"}, func() []gaugeSample {
			var out []gaugeSample
			for _, t := range s.tenantNames() {
				out = append(out, gaugeSample{lvs: []string{t}, v: float64(s.adm.tenantSlice(t))})
			}
			return out
		})
	s.prom.addGauge("scserve_tenant_reserved_bytes",
		"Bytes a tenant's admitted refreshes hold reserved.", []string{"tenant"}, func() []gaugeSample {
			var out []gaugeSample
			for _, t := range s.tenantNames() {
				out = append(out, gaugeSample{lvs: []string{t}, v: float64(s.adm.tenantReserved(t))})
			}
			return out
		})
	s.prom.addGauge("scserve_sched_tokens_idle",
		"Scheduler tokens currently idle in the shared pool.", nil, func() []gaugeSample {
			return []gaugeSample{{v: float64(s.sched.Stats().Idle)}}
		})
	s.prom.addGauge("scserve_sched_tokens_committed",
		"Scheduler tokens soft-committed by admitted refreshes.", nil, func() []gaugeSample {
			return []gaugeSample{{v: float64(s.sched.Stats().Committed)}}
		})
	s.prom.addGauge("scserve_ledger_runs",
		"Run summaries retained in the ledger ring.", nil, func() []gaugeSample {
			return []gaugeSample{{v: float64(s.led.Len())}}
		})
	s.prom.addGauge("scserve_ledger_evicted_total",
		"Run summaries evicted from the bounded ledger ring.", nil, func() []gaugeSample {
			return []gaugeSample{{v: float64(s.led.Evicted())}}
		})
	s.prom.addGauge("scserve_mispredict_ratio",
		"Learned mean |reserved-actual|/reserved of admission reservations.",
		[]string{"pipeline"}, func() []gaugeSample {
			var out []gaugeSample
			for _, p := range s.led.Pipelines() {
				out = append(out, gaugeSample{lvs: []string{p}, v: s.led.MispredictRatio(p)})
			}
			return out
		})
	s.prom.addGauge("scserve_catalog_entry_bytes",
		"Bytes resident across run catalogs, summed from per-entry accounting (pins the /v1/state/catalog byte totals).",
		nil, func() []gaugeSample {
			return []gaugeSample{{v: float64(s.CatalogState().EntryBytes)}}
		})
	s.prom.addGauge("scserve_catalog_codec_bytes",
		"Compressed bytes resident in run catalogs, by codec.", []string{"codec"}, func() []gaugeSample {
			var out []gaugeSample
			for codec, b := range s.CatalogState().CodecBytes {
				out = append(out, gaugeSample{lvs: []string{codec}, v: float64(b)})
			}
			return out
		})
	s.prom.addGauge("scserve_catalog_codec_chunks",
		"Compressed chunks resident in run catalogs, by codec.", []string{"codec"}, func() []gaugeSample {
			var out []gaugeSample
			for codec, n := range s.CatalogState().CodecChunks {
				out = append(out, gaugeSample{lvs: []string{codec}, v: float64(n)})
			}
			return out
		})
	s.prom.addGauge("scserve_catalog_evictions_total",
		"Catalog entries evicted across all run catalogs.", nil, func() []gaugeSample {
			s.evMu.Lock()
			n := s.evSeen
			s.evMu.Unlock()
			s.mu.Lock()
			for _, r := range s.runs {
				r.mu.Lock()
				if r.cat != nil {
					n += r.cat.EvictionsSeen()
				}
				r.mu.Unlock()
			}
			s.mu.Unlock()
			return []gaugeSample{{v: float64(n)}}
		})
	s.prom.addGauge("scserve_alerts_total",
		"Alert webhook delivery outcomes.", []string{"outcome"}, func() []gaugeSample {
			if s.alerts == nil {
				return nil
			}
			st := s.alerts.Stats()
			return []gaugeSample{
				{lvs: []string{"delivered"}, v: float64(st.Delivered)},
				{lvs: []string{"dropped"}, v: float64(st.Dropped)},
				{lvs: []string{"deduped"}, v: float64(st.Deduped)},
				{lvs: []string{"retried"}, v: float64(st.Retries)},
			}
		})
	s.prom.addGauge("scserve_tenant_catalog_bytes",
		"Bytes resident in a tenant's live run catalogs.", []string{"tenant"}, func() []gaugeSample {
			used := make(map[string]float64)
			s.mu.Lock()
			for _, r := range s.runs {
				r.mu.Lock()
				if r.cat != nil {
					used[r.tenant] += float64(r.cat.Used())
				}
				r.mu.Unlock()
			}
			s.mu.Unlock()
			var out []gaugeSample
			for _, t := range s.tenantNames() {
				out = append(out, gaugeSample{lvs: []string{t}, v: used[t]})
			}
			return out
		})
}
