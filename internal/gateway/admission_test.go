package gateway

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/sched"
)

// fakeClock is a manually advanced clock for deadline tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// admitLog records callback order.
type admitLog struct {
	mu      sync.Mutex
	started []string
	expired []string
}

func (l *admitLog) startedNames() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.started...)
}

func (l *admitLog) expiredNames() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.expired...)
}

// admitStep is one scripted action against the admitter.
type admitStep struct {
	submit   string        // ticket label "tenant/pipeline#need[@deadline]" to submit
	tenant   string        //   submit fields
	pipeline string        //
	need     int64         //
	ttl      time.Duration //   0 = no deadline
	wantErr  error         //   expected submit error
	wantNow  bool          //   expect immediate admission

	finishTenant string // release a completed refresh for tenant/pipeline
	finishPipe   string
	finishNeed   int64

	advance time.Duration // move the fake clock, then reap
}

// TestAdmissionControl is the satellite table-driven admission test: a
// burst of M triggers over a B-byte budget admits at most what fits,
// queues the rest in submission order, and honors queue deadline expiry.
func TestAdmissionControl(t *testing.T) {
	cases := []struct {
		name        string
		budget      int64
		maxQueue    int
		slices      map[string]int64
		steps       []admitStep
		wantStarted []string
		wantExpired []string
		wantDepth   int
	}{
		{
			name:     "burst over budget admits at most budget then queues in order",
			budget:   1000,
			maxQueue: 16,
			slices:   map[string]int64{"a": 1000},
			steps: []admitStep{
				{submit: "p1", tenant: "a", pipeline: "p1", need: 400, wantNow: true},
				{submit: "p2", tenant: "a", pipeline: "p2", need: 400, wantNow: true},
				{submit: "p3", tenant: "a", pipeline: "p3", need: 400}, // 1200 > 1000: queues
				{submit: "p4", tenant: "a", pipeline: "p4", need: 100}, // would fit, but FIFO behind p3
				{finishTenant: "a", finishPipe: "p1", finishNeed: 400}, // frees 400: p3 then p4 admitted
			},
			wantStarted: []string{"p1", "p2", "p3", "p4"},
		},
		{
			name:     "tenant slice caps a noisy tenant",
			budget:   1000,
			maxQueue: 16,
			slices:   map[string]int64{"noisy": 300, "calm": 1000},
			steps: []admitStep{
				{submit: "n1", tenant: "noisy", pipeline: "n1", need: 300, wantNow: true},
				{submit: "n2", tenant: "noisy", pipeline: "n2", need: 300}, // slice full
				{submit: "c1", tenant: "calm", pipeline: "c1", need: 300},  // FIFO: behind n2
				{finishTenant: "noisy", finishPipe: "n1", finishNeed: 300},
			},
			wantStarted: []string{"n1", "n2", "c1"},
		},
		{
			name:     "one pipeline never runs two refreshes concurrently",
			budget:   1000,
			maxQueue: 16,
			slices:   map[string]int64{"a": 1000},
			steps: []admitStep{
				{submit: "p1", tenant: "a", pipeline: "p1", need: 100, wantNow: true},
				{submit: "p1-again", tenant: "a", pipeline: "p1", need: 100}, // busy: queues
				{finishTenant: "a", finishPipe: "p1", finishNeed: 100},
			},
			wantStarted: []string{"p1", "p1-again"},
		},
		{
			name:     "queue deadline expiry unblocks the tickets behind it",
			budget:   1000,
			maxQueue: 16,
			slices:   map[string]int64{"a": 1000},
			steps: []admitStep{
				{submit: "p1", tenant: "a", pipeline: "p1", need: 900, wantNow: true},
				{submit: "p2", tenant: "a", pipeline: "p2", need: 900, ttl: time.Second},
				{submit: "p3", tenant: "a", pipeline: "p3", need: 100, ttl: time.Hour},
				{advance: 2 * time.Second}, // p2 expires; p3 fits alongside p1
			},
			wantStarted: []string{"p1", "p3"},
			wantExpired: []string{"p2"},
		},
		{
			name:     "bounded queue rejects beyond capacity",
			budget:   100,
			maxQueue: 2,
			slices:   map[string]int64{"a": 100},
			steps: []admitStep{
				{submit: "p1", tenant: "a", pipeline: "p1", need: 100, wantNow: true},
				{submit: "p2", tenant: "a", pipeline: "p2", need: 100},
				{submit: "p3", tenant: "a", pipeline: "p3", need: 100},
				{submit: "p4", tenant: "a", pipeline: "p4", need: 100, wantErr: ErrQueueFull},
			},
			wantStarted: []string{"p1"},
			wantDepth:   2,
		},
		{
			name:     "zero-footprint triggers admit under a full pool",
			budget:   100,
			maxQueue: 16,
			slices:   map[string]int64{"a": 100},
			steps: []admitStep{
				{submit: "p1", tenant: "a", pipeline: "p1", need: 100, wantNow: true},
				{submit: "p2", tenant: "a", pipeline: "p2", need: 0, wantNow: true},
			},
			wantStarted: []string{"p1", "p2"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			pool := memcat.NewPool(tc.budget)
			a := newAdmitter(pool, nil, tc.maxQueue, clock.now)
			for tenant, slice := range tc.slices {
				a.addTenant(tenant, slice)
			}
			lg := &admitLog{}
			for i, step := range tc.steps {
				switch {
				case step.submit != "":
					label := step.submit
					tkt := &ticket{
						tenant:   step.tenant,
						pipeline: step.pipeline,
						need:     step.need,
						start: func(*ticket) {
							lg.mu.Lock()
							lg.started = append(lg.started, label)
							lg.mu.Unlock()
						},
						expire: func(*ticket) {
							lg.mu.Lock()
							lg.expired = append(lg.expired, label)
							lg.mu.Unlock()
						},
					}
					if step.ttl > 0 {
						tkt.deadline = clock.now().Add(step.ttl)
					}
					now, err := a.submit(tkt)
					if !errors.Is(err, step.wantErr) {
						t.Fatalf("step %d submit %s: err = %v, want %v", i, label, err, step.wantErr)
					}
					if now != step.wantNow {
						t.Fatalf("step %d submit %s: admittedNow = %v, want %v", i, label, now, step.wantNow)
					}
				case step.finishPipe != "":
					a.finish(step.finishTenant, step.finishPipe, step.finishNeed, 0)
				case step.advance > 0:
					clock.advance(step.advance)
					a.reap()
				}
				if res := pool.Reserved(); res > tc.budget {
					t.Fatalf("step %d: reserved %d exceeds budget %d", i, res, tc.budget)
				}
			}
			if got := lg.startedNames(); !equalStrings(got, tc.wantStarted) {
				t.Fatalf("started = %v, want %v", got, tc.wantStarted)
			}
			if got := lg.expiredNames(); !equalStrings(got, tc.wantExpired) {
				t.Fatalf("expired = %v, want %v", got, tc.wantExpired)
			}
			if got := a.depth(); got != tc.wantDepth {
				t.Fatalf("queue depth = %d, want %d", got, tc.wantDepth)
			}
			if pk := pool.PeakReserved(); pk > tc.budget {
				t.Fatalf("peak reserved %d exceeds budget %d", pk, tc.budget)
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAdmissionTokenGating pins the scheduler-token side of admission:
// each admitted run soft-commits its token budget, a run that doesn't fit
// queues with blocked_on = sched-tokens AND has its byte reservation rolled
// back, and a finishing run's tokens let it through.
func TestAdmissionTokenGating(t *testing.T) {
	pool := memcat.NewPool(1000)
	sc := sched.New(4, 0)
	a := newAdmitter(pool, sc, 8, time.Now)
	a.addTenant("t", 1000)

	var mu sync.Mutex
	var started []string
	mk := func(name string) *ticket {
		tk := &ticket{tenant: "t", pipeline: name, need: 10, tokens: 2}
		tk.start = func(*ticket) {
			mu.Lock()
			started = append(started, name)
			mu.Unlock()
		}
		return tk
	}
	t1, t2, t3 := mk("p1"), mk("p2"), mk("p3")
	for i, tk := range []*ticket{t1, t2} {
		if now, err := a.submit(tk); err != nil || !now {
			t.Fatalf("submit %d: admittedNow=%v err=%v, want immediate", i, now, err)
		}
	}
	if got := sc.Committed(); got != 4 {
		t.Fatalf("committed = %d, want 4", got)
	}
	// Tokens exhausted: p3 queues even though bytes and its tenant slice
	// would fit, and the pump must have released its byte reservation.
	if now, err := a.submit(t3); err != nil || now {
		t.Fatalf("submit p3: admittedNow=%v err=%v, want queued", now, err)
	}
	if got := pool.Reserved(); got != 20 {
		t.Fatalf("reserved = %d after token block, want 20 (p3 rolled back)", got)
	}
	if got := t3.blockedOn(); got != "sched-tokens" {
		t.Fatalf("blockedOn = %q, want sched-tokens", got)
	}
	a.finish("t", "p1", 10, 2)
	if got := sc.Committed(); got != 4 {
		t.Fatalf("committed = %d after finish+admit, want 4 (p2 + p3)", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(started) != 3 || started[2] != "p3" {
		t.Fatalf("started = %v, want p1 p2 p3", started)
	}
}

// TestAdmissionConcurrentBurst hammers the admitter from many goroutines
// (run with -race): reservations never exceed the budget, and every
// submitted ticket eventually starts exactly once.
func TestAdmissionConcurrentBurst(t *testing.T) {
	const (
		budget  = 1000
		tickets = 64
	)
	pool := memcat.NewPool(budget)
	a := newAdmitter(pool, nil, tickets, time.Now)
	a.addTenant("a", 600)
	a.addTenant("b", 600)

	var startedCount int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	done := make(chan struct{}, tickets)
	for i := 0; i < tickets; i++ {
		tenant := "a"
		if i%2 == 1 {
			tenant = "b"
		}
		tkt := &ticket{
			tenant:   tenant,
			pipeline: fmt.Sprintf("%s-p%d", tenant, i), // distinct pipelines: no busy serialization
			need:     int64(50 + i%7*25),
		}
		tkt.start = func(tk *ticket) {
			mu.Lock()
			startedCount++
			mu.Unlock()
			if res := pool.Reserved(); res > budget {
				t.Errorf("reserved %d exceeds budget %d", res, budget)
			}
			// Finish on another goroutine, as the server's execute does.
			wg.Add(1)
			go func() {
				defer wg.Done()
				a.finish(tk.tenant, tk.pipeline, tk.need, 0)
				done <- struct{}{}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.submit(tkt); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	for i := 0; i < tickets; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("deadlock: %d/%d tickets finished", i, tickets)
		}
	}
	wg.Wait()
	if startedCount != tickets {
		t.Fatalf("started %d, want %d", startedCount, tickets)
	}
	if res := pool.Reserved(); res != 0 {
		t.Fatalf("reserved %d after all finished", res)
	}
	if pk := pool.PeakReserved(); pk > budget {
		t.Fatalf("peak reserved %d exceeds budget %d", pk, budget)
	}
}
