package gateway

import (
	"sync"

	"github.com/shortcircuit-db/sc/internal/obs"
)

// eventBufCap bounds one run's buffered event stream. A 12-node refresh
// emits a few dozen events; the cap only matters for pathological DAGs,
// where the stream reports how many events it dropped instead of growing
// without bound.
const eventBufCap = 16384

// eventBuf accumulates one run's obs events for streaming: subscribers
// replay what is buffered, then follow live appends until the buffer is
// closed (run finished). It implements obs.Observer and is safe for the
// Controller's concurrent emitters.
type eventBuf struct {
	mu      sync.Mutex
	events  []obs.Event
	dropped int64
	closed  bool
	wake    chan struct{} // closed and replaced on every append/close
}

func newEventBuf() *eventBuf {
	return &eventBuf{wake: make(chan struct{})}
}

// OnEvent implements obs.Observer.
func (b *eventBuf) OnEvent(e obs.Event) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	if len(b.events) >= eventBufCap {
		b.dropped++
	} else {
		b.events = append(b.events, e)
	}
	b.wakeLocked()
	b.mu.Unlock()
}

// close marks the stream complete and wakes all followers.
func (b *eventBuf) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		b.wakeLocked()
	}
	b.mu.Unlock()
}

func (b *eventBuf) wakeLocked() {
	close(b.wake)
	b.wake = make(chan struct{})
}

// next returns the events from index from onward, whether the stream is
// complete, and a channel that is closed on the next append/close. A
// follower loops: consume the slice, and when it is empty and not done,
// wait on the channel.
func (b *eventBuf) next(from int) (events []obs.Event, done bool, wake <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if from < len(b.events) {
		events = b.events[from:]
	}
	return events, b.closed, b.wake
}

// droppedCount reports events lost to the buffer cap.
func (b *eventBuf) droppedCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}
