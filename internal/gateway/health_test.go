package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/shortcircuit-db/sc/internal/ledger"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/table"
	"github.com/shortcircuit-db/sc/internal/telemetry"
)

// delayStore wraps a Store and injects a settable latency into reads of
// objects whose name contains the target substring — a synthetic node
// slowdown the detector should catch.
type delayStore struct {
	storage.Store
	target  string
	delayNs atomic.Int64
}

func (d *delayStore) Read(name string) ([]byte, error) {
	if ns := d.delayNs.Load(); ns > 0 && strings.Contains(name, d.target) {
		time.Sleep(time.Duration(ns))
	}
	return d.Store.Read(name)
}

// recordExporter retains every exported trace; with TailSample set, only
// runs the ledger decided to keep should land here.
type recordExporter struct {
	mu     sync.Mutex
	traces [][]telemetry.Span
}

func (r *recordExporter) Export(spans []telemetry.Span) {
	cp := make([]telemetry.Span, len(spans))
	copy(cp, spans)
	r.mu.Lock()
	r.traces = append(r.traces, cp)
	r.mu.Unlock()
}

func (r *recordExporter) Close() error { return nil }

func (r *recordExporter) traceIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.traces))
	for _, tr := range r.traces {
		out = append(out, tr[0].TraceID.String())
	}
	return out
}

// refreshOK triggers one synchronous refresh and requires success.
func refreshOK(t *testing.T, s *Server, pipeline string) RunStatus {
	t.Helper()
	r, err := s.Trigger(pipeline)
	if err != nil {
		t.Fatal(err)
	}
	<-r.done
	st, _ := s.Run(r.id)
	if st.State != StateSucceeded {
		t.Fatalf("refresh: %q (%s)", st.State, st.Error)
	}
	return st
}

// TestGatewayAnomalyHealthEndToEnd is the acceptance path: four healthy
// refreshes learn baselines, a fifth with an artificially slowed base-table
// read must (a) get exactly its slowed node flagged as a wall regression,
// (b) be the only run whose trace survives tail sampling, and (c) leave a
// nonzero misprediction ratio because the reservation never matches the
// actual peak exactly.
func TestGatewayAnomalyHealthEndToEnd(t *testing.T) {
	ds := &delayStore{Store: storage.NewMemStore(), target: "sales"}
	exp := &recordExporter{}
	s, ts := newTestGateway(t, Config{
		TailSample:    true,
		TraceExporter: exp,
		NewStore:      func(string) storage.Store { return ds },
	})
	if err := s.Register(PipelineSpec{
		Name: "beer", Tenant: "brewer",
		MVs:    pipelineRequest("", "").MVs,
		Tables: map[string]*table.Table{"sales": mustTable(t, salesJSON())},
	}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		refreshOK(t, s, "beer")
	}
	// Slow every read of the sales base table: only mv_daily scans it.
	ds.delayNs.Store(int64(150 * time.Millisecond))
	refreshOK(t, s, "beer")
	ds.delayNs.Store(0)

	history := s.RunHistory(ledger.Filter{Pipeline: "beer"})
	if len(history) != 5 {
		t.Fatalf("history = %d runs, want 5", len(history))
	}
	latest := history[0]
	var wallRegressions []ledger.Anomaly
	for _, a := range latest.Anomalies {
		if a.Kind == ledger.KindWallRegression {
			wallRegressions = append(wallRegressions, a)
		}
	}
	if len(wallRegressions) != 1 || wallRegressions[0].Node != "mv_daily" {
		t.Fatalf("want exactly mv_daily wall-regressed, got %+v (all: %+v)",
			wallRegressions, latest.Anomalies)
	}
	for i, run := range history[1:] {
		if run.Anomalous() {
			t.Fatalf("healthy run %d flagged: %+v", i, run.Anomalies)
		}
	}

	// Tail sampling: only the anomalous run's trace was exported.
	kept := exp.traceIDs()
	if len(kept) != 1 || kept[0] != latest.TraceID {
		t.Fatalf("tail sampling kept %v, want only %s", kept, latest.TraceID)
	}

	// Admission reserves predicted×headroom; the actual peak never lands on
	// it exactly, so the learned misprediction ratio is nonzero.
	if latest.ReservedBytes <= 0 {
		t.Fatalf("latest run reserved nothing: %+v", latest)
	}
	if got := s.Ledger().MispredictRatio("beer"); got <= 0 {
		t.Fatalf("mispredict ratio = %g, want > 0", got)
	}

	// The health endpoint rolls it up: degraded verdict, mv_daily on top.
	resp, err := http.Get(ts.URL + "/v1/pipelines/beer/health")
	if err != nil {
		t.Fatal(err)
	}
	h := decodeBody[ledger.Health](t, resp)
	if h.Verdict != ledger.VerdictDegraded {
		t.Fatalf("verdict = %q, want degraded (health: %+v)", h.Verdict, h)
	}
	if h.AnomalyCount == 0 || len(h.TopRegressions) == 0 || h.TopRegressions[0].Node != "mv_daily" {
		t.Fatalf("regressions: %+v", h.TopRegressions)
	}
	if h.MispredictRatio <= 0 {
		t.Fatalf("health mispredict ratio = %g, want > 0", h.MispredictRatio)
	}
	var nodeSeen bool
	for _, n := range h.Nodes {
		if n.Node == "mv_daily" && n.Regressed {
			nodeSeen = true
		}
	}
	if !nodeSeen {
		t.Fatalf("mv_daily not marked regressed in node health: %+v", h.Nodes)
	}

	// Unknown pipeline is a 404.
	resp, err = http.Get(ts.URL + "/v1/pipelines/ghost/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost health: %d", resp.StatusCode)
	}
}

// TestRunHistoryHTTP checks the /v1/runs filters over a ledger populated
// by hand so the expectations are exact.
func TestRunHistoryHTTP(t *testing.T) {
	s, ts := newTestGateway(t, Config{})
	led := s.Ledger()
	mk := func(id, pipeline, tenant, outcome string) ledger.RunSummary {
		return ledger.RunSummary{
			RunID: id, Pipeline: pipeline, Tenant: tenant, Outcome: outcome,
			Start: time.Date(2026, 8, 2, 9, 0, 0, 0, time.UTC), WallSeconds: 0.1,
		}
	}
	led.Append(mk("r1", "a", "t1", ledger.OutcomeSucceeded))
	led.Append(mk("r2", "b", "t2", ledger.OutcomeSucceeded))
	led.Append(mk("r3", "a", "t1", ledger.OutcomeFailed))

	get := func(query string) runHistoryResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/runs" + query)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/runs%s: %d", query, resp.StatusCode)
		}
		return decodeBody[runHistoryResponse](t, resp)
	}

	if got := get(""); got.Count != 3 || got.Runs[0].RunID != "r3" {
		t.Fatalf("all runs: %+v", got)
	}
	if got := get("?pipeline=a"); got.Count != 2 {
		t.Fatalf("pipeline filter: %+v", got)
	}
	if got := get("?tenant=t2"); got.Count != 1 || got.Runs[0].RunID != "r2" {
		t.Fatalf("tenant filter: %+v", got)
	}
	if got := get("?outcome=failed"); got.Count != 1 || got.Runs[0].RunID != "r3" {
		t.Fatalf("outcome filter: %+v", got)
	}
	if got := get("?anomalous=1"); got.Count != 0 || got.Runs == nil {
		t.Fatalf("anomalous filter must return an empty, non-nil list: %+v", got)
	}
	if got := get("?limit=1"); got.Count != 1 || got.Runs[0].RunID != "r3" {
		t.Fatalf("limit: %+v", got)
	}
	resp, err := http.Get(ts.URL + "/v1/runs?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: %d", resp.StatusCode)
	}
}

// TestPipelineHealthGolden pins the /v1/pipelines/{p}/health JSON shape
// against a golden file, with the ledger populated by hand-built summaries
// so every derived number is deterministic.
func TestPipelineHealthGolden(t *testing.T) {
	s, ts := newTestGateway(t, Config{})
	if err := s.Register(PipelineSpec{
		Name: "p", Tenant: "t",
		MVs:    pipelineRequest("", "").MVs,
		Tables: map[string]*table.Table{"sales": mustTable(t, salesJSON())},
	}); err != nil {
		t.Fatal(err)
	}
	led := s.Ledger()
	mk := func(i int, nodeWall float64) ledger.RunSummary {
		return ledger.RunSummary{
			RunID: "run-" + string(rune('0'+i)), Pipeline: "p", Tenant: "t",
			Outcome: ledger.OutcomeSucceeded,
			TraceID: "0102030405060708090a0b0c0d0e0f10",
			Start:   time.Date(2026, 8, 2, 10, i, 0, 0, time.UTC),

			WallSeconds:      nodeWall + 0.05,
			QueueWaitSeconds: 0.005,
			ReservedBytes:    1000,
			ActualPeakBytes:  900,
			Mispredict:       0.1,
			Nodes: []ledger.NodeSummary{
				{Node: "n", WallSeconds: nodeWall, SelfSeconds: nodeWall, OutputBytes: 4096, Ratio: 4},
			},
			CritPath: []string{"n"}, CritPathSeconds: nodeWall,
		}
	}
	for i := 1; i <= 4; i++ {
		led.Append(mk(i, 0.100))
	}
	led.Append(mk(5, 0.200)) // deterministic wall regression on node n

	resp, err := http.Get(ts.URL + "/v1/pipelines/p/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health: %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, bytes.TrimSpace(body), "", "  "); err != nil {
		t.Fatal(err)
	}
	pretty.WriteByte('\n')
	golden := filepath.Join("testdata", "health.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if pretty.String() != string(want) {
		t.Fatalf("health shape drifted from %s (run with -update to accept):\ngot:\n%s\nwant:\n%s",
			golden, pretty.String(), want)
	}
}
