package kernels

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/shortcircuit-db/sc/internal/colfmt"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// The differential suite: for randomized tables, encodings, predicates and
// plan shapes, a lowered plan must produce byte-identical results to the
// row engine — compared via the serialized v1 format, which canonicalizes
// nil-vs-empty slices but preserves every value bit (including float
// payloads).

// colShape enumerates generator shapes that exercise specific codecs.
type colShape int

const (
	shapeConst    colShape = iota // all-run RLE
	shapeRuns                     // few long runs
	shapeLowCard                  // dictionary
	shapeHighCard                 // dict overflow to raw/delta
	shapeSorted                   // delta
	shapeDecimal                  // floatdec
	shapeRandomF                  // raw floats
	numShapes
)

func genVector(rng *rand.Rand, typ table.Type, shape colShape, n int) *table.Vector {
	v := &table.Vector{Type: typ}
	mk := func(i int) int64 {
		switch shape {
		case shapeConst:
			return 7
		case shapeRuns:
			return int64(i / (1 + rng.Intn(20) + 5) % 4)
		case shapeLowCard:
			return int64(rng.Intn(5))
		case shapeHighCard:
			return rng.Int63n(1 << 40)
		case shapeSorted:
			return int64(i * 3)
		default:
			return rng.Int63n(100)
		}
	}
	for i := 0; i < n; i++ {
		switch typ {
		case table.Int:
			v.Ints = append(v.Ints, mk(i))
		case table.Float:
			switch shape {
			case shapeConst:
				v.Floats = append(v.Floats, 2.5)
			case shapeDecimal:
				v.Floats = append(v.Floats, float64(rng.Intn(10000))/100)
			default:
				v.Floats = append(v.Floats, rng.NormFloat64()*100)
			}
		default:
			switch shape {
			case shapeConst:
				v.Strs = append(v.Strs, "aaaa")
			case shapeHighCard:
				v.Strs = append(v.Strs, fmt.Sprintf("s%d-%d", i, rng.Int63()))
			default:
				v.Strs = append(v.Strs, fmt.Sprintf("cat%d", rng.Intn(6)))
			}
		}
	}
	return v
}

func genTable(rng *rand.Rand, nRows int) *table.Table {
	nCols := 1 + rng.Intn(4)
	var sch table.Schema
	var cols []*table.Vector
	for c := 0; c < nCols; c++ {
		typ := table.Type(rng.Intn(3))
		sch.Cols = append(sch.Cols, table.Column{Name: fmt.Sprintf("c%d", c), Type: typ})
		cols = append(cols, genVector(rng, typ, colShape(rng.Intn(int(numShapes))), nRows))
	}
	return &table.Table{Schema: sch, Cols: cols}
}

// litFor picks a literal that has a chance of matching the column.
func litFor(rng *rand.Rand, t *table.Table, col int) engine.Expr {
	v := t.Cols[col]
	if v.Len() == 0 || rng.Intn(4) == 0 {
		// Literal absent from the column (or arbitrary for empty tables).
		switch v.Type {
		case table.Int:
			return &engine.Lit{V: table.IntValue(rng.Int63n(1000) - 500)}
		case table.Float:
			return &engine.Lit{V: table.FloatValue(rng.Float64() * 100)}
		default:
			return &engine.Lit{V: table.StrValue("absent")}
		}
	}
	return &engine.Lit{V: v.Value(rng.Intn(v.Len()))}
}

// genPred builds a random predicate; compilable is not guaranteed, which
// exercises the lowering's decline path too.
func genPred(rng *rand.Rand, t *table.Table, depth int) engine.Expr {
	nCols := len(t.Cols)
	if depth > 0 && rng.Intn(2) == 0 {
		op := engine.OpAnd
		if rng.Intn(2) == 0 {
			op = engine.OpOr
		}
		l := genPred(rng, t, depth-1)
		r := genPred(rng, t, depth-1)
		var e engine.Expr = &engine.Bin{Op: op, L: l, R: r}
		if rng.Intn(4) == 0 {
			e = &engine.Not{E: e}
		}
		return e
	}
	col := rng.Intn(nCols)
	cr := &engine.ColRef{Idx: col, Name: t.Schema.Cols[col].Name}
	if rng.Intn(5) == 0 { // IN list
		var list []table.Value
		for k := 0; k < 1+rng.Intn(4); k++ {
			if lit, ok := litFor(rng, t, col).(*engine.Lit); ok {
				list = append(list, lit.V)
			}
		}
		return &engine.InList{E: cr, List: list}
	}
	ops := []engine.BinOp{engine.OpEq, engine.OpNe, engine.OpLt, engine.OpLe, engine.OpGt, engine.OpGe}
	op := ops[rng.Intn(len(ops))]
	lit := litFor(rng, t, col)
	if rng.Intn(2) == 0 {
		return &engine.Bin{Op: op, L: cr, R: lit}
	}
	return &engine.Bin{Op: op, L: lit, R: cr}
}

// ctxFor builds an execution context resolving name to tbl, plain for the
// row engine and chunked for the kernels.
func ctxFor(t *testing.T, name string, tbl *table.Table, opts encoding.Options) (row, vec *engine.Context) {
	t.Helper()
	ct, err := encoding.FromTable(tbl, opts)
	if err != nil {
		t.Fatalf("FromTable: %v", err)
	}
	resolve := func(n string) (*table.Table, error) {
		if n != name {
			return nil, fmt.Errorf("unknown table %q", n)
		}
		// Serve through a decode round-trip so both engines read the exact
		// same values.
		return ct.Table()
	}
	row = &engine.Context{Resolve: resolve}
	vec = &engine.Context{
		Resolve: resolve,
		ResolveCompressed: func(n string) (*encoding.Compressed, error) {
			if n != name {
				return nil, fmt.Errorf("unknown table %q", n)
			}
			return ct, nil
		},
	}
	return row, vec
}

// mustEqual compares two plan results via their serialized form.
func mustEqual(t *testing.T, seed int64, desc string, want, got *table.Table, wantErr, gotErr error) {
	t.Helper()
	if (wantErr != nil) != (gotErr != nil) {
		t.Fatalf("seed %d %s: row engine err=%v, kernels err=%v", seed, desc, wantErr, gotErr)
	}
	if wantErr != nil {
		return
	}
	wb, err := colfmt.Encode(want)
	if err != nil {
		t.Fatalf("encode want: %v", err)
	}
	gb, err := colfmt.Encode(got)
	if err != nil {
		t.Fatalf("encode got: %v", err)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatalf("seed %d %s: results differ\nrow engine: %d rows\nkernels: %d rows",
			seed, desc, want.NumRows(), got.NumRows())
	}
}

func encOptions(rng *rand.Rand) encoding.Options {
	opts := encoding.Options{}
	switch rng.Intn(4) {
	case 0:
		opts.Mode = encoding.ModeRaw
	case 1:
		opts.ChunkRows = 1 + rng.Intn(7) // many tiny chunks
	case 2:
		opts.ChunkRows = 64
	}
	return opts
}

func rowCount(rng *rand.Rand) int {
	switch rng.Intn(6) {
	case 0:
		return 0 // empty table
	case 1:
		return 1
	default:
		return 1 + rng.Intn(300)
	}
}

func TestDifferentialFilter(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		tbl := genTable(rng, rowCount(rng))
		scan := func() *engine.Scan { return &engine.Scan{Name: "t", Sch: tbl.Schema} }
		pred := genPred(rng, tbl, 2)
		rowCtx, vecCtx := ctxFor(t, "t", tbl, encOptions(rng))

		plain := &engine.Filter{Input: scan(), Pred: pred}
		want, wantErr := plain.Run(rowCtx)

		st := &Stats{}
		lowered := Lower(&engine.Filter{Input: scan(), Pred: pred}, st)
		got, gotErr := lowered.Run(vecCtx)
		mustEqual(t, int64(seed), fmt.Sprintf("filter %v", pred), want, got, wantErr, gotErr)
	}
}

func genAgg(rng *rand.Rand, tbl *table.Table, input engine.Node) (*engine.Aggregate, error) {
	nCols := len(tbl.Cols)
	var groupBy []int
	for c := 0; c < nCols && len(groupBy) < 2; c++ {
		if rng.Intn(3) == 0 {
			groupBy = append(groupBy, c)
		}
	}
	var specs []engine.AggSpec
	nAggs := 1 + rng.Intn(3)
	for k := 0; k < nAggs; k++ {
		fn := engine.AggFunc(rng.Intn(5))
		spec := engine.AggSpec{Func: fn, Name: fmt.Sprintf("a%d", k)}
		if fn != engine.AggCount || rng.Intn(2) == 0 {
			col := rng.Intn(nCols)
			var arg engine.Expr = &engine.ColRef{Idx: col}
			if tbl.Cols[col].Type != table.Str && rng.Intn(3) == 0 {
				// Arithmetic argument over one or two columns.
				col2 := rng.Intn(nCols)
				if tbl.Cols[col2].Type != table.Str {
					arg = &engine.Bin{Op: engine.OpMul, L: arg, R: &engine.ColRef{Idx: col2}}
				} else {
					arg = &engine.Bin{Op: engine.OpAdd, L: arg, R: &engine.Lit{V: table.IntValue(3)}}
				}
			}
			if (fn == engine.AggSum || fn == engine.AggAvg) && tbl.Cols[col].Type == table.Str {
				// SUM/AVG over STRING is a planning error; use COUNT instead.
				spec.Func = engine.AggCount
			}
			spec.Arg = arg
		}
		specs = append(specs, spec)
	}
	return engine.NewAggregate(input, groupBy, specs)
}

func TestDifferentialAggregate(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for seed := 1000; seed < 1000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		tbl := genTable(rng, rowCount(rng))
		withFilter := rng.Intn(2) == 0
		build := func() (engine.Node, error) {
			var in engine.Node = &engine.Scan{Name: "t", Sch: tbl.Schema}
			if withFilter {
				in = &engine.Filter{Input: in, Pred: genPred(rand.New(rand.NewSource(int64(seed))), tbl, 1)}
			}
			return genAgg(rand.New(rand.NewSource(int64(seed)+7)), tbl, in)
		}
		plain, err := build()
		if err != nil {
			continue // invalid spec combination; nothing to compare
		}
		loweredSrc, err := build()
		if err != nil {
			t.Fatalf("seed %d: second build failed: %v", seed, err)
		}
		rowCtx, vecCtx := ctxFor(t, "t", tbl, encOptions(rng))
		want, wantErr := plain.Run(rowCtx)
		st := &Stats{}
		lowered := Lower(loweredSrc, st)
		got, gotErr := lowered.Run(vecCtx)
		mustEqual(t, int64(seed), "aggregate", want, got, wantErr, gotErr)
	}
}

// TestDifferentialJoinPushdown exercises Filter(HashJoin(Scan, Scan)).
func TestDifferentialJoinPushdown(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for seed := 2000; seed < 2000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		n1, n2 := rowCount(rng), rowCount(rng)
		left := genTable(rng, n1)
		right := genTable(rng, n2)
		// Give both sides a guaranteed-joinable key column.
		key1 := genVector(rng, table.Int, shapeLowCard, n1)
		key2 := genVector(rng, table.Int, shapeLowCard, n2)
		left.Schema.Cols = append(left.Schema.Cols, table.Column{Name: "lk", Type: table.Int})
		left.Cols = append(left.Cols, key1)
		right.Schema.Cols = append(right.Schema.Cols, table.Column{Name: "rk", Type: table.Int})
		right.Cols = append(right.Cols, key2)

		joined := &table.Table{}
		joined.Schema.Cols = append(joined.Schema.Cols, left.Schema.Cols...)
		joined.Schema.Cols = append(joined.Schema.Cols, right.Schema.Cols...)
		joined.Cols = append(joined.Cols, left.Cols...)
		joined.Cols = append(joined.Cols, right.Cols...)

		build := func() engine.Node {
			hj := &engine.HashJoin{
				Left:      &engine.Scan{Name: "L", Sch: left.Schema},
				Right:     &engine.Scan{Name: "R", Sch: right.Schema},
				LeftKeys:  []int{len(left.Cols) - 1},
				RightKeys: []int{len(right.Cols) - 1},
			}
			return &engine.Filter{Input: hj, Pred: genPred(rand.New(rand.NewSource(int64(seed)+3)), joined, 2)}
		}

		resolve := func(tables map[string]*encoding.Compressed) (*engine.Context, *engine.Context) {
			r := func(n string) (*table.Table, error) {
				ct, ok := tables[n]
				if !ok {
					return nil, fmt.Errorf("unknown table %q", n)
				}
				return ct.Table()
			}
			rc := func(n string) (*encoding.Compressed, error) {
				return tables[n], nil
			}
			return &engine.Context{Resolve: r}, &engine.Context{Resolve: r, ResolveCompressed: rc}
		}
		opts := encOptions(rng)
		lc, err := encoding.FromTable(left, opts)
		if err != nil {
			t.Fatal(err)
		}
		rcT, err := encoding.FromTable(right, opts)
		if err != nil {
			t.Fatal(err)
		}
		rowCtx, vecCtx := resolve(map[string]*encoding.Compressed{"L": lc, "R": rcT})

		want, wantErr := build().Run(rowCtx)
		st := &Stats{}
		got, gotErr := Lower(build(), st).Run(vecCtx)
		mustEqual(t, int64(seed), "join pushdown", want, got, wantErr, gotErr)
	}
}

// TestFallbackIdentical runs lowered plans without a compressed resolver:
// every kernel must fall back and still match the row engine.
func TestFallbackIdentical(t *testing.T) {
	for seed := 3000; seed < 3040; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		tbl := genTable(rng, rowCount(rng))
		pred := genPred(rng, tbl, 2)
		build := func() engine.Node {
			return &engine.Filter{Input: &engine.Scan{Name: "t", Sch: tbl.Schema}, Pred: pred}
		}
		rowCtx, _ := ctxFor(t, "t", tbl, encoding.Options{})
		want, wantErr := build().Run(rowCtx)
		st := &Stats{}
		lowered := Lower(build(), st)
		got, gotErr := lowered.Run(rowCtx) // no ResolveCompressed: forced fallback
		mustEqual(t, int64(seed), "fallback", want, got, wantErr, gotErr)
		if _, isKernel := lowered.(*FilterScan); isKernel && wantErr == nil && st.Fallbacks == 0 {
			t.Fatalf("seed %d: kernel did not record its fallback", seed)
		}
	}
}

// TestKernelStats sanity-checks the counters on a shape where every win
// should fire: dict-filtered column, RLE aggregation, skipped chunks.
func TestKernelStats(t *testing.T) {
	n := 1000
	tbl := table.New(table.NewSchema(
		table.Column{Name: "cat", Type: table.Str},
		table.Column{Name: "run", Type: table.Int},
		table.Column{Name: "payload", Type: table.Str},
	))
	for i := 0; i < n; i++ {
		cat := "hot"
		if i%2 == 0 {
			cat = fmt.Sprintf("cold%d", i%3)
		}
		if err := tbl.AppendRow(
			table.StrValue(cat),
			table.IntValue(int64(i/100)),
			table.StrValue(fmt.Sprintf("wide-payload-%d", i%4)),
		); err != nil {
			t.Fatal(err)
		}
	}
	_, vecCtx := ctxFor(t, "t", tbl, encoding.Options{ChunkRows: 100})

	pred := &engine.Bin{Op: engine.OpEq,
		L: &engine.ColRef{Idx: 0}, R: &engine.Lit{V: table.StrValue("nosuch")}}
	st := &Stats{}
	node := Lower(&engine.Filter{Input: &engine.Scan{Name: "t", Sch: tbl.Schema}, Pred: pred}, st)
	out, err := node.Run(vecCtx)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Fatalf("expected empty result, got %d rows", out.NumRows())
	}
	if st.Lowered != 1 {
		t.Fatalf("Lowered = %d, want 1", st.Lowered)
	}
	if st.CodeFilteredRows != int64(n) {
		t.Fatalf("CodeFilteredRows = %d, want %d", st.CodeFilteredRows, n)
	}
	// The predicate matched nothing: run+payload chunks must never decode.
	if st.ChunksSkipped < 20 {
		t.Fatalf("ChunksSkipped = %d, want >= 20", st.ChunksSkipped)
	}
	if st.DecodedBytes != 0 {
		t.Fatalf("DecodedBytes = %d, want 0 for an all-rejected dict filter", st.DecodedBytes)
	}

	// COUNT(*) grouped by the RLE column: consumed run-at-a-time.
	agg, err := engine.NewAggregate(&engine.Scan{Name: "t", Sch: tbl.Schema}, []int{1},
		[]engine.AggSpec{{Func: engine.AggCount, Name: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	st2 := &Stats{}
	node2 := Lower(agg, st2)
	out2, err := node2.Run(vecCtx)
	if err != nil {
		t.Fatal(err)
	}
	if out2.NumRows() != 10 {
		t.Fatalf("expected 10 groups, got %d", out2.NumRows())
	}
	if st2.DecodedBytes != 0 {
		t.Fatalf("DecodedBytes = %d, want 0 for RLE-run aggregation", st2.DecodedBytes)
	}
	if st2.DecodesAvoided == 0 {
		t.Fatal("expected DecodesAvoided > 0 for RLE-run aggregation")
	}
}

// TestAddRepeatFloatExact pins the bit-exactness contract of AddRepeat:
// repeated float addition must match the row engine even where x*n and
// x+x+...+x differ in the last ulp.
func TestAddRepeatFloatExact(t *testing.T) {
	n := 1001
	x := 0.1
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += x
	}
	if sum == x*float64(n) {
		t.Skip("platform folds repeated addition; pick another constant")
	}
	tbl := table.New(table.NewSchema(table.Column{Name: "f", Type: table.Float}))
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(table.FloatValue(x)); err != nil {
			t.Fatal(err)
		}
	}
	rowCtx, vecCtx := ctxFor(t, "t", tbl, encoding.Options{})
	build := func() engine.Node {
		agg, err := engine.NewAggregate(&engine.Scan{Name: "t", Sch: tbl.Schema}, nil,
			[]engine.AggSpec{{Func: engine.AggSum, Arg: &engine.ColRef{Idx: 0}, Name: "s"}})
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	want, err := build().Run(rowCtx)
	if err != nil {
		t.Fatal(err)
	}
	st := &Stats{}
	got, err := Lower(build(), st).Run(vecCtx)
	if err != nil {
		t.Fatal(err)
	}
	wf, gf := want.Cols[0].Floats[0], got.Cols[0].Floats[0]
	if math.Float64bits(wf) != math.Float64bits(gf) {
		t.Fatalf("SUM mismatch: row engine %v (%x), kernels %v (%x)",
			wf, math.Float64bits(wf), gf, math.Float64bits(gf))
	}
}
