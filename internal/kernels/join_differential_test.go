package kernels

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// joinCtxFor builds row/vectorized contexts resolving the given tables,
// each compressed with its own options so the two join sides can carry
// different chunk layouts.
func joinCtxFor(t *testing.T, tabs map[string]*table.Table, opts map[string]encoding.Options) (row, vec *engine.Context) {
	t.Helper()
	cts := make(map[string]*encoding.Compressed, len(tabs))
	for name, tb := range tabs {
		ct, err := encoding.FromTable(tb, opts[name])
		if err != nil {
			t.Fatalf("FromTable %q: %v", name, err)
		}
		cts[name] = ct
	}
	resolve := func(n string) (*table.Table, error) {
		ct, ok := cts[n]
		if !ok {
			return nil, fmt.Errorf("unknown table %q", n)
		}
		return ct.Table()
	}
	row = &engine.Context{Resolve: resolve}
	vec = &engine.Context{
		Resolve: resolve,
		ResolveCompressed: func(n string) (*encoding.Compressed, error) {
			return cts[n], nil
		},
	}
	return row, vec
}

// keyShapes are the generator shapes that exercise the join kernel's code
// paths: low cardinality (dict), constant (all-run RLE), sorted (delta),
// high cardinality (dict overflow to raw/delta).
var keyShapes = []colShape{shapeLowCard, shapeConst, shapeSorted, shapeHighCard}

// TestDifferentialJoinKernel: randomized HashJoin(Scan, Scan) plans across
// key types, encodings and row counts (including empty build sides and
// heavy duplicate keys) must match the row engine byte for byte, and must
// actually engage the join kernel.
func TestDifferentialJoinKernel(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	kernelRuns := 0
	for seed := 4000; seed < 4000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		nLeft, nRight := rowCount(rng), rowCount(rng)
		if rng.Intn(6) == 0 {
			nRight = 0 // empty build side
		}
		left := genTable(rng, nLeft)
		right := genTable(rng, nRight)
		// Append 1–2 typed key columns to both sides.
		nKeys := 1 + rng.Intn(2)
		var lKeys, rKeys []int
		for k := 0; k < nKeys; k++ {
			typ := table.Int
			if rng.Intn(2) == 0 {
				typ = table.Str
			}
			shape := keyShapes[rng.Intn(len(keyShapes))]
			left.Schema.Cols = append(left.Schema.Cols, table.Column{Name: fmt.Sprintf("lk%d", k), Type: typ})
			left.Cols = append(left.Cols, genVector(rng, typ, shape, nLeft))
			right.Schema.Cols = append(right.Schema.Cols, table.Column{Name: fmt.Sprintf("rk%d", k), Type: typ})
			right.Cols = append(right.Cols, genVector(rng, typ, keyShapes[rng.Intn(len(keyShapes))], nRight))
			lKeys = append(lKeys, len(left.Cols)-1)
			rKeys = append(rKeys, len(right.Cols)-1)
		}
		build := func() engine.Node {
			return &engine.HashJoin{
				Left:      &engine.Scan{Name: "L", Sch: left.Schema},
				Right:     &engine.Scan{Name: "R", Sch: right.Schema},
				LeftKeys:  lKeys,
				RightKeys: rKeys,
			}
		}
		opts := map[string]encoding.Options{"L": encOptions(rng), "R": encOptions(rng)}
		rowCtx, vecCtx := joinCtxFor(t, map[string]*table.Table{"L": left, "R": right}, opts)

		want, wantErr := build().Run(rowCtx)
		st := &Stats{}
		lowered := Lower(build(), st)
		if _, ok := lowered.(*HashJoinScan); ok {
			kernelRuns++
		}
		got, gotErr := lowered.Run(vecCtx)
		mustEqual(t, int64(seed), "join kernel", want, got, wantErr, gotErr)
	}
	if kernelRuns == 0 {
		t.Fatal("no iteration lowered onto the join kernel")
	}
}

// TestDifferentialJoinWithSidePredicates combines the join kernel with
// pushed-down one-sided filters: Filter(HashJoin(Scan, Scan)) where the
// conjuncts reference the key and non-key columns of either side.
func TestDifferentialJoinWithSidePredicates(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for seed := 5000; seed < 5000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		nLeft, nRight := rowCount(rng), rowCount(rng)
		left := genTable(rng, nLeft)
		right := genTable(rng, nRight)
		lk := genVector(rng, table.Str, shapeLowCard, nLeft)
		rk := genVector(rng, table.Str, shapeLowCard, nRight)
		left.Schema.Cols = append(left.Schema.Cols, table.Column{Name: "lk", Type: table.Str})
		left.Cols = append(left.Cols, lk)
		right.Schema.Cols = append(right.Schema.Cols, table.Column{Name: "rk", Type: table.Str})
		right.Cols = append(right.Cols, rk)

		joined := &table.Table{}
		joined.Schema.Cols = append(joined.Schema.Cols, left.Schema.Cols...)
		joined.Schema.Cols = append(joined.Schema.Cols, right.Schema.Cols...)
		joined.Cols = append(joined.Cols, left.Cols...)
		joined.Cols = append(joined.Cols, right.Cols...)

		build := func() engine.Node {
			hj := &engine.HashJoin{
				Left:      &engine.Scan{Name: "L", Sch: left.Schema},
				Right:     &engine.Scan{Name: "R", Sch: right.Schema},
				LeftKeys:  []int{len(left.Cols) - 1},
				RightKeys: []int{len(right.Cols) - 1},
			}
			return &engine.Filter{Input: hj, Pred: genPred(rand.New(rand.NewSource(int64(seed)+11)), joined, 2)}
		}
		opts := map[string]encoding.Options{"L": encOptions(rng), "R": encOptions(rng)}
		rowCtx, vecCtx := joinCtxFor(t, map[string]*table.Table{"L": left, "R": right}, opts)
		want, wantErr := build().Run(rowCtx)
		st := &Stats{}
		got, gotErr := Lower(build(), st).Run(vecCtx)
		mustEqual(t, int64(seed), "join with side predicates", want, got, wantErr, gotErr)
	}
}

// TestJoinFloatKeysFallBack pins the float-key contract: the kernel
// declines float join keys, and the row-engine path it falls back to now
// matches -0.0 with 0.0 and buckets NaNs together — with identical results
// whether or not the plan went through Lower.
func TestJoinFloatKeysFallBack(t *testing.T) {
	negZero := math.Copysign(0, -1)
	nan := math.NaN()
	mk := func(vals ...float64) *table.Table {
		tb := table.New(table.NewSchema(
			table.Column{Name: "k", Type: table.Float},
			table.Column{Name: "tag", Type: table.Int},
		))
		for i, f := range vals {
			if err := tb.AppendRow(table.FloatValue(f), table.IntValue(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		return tb
	}
	left := mk(negZero, nan, 1.25, 7)
	right := mk(0.0, negZero, nan, 1.25)
	build := func() engine.Node {
		return &engine.HashJoin{
			Left:      &engine.Scan{Name: "L", Sch: left.Schema},
			Right:     &engine.Scan{Name: "R", Sch: right.Schema},
			LeftKeys:  []int{0},
			RightKeys: []int{0},
		}
	}
	opts := map[string]encoding.Options{"L": {}, "R": {}}
	rowCtx, vecCtx := joinCtxFor(t, map[string]*table.Table{"L": left, "R": right}, opts)

	st := &Stats{}
	lowered := Lower(build(), st)
	if _, isKernel := lowered.(*HashJoinScan); isKernel {
		t.Fatal("float join keys must not lower onto the code-space kernel")
	}
	want, wantErr := build().Run(rowCtx)
	got, gotErr := lowered.Run(vecCtx)
	mustEqual(t, 0, "float-key join", want, got, wantErr, gotErr)
	// -0.0 matches both 0.0 and -0.0, NaN matches NaN, 1.25 matches 1.25.
	if want.NumRows() != 4 {
		t.Fatalf("float-key join rows = %d, want 4", want.NumRows())
	}
}

// TestDifferentialProject: projections that drop/permute/duplicate columns
// (optionally over a filter) must pass chunks through byte-identically, and
// computed projections must keep the row engine.
func TestDifferentialProject(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	passthroughs := 0
	for seed := 6000; seed < 6000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		tbl := genTable(rng, rowCount(rng))
		nOut := 1 + rng.Intn(len(tbl.Cols)+1)
		var exprs []engine.Expr
		var names []string
		for k := 0; k < nOut; k++ {
			c := rng.Intn(len(tbl.Cols))
			var e engine.Expr = &engine.ColRef{Idx: c, Name: tbl.Schema.Cols[c].Name}
			if rng.Intn(5) == 0 && tbl.Schema.Cols[c].Type != table.Str {
				// A computed column: blocks the passthrough, exercising the
				// decline path.
				e = &engine.Bin{Op: engine.OpAdd, L: e, R: &engine.Lit{V: table.IntValue(1)}}
			}
			exprs = append(exprs, e)
			names = append(names, fmt.Sprintf("o%d", k))
		}
		withFilter := rng.Intn(2) == 0
		build := func() (engine.Node, error) {
			var in engine.Node = &engine.Scan{Name: "t", Sch: tbl.Schema}
			if withFilter {
				in = &engine.Filter{Input: in, Pred: genPred(rand.New(rand.NewSource(int64(seed)+5)), tbl, 1)}
			}
			return engine.NewProject(in, exprs, names)
		}
		plain, err := build()
		if err != nil {
			continue
		}
		loweredSrc, err := build()
		if err != nil {
			t.Fatalf("seed %d: second build failed: %v", seed, err)
		}
		rowCtx, vecCtx := ctxFor(t, "t", tbl, encOptions(rng))
		want, wantErr := plain.Run(rowCtx)
		st := &Stats{}
		lowered := Lower(loweredSrc, st)
		if _, ok := lowered.(*ProjectScan); ok {
			passthroughs++
		}
		got, gotErr := lowered.Run(vecCtx)
		mustEqual(t, int64(seed), "project", want, got, wantErr, gotErr)
	}
	if passthroughs == 0 {
		t.Fatal("no iteration lowered onto the project passthrough")
	}
}

// TestJoinKernelFallbackWithoutChunks: a lowered join without a compressed
// resolver must fall back to the row engine, record it, and still match.
func TestJoinKernelFallbackWithoutChunks(t *testing.T) {
	for seed := 7000; seed < 7030; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		nLeft, nRight := rowCount(rng), rowCount(rng)
		left := genTable(rng, nLeft)
		right := genTable(rng, nRight)
		lk := genVector(rng, table.Int, shapeLowCard, nLeft)
		rk := genVector(rng, table.Int, shapeLowCard, nRight)
		left.Schema.Cols = append(left.Schema.Cols, table.Column{Name: "lk", Type: table.Int})
		left.Cols = append(left.Cols, lk)
		right.Schema.Cols = append(right.Schema.Cols, table.Column{Name: "rk", Type: table.Int})
		right.Cols = append(right.Cols, rk)
		build := func() engine.Node {
			return &engine.HashJoin{
				Left:      &engine.Scan{Name: "L", Sch: left.Schema},
				Right:     &engine.Scan{Name: "R", Sch: right.Schema},
				LeftKeys:  []int{len(left.Cols) - 1},
				RightKeys: []int{len(right.Cols) - 1},
			}
		}
		rowCtx, _ := joinCtxFor(t, map[string]*table.Table{"L": left, "R": right},
			map[string]encoding.Options{"L": {}, "R": {}})
		want, wantErr := build().Run(rowCtx)
		st := &Stats{}
		lowered := Lower(build(), st)
		got, gotErr := lowered.Run(rowCtx) // no ResolveCompressed: forced fallback
		mustEqual(t, int64(seed), "join fallback", want, got, wantErr, gotErr)
		if _, isKernel := lowered.(*HashJoinScan); isKernel && wantErr == nil && st.Fallbacks == 0 {
			t.Fatalf("seed %d: join kernel did not record its fallback", seed)
		}
	}
}

// TestJoinKernelStats checks the new counters on a join where the
// dictionary intersection drops most probe rows before any decode.
func TestJoinKernelStats(t *testing.T) {
	n := 1000
	left := table.New(table.NewSchema(
		table.Column{Name: "k", Type: table.Str},
		table.Column{Name: "payload", Type: table.Str},
	))
	for i := 0; i < n; i++ {
		// 10 distinct keys; only "key0" exists on the build side. The
		// payload is low-cardinality so it dict-encodes and only surviving
		// rows late-materialize.
		if err := left.AppendRow(
			table.StrValue(fmt.Sprintf("key%d", i%10)),
			table.StrValue(fmt.Sprintf("wide-left-payload-%d", i%7)),
		); err != nil {
			t.Fatal(err)
		}
	}
	right := table.New(table.NewSchema(
		table.Column{Name: "k", Type: table.Str},
		table.Column{Name: "label", Type: table.Str},
	))
	if err := right.AppendRow(table.StrValue("key0"), table.StrValue("hit")); err != nil {
		t.Fatal(err)
	}
	build := func() engine.Node {
		return &engine.HashJoin{
			Left:      &engine.Scan{Name: "L", Sch: left.Schema},
			Right:     &engine.Scan{Name: "R", Sch: right.Schema},
			LeftKeys:  []int{0},
			RightKeys: []int{0},
		}
	}
	opts := map[string]encoding.Options{"L": {ChunkRows: 100}, "R": {}}
	rowCtx, vecCtx := joinCtxFor(t, map[string]*table.Table{"L": left, "R": right}, opts)

	st := &Stats{}
	lowered := Lower(build(), st)
	if _, ok := lowered.(*HashJoinScan); !ok {
		t.Fatalf("plan did not lower onto the join kernel: %s", lowered)
	}
	got, err := lowered.Run(vecCtx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := build().Run(rowCtx)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() || got.NumRows() != n/10 {
		t.Fatalf("join rows = %d, want %d", got.NumRows(), n/10)
	}
	if st.JoinBuildRows != 1 {
		t.Fatalf("JoinBuildRows = %d, want 1", st.JoinBuildRows)
	}
	if st.JoinProbeRows != int64(n) {
		t.Fatalf("JoinProbeRows = %d, want %d", st.JoinProbeRows, n)
	}
	// 9 of 10 keys miss the build dictionary: the left payload chunks only
	// materialize the surviving tenth, so the kernel must move far fewer
	// bytes than a full decode of the left table.
	if st.DecodedBytes >= left.ByteSize()/2 {
		t.Fatalf("DecodedBytes = %d, want well under the %d-byte full decode",
			st.DecodedBytes, left.ByteSize())
	}
}

// TestDifferentialProjectOverJoin fuses a columns-only projection into the
// join kernel: randomized drop/duplicate/permute projections over
// HashJoin(Scan, Scan) must stay byte-identical, and the fusion must fire.
func TestDifferentialProjectOverJoin(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	fused := 0
	for seed := 8000; seed < 8000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		nLeft, nRight := rowCount(rng), rowCount(rng)
		left := genTable(rng, nLeft)
		right := genTable(rng, nRight)
		typ := table.Int
		if rng.Intn(2) == 0 {
			typ = table.Str
		}
		left.Schema.Cols = append(left.Schema.Cols, table.Column{Name: "lk", Type: typ})
		left.Cols = append(left.Cols, genVector(rng, typ, keyShapes[rng.Intn(len(keyShapes))], nLeft))
		right.Schema.Cols = append(right.Schema.Cols, table.Column{Name: "rk", Type: typ})
		right.Cols = append(right.Cols, genVector(rng, typ, keyShapes[rng.Intn(len(keyShapes))], nRight))

		joinedW := len(left.Cols) + len(right.Cols)
		nOut := 1 + rng.Intn(joinedW)
		var exprs []engine.Expr
		var names []string
		for k := 0; k < nOut; k++ {
			c := rng.Intn(joinedW)
			exprs = append(exprs, &engine.ColRef{Idx: c})
			names = append(names, fmt.Sprintf("o%d", k))
		}
		build := func() (engine.Node, error) {
			hj := &engine.HashJoin{
				Left:      &engine.Scan{Name: "L", Sch: left.Schema},
				Right:     &engine.Scan{Name: "R", Sch: right.Schema},
				LeftKeys:  []int{len(left.Cols) - 1},
				RightKeys: []int{len(right.Cols) - 1},
			}
			return engine.NewProject(hj, exprs, names)
		}
		opts := map[string]encoding.Options{"L": encOptions(rng), "R": encOptions(rng)}
		rowCtx, vecCtx := joinCtxFor(t, map[string]*table.Table{"L": left, "R": right}, opts)
		plain, err := build()
		if err != nil {
			t.Fatal(err)
		}
		loweredSrc, err := build()
		if err != nil {
			t.Fatal(err)
		}
		want, wantErr := plain.Run(rowCtx)
		st := &Stats{}
		lowered := Lower(loweredSrc, st)
		if js, ok := lowered.(*HashJoinScan); ok && js.Proj != nil {
			fused++
		}
		got, gotErr := lowered.Run(vecCtx)
		mustEqual(t, int64(seed), "project over join", want, got, wantErr, gotErr)
	}
	if fused == 0 {
		t.Fatal("no iteration fused the projection into the join kernel")
	}
}

// TestStackedFilterPushdownThroughDissolvedFilter: when an inner filter
// fully pushes its conjuncts below a join and dissolves, the join resurfaces
// as the outer filter's direct input — the outer filter must still push
// down. (Float keys keep the join itself on the row engine, isolating the
// pushdown behavior.)
func TestStackedFilterPushdownThroughDissolvedFilter(t *testing.T) {
	left := table.New(table.NewSchema(
		table.Column{Name: "lk", Type: table.Float},
		table.Column{Name: "x", Type: table.Int},
	))
	right := table.New(table.NewSchema(
		table.Column{Name: "rk", Type: table.Float},
		table.Column{Name: "y", Type: table.Int},
	))
	for i := 0; i < 50; i++ {
		if err := left.AppendRow(table.FloatValue(float64(i%5)), table.IntValue(int64(i-25))); err != nil {
			t.Fatal(err)
		}
		if err := right.AppendRow(table.FloatValue(float64(i%5)), table.IntValue(int64(25-i))); err != nil {
			t.Fatal(err)
		}
	}
	build := func() engine.Node {
		hj := &engine.HashJoin{
			Left:      &engine.Scan{Name: "L", Sch: left.Schema},
			Right:     &engine.Scan{Name: "R", Sch: right.Schema},
			LeftKeys:  []int{0},
			RightKeys: []int{0},
		}
		inner := &engine.Filter{Input: hj, Pred: &engine.Bin{ // right-side only
			Op: engine.OpGt, L: &engine.ColRef{Idx: 3}, R: &engine.Lit{V: table.IntValue(0)}}}
		return &engine.Filter{Input: inner, Pred: &engine.Bin{ // left-side only
			Op: engine.OpGt, L: &engine.ColRef{Idx: 1}, R: &engine.Lit{V: table.IntValue(0)}}}
	}
	st := &Stats{}
	lowered := Lower(build(), st)
	hj, ok := lowered.(*engine.HashJoin)
	if !ok {
		t.Fatalf("lowered root is %T, want the bare row HashJoin (both filters pushed down)", lowered)
	}
	if _, ok := hj.Left.(*FilterScan); !ok {
		t.Fatalf("outer filter was not pushed into the left side: %s", hj.Left)
	}
	if _, ok := hj.Right.(*FilterScan); !ok {
		t.Fatalf("inner filter was not pushed into the right side: %s", hj.Right)
	}
	opts := map[string]encoding.Options{"L": {ChunkRows: 16}, "R": {ChunkRows: 16}}
	rowCtx, vecCtx := joinCtxFor(t, map[string]*table.Table{"L": left, "R": right}, opts)
	want, wantErr := build().Run(rowCtx)
	got, gotErr := lowered.Run(vecCtx)
	mustEqual(t, 0, "stacked filter pushdown", want, got, wantErr, gotErr)
}
