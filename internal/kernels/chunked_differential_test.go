package kernels

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/shortcircuit-db/sc/internal/chunkio"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// withKey appends a typed join-key column to a generated table.
func withKey(rng *rand.Rand, tb *table.Table, name string, typ table.Type, n int) int {
	tb.Schema.Cols = append(tb.Schema.Cols, table.Column{Name: name, Type: typ})
	tb.Cols = append(tb.Cols, genVector(rng, typ, keyShapes[rng.Intn(len(keyShapes))], n))
	return len(tb.Cols) - 1
}

// decodeChunked runs op in chunked-output mode and materializes the result
// whichever way it came back.
func decodeChunked(t *testing.T, op ChunkedOp, ctx *engine.Context) (*table.Table, error) {
	t.Helper()
	ct, tb, err := op.RunChunked(ctx)
	if err != nil {
		return nil, err
	}
	if ct == nil {
		return tb, nil
	}
	if err := ct.Validate(); err != nil {
		t.Fatalf("chunked output invalid: %v", err)
	}
	if ct.RowGroups() == nil {
		t.Fatal("chunked output has misaligned row groups")
	}
	return ct.Table()
}

// TestDifferentialJoinOverJoin: randomized two-level join trees —
// HashJoin(HashJoin(A, B), C), sometimes under a columns-only projection —
// must match the row engine byte for byte, both through the materializing
// Run and through RunChunked, and the outer join must consume the inner
// one as a chunked side (no row-engine fallback) whenever it lowered.
func TestDifferentialJoinOverJoin(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	innerSides, chunkedRuns := 0, 0
	for seed := 9000; seed < 9000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		nA, nB, nC := rowCount(rng), rowCount(rng), rowCount(rng)
		a, b, c := genTable(rng, nA), genTable(rng, nB), genTable(rng, nC)
		typ := table.Int
		if rng.Intn(2) == 0 {
			typ = table.Str
		}
		ka := withKey(rng, a, "ka", typ, nA)
		kb := withKey(rng, b, "kb", typ, nB)
		kc := withKey(rng, c, "kc", typ, nC)
		// Random choices are drawn once so every build() yields the same plan.
		project := rng.Intn(3) == 0
		joinedW := a.Schema.NumCols() + b.Schema.NumCols() + c.Schema.NumCols()
		var projIdx []int
		for k := 0; k < 1+rng.Intn(4); k++ {
			projIdx = append(projIdx, rng.Intn(joinedW))
		}

		build := func() engine.Node {
			inner := &engine.HashJoin{
				Left:      &engine.Scan{Name: "A", Sch: a.Schema},
				Right:     &engine.Scan{Name: "B", Sch: b.Schema},
				LeftKeys:  []int{ka},
				RightKeys: []int{kb},
			}
			outer := &engine.HashJoin{
				Left:      inner,
				Right:     &engine.Scan{Name: "C", Sch: c.Schema},
				LeftKeys:  []int{ka}, // A's key within the joined schema
				RightKeys: []int{kc},
			}
			if !project {
				return outer
			}
			joined := outer.Schema()
			var exprs []engine.Expr
			var names []string
			for k, idx := range projIdx {
				exprs = append(exprs, &engine.ColRef{Idx: idx, Name: joined.Cols[idx].Name})
				names = append(names, fmt.Sprintf("o%d", k))
			}
			pr, err := engine.NewProject(outer, exprs, names)
			if err != nil {
				t.Fatalf("seed %d: NewProject: %v", seed, err)
			}
			return pr
		}
		opts := map[string]encoding.Options{"A": encOptions(rng), "B": encOptions(rng), "C": encOptions(rng)}
		rowCtx, vecCtx := joinCtxFor(t, map[string]*table.Table{"A": a, "B": b, "C": c}, opts)

		want, wantErr := build().Run(rowCtx)
		st := &Stats{}
		lowered := Lower(build(), st)
		if js, ok := lowered.(*HashJoinScan); ok && js.Left.Inner != nil {
			innerSides++
		}
		got, gotErr := lowered.Run(vecCtx)
		mustEqual(t, int64(seed), "join-over-join Run", want, got, wantErr, gotErr)

		if co, ok := lowered.(ChunkedOp); ok && wantErr == nil {
			st2 := &Stats{}
			lowered2 := Lower(build(), st2)
			got2, gotErr2 := decodeChunked(t, lowered2.(ChunkedOp), vecCtx)
			mustEqual(t, int64(seed), "join-over-join RunChunked", want, got2, wantErr, gotErr2)
			if st2.Fallbacks != 0 {
				t.Fatalf("seed %d: chunked join tree fell back %d times with fully chunked inputs", seed, st2.Fallbacks)
			}
			chunkedRuns++
			_ = co
		}
	}
	if innerSides == 0 {
		t.Fatal("no iteration composed a join over a join's chunked output")
	}
	if chunkedRuns == 0 {
		t.Fatal("no iteration exercised RunChunked on the join tree")
	}
}

// TestDifferentialAggOverJoin: Aggregate(HashJoin(A, B)) lowers onto
// AggScan consuming the join's chunked output and must match the row
// engine byte for byte.
func TestDifferentialAggOverJoin(t *testing.T) {
	iters := 150
	if testing.Short() {
		iters = 30
	}
	aggOverJoin := 0
	for seed := 11000; seed < 11000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		nA, nB := rowCount(rng), rowCount(rng)
		a, b := genTable(rng, nA), genTable(rng, nB)
		ka := withKey(rng, a, "ka", table.Str, nA)
		kb := withKey(rng, b, "kb", table.Str, nB)

		build := func() engine.Node {
			hj := &engine.HashJoin{
				Left:      &engine.Scan{Name: "A", Sch: a.Schema},
				Right:     &engine.Scan{Name: "B", Sch: b.Schema},
				LeftKeys:  []int{ka},
				RightKeys: []int{kb},
			}
			joined := hj.Schema()
			// Group by the key, count rows, and sum the first numeric column
			// when one exists.
			aggs := []engine.AggSpec{{Func: engine.AggCount, Name: "n"}}
			for idx, col := range joined.Cols {
				if col.Type == table.Int || col.Type == table.Float {
					aggs = append(aggs, engine.AggSpec{
						Func: engine.AggSum, Arg: &engine.ColRef{Idx: idx, Name: col.Name}, Name: "s",
					})
					break
				}
			}
			agg, err := engine.NewAggregate(hj, []int{ka}, aggs)
			if err != nil {
				t.Fatalf("seed %d: NewAggregate: %v", seed, err)
			}
			return agg
		}
		opts := map[string]encoding.Options{"A": encOptions(rng), "B": encOptions(rng)}
		rowCtx, vecCtx := joinCtxFor(t, map[string]*table.Table{"A": a, "B": b}, opts)

		want, wantErr := build().Run(rowCtx)
		st := &Stats{}
		lowered := Lower(build(), st)
		if as, ok := lowered.(*AggScan); ok && as.Inner != nil {
			aggOverJoin++
		}
		got, gotErr := lowered.Run(vecCtx)
		mustEqual(t, int64(seed), "agg over join", want, got, wantErr, gotErr)
	}
	if aggOverJoin == 0 {
		t.Fatal("no iteration aggregated a join's chunked output")
	}
}

// TestDifferentialChunkedFilterProject: FilterScan and ProjectScan chunked
// output must decode to exactly what their materializing Run returns.
func TestDifferentialChunkedFilterProject(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	chunked := 0
	for seed := 13000; seed < 13000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		tbl := genTable(rng, rowCount(rng))
		pred := genPred(rng, tbl, 2)
		// Random choices are drawn once so every build() yields the same plan.
		project := rng.Intn(2) == 0
		var projIdx []int
		for k := 0; k < 1+rng.Intn(3); k++ {
			projIdx = append(projIdx, rng.Intn(tbl.Schema.NumCols()))
		}
		build := func() engine.Node {
			var n engine.Node = &engine.Filter{
				Input: &engine.Scan{Name: "T", Sch: tbl.Schema},
				Pred:  pred,
			}
			if project {
				sch := tbl.Schema
				var exprs []engine.Expr
				var names []string
				for k, idx := range projIdx {
					exprs = append(exprs, &engine.ColRef{Idx: idx, Name: sch.Cols[idx].Name})
					names = append(names, fmt.Sprintf("o%d", k))
				}
				pr, err := engine.NewProject(n, exprs, names)
				if err != nil {
					t.Fatalf("seed %d: NewProject: %v", seed, err)
				}
				n = pr
			}
			return n
		}
		shape := build()
		opts := map[string]encoding.Options{"T": encOptions(rng)}
		rowCtx, vecCtx := joinCtxFor(t, map[string]*table.Table{"T": tbl}, opts)
		want, wantErr := shape.Run(rowCtx)
		st := &Stats{}
		lowered := Lower(build(), st)
		co, ok := lowered.(ChunkedOp)
		if !ok {
			continue // predicate or projection did not compile; covered elsewhere
		}
		got, gotErr := decodeChunked(t, co, vecCtx)
		mustEqual(t, int64(seed), "chunked filter/project", want, got, wantErr, gotErr)
		chunked++
	}
	if chunked == 0 {
		t.Fatal("no iteration produced chunked output")
	}
}

// TestChunkedDictReuseAcrossRuns: running the same lowered plan twice with
// one session must serve the second run's dictionaries from the first.
func TestChunkedDictReuseAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 400
	tbl := genTable(rng, n)
	key := &table.Vector{Type: table.Str}
	for i := 0; i < n; i++ {
		key.Strs = append(key.Strs, fmt.Sprintf("cat%d", i%6))
	}
	tbl.Schema.Cols = append(tbl.Schema.Cols, table.Column{Name: "k", Type: table.Str})
	tbl.Cols = append(tbl.Cols, key)
	// A partial selection: surviving rows gather through the builder's
	// code space (a full selection would pass chunks through untouched,
	// never exercising the dictionaries).
	pred := &engine.Bin{
		Op: engine.OpNe,
		L:  &engine.ColRef{Idx: len(tbl.Cols) - 1, Name: "k"},
		R:  &engine.Lit{V: table.StrValue("cat0")},
	}
	sess := chunkio.NewSession()
	run := func() *Stats {
		sess.BeginRun()
		st := &Stats{}
		env := &Env{Session: sess, Node: "mv", Opts: encoding.Options{ChunkRows: 64}}
		lowered := LowerEnv(&engine.Filter{
			Input: &engine.Scan{Name: "T", Sch: tbl.Schema},
			Pred:  pred,
		}, st, env)
		_, vecCtx := joinCtxFor(t, map[string]*table.Table{"T": tbl}, map[string]encoding.Options{"T": {ChunkRows: 64}})
		co, ok := lowered.(ChunkedOp)
		if !ok {
			t.Fatal("filter did not lower")
		}
		if _, err := decodeChunked(t, co, vecCtx); err != nil {
			t.Fatal(err)
		}
		return st
	}
	run() // warm: derives this plan's dictionaries
	second := run()
	if second.DictReused == 0 {
		t.Fatalf("second run stats = %+v: expected dictionary reuse from the session cache", second)
	}
}
