package kernels

import (
	"fmt"

	"github.com/shortcircuit-db/sc/internal/chunkio"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// This file implements the chunked-output mode of the scan-shaped kernels:
// instead of materializing a *table.Table, FilterScan and ProjectScan can
// emit their result as encoding.Compressed chunks through a chunkio.Builder
// — full-selection row groups pass through verbatim, partial selections
// gather dictionary codes or RLE runs in code space, and only chunks with
// no cheaper path decode and re-encode. A downstream kernel (a join probing
// this output, the controller storing it) then consumes the chunks without
// the encode-from-rows round trip.

// appendColumn appends the selected rows of one source column to the
// builder's output column dst, in the cheapest space the chunk's encoding
// allows. sel lists selected local rows ascending; nil selects every row.
func appendColumn(b *chunkio.Builder, cc *chunkCtx, dst, src int, sel []int32) error {
	cs, err := cc.parse(src)
	if err != nil {
		return err
	}
	switch {
	case cs.vec != nil:
		return b.AppendVector(dst, cs.vec, sel)
	case cs.dict != nil:
		return b.AppendDict(dst, cs.dict, sel)
	case cs.runs != nil:
		return b.AppendRuns(dst, cs.runs, sel)
	default:
		vec, err := cc.vector(src) // counts the decode, as the gather path does
		if err != nil {
			return err
		}
		return b.AppendVector(dst, vec, sel)
	}
}

// RunChunked implements ChunkedOp: the filter's surviving rows leave as
// compressed chunks. Row groups the predicate passes whole are reused
// verbatim; partially selected groups gather codes, runs or values per
// column.
func (f *FilterScan) RunChunked(ctx *engine.Context) (*encoding.Compressed, *table.Table, error) {
	ct, groups := resolveChunked(ctx, f.Scan)
	if ct == nil {
		f.St.Fallbacks++
		t, err := f.Orig.Run(ctx)
		return nil, t, err
	}
	// Predicate evaluation and chunk parsing partition across borrowed
	// tokens; builder emission below stays serial in group order (the
	// builder and its session dictionaries are single-threaded), so the
	// output bytes match the serial walk exactly.
	pp := planPartitions(ctx, ct, groups)
	nparts := 1
	if pp != nil {
		nparts = len(pp.parts)
	}
	sts := make([]Stats, nparts)
	pre, err := prepass(pp, ct, groups, f.Pred, sts)
	if err != nil {
		foldStats(f.St, sts)
		return nil, nil, fmt.Errorf("kernels: filter %q: %w", f.Scan.Name, err)
	}
	b := f.Env.builderFor(f.Scan.Sch, f.ID)
	for g, rows := range groups {
		cc, sel := pre[g].cc, pre[g].sel
		switch {
		case sel.none():
			// Nothing survives: no column beyond the predicate's is touched.
		case sel.all():
			if err := b.PassGroup(func(ci int) encoding.Chunk { return cc.chunk(ci) }, rows); err != nil {
				foldStats(f.St, sts)
				return nil, nil, fmt.Errorf("kernels: filter %q: %w", f.Scan.Name, err)
			}
			for ci := range cc.cols {
				cc.markPassed(ci)
			}
		default:
			idxs := sel.indexes()
			for ci := range cc.cols {
				if err := appendColumn(b, cc, ci, ci, idxs); err != nil {
					foldStats(f.St, sts)
					return nil, nil, fmt.Errorf("kernels: filter %q: %w", f.Scan.Name, err)
				}
			}
			if err := b.FlushFull(); err != nil {
				foldStats(f.St, sts)
				return nil, nil, fmt.Errorf("kernels: filter %q: %w", f.Scan.Name, err)
			}
		}
		cc.finish()
	}
	foldStats(f.St, sts)
	out, err := b.Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("kernels: filter %q: %w", f.Scan.Name, err)
	}
	f.St.addBuilder(b.Counters)
	return out, nil, nil
}

// RunChunked implements ChunkedOp: projected columns leave as compressed
// chunks — dropped columns are never touched, and without a filter the kept
// columns pass through without even a parse.
func (p *ProjectScan) RunChunked(ctx *engine.Context) (*encoding.Compressed, *table.Table, error) {
	ct, groups := resolveChunked(ctx, p.Scan)
	if ct == nil {
		p.St.Fallbacks++
		t, err := p.Orig.Run(ctx)
		return nil, t, err
	}
	// Without a filter every kept group passes through untouched — there is
	// no per-group work worth borrowing tokens for.
	var pp *partPlan
	if p.Pred != nil {
		pp = planPartitions(ctx, ct, groups)
	}
	nparts := 1
	if pp != nil {
		nparts = len(pp.parts)
	}
	sts := make([]Stats, nparts)
	pre, err := prepass(pp, ct, groups, p.Pred, sts)
	if err != nil {
		foldStats(p.St, sts)
		return nil, nil, fmt.Errorf("kernels: project %q: %w", p.Scan.Name, err)
	}
	b := p.Env.builderFor(p.Sch, p.ID)
	for g, rows := range groups {
		cc, sel := pre[g].cc, pre[g].sel
		var idxs []int32
		if sel != nil {
			if sel.none() {
				cc.finish()
				continue
			}
			if !sel.all() {
				idxs = sel.indexes()
			}
		}
		if idxs == nil {
			err := b.PassGroup(func(oc int) encoding.Chunk { return cc.chunk(p.Cols[oc]) }, rows)
			if err != nil {
				foldStats(p.St, sts)
				return nil, nil, fmt.Errorf("kernels: project %q: %w", p.Scan.Name, err)
			}
			for _, ic := range p.Cols {
				cc.markPassed(ic)
			}
		} else {
			for oc, ic := range p.Cols {
				if err := appendColumn(b, cc, oc, ic, idxs); err != nil {
					foldStats(p.St, sts)
					return nil, nil, fmt.Errorf("kernels: project %q: %w", p.Scan.Name, err)
				}
			}
			if err := b.FlushFull(); err != nil {
				foldStats(p.St, sts)
				return nil, nil, fmt.Errorf("kernels: project %q: %w", p.Scan.Name, err)
			}
		}
		cc.finish()
	}
	foldStats(p.St, sts)
	out, err := b.Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("kernels: project %q: %w", p.Scan.Name, err)
	}
	p.St.addBuilder(b.Counters)
	return out, nil, nil
}
