package kernels

import (
	"fmt"
	"sort"
	"strings"

	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// Pred is a compiled predicate: a boolean combination of single-column
// comparisons against literals. Compilation proves the predicate can never
// fail at evaluation time (every leaf is type-compatible), which is what
// lets the kernels reorder and short-circuit work freely — and what keeps
// join pushdown byte-identical to the row engine's left-to-right,
// short-circuit evaluation.
type Pred struct {
	kind predKind
	kids []*Pred // and/or/not operands

	// leaf fields
	col  int
	cmp  cmpOp
	lits []table.Value // one literal for comparisons, the list for IN
}

type predKind uint8

const (
	predLeaf predKind = iota
	predAnd
	predOr
	predNot
)

// cmpOp enumerates leaf comparison operators.
type cmpOp uint8

const (
	cmpEq cmpOp = iota
	cmpNe
	cmpLt
	cmpLe
	cmpGt
	cmpGe
	cmpIn
)

var cmpNames = map[cmpOp]string{
	cmpEq: "=", cmpNe: "<>", cmpLt: "<", cmpLe: "<=", cmpGt: ">", cmpGe: ">=", cmpIn: "IN",
}

// flip mirrors a comparison for swapped operands (lit <op> col → col <op'> lit).
func (op cmpOp) flip() cmpOp {
	switch op {
	case cmpLt:
		return cmpGt
	case cmpLe:
		return cmpGe
	case cmpGt:
		return cmpLt
	case cmpGe:
		return cmpLe
	default: // eq, ne are symmetric
		return op
	}
}

// String renders the predicate for plan display.
func (p *Pred) String() string {
	switch p.kind {
	case predAnd, predOr:
		op := " AND "
		if p.kind == predOr {
			op = " OR "
		}
		parts := make([]string, len(p.kids))
		for i, k := range p.kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, op) + ")"
	case predNot:
		return fmt.Sprintf("(NOT %s)", p.kids[0])
	default:
		if p.cmp == cmpIn {
			return fmt.Sprintf("($%d IN [%d items])", p.col, len(p.lits))
		}
		return fmt.Sprintf("($%d %s %s)", p.col, cmpNames[p.cmp], p.lits[0])
	}
}

// Compile translates an engine predicate into kernel form. It returns
// false when the expression contains anything beyond and/or/not over
// column-vs-literal comparisons and IN lists, or when a leaf could error
// at runtime (string compared with a number) — those run on the row
// engine, which preserves the error behavior exactly.
func Compile(e engine.Expr, sch table.Schema) (*Pred, bool) {
	switch v := e.(type) {
	case *engine.Bin:
		if v.Op == engine.OpAnd || v.Op == engine.OpOr {
			l, ok := Compile(v.L, sch)
			if !ok {
				return nil, false
			}
			r, ok := Compile(v.R, sch)
			if !ok {
				return nil, false
			}
			kind := predAnd
			if v.Op == engine.OpOr {
				kind = predOr
			}
			return &Pred{kind: kind, kids: []*Pred{l, r}}, true
		}
		if !v.Op.IsComparison() {
			return nil, false
		}
		op, okOp := cmpFor(v.Op)
		if !okOp {
			return nil, false
		}
		if col, lit, ok := colLit(v.L, v.R); ok {
			return leaf(col, op, lit, sch)
		}
		if col, lit, ok := colLit(v.R, v.L); ok {
			return leaf(col, op.flip(), lit, sch)
		}
		return nil, false
	case *engine.Not:
		inner, ok := Compile(v.E, sch)
		if !ok {
			return nil, false
		}
		return &Pred{kind: predNot, kids: []*Pred{inner}}, true
	case *engine.InList:
		cr, ok := v.E.(*engine.ColRef)
		if !ok || cr.Idx < 0 || cr.Idx >= sch.NumCols() {
			return nil, false
		}
		ct := sch.Cols[cr.Idx].Type
		for _, item := range v.List {
			if !comparable(ct, item.Type) {
				return nil, false
			}
		}
		return &Pred{kind: predLeaf, col: cr.Idx, cmp: cmpIn, lits: v.List}, true
	}
	return nil, false
}

func cmpFor(op engine.BinOp) (cmpOp, bool) {
	switch op {
	case engine.OpEq:
		return cmpEq, true
	case engine.OpNe:
		return cmpNe, true
	case engine.OpLt:
		return cmpLt, true
	case engine.OpLe:
		return cmpLe, true
	case engine.OpGt:
		return cmpGt, true
	case engine.OpGe:
		return cmpGe, true
	}
	return 0, false
}

func colLit(a, b engine.Expr) (col *engine.ColRef, lit table.Value, ok bool) {
	cr, okC := a.(*engine.ColRef)
	l, okL := b.(*engine.Lit)
	if !okC || !okL {
		return nil, table.Value{}, false
	}
	return cr, l.V, true
}

func leaf(col *engine.ColRef, op cmpOp, lit table.Value, sch table.Schema) (*Pred, bool) {
	if col.Idx < 0 || col.Idx >= sch.NumCols() {
		return nil, false
	}
	if !comparable(sch.Cols[col.Idx].Type, lit.Type) {
		return nil, false
	}
	return &Pred{kind: predLeaf, col: col.Idx, cmp: op, lits: []table.Value{lit}}, true
}

// comparable mirrors table.Value.Compare's error condition: strings only
// compare with strings, numerics cross-compare freely.
func comparable(a, b table.Type) bool {
	return (a == table.Str) == (b == table.Str)
}

// --- per-chunk evaluation ---

// eval computes the row-group selection vector. Dictionary chunks are
// decided in code space, RLE chunks once per run; everything else decodes
// the one column the leaf reads.
func (p *Pred) eval(cc *chunkCtx) (*bitmap, error) {
	switch p.kind {
	case predAnd:
		// Leaves cannot error on valid chunks, so short-circuiting an AND
		// over an empty selection is safe and skips whole columns.
		bm, err := p.kids[0].eval(cc)
		if err != nil {
			return nil, err
		}
		for _, k := range p.kids[1:] {
			if bm.none() {
				return bm, nil
			}
			o, err := k.eval(cc)
			if err != nil {
				return nil, err
			}
			bm.and(o)
		}
		return bm, nil
	case predOr:
		bm, err := p.kids[0].eval(cc)
		if err != nil {
			return nil, err
		}
		for _, k := range p.kids[1:] {
			if bm.all() {
				return bm, nil
			}
			o, err := k.eval(cc)
			if err != nil {
				return nil, err
			}
			bm.or(o)
		}
		return bm, nil
	case predNot:
		bm, err := p.kids[0].eval(cc)
		if err != nil {
			return nil, err
		}
		bm.not()
		return bm, nil
	}
	return p.evalLeaf(cc)
}

func (p *Pred) evalLeaf(cc *chunkCtx) (*bitmap, error) {
	cs, err := cc.parse(p.col)
	if err != nil {
		return nil, err
	}
	bm := newBitmap(cc.rows)
	switch {
	case cs.vec != nil:
		for i := 0; i < cc.rows; i++ {
			if p.matches(cs.vec.Value(i)) {
				bm.set(i)
			}
		}
	case cs.dict != nil:
		pass := p.passingCodes(cs.dict)
		codes, _ := cs.dict.Codes()
		for i, c := range codes {
			if pass[c] {
				bm.set(i)
			}
		}
		cc.st.CodeFilteredRows += int64(cc.rows)
	case cs.runs != nil:
		pos := 0
		for _, r := range cs.runs {
			if p.matches(r.Val) {
				bm.setRange(pos, pos+r.Len)
			}
			pos += r.Len
		}
		cc.st.CodeFilteredRows += int64(cc.rows)
	default:
		vec, err := cc.vector(p.col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cc.rows; i++ {
			if p.matches(vec.Value(i)) {
				bm.set(i)
			}
		}
	}
	return bm, nil
}

// matches evaluates the leaf against one value with the row engine's
// comparison semantics. Compilation guarantees Compare cannot error.
func (p *Pred) matches(v table.Value) bool {
	if p.cmp == cmpIn {
		for _, lit := range p.lits {
			if c, err := v.Compare(lit); err == nil && c == 0 {
				return true
			}
		}
		return false
	}
	c, _ := v.Compare(p.lits[0])
	switch p.cmp {
	case cmpEq:
		return c == 0
	case cmpNe:
		return c != 0
	case cmpLt:
		return c < 0
	case cmpLe:
		return c <= 0
	case cmpGt:
		return c > 0
	default:
		return c >= 0
	}
}

// passingCodes computes the set of dictionary codes satisfying the leaf.
// Ranges and equalities binary-search the sorted-dictionary code map, so
// the cost is O(log card) probes plus marking the passing span; only IN
// repeats that per list item.
func (p *Pred) passingCodes(dv *encoding.DictView) []bool {
	card := dv.Card()
	pass := make([]bool, card)
	sorted := dv.SortedCodes()
	mark := func(lo, hi int) {
		for _, code := range sorted[lo:hi] {
			pass[code] = true
		}
	}
	bounds := func(lit table.Value) (lo, hi int) {
		lo = sort.Search(card, func(i int) bool {
			c, _ := dv.Value(sorted[i]).Compare(lit)
			return c >= 0
		})
		hi = sort.Search(card, func(i int) bool {
			c, _ := dv.Value(sorted[i]).Compare(lit)
			return c > 0
		})
		return lo, hi
	}
	if p.cmp == cmpIn {
		for _, lit := range p.lits {
			lo, hi := bounds(lit)
			mark(lo, hi)
		}
		return pass
	}
	lo, hi := bounds(p.lits[0])
	switch p.cmp {
	case cmpEq:
		mark(lo, hi)
	case cmpNe:
		mark(0, lo)
		mark(hi, card)
	case cmpLt:
		mark(0, lo)
	case cmpLe:
		mark(0, hi)
	case cmpGt:
		mark(hi, card)
	default: // cmpGe
		mark(lo, card)
	}
	return pass
}
