package kernels

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/shortcircuit-db/sc/internal/colfmt"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// FuzzPredTranslate drives the code-space predicate translator: an
// arbitrary byte string becomes a column, an operator and a literal; the
// chunk-level evaluation (dictionary codes, RLE runs, or decoded values —
// whichever the auto-selected codec produces) must agree row for row with
// direct scalar evaluation, and must never panic.
func FuzzPredTranslate(f *testing.F) {
	f.Add([]byte{0}, uint8(0), int64(5), false)
	f.Add([]byte{1, 1, 1, 9, 9, 200, 3}, uint8(2), int64(2), false)
	f.Add([]byte("hello world repeated strings"), uint8(4), int64(7), true)
	f.Add([]byte{255, 0, 255, 0}, uint8(6), int64(0), false)

	f.Fuzz(func(t *testing.T, data []byte, opByte uint8, litSeed int64, asStr bool) {
		// Build a column from the fuzz bytes.
		vec := &table.Vector{Type: table.Int}
		if asStr {
			vec.Type = table.Str
			for i := 0; i < len(data); i += 3 {
				j := i + 3
				if j > len(data) {
					j = len(data)
				}
				vec.Strs = append(vec.Strs, string(data[i:j]))
			}
		} else {
			for _, b := range data {
				vec.Ints = append(vec.Ints, int64(b)%17-8)
			}
		}
		n := vec.Len()
		sch := table.NewSchema(table.Column{Name: "c", Type: vec.Type})
		tbl := &table.Table{Schema: sch, Cols: []*table.Vector{vec}}

		var lit table.Value
		if asStr {
			lit = table.StrValue(string(rune('a' + byte(litSeed)%26)))
			if litSeed%3 == 0 && n > 0 {
				lit = table.StrValue(vec.Strs[int(uint64(litSeed)%uint64(n))])
			}
		} else {
			lit = table.IntValue(litSeed%17 - 8)
		}

		var pred engine.Expr
		cr := &engine.ColRef{Idx: 0}
		ops := []engine.BinOp{engine.OpEq, engine.OpNe, engine.OpLt, engine.OpLe, engine.OpGt, engine.OpGe}
		if opByte%7 == 6 {
			pred = &engine.InList{E: cr, List: []table.Value{lit, lit}}
		} else {
			pred = &engine.Bin{Op: ops[opByte%7%6], L: cr, R: &engine.Lit{V: lit}}
		}

		p, ok := Compile(pred, sch)
		if !ok {
			t.Fatalf("type-safe predicate failed to compile: %v", pred)
		}

		// Chunk the column with a size that forces multiple chunks, then
		// evaluate per chunk and compare with direct scalar evaluation.
		chunkRows := 1 + int(uint8(litSeed))%7
		ct, err := encoding.FromTable(tbl, encoding.Options{ChunkRows: chunkRows})
		if err != nil {
			t.Fatalf("FromTable: %v", err)
		}
		st := &Stats{}
		got := make([]bool, 0, n)
		for g, rows := range ct.RowGroups() {
			cc := newChunkCtx(ct, g, rows, st)
			bm, err := p.eval(cc)
			if err != nil {
				t.Fatalf("eval: %v", err)
			}
			for i := 0; i < rows; i++ {
				got = append(got, bm.get(i))
			}
		}
		if len(got) != n {
			t.Fatalf("evaluated %d rows, want %d", len(got), n)
		}
		for i := 0; i < n; i++ {
			if want := p.matches(vec.Value(i)); got[i] != want {
				t.Fatalf("row %d: chunk eval %v, scalar eval %v (pred %v, value %v)",
					i, got[i], want, p, vec.Value(i))
			}
		}
	})
}

// FuzzJoinRemap drives the join-key/dictionary-remap translator: arbitrary
// bytes become the key columns of two tables (int or string, with a payload
// column each), both sides are chunked with fuzz-chosen chunk sizes, and
// the code-space join kernel must produce byte-identical output to the row
// engine's hash join — whatever mix of dict/RLE/delta/raw chunks the
// encoder picks — and must never panic.
func FuzzJoinRemap(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 9}, uint8(3), uint8(2), false)
	f.Add([]byte("abcabcxyz"), uint8(1), uint8(5), true)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 7}, uint8(7), uint8(1), false)
	f.Add([]byte{255}, uint8(2), uint8(2), true)

	f.Fuzz(func(t *testing.T, data []byte, chunkL, chunkR uint8, asStr bool) {
		mkTable := func(raw []byte, tag string) *table.Table {
			key := &table.Vector{Type: table.Int}
			if asStr {
				key.Type = table.Str
			}
			pay := &table.Vector{Type: table.Int}
			for i, b := range raw {
				if asStr {
					// Tiny alphabet so both sides intersect often.
					key.Strs = append(key.Strs, string(rune('a'+b%5)))
				} else {
					key.Ints = append(key.Ints, int64(b)%9-4)
				}
				pay.Ints = append(pay.Ints, int64(i))
			}
			sch := table.NewSchema(
				table.Column{Name: tag + "k", Type: key.Type},
				table.Column{Name: tag + "p", Type: table.Int},
			)
			return &table.Table{Schema: sch, Cols: []*table.Vector{key, pay}}
		}
		half := len(data) / 2
		left := mkTable(data[:half], "l")
		right := mkTable(data[half:], "r")

		encode := func(tb *table.Table, chunk uint8) *encoding.Compressed {
			ct, err := encoding.FromTable(tb, encoding.Options{ChunkRows: 1 + int(chunk)%7})
			if err != nil {
				t.Fatalf("FromTable: %v", err)
			}
			return ct
		}
		cts := map[string]*encoding.Compressed{
			"L": encode(left, chunkL),
			"R": encode(right, chunkR),
		}
		resolve := func(n string) (*table.Table, error) {
			ct, ok := cts[n]
			if !ok {
				return nil, fmt.Errorf("unknown table %q", n)
			}
			return ct.Table()
		}
		rowCtx := &engine.Context{Resolve: resolve}
		vecCtx := &engine.Context{
			Resolve:           resolve,
			ResolveCompressed: func(n string) (*encoding.Compressed, error) { return cts[n], nil },
		}
		build := func() engine.Node {
			return &engine.HashJoin{
				Left:      &engine.Scan{Name: "L", Sch: left.Schema},
				Right:     &engine.Scan{Name: "R", Sch: right.Schema},
				LeftKeys:  []int{0},
				RightKeys: []int{0},
			}
		}
		want, err := build().Run(rowCtx)
		if err != nil {
			t.Fatalf("row engine: %v", err)
		}
		st := &Stats{}
		got, err := Lower(build(), st).Run(vecCtx)
		if err != nil {
			t.Fatalf("kernel: %v", err)
		}
		wb, err := colfmt.Encode(want)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := colfmt.Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Fatalf("join results differ: row engine %d rows, kernel %d rows",
				want.NumRows(), got.NumRows())
		}
	})
}
