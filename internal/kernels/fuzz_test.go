package kernels

import (
	"testing"

	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// FuzzPredTranslate drives the code-space predicate translator: an
// arbitrary byte string becomes a column, an operator and a literal; the
// chunk-level evaluation (dictionary codes, RLE runs, or decoded values —
// whichever the auto-selected codec produces) must agree row for row with
// direct scalar evaluation, and must never panic.
func FuzzPredTranslate(f *testing.F) {
	f.Add([]byte{0}, uint8(0), int64(5), false)
	f.Add([]byte{1, 1, 1, 9, 9, 200, 3}, uint8(2), int64(2), false)
	f.Add([]byte("hello world repeated strings"), uint8(4), int64(7), true)
	f.Add([]byte{255, 0, 255, 0}, uint8(6), int64(0), false)

	f.Fuzz(func(t *testing.T, data []byte, opByte uint8, litSeed int64, asStr bool) {
		// Build a column from the fuzz bytes.
		vec := &table.Vector{Type: table.Int}
		if asStr {
			vec.Type = table.Str
			for i := 0; i < len(data); i += 3 {
				j := i + 3
				if j > len(data) {
					j = len(data)
				}
				vec.Strs = append(vec.Strs, string(data[i:j]))
			}
		} else {
			for _, b := range data {
				vec.Ints = append(vec.Ints, int64(b)%17-8)
			}
		}
		n := vec.Len()
		sch := table.NewSchema(table.Column{Name: "c", Type: vec.Type})
		tbl := &table.Table{Schema: sch, Cols: []*table.Vector{vec}}

		var lit table.Value
		if asStr {
			lit = table.StrValue(string(rune('a' + byte(litSeed)%26)))
			if litSeed%3 == 0 && n > 0 {
				lit = table.StrValue(vec.Strs[int(uint64(litSeed)%uint64(n))])
			}
		} else {
			lit = table.IntValue(litSeed%17 - 8)
		}

		var pred engine.Expr
		cr := &engine.ColRef{Idx: 0}
		ops := []engine.BinOp{engine.OpEq, engine.OpNe, engine.OpLt, engine.OpLe, engine.OpGt, engine.OpGe}
		if opByte%7 == 6 {
			pred = &engine.InList{E: cr, List: []table.Value{lit, lit}}
		} else {
			pred = &engine.Bin{Op: ops[opByte%7%6], L: cr, R: &engine.Lit{V: lit}}
		}

		p, ok := Compile(pred, sch)
		if !ok {
			t.Fatalf("type-safe predicate failed to compile: %v", pred)
		}

		// Chunk the column with a size that forces multiple chunks, then
		// evaluate per chunk and compare with direct scalar evaluation.
		chunkRows := 1 + int(uint8(litSeed))%7
		ct, err := encoding.FromTable(tbl, encoding.Options{ChunkRows: chunkRows})
		if err != nil {
			t.Fatalf("FromTable: %v", err)
		}
		st := &Stats{}
		got := make([]bool, 0, n)
		for g, rows := range ct.RowGroups() {
			cc := newChunkCtx(ct, g, rows, st)
			bm, err := p.eval(cc)
			if err != nil {
				t.Fatalf("eval: %v", err)
			}
			for i := 0; i < rows; i++ {
				got = append(got, bm.get(i))
			}
		}
		if len(got) != n {
			t.Fatalf("evaluated %d rows, want %d", len(got), n)
		}
		for i := 0; i < n; i++ {
			if want := p.matches(vec.Value(i)); got[i] != want {
				t.Fatalf("row %d: chunk eval %v, scalar eval %v (pred %v, value %v)",
					i, got[i], want, p, vec.Value(i))
			}
		}
	})
}
