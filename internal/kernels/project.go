package kernels

import (
	"fmt"

	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// ProjectScan is a fused Project∘(Filter?)∘Scan kernel for projections that
// only drop, duplicate or permute plain column references. Such a
// projection cannot compute anything — a ColRef's planned type always
// equals the input column's type, so no coercion applies either — which
// means chunks can pass through column-selected instead of being evaluated
// row by row: columns the projection drops are never decoded, and a bare
// `SELECT col FROM t` stops materializing the whole table through the row
// engine. Output is byte-identical to Orig, the row-engine subtree, which
// doubles as the runtime fallback.
type ProjectScan struct {
	Scan *engine.Scan
	Pred *Pred // nil when the subtree had no filter
	Cols []int // input column read by each output column
	Sch  table.Schema
	Orig engine.Node
	St   *Stats
	Env  *Env // chunked-output environment (nil: defaults, no dict cache)
	ID   int  // stable operator label within the node, keys the dict cache
}

// Schema implements engine.Node.
func (p *ProjectScan) Schema() table.Schema { return p.Sch }

// String implements engine.Node.
func (p *ProjectScan) String() string {
	return fmt.Sprintf("KernelProjectScan(%s, cols=%v)", p.Scan.Name, p.Cols)
}

// Run implements engine.Node.
func (p *ProjectScan) Run(ctx *engine.Context) (*table.Table, error) {
	ct, groups := resolveChunked(ctx, p.Scan)
	if ct == nil {
		p.St.Fallbacks++
		return p.Orig.Run(ctx)
	}
	if pp := planPartitions(ctx, ct, groups); pp != nil {
		out, err := p.runParallel(pp, ct, groups)
		if err != nil {
			return nil, fmt.Errorf("kernels: project %q: %w", p.Scan.Name, err)
		}
		return out, nil
	}
	out := table.New(p.Sch)
	for g, rows := range groups {
		cc := newChunkCtx(ct, g, rows, p.St)
		var sel *bitmap
		if p.Pred != nil {
			var err error
			sel, err = p.Pred.eval(cc)
			if err != nil {
				return nil, fmt.Errorf("kernels: project %q: %w", p.Scan.Name, err)
			}
			if sel.none() {
				cc.finish()
				continue
			}
		}
		for oc, ic := range p.Cols {
			if err := cc.materializeCol(out.Cols[oc], ic, sel); err != nil {
				return nil, fmt.Errorf("kernels: project %q: %w", p.Scan.Name, err)
			}
		}
		cc.finish()
	}
	return out, nil
}

// projectCols reports the input column read by each output column when the
// projection consists solely of in-range column references — the shape that
// passes chunks through. Anything computed (arithmetic, literals, custom
// expressions) keeps the row engine.
func projectCols(p *engine.Project, sch table.Schema) ([]int, bool) {
	if len(p.Exprs) == 0 {
		return nil, false
	}
	cols := make([]int, len(p.Exprs))
	for i, e := range p.Exprs {
		cr, ok := e.(*engine.ColRef)
		if !ok || cr.Idx < 0 || cr.Idx >= sch.NumCols() {
			return nil, false
		}
		cols[i] = cr.Idx
	}
	return cols, true
}
