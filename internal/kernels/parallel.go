package kernels

import (
	"sync"

	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// This file implements the kernels' partitioned (chunk-parallel) mode: a
// scan-shaped kernel splits its row-group list into contiguous ranges and
// evaluates them on tokens borrowed from the scheduler-wide budget
// (engine.Context.Sched) — the same pool the exec Controller's node
// dispatcher draws from, so node-level and intra-node parallelism compose
// under one bound. Borrowing uses TryAcquire only and falls back to the
// serial path, so nesting can never deadlock; each borrowed partition also
// reserves its estimated in-flight decoded bytes against the scheduler's
// byte ceiling, keeping concurrency × memory bounded.
//
// Determinism: partitions are contiguous row-group ranges evaluated with
// thread-local chunk contexts, selection vectors and Stats, and their
// results merge in partition order — output tables concatenate, AggAcc
// partials merge via engine.AggAcc.Merge (only when ExactMergeable),
// join pairs concatenate in probe order. The merged result is
// byte-identical to the serial walk, and Stats fields are all sums, so
// counters match serial totals exactly too.

// partPlan is one planned partitioned execution: contiguous [lo, hi)
// row-group ranges, one per token held (the caller's own plus borrowed).
type partPlan struct {
	parts    [][2]int
	ctx      *engine.Context
	borrowed int   // extra tokens to return
	reserved int64 // bytes reserved against the scheduler ceiling
}

// decodedEstimate is the pessimistic in-flight bytes of a partition: the
// encoded payload of its chunks times a nominal expansion factor. It only
// gates how wide a scan borrows, so a rough bound is fine.
func decodedEstimate(ct *encoding.Compressed, lo, hi int) int64 {
	var enc int64
	for _, chunks := range ct.Cols {
		for g := lo; g < hi && g < len(chunks); g++ {
			enc += int64(len(chunks[g].Data))
		}
	}
	const expansion = 4
	return enc * expansion
}

// planPartitions borrows tokens for a partitioned walk of the row-group
// list. It returns nil when the scan should run serially: parallel scan
// disabled, no scheduler, a single row group, or no idle tokens to borrow.
// A non-nil plan must be released with done().
func planPartitions(ctx *engine.Context, ct *encoding.Compressed, groups []int) *partPlan {
	if ctx == nil || !ctx.ParallelScan || ctx.Sched == nil || len(groups) < 2 {
		return nil
	}
	sc := ctx.Sched
	// Widen one token at a time; each extra partition needs both a token
	// and headroom under the byte ceiling. The caller's own token covers
	// partition 0.
	maxExtra := len(groups) - 1
	if t := sc.Tokens() - 1; t < maxExtra {
		maxExtra = t
	}
	pp := &partPlan{ctx: ctx}
	perPart := decodedEstimate(ct, 0, len(groups)) / int64(len(groups))
	for pp.borrowed < maxExtra {
		if !sc.TryAcquire() {
			break
		}
		if !sc.TryReserveBytes(perPart) {
			sc.Release()
			break
		}
		pp.borrowed++
		pp.reserved += perPart
	}
	if pp.borrowed == 0 {
		return nil
	}
	pp.parts = splitGroups(groups, pp.borrowed+1)
	return pp
}

// done returns the borrowed tokens and byte reservations.
func (pp *partPlan) done() {
	sc := pp.ctx.Sched
	for i := 0; i < pp.borrowed; i++ {
		sc.Release()
	}
	sc.ReleaseBytes(pp.reserved)
}

// splitGroups cuts the row-group list into at most width contiguous ranges
// balanced by row count (never by splitting a group).
func splitGroups(groups []int, width int) [][2]int {
	total := 0
	for _, rows := range groups {
		total += rows
	}
	parts := make([][2]int, 0, width)
	lo, acc := 0, 0
	for g, rows := range groups {
		acc += rows
		// Cut when this partition reached its proportional share of rows
		// and enough groups remain to fill the rest.
		if acc*width >= total*(len(parts)+1) && len(groups)-g-1 >= width-len(parts)-1 && len(parts) < width-1 {
			parts = append(parts, [2]int{lo, g + 1})
			lo = g + 1
		}
	}
	if lo < len(groups) {
		parts = append(parts, [2]int{lo, len(groups)})
	}
	return parts
}

// run executes fn once per partition — partition 0 on the calling
// goroutine, the rest on the borrowed tokens — and waits for all of them.
// fn receives the partition index and its [lo, hi) group range and must
// only touch partition-local state. The earliest partition's error wins,
// matching what a serial walk would have surfaced first.
func (pp *partPlan) run(fn func(p, lo, hi int) error) error {
	errs := make([]error, len(pp.parts))
	var wg sync.WaitGroup
	for p := 1; p < len(pp.parts); p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = fn(p, pp.parts[p][0], pp.parts[p][1])
		}(p)
	}
	errs[0] = fn(0, pp.parts[0][0], pp.parts[0][1])
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// add folds another Stats (a partition's thread-local counters) into st.
// Every field is a sum, so folding partitions in any order reproduces the
// serial totals.
func (st *Stats) add(o *Stats) {
	st.Lowered += o.Lowered
	st.Fallbacks += o.Fallbacks
	st.ChunksSkipped += o.ChunksSkipped
	st.CodeFilteredRows += o.CodeFilteredRows
	st.DecodesAvoided += o.DecodesAvoided
	st.DecodedBytes += o.DecodedBytes
	st.JoinBuildRows += o.JoinBuildRows
	st.JoinProbeRows += o.JoinProbeRows
	st.ChunksPassed += o.ChunksPassed
	st.ReencodedChunks += o.ReencodedChunks
	st.DictReused += o.DictReused
}

// foldStats folds a batch of per-partition Stats into dst.
func foldStats(dst *Stats, sts []Stats) {
	for i := range sts {
		dst.add(&sts[i])
	}
}

// appendTable appends src's rows to dst column-wise (schemas identical by
// construction: both came from the same operator).
func appendTable(dst, src *table.Table) {
	for ci := range dst.Cols {
		appendAll(dst.Cols[ci], src.Cols[ci])
	}
}

// --- partitioned Run paths ---

// runParallel is the partitioned FilterScan walk: each partition filters
// its groups into a thread-local table, and the partials concatenate in
// partition order — the groups arrive in the same order as the serial
// loop, so the output is byte-identical.
func (f *FilterScan) runParallel(pp *partPlan, ct *encoding.Compressed, groups []int) (*table.Table, error) {
	defer pp.done()
	outs := make([]*table.Table, len(pp.parts))
	sts := make([]Stats, len(pp.parts))
	err := pp.run(func(p, lo, hi int) error {
		out, st := table.New(f.Scan.Sch), &sts[p]
		for g := lo; g < hi; g++ {
			cc := newChunkCtx(ct, g, groups[g], st)
			sel, err := f.Pred.eval(cc)
			if err != nil {
				return err
			}
			if err := cc.materialize(out, sel); err != nil {
				return err
			}
			cc.finish()
		}
		outs[p] = out
		return nil
	})
	for i := range sts {
		f.St.add(&sts[i])
	}
	if err != nil {
		return nil, err
	}
	out := outs[0]
	for _, t := range outs[1:] {
		appendTable(out, t)
	}
	return out, nil
}

// runParallel is the partitioned ProjectScan walk; same merge shape as
// FilterScan with the projection's column mapping.
func (p *ProjectScan) runParallel(pp *partPlan, ct *encoding.Compressed, groups []int) (*table.Table, error) {
	defer pp.done()
	outs := make([]*table.Table, len(pp.parts))
	sts := make([]Stats, len(pp.parts))
	err := pp.run(func(pi, lo, hi int) error {
		out, st := table.New(p.Sch), &sts[pi]
		for g := lo; g < hi; g++ {
			cc := newChunkCtx(ct, g, groups[g], st)
			var sel *bitmap
			if p.Pred != nil {
				var err error
				sel, err = p.Pred.eval(cc)
				if err != nil {
					return err
				}
				if sel.none() {
					cc.finish()
					continue
				}
			}
			for oc, ic := range p.Cols {
				if err := cc.materializeCol(out.Cols[oc], ic, sel); err != nil {
					return err
				}
			}
			cc.finish()
		}
		outs[pi] = out
		return nil
	})
	for i := range sts {
		p.St.add(&sts[i])
	}
	if err != nil {
		return nil, err
	}
	out := outs[0]
	for _, t := range outs[1:] {
		appendTable(out, t)
	}
	return out, nil
}

// runParallel is the partitioned AggScan walk: each partition folds its
// groups into a thread-local AggAcc, and the partials merge in partition
// order. Only called when the accumulator is ExactMergeable — counts,
// integer sums, min/max — where the merged result is bit-identical to a
// serial pass; output-relevant float sums (AVG, SUM over floats) keep the
// serial path because their value depends on addition order.
func (a *AggScan) runParallel(pp *partPlan, ct *encoding.Compressed, groups []int) (*table.Table, error) {
	defer pp.done()
	accs := make([]*engine.AggAcc, len(pp.parts))
	sts := make([]Stats, len(pp.parts))
	err := pp.run(func(p, lo, hi int) error {
		acc, st := a.Agg.NewAcc(), &sts[p]
		row := make([]table.Value, a.inSchema().NumCols())
		for g := lo; g < hi; g++ {
			cc := newChunkCtx(ct, g, groups[g], st)
			var sel *bitmap
			if a.Pred != nil {
				var err error
				sel, err = a.Pred.eval(cc)
				if err != nil {
					return err
				}
				if sel.none() {
					cc.finish()
					continue
				}
			}
			if err := a.addGroup(cc, acc, row, sel); err != nil {
				return err
			}
			cc.finish()
		}
		accs[p] = acc
		return nil
	})
	for i := range sts {
		a.St.add(&sts[i])
	}
	if err != nil {
		return nil, err
	}
	acc := accs[0]
	for _, part := range accs[1:] {
		acc.Merge(part)
	}
	return acc.Result()
}

// --- partitioned chunked-output pre-pass ---

// prepassed is one row group's pre-evaluated state: its chunk context
// (with whatever the predicate parsed, cached for the emission phase) and
// selection. The chunked-output kernels parallelize this pre-pass —
// predicate evaluation and chunk parsing are the CPU-heavy part — while
// the chunkio.Builder emission stays serial in group order, because the
// builder (and its session dictionary cache) is single-threaded state.
type prepassed struct {
	cc  *chunkCtx
	sel *bitmap
}

// prepass evaluates pred over every row group, partitioned when the plan
// allows. A nil pred parses nothing and returns contexts with nil
// selections (meaning all rows).
func prepass(pp *partPlan, ct *encoding.Compressed, groups []int, pred *Pred, sts []Stats) ([]prepassed, error) {
	pre := make([]prepassed, len(groups))
	if pp == nil {
		st := &sts[0]
		for g, rows := range groups {
			cc := newChunkCtx(ct, g, rows, st)
			var sel *bitmap
			if pred != nil {
				var err error
				sel, err = pred.eval(cc)
				if err != nil {
					return nil, err
				}
			}
			pre[g] = prepassed{cc: cc, sel: sel}
		}
		return pre, nil
	}
	defer pp.done()
	err := pp.run(func(p, lo, hi int) error {
		st := &sts[p]
		for g := lo; g < hi; g++ {
			cc := newChunkCtx(ct, g, groups[g], st)
			var sel *bitmap
			if pred != nil {
				var err error
				sel, err = pred.eval(cc)
				if err != nil {
					return err
				}
			}
			pre[g] = prepassed{cc: cc, sel: sel}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pre, nil
}
