package kernels

import (
	"fmt"

	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// AggScan is a fused Aggregate∘(Filter?)∘Scan kernel. It feeds the row
// engine's own AggAcc accumulator — so grouping, accumulation order and
// output layout are byte-identical by construction — but reads only the
// columns the aggregation touches (group keys and aggregate arguments),
// skips whole row groups the selection vector eliminates, and consumes RLE
// runs without expanding them:
//
//   - a global COUNT(*) touches no column at all: each row group
//     contributes its (selected) row count in O(1);
//   - when every needed column of a chunk is run-length encoded, the runs
//     are walked in lockstep and each constant segment is folded in with
//     one AddRepeat call;
//   - otherwise values are read through late-materializing accessors
//     (dictionary lookups stay in code space) for selected rows only.
type AggScan struct {
	Scan  *engine.Scan
	Inner ChunkedOp // set instead of Scan: aggregate an upstream kernel's chunked output
	Pred  *Pred     // nil when the subtree had no filter; only with Scan
	Agg   *engine.Aggregate
	Orig  engine.Node
	need  []int // columns the aggregation reads, ascending
	St    *Stats
}

// inSchema returns the aggregated input's schema.
func (a *AggScan) inSchema() table.Schema {
	if a.Inner != nil {
		return a.Inner.Schema()
	}
	return a.Scan.Sch
}

// label names the input for error messages and plan display.
func (a *AggScan) label() string {
	if a.Inner != nil {
		return "(" + a.Inner.String() + ")"
	}
	return a.Scan.Name
}

// Schema implements engine.Node.
func (a *AggScan) Schema() table.Schema { return a.Agg.Schema() }

// String implements engine.Node.
func (a *AggScan) String() string {
	return fmt.Sprintf("KernelAggScan(%s, cols=%v)", a.label(), a.need)
}

// Run implements engine.Node.
func (a *AggScan) Run(ctx *engine.Context) (*table.Table, error) {
	var ct *encoding.Compressed
	var groups []int
	if a.Inner != nil {
		// Aggregate an upstream kernel's chunked output — a GROUP BY over a
		// join tree stays in code space. An inner row-engine fallback is
		// absorbed by accumulating its table directly (the subtree never
		// re-executes; AggAcc makes the result byte-identical either way).
		ict, t, err := a.Inner.RunChunked(ctx)
		if err != nil {
			return nil, err
		}
		if ict == nil {
			return a.accumulateTable(t)
		}
		ct, groups = ict, ict.RowGroups()
		if groups == nil {
			return nil, fmt.Errorf("kernels: aggregate %s: misaligned chunked input", a.label())
		}
	} else {
		ct, groups = resolveChunked(ctx, a.Scan)
		if ct == nil {
			a.St.Fallbacks++
			return a.Orig.Run(ctx)
		}
	}
	acc := a.Agg.NewAcc()
	if acc.ExactMergeable() {
		// Partition the group walk across borrowed tokens; per-partition
		// accumulators merge in partition order. Aggregates with an
		// output-relevant float sum skip this: their result depends on the
		// exact addition order, so only the serial walk is byte-identical.
		if pp := planPartitions(ctx, ct, groups); pp != nil {
			out, err := a.runParallel(pp, ct, groups)
			if err != nil {
				return nil, fmt.Errorf("kernels: aggregate %s: %w", a.label(), err)
			}
			return out, nil
		}
	}
	row := make([]table.Value, a.inSchema().NumCols())
	for g, rows := range groups {
		cc := newChunkCtx(ct, g, rows, a.St)
		var sel *bitmap
		if a.Pred != nil {
			var err error
			sel, err = a.Pred.eval(cc)
			if err != nil {
				return nil, fmt.Errorf("kernels: aggregate %s: %w", a.label(), err)
			}
			if sel.none() {
				cc.finish()
				continue
			}
		}
		if err := a.addGroup(cc, acc, row, sel); err != nil {
			return nil, err
		}
		cc.finish()
	}
	return acc.Result()
}

// accumulateTable folds a materialized input through the accumulator in
// row order — the absorption path for an inner operator that fell back.
func (a *AggScan) accumulateTable(t *table.Table) (*table.Table, error) {
	acc := a.Agg.NewAcc()
	row := make([]table.Value, t.Schema.NumCols())
	n := t.NumRows()
	for i := 0; i < n; i++ {
		for _, c := range a.need {
			row[c] = t.Cols[c].Value(i)
		}
		if err := acc.Add(row); err != nil {
			return nil, err
		}
	}
	return acc.Result()
}

// addGroup folds one row group into the accumulator.
func (a *AggScan) addGroup(cc *chunkCtx, acc *engine.AggAcc, row []table.Value, sel *bitmap) error {
	full := sel == nil || sel.all()

	// No needed columns (e.g. global COUNT(*)): the whole group collapses
	// to one AddRepeat without touching a single chunk.
	if len(a.need) == 0 {
		n := cc.rows
		if !full {
			n = sel.count()
		}
		return acc.AddRepeat(row, n)
	}

	// Run-level fast path: every needed column run-length encoded and no
	// partial selection — walk the runs in lockstep and fold each constant
	// segment in one call, never expanding a run.
	if full && a.allRLE(cc) {
		return a.addRuns(cc, acc, row)
	}

	readers := make([]func(int) table.Value, len(a.need))
	for k, c := range a.need {
		r, err := cc.accessor(c)
		if err != nil {
			return fmt.Errorf("kernels: aggregate %s: %w", a.label(), err)
		}
		readers[k] = r
	}
	for i := 0; i < cc.rows; i++ {
		if !full && !sel.get(i) {
			continue
		}
		for k, c := range a.need {
			row[c] = readers[k](i)
		}
		if err := acc.Add(row); err != nil {
			return err
		}
	}
	return nil
}

// allRLE reports whether every needed column's chunk is RLE and parses
// them.
func (a *AggScan) allRLE(cc *chunkCtx) bool {
	for _, c := range a.need {
		if cc.chunk(c).Codec != encoding.RLE {
			return false
		}
	}
	for _, c := range a.need {
		if _, err := cc.parse(c); err != nil {
			return false
		}
	}
	return true
}

// addRuns walks the needed columns' runs in lockstep: each maximal segment
// where all of them are constant becomes a single AddRepeat.
func (a *AggScan) addRuns(cc *chunkCtx, acc *engine.AggAcc, row []table.Value) error {
	type cursor struct {
		runs []encoding.Run
		idx  int // current run
		left int // rows left in the current run
	}
	curs := make([]cursor, len(a.need))
	for k, c := range a.need {
		runs := cc.cols[c].runs
		curs[k] = cursor{runs: runs}
		if len(runs) > 0 {
			curs[k].left = runs[0].Len
		}
	}
	remaining := cc.rows
	for remaining > 0 {
		seg := remaining
		for k := range curs {
			row[a.need[k]] = curs[k].runs[curs[k].idx].Val
			if curs[k].left < seg {
				seg = curs[k].left
			}
		}
		if err := acc.AddRepeat(row, seg); err != nil {
			return err
		}
		remaining -= seg
		for k := range curs {
			curs[k].left -= seg
			if curs[k].left == 0 && curs[k].idx+1 < len(curs[k].runs) {
				curs[k].idx++
				curs[k].left = curs[k].runs[curs[k].idx].Len
			}
		}
	}
	return nil
}
