package kernels

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// JoinSide is one input of a HashJoinScan: the scanned table plus the
// compiled filter that was fused below the join, if any. The join applies
// the filter itself, so its row numbering matches the filtered table the
// row engine would have built.
type JoinSide struct {
	Scan *engine.Scan
	Pred *Pred // nil when the side is unfiltered
}

// HashJoinScan is a kernel-side inner equi-join that probes dictionary
// codes instead of materialized values. Both sides resolve in chunked form;
// each chunk's local dictionary codes are remapped through a shared
// encoding.KeyDict (one per key position), so the build table is keyed by
// dense shared ids rather than strings:
//
//   - the build (right) side hashes its selected rows by shared key id —
//     for dictionary chunks each distinct value is interned once, however
//     many rows carry it;
//   - the probe (left) side translates each chunk's dictionary against the
//     build side's keys (dictionary intersection): codes whose entry exists
//     only on the probe side remap to -1 and their rows drop before any
//     column decodes;
//   - only the surviving (leftRow, rightRow) pairs late-materialize, in the
//     row engine's exact output order (probe order, then build order).
//
// Key columns must be INT or STRING with equal types on both sides — the
// types the dict codec encodes, and the types whose value equality matches
// the row engine's key encoding exactly. Float keys (NaN and signed-zero
// bucketing) stay on the row engine. Output is byte-identical to Orig, the
// row-engine subtree, which doubles as the runtime fallback.
//
// A parent projection that only drops, duplicates or permutes columns can
// fuse into the join (Proj non-nil): joined columns nothing projects are
// never materialized — a dropped probe-side column is read for no row, a
// dropped build-side chunk is skipped outright.
type HashJoinScan struct {
	Left, Right         JoinSide
	LeftKeys, RightKeys []int
	// Proj maps each output column to a joined column (left columns first,
	// then right), fused from a parent columns-only projection. Nil means
	// the join's natural output.
	Proj []int
	// Sch is the output schema: the joined schema, or the projected one.
	Sch  table.Schema
	Orig engine.Node // HashJoin, or Project(HashJoin…) when Proj is fused
	St   *Stats
}

// Schema implements engine.Node.
func (j *HashJoinScan) Schema() table.Schema { return j.Sch }

// String implements engine.Node.
func (j *HashJoinScan) String() string {
	return fmt.Sprintf("KernelHashJoinScan(%s⋈%s, keys=%v=%v)",
		j.Left.Scan.Name, j.Right.Scan.Name, j.LeftKeys, j.RightKeys)
}

// joinGroup is the retained state of one processed row group: its chunk
// context plus the mapping from selected-row ordinals back to local rows.
type joinGroup struct {
	cc   *chunkCtx
	base int     // ordinal of the group's first selected row
	sel  []int32 // selected local rows in order; nil when every row selected
	n    int     // selected rows in the group
}

// outCol wires one output column to a side-local source column.
type outCol struct{ out, src int }

// localRow maps a selected-row ordinal back to the group-local row index.
func (g *joinGroup) localRow(ord int) int {
	if g.sel == nil {
		return ord - g.base
	}
	return int(g.sel[ord-g.base])
}

// Run implements engine.Node.
func (j *HashJoinScan) Run(ctx *engine.Context) (*table.Table, error) {
	lct, lgroups := resolveChunked(ctx, j.Left.Scan)
	rct, rgroups := resolveChunked(ctx, j.Right.Scan)
	if lct == nil || rct == nil {
		j.St.Fallbacks++
		return j.Orig.Run(ctx)
	}
	out, err := j.runChunked(lct, lgroups, rct, rgroups)
	if err != nil {
		return nil, fmt.Errorf("kernels: join %s⋈%s: %w", j.Left.Scan.Name, j.Right.Scan.Name, err)
	}
	return out, nil
}

func (j *HashJoinScan) runChunked(lct *encoding.Compressed, lgroups []int, rct *encoding.Compressed, rgroups []int) (*table.Table, error) {
	nKeys := len(j.RightKeys)
	kds := make([]*encoding.KeyDict, nKeys)
	for p, rc := range j.RightKeys {
		kds[p] = encoding.NewKeyDict(j.Right.Scan.Sch.Cols[rc].Type)
	}

	// Build phase: hash every selected right row by its composite of shared
	// key ids. Right groups stay alive (with whatever they parsed or
	// decoded) until the surviving rows materialize.
	build := make(map[string][]int)
	rightGroups := make([]*joinGroup, 0, len(rgroups))
	scratch := make([]byte, 8*nKeys)
	total := 0
	for g, rows := range rgroups {
		cc := newChunkCtx(rct, g, rows, j.St)
		jg := &joinGroup{cc: cc, base: total}
		var sel *bitmap
		if j.Right.Pred != nil {
			var err error
			sel, err = j.Right.Pred.eval(cc)
			if err != nil {
				return nil, err
			}
			if sel.none() {
				cc.finish()
				rightGroups = append(rightGroups, jg)
				continue
			}
			if !sel.all() {
				jg.sel = make([]int32, 0, sel.count())
			} else {
				sel = nil
			}
		}
		ids := make([]func(int) int, nKeys)
		for p, rc := range j.RightKeys {
			fn, err := keyReader(cc, rc, kds[p], true)
			if err != nil {
				return nil, err
			}
			ids[p] = fn
		}
		for i := 0; i < rows; i++ {
			if sel != nil && !sel.get(i) {
				continue
			}
			for p := range ids {
				binary.LittleEndian.PutUint64(scratch[8*p:], uint64(ids[p](i)))
			}
			matches := build[string(scratch)]
			build[string(scratch)] = append(matches, total)
			if jg.sel != nil {
				jg.sel = append(jg.sel, int32(i))
			}
			total++
			jg.n++
		}
		rightGroups = append(rightGroups, jg)
	}
	j.St.JoinBuildRows += int64(total)

	// Output layout: each output column reads one joined column, either the
	// join's natural output or the fused projection. Joined columns nothing
	// reads are never materialized.
	leftW := j.Left.Scan.Sch.NumCols()
	proj := j.Proj
	if proj == nil {
		proj = make([]int, leftW+j.Right.Scan.Sch.NumCols())
		for i := range proj {
			proj[i] = i
		}
	}
	var leftOut, rightOut []outCol
	for oc, jc := range proj {
		if jc < leftW {
			leftOut = append(leftOut, outCol{oc, jc})
		} else {
			rightOut = append(rightOut, outCol{oc, jc - leftW})
		}
	}

	// Probe phase: translate each left chunk's codes against the build-side
	// keys and emit surviving pairs. Left values materialize inline —
	// pairs for one group are contiguous and their left rows non-decreasing,
	// so appends stay in output order and RLE cursors never rewind.
	out := table.New(j.Sch)
	var rightIdx []int // build-side ordinals per output row
	probed := 0
	for g, rows := range lgroups {
		cc := newChunkCtx(lct, g, rows, j.St)
		var sel *bitmap
		if j.Left.Pred != nil {
			var err error
			sel, err = j.Left.Pred.eval(cc)
			if err != nil {
				return nil, err
			}
			if sel.none() {
				cc.finish()
				continue
			}
			if sel.all() {
				sel = nil
			}
		}
		ids := make([]func(int) int, nKeys)
		for p, lc := range j.LeftKeys {
			fn, err := keyReader(cc, lc, kds[p], false)
			if err != nil {
				return nil, err
			}
			ids[p] = fn
		}
		// Column readers are built only when the group's first match
		// arrives: a group whose keys all miss never touches its
		// non-key chunks.
		var readers []func(int) table.Value
		var counted []bool
	rowLoop:
		for i := 0; i < rows; i++ {
			if sel != nil && !sel.get(i) {
				continue
			}
			probed++
			for p := range ids {
				id := ids[p](i)
				if id < 0 {
					continue rowLoop // key exists only on the probe side
				}
				binary.LittleEndian.PutUint64(scratch[8*p:], uint64(id))
			}
			matches := build[string(scratch)]
			if len(matches) == 0 {
				continue
			}
			if readers == nil {
				readers = make([]func(int) table.Value, len(leftOut))
				counted = make([]bool, len(leftOut))
				for k, oc := range leftOut {
					fn, cnt, err := cc.reader(oc.src)
					if err != nil {
						return nil, err
					}
					readers[k], counted[k] = fn, cnt
				}
			}
			for _, r := range matches {
				for k, oc := range leftOut {
					v := readers[k](i)
					dst := out.Cols[oc.out]
					if counted[k] {
						switch dst.Type {
						case table.Int:
							dst.Ints = append(dst.Ints, v.I)
						case table.Float:
							dst.Floats = append(dst.Floats, v.F)
						default:
							dst.Strs = append(dst.Strs, v.S)
						}
					} else {
						appendValue(j.St, dst, v)
					}
				}
				rightIdx = append(rightIdx, r)
			}
		}
		cc.finish()
	}
	j.St.JoinProbeRows += int64(probed)

	if err := j.gatherRight(out, rightOut, rightIdx, rightGroups); err != nil {
		return nil, err
	}
	for _, jg := range rightGroups {
		if jg.n > 0 { // empty-selection groups finished during the build
			jg.cc.finish()
		}
	}
	return out, nil
}

// gatherRight scatters the build-side rows of the surviving pairs into the
// projected right output columns. Output positions are bucketed per right
// row group and visited in local-row order, so each group's chunks are read
// once, monotonically, decoding only what the survivors demand.
func (j *HashJoinScan) gatherRight(out *table.Table, rightOut []outCol, rightIdx []int, groups []*joinGroup) error {
	nPairs := len(rightIdx)
	for _, oc := range rightOut {
		dst := out.Cols[oc.out]
		switch dst.Type {
		case table.Int:
			dst.Ints = make([]int64, nPairs)
		case table.Float:
			dst.Floats = make([]float64, nPairs)
		default:
			dst.Strs = make([]string, nPairs)
		}
	}
	if nPairs == 0 {
		return nil
	}
	// Bucket output positions by right group (ordinals are dense per group).
	byGroup := make([][]int, len(groups))
	for pos, ord := range rightIdx {
		g := sort.Search(len(groups), func(k int) bool {
			return groups[k].base+groups[k].n > ord
		})
		byGroup[g] = append(byGroup[g], pos)
	}
	for g, positions := range byGroup {
		if len(positions) == 0 {
			continue
		}
		jg := groups[g]
		sort.Slice(positions, func(a, b int) bool {
			return jg.localRow(rightIdx[positions[a]]) < jg.localRow(rightIdx[positions[b]])
		})
		for _, oc := range rightOut {
			fn, counted, err := jg.cc.reader(oc.src)
			if err != nil {
				return err
			}
			dst := out.Cols[oc.out]
			for _, pos := range positions {
				setValue(j.St, dst, pos, fn(jg.localRow(rightIdx[pos])), counted)
			}
		}
	}
	return nil
}

// keyReader returns a per-row shared-key-id lookup for one key column of a
// row group. Dictionary chunks remap their entry table through kd — once
// per distinct value, with add selecting build-side interning versus
// probe-side intersection (absent entries yield -1). Other codecs read the
// key column through the chunk's cheapest accessor (RLE runs advance a
// cursor; everything else decodes just this column) and intern per row.
func keyReader(cc *chunkCtx, col int, kd *encoding.KeyDict, add bool) (func(i int) int, error) {
	cs, err := cc.parse(col)
	if err != nil {
		return nil, err
	}
	if cs.dict != nil {
		var ids []int
		if add {
			ids = cs.dict.RemapAdd(kd)
		} else {
			ids = cs.dict.RemapLookup(kd)
		}
		codes, _ := cs.dict.Codes()
		return func(i int) int { return ids[codes[i]] }, nil
	}
	fn, err := cc.accessor(col)
	if err != nil {
		return nil, err
	}
	if add {
		return func(i int) int { return kd.Add(fn(i)) }, nil
	}
	return func(i int) int { return kd.Lookup(fn(i)) }, nil
}
