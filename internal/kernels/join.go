package kernels

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/shortcircuit-db/sc/internal/chunkio"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// JoinSide is one input of a HashJoinScan: either a scanned table (with the
// compiled filter that was fused below the join, if any) or an upstream
// kernel operator consumed in chunked-output mode — which is how a join
// probes another join's output without either side materializing.
type JoinSide struct {
	Scan  *engine.Scan
	Pred  *Pred     // nil when the side is unfiltered; only with Scan
	Inner ChunkedOp // set instead of Scan when the side is a kernel operator
}

// Schema returns the side's input schema.
func (s *JoinSide) Schema() table.Schema {
	if s.Inner != nil {
		return s.Inner.Schema()
	}
	return s.Scan.Sch
}

// label names the side for error messages and plan display.
func (s *JoinSide) label() string {
	if s.Inner != nil {
		return "(" + s.Inner.String() + ")"
	}
	return s.Scan.Name
}

// HashJoinScan is a kernel-side inner equi-join that probes dictionary
// codes instead of materialized values. Both sides resolve in chunked form
// — scans through the compressed resolver, inner operators by running them
// in chunked-output mode; each chunk's local dictionary codes are remapped
// through a shared encoding.KeyDict (one per key position), so the build
// table is keyed by dense shared ids rather than strings:
//
//   - the build (right) side hashes its selected rows by shared key id —
//     for dictionary chunks each distinct value is interned once, however
//     many rows carry it;
//   - the probe (left) side translates each chunk's dictionary against the
//     build side's keys (dictionary intersection): codes whose entry exists
//     only on the probe side remap to -1 and their rows drop before any
//     column decodes;
//   - only the surviving (leftRow, rightRow) pairs late-materialize, in the
//     row engine's exact output order (probe order, then build order).
//
// Key columns must be INT or STRING with equal types on both sides — the
// types the dict codec encodes, and the types whose value equality matches
// the row engine's key encoding exactly. Float keys (NaN and signed-zero
// bucketing) stay on the row engine. Output is byte-identical to Orig, the
// row-engine subtree, which doubles as the runtime fallback.
//
// A parent projection that only drops, duplicates or permutes columns can
// fuse into the join (Proj non-nil): joined columns nothing projects are
// never materialized — a dropped probe-side column is read for no row, a
// dropped build-side chunk is skipped outright.
//
// RunChunked emits the surviving pairs as compressed chunks instead of a
// table: dictionary-encoded output columns travel as remapped codes, so a
// two-level join tree composes in code space end to end.
type HashJoinScan struct {
	Left, Right         JoinSide
	LeftKeys, RightKeys []int
	// Proj maps each output column to a joined column (left columns first,
	// then right), fused from a parent columns-only projection. Nil means
	// the join's natural output.
	Proj []int
	// Sch is the output schema: the joined schema, or the projected one.
	Sch  table.Schema
	Orig engine.Node // HashJoin, or Project(HashJoin…) when Proj is fused
	St   *Stats
	Env  *Env // chunked-output environment (nil: defaults, no dict cache)
	ID   int  // stable operator label within the node, keys the dict cache
}

// Schema implements engine.Node.
func (j *HashJoinScan) Schema() table.Schema { return j.Sch }

// String implements engine.Node.
func (j *HashJoinScan) String() string {
	return fmt.Sprintf("KernelHashJoinScan(%s⋈%s, keys=%v=%v)",
		j.Left.label(), j.Right.label(), j.LeftKeys, j.RightKeys)
}

// joinGroup is the retained state of one processed row group: its chunk
// context plus the mapping from selected-row ordinals back to local rows.
type joinGroup struct {
	cc   *chunkCtx
	base int     // ordinal of the group's first selected row
	sel  []int32 // selected local rows in order; nil when every row selected
	n    int     // selected rows in the group
}

// outCol wires one output column to a side-local source column.
type outCol struct{ out, src int }

// localRow maps a selected-row ordinal back to the group-local row index.
func (g *joinGroup) localRow(ord int) int {
	if g.sel == nil {
		return ord - g.base
	}
	return int(g.sel[ord-g.base])
}

// resolveSides resolves both join inputs in chunked form. Scan sides probe
// the resolver first: they are cheap, and their failure means the kernel
// must fall back before any inner operator has executed. Inner sides then
// run in chunked-output mode; a row-engine fallback inside one is absorbed
// by re-encoding its table (the subtree never re-executes). ok is false
// when the join as a whole must fall back to Orig.
func (j *HashJoinScan) resolveSides(ctx *engine.Context) (lct, rct *encoding.Compressed, lgroups, rgroups []int, ok bool, err error) {
	if j.Left.Inner == nil {
		if lct, lgroups = resolveChunked(ctx, j.Left.Scan); lct == nil {
			return nil, nil, nil, nil, false, nil
		}
	}
	if j.Right.Inner == nil {
		if rct, rgroups = resolveChunked(ctx, j.Right.Scan); rct == nil {
			return nil, nil, nil, nil, false, nil
		}
	}
	if j.Left.Inner != nil {
		if lct, lgroups, err = j.runInner(ctx, j.Left.Inner); err != nil {
			return nil, nil, nil, nil, false, err
		}
	}
	if j.Right.Inner != nil {
		if rct, rgroups, err = j.runInner(ctx, j.Right.Inner); err != nil {
			return nil, nil, nil, nil, false, err
		}
	}
	return lct, rct, lgroups, rgroups, true, nil
}

// runInner executes an inner operator in chunked-output mode. When it fell
// back to the row engine, the materialized table is compressed once — the
// re-encode-hot-intermediates path — so the join above still probes codes.
func (j *HashJoinScan) runInner(ctx *engine.Context, op ChunkedOp) (*encoding.Compressed, []int, error) {
	ct, t, err := op.RunChunked(ctx)
	if err != nil {
		return nil, nil, err
	}
	if ct == nil {
		opts := encoding.Options{}
		if j.Env != nil {
			opts = j.Env.Opts
		}
		if ct, err = encoding.FromTable(t, opts); err != nil {
			return nil, nil, err
		}
		for _, chunks := range ct.Cols {
			j.St.ReencodedChunks += int64(len(chunks))
		}
	}
	groups := ct.RowGroups()
	if groups == nil {
		// Builder and FromTable outputs are always aligned; guard anyway.
		return nil, nil, fmt.Errorf("misaligned chunked input from %s", op)
	}
	return ct, groups, nil
}

// Run implements engine.Node.
func (j *HashJoinScan) Run(ctx *engine.Context) (*table.Table, error) {
	lct, rct, lgroups, rgroups, ok, err := j.resolveSides(ctx)
	if err != nil {
		return nil, fmt.Errorf("kernels: join %s⋈%s: %w", j.Left.label(), j.Right.label(), err)
	}
	if !ok {
		j.St.Fallbacks++
		return j.Orig.Run(ctx)
	}
	out, err := j.runChunked(ctx, lct, lgroups, rct, rgroups)
	if err != nil {
		return nil, fmt.Errorf("kernels: join %s⋈%s: %w", j.Left.label(), j.Right.label(), err)
	}
	return out, nil
}

// RunChunked implements ChunkedOp: the join's output leaves as compressed
// chunks built from remapped dictionary codes wherever the source chunks
// allow, materializing values only for columns with no code-space path.
func (j *HashJoinScan) RunChunked(ctx *engine.Context) (*encoding.Compressed, *table.Table, error) {
	lct, rct, lgroups, rgroups, ok, err := j.resolveSides(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("kernels: join %s⋈%s: %w", j.Left.label(), j.Right.label(), err)
	}
	if !ok {
		j.St.Fallbacks++
		t, err := j.Orig.Run(ctx)
		return nil, t, err
	}
	ct, err := j.joinChunked(ctx, lct, lgroups, rct, rgroups)
	if err != nil {
		return nil, nil, fmt.Errorf("kernels: join %s⋈%s: %w", j.Left.label(), j.Right.label(), err)
	}
	return ct, nil, nil
}

// buildState is the outcome of the build phase: the shared key space, the
// hash table of build-row ordinals, and the retained build-side groups.
type buildState struct {
	kds     []*encoding.KeyDict
	build   map[string][]int
	groups  []*joinGroup
	scratch []byte
	total   int
}

// buildPhase hashes every selected build-side row by its composite of
// shared key ids. Build groups stay alive (with whatever they parsed or
// decoded) until the surviving rows materialize.
func (j *HashJoinScan) buildPhase(rct *encoding.Compressed, rgroups []int) (*buildState, error) {
	nKeys := len(j.RightKeys)
	bs := &buildState{
		kds:     make([]*encoding.KeyDict, nKeys),
		build:   make(map[string][]int),
		scratch: make([]byte, 8*nKeys),
	}
	rsch := j.Right.Schema()
	for p, rc := range j.RightKeys {
		bs.kds[p] = encoding.NewKeyDict(rsch.Cols[rc].Type)
	}
	for g, rows := range rgroups {
		cc := newChunkCtx(rct, g, rows, j.St)
		jg := &joinGroup{cc: cc, base: bs.total}
		var sel *bitmap
		if j.Right.Pred != nil {
			var err error
			sel, err = j.Right.Pred.eval(cc)
			if err != nil {
				return nil, err
			}
			if sel.none() {
				cc.finish()
				bs.groups = append(bs.groups, jg)
				continue
			}
			if !sel.all() {
				jg.sel = make([]int32, 0, sel.count())
			} else {
				sel = nil
			}
		}
		ids := make([]func(int) int, nKeys)
		for p, rc := range j.RightKeys {
			fn, err := keyReader(cc, rc, bs.kds[p], true)
			if err != nil {
				return nil, err
			}
			ids[p] = fn
		}
		for i := 0; i < rows; i++ {
			if sel != nil && !sel.get(i) {
				continue
			}
			for p := range ids {
				binary.LittleEndian.PutUint64(bs.scratch[8*p:], uint64(ids[p](i)))
			}
			matches := bs.build[string(bs.scratch)]
			bs.build[string(bs.scratch)] = append(matches, bs.total)
			if jg.sel != nil {
				jg.sel = append(jg.sel, int32(i))
			}
			bs.total++
			jg.n++
		}
		bs.groups = append(bs.groups, jg)
	}
	j.St.JoinBuildRows += int64(bs.total)
	return bs, nil
}

// outLayout wires each output column to a joined column, either the join's
// natural output or the fused projection. Joined columns nothing reads are
// never materialized.
func (j *HashJoinScan) outLayout() (leftOut, rightOut []outCol) {
	leftW := j.Left.Schema().NumCols()
	proj := j.Proj
	if proj == nil {
		proj = make([]int, leftW+j.Right.Schema().NumCols())
		for i := range proj {
			proj[i] = i
		}
	}
	for oc, jc := range proj {
		if jc < leftW {
			leftOut = append(leftOut, outCol{oc, jc})
		} else {
			rightOut = append(rightOut, outCol{oc, jc - leftW})
		}
	}
	return leftOut, rightOut
}

func (j *HashJoinScan) runChunked(ctx *engine.Context, lct *encoding.Compressed, lgroups []int, rct *encoding.Compressed, rgroups []int) (*table.Table, error) {
	bp, err := j.buildPhase(rct, rgroups)
	if err != nil {
		return nil, err
	}
	leftOut, rightOut := j.outLayout()

	// Probe phase: translate each left chunk's codes against the build-side
	// keys and emit surviving pairs. The build table and shared key
	// dictionaries are read-only from here, so probe partitions across
	// borrowed tokens — each with its own output table, ordinal list,
	// scratch and Stats — and the partials concatenate in partition order,
	// which is the serial probe order.
	out := table.New(j.Sch)
	var rightIdx []int // build-side ordinals per output row
	if pp := planPartitions(ctx, lct, lgroups); pp != nil {
		outs := make([]*table.Table, len(pp.parts))
		idxs := make([][]int, len(pp.parts))
		sts := make([]Stats, len(pp.parts))
		err := pp.run(func(p, lo, hi int) error {
			pout := table.New(j.Sch)
			ri, err := j.probeMat(lct, lgroups, lo, hi, bp, leftOut, &sts[p], pout)
			outs[p], idxs[p] = pout, ri
			return err
		})
		pp.done()
		foldStats(j.St, sts)
		if err != nil {
			return nil, err
		}
		for p := range outs {
			appendTable(out, outs[p])
			rightIdx = append(rightIdx, idxs[p]...)
		}
	} else {
		if rightIdx, err = j.probeMat(lct, lgroups, 0, len(lgroups), bp, leftOut, j.St, out); err != nil {
			return nil, err
		}
	}

	if err := j.gatherRight(out, rightOut, rightIdx, bp.groups); err != nil {
		return nil, err
	}
	for _, jg := range bp.groups {
		if jg.n > 0 { // empty-selection groups finished during the build
			jg.cc.finish()
		}
	}
	return out, nil
}

// probeMat probes the left row groups in [lo, hi) against the build table,
// appending surviving pairs' left values to out (probe order: pairs for
// one group are contiguous and their left rows non-decreasing, so appends
// stay in output order and RLE cursors never rewind) and their build-side
// ordinals to the returned list. st receives the range's counters; it must
// be thread-local when ranges run concurrently.
func (j *HashJoinScan) probeMat(lct *encoding.Compressed, lgroups []int, lo, hi int, bp *buildState, leftOut []outCol, st *Stats, out *table.Table) ([]int, error) {
	nKeys := len(j.LeftKeys)
	scratch := make([]byte, 8*nKeys)
	var rightIdx []int
	probed := 0
	for g := lo; g < hi; g++ {
		rows := lgroups[g]
		cc := newChunkCtx(lct, g, rows, st)
		var sel *bitmap
		if j.Left.Pred != nil {
			var err error
			sel, err = j.Left.Pred.eval(cc)
			if err != nil {
				return nil, err
			}
			if sel.none() {
				cc.finish()
				continue
			}
			if sel.all() {
				sel = nil
			}
		}
		ids := make([]func(int) int, nKeys)
		for p, lc := range j.LeftKeys {
			fn, err := keyReader(cc, lc, bp.kds[p], false)
			if err != nil {
				return nil, err
			}
			ids[p] = fn
		}
		// Column readers are built only when the group's first match
		// arrives: a group whose keys all miss never touches its
		// non-key chunks.
		var readers []func(int) table.Value
		var counted []bool
	rowLoop:
		for i := 0; i < rows; i++ {
			if sel != nil && !sel.get(i) {
				continue
			}
			probed++
			for p := range ids {
				id := ids[p](i)
				if id < 0 {
					continue rowLoop // key exists only on the probe side
				}
				binary.LittleEndian.PutUint64(scratch[8*p:], uint64(id))
			}
			matches := bp.build[string(scratch)]
			if len(matches) == 0 {
				continue
			}
			if readers == nil {
				readers = make([]func(int) table.Value, len(leftOut))
				counted = make([]bool, len(leftOut))
				for k, oc := range leftOut {
					fn, cnt, err := cc.reader(oc.src)
					if err != nil {
						return nil, err
					}
					readers[k], counted[k] = fn, cnt
				}
			}
			for _, r := range matches {
				for k, oc := range leftOut {
					v := readers[k](i)
					dst := out.Cols[oc.out]
					if counted[k] {
						switch dst.Type {
						case table.Int:
							dst.Ints = append(dst.Ints, v.I)
						case table.Float:
							dst.Floats = append(dst.Floats, v.F)
						default:
							dst.Strs = append(dst.Strs, v.S)
						}
					} else {
						appendValue(st, dst, v)
					}
				}
				rightIdx = append(rightIdx, r)
			}
		}
		cc.finish()
	}
	st.JoinProbeRows += int64(probed)
	return rightIdx, nil
}

// gatherRight scatters the build-side rows of the surviving pairs into the
// projected right output columns. Output positions are bucketed per right
// row group and visited in local-row order, so each group's chunks are read
// once, monotonically, decoding only what the survivors demand.
func (j *HashJoinScan) gatherRight(out *table.Table, rightOut []outCol, rightIdx []int, groups []*joinGroup) error {
	nPairs := len(rightIdx)
	for _, oc := range rightOut {
		dst := out.Cols[oc.out]
		switch dst.Type {
		case table.Int:
			dst.Ints = make([]int64, nPairs)
		case table.Float:
			dst.Floats = make([]float64, nPairs)
		default:
			dst.Strs = make([]string, nPairs)
		}
	}
	if nPairs == 0 {
		return nil
	}
	byGroup := bucketByGroup(rightIdx, groups)
	for g, positions := range byGroup {
		if len(positions) == 0 {
			continue
		}
		jg := groups[g]
		for _, oc := range rightOut {
			fn, counted, err := jg.cc.reader(oc.src)
			if err != nil {
				return err
			}
			dst := out.Cols[oc.out]
			for _, pos := range positions {
				setValue(j.St, dst, pos, fn(jg.localRow(rightIdx[pos])), counted)
			}
		}
	}
	return nil
}

// bucketByGroup buckets output positions by right row group (ordinals are
// dense per group), sorted by group-local row so chunk reads stay
// monotonic.
func bucketByGroup(rightIdx []int, groups []*joinGroup) [][]int {
	byGroup := make([][]int, len(groups))
	for pos, ord := range rightIdx {
		g := sort.Search(len(groups), func(k int) bool {
			return groups[k].base+groups[k].n > ord
		})
		byGroup[g] = append(byGroup[g], pos)
	}
	for g, positions := range byGroup {
		if len(positions) == 0 {
			continue
		}
		jg := groups[g]
		sort.Slice(positions, func(a, b int) bool {
			return jg.localRow(rightIdx[positions[a]]) < jg.localRow(rightIdx[positions[b]])
		})
	}
	return byGroup
}

// joinChunked runs the join emitting compressed chunks: the probe records
// surviving (left group/row, build ordinal) pairs, and output columns then
// assemble through a chunkio.Builder — dictionary-encoded source columns as
// remapped codes, everything else as late-materialized values — in the row
// engine's exact output order (probe order, then build order).
func (j *HashJoinScan) joinChunked(ctx *engine.Context, lct *encoding.Compressed, lgroups []int, rct *encoding.Compressed, rgroups []int) (*encoding.Compressed, error) {
	bp, err := j.buildPhase(rct, rgroups)
	if err != nil {
		return nil, err
	}
	leftOut, rightOut := j.outLayout()

	// Probe phase: record pairs, touching only key columns. Left groups stay
	// alive until the assembly phase reads the survivors. The pair lists
	// partition across borrowed tokens (thread-local lists concatenated in
	// partition order = serial probe order); the builder assembly below is
	// serial, single-threaded state.
	leftGroups := make([]*joinGroup, len(lgroups))
	var pairLeft []int64 // left (group << 32 | local row) per output row
	var pairRight []int  // build-side ordinal per output row
	if pp := planPartitions(ctx, lct, lgroups); pp != nil {
		lefts := make([][]int64, len(pp.parts))
		rights := make([][]int, len(pp.parts))
		sts := make([]Stats, len(pp.parts))
		err := pp.run(func(p, lo, hi int) error {
			var err error
			lefts[p], rights[p], err = j.probePairs(lct, lgroups, lo, hi, bp, &sts[p], leftGroups)
			return err
		})
		pp.done()
		foldStats(j.St, sts)
		if err != nil {
			return nil, err
		}
		for p := range lefts {
			pairLeft = append(pairLeft, lefts[p]...)
			pairRight = append(pairRight, rights[p]...)
		}
	} else {
		if pairLeft, pairRight, err = j.probePairs(lct, lgroups, 0, len(lgroups), bp, j.St, leftGroups); err != nil {
			return nil, err
		}
	}

	b := j.Env.builderFor(j.Sch, j.ID)
	for _, oc := range leftOut {
		if err := j.assembleLeft(b, leftGroups, pairLeft, oc); err != nil {
			return nil, err
		}
	}
	if err := j.assembleRight(b, bp.groups, pairRight, rightOut); err != nil {
		return nil, err
	}
	for _, jg := range leftGroups {
		jg.cc.finish()
	}
	for _, jg := range bp.groups {
		if jg.n > 0 {
			jg.cc.finish()
		}
	}
	ct, err := b.Finish()
	if err != nil {
		return nil, err
	}
	j.St.addBuilder(b.Counters)
	return ct, nil
}

// probePairs probes the left row groups in [lo, hi), recording surviving
// (left group/row, build ordinal) pairs without touching non-key columns.
// It fills the [lo, hi) slots of leftGroups — disjoint across concurrent
// ranges — and st must be thread-local when ranges run concurrently.
func (j *HashJoinScan) probePairs(lct *encoding.Compressed, lgroups []int, lo, hi int, bp *buildState, st *Stats, leftGroups []*joinGroup) ([]int64, []int, error) {
	nKeys := len(j.LeftKeys)
	scratch := make([]byte, 8*nKeys)
	var pairLeft []int64
	var pairRight []int
	probed := 0
	for g := lo; g < hi; g++ {
		rows := lgroups[g]
		cc := newChunkCtx(lct, g, rows, st)
		leftGroups[g] = &joinGroup{cc: cc}
		var sel *bitmap
		if j.Left.Pred != nil {
			var err error
			sel, err = j.Left.Pred.eval(cc)
			if err != nil {
				return nil, nil, err
			}
			if sel.none() {
				continue
			}
			if sel.all() {
				sel = nil
			}
		}
		ids := make([]func(int) int, nKeys)
		for p, lc := range j.LeftKeys {
			fn, err := keyReader(cc, lc, bp.kds[p], false)
			if err != nil {
				return nil, nil, err
			}
			ids[p] = fn
		}
	rowLoop:
		for i := 0; i < rows; i++ {
			if sel != nil && !sel.get(i) {
				continue
			}
			probed++
			for p := range ids {
				id := ids[p](i)
				if id < 0 {
					continue rowLoop
				}
				binary.LittleEndian.PutUint64(scratch[8*p:], uint64(id))
			}
			for _, r := range bp.build[string(scratch)] {
				pairLeft = append(pairLeft, int64(g)<<32|int64(i))
				pairRight = append(pairRight, r)
			}
		}
	}
	st.JoinProbeRows += int64(probed)
	return pairLeft, pairRight, nil
}

// assembleLeft streams one probe-side output column into the builder. Pairs
// are in probe order — contiguous per group with non-decreasing local rows
// — so each group's chunk is remapped (or its reader advanced) once.
func (j *HashJoinScan) assembleLeft(b *chunkio.Builder, groups []*joinGroup, pairLeft []int64, oc outCol) error {
	curG := -1
	var codes []uint64
	var ids []int32
	var read func(int) table.Value
	var counted bool
	for _, p := range pairLeft {
		g, i := int(p>>32), int(p&0xffffffff)
		if g != curG {
			curG = g
			cc := groups[g].cc
			codes, ids, read, counted = nil, nil, nil, false
			cs, err := cc.parse(oc.src)
			if err != nil {
				return err
			}
			if cs.dict != nil && cs.vec == nil {
				if rIds, ok := b.Remap(oc.out, cs.dict); ok {
					cods, err := cs.dict.Codes()
					if err != nil {
						return err
					}
					codes, ids = cods, rIds
				}
			}
			if codes == nil {
				if read, counted, err = cc.reader(oc.src); err != nil {
					return err
				}
			}
		}
		if codes != nil {
			b.AppendCode(oc.out, ids[codes[i]])
		} else {
			v := read(i)
			if !counted {
				countMaterialized(j.St, v)
			}
			b.AppendValue(oc.out, v)
		}
	}
	return nil
}

// assembleRight scatters the build-side output columns into the builder in
// output order. A column whose every contributing chunk is dictionary-
// encoded travels as remapped codes; otherwise values scatter into a
// pre-sized vector exactly like the materializing gather.
func (j *HashJoinScan) assembleRight(b *chunkio.Builder, groups []*joinGroup, rightIdx []int, rightOut []outCol) error {
	nPairs := len(rightIdx)
	if nPairs == 0 {
		return nil
	}
	byGroup := bucketByGroup(rightIdx, groups)
	for _, oc := range rightOut {
		codes := make([]int32, nPairs)
		inCode := true
		for g, positions := range byGroup {
			if len(positions) == 0 {
				continue
			}
			jg := groups[g]
			cs, err := jg.cc.parse(oc.src)
			if err != nil {
				return err
			}
			if cs.dict == nil || cs.vec != nil {
				inCode = false
				break
			}
			ids, ok := b.Remap(oc.out, cs.dict)
			if !ok {
				inCode = false
				break
			}
			cods, err := cs.dict.Codes()
			if err != nil {
				return err
			}
			for _, pos := range positions {
				codes[pos] = ids[cods[jg.localRow(rightIdx[pos])]]
			}
		}
		if inCode {
			for _, id := range codes {
				b.AppendCode(oc.out, id)
			}
			continue
		}
		typ := j.Sch.Cols[oc.out].Type
		dst := &table.Vector{Type: typ}
		switch typ {
		case table.Int:
			dst.Ints = make([]int64, nPairs)
		case table.Float:
			dst.Floats = make([]float64, nPairs)
		default:
			dst.Strs = make([]string, nPairs)
		}
		for g, positions := range byGroup {
			if len(positions) == 0 {
				continue
			}
			jg := groups[g]
			fn, counted, err := jg.cc.reader(oc.src)
			if err != nil {
				return err
			}
			for _, pos := range positions {
				setValue(j.St, dst, pos, fn(jg.localRow(rightIdx[pos])), counted)
			}
		}
		if err := b.AppendVector(oc.out, dst, nil); err != nil {
			return err
		}
	}
	return nil
}

// keyReader returns a per-row shared-key-id lookup for one key column of a
// row group. Dictionary chunks remap their entry table through kd — once
// per distinct value, with add selecting build-side interning versus
// probe-side intersection (absent entries yield -1). Other codecs read the
// key column through the chunk's cheapest accessor (RLE runs advance a
// cursor; everything else decodes just this column) and intern per row.
func keyReader(cc *chunkCtx, col int, kd *encoding.KeyDict, add bool) (func(i int) int, error) {
	cs, err := cc.parse(col)
	if err != nil {
		return nil, err
	}
	if cs.dict != nil {
		var ids []int
		if add {
			ids = cs.dict.RemapAdd(kd)
		} else {
			ids = cs.dict.RemapLookup(kd)
		}
		codes, _ := cs.dict.Codes()
		return func(i int) int { return ids[codes[i]] }, nil
	}
	fn, err := cc.accessor(col)
	if err != nil {
		return nil, err
	}
	if add {
		return func(i int) int { return kd.Add(fn(i)) }, nil
	}
	return func(i int) int { return kd.Lookup(fn(i)) }, nil
}
