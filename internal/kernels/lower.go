package kernels

import (
	"sort"

	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// Lower rewrites the supported subtrees of an engine plan onto kernel
// operators and returns the (possibly new) root. The lowering rules:
//
//	Filter(Scan)            → FilterScan        predicate compiles
//	Filter(FilterScan)      → FilterScan        conjunction fused
//	Filter(HashJoin)        → pushdown          every conjunct compiles;
//	                                            one-sided conjuncts move
//	                                            below the join, may fuse
//	                                            with a scan, and the join
//	                                            itself may then lower
//	HashJoin(side, side)    → HashJoinScan      both sides Scan/FilterScan
//	                                            or chunk-producing kernels
//	                                            (HashJoinScan/ProjectScan —
//	                                            a join probing another
//	                                            join's chunked output), and
//	                                            every key column pair
//	                                            shares an INT or STRING type
//	Aggregate(Scan)         → AggScan           always (argument errors
//	                                            reproduce row-engine order)
//	Aggregate(FilterScan)   → AggScan           selection vector flows in
//	Aggregate(HashJoinScan) → AggScan           consumes the join's chunked
//	Aggregate(ProjectScan)  → AggScan           output, no materialization
//	Project(Scan)           → ProjectScan       only ColRef outputs (drop,
//	                                            duplicate or permute)
//	Project(FilterScan)     → ProjectScan       selection vector flows in
//	Project(HashJoinScan)   → fused Proj        joined columns nothing
//	                                            reads never materialize
//
// Everything else keeps its row-engine operator, with children lowered
// recursively. Each kernel operator retains its original subtree and falls
// back to it at run time when the scanned table is not available in
// chunked form, so results are byte-identical either way.
func Lower(root engine.Node, st *Stats) engine.Node {
	return LowerEnv(root, st, nil)
}

// LowerEnv is Lower with a chunked-output environment: operators it
// produces emit compressed chunks through env's codec policy and session
// dictionary cache when consumed by a ChunkedOp-aware parent (a join above
// them, the controller storing the node's output).
func LowerEnv(root engine.Node, st *Stats, env *Env) engine.Node {
	return lower(root, st, env)
}

func lower(root engine.Node, st *Stats, env *Env) engine.Node {
	switch n := root.(type) {
	case *engine.Filter:
		if hj, ok := n.Input.(*engine.HashJoin); ok {
			if nn := pushdown(n, hj, st, env); nn != nil {
				return nn
			}
			// Nothing moved: lower the join in place, keep the filter.
			n.Input = lower(hj, st, env)
			return n
		}
		n.Input = lower(n.Input, st, env)
		switch in := n.Input.(type) {
		case *engine.Scan:
			if p, ok := Compile(n.Pred, in.Sch); ok {
				st.Lowered++
				return &FilterScan{Scan: in, Pred: p, Orig: n, St: st, Env: env, ID: env.newID()}
			}
		case *FilterScan:
			if p, ok := Compile(n.Pred, in.Scan.Sch); ok {
				st.Lowered++
				fused := &Pred{kind: predAnd, kids: []*Pred{in.Pred, p}}
				return &FilterScan{Scan: in.Scan, Pred: fused, Orig: n, St: st, Env: env, ID: in.ID}
			}
		case *engine.HashJoin:
			// A join that surfaced only after lowering the input (e.g. an
			// inner filter fully pushed its conjuncts down and dissolved)
			// still deserves this filter's pushdown.
			if nn := pushdown(n, in, st, env); nn != nil {
				return nn
			}
		}
		return n
	case *engine.Aggregate:
		n.Input = lower(n.Input, st, env)
		switch in := n.Input.(type) {
		case *engine.Scan:
			if need, ok := aggNeeds(n, in.Sch); ok {
				st.Lowered++
				return &AggScan{Scan: in, Agg: n, Orig: n, need: need, St: st}
			}
		case *FilterScan:
			if need, ok := aggNeeds(n, in.Scan.Sch); ok {
				st.Lowered++
				return &AggScan{Scan: in.Scan, Pred: in.Pred, Agg: n, Orig: n, need: need, St: st}
			}
		case *HashJoinScan:
			if need, ok := aggNeeds(n, in.Sch); ok {
				st.Lowered++
				return &AggScan{Inner: in, Agg: n, Orig: n, need: need, St: st}
			}
		case *ProjectScan:
			if need, ok := aggNeeds(n, in.Sch); ok {
				st.Lowered++
				return &AggScan{Inner: in, Agg: n, Orig: n, need: need, St: st}
			}
		}
		return n
	case *engine.Project:
		n.Input = lower(n.Input, st, env)
		switch in := n.Input.(type) {
		case *engine.Scan:
			if cols, ok := projectCols(n, in.Sch); ok {
				st.Lowered++
				return &ProjectScan{Scan: in, Cols: cols, Sch: n.Schema(), Orig: n, St: st, Env: env, ID: env.newID()}
			}
		case *FilterScan:
			if cols, ok := projectCols(n, in.Scan.Sch); ok {
				st.Lowered++
				return &ProjectScan{Scan: in.Scan, Pred: in.Pred, Cols: cols, Sch: n.Schema(), Orig: n, St: st, Env: env, ID: in.ID}
			}
		case *HashJoinScan:
			// Fuse a columns-only projection into the join: joined columns
			// the projection drops never materialize — build-side chunks
			// nothing reads are skipped outright. The fused kernel keeps
			// this Project node as its fallback, so a non-chunked run still
			// evaluates Project(HashJoin) on the row engine.
			if cols, ok := projectCols(n, in.Sch); ok && in.Proj == nil {
				st.Lowered++
				fused := *in
				fused.Proj = cols
				fused.Sch = n.Schema()
				fused.Orig = n
				return &fused
			}
		}
		return n
	case *engine.Sort:
		n.Input = lower(n.Input, st, env)
		return n
	case *engine.Limit:
		n.Input = lower(n.Input, st, env)
		return n
	case *engine.HashJoin:
		n.Left = lower(n.Left, st, env)
		n.Right = lower(n.Right, st, env)
		if js := lowerJoin(n, st, env); js != nil {
			st.Lowered++
			return js
		}
		return n
	case *engine.UnionAll:
		for i := range n.Inputs {
			n.Inputs[i] = lower(n.Inputs[i], st, env)
		}
		return n
	}
	return root
}

// lowerJoin rewrites a HashJoin whose (already lowered) sides are plain
// scans, fused filter-scans or chunk-producing kernels onto the code-space
// join kernel. It declines — returning nil, keeping the row engine — when a
// key column pair differs in type or is FLOAT: float keys fall back so the
// row engine's NaN and signed-zero bucketing stays authoritative, and the
// kernel's shared key dictionary only ever holds the types the dict codec
// encodes.
func lowerJoin(hj *engine.HashJoin, st *Stats, env *Env) *HashJoinScan {
	if len(hj.LeftKeys) == 0 || len(hj.LeftKeys) != len(hj.RightKeys) {
		return nil
	}
	left, ok := joinSideOf(hj.Left)
	if !ok {
		return nil
	}
	right, ok := joinSideOf(hj.Right)
	if !ok {
		return nil
	}
	lsch, rsch := left.Schema(), right.Schema()
	for p := range hj.LeftKeys {
		lc, rc := hj.LeftKeys[p], hj.RightKeys[p]
		if lc < 0 || lc >= lsch.NumCols() || rc < 0 || rc >= rsch.NumCols() {
			return nil
		}
		lt, rt := lsch.Cols[lc].Type, rsch.Cols[rc].Type
		if lt != rt || lt == table.Float {
			return nil
		}
	}
	return &HashJoinScan{
		Left: left, Right: right,
		LeftKeys: hj.LeftKeys, RightKeys: hj.RightKeys,
		Sch:  hj.Schema(),
		Orig: hj, St: st, Env: env, ID: env.newID(),
	}
}

// joinSideOf extracts one join input: a scan (with its fused filter), or a
// chunk-producing kernel consumed as an inner operator.
func joinSideOf(n engine.Node) (JoinSide, bool) {
	switch v := n.(type) {
	case *engine.Scan:
		return JoinSide{Scan: v}, true
	case *FilterScan:
		return JoinSide{Scan: v.Scan, Pred: v.Pred}, true
	case *HashJoinScan:
		return JoinSide{Inner: v}, true
	case *ProjectScan:
		return JoinSide{Inner: v}, true
	}
	return JoinSide{}, false
}

// aggNeeds returns the ascending set of input columns the aggregation
// reads: group-by keys plus every column referenced by an aggregate
// argument. It reports false when an argument contains an expression form
// it cannot analyze.
func aggNeeds(a *engine.Aggregate, sch table.Schema) ([]int, bool) {
	set := make(map[int]bool)
	for _, g := range a.GroupBy {
		if g < 0 || g >= sch.NumCols() {
			return nil, false
		}
		set[g] = true
	}
	for _, spec := range a.Aggs {
		if spec.Arg == nil {
			continue
		}
		if !collectCols(spec.Arg, sch, set) {
			return nil, false
		}
	}
	need := make([]int, 0, len(set))
	for c := range set {
		need = append(need, c)
	}
	sort.Ints(need)
	return need, true
}

// collectCols records every column an expression reads, reporting false on
// expression forms outside the engine's closed set (a custom Expr could
// observe columns invisibly, so it blocks lowering).
func collectCols(e engine.Expr, sch table.Schema, set map[int]bool) bool {
	switch v := e.(type) {
	case *engine.ColRef:
		if v.Idx < 0 || v.Idx >= sch.NumCols() {
			return false
		}
		set[v.Idx] = true
		return true
	case *engine.Lit:
		return true
	case *engine.Bin:
		return collectCols(v.L, sch, set) && collectCols(v.R, sch, set)
	case *engine.Not:
		return collectCols(v.E, sch, set)
	case *engine.InList:
		return collectCols(v.E, sch, set)
	}
	return false
}

// pushdown moves one-sided conjuncts of a Filter above a HashJoin below
// the join, where they can fuse with a scan kernel. It only fires when
// every conjunct compiles (compiled predicates cannot error, so filtering
// before the join is observationally identical to filtering after it: an
// inner equi-join preserves input row order, and conjuncts that stay
// above keep their original relative order). Returns nil when nothing
// moved.
func pushdown(f *engine.Filter, hj *engine.HashJoin, st *Stats, env *Env) engine.Node {
	joined := hj.Schema()
	leftW := hj.Left.Schema().NumCols()
	conjs := splitAnd(f.Pred)
	var leftPs, rightPs, residual []engine.Expr
	for _, c := range conjs {
		if _, ok := Compile(c, joined); !ok {
			return nil
		}
		set := make(map[int]bool)
		if !collectCols(c, joined, set) {
			return nil
		}
		side := 0 // -1 left, 1 right, 0 mixed or column-free
		for col := range set {
			s := -1
			if col >= leftW {
				s = 1
			}
			if side == 0 {
				side = s
			} else if side != s {
				side = 2 // mixed
				break
			}
		}
		switch side {
		case -1:
			leftPs = append(leftPs, c)
		case 1:
			rightPs = append(rightPs, rebaseCols(c, -leftW))
		default:
			residual = append(residual, c)
		}
	}
	if len(leftPs) == 0 && len(rightPs) == 0 {
		return nil
	}
	if len(leftPs) > 0 {
		hj.Left = lower(&engine.Filter{Input: hj.Left, Pred: andAll(leftPs)}, st, env)
	} else {
		hj.Left = lower(hj.Left, st, env)
	}
	if len(rightPs) > 0 {
		hj.Right = lower(&engine.Filter{Input: hj.Right, Pred: andAll(rightPs)}, st, env)
	} else {
		hj.Right = lower(hj.Right, st, env)
	}
	// With the sides settled, the join itself may lower onto the code-space
	// kernel (the pushed-down filters ride along as side predicates).
	var joinNode engine.Node = hj
	if js := lowerJoin(hj, st, env); js != nil {
		st.Lowered++
		joinNode = js
	}
	if len(residual) == 0 {
		return joinNode
	}
	f.Pred = andAll(residual)
	f.Input = joinNode
	return f
}

// splitAnd flattens a conjunction into its conjuncts in evaluation order.
func splitAnd(e engine.Expr) []engine.Expr {
	if b, ok := e.(*engine.Bin); ok && b.Op == engine.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []engine.Expr{e}
}

// andAll rebuilds a left-associative conjunction, preserving the
// conjuncts' evaluation order.
func andAll(es []engine.Expr) engine.Expr {
	out := es[0]
	for _, e := range es[1:] {
		out = &engine.Bin{Op: engine.OpAnd, L: out, R: e}
	}
	return out
}

// rebaseCols returns a copy of the expression with every column index
// shifted by delta (pushing a predicate below a join re-bases right-side
// columns into the right input's schema). The input is not mutated — it
// may be shared with the fallback subtree.
func rebaseCols(e engine.Expr, delta int) engine.Expr {
	switch v := e.(type) {
	case *engine.ColRef:
		return &engine.ColRef{Idx: v.Idx + delta, Name: v.Name}
	case *engine.Lit:
		return v
	case *engine.Bin:
		return &engine.Bin{Op: v.Op, L: rebaseCols(v.L, delta), R: rebaseCols(v.R, delta)}
	case *engine.Not:
		return &engine.Not{E: rebaseCols(v.E, delta)}
	case *engine.InList:
		return &engine.InList{E: rebaseCols(v.E, delta), List: v.List}
	}
	return e
}
