package kernels

import (
	"sort"

	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// Lower rewrites the supported subtrees of an engine plan onto kernel
// operators and returns the (possibly new) root. The lowering rules:
//
//	Filter(Scan)            → FilterScan        predicate compiles
//	Filter(FilterScan)      → FilterScan        conjunction fused
//	Filter(HashJoin)        → pushdown          every conjunct compiles;
//	                                            one-sided conjuncts move
//	                                            below the join and may then
//	                                            fuse with a scan
//	Aggregate(Scan)         → AggScan           always (argument errors
//	                                            reproduce row-engine order)
//	Aggregate(FilterScan)   → AggScan           selection vector flows in
//
// Everything else keeps its row-engine operator, with children lowered
// recursively. Each kernel operator retains its original subtree and falls
// back to it at run time when the scanned table is not available in
// chunked form, so results are byte-identical either way.
func Lower(root engine.Node, st *Stats) engine.Node {
	switch n := root.(type) {
	case *engine.Filter:
		n.Input = Lower(n.Input, st)
		switch in := n.Input.(type) {
		case *engine.Scan:
			if p, ok := Compile(n.Pred, in.Sch); ok {
				st.Lowered++
				return &FilterScan{Scan: in, Pred: p, Orig: n, St: st}
			}
		case *FilterScan:
			if p, ok := Compile(n.Pred, in.Scan.Sch); ok {
				st.Lowered++
				fused := &Pred{kind: predAnd, kids: []*Pred{in.Pred, p}}
				return &FilterScan{Scan: in.Scan, Pred: fused, Orig: n, St: st}
			}
		case *engine.HashJoin:
			if nn := pushdown(n, in, st); nn != nil {
				return nn
			}
		}
		return n
	case *engine.Aggregate:
		n.Input = Lower(n.Input, st)
		switch in := n.Input.(type) {
		case *engine.Scan:
			if need, ok := aggNeeds(n, in.Sch); ok {
				st.Lowered++
				return &AggScan{Scan: in, Agg: n, Orig: n, need: need, St: st}
			}
		case *FilterScan:
			if need, ok := aggNeeds(n, in.Scan.Sch); ok {
				st.Lowered++
				return &AggScan{Scan: in.Scan, Pred: in.Pred, Agg: n, Orig: n, need: need, St: st}
			}
		}
		return n
	case *engine.Project:
		n.Input = Lower(n.Input, st)
		return n
	case *engine.Sort:
		n.Input = Lower(n.Input, st)
		return n
	case *engine.Limit:
		n.Input = Lower(n.Input, st)
		return n
	case *engine.HashJoin:
		n.Left = Lower(n.Left, st)
		n.Right = Lower(n.Right, st)
		return n
	case *engine.UnionAll:
		for i := range n.Inputs {
			n.Inputs[i] = Lower(n.Inputs[i], st)
		}
		return n
	}
	return root
}

// aggNeeds returns the ascending set of input columns the aggregation
// reads: group-by keys plus every column referenced by an aggregate
// argument. It reports false when an argument contains an expression form
// it cannot analyze.
func aggNeeds(a *engine.Aggregate, sch table.Schema) ([]int, bool) {
	set := make(map[int]bool)
	for _, g := range a.GroupBy {
		if g < 0 || g >= sch.NumCols() {
			return nil, false
		}
		set[g] = true
	}
	for _, spec := range a.Aggs {
		if spec.Arg == nil {
			continue
		}
		if !collectCols(spec.Arg, sch, set) {
			return nil, false
		}
	}
	need := make([]int, 0, len(set))
	for c := range set {
		need = append(need, c)
	}
	sort.Ints(need)
	return need, true
}

// collectCols records every column an expression reads, reporting false on
// expression forms outside the engine's closed set (a custom Expr could
// observe columns invisibly, so it blocks lowering).
func collectCols(e engine.Expr, sch table.Schema, set map[int]bool) bool {
	switch v := e.(type) {
	case *engine.ColRef:
		if v.Idx < 0 || v.Idx >= sch.NumCols() {
			return false
		}
		set[v.Idx] = true
		return true
	case *engine.Lit:
		return true
	case *engine.Bin:
		return collectCols(v.L, sch, set) && collectCols(v.R, sch, set)
	case *engine.Not:
		return collectCols(v.E, sch, set)
	case *engine.InList:
		return collectCols(v.E, sch, set)
	}
	return false
}

// pushdown moves one-sided conjuncts of a Filter above a HashJoin below
// the join, where they can fuse with a scan kernel. It only fires when
// every conjunct compiles (compiled predicates cannot error, so filtering
// before the join is observationally identical to filtering after it: an
// inner equi-join preserves input row order, and conjuncts that stay
// above keep their original relative order). Returns nil when nothing
// moved.
func pushdown(f *engine.Filter, hj *engine.HashJoin, st *Stats) engine.Node {
	joined := hj.Schema()
	leftW := hj.Left.Schema().NumCols()
	conjs := splitAnd(f.Pred)
	var leftPs, rightPs, residual []engine.Expr
	for _, c := range conjs {
		if _, ok := Compile(c, joined); !ok {
			return nil
		}
		set := make(map[int]bool)
		if !collectCols(c, joined, set) {
			return nil
		}
		side := 0 // -1 left, 1 right, 0 mixed or column-free
		for col := range set {
			s := -1
			if col >= leftW {
				s = 1
			}
			if side == 0 {
				side = s
			} else if side != s {
				side = 2 // mixed
				break
			}
		}
		switch side {
		case -1:
			leftPs = append(leftPs, c)
		case 1:
			rightPs = append(rightPs, rebaseCols(c, -leftW))
		default:
			residual = append(residual, c)
		}
	}
	if len(leftPs) == 0 && len(rightPs) == 0 {
		return nil
	}
	if len(leftPs) > 0 {
		hj.Left = Lower(&engine.Filter{Input: hj.Left, Pred: andAll(leftPs)}, st)
	}
	if len(rightPs) > 0 {
		hj.Right = Lower(&engine.Filter{Input: hj.Right, Pred: andAll(rightPs)}, st)
	}
	if len(residual) == 0 {
		return hj
	}
	f.Pred = andAll(residual)
	f.Input = hj
	return f
}

// splitAnd flattens a conjunction into its conjuncts in evaluation order.
func splitAnd(e engine.Expr) []engine.Expr {
	if b, ok := e.(*engine.Bin); ok && b.Op == engine.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []engine.Expr{e}
}

// andAll rebuilds a left-associative conjunction, preserving the
// conjuncts' evaluation order.
func andAll(es []engine.Expr) engine.Expr {
	out := es[0]
	for _, e := range es[1:] {
		out = &engine.Bin{Op: engine.OpAnd, L: out, R: e}
	}
	return out
}

// rebaseCols returns a copy of the expression with every column index
// shifted by delta (pushing a predicate below a join re-bases right-side
// columns into the right input's schema). The input is not mutated — it
// may be shared with the fallback subtree.
func rebaseCols(e engine.Expr, delta int) engine.Expr {
	switch v := e.(type) {
	case *engine.ColRef:
		return &engine.ColRef{Idx: v.Idx + delta, Name: v.Name}
	case *engine.Lit:
		return v
	case *engine.Bin:
		return &engine.Bin{Op: v.Op, L: rebaseCols(v.L, delta), R: rebaseCols(v.R, delta)}
	case *engine.Not:
		return &engine.Not{E: rebaseCols(v.E, delta)}
	case *engine.InList:
		return &engine.InList{E: rebaseCols(v.E, delta), List: v.List}
	}
	return e
}
