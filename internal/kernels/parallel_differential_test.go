package kernels

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/sched"
	"github.com/shortcircuit-db/sc/internal/table"
)

// The parallel differential suite: the partitioned (chunk-parallel) mode
// must be byte-identical to the serial walk for every operator, encoding
// and partition shape — including dict-overflow columns, all-RLE columns,
// empty tables, single-group tables and token budgets wider than the
// chunk count. The serial side is itself pinned to the row engine by the
// other differential suites, so transitively parallel == row engine.
// Run under -race in CI, this also pins the thread-safety claims.

// parallelCtx clones a kernels context with a fresh token budget and the
// chunk-parallel path on. It returns the scheduler so tests can assert
// every token and byte reservation came back.
func parallelCtx(vec *engine.Context, tokens int) (*engine.Context, *sched.Scheduler) {
	sc := sched.New(tokens, 0)
	par := *vec
	par.Sched = sc
	par.ParallelScan = true
	return &par, sc
}

// mustDrain asserts the scheduler pool is fully returned: no leaked
// tokens, commitments or byte reservations after a run.
func mustDrain(t *testing.T, seed int64, sc *sched.Scheduler) {
	t.Helper()
	st := sc.Stats()
	if st.Idle != st.Tokens || st.ReservedBytes != 0 || st.Committed != 0 {
		t.Fatalf("seed %d: scheduler leaked: %+v", seed, st)
	}
}

// mustSameStats asserts the partitioned walk reproduced the serial
// counters exactly — every Stats field is a sum over chunks, so the fold
// over partitions must land on the same totals.
func mustSameStats(t *testing.T, seed int64, desc string, serial, par *Stats) {
	t.Helper()
	if *serial != *par {
		t.Fatalf("seed %d %s: stats diverged\nserial: %+v\nparallel: %+v", seed, desc, *serial, *par)
	}
}

func TestDifferentialParallelFilterProject(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for seed := 20000; seed < 20000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		tbl := genTable(rng, rowCount(rng))
		pred := genPred(rng, tbl, 2)
		opts := encOptions(rng)
		tokens := 2 + rng.Intn(7) // 2..8, regularly wider than the chunk count
		scan := func() *engine.Scan { return &engine.Scan{Name: "t", Sch: tbl.Schema} }
		_, vecCtx := ctxFor(t, "t", tbl, opts)
		parCtx, sc := parallelCtx(vecCtx, tokens)

		stS, stP := &Stats{}, &Stats{}
		want, wantErr := Lower(&engine.Filter{Input: scan(), Pred: pred}, stS).Run(vecCtx)
		got, gotErr := Lower(&engine.Filter{Input: scan(), Pred: pred}, stP).Run(parCtx)
		mustEqual(t, int64(seed), fmt.Sprintf("parallel filter w=%d", tokens), want, got, wantErr, gotErr)
		if wantErr == nil {
			mustSameStats(t, int64(seed), "filter", stS, stP)
		}
		mustDrain(t, int64(seed), sc)

		// Columns-only projection with the same predicate under it.
		var exprs []engine.Expr
		var names []string
		for k := 0; k < 1+rng.Intn(3); k++ {
			idx := rng.Intn(len(tbl.Cols))
			exprs = append(exprs, &engine.ColRef{Idx: idx, Name: tbl.Schema.Cols[idx].Name})
			names = append(names, fmt.Sprintf("o%d", k))
		}
		buildProj := func() engine.Node {
			pr, err := engine.NewProject(&engine.Filter{Input: scan(), Pred: pred}, exprs, names)
			if err != nil {
				t.Fatalf("seed %d: NewProject: %v", seed, err)
			}
			return pr
		}
		stS, stP = &Stats{}, &Stats{}
		want, wantErr = Lower(buildProj(), stS).Run(vecCtx)
		got, gotErr = Lower(buildProj(), stP).Run(parCtx)
		mustEqual(t, int64(seed), "parallel project", want, got, wantErr, gotErr)
		if wantErr == nil {
			mustSameStats(t, int64(seed), "project", stS, stP)
		}
		mustDrain(t, int64(seed), sc)
	}
}

func TestDifferentialParallelAggregate(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	mergeable, serialKept := 0, 0
	for seed := 21000; seed < 21000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		tbl := genTable(rng, rowCount(rng))
		build := func() (engine.Node, error) {
			var in engine.Node = &engine.Scan{Name: "t", Sch: tbl.Schema}
			if rng := rand.New(rand.NewSource(int64(seed))); rng.Intn(2) == 0 {
				in = &engine.Filter{Input: in, Pred: genPred(rng, tbl, 1)}
			}
			return genAgg(rand.New(rand.NewSource(int64(seed)+7)), tbl, in)
		}
		plain, err := build()
		if err != nil {
			continue
		}
		loweredSrc, err := build()
		if err != nil {
			t.Fatalf("seed %d: second build failed: %v", seed, err)
		}
		_, vecCtx := ctxFor(t, "t", tbl, encOptions(rng))
		tokens := 2 + rng.Intn(7)
		parCtx, sc := parallelCtx(vecCtx, tokens)

		stS, stP := &Stats{}, &Stats{}
		want, wantErr := Lower(plain, stS).Run(vecCtx)
		got, gotErr := Lower(loweredSrc, stP).Run(parCtx)
		mustEqual(t, int64(seed), "parallel aggregate", want, got, wantErr, gotErr)
		if wantErr == nil {
			mustSameStats(t, int64(seed), "aggregate", stS, stP)
		}
		mustDrain(t, int64(seed), sc)

		if ag, ok := Lower(loweredSrc, &Stats{}).(*AggScan); ok {
			if ag.Agg.NewAcc().ExactMergeable() {
				mergeable++
			} else {
				serialKept++
			}
		}
	}
	// The generator must exercise both sides of the ExactMergeable gate:
	// partition-merged aggregates and order-dependent ones (AVG, float
	// sums) that keep the serial path.
	if mergeable == 0 || serialKept == 0 {
		t.Fatalf("gate coverage: %d mergeable, %d serial-kept aggregate plans", mergeable, serialKept)
	}
}

func TestDifferentialParallelJoin(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for seed := 22000; seed < 22000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		nL, nR := rowCount(rng), rowCount(rng)
		left, right := genTable(rng, nL), genTable(rng, nR)
		typ := table.Int
		if rng.Intn(2) == 0 {
			typ = table.Str
		}
		lk := withKey(rng, left, "lk", typ, nL)
		rk := withKey(rng, right, "rk", typ, nR)
		build := func() engine.Node {
			return &engine.HashJoin{
				Left:      &engine.Scan{Name: "L", Sch: left.Schema},
				Right:     &engine.Scan{Name: "R", Sch: right.Schema},
				LeftKeys:  []int{lk},
				RightKeys: []int{rk},
			}
		}
		opts := map[string]encoding.Options{"L": encOptions(rng), "R": encOptions(rng)}
		_, vecCtx := joinCtxFor(t, map[string]*table.Table{"L": left, "R": right}, opts)
		tokens := 2 + rng.Intn(7)
		parCtx, sc := parallelCtx(vecCtx, tokens)

		stS, stP := &Stats{}, &Stats{}
		want, wantErr := Lower(build(), stS).Run(vecCtx)
		got, gotErr := Lower(build(), stP).Run(parCtx)
		mustEqual(t, int64(seed), "parallel join Run", want, got, wantErr, gotErr)
		if wantErr == nil {
			mustSameStats(t, int64(seed), "join", stS, stP)
		}
		mustDrain(t, int64(seed), sc)

		// The chunked-output path: the probe pre-pass partitions, the
		// builder assembly stays serial, and the emitted chunks must decode
		// to the same bytes.
		if co, ok := Lower(build(), &Stats{}).(ChunkedOp); ok && wantErr == nil {
			got2, gotErr2 := decodeChunked(t, co, parCtx)
			mustEqual(t, int64(seed), "parallel join RunChunked", want, got2, wantErr, gotErr2)
			mustDrain(t, int64(seed), sc)
		}
	}
}

// TestDifferentialParallelChunkedOutput pins the chunked-output kernels
// (FilterScan/ProjectScan RunChunked): the predicate pre-pass partitions
// across tokens while builder emission stays serial in group order, so the
// emitted chunk stream decodes byte-identically.
func TestDifferentialParallelChunkedOutput(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	chunked := 0
	for seed := 23000; seed < 23000+iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		tbl := genTable(rng, rowCount(rng))
		pred := genPred(rng, tbl, 2)
		opts := encOptions(rng)
		scan := func() *engine.Scan { return &engine.Scan{Name: "t", Sch: tbl.Schema} }
		_, vecCtx := ctxFor(t, "t", tbl, opts)
		tokens := 2 + rng.Intn(7)
		parCtx, sc := parallelCtx(vecCtx, tokens)

		serialOp, ok := Lower(&engine.Filter{Input: scan(), Pred: pred}, &Stats{}).(ChunkedOp)
		if !ok {
			continue
		}
		parOp := Lower(&engine.Filter{Input: scan(), Pred: pred}, &Stats{}).(ChunkedOp)
		want, wantErr := decodeChunked(t, serialOp, vecCtx)
		got, gotErr := decodeChunked(t, parOp, parCtx)
		mustEqual(t, int64(seed), "parallel chunked filter", want, got, wantErr, gotErr)
		mustDrain(t, int64(seed), sc)
		if wantErr == nil {
			chunked++
		}
	}
	if chunked == 0 {
		t.Fatal("no iteration exercised the chunked-output pre-pass")
	}
}

// TestParallelDirectedShapes walks the corner cases the randomized suite
// might under-sample, one directed table per shape: all-RLE columns, a
// dictionary-overflow column, an empty table, a single row group, and a
// token budget far wider than the chunk count.
func TestParallelDirectedShapes(t *testing.T) {
	cases := []struct {
		name   string
		rows   int
		shape  colShape
		chunk  int
		tokens int
	}{
		{"all-rle", 256, shapeConst, 8, 4},
		{"dict-overflow", 300, shapeHighCard, 16, 4},
		{"empty-table", 0, shapeLowCard, 8, 4},
		{"one-row", 1, shapeLowCard, 8, 4},
		{"single-group", 200, shapeLowCard, 0, 4}, // one chunk: plan must stay serial
		{"workers-beyond-chunks", 64, shapeLowCard, 32, 16},
		{"tiny-chunks", 100, shapeRuns, 1, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			var sch table.Schema
			sch.Cols = []table.Column{{Name: "a", Type: table.Int}, {Name: "b", Type: table.Str}}
			tbl := &table.Table{Schema: sch, Cols: []*table.Vector{
				genVector(rng, table.Int, tc.shape, tc.rows),
				genVector(rng, table.Str, tc.shape, tc.rows),
			}}
			pred := &engine.Bin{Op: engine.OpGe, L: &engine.ColRef{Idx: 0, Name: "a"}, R: &engine.Lit{V: table.IntValue(3)}}
			opts := encoding.Options{ChunkRows: tc.chunk}
			scan := func() *engine.Scan { return &engine.Scan{Name: "t", Sch: tbl.Schema} }
			_, vecCtx := ctxFor(t, "t", tbl, opts)
			parCtx, sc := parallelCtx(vecCtx, tc.tokens)

			stS, stP := &Stats{}, &Stats{}
			want, wantErr := Lower(&engine.Filter{Input: scan(), Pred: pred}, stS).Run(vecCtx)
			got, gotErr := Lower(&engine.Filter{Input: scan(), Pred: pred}, stP).Run(parCtx)
			mustEqual(t, 7, tc.name, want, got, wantErr, gotErr)
			if wantErr == nil {
				mustSameStats(t, 7, tc.name, stS, stP)
			}
			mustDrain(t, 7, sc)
		})
	}
}
