// Package kernels is S/C's compressed-execution subsystem: vectorized
// Filter/Aggregate/Scan operators that run directly on encoding.Compressed
// chunks without decompressing them first.
//
// The row engine (internal/engine) pays a full-column decode before it
// touches a single value. The kernels instead work per aligned row group
// (one chunk per column) and keep data encoded as long as possible:
//
//   - equality, IN and range predicates on dictionary chunks compare
//     bit-packed codes — ranges go through the sorted-dictionary code map,
//     so a predicate touches the entry table once and then only codes;
//   - predicates on run-length chunks are decided once per run;
//   - COUNT/SUM/GROUP BY consume RLE runs without expanding them, through
//     the row engine's own AggAcc accumulator so results stay
//     byte-identical;
//   - selection vectors flow between the filter and aggregate/materialize
//     stages, and values are materialized only for rows that survive
//     (late materialization) — a chunk whose selection is empty is skipped
//     without decoding any column.
//
// Lower rewrites supported Filter/Aggregate subtrees of an engine plan
// onto kernel operators. Every kernel operator keeps its original
// row-engine subtree and falls back to it — byte-identically — whenever a
// table is not available in chunked form (plain catalog entries, legacy v1
// files, misaligned chunk boundaries).
package kernels

import (
	"fmt"
	"math/bits"

	"github.com/shortcircuit-db/sc/internal/chunkio"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// Stats counts what the kernels saved during one plan execution. The
// controller copies them into NodeMetrics and emits them as a KernelDone
// event.
type Stats struct {
	// Lowered is the number of plan operators rewritten onto kernels.
	Lowered int64
	// Fallbacks is the number of kernel operator executions that fell back
	// to the row engine (input not available in chunked form).
	Fallbacks int64
	// ChunksSkipped counts column-chunks never touched at all: their rows
	// were eliminated by the selection vector or the column by the
	// operator's projection.
	ChunksSkipped int64
	// CodeFilteredRows counts rows whose predicate verdict was computed in
	// code space (dictionary codes or RLE runs) without materializing the
	// row's value.
	CodeFilteredRows int64
	// DecodesAvoided counts column-chunks served from their encoded form
	// (dictionary lookups, run walks) where the row engine would have paid
	// a full chunk decode.
	DecodesAvoided int64
	// DecodedBytes is the raw bytes the kernels did materialize, full
	// chunk decodes and late-materialized survivors alike.
	DecodedBytes int64
	// JoinBuildRows counts rows hashed into a join build table in code
	// space (dictionary codes remapped through the shared key dictionary,
	// or key-column-only reads) without materializing the full row.
	JoinBuildRows int64
	// JoinProbeRows counts rows probed against a code-space join build
	// table; probe rows whose key is absent from the build-side dictionary
	// are dropped before any column decodes.
	JoinProbeRows int64
	// ChunksPassed counts output column-chunks the chunked-output pipeline
	// passed through verbatim or emitted from gathered codes — intermediate
	// bytes that never materialized between operators.
	ChunksPassed int64
	// ReencodedChunks counts output column-chunks re-encoded from
	// materialized values with codec auto-selection (chunkio's fallback when
	// no code-space path applies).
	ReencodedChunks int64
	// DictReused counts output chunks whose dictionary was served entirely
	// by the session dictionary cache — a recurring refresh reusing the
	// previous run's entries instead of rebuilding them.
	DictReused int64
}

// addBuilder folds one chunkio.Builder's counters into the stats. Bytes the
// builder materialized itself (dictionary-overflow conversions) count as
// decoded: they became real values.
func (st *Stats) addBuilder(c chunkio.Counters) {
	st.ChunksPassed += c.Passthrough + c.CodeChunks
	st.ReencodedChunks += c.Reencoded
	st.DictReused += c.DictReused
	st.DecodedBytes += c.MaterializedBytes
}

// Env is the chunked-output environment of one node's lowering: the session
// dictionary cache, the producing node's name (keying that cache) and the
// codec policy for re-encoded chunks. A nil Env still lets operators emit
// chunked output — with default options and no cross-run dictionary reuse.
type Env struct {
	Session *chunkio.Session
	Node    string
	Opts    encoding.Options

	nextID int
}

// newID labels one chunk-producing operator within the node's plan, so its
// session dictionaries get a stable key across runs (Lower traverses the
// same plan shape in the same order every run).
func (e *Env) newID() int {
	if e == nil {
		return 0
	}
	e.nextID++
	return e.nextID
}

// builderFor returns a Builder for one operator's output.
func (e *Env) builderFor(sch table.Schema, id int) *chunkio.Builder {
	if e == nil {
		return chunkio.NewBuilder(sch, encoding.Options{}, nil, "")
	}
	return chunkio.NewBuilder(sch, e.Opts, e.Session, fmt.Sprintf("%s#%d", e.Node, id))
}

// ChunkedOp is a kernel operator that can emit its output as compressed
// chunks. RunChunked returns the chunked output when the operator stayed in
// code space, or the row-engine table when it fell back — never both.
// Decoding the chunked output yields a table byte-identical to what Run
// would have returned.
type ChunkedOp interface {
	engine.Node
	RunChunked(ctx *engine.Context) (*encoding.Compressed, *table.Table, error)
}

// --- selection bitmap ---

// bitmap is a fixed-size row-selection vector over one row group.
type bitmap struct {
	n     int
	words []uint64
}

func newBitmap(n int) *bitmap {
	return &bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// clampTail zeroes the unused bits of the last word.
func (b *bitmap) clampTail() {
	if r := b.n & 63; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= ^uint64(0) >> uint(64-r)
	}
}

func (b *bitmap) set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

func (b *bitmap) get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// setRange sets rows [lo, hi).
func (b *bitmap) setRange(lo, hi int) {
	for i := lo; i < hi && i&63 != 0; i++ {
		b.set(i)
	}
	if lo&63 != 0 {
		lo = (lo | 63) + 1
	}
	for ; lo+64 <= hi; lo += 64 {
		b.words[lo>>6] = ^uint64(0)
	}
	for ; lo < hi; lo++ {
		b.set(lo)
	}
}

func (b *bitmap) and(o *bitmap) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

func (b *bitmap) or(o *bitmap) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

func (b *bitmap) not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.clampTail()
}

func (b *bitmap) count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

func (b *bitmap) none() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b *bitmap) all() bool { return b.count() == b.n }

// indexes lists the selected rows ascending, the form gather-style
// consumers (chunkio appenders) take.
func (b *bitmap) indexes() []int32 {
	out := make([]int32, 0, b.count())
	for w, word := range b.words {
		for word != 0 {
			i := bits.TrailingZeros64(word)
			out = append(out, int32(w<<6+i))
			word &= word - 1
		}
	}
	return out
}

// --- per-row-group evaluation context ---

// colState is the cached per-column chunk state of one row group.
type colState struct {
	parsed bool
	dict   *encoding.DictView
	runs   []encoding.Run
	vec    *table.Vector // fully decoded values
}

// chunkCtx evaluates one aligned row group. Parsed and decoded forms are
// cached per column so predicate evaluation and output materialization
// share work: a column decoded for the predicate is reused by the gather.
type chunkCtx struct {
	ct     *encoding.Compressed
	group  int
	rows   int
	st     *Stats
	cols   []colState
	passed []bool // chunks handed through to a chunked output verbatim
}

func newChunkCtx(ct *encoding.Compressed, group, rows int, st *Stats) *chunkCtx {
	return &chunkCtx{ct: ct, group: group, rows: rows, st: st, cols: make([]colState, len(ct.Cols))}
}

func (cc *chunkCtx) chunk(col int) encoding.Chunk { return cc.ct.Cols[col][cc.group] }

func (cc *chunkCtx) colType(col int) table.Type { return cc.ct.Schema.Cols[col].Type }

// parse classifies the column's chunk without decoding values: dictionary
// chunks expose their entry table and codes, RLE chunks their runs. Other
// codecs leave the state unparsed; callers use vector() for those.
func (cc *chunkCtx) parse(col int) (*colState, error) {
	cs := &cc.cols[col]
	if cs.parsed || cs.vec != nil {
		return cs, nil
	}
	ch := cc.chunk(col)
	switch ch.Codec {
	case encoding.Dict:
		dv, err := encoding.ParseDict(ch, cc.colType(col))
		if err != nil {
			return nil, err
		}
		if _, err := dv.Codes(); err != nil {
			return nil, err
		}
		cs.dict = dv
	case encoding.RLE:
		runs, err := encoding.ParseRuns(ch, cc.colType(col))
		if err != nil {
			return nil, err
		}
		cs.runs = runs
	}
	cs.parsed = true
	return cs, nil
}

// vector returns the fully decoded values of the column's chunk, caching
// the result and counting the decoded bytes.
func (cc *chunkCtx) vector(col int) (*table.Vector, error) {
	cs := &cc.cols[col]
	if cs.vec != nil {
		return cs.vec, nil
	}
	vec, err := encoding.DecodeChunk(cc.chunk(col), cc.colType(col))
	if err != nil {
		return nil, err
	}
	cs.vec = vec
	cc.st.DecodedBytes += vec.ByteSize()
	return vec, nil
}

// accessor returns a function yielding the column's value at increasing
// row indexes, materializing as little as possible: decoded vectors and
// dictionary lookups are random access, RLE runs advance a cursor.
func (cc *chunkCtx) accessor(col int) (func(i int) table.Value, error) {
	cs, err := cc.parse(col)
	if err != nil {
		return nil, err
	}
	switch {
	case cs.vec != nil:
		return cs.vec.Value, nil
	case cs.dict != nil:
		codes, _ := cs.dict.Codes()
		dv := cs.dict
		return func(i int) table.Value { return dv.Value(int(codes[i])) }, nil
	case cs.runs != nil:
		runs := cs.runs
		runIdx, runStart := 0, 0
		return func(i int) table.Value {
			if i < runStart {
				runIdx, runStart = 0, 0
			}
			for i >= runStart+runs[runIdx].Len {
				runStart += runs[runIdx].Len
				runIdx++
			}
			return runs[runIdx].Val
		}, nil
	default:
		vec, err := cc.vector(col)
		if err != nil {
			return nil, err
		}
		return vec.Value, nil
	}
}

// reader is accessor plus a flag telling the caller whether the values come
// from a fully decoded vector — whose bytes were already counted at decode
// time — or are late-materialized (dictionary/RLE reads) and must be
// counted per surviving value.
func (cc *chunkCtx) reader(col int) (func(i int) table.Value, bool, error) {
	fn, err := cc.accessor(col)
	if err != nil {
		return nil, false, err
	}
	return fn, cc.cols[col].vec != nil, nil
}

// markPassed records that a column's chunk was handed to a chunked output
// verbatim — it was neither skipped nor decoded, and the output builder
// already counted it.
func (cc *chunkCtx) markPassed(col int) {
	if cc.passed == nil {
		cc.passed = make([]bool, len(cc.cols))
	}
	cc.passed[col] = true
}

// finish settles the row group's counters: column-chunks never touched
// were skipped outright, chunks touched only in their encoded form avoided
// a decode the row engine would have paid.
func (cc *chunkCtx) finish() {
	for i := range cc.cols {
		cs := &cc.cols[i]
		switch {
		case cs.vec != nil:
			// Fully decoded; DecodedBytes was counted at decode time.
		case cs.parsed:
			cc.st.DecodesAvoided++
		case cc.passed != nil && cc.passed[i]:
			// Passed through to the output; the builder counted it.
		default:
			cc.st.ChunksSkipped++
		}
	}
}

// materialize appends the selected rows of every column to out, decoding
// only what the selection and each chunk's encoding demand.
func (cc *chunkCtx) materialize(out *table.Table, sel *bitmap) error {
	if sel.none() {
		return nil
	}
	for ci := range cc.cols {
		if err := cc.materializeCol(out.Cols[ci], ci, sel); err != nil {
			return err
		}
	}
	return nil
}

// materializeCol appends the selected rows of one column to dst. A nil
// selection means every row. The Project-passthrough kernel uses it to
// materialize only the projected columns, in output order.
func (cc *chunkCtx) materializeCol(dst *table.Vector, ci int, sel *bitmap) error {
	full := sel == nil || sel.all()
	cs, err := cc.parse(ci)
	if err != nil {
		return err
	}
	switch {
	case cs.vec != nil:
		if full {
			appendAll(dst, cs.vec)
		} else {
			appendSelected(cc.st, dst, cs.vec, sel)
		}
	case cs.dict != nil:
		codes, _ := cs.dict.Codes()
		for i := 0; i < cc.rows; i++ {
			if !full && !sel.get(i) {
				continue
			}
			appendValue(cc.st, dst, cs.dict.Value(int(codes[i])))
		}
	case cs.runs != nil:
		pos := 0
		for _, r := range cs.runs {
			for i := pos; i < pos+r.Len; i++ {
				if !full && !sel.get(i) {
					continue
				}
				appendValue(cc.st, dst, r.Val)
			}
			pos += r.Len
		}
	default:
		vec, err := cc.vector(ci)
		if err != nil {
			return err
		}
		if full {
			appendAll(dst, vec)
		} else {
			appendSelected(cc.st, dst, vec, sel)
		}
	}
	return nil
}

// appendAll bulk-appends a whole decoded chunk (bytes already counted at
// decode time).
func appendAll(dst, src *table.Vector) {
	switch src.Type {
	case table.Int:
		dst.Ints = append(dst.Ints, src.Ints...)
	case table.Float:
		dst.Floats = append(dst.Floats, src.Floats...)
	default:
		dst.Strs = append(dst.Strs, src.Strs...)
	}
}

// appendSelected gathers the selected rows of a decoded chunk (bytes
// already counted at decode time).
func appendSelected(st *Stats, dst, src *table.Vector, sel *bitmap) {
	for i := 0; i < sel.n; i++ {
		if !sel.get(i) {
			continue
		}
		switch src.Type {
		case table.Int:
			dst.Ints = append(dst.Ints, src.Ints[i])
		case table.Float:
			dst.Floats = append(dst.Floats, src.Floats[i])
		default:
			dst.Strs = append(dst.Strs, src.Strs[i])
		}
	}
}

// appendValue late-materializes one surviving value, counting the bytes
// that actually had to be produced.
func appendValue(st *Stats, dst *table.Vector, v table.Value) {
	switch dst.Type {
	case table.Int:
		dst.Ints = append(dst.Ints, v.I)
		st.DecodedBytes += 8
	case table.Float:
		dst.Floats = append(dst.Floats, v.F)
		st.DecodedBytes += 8
	default:
		dst.Strs = append(dst.Strs, v.S)
		st.DecodedBytes += int64(len(v.S)) + 16
	}
}

// countMaterialized counts one late-materialized value handed to a chunked
// output — the chunked twin of appendValue's accounting.
func countMaterialized(st *Stats, v table.Value) {
	if v.Type == table.Str {
		st.DecodedBytes += int64(len(v.S)) + 16
	} else {
		st.DecodedBytes += 8
	}
}

// setValue scatters one surviving value into a pre-sized vector; counted
// marks values served from an already-counted decoded chunk.
func setValue(st *Stats, dst *table.Vector, pos int, v table.Value, counted bool) {
	switch dst.Type {
	case table.Int:
		dst.Ints[pos] = v.I
		if !counted {
			st.DecodedBytes += 8
		}
	case table.Float:
		dst.Floats[pos] = v.F
		if !counted {
			st.DecodedBytes += 8
		}
	default:
		dst.Strs[pos] = v.S
		if !counted {
			st.DecodedBytes += int64(len(v.S)) + 16
		}
	}
}

// resolveChunked resolves a scan's table in compressed chunked form, or
// returns nil when the kernel must fall back to the row engine: no
// compressed resolver, table not chunked, schema mismatch (the fallback
// surfaces the identical error), or misaligned chunk boundaries.
func resolveChunked(ctx *engine.Context, sc *engine.Scan) (*encoding.Compressed, []int) {
	if ctx == nil || ctx.ResolveCompressed == nil {
		return nil, nil
	}
	ct, err := ctx.ResolveCompressed(sc.Name)
	if err != nil || ct == nil {
		return nil, nil
	}
	if !ct.Schema.Equal(sc.Sch) {
		return nil, nil
	}
	groups := ct.RowGroups()
	if groups == nil {
		return nil, nil
	}
	return ct, groups
}

// --- FilterScan ---

// FilterScan is a fused Filter∘Scan kernel: it resolves the scanned table
// in chunked form, evaluates the compiled predicate per row group — in
// code space where the chunk encoding allows — and late-materializes only
// the surviving rows. Output is byte-identical to Orig, the row-engine
// subtree it replaced, which also serves as the runtime fallback.
type FilterScan struct {
	Scan *engine.Scan
	Pred *Pred
	Orig engine.Node
	St   *Stats
	Env  *Env // chunked-output environment (nil: defaults, no dict cache)
	ID   int  // stable operator label within the node, keys the dict cache
}

// Schema implements engine.Node.
func (f *FilterScan) Schema() table.Schema { return f.Scan.Sch }

// String implements engine.Node.
func (f *FilterScan) String() string {
	return fmt.Sprintf("KernelFilterScan(%s, %s)", f.Scan.Name, f.Pred)
}

// Run implements engine.Node.
func (f *FilterScan) Run(ctx *engine.Context) (*table.Table, error) {
	ct, groups := resolveChunked(ctx, f.Scan)
	if ct == nil {
		f.St.Fallbacks++
		return f.Orig.Run(ctx)
	}
	if pp := planPartitions(ctx, ct, groups); pp != nil {
		out, err := f.runParallel(pp, ct, groups)
		if err != nil {
			return nil, fmt.Errorf("kernels: filter %q: %w", f.Scan.Name, err)
		}
		return out, nil
	}
	out := table.New(f.Scan.Sch)
	for g, rows := range groups {
		cc := newChunkCtx(ct, g, rows, f.St)
		sel, err := f.Pred.eval(cc)
		if err != nil {
			return nil, fmt.Errorf("kernels: filter %q: %w", f.Scan.Name, err)
		}
		if err := cc.materialize(out, sel); err != nil {
			return nil, fmt.Errorf("kernels: filter %q: %w", f.Scan.Name, err)
		}
		cc.finish()
	}
	return out, nil
}
