package obs_test

import (
	"context"
	"sync"
	"testing"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/exec"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/obs"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/table"
)

// TestEmitNilSink: emitting into a nil observer is a safe no-op, and Multi
// elides nil members.
func TestEmitNilSink(t *testing.T) {
	obs.Emit(nil, obs.Event{Kind: obs.NodeStart}) // must not panic

	if got := obs.Multi(nil, nil); got != nil {
		t.Fatalf("Multi(nil, nil) = %v, want nil", got)
	}
	var n int
	one := obs.Func(func(obs.Event) { n++ })
	if got := obs.Multi(nil, one, nil); got == nil {
		t.Fatal("Multi dropped its only live observer")
	} else {
		got.OnEvent(obs.Event{})
	}
	if n != 1 {
		t.Fatalf("live observer saw %d events, want 1", n)
	}
}

// TestMultiFanoutOrder: Multi delivers to every observer in argument order.
func TestMultiFanoutOrder(t *testing.T) {
	var order []string
	a := obs.Func(func(obs.Event) { order = append(order, "a") })
	b := obs.Func(func(obs.Event) { order = append(order, "b") })
	obs.Multi(a, nil, b).OnEvent(obs.Event{})
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("fan-out order = %v, want [a b]", order)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[obs.Kind]string{
		obs.NodeStart:  "NodeStart",
		obs.NodeDone:   "NodeDone",
		obs.KernelDone: "KernelDone",
		obs.DecodeDone: "DecodeDone",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind %d String = %q, want %q", int(k), got, want)
		}
	}
	if got := obs.Kind(99).String(); got != "Kind(99)" {
		t.Fatalf("unknown kind String = %q", got)
	}
}

// seqLog records events with their arrival order.
type seqLog struct {
	mu     sync.Mutex
	events []obs.Event
}

func (l *seqLog) OnEvent(e obs.Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// TestControllerEventOrdering runs a vectorized join workload and checks
// the per-node protocol: NodeStart strictly before KernelDone strictly
// before NodeDone, with the join-kernel counters populated.
func TestControllerEventOrdering(t *testing.T) {
	st := storage.NewMemStore()
	enc := encoding.Options{ChunkRows: 32}
	facts := table.New(table.NewSchema(
		table.Column{Name: "item", Type: table.Str},
		table.Column{Name: "qty", Type: table.Int},
	))
	for i := 0; i < 200; i++ {
		if err := facts.AppendRow(
			table.StrValue([]string{"ale", "bock", "stout"}[i%3]),
			table.IntValue(int64(i%7)),
		); err != nil {
			t.Fatal(err)
		}
	}
	dims := table.New(table.NewSchema(
		table.Column{Name: "item", Type: table.Str},
		table.Column{Name: "label", Type: table.Str},
	))
	for _, r := range [][2]string{{"ale", "A"}, {"stout", "S"}} {
		if err := dims.AppendRow(table.StrValue(r[0]), table.StrValue(r[1])); err != nil {
			t.Fatal(err)
		}
	}
	for name, tb := range map[string]*table.Table{"facts": facts, "dims": dims} {
		if err := exec.SaveTableChunked(st, name, tb, enc); err != nil {
			t.Fatal(err)
		}
	}
	w := &exec.Workload{Nodes: []exec.NodeSpec{
		{Name: "labeled", SQL: `
			SELECT f.item AS item, f.qty AS qty, d.label AS label
			FROM facts f JOIN dims d ON f.item = d.item`},
		{Name: "only_items", SQL: `SELECT item, qty FROM labeled`},
	}}
	g, _, err := w.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	plan := core.NewPlan(topo)
	for i := range plan.Flagged {
		plan.Flagged[i] = true
	}
	log := &seqLog{}
	ctl := &exec.Controller{
		Store: st, Mem: memcat.New(1 << 30),
		Encoding: &enc, Vectorized: true, Obs: log,
	}
	if _, err := ctl.Run(context.Background(), w, g, plan); err != nil {
		t.Fatal(err)
	}

	pos := func(kind obs.Kind, node string) int {
		for i, e := range log.events {
			if e.Kind == kind && e.Node == node {
				return i
			}
		}
		return -1
	}
	for _, node := range []string{"labeled", "only_items"} {
		start, kernel, done := pos(obs.NodeStart, node), pos(obs.KernelDone, node), pos(obs.NodeDone, node)
		if start < 0 || kernel < 0 || done < 0 {
			t.Fatalf("%s: missing events (start=%d kernel=%d done=%d)", node, start, kernel, done)
		}
		if !(start < kernel && kernel < done) {
			t.Fatalf("%s: event order start=%d kernel=%d done=%d, want start < kernel < done",
				node, start, kernel, done)
		}
	}

	ke := log.events[pos(obs.KernelDone, "labeled")]
	if ke.JoinBuildRows != 2 {
		t.Fatalf("JoinBuildRows = %d, want 2 (dims rows hashed)", ke.JoinBuildRows)
	}
	if ke.JoinProbeRows != int64(facts.NumRows()) {
		t.Fatalf("JoinProbeRows = %d, want %d", ke.JoinProbeRows, facts.NumRows())
	}
	if ke.Lowered == 0 {
		t.Fatal("join node reported no lowered operators")
	}
	// The bare projection node must pass through the kernels too.
	if pe := log.events[pos(obs.KernelDone, "only_items")]; pe.Lowered == 0 {
		t.Fatal("projection node reported no lowered operators")
	}
}
