package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestWithRunStampsRunIDAndSeq(t *testing.T) {
	var got []Event
	o := WithRun("run-000042", Func(func(e Event) { got = append(got, e) }))
	o.OnEvent(Event{Kind: NodeStart, Node: "a", Step: 0})
	o.OnEvent(Event{Kind: NodeDone, Node: "a", Step: 0})
	o.OnEvent(Event{Kind: Evicted, Node: "a", Step: 0})
	if len(got) != 3 {
		t.Fatalf("forwarded %d events, want 3", len(got))
	}
	for i, e := range got {
		if e.RunID != "run-000042" {
			t.Fatalf("event %d RunID = %q", i, e.RunID)
		}
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
}

func TestWithRunNilObserver(t *testing.T) {
	if WithRun("r", nil) != nil {
		t.Fatal("WithRun over a nil observer must stay nil (disabled hot path)")
	}
}

func TestWithRunPreservesInnerScope(t *testing.T) {
	// An event already scoped by an inner WithRun (e.g. a Controller nested
	// under a gateway's own stamper) keeps its original correlation.
	var got Event
	outer := WithRun("outer", Func(func(e Event) { got = e }))
	inner := WithRun("inner", outer)
	inner.OnEvent(Event{Kind: NodeStart, Node: "a"})
	if got.RunID != "inner" || got.Seq != 1 {
		t.Fatalf("RunID/Seq = %q/%d, want inner/1", got.RunID, got.Seq)
	}
}

func TestWithRunConcurrentSeqUnique(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int64]bool)
	o := WithRun("r", Func(func(e Event) {
		mu.Lock()
		seen[e.Seq] = true
		mu.Unlock()
	}))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				o.OnEvent(Event{Kind: NodeStart})
			}
		}()
	}
	wg.Wait()
	if len(seen) != 800 {
		t.Fatalf("%d distinct Seq values for 800 events", len(seen))
	}
	for s := int64(1); s <= 800; s++ {
		if !seen[s] {
			t.Fatalf("Seq %d missing (not dense)", s)
		}
	}
}

func TestEventMarshalJSONRunIDAndSeq(t *testing.T) {
	e := Event{Kind: NodeStart, Node: "a", Step: 0, RunID: "run-000007", Seq: 12}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `"run_id":"run-000007"`) || !strings.Contains(s, `"seq":12`) {
		t.Fatalf("run correlation missing from wire shape: %s", s)
	}
	// Unscoped events stay compact.
	data, err = json.Marshal(Event{Kind: NodeStart, Node: "a", Step: 0})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "run_id") || strings.Contains(string(data), `"seq"`) {
		t.Fatalf("zero run fields serialized: %s", data)
	}
}
