package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestEventMarshalJSON(t *testing.T) {
	e := Event{
		Kind: NodeDone, Node: "mv_a", Step: 3,
		Bytes: 1024, Encoded: 256, Elapsed: 1500 * time.Millisecond,
		Read: 250 * time.Millisecond, Flagged: true,
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got["kind"] != "NodeDone" || got["node"] != "mv_a" {
		t.Fatalf("kind/node = %v/%v", got["kind"], got["node"])
	}
	if got["step"].(float64) != 3 || got["bytes"].(float64) != 1024 {
		t.Fatalf("step/bytes = %v/%v", got["step"], got["bytes"])
	}
	if got["elapsed_seconds"].(float64) != 1.5 {
		t.Fatalf("elapsed_seconds = %v", got["elapsed_seconds"])
	}
	if got["flagged"] != true {
		t.Fatalf("flagged = %v", got["flagged"])
	}
	// Zero-valued fields are omitted; kernel counters never appear here.
	for _, absent := range []string{"error", "lowered", "write_seconds", "score"} {
		if _, ok := got[absent]; ok {
			t.Fatalf("zero field %q serialized: %s", absent, data)
		}
	}
}

func TestEventMarshalJSONErrorAndStep(t *testing.T) {
	e := Event{Kind: NodeDone, Node: "mv_b", Step: -1, Err: errors.New("boom")}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `"error":"boom"`) {
		t.Fatalf("error not serialized as string: %s", s)
	}
	if strings.Contains(s, `"step"`) {
		t.Fatalf("step -1 (not applicable) serialized: %s", s)
	}
}

func TestEventMarshalJSONKernelCounters(t *testing.T) {
	e := Event{Kind: KernelDone, Node: "mv_c", Step: 0, Lowered: 4, DictReused: 2}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `"kind":"KernelDone"`) || !strings.Contains(s, `"lowered":4`) ||
		!strings.Contains(s, `"dict_reused":2`) {
		t.Fatalf("kernel counters missing: %s", s)
	}
	if !strings.Contains(s, `"step":0`) {
		t.Fatalf("step 0 must serialize (it is a real plan position): %s", s)
	}
}
