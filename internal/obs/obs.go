// Package obs defines the observer event stream S/C components emit while
// they work: the optimizer reports alternating-optimization iterations, the
// Controller and the simulator report node execution, background
// materialization, Memory Catalog evictions and high-water marks. Consumers
// (progress printers, metrics recorders, dashboards) implement Observer and
// subscribe via the public sc.WithObserver option.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Kind enumerates event types.
type Kind int

// Event kinds.
const (
	// NodeStart: a node's refresh began. Fields: Node, Step.
	NodeStart Kind = iota
	// NodeDone: a node's refresh finished (output produced, not necessarily
	// materialized). Fields: Node, Step, Bytes (output size), Elapsed,
	// Read/Write/Compute, Flagged, Err on failure.
	NodeDone
	// Materialized: a node's output finished writing to external storage
	// (foreground or background). Fields: Node, Bytes (encoded size).
	Materialized
	// Evicted: a flagged output left the Memory Catalog after its last
	// dependent executed and materialization completed. Fields: Node, Bytes.
	Evicted
	// IterationDone: one alternating-optimization iteration completed.
	// Fields: Iteration, Score, Bytes (flagged bytes), Elapsed.
	IterationDone
	// MemoryHighWater: the Memory Catalog reached a new peak. Fields: Bytes.
	MemoryHighWater
	// EncodeDone: a node's output was compressed for the Memory Catalog
	// and storage. Fields: Node, Step, Bytes (raw in-memory size), Encoded
	// (compressed size), Ratio, Elapsed (encode time).
	EncodeDone
	// DecodeDone: a compressed Memory Catalog entry or a chunked storage
	// file was decompressed in full to serve a read. Fields: Node, Bytes
	// (decoded in-memory size), Encoded (compressed size), Ratio, Elapsed
	// (decode time).
	DecodeDone
	// KernelDone: a node's plan ran (at least partly) on the
	// compressed-execution kernels. Fields: Node, Step, Lowered (operators
	// served by kernels), Fallbacks (kernel executions that reverted to
	// the row engine), ChunksSkipped, CodeFilteredRows, DecodesAvoided,
	// JoinBuildRows/JoinProbeRows (hash-join work done in code space),
	// ChunksPassed/ReencodedChunks/DictReused (compressed intermediate
	// pipeline: output chunks kept in code space, re-encoded from values,
	// and served by the session dictionary cache), Bytes (raw bytes the
	// kernels materialized).
	KernelDone
	// CacheHit: a node's input read was served from the Memory Catalog
	// without decode work — a resident/decoded-view hit or a compressed
	// chunk handoff. Fields: Node (the consuming node), Source (the
	// producing node whose cached output was reused), Step, Bytes.
	CacheHit
)

// String returns the kind's canonical name.
func (k Kind) String() string {
	switch k {
	case NodeStart:
		return "NodeStart"
	case NodeDone:
		return "NodeDone"
	case Materialized:
		return "Materialized"
	case Evicted:
		return "Evicted"
	case IterationDone:
		return "IterationDone"
	case MemoryHighWater:
		return "MemoryHighWater"
	case EncodeDone:
		return "EncodeDone"
	case DecodeDone:
		return "DecodeDone"
	case KernelDone:
		return "KernelDone"
	case CacheHit:
		return "CacheHit"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one observation from a refresh, simulation or optimization.
// Unused fields are zero; see the Kind constants for which fields each kind
// fills.
type Event struct {
	Kind Kind
	// RunID correlates every event of one refresh (or simulation) run.
	// Emitters wrap their observer in WithRun; consumers of a shared stream
	// (a gateway pool running concurrent refreshes, an OTLP exporter) use it
	// to attribute interleaved events to the right run. Empty when the
	// emitter was not run-scoped.
	RunID string
	// Seq is a per-run monotonic sequence number (1-based), assigned by
	// WithRun in emission order across all of the run's goroutines. It gives
	// stream consumers a total order even when a concurrent Controller
	// interleaves events from its worker pool. Zero when not run-scoped.
	Seq       int64
	Node      string        // node (MV) name
	Source    string        // CacheHit: the producing node whose cached output was read
	Step      int           // plan position of the node, -1 when not applicable
	Bytes     int64         // payload bytes (output, materialized, evicted, high water)
	Encoded   int64         // NodeDone/EncodeDone/DecodeDone: encoded (compressed) bytes
	Ratio     float64       // EncodeDone/DecodeDone: raw bytes / encoded bytes
	Elapsed   time.Duration // wall clock (real runs) or virtual clock (simulation)
	Read      time.Duration // NodeDone: input-read time
	Write     time.Duration // NodeDone: blocking-write time
	Compute   time.Duration // NodeDone: compute time
	Flagged   bool          // NodeDone: output kept in the Memory Catalog
	Iteration int           // IterationDone: 1-based iteration number
	Score     float64       // IterationDone: flagged speedup score, seconds
	Err       error         // NodeDone: execution error, if any

	// Compressed-execution kernel counters (KernelDone).
	Lowered          int64 // plan operators served by kernels
	Fallbacks        int64 // kernel executions that reverted to the row engine
	ChunksSkipped    int64 // column-chunks eliminated without decoding
	CodeFilteredRows int64 // rows filtered on encoded codes/runs
	DecodesAvoided   int64 // column-chunk decodes avoided
	JoinBuildRows    int64 // rows hashed into code-space join build tables
	JoinProbeRows    int64 // rows probed against code-space join build tables
	ChunksPassed     int64 // output chunks kept in code space (passthrough or gathered codes)
	ReencodedChunks  int64 // output chunks re-encoded from materialized values
	DictReused       int64 // output chunks whose dictionary came from the session cache
}

// Observer receives events. Implementations must be safe for concurrent use:
// a Controller running with concurrency > 1 emits events from multiple
// goroutines.
type Observer interface {
	OnEvent(Event)
}

// Func adapts a function to Observer.
type Func func(Event)

// OnEvent implements Observer.
func (f Func) OnEvent(e Event) { f(e) }

// Emit sends e to o if o is non-nil.
func Emit(o Observer, e Event) {
	if o != nil {
		o.OnEvent(e)
	}
}

// Multi fans events out to every non-nil observer, in order.
func Multi(observers ...Observer) Observer {
	var live []Observer
	for _, o := range observers {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Observer

func (m multi) OnEvent(e Event) {
	for _, o := range m {
		o.OnEvent(e)
	}
}

// WithRun wraps inner so every event it forwards carries the run
// correlation fields: RunID (as given, possibly empty) and Seq, a 1-based
// counter atomically incremented per event — safe for a Controller's
// concurrent emitters. A nil inner returns nil, so a disabled observer
// chain stays a single nil check on the hot path. Events that already
// carry a RunID (an inner emitter re-scoping an outer stream) keep their
// own fields.
func WithRun(runID string, inner Observer) Observer {
	if inner == nil {
		return nil
	}
	return &runScope{runID: runID, inner: inner}
}

type runScope struct {
	runID string
	seq   atomic.Int64
	inner Observer
}

func (r *runScope) OnEvent(e Event) {
	if e.RunID == "" && e.Seq == 0 {
		e.RunID = r.runID
		e.Seq = r.seq.Add(1)
	}
	r.inner.OnEvent(e)
}
