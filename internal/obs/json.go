package obs

import (
	"encoding/json"
	"time"
)

// eventJSON is the wire shape of an Event: the kind as its canonical name,
// durations as seconds, the error as a string, and zero-valued fields
// omitted so an NDJSON/SSE progress stream stays compact.
type eventJSON struct {
	Kind             string  `json:"kind"`
	RunID            string  `json:"run_id,omitempty"`
	Seq              int64   `json:"seq,omitempty"`
	Node             string  `json:"node,omitempty"`
	Source           string  `json:"source,omitempty"`
	Step             *int    `json:"step,omitempty"`
	Bytes            int64   `json:"bytes,omitempty"`
	Encoded          int64   `json:"encoded,omitempty"`
	Ratio            float64 `json:"ratio,omitempty"`
	ElapsedSeconds   float64 `json:"elapsed_seconds,omitempty"`
	ReadSeconds      float64 `json:"read_seconds,omitempty"`
	WriteSeconds     float64 `json:"write_seconds,omitempty"`
	ComputeSeconds   float64 `json:"compute_seconds,omitempty"`
	Flagged          bool    `json:"flagged,omitempty"`
	Iteration        int     `json:"iteration,omitempty"`
	Score            float64 `json:"score,omitempty"`
	Error            string  `json:"error,omitempty"`
	Lowered          int64   `json:"lowered,omitempty"`
	Fallbacks        int64   `json:"fallbacks,omitempty"`
	ChunksSkipped    int64   `json:"chunks_skipped,omitempty"`
	CodeFilteredRows int64   `json:"code_filtered_rows,omitempty"`
	DecodesAvoided   int64   `json:"decodes_avoided,omitempty"`
	JoinBuildRows    int64   `json:"join_build_rows,omitempty"`
	JoinProbeRows    int64   `json:"join_probe_rows,omitempty"`
	ChunksPassed     int64   `json:"chunks_passed,omitempty"`
	ReencodedChunks  int64   `json:"reencoded_chunks,omitempty"`
	DictReused       int64   `json:"dict_reused,omitempty"`
}

// MarshalJSON renders the event for streaming consumers (the gateway's
// NDJSON/SSE run streams). Step -1 — "not applicable" by convention — is
// omitted rather than serialized as a real position; Err marshals as its
// message (the error type itself would serialize as "{}").
func (e Event) MarshalJSON() ([]byte, error) {
	j := eventJSON{
		Kind:             e.Kind.String(),
		RunID:            e.RunID,
		Seq:              e.Seq,
		Node:             e.Node,
		Source:           e.Source,
		Bytes:            e.Bytes,
		Encoded:          e.Encoded,
		Ratio:            e.Ratio,
		ElapsedSeconds:   seconds(e.Elapsed),
		ReadSeconds:      seconds(e.Read),
		WriteSeconds:     seconds(e.Write),
		ComputeSeconds:   seconds(e.Compute),
		Flagged:          e.Flagged,
		Iteration:        e.Iteration,
		Score:            e.Score,
		Lowered:          e.Lowered,
		Fallbacks:        e.Fallbacks,
		ChunksSkipped:    e.ChunksSkipped,
		CodeFilteredRows: e.CodeFilteredRows,
		DecodesAvoided:   e.DecodesAvoided,
		JoinBuildRows:    e.JoinBuildRows,
		JoinProbeRows:    e.JoinProbeRows,
		ChunksPassed:     e.ChunksPassed,
		ReencodedChunks:  e.ReencodedChunks,
		DictReused:       e.DictReused,
	}
	if e.Step >= 0 {
		step := e.Step
		j.Step = &step
	}
	if e.Err != nil {
		j.Error = e.Err.Error()
	}
	return json.Marshal(j)
}

func seconds(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return d.Seconds()
}
