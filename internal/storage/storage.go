// Package storage provides the external-storage backends S/C materializes
// tables to: a real filesystem store (the paper uses NFS), an in-process
// store for tests, and a throttling wrapper that emulates a device with a
// given bandwidth and latency so laptop hardware can reproduce the paper's
// storage-bound regime.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNotFound reports a missing object.
var ErrNotFound = errors.New("storage: object not found")

// Store is a flat named-blob store.
type Store interface {
	// Write stores data under name, replacing any previous object.
	Write(name string, data []byte) error
	// Read returns the object's contents.
	Read(name string) ([]byte, error)
	// Delete removes the object; deleting a missing object is an error.
	Delete(name string) error
	// Size returns the object's size in bytes.
	Size(name string) (int64, error)
	// List returns all object names, sorted.
	List() ([]string, error)
}

// --- in-memory store ---

// MemStore is a thread-safe in-process Store for tests and examples.
type MemStore struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// NewMemStore returns an empty MemStore.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[string][]byte)}
}

// Write implements Store.
func (m *MemStore) Write(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data[name] = append([]byte(nil), data...)
	return nil
}

// Read implements Store.
func (m *MemStore) Read(name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.data[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return append([]byte(nil), d...), nil
}

// Delete implements Store.
func (m *MemStore) Delete(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.data[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(m.data, name)
	return nil
}

// Size implements Store.
func (m *MemStore) Size(name string) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.data[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(len(d)), nil
}

// List implements Store.
func (m *MemStore) List() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.data))
	for k := range m.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// --- filesystem store ---

// FSStore stores each object as a file in a directory.
type FSStore struct {
	dir string
}

// staleTempAge is how old a .tmp-* file must be before NewFSStore sweeps
// it. An in-flight atomic Write holds its temp file for milliseconds, so
// an hour-old one can only be the debris of a crashed writer; the age gate
// keeps the sweep from deleting the live temp file of a concurrent writer
// sharing the directory.
const staleTempAge = time.Hour

// NewFSStore creates the directory if needed and returns a store over it.
// Stale .tmp-* files left by a crashed or killed writer are swept on open,
// so interrupted atomic writes cannot accumulate invisibly.
func NewFSStore(dir string) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		if info, err := e.Info(); err == nil && time.Since(info.ModTime()) > staleTempAge {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &FSStore{dir: dir}, nil
}

// path maps an object name to a file path, rejecting traversal and the
// reserved .tmp-* namespace in-flight atomic writes use.
func (f *FSStore) path(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") ||
		strings.HasPrefix(name, ".tmp-") {
		return "", fmt.Errorf("storage: invalid object name %q", name)
	}
	return filepath.Join(f.dir, name), nil
}

// Write implements Store. The write is atomic and durable: data lands in
// a temp file that is fsynced and then renamed into place, so readers
// never observe partial objects and a crash mid-materialization cannot
// leave a torn object for the columnar decoder to trip over — at worst
// the old object (or nothing) survives, plus an invisible .tmp-* file
// that List skips.
func (f *FSStore) Write(name string, data []byte) error {
	p, err := f.path(name)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(f.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("storage: %w", err)
	}
	// Flush file contents before the rename: without this, a power loss
	// shortly after the rename can surface a zero-length or partial file
	// even though the directory entry made it to disk.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("storage: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: %w", err)
	}
	// The rename lives in the directory: fsync it too, or a power loss
	// can forget the rename even though the file contents are on disk.
	// Best-effort: the rename has already replaced the object, so an
	// fsync failure here must not report a completed write as failed —
	// the worst outcome of skipping it is reduced crash durability, not
	// a torn or ambiguous object.
	if d, err := os.Open(f.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Read implements Store.
func (f *FSStore) Read(name string) ([]byte, error) {
	p, err := f.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return data, nil
}

// Delete implements Store.
func (f *FSStore) Delete(name string) error {
	p, err := f.path(name)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// Size implements Store.
func (f *FSStore) Size(name string) (int64, error) {
	p, err := f.path(name)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	return fi.Size(), nil
}

// List implements Store.
func (f *FSStore) List() ([]string, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

// --- throttled store ---

// Throttled wraps a Store and delays operations to emulate a device with
// the given bandwidths and per-access latency. It lets the real engine
// reproduce the paper's storage-bound behaviour on fast local disks.
type Throttled struct {
	Inner      Store
	ReadBWBps  float64       // bytes/second; 0 disables read throttling
	WriteBWBps float64       // bytes/second; 0 disables write throttling
	Latency    time.Duration // added to every access
	SleepScale float64       // multiplies sleeps; <1 speeds tests up (0 = 1)
	mu         sync.Mutex
	readSlept  time.Duration
	writeSlept time.Duration
}

// throttle sleeps for the transfer time of size bytes at bw plus latency.
func (t *Throttled) throttle(size int64, bw float64, slept *time.Duration) {
	d := t.Latency
	if bw > 0 && size > 0 {
		d += time.Duration(float64(size) / bw * float64(time.Second))
	}
	scale := t.SleepScale
	if scale == 0 {
		scale = 1
	}
	d = time.Duration(float64(d) * scale)
	if d > 0 {
		time.Sleep(d)
		t.mu.Lock()
		*slept += d
		t.mu.Unlock()
	}
}

// Write implements Store.
func (t *Throttled) Write(name string, data []byte) error {
	t.throttle(int64(len(data)), t.WriteBWBps, &t.writeSlept)
	return t.Inner.Write(name, data)
}

// Read implements Store.
func (t *Throttled) Read(name string) ([]byte, error) {
	size, err := t.Inner.Size(name)
	if err != nil {
		return nil, err
	}
	t.throttle(size, t.ReadBWBps, &t.readSlept)
	return t.Inner.Read(name)
}

// Delete implements Store.
func (t *Throttled) Delete(name string) error { return t.Inner.Delete(name) }

// Size implements Store.
func (t *Throttled) Size(name string) (int64, error) { return t.Inner.Size(name) }

// List implements Store.
func (t *Throttled) List() ([]string, error) { return t.Inner.List() }

// SleptTimes reports the total simulated read and write delays, for
// measurement harnesses.
func (t *Throttled) SleptTimes() (read, write time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.readSlept, t.writeSlept
}
