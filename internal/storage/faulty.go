package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected marks failures produced by the Faulty wrapper.
var ErrInjected = errors.New("storage: injected fault")

// Faulty wraps a Store and fails operations on demand, for failure-
// injection tests of the controller's error paths (background
// materialization failures, partial refresh runs).
type Faulty struct {
	Inner Store

	mu         sync.Mutex
	failReads  map[string]bool // object names whose Read fails
	failWrites map[string]bool // object names whose Write fails
	writeCount int
	// FailWriteAfter, when > 0, fails every write after the first N.
	FailWriteAfter int
}

// NewFaulty wraps inner with no faults armed.
func NewFaulty(inner Store) *Faulty {
	return &Faulty{
		Inner:      inner,
		failReads:  make(map[string]bool),
		failWrites: make(map[string]bool),
	}
}

// FailRead arms a read fault for the named object.
func (f *Faulty) FailRead(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failReads[name] = true
}

// FailWrite arms a write fault for the named object.
func (f *Faulty) FailWrite(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWrites[name] = true
}

// Write implements Store.
func (f *Faulty) Write(name string, data []byte) error {
	f.mu.Lock()
	f.writeCount++
	fail := f.failWrites[name] || (f.FailWriteAfter > 0 && f.writeCount > f.FailWriteAfter)
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: write %s", ErrInjected, name)
	}
	return f.Inner.Write(name, data)
}

// Read implements Store.
func (f *Faulty) Read(name string) ([]byte, error) {
	f.mu.Lock()
	fail := f.failReads[name]
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("%w: read %s", ErrInjected, name)
	}
	return f.Inner.Read(name)
}

// Delete implements Store.
func (f *Faulty) Delete(name string) error { return f.Inner.Delete(name) }

// Size implements Store.
func (f *Faulty) Size(name string) (int64, error) { return f.Inner.Size(name) }

// List implements Store.
func (f *Faulty) List() ([]string, error) { return f.Inner.List() }
