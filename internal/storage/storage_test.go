package storage

import (
	"errors"
	"testing"
	"time"
)

// storeContract exercises the Store interface behaviours every
// implementation must share.
func storeContract(t *testing.T, s Store) {
	t.Helper()
	if err := s.Write("a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("b", []byte("world!")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read("a")
	if err != nil || string(got) != "hello" {
		t.Fatalf("Read(a) = %q, %v", got, err)
	}
	size, err := s.Size("b")
	if err != nil || size != 6 {
		t.Fatalf("Size(b) = %d, %v", size, err)
	}
	names, err := s.List()
	if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List = %v, %v", names, err)
	}
	// Overwrite.
	if err := s.Write("a", []byte("xy")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Read("a")
	if string(got) != "xy" {
		t.Fatalf("after overwrite Read(a) = %q", got)
	}
	// Delete.
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read after delete: %v", err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := s.Size("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Size(missing): %v", err)
	}
}

func TestMemStoreContract(t *testing.T) {
	storeContract(t, NewMemStore())
}

func TestFSStoreContract(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, s)
}

func TestThrottledContract(t *testing.T) {
	storeContract(t, &Throttled{Inner: NewMemStore()})
}

func TestMemStoreCopiesData(t *testing.T) {
	s := NewMemStore()
	buf := []byte("abc")
	if err := s.Write("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'z'
	got, _ := s.Read("k")
	if string(got) != "abc" {
		t.Fatalf("store aliased caller buffer: %q", got)
	}
	got[0] = 'q'
	got2, _ := s.Read("k")
	if string(got2) != "abc" {
		t.Fatalf("read aliased store buffer: %q", got2)
	}
}

func TestFSStoreRejectsTraversal(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "a/b", `a\b`, "..", "x..y"} {
		if err := s.Write(name, []byte("x")); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}

func TestFSStoreListSkipsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write("real", []byte("x")); err != nil {
		t.Fatal(err)
	}
	names, err := s.List()
	if err != nil || len(names) != 1 || names[0] != "real" {
		t.Fatalf("List = %v, %v", names, err)
	}
}

func TestThrottledDelaysReads(t *testing.T) {
	inner := NewMemStore()
	data := make([]byte, 1<<20)
	if err := inner.Write("big", data); err != nil {
		t.Fatal(err)
	}
	th := &Throttled{Inner: inner, ReadBWBps: 100e6} // 1MB at 100MB/s ≈ 10ms
	start := time.Now()
	if _, err := th.Read("big"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("read too fast: %v", elapsed)
	}
	r, w := th.SleptTimes()
	if r < 8*time.Millisecond || w != 0 {
		t.Fatalf("SleptTimes = %v, %v", r, w)
	}
}

func TestThrottledSleepScaleSpeedsUp(t *testing.T) {
	inner := NewMemStore()
	th := &Throttled{Inner: inner, WriteBWBps: 1e6, SleepScale: 0.01}
	start := time.Now()
	if err := th.Write("k", make([]byte, 1<<20)); err != nil { // 1s unscaled
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("scaled write too slow: %v", elapsed)
	}
}

func TestThrottledZeroBandwidthNoDelay(t *testing.T) {
	th := &Throttled{Inner: NewMemStore()}
	start := time.Now()
	if err := th.Write("k", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Read("k"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("unthrottled ops too slow: %v", elapsed)
	}
}
