package storage

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/shortcircuit-db/sc/internal/colfmt"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/table"
)

// TestFSStoreWriteIsAtomicUnderConcurrentReads hammers one object with
// alternating full rewrites while readers decode it: every read must see
// a complete v2 file — never a torn mix — or ErrNotFound before the first
// write lands.
func TestFSStoreWriteIsAtomicUnderConcurrentReads(t *testing.T) {
	fs, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := func(fill int64, rows int) []byte {
		tb := table.New(table.NewSchema(table.Column{Name: "k", Type: table.Int}))
		for i := 0; i < rows; i++ {
			tb.Cols[0].Ints = append(tb.Cols[0].Ints, fill)
		}
		data, err := colfmt.EncodeV2(tb, encoding.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	// Two versions with very different sizes, so a torn write (partial
	// overwrite of a longer file) would be visible to the decoder.
	small, large := blob(1, 100), blob(2, 50000)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			data := small
			if i%2 == 0 {
				data = large
			}
			if err := fs.Write("obj", data); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 200; r++ {
		data, err := fs.Read("obj")
		if errors.Is(err, ErrNotFound) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := colfmt.Decode(data); err != nil {
			t.Fatalf("read %d: torn object: %v", r, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestFSStoreLeftoverTempIsInvisible simulates a crash mid-write (a
// stranded .tmp-* file) and checks the store's reading surface ignores it.
func TestFSStoreLeftoverTempIsInvisible(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("good", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// A crash between CreateTemp and Rename leaves exactly this.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123456"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasPrefix(n, ".tmp-") {
			t.Fatalf("List exposed stranded temp file %q", n)
		}
	}
	if len(names) != 1 || names[0] != "good" {
		t.Fatalf("List = %v, want [good]", names)
	}
	if _, err := fs.Read(".tmp-123456"); err == nil {
		t.Fatal("Read served a temp file")
	}
}

// TestNewFSStoreSweepsStaleTemps: temp files stranded by a crashed writer
// are removed when the store is reopened, so they cannot accumulate.
func TestNewFSStoreSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("good", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, ".tmp-crashed")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	// A fresh temp file — possibly a concurrent writer's — must survive.
	live := filepath.Join(dir, ".tmp-live")
	if err := os.WriteFile(live, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFSStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp survived reopen: %v", err)
	}
	if _, err := os.Stat(live); err != nil {
		t.Fatalf("fresh temp swept despite age gate: %v", err)
	}
	if got, err := fs.Read("good"); err != nil || string(got) != "payload" {
		t.Fatalf("real object disturbed by sweep: %q, %v", got, err)
	}
}

// TestFSStoreRewriteReplacesWholeObject: after overwriting a large object
// with a small one, the old tail must be gone (no in-place truncation
// artifacts).
func TestFSStoreRewriteReplacesWholeObject(t *testing.T) {
	fs, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 1<<16)
	for i := range big {
		big[i] = 0xAB
	}
	if err := fs.Write("obj", big); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("obj", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("obj")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "tiny" {
		t.Fatalf("object = %d bytes, want the 4-byte rewrite", len(got))
	}
}
