package knapsack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOrDie(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEmptyProblem(t *testing.T) {
	s := solveOrDie(t, &Problem{})
	if s.Profit != 0 || !s.Optimal {
		t.Fatalf("got %+v", s)
	}
}

func TestSingleConstraintClassic(t *testing.T) {
	// Classic instance: optimal is items {1,2} with profit 220.
	p := &Problem{
		Profits:    []int64{60, 100, 120},
		Weights:    [][]int64{{10, 20, 30}},
		Capacities: []int64{50},
	}
	s := solveOrDie(t, p)
	if s.Profit != 220 {
		t.Fatalf("Profit = %d, want 220", s.Profit)
	}
	if s.Take[0] || !s.Take[1] || !s.Take[2] {
		t.Fatalf("Take = %v", s.Take)
	}
}

func TestAllItemsFit(t *testing.T) {
	p := &Problem{
		Profits:    []int64{1, 2, 3},
		Weights:    [][]int64{{1, 1, 1}, {2, 2, 2}},
		Capacities: []int64{10, 10},
	}
	s := solveOrDie(t, p)
	if s.Profit != 6 {
		t.Fatalf("Profit = %d, want 6", s.Profit)
	}
}

func TestNoItemFits(t *testing.T) {
	p := &Problem{
		Profits:    []int64{5, 5},
		Weights:    [][]int64{{10, 20}},
		Capacities: []int64{9},
	}
	s := solveOrDie(t, p)
	if s.Profit != 0 {
		t.Fatalf("Profit = %d, want 0", s.Profit)
	}
}

func TestOversizedItemExcludedOthersKept(t *testing.T) {
	p := &Problem{
		Profits:    []int64{1000, 7},
		Weights:    [][]int64{{100, 3}, {1, 50}},
		Capacities: []int64{50, 60},
	}
	s := solveOrDie(t, p)
	if s.Profit != 7 || s.Take[0] || !s.Take[1] {
		t.Fatalf("got %+v", s)
	}
}

func TestZeroWeightItemsAlwaysTaken(t *testing.T) {
	p := &Problem{
		Profits:    []int64{3, 9},
		Weights:    [][]int64{{0, 10}, {0, 10}},
		Capacities: []int64{5, 5},
	}
	s := solveOrDie(t, p)
	if s.Profit != 3 || !s.Take[0] {
		t.Fatalf("got %+v", s)
	}
}

func TestMultiConstraintBinding(t *testing.T) {
	// Constraint 0 allows items {0,1}; constraint 1 allows {0,2};
	// jointly only one of {1,2} can accompany item 0.
	p := &Problem{
		Profits:    []int64{10, 8, 8},
		Weights:    [][]int64{{1, 5, 9}, {1, 9, 5}},
		Capacities: []int64{10, 10},
	}
	s := solveOrDie(t, p)
	if s.Profit != 18 {
		t.Fatalf("Profit = %d, want 18", s.Profit)
	}
	if !s.Take[0] {
		t.Fatal("item 0 should always be taken")
	}
	if s.Take[1] == s.Take[2] {
		t.Fatalf("exactly one of items 1,2 expected: %v", s.Take)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []*Problem{
		{Profits: []int64{1}, Weights: [][]int64{{1, 2}}, Capacities: []int64{5}},
		{Profits: []int64{1}, Weights: [][]int64{{1}}, Capacities: []int64{5, 6}},
		{Profits: []int64{-1}, Weights: [][]int64{{1}}, Capacities: []int64{5}},
		{Profits: []int64{1}, Weights: [][]int64{{-1}}, Capacities: []int64{5}},
		{Profits: []int64{1}, Weights: [][]int64{{1}}, Capacities: []int64{-5}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: invalid problem accepted", i)
		}
	}
}

// bruteForce enumerates all 2^n selections; n must be small.
func bruteForce(p *Problem) int64 {
	n := len(p.Profits)
	var best int64
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for i := range p.Capacities {
			var w int64
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					w += p.Weights[i][j]
				}
			}
			if w > p.Capacities[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var pr int64
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				pr += p.Profits[j]
			}
		}
		if pr > best {
			best = pr
		}
	}
	return best
}

func randomProblem(rng *rand.Rand, n, m int) *Problem {
	p := &Problem{
		Profits:    make([]int64, n),
		Weights:    make([][]int64, m),
		Capacities: make([]int64, m),
	}
	for j := 0; j < n; j++ {
		p.Profits[j] = int64(rng.Intn(100))
	}
	for i := 0; i < m; i++ {
		p.Weights[i] = make([]int64, n)
		var total int64
		for j := 0; j < n; j++ {
			p.Weights[i][j] = int64(rng.Intn(50))
			total += p.Weights[i][j]
		}
		// Capacity between 0 and the total weight so constraints bind often.
		if total > 0 {
			p.Capacities[i] = int64(rng.Int63n(total + 1))
		}
	}
	return p
}

func TestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(4)
		p := randomProblem(rng, n, m)
		s, err := Solve(p)
		if err != nil || !s.Optimal {
			return false
		}
		return s.Profit == bruteForce(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSolutionIsFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 1+rng.Intn(25), 1+rng.Intn(6))
		s, err := Solve(p)
		if err != nil {
			return false
		}
		var profit int64
		for i := range p.Capacities {
			var w int64
			for j, take := range s.Take {
				if take {
					w += p.Weights[i][j]
				}
			}
			if w > p.Capacities[i] {
				return false
			}
		}
		for j, take := range s.Take {
			if take {
				profit += p.Profits[j]
			}
		}
		return profit == s.Profit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBnBAtLeastGreedyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 1+rng.Intn(30), 2+rng.Intn(5))
		feasible := make([]bool, len(p.Profits))
		for j := range feasible {
			feasible[j] = true
			for i := range p.Capacities {
				if p.Weights[i][j] > p.Capacities[i] {
					feasible[j] = false
					break
				}
			}
		}
		gp, _ := greedySeed(p, itemOrder(p, feasible))
		s, err := Solve(p)
		if err != nil {
			return false
		}
		return s.Profit >= gp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDPAndBnBAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 1+rng.Intn(14), 1)
		feasible := make([]bool, len(p.Profits))
		for j := range feasible {
			feasible[j] = p.Weights[0][j] <= p.Capacities[0]
		}
		dp, err := solveDP(p, feasible)
		if err != nil {
			return false
		}
		bb, err := solveBnB(p, feasible)
		if err != nil {
			return false
		}
		return dp.Profit == bb.Profit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHundredItemInstanceIsFast(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, 100, 40)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Optimal {
		t.Fatalf("100-item instance not solved to optimality (%d nodes)", s.Nodes)
	}
}
