// Package knapsack provides an exact solver for the 0/1 multidimensional
// knapsack problem (MKP), the optimization core of S/C Opt Nodes (§V-A of
// the paper). The paper uses the branch-and-bound solver from Google
// OR-Tools; this package implements the equivalent from scratch:
//
//   - branch-and-bound with per-constraint fractional (Dantzig) upper bounds,
//   - a greedy primal heuristic to seed the incumbent,
//   - a dynamic-programming fast path for single-constraint instances.
//
// Profits and weights are non-negative integers (the paper rounds speedup
// scores to the nearest integer before solving).
package knapsack

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Problem is a 0/1 multidimensional knapsack instance:
//
//	maximize   Σ_j Profits[j]·x_j
//	subject to Σ_j Weights[i][j]·x_j ≤ Capacities[i]  for every constraint i,
//	           x_j ∈ {0,1}.
type Problem struct {
	Profits    []int64   // one per item, ≥ 0
	Weights    [][]int64 // Weights[i][j]: weight of item j in constraint i, ≥ 0
	Capacities []int64   // one per constraint, ≥ 0
}

// Solution is the result of solving a Problem.
type Solution struct {
	Take    []bool // Take[j] reports whether item j is selected
	Profit  int64  // total profit of the selection
	Optimal bool   // true when the search proved optimality
	Nodes   int64  // branch-and-bound nodes explored (diagnostics)
}

// MaxBnBNodes bounds the search effort. Most instances at the paper's
// sizes (≤100 items after simplification) solve to optimality in well
// under the budget; pathological instances return the best incumbent with
// Optimal=false, which is still feasible and at least as good as greedy.
// Var so harnesses can trade exactness for determinism of runtime.
var MaxBnBNodes = int64(60_000)

// Validate checks structural consistency of the instance.
func (p *Problem) Validate() error {
	n := len(p.Profits)
	if len(p.Weights) != len(p.Capacities) {
		return fmt.Errorf("knapsack: %d weight rows but %d capacities", len(p.Weights), len(p.Capacities))
	}
	for i, row := range p.Weights {
		if len(row) != n {
			return fmt.Errorf("knapsack: constraint %d has %d weights, want %d", i, len(row), n)
		}
		for j, w := range row {
			if w < 0 {
				return fmt.Errorf("knapsack: negative weight at [%d][%d]", i, j)
			}
		}
	}
	for j, pr := range p.Profits {
		if pr < 0 {
			return fmt.Errorf("knapsack: negative profit at %d", j)
		}
	}
	for i, c := range p.Capacities {
		if c < 0 {
			return fmt.Errorf("knapsack: negative capacity at %d", i)
		}
	}
	return nil
}

// ErrInvalid wraps validation failures from Solve.
var ErrInvalid = errors.New("knapsack: invalid problem")

// Solve finds an optimal selection. It is exact unless the node budget is
// exhausted (Solution.Optimal reports which).
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	n := len(p.Profits)
	if n == 0 {
		return &Solution{Take: nil, Profit: 0, Optimal: true}, nil
	}
	// Items that violate some constraint alone can never be taken.
	feasible := make([]bool, n)
	for j := 0; j < n; j++ {
		feasible[j] = true
		for i := range p.Capacities {
			if p.Weights[i][j] > p.Capacities[i] {
				feasible[j] = false
				break
			}
		}
	}
	if len(p.Capacities) == 1 {
		return solveDP(p, feasible)
	}
	return solveBnB(p, feasible)
}

// dpCapLimit bounds the DP table size for the single-constraint fast path;
// larger capacities fall back to branch-and-bound.
const dpCapLimit = 4 << 20

// solveDP solves single-constraint instances by classic O(n·C) DP.
func solveDP(p *Problem, feasible []bool) (*Solution, error) {
	cap64 := p.Capacities[0]
	if cap64 > dpCapLimit {
		return solveBnB(p, feasible)
	}
	c := int(cap64)
	n := len(p.Profits)
	best := make([]int64, c+1)
	// choice[j*(c+1)+w] records whether item j is taken at capacity w.
	choice := make([]bool, n*(c+1))
	for j := 0; j < n; j++ {
		if !feasible[j] {
			continue
		}
		w := int(p.Weights[0][j])
		pr := p.Profits[j]
		for cw := c; cw >= w; cw-- {
			if best[cw-w]+pr > best[cw] {
				best[cw] = best[cw-w] + pr
				choice[j*(c+1)+cw] = true
			}
		}
	}
	sol := &Solution{Take: make([]bool, n), Profit: best[c], Optimal: true}
	// Reconstruct.
	w := c
	for j := n - 1; j >= 0; j-- {
		if feasible[j] && choice[j*(c+1)+w] {
			sol.Take[j] = true
			w -= int(p.Weights[0][j])
		}
	}
	return sol, nil
}

// itemOrder sorts items by decreasing profit density. Density uses the sum
// of normalized weights across constraints, a standard surrogate.
func itemOrder(p *Problem, feasible []bool) []int {
	n := len(p.Profits)
	density := make([]float64, n)
	for j := 0; j < n; j++ {
		var wsum float64
		for i := range p.Capacities {
			capI := float64(p.Capacities[i])
			if capI <= 0 {
				capI = 1
			}
			wsum += float64(p.Weights[i][j]) / capI
		}
		if wsum <= 0 {
			density[j] = math.Inf(1) // free item: always worth taking first
		} else {
			density[j] = float64(p.Profits[j]) / wsum
		}
	}
	idx := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if feasible[j] {
			idx = append(idx, j)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if density[idx[a]] != density[idx[b]] {
			return density[idx[a]] > density[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

type bnbState struct {
	p        *Problem
	order    []int // items in density order
	pos      []int // pos[j] = index of item j in order, or -1 if excluded
	take     []bool
	bestTake []bool
	best     int64
	nodes    int64
	limit    int64
	remain   []int64 // remaining capacity per constraint
	// suffixProfit[k] = Σ profits of order[k:]; cheap admissible bound.
	suffixProfit []int64
	// constraintOrder[i] lists candidate items sorted by Profits[j]/Weights[i][j]
	// descending (zero weight sorts first), as the Dantzig bound requires.
	constraintOrder [][]int
	// boundCons are the constraint indices used for fractional bounding.
	boundCons []int
}

// maxBoundConstraints caps per-node bound work; see solveBnB.
const maxBoundConstraints = 6

// solveBnB runs depth-first branch-and-bound over the density ordering.
func solveBnB(p *Problem, feasible []bool) (*Solution, error) {
	st := &bnbState{
		p:     p,
		order: itemOrder(p, feasible),
		take:  make([]bool, len(p.Profits)),
		limit: MaxBnBNodes,
	}
	st.pos = make([]int, len(p.Profits))
	for j := range st.pos {
		st.pos[j] = -1
	}
	for k, j := range st.order {
		st.pos[j] = k
	}
	st.remain = append([]int64(nil), p.Capacities...)
	st.suffixProfit = make([]int64, len(st.order)+1)
	for k := len(st.order) - 1; k >= 0; k-- {
		st.suffixProfit[k] = st.suffixProfit[k+1] + p.Profits[st.order[k]]
	}
	st.constraintOrder = make([][]int, len(p.Capacities))
	for i := range p.Capacities {
		co := append([]int(nil), st.order...)
		sort.SliceStable(co, func(a, b int) bool {
			return constraintDensityLess(p, i, co[b], co[a])
		})
		st.constraintOrder[i] = co
	}
	// Bounding on every constraint is O(m·n) per node; the minimum over a
	// subset of valid upper bounds is still valid, so bound only on the
	// tightest constraints (smallest capacity-to-demand ratio).
	tightness := make([]float64, len(p.Capacities))
	for i := range p.Capacities {
		var demand int64
		for _, j := range st.order {
			demand += p.Weights[i][j]
		}
		if demand == 0 {
			tightness[i] = math.Inf(1)
		} else {
			tightness[i] = float64(p.Capacities[i]) / float64(demand)
		}
	}
	cons := make([]int, len(p.Capacities))
	for i := range cons {
		cons[i] = i
	}
	sort.Slice(cons, func(a, b int) bool { return tightness[cons[a]] < tightness[cons[b]] })
	if len(cons) > maxBoundConstraints {
		cons = cons[:maxBoundConstraints]
	}
	st.boundCons = cons
	// Seed incumbent with the greedy solution so pruning bites early.
	st.best, st.bestTake = greedySeed(p, st.order)
	st.dfs(0, 0)
	optimal := st.nodes < st.limit
	return &Solution{Take: st.bestTake, Profit: st.best, Optimal: optimal, Nodes: st.nodes}, nil
}

// constraintDensityLess reports whether item a has strictly lower
// profit/weight density than item b under constraint i. Zero-weight items
// have infinite density.
func constraintDensityLess(p *Problem, i, a, b int) bool {
	wa, wb := p.Weights[i][a], p.Weights[i][b]
	pa, pb := p.Profits[a], p.Profits[b]
	if wa == 0 && wb == 0 {
		return pa < pb
	}
	if wa == 0 {
		return false
	}
	if wb == 0 {
		return true
	}
	// pa/wa < pb/wb  <=>  pa*wb < pb*wa (all non-negative).
	return pa*wb < pb*wa
}

// greedySeed takes items in density order when they fit.
func greedySeed(p *Problem, order []int) (int64, []bool) {
	remain := append([]int64(nil), p.Capacities...)
	take := make([]bool, len(p.Profits))
	var profit int64
	for _, j := range order {
		fits := true
		for i := range remain {
			if p.Weights[i][j] > remain[i] {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		for i := range remain {
			remain[i] -= p.Weights[i][j]
		}
		take[j] = true
		profit += p.Profits[j]
	}
	return profit, take
}

func (st *bnbState) dfs(k int, profit int64) {
	st.nodes++
	if st.nodes >= st.limit {
		return
	}
	if profit > st.best {
		st.best = profit
		st.bestTake = append(st.bestTake[:0:0], st.take...)
	}
	if k == len(st.order) {
		return
	}
	if ub := profit + st.upperBound(k); ub <= st.best {
		return
	}
	j := st.order[k]
	// Branch 1: take item j if it fits.
	fits := true
	for i := range st.remain {
		if st.p.Weights[i][j] > st.remain[i] {
			fits = false
			break
		}
	}
	if fits {
		for i := range st.remain {
			st.remain[i] -= st.p.Weights[i][j]
		}
		st.take[j] = true
		st.dfs(k+1, profit+st.p.Profits[j])
		st.take[j] = false
		for i := range st.remain {
			st.remain[i] += st.p.Weights[i][j]
		}
	}
	// Branch 2: skip item j.
	st.dfs(k+1, profit)
}

// upperBound returns an admissible bound on the profit obtainable from items
// order[k:] under the current remaining capacities: the minimum over
// constraints of the single-constraint fractional (Dantzig) bound, further
// capped by the plain suffix-profit sum. Each single-constraint relaxation
// drops the other constraints, so each is a valid upper bound; the minimum
// of valid upper bounds is valid.
func (st *bnbState) upperBound(k int) int64 {
	bound := st.suffixProfit[k]
	for _, i := range st.boundCons {
		fb := st.fractionalBound(i, k)
		if fb < bound {
			bound = fb
		}
	}
	return bound
}

// fractionalBound computes the Dantzig bound for constraint i over the
// undecided items (those at global position ≥ k): walk the per-constraint
// density order, take items greedily, and take a fraction of the first item
// that does not fit. With proper density sorting this equals the LP optimum
// of the single-constraint relaxation, hence a valid upper bound.
func (st *bnbState) fractionalBound(i, k int) int64 {
	remain := st.remain[i]
	var profit float64
	for _, j := range st.constraintOrder[i] {
		if st.pos[j] < k {
			continue // already decided at shallower depth
		}
		w := st.p.Weights[i][j]
		if w <= remain {
			remain -= w
			profit += float64(st.p.Profits[j])
			continue
		}
		if remain > 0 {
			profit += float64(st.p.Profits[j]) * float64(remain) / float64(w)
		}
		break
	}
	return int64(math.Ceil(profit))
}
