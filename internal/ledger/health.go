package ledger

import (
	"math"
	"sort"
)

// HealthConfig tunes a health report. Zero values mean defaults.
type HealthConfig struct {
	// Window is how many recent runs the report examines. Default 32.
	Window int
	// SLOSeconds is the refresh-latency objective: a succeeded run within
	// it counts toward attainment. Default 60.
	SLOSeconds float64
	// Objective is the target attainment fraction. Default 0.99.
	Objective float64
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.SLOSeconds <= 0 {
		c.SLOSeconds = 60
	}
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.99
	}
	return c
}

// NodeHealth compares one node's learned baseline against its latest
// observation.
type NodeHealth struct {
	Node                string  `json:"node"`
	Samples             int64   `json:"samples"`
	BaselineWallSeconds float64 `json:"baseline_wall_seconds"`
	LatestWallSeconds   float64 `json:"latest_wall_seconds"`
	WallZ               float64 `json:"wall_z"`
	BaselineRatio       float64 `json:"baseline_ratio,omitempty"`
	LatestRatio         float64 `json:"latest_ratio,omitempty"`
	Regressed           bool    `json:"regressed,omitempty"`
}

// Regression is one anomaly with the run it was detected in.
type Regression struct {
	RunID string `json:"run_id"`
	Anomaly
}

// Health verdicts, worst first.
const (
	VerdictFailing  = "failing"  // latest run did not succeed, or SLO attainment below objective
	VerdictDegraded = "degraded" // anomalies in the window
	VerdictHealthy  = "healthy"
	VerdictUnknown  = "unknown" // no runs recorded
)

// Health is the operational state of one pipeline over the ledger window.
type Health struct {
	Pipeline   string `json:"pipeline"`
	WindowRuns int    `json:"window_runs"`
	Succeeded  int    `json:"succeeded"`
	Failed     int    `json:"failed"`

	SLOSeconds    float64 `json:"slo_seconds"`
	SLOAttainment float64 `json:"slo_attainment"`
	Objective     float64 `json:"objective"`
	// BurnRate is (1−attainment)/(1−objective): 1.0 burns exactly the
	// error budget, >1 exhausts it early.
	BurnRate float64 `json:"burn_rate"`

	WallP50Seconds      float64 `json:"wall_p50_seconds"`
	WallP99Seconds      float64 `json:"wall_p99_seconds"`
	QueueWaitP50Seconds float64 `json:"queue_wait_p50_seconds"`
	QueueWaitP99Seconds float64 `json:"queue_wait_p99_seconds"`

	// MispredictRatio is the learned mean |reserved−actual|/reserved.
	MispredictRatio float64 `json:"mispredict_ratio"`

	AnomalyCount    int            `json:"anomaly_count"`
	AnomaliesByKind map[string]int `json:"anomalies_by_kind,omitempty"`
	TopRegressions  []Regression   `json:"top_regressions,omitempty"`

	Nodes []NodeHealth `json:"nodes,omitempty"`

	LastRunID   string `json:"last_run_id,omitempty"`
	LastOutcome string `json:"last_outcome,omitempty"`
	Verdict     string `json:"verdict"`
}

// Health reports SLO attainment, burn rate, baseline-vs-latest per node,
// top regressions and the misprediction ratio for one pipeline over the
// most recent cfg.Window runs.
func (l *Ledger) Health(pipeline string, cfg HealthConfig) Health {
	cfg = cfg.withDefaults()
	h := Health{
		Pipeline:   pipeline,
		SLOSeconds: cfg.SLOSeconds,
		Objective:  cfg.Objective,
		Verdict:    VerdictUnknown,
	}
	window := l.Runs(Filter{Pipeline: pipeline, Limit: cfg.Window}) // newest first
	h.WindowRuns = len(window)
	if len(window) == 0 {
		return h
	}
	h.LastRunID = window[0].RunID
	h.LastOutcome = window[0].Outcome

	var walls, queues []float64
	withinSLO := 0
	byKind := make(map[string]int)
	var regs []Regression
	for i := range window {
		s := &window[i]
		if s.Outcome == OutcomeSucceeded {
			h.Succeeded++
			walls = append(walls, s.WallSeconds)
			queues = append(queues, s.QueueWaitSeconds)
			if s.WallSeconds <= cfg.SLOSeconds {
				withinSLO++
			}
		} else {
			h.Failed++
		}
		for _, a := range s.Anomalies {
			byKind[a.Kind]++
			regs = append(regs, Regression{RunID: s.RunID, Anomaly: a})
		}
	}
	h.SLOAttainment = float64(withinSLO) / float64(len(window))
	h.BurnRate = (1 - h.SLOAttainment) / (1 - cfg.Objective)
	h.WallP50Seconds = percentile(walls, 0.50)
	h.WallP99Seconds = percentile(walls, 0.99)
	h.QueueWaitP50Seconds = percentile(queues, 0.50)
	h.QueueWaitP99Seconds = percentile(queues, 0.99)
	h.MispredictRatio = l.MispredictRatio(pipeline)
	h.AnomalyCount = len(regs)
	if len(byKind) > 0 {
		h.AnomaliesByKind = byKind
	}
	sort.SliceStable(regs, func(i, j int) bool {
		return math.Abs(regs[i].Score) > math.Abs(regs[j].Score)
	})
	if len(regs) > 5 {
		regs = regs[:5]
	}
	h.TopRegressions = regs

	// Baseline vs latest per node, from the newest succeeded run.
	var latest *RunSummary
	for i := range window {
		if window[i].Outcome == OutcomeSucceeded {
			latest = &window[i]
			break
		}
	}
	if latest != nil {
		regressed := make(map[string]bool)
		for _, a := range latest.Anomalies {
			if a.Node != "" {
				regressed[a.Node] = true
			}
		}
		base := make(map[string]NodeBaseline)
		for _, nb := range l.Baselines(pipeline) {
			base[nb.Node] = nb
		}
		det := l.det
		for _, ns := range latest.Nodes {
			nh := NodeHealth{
				Node:              ns.Node,
				LatestWallSeconds: ns.WallSeconds,
				LatestRatio:       ns.Ratio,
				Regressed:         regressed[ns.Node],
			}
			if nb, ok := base[ns.Node]; ok {
				nh.Samples = nb.Samples
				nh.BaselineWallSeconds = nb.WallMeanSeconds
				nh.BaselineRatio = nb.RatioMean
				sigma := nb.WallSigmaSeconds
				if floor := det.RelSigmaFloor * math.Abs(nb.WallMeanSeconds); sigma < floor {
					sigma = floor
				}
				if sigma > 1e-12 {
					nh.WallZ = (ns.WallSeconds - nb.WallMeanSeconds) / sigma
				}
			}
			h.Nodes = append(h.Nodes, nh)
		}
	}

	switch {
	case h.LastOutcome != OutcomeSucceeded || h.SLOAttainment < cfg.Objective:
		h.Verdict = VerdictFailing
	case h.AnomalyCount > 0:
		h.Verdict = VerdictDegraded
	default:
		h.Verdict = VerdictHealthy
	}
	return h
}

// percentile is the nearest-rank percentile of xs (not necessarily
// sorted); 0 for an empty slice.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
