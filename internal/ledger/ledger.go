package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
)

// DetectorConfig tunes the anomaly detector. Zero values mean defaults.
type DetectorConfig struct {
	// MinSamples is how many succeeded runs a baseline needs before the
	// detector trusts it. Default 3.
	MinSamples int64
	// Z is the z-score threshold for wall/bytes/eviction regressions.
	// Default 3.
	Z float64
	// MinWallDeltaSeconds is the absolute wall-time floor: a node must be
	// at least this much over its baseline mean to count as regressed, so
	// microsecond jitter on tiny nodes never trips the z-score. Default 10ms.
	MinWallDeltaSeconds float64
	// MinBytesDelta is the absolute output-bytes floor for bytes
	// regressions. Default 4096.
	MinBytesDelta float64
	// RatioCollapse flags a node whose compression ratio fell below this
	// fraction of its baseline mean. Default 0.5.
	RatioCollapse float64
	// EvictionMin is the minimum eviction count for a storm; z-score alone
	// is not enough when the baseline is near zero. Default 4.
	EvictionMin int64
	// SlowSeconds marks a run "slow" for tail sampling when its wall time
	// exceeds it, even without a baseline. Zero disables the absolute check
	// (the z-score check against the pipeline baseline still applies).
	SlowSeconds float64
	// RelSigmaFloor floors the baseline sigma at this fraction of the mean
	// so near-constant baselines don't produce infinite z-scores.
	// Default 0.1.
	RelSigmaFloor float64
}

func (d DetectorConfig) withDefaults() DetectorConfig {
	if d.MinSamples <= 0 {
		d.MinSamples = 3
	}
	if d.Z <= 0 {
		d.Z = 3
	}
	if d.MinWallDeltaSeconds <= 0 {
		d.MinWallDeltaSeconds = 0.010
	}
	if d.MinBytesDelta <= 0 {
		d.MinBytesDelta = 4096
	}
	if d.RatioCollapse <= 0 {
		d.RatioCollapse = 0.5
	}
	if d.EvictionMin <= 0 {
		d.EvictionMin = 4
	}
	if d.RelSigmaFloor <= 0 {
		d.RelSigmaFloor = 0.1
	}
	return d
}

// Config configures a Ledger.
type Config struct {
	// Capacity bounds the in-memory ring; older summaries are evicted (the
	// NDJSON file, when set, keeps them). Default 512.
	Capacity int
	// Path appends every summary as one NDJSON line and is replayed on
	// open, so baselines and history survive restarts. "" keeps the ledger
	// in memory only.
	Path string
	// MaxFileBytes bounds the NDJSON file: when an append (or replay)
	// pushes past it, the file is compacted — rewritten from the retained
	// ring to a temp file and atomically renamed into place — so the
	// history on disk can never grow without bound. Default 4MB; negative
	// disables the cap.
	MaxFileBytes int64
	Detector     DetectorConfig
}

// Decision is the tail-sampling verdict for one run: whether its full
// trace is worth keeping.
type Decision struct {
	Keep    bool     `json:"keep"`
	Reasons []string `json:"reasons,omitempty"`
}

// ewma is an exponentially weighted mean + variance, the same learning
// rule the metrics store uses for compression ratios.
type ewma struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	Var  float64 `json:"var"`
}

const ewmaAlpha = 0.3

func (w *ewma) observe(x float64) {
	w.N++
	if w.N == 1 {
		w.Mean, w.Var = x, 0
		return
	}
	diff := x - w.Mean
	incr := ewmaAlpha * diff
	w.Mean += incr
	w.Var = (1 - ewmaAlpha) * (w.Var + diff*incr)
}

// z scores x against the baseline with the sigma floored at
// relFloor×|mean| (plus a tiny epsilon) so constant baselines stay finite.
func (w *ewma) z(x, relFloor float64) float64 {
	sigma := math.Sqrt(w.Var)
	if floor := relFloor * math.Abs(w.Mean); sigma < floor {
		sigma = floor
	}
	if sigma < 1e-12 {
		sigma = 1e-12
	}
	return (x - w.Mean) / sigma
}

// nodeBaseline is the learned behaviour of one (pipeline, node).
type nodeBaseline struct {
	wall      ewma
	bytes     ewma
	ratio     ewma
	fallbacks ewma
}

// pipelineBaseline aggregates run-level behaviour of one pipeline.
type pipelineBaseline struct {
	wall       ewma
	queue      ewma
	evictions  ewma
	mispredict ewma
	peak       ewma // actual catalog high-water mark per run, in bytes
	nodes      map[string]*nodeBaseline
}

// NodeBaseline is the exported snapshot of a learned per-node baseline.
type NodeBaseline struct {
	Node             string  `json:"node"`
	Samples          int64   `json:"samples"`
	WallMeanSeconds  float64 `json:"wall_mean_seconds"`
	WallSigmaSeconds float64 `json:"wall_sigma_seconds"`
	BytesMean        float64 `json:"bytes_mean"`
	RatioMean        float64 `json:"ratio_mean,omitempty"`
	FallbackMean     float64 `json:"fallback_mean,omitempty"`
}

// Filter selects runs from the history. Zero fields match everything.
type Filter struct {
	Pipeline  string
	Tenant    string
	Outcome   string
	Anomalous bool // only runs the detector flagged
	Limit     int  // max runs returned; 0 means all retained
}

// Ledger is the bounded run-history store plus the learned baselines and
// the anomaly detector over them. Safe for concurrent use.
type Ledger struct {
	mu        sync.Mutex
	cfg       Config
	det       DetectorConfig
	ring      []RunSummary
	head      int // next slot to overwrite once the ring is full
	evicted   int64
	baselines map[string]*pipelineBaseline
	file      *os.File
	fileBytes int64 // current NDJSON file size, vs cfg.MaxFileBytes
	err       error
}

// New opens a ledger. When cfg.Path names an existing NDJSON file its
// summaries are replayed into the ring and baselines (detection is not
// re-run; stored anomalies are kept as recorded), then the file is opened
// for appending.
func New(cfg Config) (*Ledger, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 512
	}
	if cfg.MaxFileBytes == 0 {
		cfg.MaxFileBytes = 4 << 20
	}
	l := &Ledger{
		cfg:       cfg,
		det:       cfg.Detector.withDefaults(),
		baselines: make(map[string]*pipelineBaseline),
	}
	if cfg.Path != "" {
		if err := l.replay(cfg.Path); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("ledger: open %s: %w", cfg.Path, err)
		}
		l.file = f
		if fi, err := f.Stat(); err == nil {
			l.fileBytes = fi.Size()
		}
		// A replayed history already past the cap compacts immediately, so
		// restarts trim the file instead of inheriting unbounded growth.
		if l.cfg.MaxFileBytes > 0 && l.fileBytes > l.cfg.MaxFileBytes {
			l.compactLocked()
		}
	}
	return l, nil
}

// replay folds an existing NDJSON history into the ring and baselines.
func (l *Ledger) replay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("ledger: replay %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s RunSummary
		if err := json.Unmarshal(b, &s); err != nil {
			return fmt.Errorf("ledger: replay %s line %d: %w", path, line, err)
		}
		l.learnLocked(&s)
		l.pushLocked(s)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("ledger: replay %s: %w", path, err)
	}
	return nil
}

// Close flushes and closes the NDJSON file, if any.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return l.err
	}
	err := l.file.Close()
	l.file = nil
	if l.err != nil {
		return l.err
	}
	return err
}

// Err reports the first persistence error, if any.
func (l *Ledger) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Append records one run: the summary is judged against the learned
// baselines (filling s.Anomalies), folded into them, pushed onto the ring,
// and persisted. The returned Decision is the tail-sampling verdict —
// whether this run's full trace deserves retention.
func (l *Ledger) Append(s RunSummary) (RunSummary, Decision) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.detectLocked(&s)
	dec := l.decideLocked(&s)
	l.learnLocked(&s)
	l.pushLocked(s)
	l.persistLocked(&s)
	return s, dec
}

// persistLocked appends one summary to the NDJSON file and compacts when
// the append pushed the file past the size cap.
func (l *Ledger) persistLocked(s *RunSummary) {
	if l.file == nil {
		return
	}
	b, err := json.Marshal(s)
	if err != nil {
		if l.err == nil {
			l.err = err
		}
		return
	}
	b = append(b, '\n')
	if _, err := l.file.Write(b); err != nil {
		if l.err == nil {
			l.err = err
		}
		return
	}
	l.fileBytes += int64(len(b))
	if l.cfg.MaxFileBytes > 0 && l.fileBytes > l.cfg.MaxFileBytes {
		l.compactLocked()
	}
}

// compactLocked rewrites the NDJSON file from the retained ring (oldest
// first) to a temp file and renames it into place, dropping lines the
// bounded ring has already evicted. Failures leave the original file in
// place and record the first error.
func (l *Ledger) compactLocked() {
	path := l.cfg.Path
	tmp := path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		if l.err == nil {
			l.err = fmt.Errorf("ledger: compact %s: %w", path, err)
		}
		return
	}
	var n int64
	for i := 0; i < len(l.ring); i++ {
		s := l.ring[(l.head+i)%len(l.ring)]
		b, err := json.Marshal(s)
		if err != nil {
			continue
		}
		b = append(b, '\n')
		nn, err := f.Write(b)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			if l.err == nil {
				l.err = fmt.Errorf("ledger: compact %s: %w", path, err)
			}
			return
		}
		n += int64(nn)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		if l.err == nil {
			l.err = fmt.Errorf("ledger: compact %s: %w", path, err)
		}
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		if l.err == nil {
			l.err = fmt.Errorf("ledger: compact %s: %w", path, err)
		}
		return
	}
	if l.file != nil {
		l.file.Close()
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.file = nil
		if l.err == nil {
			l.err = fmt.Errorf("ledger: reopen %s: %w", path, err)
		}
		return
	}
	l.file = af
	l.fileBytes = n
}

// detectLocked fills s.Anomalies by judging the run against the
// pre-existing baselines. Only succeeded runs are judged — failed runs are
// already kept by the tail sampler and their partial numbers would poison
// comparisons.
func (l *Ledger) detectLocked(s *RunSummary) {
	if s.Outcome != OutcomeSucceeded {
		return
	}
	d := l.det
	pb := l.baselines[s.Pipeline]
	// Admission misprediction: the reservation proved too small and the run
	// degraded to blocking writes. Needs no baseline — one occurrence is
	// already the paper's accounting violated.
	if s.ReservedBytes > 0 && s.FallbackWrites > 0 {
		s.Anomalies = append(s.Anomalies, Anomaly{
			Kind:     KindMispredict,
			Observed: float64(s.ActualPeakBytes),
			Baseline: float64(s.ReservedBytes),
			Detail:   fmt.Sprintf("%d blocking writes: reserved %d B < actual demand", s.FallbackWrites, s.ReservedBytes),
		})
	}
	if pb == nil {
		return
	}
	if pb.evictions.N >= d.MinSamples && s.Evictions >= d.EvictionMin {
		if z := pb.evictions.z(float64(s.Evictions), d.RelSigmaFloor); z >= d.Z {
			s.Anomalies = append(s.Anomalies, Anomaly{
				Kind: KindEvictionStorm, Score: z,
				Observed: float64(s.Evictions), Baseline: pb.evictions.Mean,
				Detail: fmt.Sprintf("%d evictions vs baseline %.1f", s.Evictions, pb.evictions.Mean),
			})
		}
	}
	for i := range s.Nodes {
		ns := &s.Nodes[i]
		nb := pb.nodes[ns.Node]
		if nb == nil || nb.wall.N < d.MinSamples {
			continue
		}
		if z := nb.wall.z(ns.WallSeconds, d.RelSigmaFloor); z >= d.Z && ns.WallSeconds-nb.wall.Mean >= d.MinWallDeltaSeconds {
			s.Anomalies = append(s.Anomalies, Anomaly{
				Kind: KindWallRegression, Node: ns.Node, Score: z,
				Observed: ns.WallSeconds, Baseline: nb.wall.Mean,
				Detail: fmt.Sprintf("%.1fms vs baseline %.1fms", ns.WallSeconds*1e3, nb.wall.Mean*1e3),
			})
		}
		if ns.OutputBytes > 0 {
			if z := nb.bytes.z(float64(ns.OutputBytes), d.RelSigmaFloor); z >= d.Z && float64(ns.OutputBytes)-nb.bytes.Mean >= d.MinBytesDelta {
				s.Anomalies = append(s.Anomalies, Anomaly{
					Kind: KindBytesRegression, Node: ns.Node, Score: z,
					Observed: float64(ns.OutputBytes), Baseline: nb.bytes.Mean,
					Detail: fmt.Sprintf("%d B vs baseline %.0f B", ns.OutputBytes, nb.bytes.Mean),
				})
			}
		}
		if ns.Ratio > 0 && nb.ratio.N >= d.MinSamples && nb.ratio.Mean > 0 &&
			ns.Ratio < d.RatioCollapse*nb.ratio.Mean {
			s.Anomalies = append(s.Anomalies, Anomaly{
				Kind: KindRatioCollapse, Node: ns.Node,
				Observed: ns.Ratio, Baseline: nb.ratio.Mean,
				Detail: fmt.Sprintf("ratio %.2f vs baseline %.2f", ns.Ratio, nb.ratio.Mean),
			})
		}
		if ns.KernelFallbacks > 0 && nb.fallbacks.N >= d.MinSamples && nb.fallbacks.Mean == 0 {
			s.Anomalies = append(s.Anomalies, Anomaly{
				Kind: KindKernelFallback, Node: ns.Node,
				Observed: float64(ns.KernelFallbacks),
				Detail:   fmt.Sprintf("%d row-engine fallbacks on a node that never fell back", ns.KernelFallbacks),
			})
		}
	}
}

// decideLocked is the tail-sampling policy: keep the trace when the run is
// anomalous, did not succeed, or is slow against its own pipeline history.
func (l *Ledger) decideLocked(s *RunSummary) Decision {
	var dec Decision
	if len(s.Anomalies) > 0 {
		dec.Reasons = append(dec.Reasons, "anomalous")
	}
	if s.Outcome != OutcomeSucceeded {
		dec.Reasons = append(dec.Reasons, s.Outcome)
	}
	d := l.det
	if d.SlowSeconds > 0 && s.WallSeconds > d.SlowSeconds {
		dec.Reasons = append(dec.Reasons, "slow")
	} else if pb := l.baselines[s.Pipeline]; pb != nil && pb.wall.N >= d.MinSamples {
		if z := pb.wall.z(s.WallSeconds, d.RelSigmaFloor); z >= d.Z && s.WallSeconds-pb.wall.Mean >= d.MinWallDeltaSeconds {
			dec.Reasons = append(dec.Reasons, "slow")
		}
	}
	dec.Keep = len(dec.Reasons) > 0
	return dec
}

// learnLocked folds a succeeded run into the pipeline and node baselines.
func (l *Ledger) learnLocked(s *RunSummary) {
	if s.Outcome != OutcomeSucceeded {
		return
	}
	pb := l.baselines[s.Pipeline]
	if pb == nil {
		pb = &pipelineBaseline{nodes: make(map[string]*nodeBaseline)}
		l.baselines[s.Pipeline] = pb
	}
	pb.wall.observe(s.WallSeconds)
	pb.queue.observe(s.QueueWaitSeconds)
	pb.evictions.observe(float64(s.Evictions))
	if s.ReservedBytes > 0 {
		pb.mispredict.observe(s.Mispredict)
	}
	if s.ActualPeakBytes > 0 {
		pb.peak.observe(float64(s.ActualPeakBytes))
	}
	for i := range s.Nodes {
		ns := &s.Nodes[i]
		nb := pb.nodes[ns.Node]
		if nb == nil {
			nb = &nodeBaseline{}
			pb.nodes[ns.Node] = nb
		}
		nb.wall.observe(ns.WallSeconds)
		nb.bytes.observe(float64(ns.OutputBytes))
		if ns.Ratio > 0 {
			nb.ratio.observe(ns.Ratio)
		}
		nb.fallbacks.observe(float64(ns.KernelFallbacks))
	}
}

// pushLocked appends to the bounded ring, evicting the oldest entry when
// full.
func (l *Ledger) pushLocked(s RunSummary) {
	if len(l.ring) < l.cfg.Capacity {
		l.ring = append(l.ring, s)
		return
	}
	l.ring[l.head] = s
	l.head = (l.head + 1) % l.cfg.Capacity
	l.evicted++
}

// Len reports how many summaries the ring currently holds.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Evicted reports how many summaries the bounded ring has dropped.
func (l *Ledger) Evicted() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// Runs returns retained summaries matching the filter, newest first.
func (l *Ledger) Runs(f Filter) []RunSummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RunSummary, 0, len(l.ring))
	for i := len(l.ring) - 1; i >= 0; i-- {
		// Chronological order in the ring is ring[head:] then ring[:head];
		// walk it backwards for newest-first.
		s := l.ring[(l.head+i)%len(l.ring)]
		if f.Pipeline != "" && s.Pipeline != f.Pipeline {
			continue
		}
		if f.Tenant != "" && s.Tenant != f.Tenant {
			continue
		}
		if f.Outcome != "" && s.Outcome != f.Outcome {
			continue
		}
		if f.Anomalous && len(s.Anomalies) == 0 {
			continue
		}
		out = append(out, s)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// MispredictRatio is the pipeline's learned mean |reserved−actual|/reserved
// over its admitted runs (0 when the pipeline never reserved).
func (l *Ledger) MispredictRatio(pipeline string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if pb := l.baselines[pipeline]; pb != nil && pb.mispredict.N > 0 {
		return pb.mispredict.Mean
	}
	return 0
}

// AdmissionHint is what the learned baselines predict about a pipeline's
// next run: its catalog footprint and wall time.
type AdmissionHint struct {
	// PeakBytesMean is the learned mean of the run catalog high-water mark.
	PeakBytesMean float64 `json:"peak_bytes_mean"`
	// PeakBytesSigma spreads the peak estimate; admission adds headroom on
	// top of it.
	PeakBytesSigma float64 `json:"peak_bytes_sigma"`
	// WallMeanSeconds is the learned mean run wall time (enqueue to
	// finish), the gateway's latency prediction.
	WallMeanSeconds float64 `json:"wall_mean_seconds"`
	// Samples is how many succeeded runs back the estimate.
	Samples int64 `json:"samples"`
}

// AdmissionHint reports the learned footprint/latency prediction for a
// pipeline, and whether enough succeeded runs back it (the detector's
// MinSamples) for admission to trust it over the planner's static guess.
func (l *Ledger) AdmissionHint(pipeline string) (AdmissionHint, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	pb := l.baselines[pipeline]
	if pb == nil || pb.peak.N < l.det.MinSamples {
		return AdmissionHint{}, false
	}
	return AdmissionHint{
		PeakBytesMean:   pb.peak.Mean,
		PeakBytesSigma:  math.Sqrt(pb.peak.Var),
		WallMeanSeconds: pb.wall.Mean,
		Samples:         pb.peak.N,
	}, true
}

// Baselines snapshots the learned per-node baselines of a pipeline,
// sorted by node name.
func (l *Ledger) Baselines(pipeline string) []NodeBaseline {
	l.mu.Lock()
	defer l.mu.Unlock()
	pb := l.baselines[pipeline]
	if pb == nil {
		return nil
	}
	out := make([]NodeBaseline, 0, len(pb.nodes))
	for name, nb := range pb.nodes {
		out = append(out, NodeBaseline{
			Node:             name,
			Samples:          nb.wall.N,
			WallMeanSeconds:  nb.wall.Mean,
			WallSigmaSeconds: math.Sqrt(nb.wall.Var),
			BytesMean:        nb.bytes.Mean,
			RatioMean:        nb.ratio.Mean,
			FallbackMean:     nb.fallbacks.Mean,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// CriticalPathSeconds predicts a pipeline's refresh execution time from
// the learned per-node baselines: the longest chain of mean node wall
// times through the DAG described by parents (node -> upstream MV names).
// Unlike AdmissionHint's run-level mean — which folds in queue wait and
// needs MinSamples of whole runs — this is structural: it prices exactly
// the dependency chain a refresh cannot parallelize away, and it works as
// soon as individual nodes have trusted baselines. Nodes without
// MinSamples observations contribute zero. Returns 0 before anything is
// learned.
func (l *Ledger) CriticalPathSeconds(pipeline string, parents map[string][]string) float64 {
	l.mu.Lock()
	pb := l.baselines[pipeline]
	if pb == nil {
		l.mu.Unlock()
		return 0
	}
	wall := make(map[string]float64, len(pb.nodes))
	for name, nb := range pb.nodes {
		if nb.wall.N >= l.det.MinSamples {
			wall[name] = nb.wall.Mean
		}
	}
	l.mu.Unlock()
	if len(wall) == 0 {
		return 0
	}
	// Memoized longest path over node names; the graph is a DAG, but a
	// visiting guard keeps malformed parent maps from recursing forever.
	memo := make(map[string]float64)
	visiting := make(map[string]bool)
	var chain func(n string) float64
	chain = func(n string) float64 {
		if v, ok := memo[n]; ok {
			return v
		}
		if visiting[n] {
			return 0
		}
		visiting[n] = true
		var up float64
		for _, p := range parents[n] {
			if c := chain(p); c > up {
				up = c
			}
		}
		delete(visiting, n)
		v := wall[n] + up
		memo[n] = v
		return v
	}
	var cp float64
	for n := range wall {
		if c := chain(n); c > cp {
			cp = c
		}
	}
	for n := range parents {
		if c := chain(n); c > cp {
			cp = c
		}
	}
	return cp
}

// Pipelines lists the pipelines with learned baselines, sorted.
func (l *Ledger) Pipelines() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.baselines))
	for p := range l.baselines {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
