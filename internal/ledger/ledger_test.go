package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/shortcircuit-db/sc/internal/telemetry"
)

// run builds a healthy synthetic summary for pipeline p with per-node wall
// times; wall is the run total.
func run(id, p string, wall float64, nodes map[string]float64) RunSummary {
	s := RunSummary{
		RunID:    id,
		Pipeline: p,
		Outcome:  OutcomeSucceeded,
		Start:    time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC),

		WallSeconds: wall,
	}
	for n, w := range nodes {
		s.Nodes = append(s.Nodes, NodeSummary{Node: n, WallSeconds: w, SelfSeconds: w, OutputBytes: 1 << 20})
	}
	return s
}

func TestAppendAndFilter(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(run("r1", "a", 1, nil))
	l.Append(run("r2", "b", 1, nil))
	fail := run("r3", "a", 1, nil)
	fail.Outcome = OutcomeFailed
	fail.Tenant = "acme"
	l.Append(fail)

	if got := l.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	all := l.Runs(Filter{})
	if len(all) != 3 || all[0].RunID != "r3" || all[2].RunID != "r1" {
		t.Fatalf("Runs not newest-first: %+v", all)
	}
	if got := l.Runs(Filter{Pipeline: "a"}); len(got) != 2 {
		t.Fatalf("pipeline filter: %d runs, want 2", len(got))
	}
	if got := l.Runs(Filter{Outcome: OutcomeFailed}); len(got) != 1 || got[0].RunID != "r3" {
		t.Fatalf("outcome filter: %+v", got)
	}
	if got := l.Runs(Filter{Tenant: "acme"}); len(got) != 1 {
		t.Fatalf("tenant filter: %d runs, want 1", len(got))
	}
	if got := l.Runs(Filter{Limit: 2}); len(got) != 2 || got[0].RunID != "r3" {
		t.Fatalf("limit: %+v", got)
	}
}

func TestRingEviction(t *testing.T) {
	l, err := New(Config{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		l.Append(run(fmt.Sprintf("r%d", i), "p", 1, nil))
	}
	if got := l.Len(); got != 4 {
		t.Fatalf("Len = %d, want capacity 4", got)
	}
	if got := l.Evicted(); got != 6 {
		t.Fatalf("Evicted = %d, want 6", got)
	}
	runs := l.Runs(Filter{})
	want := []string{"r10", "r9", "r8", "r7"}
	for i, w := range want {
		if runs[i].RunID != w {
			t.Fatalf("runs[%d] = %s, want %s (full: %+v)", i, runs[i].RunID, w, runs)
		}
	}
}

func TestPersistenceReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.ndjson")
	l, err := New(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		l.Append(run(fmt.Sprintf("r%d", i), "p", 1, map[string]float64{"n": 0.1}))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: history and baselines must survive.
	l2, err := New(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Len(); got != 5 {
		t.Fatalf("replayed Len = %d, want 5", got)
	}
	bs := l2.Baselines("p")
	if len(bs) != 1 || bs[0].Node != "n" || bs[0].Samples != 5 {
		t.Fatalf("replayed baselines: %+v", bs)
	}
	// A regression appended after reopen is still judged against the
	// replayed baseline.
	slow := run("r6", "p", 1, map[string]float64{"n": 1.0})
	sum, dec := l2.Append(slow)
	if !sum.Anomalous() || !dec.Keep {
		t.Fatalf("post-replay regression not flagged: %+v / %+v", sum.Anomalies, dec)
	}
	// And the new run is on disk for the next replay.
	l3, err := New(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if got := l3.Len(); got != 6 {
		t.Fatalf("second replay Len = %d, want 6", got)
	}
	if got := l3.Runs(Filter{Anomalous: true}); len(got) != 1 || got[0].RunID != "r6" {
		t.Fatalf("anomaly not persisted: %+v", got)
	}
}

// TestFileCompaction appends far more than MaxFileBytes allows and checks
// the NDJSON file is compacted down to the retained ring — bounded on
// disk, still replayable, newest entries intact.
func TestFileCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.ndjson")
	l, err := New(Config{Capacity: 8, Path: path, MaxFileBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 200; i++ {
		l.Append(run(fmt.Sprintf("r%d", i), "p", 1, map[string]float64{"n": 0.1}))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// One ring's worth of lines plus at most one cap overshoot before the
	// compaction triggers.
	if fi.Size() > 2048+1024 {
		t.Fatalf("file = %d bytes after compaction, cap 2048", fi.Size())
	}
	l2, err := New(Config{Capacity: 8, Path: path, MaxFileBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	runs := l2.Runs(Filter{})
	if len(runs) == 0 || runs[0].RunID != "r200" {
		t.Fatalf("replay after compaction lost the newest run: %+v", runs)
	}
	for i, r := range runs {
		want := fmt.Sprintf("r%d", 200-i)
		if r.RunID != want {
			t.Fatalf("runs[%d] = %s, want %s", i, r.RunID, want)
		}
	}
}

// TestAdmissionHint checks the learned footprint/latency prediction: no
// hint before MinSamples succeeded runs, then the peak and wall means.
func TestAdmissionHint(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, peak int64, wall float64) RunSummary {
		s := run(id, "p", wall, nil)
		s.ReservedBytes = 2 * peak
		s.ActualPeakBytes = peak
		return s
	}
	l.Append(mk("r1", 1000, 1))
	l.Append(mk("r2", 1000, 1))
	if _, ok := l.AdmissionHint("p"); ok {
		t.Fatal("hint trusted before MinSamples runs")
	}
	l.Append(mk("r3", 1000, 1))
	h, ok := l.AdmissionHint("p")
	if !ok {
		t.Fatal("no hint after MinSamples succeeded runs")
	}
	if h.PeakBytesMean != 1000 || h.WallMeanSeconds != 1 || h.Samples != 3 {
		t.Fatalf("hint = %+v", h)
	}
	// Failed runs must not move the estimate.
	bad := mk("r4", 900000, 50)
	bad.Outcome = OutcomeFailed
	l.Append(bad)
	if h2, _ := l.AdmissionHint("p"); h2.PeakBytesMean != 1000 {
		t.Fatalf("failed run moved the baseline: %+v", h2)
	}
}

// TestConcurrentAppendRead hammers the ledger from concurrent writers and
// readers; run with -race this pins the locking discipline.
func TestConcurrentAppendRead(t *testing.T) {
	l, err := New(Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := fmt.Sprintf("p%d", g%2)
				l.Append(run(fmt.Sprintf("g%d-r%d", g, i), p, 0.5, map[string]float64{"n": 0.1}))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = l.Runs(Filter{Pipeline: "p0", Limit: 10})
				_ = l.Baselines("p1")
				_ = l.Health("p0", HealthConfig{})
				_ = l.MispredictRatio("p0")
				_ = l.Pipelines()
			}
		}()
	}
	wg.Wait()
	if got := l.Len(); got != 64 {
		t.Fatalf("Len = %d, want 64 (ring full)", got)
	}
	if got := l.Evicted(); got != 400-64 {
		t.Fatalf("Evicted = %d, want %d", got, 400-64)
	}
}

// TestSummarizeFromSpans distills a hand-built trace and checks every
// derived field: queue wait, per-node wall/wait, byte totals, ratios,
// evictions, critical path, and the mispredict computation from Meta.
func TestSummarizeFromSpans(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	tid := telemetry.TraceID{1}
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	root := telemetry.Span{
		TraceID: tid, SpanID: telemetry.SpanID{1}, Name: "refresh",
		Start: at(0), End: at(1000),
		Attrs: []telemetry.Attr{telemetry.Str("sc.run_id", "run-7")},
	}
	queue := telemetry.Span{
		TraceID: tid, SpanID: telemetry.SpanID{2}, Parent: root.SpanID,
		Name: "queue admission", Start: at(0), End: at(100),
	}
	nodeA := telemetry.Span{
		TraceID: tid, SpanID: telemetry.SpanID{3}, Parent: root.SpanID,
		Name: "node a", Start: at(100), End: at(500),
		Attrs: []telemetry.Attr{
			telemetry.Str(telemetry.AttrNode, "a"),
			telemetry.Int("sc.output_bytes", 4096),
			telemetry.Int("sc.encoded_bytes", 1024),
		},
		Events: []telemetry.SpanEvent{
			{Name: "EncodeDone", Time: at(480), Attrs: []telemetry.Attr{
				telemetry.Int("sc.encoded_bytes", 1024), telemetry.Float("sc.ratio", 4.0)}},
			{Name: "Evicted", Time: at(490)},
		},
	}
	nodeB := telemetry.Span{
		TraceID: tid, SpanID: telemetry.SpanID{4}, Parent: root.SpanID,
		Name: "node b", Start: at(500), End: at(1000),
		Attrs: []telemetry.Attr{
			telemetry.Str(telemetry.AttrNode, "b"),
			telemetry.Int("sc.output_bytes", 2048),
		},
		Events: []telemetry.SpanEvent{
			{Name: "DecodeDone", Time: at(600), Attrs: []telemetry.Attr{telemetry.Int("sc.bytes", 4096)}},
			{Name: "KernelDone", Time: at(900), Attrs: []telemetry.Attr{telemetry.Int("sc.kernel.fallbacks", 2)}},
		},
	}
	spans := []telemetry.Span{root, queue, nodeA, nodeB}
	parents := map[string][]string{"b": {"a"}}

	s := Summarize(spans, parents, Meta{
		Pipeline: "p", Tenant: "t",
		ReservedBytes: 1000, ActualPeakBytes: 400, FallbackWrites: 1,
	})

	if s.RunID != "run-7" || s.TraceID != tid.String() {
		t.Fatalf("identity from root span: %+v", s)
	}
	if s.Outcome != OutcomeSucceeded {
		t.Fatalf("outcome default: %q", s.Outcome)
	}
	if s.WallSeconds != 1.0 {
		t.Fatalf("wall = %g, want 1.0", s.WallSeconds)
	}
	if s.QueueWaitSeconds != 0.1 {
		t.Fatalf("queue wait = %g, want 0.1", s.QueueWaitSeconds)
	}
	if s.Mispredict != 0.6 {
		t.Fatalf("mispredict = %g, want 0.6", s.Mispredict)
	}
	if s.OutputBytes != 6144 || s.EncodedBytes != 1024 || s.DecodedBytes != 4096 {
		t.Fatalf("byte totals: out %d enc %d dec %d", s.OutputBytes, s.EncodedBytes, s.DecodedBytes)
	}
	if s.Evictions != 1 || s.KernelFallbacks != 2 {
		t.Fatalf("evictions %d fallbacks %d", s.Evictions, s.KernelFallbacks)
	}
	if len(s.Nodes) != 2 || s.Nodes[0].Node != "a" || s.Nodes[1].Node != "b" {
		t.Fatalf("nodes: %+v", s.Nodes)
	}
	a, b := s.Nodes[0], s.Nodes[1]
	if a.WallSeconds != 0.4 || a.Ratio != 4.0 {
		t.Fatalf("node a: %+v", a)
	}
	if b.KernelFallbacks != 2 {
		t.Fatalf("node b fallbacks: %+v", b)
	}
	if len(s.CritPath) == 0 || s.CritPath[len(s.CritPath)-1] != "b" {
		t.Fatalf("critical path: %v", s.CritPath)
	}
	if !b.Critical {
		t.Fatalf("node b should be on the critical path: %+v", b)
	}
}
