package ledger

import (
	"fmt"
	"testing"
)

// seed feeds n identical healthy runs so baselines reach MinSamples.
func seed(t *testing.T, l *Ledger, n int, mk func(i int) RunSummary) {
	t.Helper()
	for i := 0; i < n; i++ {
		sum, dec := l.Append(mk(i))
		if sum.Anomalous() {
			t.Fatalf("seed run %d flagged: %+v", i, sum.Anomalies)
		}
		if dec.Keep {
			t.Fatalf("seed run %d kept by tail sampler: %+v", i, dec.Reasons)
		}
	}
}

// twoNodeRun builds a run with nodes "fast" and "slow" at the given walls.
func twoNodeRun(id string, fast, slow float64) RunSummary {
	s := run(id, "p", fast+slow, nil)
	s.Nodes = []NodeSummary{
		{Node: "fast", WallSeconds: fast, SelfSeconds: fast, OutputBytes: 1 << 20},
		{Node: "slow", WallSeconds: slow, SelfSeconds: slow, OutputBytes: 1 << 20},
	}
	return s
}

// TestWallRegressionFlagsExactlyTheSlowedNode is the synthetic-regression
// acceptance test: one node slows down; the detector must flag that node
// and only that node.
func TestWallRegressionFlagsExactlyTheSlowedNode(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	seed(t, l, 5, func(i int) RunSummary {
		return twoNodeRun(fmt.Sprintf("r%d", i), 0.050, 0.050)
	})

	sum, dec := l.Append(twoNodeRun("bad", 0.050, 0.200))
	if len(sum.Anomalies) != 1 {
		t.Fatalf("want exactly 1 anomaly, got %+v", sum.Anomalies)
	}
	a := sum.Anomalies[0]
	if a.Kind != KindWallRegression || a.Node != "slow" {
		t.Fatalf("wrong anomaly: %+v", a)
	}
	if a.Score < 3 {
		t.Fatalf("z-score %g below threshold, should not have fired", a.Score)
	}
	if !dec.Keep {
		t.Fatalf("anomalous run must be tail-sampled in: %+v", dec)
	}
}

func TestSubMillisecondJitterNotFlagged(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	seed(t, l, 5, func(i int) RunSummary {
		return twoNodeRun(fmt.Sprintf("r%d", i), 0.0001, 0.0001)
	})
	// 5x the baseline but only +0.4ms — below MinWallDeltaSeconds.
	sum, _ := l.Append(twoNodeRun("jitter", 0.0001, 0.0005))
	if sum.Anomalous() {
		t.Fatalf("sub-millisecond jitter flagged: %+v", sum.Anomalies)
	}
}

func TestBytesRegression(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, bytes int64) RunSummary {
		s := run(id, "p", 0.1, nil)
		s.Nodes = []NodeSummary{{Node: "n", WallSeconds: 0.05, SelfSeconds: 0.05, OutputBytes: bytes}}
		return s
	}
	seed(t, l, 5, func(i int) RunSummary { return mk(fmt.Sprintf("r%d", i), 1<<20) })
	sum, _ := l.Append(mk("bloat", 10<<20))
	if len(sum.Anomalies) != 1 || sum.Anomalies[0].Kind != KindBytesRegression || sum.Anomalies[0].Node != "n" {
		t.Fatalf("bytes regression: %+v", sum.Anomalies)
	}
}

func TestRatioCollapse(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, ratio float64) RunSummary {
		s := run(id, "p", 0.1, nil)
		s.Nodes = []NodeSummary{{Node: "n", WallSeconds: 0.05, SelfSeconds: 0.05, OutputBytes: 1 << 20, Ratio: ratio}}
		return s
	}
	seed(t, l, 5, func(i int) RunSummary { return mk(fmt.Sprintf("r%d", i), 8.0) })
	sum, _ := l.Append(mk("collapse", 2.0)) // below 0.5 × baseline 8.0
	if len(sum.Anomalies) != 1 || sum.Anomalies[0].Kind != KindRatioCollapse {
		t.Fatalf("ratio collapse: %+v", sum.Anomalies)
	}
}

func TestKernelFallbackAppearance(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, fallbacks int64) RunSummary {
		s := run(id, "p", 0.1, nil)
		s.Nodes = []NodeSummary{{Node: "n", WallSeconds: 0.05, SelfSeconds: 0.05, OutputBytes: 1 << 20, KernelFallbacks: fallbacks}}
		return s
	}
	seed(t, l, 5, func(i int) RunSummary { return mk(fmt.Sprintf("r%d", i), 0) })
	sum, _ := l.Append(mk("reverted", 3))
	if len(sum.Anomalies) != 1 || sum.Anomalies[0].Kind != KindKernelFallback {
		t.Fatalf("kernel fallback: %+v", sum.Anomalies)
	}
	// A node that always falls back is its own baseline — no anomaly.
	l2, _ := New(Config{})
	seed2 := func(i int) RunSummary { return mk(fmt.Sprintf("s%d", i), 2) }
	for i := 0; i < 5; i++ {
		l2.Append(seed2(i))
	}
	sum2, _ := l2.Append(mk("same", 2))
	if sum2.Anomalous() {
		t.Fatalf("habitual fallback flagged: %+v", sum2.Anomalies)
	}
}

func TestEvictionStorm(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, ev int64) RunSummary {
		s := run(id, "p", 0.1, map[string]float64{"n": 0.05})
		s.Evictions = ev
		return s
	}
	seed(t, l, 5, func(i int) RunSummary { return mk(fmt.Sprintf("r%d", i), 0) })
	sum, _ := l.Append(mk("storm", 20))
	if len(sum.Anomalies) != 1 || sum.Anomalies[0].Kind != KindEvictionStorm {
		t.Fatalf("eviction storm: %+v", sum.Anomalies)
	}
}

func TestMispredictAnomalyOnlyWithFallbackWrites(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Over-reservation alone (actual ≪ reserved) is not an anomaly — it only
	// moves the mispredict ratio.
	over := run("over", "p", 0.1, nil)
	over.ReservedBytes, over.ActualPeakBytes = 1000, 100
	over.Mispredict = 0.9
	sum, _ := l.Append(over)
	if sum.Anomalous() {
		t.Fatalf("over-reservation flagged: %+v", sum.Anomalies)
	}
	if got := l.MispredictRatio("p"); got != 0.9 {
		t.Fatalf("mispredict ratio = %g, want 0.9", got)
	}
	// A reservation that proved too small (blocking writes happened) is.
	under := run("under", "p", 0.1, nil)
	under.ReservedBytes, under.ActualPeakBytes = 1000, 1000
	under.FallbackWrites = 2
	sum, dec := l.Append(under)
	if len(sum.Anomalies) != 1 || sum.Anomalies[0].Kind != KindMispredict {
		t.Fatalf("mispredict anomaly: %+v", sum.Anomalies)
	}
	if !dec.Keep {
		t.Fatal("mispredicted run must be kept")
	}
}

func TestTailSamplingDecisions(t *testing.T) {
	l, err := New(Config{Detector: DetectorConfig{SlowSeconds: 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	// Failed runs are always kept, and never learned from.
	fail := run("f", "p", 0.1, nil)
	fail.Outcome = OutcomeFailed
	if _, dec := l.Append(fail); !dec.Keep {
		t.Fatal("failed run must be kept")
	}
	if got := l.Pipelines(); len(got) != 0 {
		t.Fatalf("failed run must not create baselines: %v", got)
	}
	// Absolutely slow runs are kept even with no baseline.
	if _, dec := l.Append(run("s", "p", 2.0, nil)); !dec.Keep {
		t.Fatal("run over SlowSeconds must be kept")
	}
	// Healthy runs near baseline are dropped.
	for i := 0; i < 5; i++ {
		l.Append(run(fmt.Sprintf("h%d", i), "q", 0.1, nil))
	}
	if _, dec := l.Append(run("h6", "q", 0.11, nil)); dec.Keep {
		t.Fatalf("healthy run kept: %+v", dec.Reasons)
	}
	// Relatively slow runs (z-score vs pipeline baseline) are kept.
	if sum, dec := l.Append(run("z", "q", 0.5, nil)); !dec.Keep {
		t.Fatalf("z-slow run dropped (anomalies %+v)", sum.Anomalies)
	}
}
