// Package ledger is S/C's run history and operational judgment layer: a
// bounded in-memory ring (optionally NDJSON-persisted) of per-run
// summaries distilled from the obs stream and telemetry.Collector output,
// per-(pipeline, node) EWMA+variance baselines learned from that history,
// and an anomaly detector that flags runs deviating from their own past —
// wall/bytes z-score regressions, compression-ratio collapses, eviction
// storms, kernel-fallback appearances, and admission misprediction
// (reserved vs actual peak catalog bytes, the paper's §III accounting
// finally checked after the fact). The detector's verdict doubles as the
// tail-sampling policy: exported traces are kept only for anomalous, slow
// or failed runs.
package ledger

import (
	"math"
	"sort"
	"time"

	"github.com/shortcircuit-db/sc/internal/telemetry"
)

// Anomaly kinds the detector emits.
const (
	KindWallRegression  = "wall_regression"      // node wall time z-score above threshold
	KindBytesRegression = "bytes_regression"     // node output bytes z-score above threshold
	KindRatioCollapse   = "ratio_collapse"       // node compression ratio fell below a fraction of baseline
	KindEvictionStorm   = "eviction_storm"       // run evictions z-score above threshold
	KindKernelFallback  = "kernel_fallback"      // kernels reverted to the row engine on a node that never did
	KindMispredict      = "admission_mispredict" // the reservation proved too small: the run fell back to blocking writes
)

// Outcome values mirror the gateway run states; the Refresher and scrun
// use succeeded/failed/canceled.
const (
	OutcomeSucceeded = "succeeded"
	OutcomeFailed    = "failed"
	OutcomeCanceled  = "canceled"
	OutcomeExpired   = "expired"
)

// Anomaly is one detected deviation from the learned baseline.
type Anomaly struct {
	Kind string `json:"kind"`
	// Node names the regressed node; empty for run-level anomalies.
	Node string `json:"node,omitempty"`
	// Score is the z-score against the baseline, where applicable.
	Score float64 `json:"score,omitempty"`
	// Observed is this run's value (seconds, bytes, ratio, count — per Kind).
	Observed float64 `json:"observed"`
	// Baseline is the EWMA mean the observation was judged against.
	Baseline float64 `json:"baseline,omitempty"`
	Detail   string  `json:"detail,omitempty"`
}

// NodeSummary is one executed node's slice of a run summary.
type NodeSummary struct {
	Node        string  `json:"node"`
	WallSeconds float64 `json:"wall_seconds"`
	// SelfSeconds is the node span's own duration; WaitSeconds is the gap
	// behind its latest-finishing DAG parent (critical-path decomposition).
	SelfSeconds     float64 `json:"self_seconds"`
	WaitSeconds     float64 `json:"wait_seconds"`
	OutputBytes     int64   `json:"output_bytes,omitempty"`
	EncodedBytes    int64   `json:"encoded_bytes,omitempty"`
	Ratio           float64 `json:"ratio,omitempty"` // raw bytes / encoded bytes
	KernelFallbacks int64   `json:"kernel_fallbacks,omitempty"`
	Flagged         bool    `json:"flagged,omitempty"`
	Critical        bool    `json:"critical,omitempty"` // on the longest blocking chain

	start time.Time // span start, for execution-order sorting
}

// RunSummary is the ledger's record of one refresh (or simulation) run —
// the per-run fields an operator needs after the trace itself is gone.
type RunSummary struct {
	RunID    string    `json:"run_id"`
	Pipeline string    `json:"pipeline"`
	Tenant   string    `json:"tenant,omitempty"`
	Outcome  string    `json:"outcome"`
	TraceID  string    `json:"trace_id,omitempty"`
	Start    time.Time `json:"start"`

	WallSeconds      float64 `json:"wall_seconds"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`

	// ReservedBytes is what admission predicted and reserved
	// (PeakMemoryUsage × headroom); ActualPeakBytes is the catalog's real
	// high-water mark. Mispredict is |reserved − actual| / reserved.
	ReservedBytes   int64   `json:"reserved_bytes,omitempty"`
	ActualPeakBytes int64   `json:"actual_peak_bytes,omitempty"`
	Mispredict      float64 `json:"mispredict,omitempty"`
	FallbackWrites  int     `json:"fallback_writes,omitempty"`

	OutputBytes     int64 `json:"output_bytes,omitempty"`
	EncodedBytes    int64 `json:"encoded_bytes,omitempty"`
	DecodedBytes    int64 `json:"decoded_bytes,omitempty"`
	Evictions       int64 `json:"evictions,omitempty"`
	KernelFallbacks int64 `json:"kernel_fallbacks,omitempty"`
	EventsDropped   int64 `json:"events_dropped,omitempty"`

	CritPath        []string `json:"crit_path,omitempty"`
	CritPathSeconds float64  `json:"crit_path_seconds,omitempty"`

	Nodes     []NodeSummary `json:"nodes,omitempty"`
	Anomalies []Anomaly     `json:"anomalies,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// Anomalous reports whether the detector flagged the run.
func (s *RunSummary) Anomalous() bool { return len(s.Anomalies) > 0 }

// Meta carries the run fields that do not live on the trace (or that
// override what Summarize would derive from it): identity, outcome, and
// the admission accounting.
type Meta struct {
	RunID    string
	Pipeline string
	Tenant   string
	Outcome  string
	Start    time.Time

	WallSeconds      float64
	QueueWaitSeconds float64

	ReservedBytes   int64
	ActualPeakBytes int64
	FallbackWrites  int

	EventsDropped int64
	Err           string
}

// Summarize distills one run's trace (a Collector.Spans snapshot, root
// first; may be nil when tracing was disabled) plus its metadata into the
// ledger record: per-node wall/self/wait from the critical-path analysis,
// decoded/encoded byte totals and compression ratios from the span events,
// and the predicted-vs-actual peak accounting from meta.
func Summarize(spans []telemetry.Span, parents map[string][]string, meta Meta) RunSummary {
	s := RunSummary{
		RunID: meta.RunID, Pipeline: meta.Pipeline, Tenant: meta.Tenant,
		Outcome: meta.Outcome, Start: meta.Start,
		WallSeconds: meta.WallSeconds, QueueWaitSeconds: meta.QueueWaitSeconds,
		ReservedBytes: meta.ReservedBytes, ActualPeakBytes: meta.ActualPeakBytes,
		FallbackWrites: meta.FallbackWrites,
		EventsDropped:  meta.EventsDropped, Error: meta.Err,
	}
	if s.Outcome == "" {
		s.Outcome = OutcomeSucceeded
	}
	if s.ReservedBytes > 0 {
		s.Mispredict = math.Abs(float64(s.ReservedBytes-s.ActualPeakBytes)) / float64(s.ReservedBytes)
	}
	if len(spans) == 0 {
		return s
	}
	root := spans[0]
	s.TraceID = root.TraceID.String()
	if s.RunID == "" {
		s.RunID = root.StrAttr("sc.run_id")
	}
	if s.Start.IsZero() {
		s.Start = root.Start
	}
	if s.WallSeconds == 0 {
		s.WallSeconds = root.Duration().Seconds()
	}

	cp := telemetry.CriticalPath(spans, parents)
	s.CritPath = cp.Chain
	s.CritPathSeconds = cp.ChainSeconds
	waits := make(map[string]float64, len(cp.Nodes))
	critical := make(map[string]bool, len(cp.Nodes))
	for _, n := range cp.Nodes {
		waits[n.Node] = n.WaitSeconds
		critical[n.Node] = n.Critical
	}

	countEvents := func(evs []telemetry.SpanEvent, ns *NodeSummary) {
		for _, ev := range evs {
			switch ev.Name {
			case "EncodeDone":
				s.EncodedBytes += eventInt(ev, "sc.encoded_bytes")
				if ns != nil {
					if r := eventFloat(ev, "sc.ratio"); r > 0 {
						ns.Ratio = r
					}
				}
			case "DecodeDone":
				s.DecodedBytes += eventInt(ev, "sc.bytes")
			case "Evicted":
				s.Evictions++
			case "KernelDone":
				if ns != nil {
					ns.KernelFallbacks += eventInt(ev, "sc.kernel.fallbacks")
				}
			}
		}
	}
	countEvents(root.Events, nil)
	for _, sp := range spans[1:] {
		if sp.Name == "queue admission" && s.QueueWaitSeconds == 0 {
			s.QueueWaitSeconds = sp.Duration().Seconds()
		}
		node := sp.StrAttr(telemetry.AttrNode)
		if node == "" {
			countEvents(sp.Events, nil)
			continue
		}
		ns := NodeSummary{
			Node:        node,
			WallSeconds: sp.Duration().Seconds(),
			SelfSeconds: sp.Duration().Seconds(),
			WaitSeconds: waits[node],
			Critical:    critical[node],
			start:       sp.Start,
		}
		if a, ok := sp.Attr("sc.output_bytes"); ok {
			ns.OutputBytes = a.Int
		}
		if a, ok := sp.Attr("sc.encoded_bytes"); ok {
			ns.EncodedBytes = a.Int
		}
		if a, ok := sp.Attr("sc.flagged"); ok {
			ns.Flagged = a.Bool
		}
		countEvents(sp.Events, &ns)
		if ns.Ratio == 0 && ns.EncodedBytes > 0 && ns.OutputBytes > 0 {
			ns.Ratio = float64(ns.OutputBytes) / float64(ns.EncodedBytes)
		}
		s.OutputBytes += ns.OutputBytes
		s.KernelFallbacks += ns.KernelFallbacks
		s.Nodes = append(s.Nodes, ns)
	}
	sort.Slice(s.Nodes, func(i, j int) bool {
		if !s.Nodes[i].start.Equal(s.Nodes[j].start) {
			return s.Nodes[i].start.Before(s.Nodes[j].start)
		}
		return s.Nodes[i].Node < s.Nodes[j].Node
	})
	return s
}

func eventInt(ev telemetry.SpanEvent, key string) int64 {
	for _, a := range ev.Attrs {
		if a.Key == key && a.Type == telemetry.AttrInt {
			return a.Int
		}
	}
	return 0
}

func eventFloat(ev telemetry.SpanEvent, key string) float64 {
	for _, a := range ev.Attrs {
		if a.Key == key && a.Type == telemetry.AttrFloat {
			return a.Flt
		}
	}
	return 0
}
