package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shortcircuit-db/sc/internal/dag"
)

const gb = int64(1) << 30

// figure7 builds the toy example of Figure 7 in the paper: six nodes, where
// order τ2 allows flagging both 100GB nodes while τ1 does not. Speedup
// scores equal sizes in GB.
func figure7() *Problem {
	g := dag.New()
	v1 := g.AddNode("v1")
	v2 := g.AddNode("v2")
	v3 := g.AddNode("v3")
	v4 := g.AddNode("v4")
	g.AddNode("v5")
	g.AddNode("v6")
	g.MustAddEdge(v1, v2)
	g.MustAddEdge(v1, v4)
	g.MustAddEdge(v2, v3)
	g.MustAddEdge(v3, 4)
	return &Problem{
		G:      g,
		Sizes:  []int64{100 * gb, 10 * gb, 100 * gb, 10 * gb, 10 * gb, 10 * gb},
		Scores: []float64{100, 10, 100, 10, 10, 10},
		Memory: 100 * gb,
	}
}

var (
	tau1 = []dag.NodeID{0, 1, 2, 3, 4, 5}
	tau2 = []dag.NodeID{0, 1, 3, 2, 4, 5}
)

func TestValidate(t *testing.T) {
	p := figure7()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.Sizes = bad.Sizes[:3]
	if err := bad.Validate(); err == nil {
		t.Fatal("short sizes accepted")
	}
	bad2 := figure7()
	bad2.Scores[0] = math.NaN()
	if err := bad2.Validate(); err == nil {
		t.Fatal("NaN score accepted")
	}
	bad3 := figure7()
	bad3.Memory = -1
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative memory accepted")
	}
	bad4 := figure7()
	bad4.Sizes[2] = -5
	if err := bad4.Validate(); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestPlanValidate(t *testing.T) {
	p := figure7()
	pl := NewPlan(tau2)
	if err := pl.Validate(p); err != nil {
		t.Fatal(err)
	}
	badOrder := NewPlan([]dag.NodeID{1, 0, 2, 3, 4, 5})
	if err := badOrder.Validate(p); err == nil {
		t.Fatal("non-topological order accepted")
	}
	short := &Plan{Order: tau2, Flagged: make([]bool, 3)}
	if err := short.Validate(p); err == nil {
		t.Fatal("short flagged slice accepted")
	}
}

func TestReleasePositions(t *testing.T) {
	p := figure7()
	rel := ReleasePositions(p.G, tau2)
	// In τ2 = [v1 v2 v4 v3 v5 v6]: v1's last child (v4) runs at step 2,
	// v2's child v3 at step 3, v3's child v5 at step 4; childless nodes
	// release at their own step.
	want := []int{2, 3, 4, 2, 4, 5}
	for i := range want {
		if rel[i] != want[i] {
			t.Fatalf("rel = %v, want %v", rel, want)
		}
	}
}

func TestFigure7PeakMemory(t *testing.T) {
	p := figure7()

	// Under τ1, flagging both v1 and v3 overlaps: peak 200GB.
	pl := NewPlan(tau1)
	pl.Flagged[0] = true
	pl.Flagged[2] = true
	if peak := PeakMemoryUsage(p, pl); peak != 200*gb {
		t.Fatalf("τ1 {v1,v3} peak = %d GB, want 200", peak/gb)
	}
	if Feasible(p, pl) {
		t.Fatal("τ1 {v1,v3} should be infeasible")
	}

	// Under τ2, v1 is released after v4 (step 2) before v3 runs (step 3):
	// flagging v1, v3 and v6 peaks at exactly 100GB.
	pl2 := NewPlan(tau2)
	pl2.Flagged[0] = true
	pl2.Flagged[2] = true
	pl2.Flagged[5] = true
	if peak := PeakMemoryUsage(p, pl2); peak != 100*gb {
		t.Fatalf("τ2 {v1,v3,v6} peak = %d GB, want 100", peak/gb)
	}
	if !Feasible(p, pl2) {
		t.Fatal("τ2 {v1,v3,v6} should be feasible")
	}
	if got := pl2.TotalScore(p); got != 210 {
		t.Fatalf("score = %v, want 210", got)
	}

	// The τ1 fallback from the paper: v1, v5, v6 with score 120.
	pl3 := NewPlan(tau1)
	pl3.Flagged[0] = true
	pl3.Flagged[4] = true
	pl3.Flagged[5] = true
	if !Feasible(p, pl3) {
		t.Fatal("τ1 {v1,v5,v6} should be feasible")
	}
	if got := pl3.TotalScore(p); got != 120 {
		t.Fatalf("score = %v, want 120", got)
	}
}

func TestMemoryTimelineMatchesPeak(t *testing.T) {
	p := figure7()
	pl := NewPlan(tau2)
	pl.Flagged[0] = true
	pl.Flagged[2] = true
	tl := MemoryTimeline(p, pl)
	var maxTL int64
	for _, v := range tl {
		if v > maxTL {
			maxTL = v
		}
	}
	if maxTL != PeakMemoryUsage(p, pl) {
		t.Fatalf("timeline max %d != peak %d", maxTL, PeakMemoryUsage(p, pl))
	}
	// v1 resident at steps 0..2, v3 at steps 3..4.
	want := []int64{100 * gb, 100 * gb, 100 * gb, 100 * gb, 100 * gb, 0}
	for i := range want {
		if tl[i] != want[i] {
			t.Fatalf("timeline = %v, want %v", tl, want)
		}
	}
}

func TestAverageMemoryUsagePrefersEarlyRelease(t *testing.T) {
	p := figure7()
	flag := func(order []dag.NodeID) *Plan {
		pl := NewPlan(order)
		pl.Flagged[0] = true
		return pl
	}
	// τ2 executes v4 (v1's last child) earlier, so v1 is released sooner.
	a1 := AverageMemoryUsage(p, flag(tau1))
	a2 := AverageMemoryUsage(p, flag(tau2))
	if a2 >= a1 {
		t.Fatalf("avg mem τ2 (%v) should be < τ1 (%v)", a2, a1)
	}
}

func TestEmptyFlaggedUsesNoMemory(t *testing.T) {
	p := figure7()
	pl := NewPlan(tau1)
	if PeakMemoryUsage(p, pl) != 0 || AverageMemoryUsage(p, pl) != 0 {
		t.Fatal("empty flagged set should use no memory")
	}
	if !Feasible(p, pl) {
		t.Fatal("empty flagged set should always be feasible")
	}
}

func TestGetConstraintsFigure7(t *testing.T) {
	p := figure7()
	cs := GetConstraints(p, tau1)
	if len(cs.Excluded) != 0 {
		t.Fatalf("unexpected exclusions: %v", cs.Excluded)
	}
	// Under τ1, v1 and v3 coexist (steps 2..3): some retained set must
	// contain both.
	found := false
	for _, set := range cs.Sets {
		has1, has3 := false, false
		for _, id := range set {
			if id == 0 {
				has1 = true
			}
			if id == 2 {
				has3 = true
			}
		}
		if has1 && has3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no constraint set contains v1 and v3: %v", cs.Sets)
	}
}

func TestGetConstraintsExcludesOversizedAndZeroScore(t *testing.T) {
	p := figure7()
	p.Sizes[0] = 200 * gb // larger than M: excluded
	p.Scores[3] = 0       // zero score: excluded
	p.Scores[5] = -2      // negative score: excluded
	cs := GetConstraints(p, tau1)
	if len(cs.Excluded) != 3 {
		t.Fatalf("Excluded = %v, want v1,v4,v6", cs.Excluded)
	}
	for _, set := range cs.Sets {
		for _, id := range set {
			if id == 0 || id == 3 || id == 5 {
				t.Fatalf("excluded node %d appears in constraint set", id)
			}
		}
	}
}

func TestGetConstraintsTrivialSetsDropped(t *testing.T) {
	p := figure7()
	p.Memory = 500 * gb // everything fits at once: all sets trivial
	cs := GetConstraints(p, tau1)
	if len(cs.Sets) != 0 {
		t.Fatalf("expected no binding constraints, got %v", cs.Sets)
	}
	if len(cs.Free) != p.G.Len() {
		t.Fatalf("all nodes should be free, got %v", cs.Free)
	}
}

func TestGetConstraintsMaximalOnly(t *testing.T) {
	p := figure7()
	cs := GetConstraints(p, tau1)
	for i, a := range cs.Sets {
		for j, b := range cs.Sets {
			if i == j || len(a) >= len(b) {
				continue
			}
			if isSubset(a, b) {
				t.Fatalf("set %v is a subset of %v", a, b)
			}
		}
	}
}

func isSubset(a, b []dag.NodeID) bool {
	m := make(map[dag.NodeID]bool, len(b))
	for _, id := range b {
		m[id] = true
	}
	for _, id := range a {
		if !m[id] {
			return false
		}
	}
	return true
}

func randomProblem(rng *rand.Rand) (*Problem, []dag.NodeID) {
	g := dag.New()
	n := 3 + rng.Intn(20)
	for i := 0; i < n; i++ {
		g.AddNode("n")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				g.MustAddEdge(dag.NodeID(i), dag.NodeID(j))
			}
		}
	}
	sizes := make([]int64, n)
	scores := make([]float64, n)
	for i := range sizes {
		sizes[i] = int64(rng.Intn(100)) + 1
		scores[i] = float64(rng.Intn(50))
	}
	p := &Problem{G: g, Sizes: sizes, Scores: scores, Memory: int64(rng.Intn(200)) + 50}
	order, err := g.TopoSort()
	if err != nil {
		panic(err)
	}
	return p, order
}

// Property: any flagged selection that keeps every constraint set's total
// within M is feasible under PeakMemoryUsage, and vice versa (for nodes not
// excluded). This ties GetConstraints to the ground-truth memory model.
func TestConstraintSetsCharacterizeFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, order := randomProblem(rng)
		cs := GetConstraints(p, order)
		// Build a random candidate selection from non-excluded nodes.
		pl := NewPlan(order)
		excluded := make(map[dag.NodeID]bool)
		for _, id := range cs.Excluded {
			excluded[id] = true
		}
		for i := 0; i < p.G.Len(); i++ {
			if !excluded[dag.NodeID(i)] && rng.Intn(2) == 0 {
				pl.Flagged[i] = true
			}
		}
		// Check: satisfying all retained sets <=> peak ≤ M.
		satisfied := true
		for _, set := range cs.Sets {
			var total int64
			for _, id := range set {
				if pl.Flagged[id] {
					total += p.Sizes[id]
				}
			}
			if total > p.Memory {
				satisfied = false
				break
			}
		}
		feasible := Feasible(p, pl)
		return satisfied == feasible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPeakNeverBelowLargestFlaggedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, order := randomProblem(rng)
		pl := NewPlan(order)
		var largest int64
		for i := 0; i < p.G.Len(); i++ {
			if rng.Intn(2) == 0 {
				pl.Flagged[i] = true
				if p.Sizes[i] > largest {
					largest = p.Sizes[i]
				}
			}
		}
		return PeakMemoryUsage(p, pl) >= largest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFlaggedIDsAndSizes(t *testing.T) {
	p := figure7()
	pl := NewPlan(tau2)
	pl.Flagged[0] = true
	pl.Flagged[2] = true
	ids := pl.FlaggedIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("FlaggedIDs = %v", ids)
	}
	if pl.TotalFlaggedSize(p) != 200*gb {
		t.Fatalf("TotalFlaggedSize = %d", pl.TotalFlaggedSize(p))
	}
	c := pl.Clone()
	c.Flagged[0] = false
	if !pl.Flagged[0] {
		t.Fatal("Clone shares Flagged storage")
	}
}
