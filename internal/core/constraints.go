package core

import (
	"github.com/shortcircuit-db/sc/internal/dag"
)

// ConstraintSets is the output of GetConstraints (Algorithm 1, line 2):
// the maximal, non-trivial memory coexistence sets for a given execution
// order, plus bookkeeping about which nodes participate.
type ConstraintSets struct {
	// Sets lists each retained constraint set as node IDs sorted ascending.
	Sets [][]dag.NodeID
	// Candidates are the nodes appearing in at least one retained set.
	Candidates []dag.NodeID
	// Excluded are nodes dropped before constraint construction because
	// their size exceeds M or their score is non-positive (V_exclude).
	Excluded []dag.NodeID
	// Free are nodes that are neither excluded nor in any retained set:
	// flagging them can never violate memory constraints, so Algorithm 1
	// flags them unconditionally (line 9).
	Free []dag.NodeID
}

// GetConstraints computes, for each execution step t, the set V_t of
// non-excluded nodes whose flagged outputs would coexist in the Memory
// Catalog during step t:
//
//	V_t = { j : pos(j) ≤ t ≤ release(j), j ∉ V_exclude }
//
// then discards sets that are non-maximal (strict subset of another set) or
// trivial (total member size ≤ M, so the constraint cannot bind). This is
// the linear-scan constraint extraction of §V-A.
func GetConstraints(p *Problem, order []dag.NodeID) *ConstraintSets {
	n := p.G.Len()
	out := &ConstraintSets{}
	excluded := make([]bool, n)
	for i := 0; i < n; i++ {
		if p.Sizes[i] > p.Memory || p.Scores[i] <= 0 {
			excluded[i] = true
			out.Excluded = append(out.Excluded, dag.NodeID(i))
		}
	}
	pos := Positions(order)
	rel := ReleasePositions(p.G, order)

	// Linear scan: maintain the active interval set step by step.
	// startAt[t] / endAt[t] list nodes whose interval begins/ends at t.
	startAt := make([][]dag.NodeID, n)
	endAt := make([][]dag.NodeID, n)
	for i := 0; i < n; i++ {
		if excluded[i] {
			continue
		}
		startAt[pos[i]] = append(startAt[pos[i]], dag.NodeID(i))
		endAt[rel[i]] = append(endAt[rel[i]], dag.NodeID(i))
	}
	active := make(map[dag.NodeID]bool)
	raw := make([][]dag.NodeID, 0, n)
	for t := 0; t < n; t++ {
		for _, id := range startAt[t] {
			active[id] = true
		}
		if len(active) > 0 {
			set := make([]dag.NodeID, 0, len(active))
			for id := range active {
				set = append(set, id)
			}
			sortNodeIDs(set)
			raw = append(raw, set)
		}
		for _, id := range endAt[t] {
			delete(active, id)
		}
	}

	retained := filterMaximalNonTrivial(raw, p.Sizes, p.Memory)
	out.Sets = retained

	inSet := make([]bool, n)
	for _, set := range retained {
		for _, id := range set {
			inSet[id] = true
		}
	}
	for i := 0; i < n; i++ {
		id := dag.NodeID(i)
		switch {
		case excluded[i]:
		case inSet[i]:
			out.Candidates = append(out.Candidates, id)
		default:
			out.Free = append(out.Free, id)
		}
	}
	return out
}

// filterMaximalNonTrivial drops duplicate sets, sets whose total size cannot
// exceed the capacity (trivial), and sets that are strict subsets of another
// retained set (non-maximal). Bitsets keep the pairwise subset checks cheap.
func filterMaximalNonTrivial(raw [][]dag.NodeID, sizes []int64, capacity int64) [][]dag.NodeID {
	type entry struct {
		set  []dag.NodeID
		bits []uint64
		n    int
	}
	var entries []entry
	seen := make(map[string]bool)
	for _, set := range raw {
		var total int64
		for _, id := range set {
			total += sizes[id]
		}
		if total <= capacity {
			continue // trivial: cannot be violated
		}
		key := fingerprint(set)
		if seen[key] {
			continue
		}
		seen[key] = true
		entries = append(entries, entry{set: set, bits: toBits(set), n: len(set)})
	}
	keep := make([]bool, len(entries))
	for i := range keep {
		keep[i] = true
	}
	for i := range entries {
		if !keep[i] {
			continue
		}
		for j := range entries {
			if i == j || !keep[i] {
				continue
			}
			if entries[i].n < entries[j].n && subsetBits(entries[i].bits, entries[j].bits) {
				keep[i] = false
			}
		}
	}
	var out [][]dag.NodeID
	for i, e := range entries {
		if keep[i] {
			out = append(out, e.set)
		}
	}
	return out
}

func sortNodeIDs(a []dag.NodeID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func fingerprint(set []dag.NodeID) string {
	b := make([]byte, 0, len(set)*3)
	for _, id := range set {
		v := uint32(id)
		b = append(b, byte(v), byte(v>>8), byte(v>>16))
	}
	return string(b)
}

func toBits(set []dag.NodeID) []uint64 {
	var maxID dag.NodeID
	for _, id := range set {
		if id > maxID {
			maxID = id
		}
	}
	bits := make([]uint64, int(maxID)/64+1)
	for _, id := range set {
		bits[int(id)/64] |= 1 << (uint(id) % 64)
	}
	return bits
}

// subsetBits reports whether a ⊆ b.
func subsetBits(a, b []uint64) bool {
	for i, w := range a {
		var bw uint64
		if i < len(b) {
			bw = b[i]
		}
		if w&^bw != 0 {
			return false
		}
	}
	return true
}
