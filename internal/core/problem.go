// Package core defines the S/C Opt problem (§IV of the paper) and the
// shared machinery every solver builds on: execution plans, peak and average
// Memory Catalog usage, feasibility checks, and constraint-set extraction
// for the multidimensional-knapsack formulation.
//
// Inputs mirror Problem 1 of the paper: a dependency DAG G, per-node output
// sizes S, per-node speedup scores T, and the Memory Catalog size M. A
// solution is an execution order τ together with a set U of flagged nodes
// whose outputs are kept in memory until all their dependents finish.
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/shortcircuit-db/sc/internal/dag"
)

// Problem is an instance of S/C Opt.
type Problem struct {
	G      *dag.Graph
	Sizes  []int64   // Sizes[i]: bytes of the intermediate table produced by node i
	Scores []float64 // Scores[i]: estimated seconds saved by flagging node i
	Memory int64     // Memory Catalog size M in bytes
}

// Validate checks that the instance is well-formed.
func (p *Problem) Validate() error {
	if p.G == nil {
		return errors.New("core: nil graph")
	}
	n := p.G.Len()
	if len(p.Sizes) != n {
		return fmt.Errorf("core: %d sizes for %d nodes", len(p.Sizes), n)
	}
	if len(p.Scores) != n {
		return fmt.Errorf("core: %d scores for %d nodes", len(p.Scores), n)
	}
	for i, s := range p.Sizes {
		if s < 0 {
			return fmt.Errorf("core: negative size at node %d", i)
		}
	}
	for i, t := range p.Scores {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("core: non-finite score at node %d", i)
		}
	}
	if p.Memory < 0 {
		return errors.New("core: negative Memory Catalog size")
	}
	if !p.G.IsAcyclic() {
		return dag.ErrCycle
	}
	return nil
}

// Plan is a solution to S/C Opt: an execution order and the flagged set.
type Plan struct {
	Order   []dag.NodeID // execution order τ; Order[t] runs at step t
	Flagged []bool       // Flagged[i]: keep node i's output in the Memory Catalog
}

// NewPlan returns a plan with the given order and nothing flagged.
func NewPlan(order []dag.NodeID) *Plan {
	n := len(order)
	return &Plan{Order: append([]dag.NodeID(nil), order...), Flagged: make([]bool, n)}
}

// Clone returns a deep copy.
func (pl *Plan) Clone() *Plan {
	return &Plan{
		Order:   append([]dag.NodeID(nil), pl.Order...),
		Flagged: append([]bool(nil), pl.Flagged...),
	}
}

// FlaggedIDs returns the flagged nodes in execution order.
func (pl *Plan) FlaggedIDs() []dag.NodeID {
	var out []dag.NodeID
	for _, id := range pl.Order {
		if pl.Flagged[id] {
			out = append(out, id)
		}
	}
	return out
}

// TotalScore sums the speedup scores of flagged nodes.
func (pl *Plan) TotalScore(p *Problem) float64 {
	var s float64
	for i, f := range pl.Flagged {
		if f {
			s += p.Scores[i]
		}
	}
	return s
}

// TotalFlaggedSize sums the sizes of flagged nodes.
func (pl *Plan) TotalFlaggedSize(p *Problem) int64 {
	var s int64
	for i, f := range pl.Flagged {
		if f {
			s += p.Sizes[i]
		}
	}
	return s
}

// Validate checks the plan against the problem: the order must be a
// topological permutation and the flagged slice sized to the graph.
func (pl *Plan) Validate(p *Problem) error {
	if len(pl.Flagged) != p.G.Len() {
		return fmt.Errorf("core: flagged slice has %d entries for %d nodes", len(pl.Flagged), p.G.Len())
	}
	if !p.G.IsTopological(pl.Order) {
		return errors.New("core: order is not a topological permutation")
	}
	return nil
}

// Positions inverts an order: pos[id] = step at which id executes.
func Positions(order []dag.NodeID) []int {
	pos := make([]int, len(order))
	for t, id := range order {
		pos[id] = t
	}
	return pos
}

// ReleasePositions returns, for every node, the step after which its output
// may leave the Memory Catalog: the position of its last-executed child, or
// its own position when it has no children (§V design decision 5: childless
// flagged nodes occupy memory only during their own step in the unit-time
// model).
func ReleasePositions(g *dag.Graph, order []dag.NodeID) []int {
	pos := Positions(order)
	rel := make([]int, g.Len())
	for i := 0; i < g.Len(); i++ {
		rel[i] = pos[i]
		for _, c := range g.Children(dag.NodeID(i)) {
			if pos[c] > rel[i] {
				rel[i] = pos[c]
			}
		}
	}
	return rel
}

// PeakMemoryUsage computes the maximum combined size of flagged nodes
// resident in the Memory Catalog at any step of the order, in the unit-time
// model of §IV: a flagged node occupies memory from its own step through the
// step of its last child. Linear in nodes plus edges.
func PeakMemoryUsage(p *Problem, pl *Plan) int64 {
	n := p.G.Len()
	if n == 0 {
		return 0
	}
	pos := Positions(pl.Order)
	rel := ReleasePositions(p.G, pl.Order)
	// Difference array over steps: +size at pos, -size after rel.
	delta := make([]int64, n+1)
	for i := 0; i < n; i++ {
		if !pl.Flagged[i] {
			continue
		}
		delta[pos[i]] += p.Sizes[i]
		delta[rel[i]+1] -= p.Sizes[i]
	}
	var cur, peak int64
	for t := 0; t < n; t++ {
		cur += delta[t]
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// MemoryTimeline returns the resident flagged bytes at every step.
func MemoryTimeline(p *Problem, pl *Plan) []int64 {
	n := p.G.Len()
	pos := Positions(pl.Order)
	rel := ReleasePositions(p.G, pl.Order)
	delta := make([]int64, n+1)
	for i := 0; i < n; i++ {
		if !pl.Flagged[i] {
			continue
		}
		delta[pos[i]] += p.Sizes[i]
		delta[rel[i]+1] -= p.Sizes[i]
	}
	out := make([]int64, n)
	var cur int64
	for t := 0; t < n; t++ {
		cur += delta[t]
		out[t] = cur
	}
	return out
}

// AverageMemoryUsage is the objective of S/C Opt Order (Problem 3):
// (1/n) Σ_{flagged i} (release(i) − pos(i))·size(i), assuming unit job
// execution times. Lower is better: it rewards orders that release flagged
// outputs soon after they are produced.
func AverageMemoryUsage(p *Problem, pl *Plan) float64 {
	n := p.G.Len()
	if n == 0 {
		return 0
	}
	pos := Positions(pl.Order)
	rel := ReleasePositions(p.G, pl.Order)
	var sum float64
	for i := 0; i < n; i++ {
		if !pl.Flagged[i] {
			continue
		}
		sum += float64(rel[i]-pos[i]) * float64(p.Sizes[i])
	}
	return sum / float64(n)
}

// Feasible reports whether the flagged set fits in the Memory Catalog at
// every step of the order.
func Feasible(p *Problem, pl *Plan) bool {
	return PeakMemoryUsage(p, pl) <= p.Memory
}
