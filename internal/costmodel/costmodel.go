// Package costmodel provides the device cost model S/C uses to estimate
// read/write times and the per-node speedup scores of §IV:
//
//	t_i = Σ_{(v_i,v_j)∈E} [access(v_j | v_i on disk) − access(v_j | v_i in memory)]
//	      + [create(v_i on disk) − create(v_i in memory)]
//
// Each downstream node saves a disk read of v_i's output; v_i itself saves
// its blocking write, which is instead materialized in the background.
package costmodel

import (
	"fmt"
	"time"

	"github.com/shortcircuit-db/sc/internal/dag"
)

// DeviceProfile describes the storage and memory devices of the execution
// environment. Bandwidths are bytes/second.
type DeviceProfile struct {
	DiskReadBW   float64       // sequential read bandwidth of external storage
	DiskWriteBW  float64       // sequential write bandwidth of external storage
	DiskLatency  time.Duration // per-access latency of external storage
	MemReadBW    float64       // Memory Catalog read bandwidth
	MemWriteBW   float64       // Memory Catalog write bandwidth
	ComputeScale float64       // multiplier on per-node compute time (1 = paper's single worker)
}

// PaperProfile mirrors the environment of §VI-A. The raw device measures
// 519.8 MB/s read / 358.9 MB/s write with 175µs latency; the profile's
// bandwidths are the *effective table I/O throughput* including columnar
// (de)serialization, compression and NFS transfer, roughly 4.7× slower than
// the raw device (§II-C observes that read/write of intermediate tables
// costs on the order of the compute itself; Figure 3 shows serialization
// dominating writes). Memory Catalog reads skip all of that—engine-native
// tables—which is exactly the asymmetry S/C exploits.
func PaperProfile() DeviceProfile {
	return DeviceProfile{
		DiskReadBW:   95e6,
		DiskWriteBW:  62e6,
		DiskLatency:  175 * time.Microsecond,
		MemReadBW:    10e9,
		MemWriteBW:   10e9,
		ComputeScale: 1,
	}
}

// RawDeviceProfile is the §VI-A device without serialization overhead
// (519.8/358.9 MB/s), for experiments that model raw byte streams.
func RawDeviceProfile() DeviceProfile {
	return DeviceProfile{
		DiskReadBW:   519.8e6,
		DiskWriteBW:  358.9e6,
		DiskLatency:  175 * time.Microsecond,
		MemReadBW:    10e9,
		MemWriteBW:   10e9,
		ComputeScale: 1,
	}
}

// Validate rejects non-positive bandwidths.
func (d DeviceProfile) Validate() error {
	if d.DiskReadBW <= 0 || d.DiskWriteBW <= 0 || d.MemReadBW <= 0 || d.MemWriteBW <= 0 {
		return fmt.Errorf("costmodel: bandwidths must be positive: %+v", d)
	}
	if d.DiskLatency < 0 {
		return fmt.Errorf("costmodel: negative latency")
	}
	if d.ComputeScale <= 0 {
		return fmt.Errorf("costmodel: ComputeScale must be positive")
	}
	return nil
}

// DiskRead returns the time to read size bytes from external storage.
func (d DeviceProfile) DiskRead(size int64) time.Duration {
	return d.DiskLatency + bwTime(size, d.DiskReadBW)
}

// DiskWrite returns the time to write size bytes to external storage.
func (d DeviceProfile) DiskWrite(size int64) time.Duration {
	return d.DiskLatency + bwTime(size, d.DiskWriteBW)
}

// MemRead returns the time to read size bytes from the Memory Catalog.
func (d DeviceProfile) MemRead(size int64) time.Duration {
	return bwTime(size, d.MemReadBW)
}

// MemWrite returns the time to create size bytes in the Memory Catalog.
func (d DeviceProfile) MemWrite(size int64) time.Duration {
	return bwTime(size, d.MemWriteBW)
}

func bwTime(size int64, bw float64) time.Duration {
	if size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / bw * float64(time.Second))
}

// NodeScore estimates the speedup score t_i (seconds) of flagging node i:
// each child reads i's output from memory instead of disk, and i's blocking
// disk write is replaced by an in-memory create with background
// materialization.
func NodeScore(d DeviceProfile, g *dag.Graph, sizes []int64, i dag.NodeID) float64 {
	return NodeScoreSized(d, g, sizes, sizes, i)
}

// NodeScoreSized is NodeScore with distinct memory and storage footprints,
// as when the encoding subsystem compresses tables: disk transfers move
// diskSizes[i] (encoded) bytes while Memory Catalog accesses touch
// memSizes[i] bytes. Compression shrinks the disk terms, so flagging a
// well-compressed node saves less than its raw size suggests — exactly the
// tradeoff the optimizer must see to make different flag/order decisions.
func NodeScoreSized(d DeviceProfile, g *dag.Graph, memSizes, diskSizes []int64, i dag.NodeID) float64 {
	mem, disk := memSizes[i], diskSizes[i]
	var saved time.Duration
	for range g.Children(i) {
		saved += d.DiskRead(disk) - d.MemRead(mem)
	}
	saved += d.DiskWrite(disk) - d.MemWrite(mem)
	if saved < 0 {
		saved = 0
	}
	return saved.Seconds()
}

// NodeScoreParts splits NodeScoreSized into its two savings terms, for
// the flagging-explain surface: readSave is what the node's children save
// by reading its output from memory instead of disk, writeSave is what
// the node itself saves by replacing its blocking disk write with an
// in-memory create plus background materialization. Unlike
// NodeScoreSized, the parts are not clamped at zero — a negative sum
// means flagging would cost time, which is exactly what an explain wants
// to show.
func NodeScoreParts(d DeviceProfile, g *dag.Graph, memSizes, diskSizes []int64, i dag.NodeID) (readSave, writeSave float64) {
	mem, disk := memSizes[i], diskSizes[i]
	var read time.Duration
	for range g.Children(i) {
		read += d.DiskRead(disk) - d.MemRead(mem)
	}
	write := d.DiskWrite(disk) - d.MemWrite(mem)
	return read.Seconds(), write.Seconds()
}

// Scores computes NodeScore for every node.
func Scores(d DeviceProfile, g *dag.Graph, sizes []int64) []float64 {
	return ScoresSized(d, g, sizes, sizes)
}

// ScoresSized computes NodeScoreSized for every node.
func ScoresSized(d DeviceProfile, g *dag.Graph, memSizes, diskSizes []int64) []float64 {
	out := make([]float64, g.Len())
	for i := range out {
		out[i] = NodeScoreSized(d, g, memSizes, diskSizes, dag.NodeID(i))
	}
	return out
}
