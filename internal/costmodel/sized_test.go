package costmodel

import (
	"testing"

	"github.com/shortcircuit-db/sc/internal/dag"
)

// chain builds a -> b -> c.
func chain(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestScoresSizedMatchesScoresWhenEqual pins the compatibility contract:
// identical memory and disk sizes collapse to the original model.
func TestScoresSizedMatchesScoresWhenEqual(t *testing.T) {
	g := chain(t)
	d := PaperProfile()
	sizes := []int64{10 << 20, 5 << 20, 1 << 20}
	a := Scores(d, g, sizes)
	b := ScoresSized(d, g, sizes, sizes)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d: Scores=%f ScoresSized=%f", i, a[i], b[i])
		}
	}
}

// TestCompressionShrinksScores: with encoded sizes below raw sizes, every
// flaggable node saves less — the disk transfer it avoids is smaller. The
// optimizer must see this or it will flag nodes compression already made
// cheap to rematerialize.
func TestCompressionShrinksScores(t *testing.T) {
	g := chain(t)
	d := PaperProfile()
	raw := []int64{10 << 20, 5 << 20, 1 << 20}
	enc := []int64{2 << 20, 1 << 20, 200 << 10} // ~5x compression
	plain := ScoresSized(d, g, raw, raw)
	comp := ScoresSized(d, g, raw, enc)
	for i := range plain {
		if comp[i] >= plain[i] {
			t.Fatalf("node %d: compressed score %f not below raw %f", i, comp[i], plain[i])
		}
		if comp[i] <= 0 {
			t.Fatalf("node %d: compressed score %f should stay positive", i, comp[i])
		}
	}
}

// TestCompressionCanFlipRanking: two nodes with equal raw sizes but very
// different compressibility must rank differently under the sized model.
func TestCompressionCanFlipRanking(t *testing.T) {
	g := dag.New()
	a := g.AddNode("compressible")
	b := g.AddNode("incompressible")
	c := g.AddNode("sink")
	if err := g.AddEdge(a, c); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	d := PaperProfile()
	raw := []int64{8 << 20, 8 << 20, 1 << 10}
	enc := []int64{1 << 20, 8 << 20, 1 << 10}
	scores := ScoresSized(d, g, raw, enc)
	if scores[a] >= scores[b] {
		t.Fatalf("compressible node should save less: %f vs %f", scores[a], scores[b])
	}
}
