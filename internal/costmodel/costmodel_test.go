package costmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/shortcircuit-db/sc/internal/dag"
)

func TestPaperProfileValid(t *testing.T) {
	if err := PaperProfile().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []DeviceProfile{
		{DiskReadBW: 0, DiskWriteBW: 1, MemReadBW: 1, MemWriteBW: 1, ComputeScale: 1},
		{DiskReadBW: 1, DiskWriteBW: -1, MemReadBW: 1, MemWriteBW: 1, ComputeScale: 1},
		{DiskReadBW: 1, DiskWriteBW: 1, MemReadBW: 1, MemWriteBW: 1, DiskLatency: -time.Second, ComputeScale: 1},
		{DiskReadBW: 1, DiskWriteBW: 1, MemReadBW: 1, MemWriteBW: 1, ComputeScale: 0},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestDiskReadScalesWithSize(t *testing.T) {
	d := PaperProfile()
	small := d.DiskRead(1 << 20)
	large := d.DiskRead(1 << 30)
	if large <= small {
		t.Fatalf("1GB read (%v) not slower than 1MB read (%v)", large, small)
	}
	// 1GB at the effective 95MB/s table throughput is roughly 11.3s.
	gbf := float64(int64(1) << 30)
	want := time.Duration(gbf / 95e6 * float64(time.Second))
	if diff := large - want; diff < 0 || diff > time.Millisecond {
		t.Fatalf("1GB read = %v, want ≈ %v (+latency)", large, want)
	}
}

func TestZeroSizeCostsOnlyLatency(t *testing.T) {
	d := PaperProfile()
	if d.DiskRead(0) != d.DiskLatency {
		t.Fatalf("DiskRead(0) = %v", d.DiskRead(0))
	}
	if d.MemRead(0) != 0 {
		t.Fatalf("MemRead(0) = %v", d.MemRead(0))
	}
}

func TestNodeScoreGrowsWithFanout(t *testing.T) {
	d := PaperProfile()
	g := dag.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.MustAddEdge(a, b)
	sizes := []int64{1 << 30, 1 << 20}
	one := NodeScore(d, g, sizes, a)

	g2 := dag.New()
	a2 := g2.AddNode("a")
	for i := 0; i < 3; i++ {
		c := g2.AddNode("c")
		g2.MustAddEdge(a2, c)
	}
	sizes2 := []int64{1 << 30, 1, 1, 1}
	three := NodeScore(d, g2, sizes2, a2)
	if three <= one {
		t.Fatalf("fanout-3 score (%v) should exceed fanout-1 score (%v)", three, one)
	}
}

func TestChildlessNodeStillSavesWriteTime(t *testing.T) {
	d := PaperProfile()
	g := dag.New()
	a := g.AddNode("a")
	sizes := []int64{1 << 30}
	s := NodeScore(d, g, sizes, a)
	wantMin := (d.DiskWrite(sizes[0]) - d.MemWrite(sizes[0])).Seconds()
	if s < wantMin*0.99 || s > wantMin*1.01 {
		t.Fatalf("childless score = %v, want ≈ %v", s, wantMin)
	}
}

func TestScoresNonNegativeProperty(t *testing.T) {
	d := PaperProfile()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dag.New()
		n := 2 + rng.Intn(15)
		sizes := make([]int64, n)
		for i := 0; i < n; i++ {
			g.AddNode("n")
			sizes[i] = rng.Int63n(1 << 32)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					g.MustAddEdge(dag.NodeID(i), dag.NodeID(j))
				}
			}
		}
		for _, s := range Scores(d, g, sizes) {
			if s < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreMonotoneInSizeProperty(t *testing.T) {
	d := PaperProfile()
	f := func(s1, s2 uint32) bool {
		a, b := int64(s1), int64(s2)
		if a > b {
			a, b = b, a
		}
		g := dag.New()
		p := g.AddNode("p")
		c := g.AddNode("c")
		g.MustAddEdge(p, c)
		lo := NodeScore(d, g, []int64{a, 1}, p)
		hi := NodeScore(d, g, []int64{b, 1}, p)
		return lo <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
