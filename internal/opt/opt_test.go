package opt

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/flagsel"
	"github.com/shortcircuit-db/sc/internal/order"
	"github.com/shortcircuit-db/sc/internal/testutil"
)

func TestSolveFigure7(t *testing.T) {
	p := testutil.Figure7()
	pl, st, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(p); err != nil {
		t.Fatal(err)
	}
	if !core.Feasible(p, pl) {
		t.Fatal("returned plan infeasible")
	}
	// The single-shot MKP under the initial order already achieves 120
	// (the paper's τ1 optimum); alternation must not do worse.
	if st.Score < 120 {
		t.Fatalf("score = %v, want ≥ 120", st.Score)
	}
	if st.Iterations < 1 || st.StopReason == "" {
		t.Fatalf("bad stats: %+v", st)
	}
}

func TestSolveStartingFromTau2FindsOptimum(t *testing.T) {
	p := testutil.Figure7()
	pl, st, err := Solve(context.Background(), p, Options{InitialOrder: testutil.Tau2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Score != 210 {
		t.Fatalf("score = %v, want 210 (flagged %v)", st.Score, pl.FlaggedIDs())
	}
}

func TestSolveRejectsNonTopologicalInitialOrder(t *testing.T) {
	p := testutil.Figure7()
	bad := []dag.NodeID{1, 0, 2, 3, 4, 5}
	if _, _, err := Solve(context.Background(), p, Options{InitialOrder: bad}); err == nil {
		t.Fatal("non-topological initial order accepted")
	}
}

func TestSolveRejectsInvalidProblem(t *testing.T) {
	p := testutil.Figure7()
	p.Sizes = p.Sizes[:2]
	if _, _, err := Solve(context.Background(), p, Options{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestSolveEmptyGraph(t *testing.T) {
	p := &core.Problem{G: dag.New(), Memory: 100}
	pl, st, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Order) != 0 || st.Score != 0 {
		t.Fatalf("empty graph: %+v %+v", pl, st)
	}
}

func TestSolveZeroScoresReturnsEmptyFlagged(t *testing.T) {
	p := testutil.Figure7()
	for i := range p.Scores {
		p.Scores[i] = 0
	}
	pl, st, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.FlaggedIDs()) != 0 {
		t.Fatalf("flagged %v with all-zero scores", pl.FlaggedIDs())
	}
	if st.StopReason != "no flagged-set improvement" {
		t.Fatalf("stop reason = %q", st.StopReason)
	}
}

func TestSolveFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := testutil.RandomProblem(rng, 25)
		pl, _, err := Solve(context.Background(), p, Options{})
		if err != nil {
			return false
		}
		return core.Feasible(p, pl) && p.G.IsTopological(pl.Order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Alternating optimization must never end below the single-shot MKP on the
// initial order: the first iteration *is* that solution.
func TestSolveAtLeastSingleShotMKPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := testutil.RandomProblem(rng, 25)
		initOrd, err := p.G.TopoSort()
		if err != nil {
			return false
		}
		oneShot, err := flagsel.MKP{}.Select(p, initOrd)
		if err != nil {
			return false
		}
		pl, _, err := Solve(context.Background(), p, Options{})
		if err != nil {
			return false
		}
		return pl.TotalScore(p) >= oneShot.TotalScore(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveWithAllMethodCombos(t *testing.T) {
	selectors := []flagsel.Selector{flagsel.MKP{}, flagsel.Greedy{}, flagsel.Random{Seed: 3}, flagsel.Ratio{}}
	orderers := []order.Orderer{order.MADFS{}, order.DFS{Seed: 3}, order.SA{Seed: 3, Iterations: 200}, order.Separator{}}
	p := testutil.Figure7()
	for _, s := range selectors {
		for _, o := range orderers {
			pl, st, err := Solve(context.Background(), p, Options{Selector: s, Orderer: o})
			if err != nil {
				t.Fatalf("%s+%s: %v", s.Name(), o.Name(), err)
			}
			if !core.Feasible(p, pl) {
				t.Fatalf("%s+%s: infeasible plan", s.Name(), o.Name())
			}
			if st.Score < 0 {
				t.Fatalf("%s+%s: negative score", s.Name(), o.Name())
			}
		}
	}
}

func TestSolveTerminateOnSizeOption(t *testing.T) {
	p := testutil.Figure7()
	plA, _, err := Solve(context.Background(), p, Options{TerminateOnSize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !core.Feasible(p, plA) {
		t.Fatal("size-terminated plan infeasible")
	}
}

func TestSolveIterationLimit(t *testing.T) {
	p := testutil.Figure7()
	_, st, err := Solve(context.Background(), p, Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > 1+1 { // loop variable increments once past the limit
		t.Fatalf("Iterations = %d with MaxIterations = 1", st.Iterations)
	}
}

func TestStatsPopulated(t *testing.T) {
	p := testutil.Figure7()
	pl, st, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakMemory != core.PeakMemoryUsage(p, pl) {
		t.Fatal("stats peak memory mismatch")
	}
	if st.Score != pl.TotalScore(p) {
		t.Fatal("stats score mismatch")
	}
	if st.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
	if st.SelectorRan < 1 {
		t.Fatal("selector never ran")
	}
}
