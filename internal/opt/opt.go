// Package opt implements the alternating optimization of §V-C
// (Algorithm 2): starting from a topological order and an empty flagged
// set, alternately (1) solve S/C Opt Nodes for the current order and
// (2) solve S/C Opt Order for the current flagged set, until the flagged
// set stops improving or the new order becomes infeasible.
package opt

import (
	"context"
	"fmt"
	"time"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/flagsel"
	"github.com/shortcircuit-db/sc/internal/obs"
	"github.com/shortcircuit-db/sc/internal/order"
)

// Options configures the alternating optimization.
type Options struct {
	// Selector solves S/C Opt Nodes; nil means the paper's SimplifiedMKP.
	Selector flagsel.Selector
	// Orderer solves S/C Opt Order; nil means the paper's MA-DFS.
	Orderer order.Orderer
	// InitialOrder seeds the loop; nil means a deterministic Kahn sort
	// (GetTopologicalOrder in Algorithm 2).
	InitialOrder []dag.NodeID
	// MaxIterations caps the loop; the paper reports convergence in <10
	// iterations for 100-node graphs. Zero means 50.
	MaxIterations int
	// TerminateOnSize follows the literal line 5 of Algorithm 2, which
	// compares total flagged *sizes* across iterations. The default
	// (false) compares total speedup *scores*, matching the paper's
	// convergence argument; see DESIGN.md decision 3.
	TerminateOnSize bool
	// Observer receives an IterationDone event after each alternating
	// iteration. Nil disables observation.
	Observer obs.Observer
}

// Stats reports how the optimization converged.
type Stats struct {
	Iterations  int           // alternating iterations performed
	Score       float64       // total speedup score of the returned plan
	PeakMemory  int64         // peak Memory Catalog usage of the plan
	AvgMemory   float64       // average memory usage objective of the plan
	Elapsed     time.Duration // optimizer wall-clock time
	StopReason  string        // why the loop terminated
	OrderSwaps  int           // times the order was replaced by the orderer
	SelectorRan int           // times the selector was invoked
}

// Solve runs Algorithm 2 on the problem and returns a feasible plan. The
// context is checked between alternating iterations, so a cancelled or
// expired context stops the optimization with ctx.Err().
func Solve(ctx context.Context, p *core.Problem, opts Options) (*core.Plan, *Stats, error) {
	start := time.Now()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	sel := opts.Selector
	if sel == nil {
		sel = flagsel.MKP{}
	}
	ord := opts.Orderer
	if ord == nil {
		ord = order.MADFS{}
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 50
	}

	tau := opts.InitialOrder
	if tau == nil {
		var err error
		tau, err = p.G.TopoSort()
		if err != nil {
			return nil, nil, err
		}
	} else if !p.G.IsTopological(tau) {
		return nil, nil, fmt.Errorf("opt: initial order is not topological")
	}

	best := core.NewPlan(tau) // U = ∅
	st := &Stats{}
	iterDone := func() {
		obs.Emit(opts.Observer, obs.Event{
			Kind:      obs.IterationDone,
			Step:      -1,
			Iteration: st.Iterations,
			Score:     best.TotalScore(p),
			Bytes:     best.TotalFlaggedSize(p),
			Elapsed:   time.Since(start),
		})
	}
	for st.Iterations = 1; st.Iterations <= maxIter; st.Iterations++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		cand, err := sel.Select(p, tau)
		st.SelectorRan++
		if err != nil {
			return nil, nil, err
		}
		if !core.Feasible(p, cand) {
			// Selectors guarantee feasibility; treat violation as a bug.
			return nil, nil, fmt.Errorf("opt: selector %s produced infeasible plan", sel.Name())
		}
		if !improved(p, best, cand, opts.TerminateOnSize) {
			st.StopReason = "no flagged-set improvement"
			iterDone()
			break
		}
		best = cand

		tauNew, err := ord.Order(p, best.Flagged)
		if err != nil {
			return nil, nil, err
		}
		if !p.G.IsTopological(tauNew) {
			return nil, nil, fmt.Errorf("opt: orderer %s produced non-topological order", ord.Name())
		}
		probe := &core.Plan{Order: tauNew, Flagged: best.Flagged}
		if core.PeakMemoryUsage(p, probe) > p.Memory {
			// Line 8: the new order breaks feasibility of U; keep the
			// previous order and stop.
			st.StopReason = "orderer produced infeasible order"
			iterDone()
			break
		}
		tau = tauNew
		best = &core.Plan{Order: tauNew, Flagged: best.Flagged}
		st.OrderSwaps++
		iterDone()
	}
	if st.StopReason == "" {
		st.StopReason = "iteration limit"
	}
	st.Score = best.TotalScore(p)
	st.PeakMemory = core.PeakMemoryUsage(p, best)
	st.AvgMemory = core.AverageMemoryUsage(p, best)
	st.Elapsed = time.Since(start)
	return best, st, nil
}

// improved reports whether cand is strictly better than best under the
// configured termination metric.
func improved(p *core.Problem, best, cand *core.Plan, bySize bool) bool {
	if bySize {
		return cand.TotalFlaggedSize(p) > best.TotalFlaggedSize(p)
	}
	return cand.TotalScore(p) > best.TotalScore(p)
}
