// Package wlgen is the synthetic workload generator of §VI-H: it creates
// realistic MV-refresh dependency graphs with 25–100 nodes for scalability
// and sensitivity experiments. It has the paper's two components:
//
//   - a layered DAG generator in the style of Spark stage graphs,
//     parameterized by size, height/width ratio, per-stage node-count
//     standard deviation, and maximum out-degree;
//   - a Markov chain over node operations (scan, join, aggregate, filter,
//     project), fit to the operator-transition statistics of the TPC-DS and
//     Spider query corpora, which derives node output sizes from inputs.
package wlgen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/sim"
)

// Op enumerates node operation types.
type Op uint8

// Operations.
const (
	OpScan Op = iota
	OpJoin
	OpAgg
	OpFilter
	OpProject
	numOps
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpScan:
		return "SCAN"
	case OpJoin:
		return "JOIN"
	case OpAgg:
		return "AGG"
	case OpFilter:
		return "FILTER"
	default:
		return "PROJECT"
	}
}

// opTransitions is the Markov transition matrix P(next | current): the
// probability that a consumer of a node with operation `current` performs
// `next`. Rows are fit to operator-pair frequencies in TPC-DS and Spider
// query plans: joins are commonly followed by aggregation, aggregates by
// joins with other aggregates or projection, filters feed joins, and so on.
var opTransitions = [numOps][numOps]float64{
	//               SCAN  JOIN  AGG   FILTER PROJECT
	OpScan:    {0.00, 0.55, 0.15, 0.20, 0.10},
	OpJoin:    {0.00, 0.30, 0.45, 0.10, 0.15},
	OpAgg:     {0.00, 0.40, 0.20, 0.15, 0.25},
	OpFilter:  {0.00, 0.50, 0.25, 0.10, 0.15},
	OpProject: {0.00, 0.35, 0.30, 0.10, 0.25},
}

// selectivity returns the output-size multiplier of an operation over its
// combined input bytes.
func selectivity(op Op, rng *rand.Rand) float64 {
	switch op {
	case OpJoin:
		return 0.15 + 0.35*rng.Float64() // 0.15–0.50 of combined inputs
	case OpAgg:
		return 0.02 + 0.10*rng.Float64() // aggressive reduction
	case OpFilter:
		return 0.20 + 0.40*rng.Float64()
	default: // PROJECT
		return 0.40 + 0.40*rng.Float64()
	}
}

// baseTableBytes are the base-table sizes scan nodes sample from, matching
// the 100GB TPC-DS dataset's table-size distribution (§VI-H: "sizes of
// nodes with no parents are randomly sampled from table sizes in the 100GB
// TPC-DS dataset").
var baseTableBytes = []int64{
	40 << 30, // store_sales
	20 << 30, // catalog_sales
	10 << 30, // web_sales
	5 << 30,  // inventory
	2 << 30,  // store_returns
	1 << 30,  // catalog_returns
	512 << 20,
	256 << 20,
	64 << 20, // customer
	8 << 20,  // item
	1 << 20,  // date_dim
}

// Params configures generation; zero values take the paper's defaults
// (marked black in Figure 13/14: 100 nodes, height/width 1, max out-degree
// 4, stage-count stddev 1).
type Params struct {
	Nodes        int     // total node count (default 100)
	HeightWidth  float64 // height/width ratio (default 1.0)
	MaxOutdegree int     // per-node outgoing-edge cap (default 4)
	StageStdDev  float64 // stddev of nodes per stage (default 1.0)
	Seed         int64
}

func (p Params) withDefaults() Params {
	if p.Nodes == 0 {
		p.Nodes = 100
	}
	if p.HeightWidth == 0 {
		p.HeightWidth = 1
	}
	if p.MaxOutdegree == 0 {
		p.MaxOutdegree = 4
	}
	if p.StageStdDev == 0 {
		p.StageStdDev = 1
	}
	return p
}

// Generated bundles the synthetic workload with its node operations.
type Generated struct {
	Workload *sim.Workload
	Ops      []Op
	Stages   [][]dag.NodeID
}

// Generate builds a random layered workload.
func Generate(p Params) (*Generated, error) {
	p = p.withDefaults()
	if p.Nodes < 1 || p.MaxOutdegree < 1 || p.HeightWidth <= 0 || p.StageStdDev < 0 {
		return nil, fmt.Errorf("wlgen: invalid params %+v", p)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Stage layout: height/width = h/w with h*w ≈ Nodes.
	height := int(math.Round(math.Sqrt(float64(p.Nodes) * p.HeightWidth)))
	if height < 1 {
		height = 1
	}
	if height > p.Nodes {
		height = p.Nodes
	}
	meanWidth := float64(p.Nodes) / float64(height)

	g := dag.New()
	var stages [][]dag.NodeID
	remaining := p.Nodes
	for s := 0; s < height && remaining > 0; s++ {
		want := int(math.Round(meanWidth + rng.NormFloat64()*p.StageStdDev))
		if want < 1 {
			want = 1
		}
		left := height - s - 1
		if want > remaining-left {
			want = remaining - left
		}
		if s == height-1 {
			want = remaining
		}
		var stage []dag.NodeID
		for i := 0; i < want; i++ {
			stage = append(stage, g.AddNode(fmt.Sprintf("s%d_n%d", s, i)))
		}
		stages = append(stages, stage)
		remaining -= want
	}

	// Edges: each node sends up to MaxOutdegree edges to later stages
	// (mostly the next stage, as in Spark stage graphs); every non-source
	// node gets at least one parent from the previous stage. Guaranteed
	// parents pick the least-loaded candidate, so the out-degree cap is
	// only exceeded when a stage is wider than its predecessor can serve.
	for si := 1; si < len(stages); si++ {
		prev := stages[si-1]
		for _, id := range stages[si] {
			start := rng.Intn(len(prev))
			par := prev[start]
			for k := 1; k < len(prev); k++ {
				cand := prev[(start+k)%len(prev)]
				if len(g.Children(cand)) < len(g.Children(par)) {
					par = cand
				}
			}
			g.MustAddEdge(par, id)
		}
	}
	for si := 0; si < len(stages)-1; si++ {
		for _, id := range stages[si] {
			extra := rng.Intn(p.MaxOutdegree + 1)
			for e := 0; e < extra; e++ {
				if len(g.Children(id)) >= p.MaxOutdegree {
					break
				}
				// Prefer the next stage; occasionally skip ahead.
				ti := si + 1
				if rng.Float64() < 0.2 && si+2 < len(stages) {
					ti = si + 2 + rng.Intn(len(stages)-si-2)
				}
				targets := stages[ti]
				g.MustAddEdge(id, targets[rng.Intn(len(targets))])
			}
		}
	}

	// Operations via the Markov chain, walking stages top-down; sizes
	// derived from inputs by the op's selectivity.
	ops := make([]Op, g.Len())
	sizes := make([]int64, g.Len())
	baseReads := make([]int64, g.Len())
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		parents := g.Parents(id)
		if len(parents) == 0 {
			ops[id] = OpScan
			sizes[id] = baseTableBytes[rng.Intn(len(baseTableBytes))]
			baseReads[id] = sizes[id] * 2 // scans read more than they keep
			continue
		}
		// Next op sampled from the transition row of a random parent.
		from := ops[parents[rng.Intn(len(parents))]]
		ops[id] = sampleOp(opTransitions[from], rng)
		// Output scales with the largest input: key joins and filters do
		// not multiply cardinalities across inputs.
		var in int64
		for _, par := range parents {
			if sizes[par] > in {
				in = sizes[par]
			}
		}
		sizes[id] = int64(float64(in) * selectivity(ops[id], rng))
		if sizes[id] < 1<<20 {
			sizes[id] = 1 << 20
		}
	}

	nodes := make([]sim.Node, g.Len())
	for i := range nodes {
		nodes[i] = sim.Node{
			Name:          g.Name(dag.NodeID(i)),
			OutputBytes:   sizes[i],
			BaseReadBytes: baseReads[i],
			// Compute proportional to processed bytes at a rate that
			// keeps synthetic workloads I/O-heavy, like the paper's.
			ComputeSeconds: float64(sizes[i]+baseReads[i]) / 4e9,
		}
	}
	w := &sim.Workload{G: g, Nodes: nodes}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &Generated{Workload: w, Ops: ops, Stages: stages}, nil
}

func sampleOp(row [numOps]float64, rng *rand.Rand) Op {
	r := rng.Float64()
	var acc float64
	for op := Op(0); op < numOps; op++ {
		acc += row[op]
		if r < acc {
			return op
		}
	}
	return OpProject
}

// Problem derives the optimization problem for a generated workload.
func (gen *Generated) Problem(memory int64, d costmodel.DeviceProfile) *core.Problem {
	g := gen.Workload.G
	sizes := make([]int64, g.Len())
	for i := range sizes {
		sizes[i] = gen.Workload.Nodes[i].OutputBytes
	}
	return &core.Problem{
		G:      g,
		Sizes:  sizes,
		Scores: costmodel.Scores(d, g, sizes),
		Memory: memory,
	}
}
