package wlgen

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/opt"
	"github.com/shortcircuit-db/sc/internal/sim"
)

func TestGenerateDefaults(t *testing.T) {
	gen, err := Generate(Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Workload.G.Len() != 100 {
		t.Fatalf("nodes = %d, want 100", gen.Workload.G.Len())
	}
	if !gen.Workload.G.IsAcyclic() {
		t.Fatal("cyclic graph")
	}
}

func TestGenerateExactNodeCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 10 + int(seed%91+91)%91 // 10..100
		gen, err := Generate(Params{Nodes: n, Seed: seed})
		if err != nil {
			return false
		}
		return gen.Workload.G.Len() == n && gen.Workload.G.IsAcyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	a, err := Generate(Params{Nodes: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Params{Nodes: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Workload.G.NumEdges() != b.Workload.G.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Workload.Nodes {
		if a.Workload.Nodes[i].OutputBytes != b.Workload.Nodes[i].OutputBytes {
			t.Fatal("sizes differ")
		}
	}
}

func TestHeightWidthShapesTheDAG(t *testing.T) {
	tall, err := Generate(Params{Nodes: 64, HeightWidth: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Generate(Params{Nodes: 64, HeightWidth: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tall.Stages) <= len(wide.Stages) {
		t.Fatalf("tall stages %d, wide stages %d", len(tall.Stages), len(wide.Stages))
	}
}

func TestMaxOutdegreeRespected(t *testing.T) {
	gen, err := Generate(Params{Nodes: 80, MaxOutdegree: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Workload.G
	// The cap may only be exceeded when a stage is wider than its
	// predecessor can serve at the cap (every node needs a parent).
	for si := 0; si < len(gen.Stages)-1; si++ {
		bound := 2
		need := (len(gen.Stages[si+1]) + len(gen.Stages[si]) - 1) / len(gen.Stages[si])
		if need > bound {
			bound = need
		}
		for _, id := range gen.Stages[si] {
			if len(g.Children(id)) > bound {
				t.Fatalf("stage %d node %d outdegree %d exceeds bound %d",
					si, id, len(g.Children(id)), bound)
			}
		}
	}
}

func TestSourcesAreScansAndDerivedSizesShrink(t *testing.T) {
	gen, err := Generate(Params{Nodes: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Workload.G
	for i := 0; i < g.Len(); i++ {
		id := dag.NodeID(i)
		if len(g.Parents(id)) == 0 {
			if gen.Ops[i] != OpScan {
				t.Fatalf("source node %d has op %s", i, gen.Ops[i])
			}
		} else if gen.Ops[i] == OpScan {
			t.Fatalf("derived node %d is a scan", i)
		}
		if gen.Workload.Nodes[i].OutputBytes <= 0 {
			t.Fatalf("node %d non-positive size", i)
		}
	}
}

func TestNonSourceNodesHaveParents(t *testing.T) {
	gen, err := Generate(Params{Nodes: 40, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Workload.G
	for si := 1; si < len(gen.Stages); si++ {
		for _, id := range gen.Stages[si] {
			if len(g.Parents(id)) == 0 {
				t.Fatalf("stage %d node %d has no parents", si, id)
			}
		}
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{Nodes: -1},
		{MaxOutdegree: -2},
		{HeightWidth: -1},
		{StageStdDev: -0.5},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestGeneratedWorkloadOptimizesAndSimulates(t *testing.T) {
	gen, err := Generate(Params{Nodes: 50, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	d := costmodel.PaperProfile()
	p := gen.Problem(2<<30, d)
	pl, st, err := opt.Solve(context.Background(), p, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !core.Feasible(p, pl) {
		t.Fatal("infeasible plan")
	}
	cfg := sim.Config{Device: d, Memory: p.Memory}
	base, err := sim.Run(context.Background(), gen.Workload, core.NewPlan(pl.Order), cfg)
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := sim.Run(context.Background(), gen.Workload, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Score > 0 && optRes.Total >= base.Total {
		t.Fatalf("optimized run (%v) not faster than baseline (%v) despite score %v",
			optRes.Total, base.Total, st.Score)
	}
}

func TestSampleOpDistribution(t *testing.T) {
	// sampleOp must respect the row: a row with all mass on AGG always
	// returns AGG.
	row := [numOps]float64{OpAgg: 1}
	for i := 0; i < 50; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if got := sampleOp(row, rng); got != OpAgg {
			t.Fatalf("sampleOp = %s", got)
		}
	}
}

func TestTransitionRowsSumToOne(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		var sum float64
		for _, v := range opTransitions[op] {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %s sums to %v", op, sum)
		}
		if opTransitions[op][OpScan] != 0 {
			t.Errorf("row %s allows transition to SCAN", op)
		}
	}
}

func TestOpStrings(t *testing.T) {
	want := map[Op]string{OpScan: "SCAN", OpJoin: "JOIN", OpAgg: "AGG", OpFilter: "FILTER", OpProject: "PROJECT"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %s", op, op.String())
		}
	}
}
