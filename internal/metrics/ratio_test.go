package metrics

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"github.com/shortcircuit-db/sc/internal/dag"
)

func TestRatioEWMAConvergesAndPredicts(t *testing.T) {
	s := NewStore()
	if _, ok := s.Ratio("a"); ok {
		t.Fatal("empty store claims a learned ratio")
	}
	if got := s.PredictEncoded("a", 1000); got != 1000 {
		t.Fatalf("prediction without evidence = %d, want the raw estimate", got)
	}
	// Three runs at a steady 4x compression: the EWMA should sit at 0.25.
	for i := 0; i < 3; i++ {
		s.Record(Observation{Name: "a", OutputBytes: 1000, EncodedBytes: 250, When: time.Now()})
	}
	r, ok := s.Ratio("a")
	if !ok || math.Abs(r-0.25) > 1e-9 {
		t.Fatalf("ratio = %v, %v; want 0.25", r, ok)
	}
	// A node never observed borrows the workload-wide ratio.
	if got := s.PredictEncoded("never_seen", 10000); got != 2500 {
		t.Fatalf("global prediction = %d, want 2500", got)
	}
	// The EWMA tracks drift, weighted toward recent runs.
	s.Record(Observation{Name: "a", OutputBytes: 1000, EncodedBytes: 500, When: time.Now()})
	r, _ = s.Ratio("a")
	want := ratioAlpha*0.5 + (1-ratioAlpha)*0.25
	if math.Abs(r-want) > 1e-9 {
		t.Fatalf("drifted ratio = %v, want %v", r, want)
	}
}

func TestEncodedSizesPredictsNeverObservedNodes(t *testing.T) {
	g := dag.New()
	g.AddNode("seen")
	g.AddNode("new_mv")
	s := NewStore()
	s.Record(Observation{Name: "seen", OutputBytes: 1000, EncodedBytes: 100, When: time.Now()})
	got := s.EncodedSizes(g, 5000)
	if got[0] != 100 {
		t.Fatalf("observed node = %d, want its encoded size 100", got[0])
	}
	if got[1] != 500 { // fallback 5000 × global ratio 0.1
		t.Fatalf("never-observed node = %d, want ratio-scaled 500", got[1])
	}
	// A node whose latest observation lost its encoded size (encoding was
	// toggled off) still scales by the ratio earlier runs learned.
	s.Record(Observation{Name: "seen", OutputBytes: 2000, When: time.Now()})
	got = s.EncodedSizes(g, 5000)
	if got[0] != 200 {
		t.Fatalf("raw-only latest = %d, want node-ratio-scaled 200", got[0])
	}
}

func TestRatiosSurviveSaveLoad(t *testing.T) {
	s := NewStore()
	s.Record(Observation{Name: "a", OutputBytes: 1000, EncodedBytes: 250, When: time.Now()})
	s.Record(Observation{Name: "b", OutputBytes: 400, EncodedBytes: 100, When: time.Now()})
	path := filepath.Join(t.TempDir(), "md.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		want, _ := s.Ratio(name)
		got, ok := re.Ratio(name)
		if !ok || math.Abs(got-want) > 1e-9 {
			t.Fatalf("reloaded ratio[%s] = %v, %v; want %v", name, got, ok, want)
		}
	}
	if _, ok := re.Ratio("never_seen"); !ok {
		t.Fatal("reloaded store lost the workload-wide ratio")
	}
}
