// Package metrics implements the execution-metadata store of §III-A: S/C's
// optimizer consumes per-node observations (output sizes, read/write/compute
// times) gathered from past MV refresh runs. The store persists as JSON so
// recurring pipelines improve run over run.
package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/obs"
)

// Observation records one node execution.
type Observation struct {
	Name string `json:"name"`
	// RunID correlates the observation with the refresh run (and its
	// trace) that produced it; empty when the run was not identified.
	RunID       string `json:"run_id,omitempty"`
	OutputBytes int64  `json:"output_bytes"`
	// EncodedBytes is the serialized (possibly compressed) size actually
	// moved to storage; zero when never observed. With encoding enabled it
	// is also a faithful estimate of the compressed Memory Catalog
	// footprint (framing overhead is a few bytes per column).
	EncodedBytes int64         `json:"encoded_bytes,omitempty"`
	ReadTime     time.Duration `json:"read_time"`
	WriteTime    time.Duration `json:"write_time"`
	ComputeTime  time.Duration `json:"compute_time"`
	When         time.Time     `json:"when"`
}

// ratioAlpha is the EWMA weight of the newest encoded/raw observation.
// Compression ratios drift slowly (schema and value distributions change
// run over run, not row over row), so recent runs dominate but one odd
// refresh cannot whipsaw the estimate.
const ratioAlpha = 0.3

// Store accumulates observations across runs.
type Store struct {
	mu  sync.Mutex
	obs map[string][]Observation

	// Compression-ratio learning: per-node EWMA of encoded/raw across
	// runs, plus a workload-wide EWMA used to predict encoded sizes for
	// nodes never observed (a first run, a new MV in a recurring
	// pipeline) instead of falling back to the raw-size guess.
	ratios      map[string]float64
	globalRatio float64
	ratioSeen   bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{obs: make(map[string][]Observation), ratios: make(map[string]float64)}
}

// Record appends an observation.
func (s *Store) Record(o Observation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs[o.Name] = append(s.obs[o.Name], o)
	s.learnRatioLocked(o)
}

// learnRatioLocked folds one observation into the ratio EWMAs. Callers
// hold s.mu.
func (s *Store) learnRatioLocked(o Observation) {
	if o.OutputBytes <= 0 || o.EncodedBytes <= 0 {
		return
	}
	r := float64(o.EncodedBytes) / float64(o.OutputBytes)
	if prev, ok := s.ratios[o.Name]; ok {
		s.ratios[o.Name] = ratioAlpha*r + (1-ratioAlpha)*prev
	} else {
		s.ratios[o.Name] = r
	}
	if s.ratioSeen {
		s.globalRatio = ratioAlpha*r + (1-ratioAlpha)*s.globalRatio
	} else {
		s.globalRatio, s.ratioSeen = r, true
	}
}

// Ratio returns the learned encoded/raw ratio for a node: its own EWMA
// when it has been observed with encoding on, otherwise the workload-wide
// EWMA. ok is false when no encoded observation exists at all.
func (s *Store) Ratio(name string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.ratios[name]; ok {
		return r, true
	}
	if s.ratioSeen {
		return s.globalRatio, true
	}
	return 1, false
}

// PredictEncoded estimates a node's encoded size from a raw-size estimate
// using the learned ratios. Without any encoded observation it returns the
// raw estimate unchanged.
func (s *Store) PredictEncoded(name string, rawBytes int64) int64 {
	r, ok := s.Ratio(name)
	if !ok {
		return rawBytes
	}
	return scaleBytes(rawBytes, r)
}

// Latest returns the most recent observation for name.
func (s *Store) Latest(name string) (Observation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.obs[name]
	if len(list) == 0 {
		return Observation{}, false
	}
	return list[len(list)-1], true
}

// History returns all observations for name, oldest first.
func (s *Store) History(name string) []Observation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Observation(nil), s.obs[name]...)
}

// Len returns the number of nodes with at least one observation.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.obs)
}

// Sizes extracts the latest observed output sizes for the graph's nodes,
// using fallback for nodes never observed (e.g. a first run).
func (s *Store) Sizes(g *dag.Graph, fallback int64) []int64 {
	out := make([]int64, g.Len())
	for i := range out {
		if o, ok := s.Latest(g.Name(dag.NodeID(i))); ok {
			out[i] = o.OutputBytes
		} else {
			out[i] = fallback
		}
	}
	return out
}

// EncodedSizes extracts the latest observed serialized sizes — the bytes a
// node's output actually occupies on storage and, with encoding enabled,
// in the Memory Catalog. Nodes without a direct encoded observation are
// estimated through the learned compression ratios: a never-observed node
// (a first run, a new MV in a recurring pipeline) gets fallback scaled by
// the workload-wide EWMA — a realistic compressed footprint instead of the
// raw guess — and a node whose latest observation lacks an encoded size is
// scaled by its own ratio when earlier runs learned one, falling back to
// its raw output size otherwise.
func (s *Store) EncodedSizes(g *dag.Graph, fallback int64) []int64 {
	out := make([]int64, g.Len())
	for i := range out {
		name := g.Name(dag.NodeID(i))
		o, ok := s.Latest(name)
		switch {
		case ok && o.EncodedBytes > 0:
			out[i] = o.EncodedBytes
		case ok:
			out[i] = o.OutputBytes
			if r, known := s.nodeRatio(name); known {
				out[i] = scaleBytes(o.OutputBytes, r)
			}
		default:
			out[i] = s.PredictEncoded(name, fallback)
		}
	}
	return out
}

// nodeRatio returns a node's own learned ratio, without the workload-wide
// fallback Ratio applies.
func (s *Store) nodeRatio(name string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.ratios[name]
	return r, ok
}

// scaleBytes applies a ratio, keeping positive sizes at least one byte.
func scaleBytes(n int64, r float64) int64 {
	e := int64(float64(n) * r)
	if e < 1 && n > 0 {
		e = 1
	}
	return e
}

// Scores estimates speedup scores from observed metadata: each child of
// node i saves i's observed (or modelled) read cost, and i saves its
// observed blocking write cost. Unobserved quantities fall back to the
// device model, so a first run can still be optimized.
func (s *Store) Scores(g *dag.Graph, sizes []int64, d costmodel.DeviceProfile) []float64 {
	return s.ScoresSized(g, sizes, sizes, d)
}

// ScoresSized is Scores with distinct memory and storage footprints: disk
// terms move diskSizes (encoded bytes with compression on), memory terms
// touch memSizes. The optimizer's flag decisions shift when compression
// changes the read/write savings of a node.
func (s *Store) ScoresSized(g *dag.Graph, memSizes, diskSizes []int64, d costmodel.DeviceProfile) []float64 {
	out := make([]float64, g.Len())
	for i := range out {
		id := dag.NodeID(i)
		var saved time.Duration
		readOnce := d.DiskRead(diskSizes[i]) - d.MemRead(memSizes[i])
		write := d.DiskWrite(diskSizes[i]) - d.MemWrite(memSizes[i])
		if o, ok := s.Latest(g.Name(id)); ok && o.WriteTime > 0 {
			write = o.WriteTime
		}
		for range g.Children(id) {
			saved += readOnce
		}
		saved += write
		if saved < 0 {
			saved = 0
		}
		out[i] = saved.Seconds()
	}
	return out
}

// Recorder adapts a Store to the obs event stream: every successful
// NodeDone event becomes an Observation, so recurring pipelines feed the
// optimizer without wiring metrics collection by hand.
type Recorder struct {
	Store *Store
	// Clock stamps observations; nil means time.Now.
	Clock func() time.Time
}

// NewRecorder returns a Recorder appending to s.
func NewRecorder(s *Store) *Recorder { return &Recorder{Store: s} }

// OnEvent implements obs.Observer.
func (r *Recorder) OnEvent(e obs.Event) {
	if e.Kind != obs.NodeDone || e.Err != nil {
		return
	}
	now := time.Now
	if r.Clock != nil {
		now = r.Clock
	}
	r.Store.Record(Observation{
		Name:         e.Node,
		RunID:        e.RunID,
		OutputBytes:  e.Bytes,
		EncodedBytes: e.Encoded,
		ReadTime:     e.Read,
		WriteTime:    e.Write,
		ComputeTime:  e.Compute,
		When:         now(),
	})
}

// Save writes the store as JSON.
func (s *Store) Save(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.MarshalIndent(s.obs, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a store saved by Save. The learned compression ratios are not
// serialized; they are re-derived by replaying the observation history in
// recording order (by timestamp, name-ordered within equal stamps), so the
// reloaded EWMAs match what the live store had learned.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	st := NewStore()
	if err := json.Unmarshal(data, &st.obs); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	var replay []Observation
	for _, list := range st.obs {
		replay = append(replay, list...)
	}
	sort.SliceStable(replay, func(i, j int) bool {
		if !replay[i].When.Equal(replay[j].When) {
			return replay[i].When.Before(replay[j].When)
		}
		return replay[i].Name < replay[j].Name
	})
	for _, o := range replay {
		st.learnRatioLocked(o)
	}
	return st, nil
}
