package metrics

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/dag"
)

func chain() *dag.Graph {
	g := dag.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	return g
}

func TestRecordAndLatest(t *testing.T) {
	s := NewStore()
	if _, ok := s.Latest("a"); ok {
		t.Fatal("empty store returned an observation")
	}
	s.Record(Observation{Name: "a", OutputBytes: 100})
	s.Record(Observation{Name: "a", OutputBytes: 200})
	o, ok := s.Latest("a")
	if !ok || o.OutputBytes != 200 {
		t.Fatalf("Latest = %+v, %v", o, ok)
	}
	if len(s.History("a")) != 2 {
		t.Fatalf("History = %d entries", len(s.History("a")))
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSizesUsesFallback(t *testing.T) {
	g := chain()
	s := NewStore()
	s.Record(Observation{Name: "b", OutputBytes: 777})
	sizes := s.Sizes(g, 42)
	if sizes[0] != 42 || sizes[1] != 777 || sizes[2] != 42 {
		t.Fatalf("Sizes = %v", sizes)
	}
}

func TestScoresPreferObservedWriteTime(t *testing.T) {
	g := chain()
	d := costmodel.PaperProfile()
	s := NewStore()
	sizes := []int64{1 << 30, 1 << 30, 1 << 30}
	modelOnly := s.Scores(g, sizes, d)
	// Record a write 10x slower than the model predicts for node a.
	s.Record(Observation{Name: "a", WriteTime: 10 * d.DiskWrite(sizes[0])})
	observed := s.Scores(g, sizes, d)
	if observed[0] <= modelOnly[0] {
		t.Fatalf("observed slow write did not raise score: %v vs %v", observed[0], modelOnly[0])
	}
	if observed[1] != modelOnly[1] {
		t.Fatal("unobserved node score changed")
	}
}

func TestScoresNonNegative(t *testing.T) {
	g := chain()
	s := NewStore()
	for _, sc := range s.Scores(g, []int64{0, 0, 0}, costmodel.PaperProfile()) {
		if sc < 0 {
			t.Fatalf("negative score %v", sc)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	s.Record(Observation{
		Name: "mv1", OutputBytes: 123,
		ReadTime: time.Second, WriteTime: 2 * time.Second, ComputeTime: 3 * time.Second,
		When: time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC),
	})
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	o, ok := got.Latest("mv1")
	if !ok || o.OutputBytes != 123 || o.WriteTime != 2*time.Second {
		t.Fatalf("round trip lost data: %+v", o)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}
