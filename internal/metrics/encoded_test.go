package metrics

import (
	"testing"
	"time"

	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/obs"
)

func pair(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEncodedSizesPrefersEncodedThenRawThenFallback(t *testing.T) {
	g := pair(t)
	s := NewStore()
	// "a" observed with an encoded size; "b" observed without one.
	s.Record(Observation{Name: "a", OutputBytes: 1000, EncodedBytes: 120, When: time.Now()})
	s.Record(Observation{Name: "b", OutputBytes: 500, When: time.Now()})
	got := s.EncodedSizes(g, 9999)
	if got[0] != 120 || got[1] != 500 {
		t.Fatalf("EncodedSizes = %v, want [120 500]", got)
	}
	// Unobserved graph: everything falls back.
	empty := NewStore()
	got = empty.EncodedSizes(g, 9999)
	if got[0] != 9999 || got[1] != 9999 {
		t.Fatalf("fallback EncodedSizes = %v", got)
	}
}

func TestRecorderCapturesEncodedBytes(t *testing.T) {
	s := NewStore()
	r := NewRecorder(s)
	r.OnEvent(obs.Event{Kind: obs.NodeDone, Node: "a", Bytes: 1000, Encoded: 130})
	o, ok := s.Latest("a")
	if !ok || o.EncodedBytes != 130 || o.OutputBytes != 1000 {
		t.Fatalf("observation = %+v", o)
	}
	// EncodeDone/DecodeDone events are telemetry, not observations.
	r.OnEvent(obs.Event{Kind: obs.EncodeDone, Node: "enc", Bytes: 1, Encoded: 1})
	if _, ok := s.Latest("enc"); ok {
		t.Fatal("EncodeDone recorded as an observation")
	}
}

func TestRecorderStampsRunID(t *testing.T) {
	s := NewStore()
	r := NewRecorder(s)
	r.OnEvent(obs.Event{Kind: obs.NodeDone, Node: "a", Bytes: 10, RunID: "run-000007"})
	o, ok := s.Latest("a")
	if !ok || o.RunID != "run-000007" {
		t.Fatalf("observation = %+v", o)
	}
}

func TestScoresSizedUsesDiskSizes(t *testing.T) {
	g := pair(t)
	s := NewStore()
	d := costmodel.PaperProfile()
	raw := []int64{10 << 20, 1 << 20}
	enc := []int64{1 << 20, 1 << 20}
	plain := s.ScoresSized(g, raw, raw, d)
	comp := s.ScoresSized(g, raw, enc, d)
	if comp[0] >= plain[0] {
		t.Fatalf("compressed disk sizes should shrink node a's score: %f vs %f", comp[0], plain[0])
	}
	// Observed write times still win over the model, either way.
	s.Record(Observation{Name: "a", OutputBytes: 10 << 20, WriteTime: 3 * time.Second, When: time.Now()})
	withObs := s.ScoresSized(g, raw, enc, d)
	if withObs[0] <= comp[0] {
		t.Fatalf("observed 3s write should dominate: %f vs %f", withObs[0], comp[0])
	}
}
