package bench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEncodingBenchmark runs the compressed-encoding benchmark at small
// scale and pins the acceptance criterion: compression enabled must cut
// bytes written to the throttled store by at least 2x versus the
// uncompressed baseline, and the result must land in BENCH_encoding.json.
func TestEncodingBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine benchmark is slow")
	}
	dir := t.TempDir()
	cfg := DefaultEncodingConfig()
	cfg.ScaleFactor = 0.25
	cfg.SleepScale = 0.001
	cfg.WlgenNodes = 40
	cfg.OutDir = dir
	var sb strings.Builder
	if err := Encoding(context.Background(), &sb, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"tpcds-real", "wlgen-sim", "verified", "reduction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_encoding.json"))
	if err != nil {
		t.Fatal(err)
	}
	var report EncodingReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.TPCDSBytesReductionX < 2 {
		t.Fatalf("bytes-written reduction %.2fx below the 2x acceptance bar", report.TPCDSBytesReductionX)
	}
	var sawAuto bool
	for _, run := range report.Runs {
		if run.BytesWritten <= 0 || run.WallSeconds <= 0 {
			t.Fatalf("run %s/%s has empty measurements: %+v", run.Workload, run.Mode, run)
		}
		if run.Workload == "tpcds-real" && run.Mode == "auto" {
			sawAuto = true
			if run.CompressionRatio < 2 {
				t.Fatalf("auto compression ratio %.2fx below 2x", run.CompressionRatio)
			}
		}
	}
	if !sawAuto {
		t.Fatal("report missing the tpcds-real auto run")
	}
}
