package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/sim"
	"github.com/shortcircuit-db/sc/internal/tpcds"
	"github.com/shortcircuit-db/sc/internal/wlgen"
)

// Fig3 reproduces the motivation experiment of Figure 3: the runtime
// breakdown (read base tables / compute joins / write final output) of a
// four-table CTAS join across dataset scales. The paper used an anonymous
// commercial warehouse; we model a warehouse-grade reader (columnar
// pruning) with the paper's measured writer, which reproduces the claim
// that the write share dominates and grows with scale (37%–69%).
func Fig3(w io.Writer) error {
	t := &tw{w: w}
	t.printf("Figure 3: runtime breakdown by operation, TPC-H Q8 four-table join\n")
	t.printf("%-10s %10s %8s %8s %8s %8s\n", "scale", "total(s)", "read%", "compute%", "write%", "")
	readBW := 1.2e9
	writeBW := 358.9e6
	for _, scaleGB := range []int{1, 10, 100, 1000} {
		bytes := float64(tpcds.ScaleBytes(scaleGB))
		read := bytes / readBW
		write := 0.8 * bytes / writeBW
		compute := 2 + 0.008*float64(scaleGB)
		total := read + compute + write
		t.printf("%-10s %10.1f %7.1f%% %7.1f%% %7.1f%%\n",
			fmt.Sprintf("%dG", scaleGB), total,
			100*read/total, 100*compute/total, 100*write/total)
	}
	return t.err
}

// Table3 prints the workload summary of Table III, with the calibrated
// simulator's measured I/O ratio next to the paper's target.
func Table3(w io.Writer) error {
	t := &tw{w: w}
	d := costmodel.PaperProfile()
	t.printf("Table III: summary of workloads\n")
	t.printf("%-10s %-16s %7s %10s %12s\n", "Workload", "TPC-DS Queries", "#Nodes", "I/O ratio", "measured")
	for _, in := range tpcds.Infos() {
		wl, _, err := tpcds.Build(in.Name, tpcds.ScaleBytes(100), tpcds.Regular(), 1<<30, d)
		if err != nil {
			return err
		}
		t.printf("%-10s %-16s %7d %9.1f%% %11.1f%%\n",
			in.Name, in.Queries, in.NumNodes, 100*in.IORatio, 100*tpcds.MeasuredIORatio(wl, d))
	}
	return t.err
}

// Fig9 reproduces Figure 9: end-to-end MV refresh times for six methods on
// the five workloads, on (a) 100GB TPC-DS with 1.6GB Memory Catalog and
// (b) 100GB TPC-DSp with 0.8GB.
func Fig9(w io.Writer) error {
	t := &tw{w: w}
	d := costmodel.PaperProfile()
	type panel struct {
		label   string
		variant tpcds.Variant
		memFrac float64
	}
	for _, pn := range []panel{
		{"(a) 100GB TPC-DS, 1.6GB Memory Catalog", tpcds.Regular(), 0.016},
		{"(b) 100GB TPC-DSp, 0.8GB Memory Catalog", tpcds.Partitioned(), 0.008},
	} {
		t.printf("Figure 9%s — end-to-end time (s)\n", pn.label)
		t.printf("%-22s", "Method")
		for _, name := range tpcds.AllWorkloads {
			t.printf(" %10s", string(name))
		}
		t.printf("\n")
		baselines := make(map[tpcds.WorkloadName]float64)
		for _, m := range Methods() {
			t.printf("%-22s", m.Name)
			for _, name := range tpcds.AllWorkloads {
				res, err := SimWorkload(m, name, 100, pn.variant, pn.memFrac, 1, d)
				if err != nil {
					return err
				}
				if m.NoOpt {
					baselines[name] = res.Total
				}
				t.printf(" %10.1f", res.Total)
			}
			t.printf("\n")
		}
		// Speedup row for S/C.
		sc := Methods()[5]
		t.printf("%-22s", "S/C speedup")
		for _, name := range tpcds.AllWorkloads {
			res, err := SimWorkload(sc, name, 100, pn.variant, pn.memFrac, 1, d)
			if err != nil {
				return err
			}
			t.printf(" %9.2fx", baselines[name]/res.Total)
		}
		t.printf("\n\n")
	}
	return t.err
}

// Fig10 reproduces Figure 10: S/C speedup across dataset scales with the
// Memory Catalog fixed at 1.6% of the dataset size.
func Fig10(w io.Writer) error {
	t := &tw{w: w}
	d := costmodel.PaperProfile()
	noOpt, sc := Methods()[0], Methods()[5]
	for _, v := range []tpcds.Variant{tpcds.Regular(), tpcds.Partitioned()} {
		t.printf("Figure 10 (%s): speedup vs scale, Memory Catalog = 1.6%% of data\n", v.Name)
		t.printf("%-12s %12s %12s %9s\n", "scale (GB)", "no-opt (s)", "S/C (s)", "speedup")
		for _, scaleGB := range []int{10, 25, 50, 100, 1000} {
			base, err := SimSuite(noOpt, scaleGB, v, 0.016, 1, d)
			if err != nil {
				return err
			}
			ours, err := SimSuite(sc, scaleGB, v, 0.016, 1, d)
			if err != nil {
				return err
			}
			t.printf("%-12d %12.1f %12.1f %8.2fx\n", scaleGB, base, ours, base/ours)
		}
		t.printf("\n")
	}
	return t.err
}

// Fig11 reproduces Figure 11: speedup on 100GB TPC-DSp while sweeping the
// Memory Catalog from 0.4% to 6.4% of the data size, allocated either from
// spare memory or reclaimed from query memory (which slows compute
// slightly, as the paper observes a ≤0.25x speedup reduction).
func Fig11(w io.Writer) error {
	t := &tw{w: w}
	d := costmodel.PaperProfile()
	noOpt, sc := Methods()[0], Methods()[5]
	v := tpcds.Partitioned()
	t.printf("Figure 11: speedup vs Memory Catalog size, 100GB TPC-DSp\n")
	t.printf("%-10s %14s %14s\n", "memory", "(a) spare", "(b) from query")
	for _, frac := range []float64{0.004, 0.008, 0.016, 0.032, 0.064} {
		base, err := SimSuite(noOpt, 100, v, frac, 1, d)
		if err != nil {
			return err
		}
		spare, err := SimSuite(sc, 100, v, frac, 1, d)
		if err != nil {
			return err
		}
		// Query-memory variant: reclaiming DBMS memory for the catalog
		// slows the S/C run's compute in proportion to what was taken;
		// the baseline keeps its full query memory.
		dq := d
		dq.ComputeScale = d.ComputeScale * (1 + 1.5*frac)
		oursQ, err := SimSuite(sc, 100, v, frac, 1, dq)
		if err != nil {
			return err
		}
		t.printf("%-10s %13.2fx %13.2fx\n",
			fmt.Sprintf("%.1f%%", 100*frac), base/spare, base/oursQ)
	}
	t.printf("\n")
	return t.err
}

// Table4 reproduces Table IV: table-read, compute and query latency of the
// five workloads under varying Memory Catalog sizes, on both 100GB
// datasets.
func Table4(w io.Writer) error {
	t := &tw{w: w}
	d := costmodel.PaperProfile()
	noOpt, sc := Methods()[0], Methods()[5]
	fracs := []float64{0.004, 0.008, 0.016, 0.032, 0.064}
	for _, v := range []tpcds.Variant{tpcds.Regular(), tpcds.Partitioned()} {
		t.printf("Table IV (%s): latency (s) by Memory Catalog size\n", v.Name)
		t.printf("%-12s %9s", "metric", "no-opt")
		for _, f := range fracs {
			t.printf(" %8.1f%%", 100*f)
		}
		t.printf("\n")
		var reads, computes, queries []float64
		base := struct{ read, compute, query float64 }{}
		for _, name := range tpcds.AllWorkloads {
			res, err := SimWorkload(noOpt, name, 100, v, 0.016, 1, d)
			if err != nil {
				return err
			}
			base.read += res.ReadSeconds
			base.compute += res.ComputeSeconds
			base.query += res.QuerySeconds
		}
		for _, f := range fracs {
			var read, compute, query float64
			for _, name := range tpcds.AllWorkloads {
				res, err := SimWorkload(sc, name, 100, v, f, 1, d)
				if err != nil {
					return err
				}
				read += res.ReadSeconds
				compute += res.ComputeSeconds
				query += res.QuerySeconds
			}
			reads = append(reads, read)
			computes = append(computes, compute)
			queries = append(queries, query)
		}
		rows := []struct {
			label string
			base  float64
			vals  []float64
		}{
			{"Table read", base.read, reads},
			{"Compute", base.compute, computes},
			{"Query", base.query, queries},
		}
		for _, r := range rows {
			t.printf("%-12s %9.0f", r.label, r.base)
			for _, vv := range r.vals {
				t.printf(" %9.0f", vv)
			}
			t.printf("\n")
		}
		t.printf("\n")
	}
	return t.err
}

// Fig12 reproduces the ablation of Figure 12: total execution time of the
// five workloads when one subproblem solution is swapped for a baseline.
func Fig12(w io.Writer) error {
	t := &tw{w: w}
	d := costmodel.PaperProfile()
	type panel struct {
		label   string
		variant tpcds.Variant
		memFrac float64
	}
	for _, pn := range []panel{
		{"(a) TPC-DS (1.6% Memory Catalog)", tpcds.Regular(), 0.016},
		{"(b) TPC-DSp (0.8% Memory Catalog)", tpcds.Partitioned(), 0.008},
	} {
		t.printf("Figure 12%s — total time (s), five workloads\n", pn.label)
		for _, m := range AblationMethods() {
			total, err := SimSuite(m, 100, pn.variant, pn.memFrac, 1, d)
			if err != nil {
				return err
			}
			t.printf("%-22s %10.1f\n", m.Name, total)
		}
		t.printf("\n")
	}
	return t.err
}

// Table5 reproduces Table V: end-to-end time and S/C speedup on Presto
// clusters of 1–5 worker nodes (100GB TPC-DS, 1.6% Memory Catalog).
func Table5(w io.Writer) error {
	t := &tw{w: w}
	d := costmodel.PaperProfile()
	noOpt, sc := Methods()[0], Methods()[5]
	t.printf("Table V: effect of S/C in DB clusters, 100GB TPC-DS, 1.6%% Memory Catalog\n")
	t.printf("%-20s", "Metric")
	for n := 1; n <= 5; n++ {
		t.printf(" %9s", fmt.Sprintf("%d node", n))
	}
	t.printf("\n")
	var bases, ours []float64
	for n := 1; n <= 5; n++ {
		b, err := SimSuite(noOpt, 100, tpcds.Regular(), 0.016, n, d)
		if err != nil {
			return err
		}
		o, err := SimSuite(sc, 100, tpcds.Regular(), 0.016, n, d)
		if err != nil {
			return err
		}
		bases = append(bases, b)
		ours = append(ours, o)
	}
	t.printf("%-20s", "No opt runtime (s)")
	for _, b := range bases {
		t.printf(" %9.0f", b)
	}
	t.printf("\n%-20s", "S/C runtime (s)")
	for _, o := range ours {
		t.printf(" %9.0f", o)
	}
	t.printf("\n%-20s", "Speedup")
	for i := range bases {
		t.printf(" %8.2fx", bases[i]/ours[i])
	}
	t.printf("\n\n")
	return t.err
}

// Fig13 reproduces Figure 13: optimizer runtime vs DAG size for the six
// method combinations, averaged over generated DAGs.
func Fig13(w io.Writer, dagsPerSize int) error {
	if dagsPerSize <= 0 {
		dagsPerSize = 25
	}
	t := &tw{w: w}
	d := costmodel.PaperProfile()
	methods := AblationMethods()[1:] // skip No Opt
	t.printf("Figure 13: optimization time (ms) vs DAG size (avg of %d DAGs)\n", dagsPerSize)
	t.printf("%-22s", "Method")
	sizes := []int{10, 25, 50, 100}
	for _, n := range sizes {
		t.printf(" %9d", n)
	}
	t.printf("\n")
	for _, m := range methods {
		t.printf("%-22s", m.Name)
		for _, n := range sizes {
			var total time.Duration
			for seed := 0; seed < dagsPerSize; seed++ {
				gen, err := wlgen.Generate(wlgen.Params{Nodes: n, Seed: int64(seed)})
				if err != nil {
					return err
				}
				p := gen.Problem(2<<30, d)
				_, elapsed, err := PlanFor(m, p)
				if err != nil {
					return err
				}
				total += elapsed
			}
			avg := total / time.Duration(dagsPerSize)
			t.printf(" %9.2f", float64(avg.Microseconds())/1000)
		}
		t.printf("\n")
	}
	t.printf("\n")
	return t.err
}

// Fig14 reproduces Figure 14: predicted savings vs DAG generation
// parameters, normalized to the default parameter point (100 nodes,
// height/width 1, max out-degree 4, stage stddev 1).
func Fig14(w io.Writer, dagsPerSetting int) error {
	if dagsPerSetting <= 0 {
		dagsPerSetting = 20
	}
	t := &tw{w: w}
	d := costmodel.PaperProfile()

	savings := func(p wlgen.Params) (float64, error) {
		var total float64
		for seed := 0; seed < dagsPerSetting; seed++ {
			p.Seed = int64(seed)
			gen, err := wlgen.Generate(p)
			if err != nil {
				return 0, err
			}
			prob := gen.Problem(2<<30, d)
			scPlan, _, err := PlanFor(Methods()[5], prob)
			if err != nil {
				return 0, err
			}
			cfg := sim.Config{Device: d, Memory: prob.Memory}
			topo, err := prob.G.TopoSort()
			if err != nil {
				return 0, err
			}
			base, err := sim.Run(context.Background(), gen.Workload, core.NewPlan(topo), cfg)
			if err != nil {
				return 0, err
			}
			ours, err := sim.Run(context.Background(), gen.Workload, scPlan, cfg)
			if err != nil {
				return 0, err
			}
			total += (base.Total - ours.Total) / base.Total
		}
		return total / float64(dagsPerSetting), nil
	}

	ref, err := savings(wlgen.Params{})
	if err != nil {
		return err
	}
	t.printf("Figure 14: normalized savings vs generation parameters (avg of %d DAGs)\n", dagsPerSetting)
	t.printf("reference point: 100 nodes, h/w 1, outdegree 4, stddev 1 (savings %.1f%%)\n\n", 100*ref)

	sweep := func(label string, values []float64, mk func(v float64) wlgen.Params) error {
		t.printf("%-24s", label)
		for _, v := range values {
			t.printf(" %8.3g", v)
		}
		t.printf("\n%-24s", "normalized savings")
		for _, v := range values {
			s, err := savings(mk(v))
			if err != nil {
				return err
			}
			t.printf(" %8.2f", s/ref)
		}
		t.printf("\n\n")
		return nil
	}
	if err := sweep("DAG size", []float64{25, 50, 100}, func(v float64) wlgen.Params {
		return wlgen.Params{Nodes: int(v)}
	}); err != nil {
		return err
	}
	if err := sweep("DAG height/width", []float64{4, 2, 1, 0.5, 0.25}, func(v float64) wlgen.Params {
		return wlgen.Params{HeightWidth: v}
	}); err != nil {
		return err
	}
	if err := sweep("Node max. outdegree", []float64{1, 2, 3, 4, 5}, func(v float64) wlgen.Params {
		return wlgen.Params{MaxOutdegree: int(v)}
	}); err != nil {
		return err
	}
	if err := sweep("Stage node count StDev", []float64{0.001, 1, 2, 3, 4}, func(v float64) wlgen.Params {
		return wlgen.Params{StageStdDev: v}
	}); err != nil {
		return err
	}
	return t.err
}
