package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/tpcds"
)

func TestMethodsRoster(t *testing.T) {
	ms := Methods()
	if len(ms) != 6 {
		t.Fatalf("methods = %d, want 6", len(ms))
	}
	if !ms[0].NoOpt || !ms[1].LRU {
		t.Fatal("first two methods must be NoOpt and LRU")
	}
	if !strings.HasPrefix(ms[5].Name, "S/C") || !ms[5].Alternate {
		t.Fatalf("last method must be alternating S/C: %+v", ms[5])
	}
}

func TestPlanForEachMethodFeasible(t *testing.T) {
	d := costmodel.PaperProfile()
	_, p, err := tpcds.Build(tpcds.IO1, tpcds.ScaleBytes(10), tpcds.Regular(),
		tpcds.MemoryForFraction(tpcds.ScaleBytes(10), 0.016), d)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range append(Methods(), AblationMethods()...) {
		pl, _, err := PlanFor(m, p)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !core.Feasible(p, pl) {
			t.Fatalf("%s: infeasible plan", m.Name)
		}
	}
}

func TestSCBeatsNoOptOnIOWorkloads(t *testing.T) {
	d := costmodel.PaperProfile()
	noOpt, scm := Methods()[0], Methods()[5]
	for _, wl := range []tpcds.WorkloadName{tpcds.IO1, tpcds.IO2, tpcds.IO3} {
		base, err := SimWorkload(noOpt, wl, 100, tpcds.Regular(), 0.016, 1, d)
		if err != nil {
			t.Fatal(err)
		}
		ours, err := SimWorkload(scm, wl, 100, tpcds.Regular(), 0.016, 1, d)
		if err != nil {
			t.Fatal(err)
		}
		speedup := base.Total / ours.Total
		if speedup < 1.2 {
			t.Errorf("%s: speedup %.2f < 1.2", wl, speedup)
		}
		if speedup > 6 {
			t.Errorf("%s: speedup %.2f implausibly high", wl, speedup)
		}
	}
}

func TestPartitionedBeatsRegular(t *testing.T) {
	d := costmodel.PaperProfile()
	noOpt, scm := Methods()[0], Methods()[5]
	baseR, err := SimSuite(noOpt, 100, tpcds.Regular(), 0.016, 1, d)
	if err != nil {
		t.Fatal(err)
	}
	oursR, err := SimSuite(scm, 100, tpcds.Regular(), 0.016, 1, d)
	if err != nil {
		t.Fatal(err)
	}
	baseP, err := SimSuite(noOpt, 100, tpcds.Partitioned(), 0.016, 1, d)
	if err != nil {
		t.Fatal(err)
	}
	oursP, err := SimSuite(scm, 100, tpcds.Partitioned(), 0.016, 1, d)
	if err != nil {
		t.Fatal(err)
	}
	if baseP/oursP <= baseR/oursR {
		t.Fatalf("TPC-DSp speedup %.2f not above TPC-DS %.2f", baseP/oursP, baseR/oursR)
	}
}

func TestExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	cases := []struct {
		name string
		run  func(buf *bytes.Buffer) error
	}{
		{"fig3", func(b *bytes.Buffer) error { return Fig3(b) }},
		{"table3", func(b *bytes.Buffer) error { return Table3(b) }},
		{"table5", func(b *bytes.Buffer) error { return Table5(b) }},
		{"fig13", func(b *bytes.Buffer) error { return Fig13(b, 2) }},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := c.run(&buf); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", c.name)
		}
	}
}

func TestTable3MatchesPaperRows(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"I/O 1", "Compute 2", "5, 77, 80", "26"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table III output missing %q:\n%s", want, out)
		}
	}
}

func TestRealRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine run in -short mode")
	}
	var buf bytes.Buffer
	cfg := DefaultRealConfig()
	cfg.ScaleFactor = 0.25
	if err := Real(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "byte-identical") {
		t.Fatalf("real run did not verify outputs:\n%s", out)
	}
	if !strings.Contains(out, "speedup") {
		t.Fatalf("real run reported no speedup:\n%s", out)
	}
}

func TestAblateProducesAllThreeSections(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite in -short mode")
	}
	var buf bytes.Buffer
	if err := Ablate(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"write channel", "alternation termination", "execution order"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}
