package bench

import (
	"context"
	"io"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/opt"
	"github.com/shortcircuit-db/sc/internal/sim"
	"github.com/shortcircuit-db/sc/internal/tpcds"
)

// Ablate exercises the design decisions DESIGN.md calls out beyond the
// paper's own Figure 12 ablation:
//
//  1. background-write bandwidth sharing vs a dedicated write channel
//     (decision 4) — how much of S/C's gain depends on the materialization
//     channel model;
//  2. score-based vs size-based alternating-optimization termination
//     (decision 3) — the paper's line 5 ambiguity;
//  3. the MA-DFS write-tail effect (decision 6) — S/C's plan executed in
//     its own order vs the same flagged set in the initial topological
//     order.
func Ablate(w io.Writer) error {
	t := &tw{w: w}
	d := costmodel.PaperProfile()
	scale := tpcds.ScaleBytes(100)
	mem := tpcds.MemoryForFraction(scale, 0.016)

	t.printf("Design-decision ablations, 100GB TPC-DS, 1.6%% Memory Catalog\n\n")

	// (1) Write-channel model.
	t.printf("%-34s %12s %12s\n", "write channel", "total (s)", "speedup")
	for _, dedicated := range []bool{false, true} {
		var base, ours float64
		for _, name := range tpcds.AllWorkloads {
			wl, p, err := tpcds.Build(name, scale, tpcds.Regular(), mem, d)
			if err != nil {
				return err
			}
			pl, _, err := PlanFor(Methods()[5], p)
			if err != nil {
				return err
			}
			cfg := sim.Config{Device: d, Memory: mem, DedicatedWriteBand: dedicated}
			topo, err := p.G.TopoSort()
			if err != nil {
				return err
			}
			b, err := sim.Run(context.Background(), wl, planWithOrder(pl, topo, false), cfg)
			if err != nil {
				return err
			}
			o, err := sim.Run(context.Background(), wl, pl, cfg)
			if err != nil {
				return err
			}
			base += b.Total
			ours += o.Total
		}
		label := "shared (paper model)"
		if dedicated {
			label = "dedicated background channel"
		}
		t.printf("%-34s %12.1f %11.2fx\n", label, ours, base/ours)
	}

	// (2) Termination metric of Algorithm 2 line 5.
	t.printf("\n%-34s %12s\n", "alternation termination", "score (s)")
	for _, bySize := range []bool{false, true} {
		var score float64
		for _, name := range tpcds.AllWorkloads {
			_, p, err := tpcds.Build(name, scale, tpcds.Regular(), mem, d)
			if err != nil {
				return err
			}
			_, st, err := opt.Solve(context.Background(), p, opt.Options{TerminateOnSize: bySize})
			if err != nil {
				return err
			}
			score += st.Score
		}
		label := "score-based (ours)"
		if bySize {
			label = "size-based (paper line 5 literal)"
		}
		t.printf("%-34s %12.1f\n", label, score)
	}

	// (3) MA-DFS order vs initial topological order for the same flags.
	t.printf("\n%-34s %12s\n", "execution order for S/C's flags", "total (s)")
	var madfsTotal, topoTotal float64
	for _, name := range tpcds.AllWorkloads {
		wl, p, err := tpcds.Build(name, scale, tpcds.Regular(), mem, d)
		if err != nil {
			return err
		}
		pl, _, err := PlanFor(Methods()[5], p)
		if err != nil {
			return err
		}
		cfg := sim.Config{Device: d, Memory: mem}
		a, err := sim.Run(context.Background(), wl, pl, cfg)
		if err != nil {
			return err
		}
		madfsTotal += a.Total
		topo, err := p.G.TopoSort()
		if err != nil {
			return err
		}
		// The simulator enforces the budget at run time (flagged nodes
		// that no longer fit fall back to disk), so the same flags under
		// the initial order remain executable even when MA-DFS reordered
		// precisely to make them coexist.
		alt := planWithOrder(pl, topo, true)
		b, err := sim.Run(context.Background(), wl, alt, cfg)
		if err != nil {
			return err
		}
		topoTotal += b.Total
	}
	t.printf("%-34s %12.1f\n", "MA-DFS order (ours)", madfsTotal)
	t.printf("%-34s %12.1f\n", "initial topological order", topoTotal)
	t.printf("\n")
	return t.err
}

// planWithOrder rebuilds a plan on a different order, optionally keeping
// the flagged set (otherwise nothing is flagged).
func planWithOrder(pl *core.Plan, order []dag.NodeID, keepFlags bool) *core.Plan {
	out := &core.Plan{Order: order, Flagged: make([]bool, len(pl.Flagged))}
	if keepFlags {
		copy(out.Flagged, pl.Flagged)
	}
	return out
}
