package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/shortcircuit-db/sc/internal/chunkio"
	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/exec"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/metrics"
	"github.com/shortcircuit-db/sc/internal/obs"
	"github.com/shortcircuit-db/sc/internal/opt"
	"github.com/shortcircuit-db/sc/internal/sim"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/table"
	"github.com/shortcircuit-db/sc/internal/telemetry"
	"github.com/shortcircuit-db/sc/internal/tpcds"
	"github.com/shortcircuit-db/sc/internal/wlgen"
)

// KernelsConfig controls the compressed-execution benchmark.
type KernelsConfig struct {
	// ScaleFactor sizes the generated TPC-DS dataset.
	ScaleFactor float64
	// ReadBW/WriteBW/Latency throttle the storage backend into the paper's
	// storage-bound regime; SleepScale compresses the simulated sleeps so
	// the benchmark stays fast.
	ReadBW, WriteBW float64
	Latency         time.Duration
	SleepScale      float64
	// MemoryFrac sizes the Memory Catalog as a fraction of dataset bytes.
	MemoryFrac float64
	Seed       int64
	// WlgenNodes sizes the synthetic workload for the modeled comparison.
	WlgenNodes int
	// Workers, when non-empty, re-runs the kernels mode once per listed
	// token budget with the chunk-parallel scan path on, reporting
	// wall_seconds and scaling (wall at 1 worker / wall at k) per count.
	// Every sweep run's outputs are verified byte-identical to the serial
	// kernels run.
	Workers []int
	// OutDir receives BENCH_kernels.json; empty means current directory.
	OutDir string
}

// DefaultKernelsConfig mirrors DefaultEncodingConfig's NFS-like device.
func DefaultKernelsConfig() KernelsConfig {
	return KernelsConfig{
		ScaleFactor: 1.0,
		ReadBW:      60e6,
		WriteBW:     40e6,
		Latency:     2 * time.Millisecond,
		SleepScale:  0.02,
		MemoryFrac:  0.30,
		Seed:        42,
		WlgenNodes:  100,
	}
}

// KernelsRun is one measured (or modeled) configuration.
type KernelsRun struct {
	Workload    string  `json:"workload"` // "tpcds-real" or "wlgen-sim"
	Mode        string  `json:"mode"`     // "raw", "decode", "kernels"
	WallSeconds float64 `json:"wall_seconds"`
	// Workers and Scaling are set on parallel-sweep rows: the run's
	// scheduler token budget and its speedup over the 1-worker sweep run
	// (wall_1 / wall_k).
	Workers          int     `json:"workers,omitempty"`
	Scaling          float64 `json:"scaling,omitempty"`
	BytesWritten     int64   `json:"bytes_written"`
	DecodedBytes     int64   `json:"decoded_bytes"` // raw bytes materialized by reads (chunked modes)
	ChunksSkipped    int64   `json:"chunks_skipped,omitempty"`
	CodeFilteredRows int64   `json:"code_filtered_rows,omitempty"`
	DecodesAvoided   int64   `json:"decodes_avoided,omitempty"`
	JoinBuildRows    int64   `json:"join_build_rows,omitempty"`
	JoinProbeRows    int64   `json:"join_probe_rows,omitempty"`
	// Compressed intermediate pipeline (kernels mode): output chunks kept
	// in code space, chunks re-encoded from materialized values, chunks
	// whose dictionary came from the session cache, and kernel executions
	// that fell back to the row engine (not omitempty: zero is the claim
	// CI asserts for the join-over-join path).
	ChunksPassed    int64 `json:"chunks_passed,omitempty"`
	Reencoded       int64 `json:"reencode,omitempty"`
	DictReused      int64 `json:"dict_reused,omitempty"`
	KernelFallbacks int64 `json:"kernel_fallbacks"`
	PeakMemoryBytes int64 `json:"peak_memory_bytes"`
	// PeakDecodedBytes is the decoded-view cache high-water mark: droppable
	// derived state on top of the compressed catalog residency, so total
	// footprint peaks at up to peak_memory_bytes + peak_decoded_bytes.
	PeakDecodedBytes int64 `json:"peak_decoded_bytes,omitempty"`
	FlaggedNodes     int   `json:"flagged_nodes"`
	Fallbacks        int   `json:"fallbacks"`
	// Nodes breaks the measured wall time down per MV, derived from the
	// run's node spans; CritPathSeconds is the longest blocking chain
	// through the DAG. Real (measured) runs only — the simulated rows
	// report their own timeline elsewhere.
	Nodes           []KernelNodeTime `json:"nodes,omitempty"`
	CritPath        []string         `json:"crit_path,omitempty"`
	CritPathSeconds float64          `json:"crit_path_seconds,omitempty"`
}

// KernelNodeTime is one node's share of a measured run.
type KernelNodeTime struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
}

// KernelsReport is the machine-readable result of the benchmark. The
// headline ratios compare the kernels mode against decode-then-execute
// ("decode"): same compressed bytes moved, different amounts of decode
// work and wall time. The "raw" rows are the uncompressed v1 baseline
// (their decoded-bytes accounting is always zero — v1 reads are not
// instrumented).
type KernelsReport struct {
	ScaleFactor            float64      `json:"scale_factor"`
	MemoryBytes            int64        `json:"memory_bytes"`
	Runs                   []KernelsRun `json:"runs"`
	TPCDSDecodedReductionX float64      `json:"tpcds_decoded_reduction_x"`
	TPCDSWallSpeedupX      float64      `json:"tpcds_wall_speedup_x"`
	WlgenDecodedReductionX float64      `json:"wlgen_decoded_reduction_x"`
	WlgenWallSpeedupX      float64      `json:"wlgen_wall_speedup_x"`
	// ScanScalingX is the parallel sweep's speedup at its widest token
	// budget (wall at 1 worker / wall at max workers); 0 without a sweep.
	ScanScalingX float64 `json:"scan_scaling_x,omitempty"`
}

// kernelCounters sums the decode/kernel event stream of one run.
type kernelCounters struct {
	decoded         atomic.Int64 // DecodeDone raw bytes + kernel-materialized bytes
	chunksSkipped   atomic.Int64
	codeRows        atomic.Int64
	decodesAvoided  atomic.Int64
	joinBuildRows   atomic.Int64
	joinProbeRows   atomic.Int64
	chunksPassed    atomic.Int64
	reencoded       atomic.Int64
	dictReused      atomic.Int64
	kernelFallbacks atomic.Int64
}

func (k *kernelCounters) OnEvent(e obs.Event) {
	switch e.Kind {
	case obs.DecodeDone:
		k.decoded.Add(e.Bytes)
	case obs.KernelDone:
		k.decoded.Add(e.Bytes)
		k.chunksSkipped.Add(e.ChunksSkipped)
		k.codeRows.Add(e.CodeFilteredRows)
		k.decodesAvoided.Add(e.DecodesAvoided)
		k.joinBuildRows.Add(e.JoinBuildRows)
		k.joinProbeRows.Add(e.JoinProbeRows)
		k.chunksPassed.Add(e.ChunksPassed)
		k.reencoded.Add(e.ReencodedChunks)
		k.dictReused.Add(e.DictReused)
		k.kernelFallbacks.Add(e.Fallbacks)
	}
}

// Kernels benchmarks compressed execution end to end: the TPC-DS real
// workload runs on the real engine as (a) the uncompressed v1 baseline,
// (b) compression with decode-then-execute, and (c) compression with the
// vectorized kernels; the wlgen synthetic workload repeats the comparison
// on the simulator with the codec CPU-cost model calibrated from the
// measured run. Results land in the table writer and BENCH_kernels.json.
func Kernels(ctx context.Context, w io.Writer, cfg KernelsConfig) error {
	t := &tw{w: w}
	ds, err := tpcds.Generate(tpcds.GenConfig{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	memory := int64(float64(ds.TotalBytes()) * cfg.MemoryFrac)
	device := costmodel.DeviceProfile{
		DiskReadBW: cfg.ReadBW, DiskWriteBW: cfg.WriteBW, DiskLatency: cfg.Latency,
		MemReadBW: 10e9, MemWriteBW: 10e9, ComputeScale: 1,
	}
	report := &KernelsReport{ScaleFactor: cfg.ScaleFactor, MemoryBytes: memory}

	t.printf("Kernels benchmark: TPC-DS sf %.1f (%.1f MB base), Memory Catalog %.1f MB\n",
		cfg.ScaleFactor, float64(ds.TotalBytes())/1e6, float64(memory)/1e6)
	t.printf("\n%-12s %-8s %12s %12s %10s %10s %10s %12s %12s %8s %8s\n",
		"workload", "mode", "written", "decoded", "wall", "skipped", "avoided", "code rows", "probe rows", "reenc", "reuse")

	auto := encoding.Options{Mode: encoding.ModeAuto}
	modes := []struct {
		name       string
		enc        *encoding.Options
		vectorized bool
	}{
		{"raw", nil, false},
		{"decode", &auto, false},
		{"kernels", &auto, true},
	}
	stores := make(map[string]storage.Store)
	var rawOut int64
	for _, m := range modes {
		run, store, rawBytes, err := kernelsRealRun(ctx, cfg, ds, memory, device, m.enc, m.vectorized, 0)
		if err != nil {
			return fmt.Errorf("bench: kernels %s: %w", m.name, err)
		}
		run.Mode = m.name
		stores[m.name] = store
		rawOut = rawBytes
		report.Runs = append(report.Runs, *run)
		t.printf("%-12s %-8s %12d %12d %10s %10d %10d %12d %12d %8d %8d\n",
			run.Workload, run.Mode, run.BytesWritten, run.DecodedBytes,
			time.Duration(run.WallSeconds*float64(time.Second)).Round(time.Millisecond),
			run.ChunksSkipped, run.DecodesAvoided, run.CodeFilteredRows, run.JoinProbeRows,
			run.Reencoded, run.DictReused)
	}

	// Correctness across modes: all three runs materialized the same MVs.
	wl := tpcds.RealWorkload()
	g, _, err := wl.BuildGraph()
	if err != nil {
		return err
	}
	if err := verifySameOutputs(stores["raw"], stores["kernels"], g); err != nil {
		return err
	}
	if err := verifySameOutputs(stores["decode"], stores["kernels"], g); err != nil {
		return err
	}
	t.printf("verified: all %d MVs identical across raw/decode/kernels runs\n", g.Len())

	decodeRun := &report.Runs[1]
	kernelsRun := &report.Runs[2]
	report.TPCDSDecodedReductionX = ratioOf(decodeRun.DecodedBytes, kernelsRun.DecodedBytes)
	report.TPCDSWallSpeedupX = decodeRun.WallSeconds / kernelsRun.WallSeconds
	t.printf("TPC-DS decoded-bytes reduction (kernels vs decode): %.2fx, wall speedup %.2fx\n\n",
		report.TPCDSDecodedReductionX, report.TPCDSWallSpeedupX)

	// Parallel-scan sweep: the kernels mode again, once per token budget,
	// with the chunk-parallel path on. Outputs must stay byte-identical to
	// the serial kernels run — that's the determinism claim, checked here
	// on every sweep width.
	if len(cfg.Workers) > 0 {
		serialWall := kernelsRun.WallSeconds
		t.printf("Parallel scan sweep (kernels mode, scheduler tokens = workers):\n")
		t.printf("%-8s %10s %8s\n", "workers", "wall", "scaling")
		wall1 := serialWall
		for _, wkr := range cfg.Workers {
			run, store, _, err := kernelsRealRun(ctx, cfg, ds, memory, device, &auto, true, wkr)
			if err != nil {
				return fmt.Errorf("bench: kernels sweep w=%d: %w", wkr, err)
			}
			run.Mode = "kernels"
			run.Workers = wkr
			if wkr <= 1 {
				wall1 = run.WallSeconds
			}
			if run.WallSeconds > 0 {
				run.Scaling = wall1 / run.WallSeconds
			}
			if err := verifySameOutputs(stores["kernels"], store, g); err != nil {
				return fmt.Errorf("bench: sweep w=%d diverged from serial: %w", wkr, err)
			}
			report.Runs = append(report.Runs, *run)
			report.ScanScalingX = run.Scaling
			t.printf("%-8d %10s %7.2fx\n", wkr,
				time.Duration(run.WallSeconds*float64(time.Second)).Round(time.Millisecond),
				run.Scaling)
		}
		t.printf("verified: every sweep width byte-identical to the serial kernels run\n\n")
	}

	// Calibrate the simulator's encoding model from the measured run.
	measuredRatio := ratioOf(rawOut, kernelsRun.BytesWritten)
	decFrac := 1.0
	if decodeRun.DecodedBytes > 0 {
		decFrac = float64(kernelsRun.DecodedBytes) / float64(decodeRun.DecodedBytes)
		if decFrac > 1 {
			decFrac = 1
		}
	}
	wlRuns, err := kernelsWlgenRuns(ctx, cfg, device, measuredRatio, decFrac)
	if err != nil {
		return err
	}
	for _, run := range wlRuns {
		report.Runs = append(report.Runs, run)
		t.printf("%-12s %-8s %12d %12d %10s\n",
			run.Workload, run.Mode, run.BytesWritten, run.DecodedBytes,
			time.Duration(run.WallSeconds*float64(time.Second)).Round(time.Millisecond))
	}
	wd, wk := wlRuns[1], wlRuns[2]
	report.WlgenDecodedReductionX = ratioOf(wd.DecodedBytes, wk.DecodedBytes)
	report.WlgenWallSpeedupX = wd.WallSeconds / wk.WallSeconds
	t.printf("wlgen decoded-bytes reduction (kernels vs decode): %.2fx, wall speedup %.2fx\n",
		report.WlgenDecodedReductionX, report.WlgenWallSpeedupX)

	path := filepath.Join(cfg.OutDir, "BENCH_kernels.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	t.printf("wrote %s\n", path)
	return t.err
}

func ratioOf(a, b int64) float64 {
	if b <= 0 {
		return 1
	}
	return float64(a) / float64(b)
}

// kernelsRealRun executes observe → optimize → refresh on the real engine
// with one configuration and measures the optimized refresh. Base tables
// are stored chunked for the compressed modes (the kernels' per-chunk
// readers scan them directly) and v1 for the raw baseline. workers > 1
// gives the measured pass that many scheduler tokens with the
// chunk-parallel scan path on; 0 or 1 keeps it serial.
func kernelsRealRun(ctx context.Context, cfg KernelsConfig, ds *tpcds.Dataset, memory int64, device costmodel.DeviceProfile, enc *encoding.Options, vectorized bool, workers int) (*KernelsRun, storage.Store, int64, error) {
	newStore := func() (storage.Store, error) {
		inner := storage.NewMemStore()
		save := exec.SaveTable
		if enc != nil {
			save = func(st storage.Store, name string, tb *table.Table) error {
				return exec.SaveTableChunked(st, name, tb, *enc)
			}
		}
		if err := ds.Save(inner, save); err != nil {
			return nil, err
		}
		return &storage.Throttled{
			Inner: inner, ReadBWBps: cfg.ReadBW, WriteBWBps: cfg.WriteBW,
			Latency: cfg.Latency, SleepScale: cfg.SleepScale,
		}, nil
	}
	wl := tpcds.RealWorkload()
	g, _, err := wl.BuildGraph()
	if err != nil {
		return nil, nil, 0, err
	}
	topo, err := g.TopoSort()
	if err != nil {
		return nil, nil, 0, err
	}

	// The session dictionary cache spans both passes, modelling a recurring
	// refresh: the measured pass reuses the dictionaries the observation
	// pass derived, which is what dict_reused in the report counts.
	var sess *chunkio.Session
	if vectorized {
		sess = chunkio.NewSession()
	}

	// Pass 1: unoptimized, collecting sizes (raw and encoded).
	store1, err := newStore()
	if err != nil {
		return nil, nil, 0, err
	}
	ctl1 := &exec.Controller{Store: store1, Mem: memcat.New(0), Encoding: enc, Vectorized: vectorized, Chunked: sess}
	base, err := ctl1.Run(ctx, wl, g, core.NewPlan(topo))
	if err != nil {
		return nil, nil, 0, err
	}
	md := metrics.NewStore()
	for _, n := range base.Nodes {
		md.Record(metrics.Observation{
			Name: n.Name, OutputBytes: n.OutputBytes, EncodedBytes: n.EncodedSize,
			ReadTime: n.ReadTime, WriteTime: n.WriteTime, ComputeTime: n.ComputeTime,
			When: time.Now(),
		})
	}

	raw := md.Sizes(g, 1<<20)
	prob := &core.Problem{G: g, Memory: memory}
	if enc != nil {
		encSizes := md.EncodedSizes(g, 1<<20)
		prob.Sizes = encSizes
		prob.Scores = md.ScoresSized(g, raw, encSizes, device)
	} else {
		prob.Sizes = raw
		prob.Scores = md.Scores(g, raw, device)
	}
	plan, _, err := opt.Solve(ctx, prob, opt.Options{})
	if err != nil {
		return nil, nil, 0, err
	}

	// Pass 2: the measured refresh, with a trace collector alongside the
	// counters so the report carries per-node wall times and the critical
	// path of the measured run.
	store2, err := newStore()
	if err != nil {
		return nil, nil, 0, err
	}
	counters := &kernelCounters{}
	col := telemetry.NewCollector(telemetry.CollectorConfig{
		RunID:    telemetry.RunID(1),
		RootName: "bench kernels",
	})
	ctl2 := &exec.Controller{
		Store: store2, Mem: memcat.New(memory), Encoding: enc, Vectorized: vectorized,
		Obs: obs.Multi(counters, col.Observer()), Chunked: sess,
		Concurrency: workers, ParallelScan: workers > 1,
	}
	res, err := ctl2.Run(ctx, wl, g, plan)
	if err != nil {
		return nil, nil, 0, err
	}
	col.Finish(time.Time{}, "")
	spans := col.Spans()
	var nodes []KernelNodeTime
	for _, sp := range spans[1:] {
		if name := sp.StrAttr(telemetry.AttrNode); name != "" {
			nodes = append(nodes, KernelNodeTime{Name: name, WallSeconds: sp.Duration().Seconds()})
		}
	}
	parents := make(map[string][]string, len(wl.Nodes))
	for i, n := range wl.Nodes {
		for _, par := range g.Parents(dag.NodeID(i)) {
			parents[n.Name] = append(parents[n.Name], wl.Nodes[par].Name)
		}
	}
	cp := telemetry.CriticalPath(spans, parents)

	var rawBytes, written int64
	for _, n := range res.Nodes {
		rawBytes += n.OutputBytes
		written += n.EncodedSize
	}
	return &KernelsRun{
		Workload:         "tpcds-real",
		WallSeconds:      res.Total.Seconds(),
		BytesWritten:     written,
		DecodedBytes:     counters.decoded.Load(),
		ChunksSkipped:    counters.chunksSkipped.Load(),
		CodeFilteredRows: counters.codeRows.Load(),
		DecodesAvoided:   counters.decodesAvoided.Load(),
		JoinBuildRows:    counters.joinBuildRows.Load(),
		JoinProbeRows:    counters.joinProbeRows.Load(),
		ChunksPassed:     counters.chunksPassed.Load(),
		Reencoded:        counters.reencoded.Load(),
		DictReused:       counters.dictReused.Load(),
		KernelFallbacks:  counters.kernelFallbacks.Load(),
		PeakMemoryBytes:  res.PeakMemory,
		PeakDecodedBytes: res.PeakDecodedCache,
		FlaggedNodes:     len(plan.FlaggedIDs()),
		Fallbacks:        res.FallbackWrites,
		Nodes:            nodes,
		CritPath:         cp.Chain,
		CritPathSeconds:  cp.ChainSeconds,
	}, store2, rawBytes, nil
}

// kernelsWlgenRuns repeats the three-way comparison on a synthetic wlgen
// DAG with the calibrated simulator: "decode" pays full decode CPU on
// every read of a compressed output, "kernels" decodes only the measured
// surviving fraction. The codec mix approximates an analytic workload
// (dictionary-heavy strings, delta keys).
func kernelsWlgenRuns(ctx context.Context, cfg KernelsConfig, device costmodel.DeviceProfile, ratio, decFrac float64) ([]KernelsRun, error) {
	gen, err := wlgen.Generate(wlgen.Params{Nodes: cfg.WlgenNodes, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	var totalRaw int64
	for _, n := range gen.Workload.Nodes {
		totalRaw += n.OutputBytes
	}
	memory := int64(float64(totalRaw) * cfg.MemoryFrac)
	mix := map[encoding.CodecID]float64{
		encoding.Dict: 0.35, encoding.Delta: 0.25, encoding.RLE: 0.15, encoding.Raw: 0.25,
	}

	runOne := func(mode string, model *sim.EncodingModel) (*KernelsRun, error) {
		r := 1.0
		if model != nil {
			r = model.Ratio
		}
		var sizes []int64
		for _, n := range gen.Workload.Nodes {
			eb := int64(float64(n.OutputBytes) / r)
			if eb < 1 {
				eb = 1
			}
			sizes = append(sizes, eb)
		}
		prob := &core.Problem{
			G:      gen.Workload.G,
			Sizes:  sizes,
			Scores: costmodel.Scores(device, gen.Workload.G, sizes),
			Memory: memory,
		}
		plan, _, err := opt.Solve(ctx, prob, opt.Options{})
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(ctx, gen.Workload, plan, sim.Config{Device: device, Memory: memory, Encoding: model})
		if err != nil {
			return nil, err
		}
		return &KernelsRun{
			Workload:        "wlgen-sim",
			Mode:            mode,
			WallSeconds:     res.Total,
			BytesWritten:    res.BytesWritten,
			DecodedBytes:    res.DecodedBytes,
			PeakMemoryBytes: res.PeakMemory,
			FlaggedNodes:    len(plan.FlaggedIDs()),
			Fallbacks:       res.Fallbacks,
		}, nil
	}

	rawRun, err := runOne("raw", nil)
	if err != nil {
		return nil, err
	}
	decodeRun, err := runOne("decode", &sim.EncodingModel{Ratio: ratio, Mix: mix, DecodedFrac: 1})
	if err != nil {
		return nil, err
	}
	kernelsRun, err := runOne("kernels", &sim.EncodingModel{Ratio: ratio, Mix: mix, DecodedFrac: decFrac})
	if err != nil {
		return nil, err
	}
	return []KernelsRun{*rawRun, *decodeRun, *kernelsRun}, nil
}
