// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§VI) from the simulator, the optimizer
// and the real engine, printing the same rows/series the paper reports.
// cmd/scbench and the repository-root benchmarks are thin wrappers over it.
package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/flagsel"
	"github.com/shortcircuit-db/sc/internal/opt"
	"github.com/shortcircuit-db/sc/internal/order"
	"github.com/shortcircuit-db/sc/internal/sim"
	"github.com/shortcircuit-db/sc/internal/tpcds"
)

// Method is one of the compared systems of §VI-A.
type Method struct {
	Name     string
	NoOpt    bool // raw engine: topological order, nothing kept in memory
	LRU      bool // LRU result cache of Memory Catalog size
	Selector flagsel.Selector
	Orderer  order.Orderer
	// Alternate runs the full alternating optimization; otherwise the
	// selector runs once on the initial topological order (how the paper
	// evaluates the off-the-shelf flagging baselines, which do not
	// reorder).
	Alternate bool
}

// Methods returns the six systems of Figure 9 in display order.
func Methods() []Method {
	return []Method{
		{Name: "No optimization", NoOpt: true},
		{Name: "LRU Cache", LRU: true},
		{Name: "Random", Selector: flagsel.Random{Seed: 1}},
		{Name: "Greedy", Selector: flagsel.Greedy{}},
		{Name: "Ratio-based selection", Selector: flagsel.Ratio{}},
		{Name: "S/C (Ours)", Selector: flagsel.MKP{}, Orderer: order.MADFS{}, Alternate: true},
	}
}

// AblationMethods returns the §VI-F combinations of Figure 12.
func AblationMethods() []Method {
	return []Method{
		{Name: "No Opt", NoOpt: true},
		{Name: "Random + MA-DFS", Selector: flagsel.Random{Seed: 1}, Orderer: order.MADFS{}, Alternate: true},
		{Name: "Greedy + MA-DFS", Selector: flagsel.Greedy{}, Orderer: order.MADFS{}, Alternate: true},
		{Name: "Ratio + MA-DFS", Selector: flagsel.Ratio{}, Orderer: order.MADFS{}, Alternate: true},
		{Name: "MKP + SA", Selector: flagsel.MKP{}, Orderer: order.SA{Seed: 1, Iterations: 10000}, Alternate: true},
		{Name: "MKP + Separator", Selector: flagsel.MKP{}, Orderer: order.Separator{}, Alternate: true},
		{Name: "MKP + MA-DFS (Ours)", Selector: flagsel.MKP{}, Orderer: order.MADFS{}, Alternate: true},
	}
}

// PlanFor computes the method's plan for a problem: the flagged set and
// execution order it would submit to the controller.
func PlanFor(m Method, p *core.Problem) (*core.Plan, time.Duration, error) {
	start := time.Now()
	topo, err := p.G.TopoSort()
	if err != nil {
		return nil, 0, err
	}
	switch {
	case m.NoOpt, m.LRU:
		return core.NewPlan(topo), time.Since(start), nil
	case m.Alternate:
		pl, st, err := opt.Solve(context.Background(), p, opt.Options{Selector: m.Selector, Orderer: m.Orderer})
		if err != nil {
			return nil, 0, err
		}
		return pl, st.Elapsed, nil
	default:
		pl, err := m.Selector.Select(p, topo)
		if err != nil {
			return nil, 0, err
		}
		return pl, time.Since(start), nil
	}
}

// SimWorkload simulates one workload under one method and returns the
// result.
func SimWorkload(m Method, name tpcds.WorkloadName, scaleGB int, v tpcds.Variant, memFrac float64, workers int, d costmodel.DeviceProfile) (*sim.Result, error) {
	scale := tpcds.ScaleBytes(scaleGB)
	mem := tpcds.MemoryForFraction(scale, memFrac)
	w, p, err := tpcds.Build(name, scale, v, mem, d)
	if err != nil {
		return nil, err
	}
	pl, _, err := PlanFor(m, p)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{Device: d, Memory: mem, Workers: workers, LRU: m.LRU}
	return sim.Run(context.Background(), w, pl, cfg)
}

// SimSuite simulates all five workloads and returns the summed totals.
func SimSuite(m Method, scaleGB int, v tpcds.Variant, memFrac float64, workers int, d costmodel.DeviceProfile) (float64, error) {
	var total float64
	for _, name := range tpcds.AllWorkloads {
		res, err := SimWorkload(m, name, scaleGB, v, memFrac, workers, d)
		if err != nil {
			return 0, err
		}
		total += res.Total
	}
	return total, nil
}

// tw writes aligned rows.
type tw struct {
	w   io.Writer
	err error
}

func (t *tw) printf(format string, args ...any) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}
