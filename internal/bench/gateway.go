package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/shortcircuit-db/sc/internal/gateway"
	"github.com/shortcircuit-db/sc/internal/ledger"
	"github.com/shortcircuit-db/sc/internal/tpcds"
)

// GatewayConfig parameterizes the multi-tenant gateway load benchmark.
type GatewayConfig struct {
	ScaleFactor   float64 // TPC-DS scale per tenant pipeline
	Tenants       int     // concurrent tenants, each with its own pipeline
	Rounds        int     // refresh rounds per tenant
	ReadsPerRound int     // MV reads per tenant after each refresh
	BudgetFrac    float64 // global budget as a fraction of one dataset's bytes, per tenant
	Seed          int64
	OutDir        string // where BENCH_gateway.json lands
}

// DefaultGatewayConfig returns the defaults: 4 tenants in a closed loop,
// 3 refresh rounds each, 5 MV reads per round.
func DefaultGatewayConfig() GatewayConfig {
	return GatewayConfig{
		ScaleFactor:   0.1,
		Tenants:       4,
		Rounds:        3,
		ReadsPerRound: 5,
		BudgetFrac:    0.5,
		Seed:          1,
		OutDir:        ".",
	}
}

// GatewayReport is the machine-readable result of the gateway benchmark.
type GatewayReport struct {
	ScaleFactor float64 `json:"scale_factor"`
	Tenants     int     `json:"tenants"`
	Rounds      int     `json:"rounds"`
	BudgetBytes int64   `json:"budget_bytes"`
	SliceBytes  int64   `json:"tenant_slice_bytes"`

	Refreshes        int     `json:"refreshes"`
	RefreshP50Ms     float64 `json:"refresh_p50_ms"`
	RefreshP99Ms     float64 `json:"refresh_p99_ms"`
	Reads            int     `json:"reads"`
	ReadP50Ms        float64 `json:"read_p50_ms"`
	ReadP99Ms        float64 `json:"read_p99_ms"`
	Rejected429      int     `json:"rejected_429"`
	Server5xx        int     `json:"server_5xx"`
	PeakUsedBytes    int64   `json:"peak_used_bytes"`
	PeakReserved     int64   `json:"peak_reserved_bytes"`
	QueueExpired     int64   `json:"queue_expired"`
	WithinBudget     bool    `json:"within_budget"`
	WallSeconds      float64 `json:"wall_seconds"`
	RefreshSucceeded int     `json:"refresh_succeeded"`

	// Ledger-derived fields: queue-wait percentiles, the admission
	// misprediction ratio (reserved vs actual peak), and the anomaly count
	// over every run the server's ledger retained.
	QueueWaitP50Ms  float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms  float64 `json:"queue_wait_p99_ms"`
	MispredictRatio float64 `json:"mispredict_ratio"`
	AnomalyCount    int     `json:"anomaly_count"`
	LedgerRuns      int     `json:"ledger_runs"`
}

// percentileMs picks the p-th percentile (0..1) of the samples, in ms.
func percentileMs(samples []time.Duration, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// gatewayClient is one tenant's closed-loop driver state.
type gatewayClient struct {
	mu        sync.Mutex
	refreshes []time.Duration
	reads     []time.Duration
	rejected  int
	fivexx    int
	succeeded int
}

// Gateway load-tests the refresh gateway end to end over real HTTP: N
// concurrent tenants, each with its own TPC-DS pipeline on ONE shared
// catalog budget, run a closed loop of trigger-and-wait refreshes followed
// by MV point reads. The report lands in BENCH_gateway.json: p50/p99
// refresh and read latency, admission outcomes, and the peak shared
// catalog bytes against the configured budget.
func Gateway(ctx context.Context, w io.Writer, cfg GatewayConfig) error {
	t := &tw{w: w}
	if cfg.Tenants < 1 {
		cfg.Tenants = 1
	}
	// Size the budget from one dataset so the bench scales with -sf.
	ds, err := tpcds.Generate(tpcds.GenConfig{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	slice := int64(float64(ds.TotalBytes()) * cfg.BudgetFrac)
	if slice < 64<<10 {
		slice = 64 << 10
	}
	budget := slice * int64(cfg.Tenants)

	srv, err := gateway.NewServer(gateway.Config{
		GlobalBudget: budget,
		DefaultSlice: slice,
		QueueLimit:   cfg.Tenants * cfg.Rounds,
		QueueTimeout: 2 * time.Minute,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Timeout = 5 * time.Minute

	t.printf("Gateway benchmark: %d tenants x %d rounds, TPC-DS sf %.1f per pipeline\n",
		cfg.Tenants, cfg.Rounds, cfg.ScaleFactor)
	t.printf("shared catalog budget %.1f MB (%.1f MB per-tenant slice)\n",
		float64(budget)/1e6, float64(slice)/1e6)

	// Register one pipeline per tenant; each seeds its own dataset.
	mvs := []string{"top_items", "category_report", "monthly_trend"}
	for i := 0; i < cfg.Tenants; i++ {
		spec := gateway.TPCDSSpec(fmt.Sprintf("pipe%d", i), fmt.Sprintf("tenant%d", i), cfg.ScaleFactor)
		spec.TenantSlice = slice
		if err := srv.Register(spec); err != nil {
			return err
		}
	}

	start := time.Now()
	clients := make([]*gatewayClient, cfg.Tenants)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Tenants; i++ {
		gc := &gatewayClient{}
		clients[i] = gc
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			pipe := fmt.Sprintf("pipe%d", id)
			for round := 0; round < cfg.Rounds; round++ {
				if ctx.Err() != nil {
					return
				}
				// Trigger-and-wait; a 429 backs off and retries the round.
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/v1/pipelines/"+pipe+"/refresh?wait=1", "application/json", nil)
				if err != nil {
					gc.mu.Lock()
					gc.fivexx++
					gc.mu.Unlock()
					continue
				}
				var st gateway.RunStatus
				_ = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				gc.mu.Lock()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					gc.rejected++
					round-- // closed loop: retry after backoff
				case resp.StatusCode >= 500:
					gc.fivexx++
				default:
					gc.refreshes = append(gc.refreshes, time.Since(t0))
					if st.State == gateway.StateSucceeded {
						gc.succeeded++
					}
				}
				gc.mu.Unlock()
				if resp.StatusCode == http.StatusTooManyRequests {
					time.Sleep(50 * time.Millisecond)
					continue
				}
				// MV point reads round-robin across the pipeline's outputs.
				for rd := 0; rd < cfg.ReadsPerRound; rd++ {
					mv := mvs[rd%len(mvs)]
					t1 := time.Now()
					resp, err := client.Get(ts.URL + "/v1/pipelines/" + pipe + "/mvs/" + mv + "?limit=10")
					if err != nil {
						gc.mu.Lock()
						gc.fivexx++
						gc.mu.Unlock()
						continue
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					gc.mu.Lock()
					if resp.StatusCode >= 500 {
						gc.fivexx++
					} else {
						gc.reads = append(gc.reads, time.Since(t1))
					}
					gc.mu.Unlock()
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	var refreshes, reads []time.Duration
	report := &GatewayReport{
		ScaleFactor: cfg.ScaleFactor,
		Tenants:     cfg.Tenants,
		Rounds:      cfg.Rounds,
		BudgetBytes: budget,
		SliceBytes:  slice,
		WallSeconds: wall.Seconds(),
	}
	for _, gc := range clients {
		refreshes = append(refreshes, gc.refreshes...)
		reads = append(reads, gc.reads...)
		report.Rejected429 += gc.rejected
		report.Server5xx += gc.fivexx
		report.RefreshSucceeded += gc.succeeded
	}
	report.Refreshes = len(refreshes)
	report.Reads = len(reads)
	report.RefreshP50Ms = percentileMs(refreshes, 0.50)
	report.RefreshP99Ms = percentileMs(refreshes, 0.99)
	report.ReadP50Ms = percentileMs(reads, 0.50)
	report.ReadP99Ms = percentileMs(reads, 0.99)

	stats := srv.Stats()
	report.PeakUsedBytes = stats.PeakUsedBytes
	report.PeakReserved = stats.PeakReserved
	report.QueueExpired = stats.Expired
	report.WithinBudget = stats.PeakUsedBytes <= budget && stats.PeakReserved <= budget

	// Roll up the server's run ledger: queue waits, anomalies and the
	// learned misprediction ratio averaged across the tenant pipelines.
	ledgerRuns := srv.RunHistory(ledger.Filter{})
	report.LedgerRuns = len(ledgerRuns)
	var queueWaits []time.Duration
	for _, rs := range ledgerRuns {
		queueWaits = append(queueWaits, time.Duration(rs.QueueWaitSeconds*float64(time.Second)))
		report.AnomalyCount += len(rs.Anomalies)
	}
	report.QueueWaitP50Ms = percentileMs(queueWaits, 0.50)
	report.QueueWaitP99Ms = percentileMs(queueWaits, 0.99)
	if pipes := srv.Ledger().Pipelines(); len(pipes) > 0 {
		for _, p := range pipes {
			report.MispredictRatio += srv.Ledger().MispredictRatio(p)
		}
		report.MispredictRatio /= float64(len(pipes))
	}

	t.printf("\n%-10s %8s %12s %12s\n", "metric", "count", "p50", "p99")
	t.printf("%-10s %8d %10.1fms %10.1fms\n", "refresh", report.Refreshes, report.RefreshP50Ms, report.RefreshP99Ms)
	t.printf("%-10s %8d %10.1fms %10.1fms\n", "mv read", report.Reads, report.ReadP50Ms, report.ReadP99Ms)
	t.printf("admission: %d refreshes succeeded, %d rejected (429), %d expired, %d server errors\n",
		report.RefreshSucceeded, report.Rejected429, report.QueueExpired, report.Server5xx)
	t.printf("ledger: %d runs, queue wait p50 %.1fms / p99 %.1fms, mispredict %.0f%%, %d anomalies\n",
		report.LedgerRuns, report.QueueWaitP50Ms, report.QueueWaitP99Ms,
		report.MispredictRatio*100, report.AnomalyCount)
	t.printf("peak shared catalog: %.2f MB used / %.2f MB reserved of %.2f MB budget (within budget: %v)\n",
		float64(report.PeakUsedBytes)/1e6, float64(report.PeakReserved)/1e6, float64(budget)/1e6, report.WithinBudget)

	path := filepath.Join(cfg.OutDir, "BENCH_gateway.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	t.printf("wrote %s\n", path)
	if t.err != nil {
		return t.err
	}
	if report.Server5xx > 0 {
		return fmt.Errorf("bench: gateway served %d 5xx responses", report.Server5xx)
	}
	if !report.WithinBudget {
		return fmt.Errorf("bench: peak catalog bytes exceeded the %d-byte budget", budget)
	}
	if report.RefreshSucceeded == 0 {
		return fmt.Errorf("bench: no refresh succeeded")
	}
	return nil
}
