package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/exec"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/metrics"
	"github.com/shortcircuit-db/sc/internal/opt"
	"github.com/shortcircuit-db/sc/internal/sim"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/tpcds"
	"github.com/shortcircuit-db/sc/internal/wlgen"
)

// EncodingConfig controls the compressed-encoding benchmark.
type EncodingConfig struct {
	// ScaleFactor sizes the generated TPC-DS dataset.
	ScaleFactor float64
	// ReadBW/WriteBW/Latency throttle the storage backend into the paper's
	// storage-bound regime; SleepScale compresses the simulated sleeps so
	// the benchmark stays fast (bytes written are unaffected).
	ReadBW, WriteBW float64
	Latency         time.Duration
	SleepScale      float64
	// MemoryFrac sizes the Memory Catalog as a fraction of dataset bytes.
	MemoryFrac float64
	Seed       int64
	// WlgenNodes sizes the synthetic workload for the modeled comparison.
	WlgenNodes int
	// OutDir receives BENCH_encoding.json; empty means current directory.
	OutDir string
}

// DefaultEncodingConfig mirrors DefaultRealConfig's NFS-like device with
// sleeps scaled down 50x.
func DefaultEncodingConfig() EncodingConfig {
	return EncodingConfig{
		ScaleFactor: 1.0,
		ReadBW:      60e6,
		WriteBW:     40e6,
		Latency:     2 * time.Millisecond,
		SleepScale:  0.02,
		MemoryFrac:  0.30,
		Seed:        42,
		WlgenNodes:  100,
	}
}

// EncodingRun is one measured (or modeled) configuration, serialized into
// BENCH_encoding.json so later PRs have a perf trajectory to compare
// against.
type EncodingRun struct {
	Workload         string  `json:"workload"`          // "tpcds-real" or "wlgen-sim"
	Mode             string  `json:"mode"`              // "v1", "raw" (v2 uncompressed), "auto" (v2 compressed)
	WallSeconds      float64 `json:"wall_seconds"`      // end-to-end refresh time
	BytesWritten     int64   `json:"bytes_written"`     // MV bytes moved to the throttled store
	CompressionRatio float64 `json:"compression_ratio"` // raw output bytes / bytes written
	PeakMemoryBytes  int64   `json:"peak_memory_bytes"` // Memory Catalog high-water mark
	FlaggedNodes     int     `json:"flagged_nodes"`     // nodes the optimizer kept in memory
	Fallbacks        int     `json:"fallbacks"`         // flagged outputs that did not fit
	ResidentMVs      int     `json:"resident_mvs"`      // flagged minus fallbacks
}

// EncodingReport is the machine-readable result of the benchmark.
type EncodingReport struct {
	ScaleFactor          float64       `json:"scale_factor"`
	MemoryBytes          int64         `json:"memory_bytes"`
	Runs                 []EncodingRun `json:"runs"`
	TPCDSBytesReductionX float64       `json:"tpcds_bytes_reduction_x"` // raw / auto bytes written
	WlgenFlaggedDelta    int           `json:"wlgen_flagged_delta"`     // extra resident MVs with compression
}

// Encoding benchmarks the compressed columnar subsystem: the TPC-DS real
// workload runs on the real engine against a throttled store with encoding
// disabled (v2 raw), legacy v1, and enabled (v2 auto), reporting bytes
// written and catalog residency; the wlgen synthetic workload repeats the
// comparison on the calibrated simulator using the measured compression
// ratio. Results land in the table writer and in BENCH_encoding.json.
func Encoding(ctx context.Context, w io.Writer, cfg EncodingConfig) error {
	t := &tw{w: w}
	ds, err := tpcds.Generate(tpcds.GenConfig{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	memory := int64(float64(ds.TotalBytes()) * cfg.MemoryFrac)
	device := costmodel.DeviceProfile{
		DiskReadBW: cfg.ReadBW, DiskWriteBW: cfg.WriteBW, DiskLatency: cfg.Latency,
		MemReadBW: 10e9, MemWriteBW: 10e9, ComputeScale: 1,
	}
	report := &EncodingReport{ScaleFactor: cfg.ScaleFactor, MemoryBytes: memory}

	t.printf("Encoding benchmark: TPC-DS sf %.1f (%.1f MB base), Memory Catalog %.1f MB\n",
		cfg.ScaleFactor, float64(ds.TotalBytes())/1e6, float64(memory)/1e6)
	t.printf("\n%-12s %-6s %12s %12s %10s %10s %9s\n",
		"workload", "mode", "bytes", "ratio", "wall", "peak MB", "resident")

	modes := []struct {
		name string
		enc  *encoding.Options
	}{
		{"raw", &encoding.Options{Mode: encoding.ModeRaw}},
		{"v1", nil},
		{"auto", &encoding.Options{Mode: encoding.ModeAuto}},
	}
	stores := make(map[string]storage.Store)
	measuredRatio := 1.0
	for _, m := range modes {
		run, store, err := encodingRealRun(ctx, cfg, ds, memory, device, m.enc)
		if err != nil {
			return fmt.Errorf("bench: encoding %s: %w", m.name, err)
		}
		run.Mode = m.name
		stores[m.name] = store
		report.Runs = append(report.Runs, *run)
		if m.name == "auto" {
			measuredRatio = run.CompressionRatio
		}
		t.printf("%-12s %-6s %12d %11.2fx %10s %10.2f %9d\n",
			run.Workload, run.Mode, run.BytesWritten, run.CompressionRatio,
			time.Duration(run.WallSeconds*float64(time.Second)).Round(time.Millisecond),
			float64(run.PeakMemoryBytes)/1e6, run.ResidentMVs)
	}

	// Correctness across formats: all three runs materialized the same MVs.
	wl := tpcds.RealWorkload()
	g, _, err := wl.BuildGraph()
	if err != nil {
		return err
	}
	if err := verifySameOutputs(stores["raw"], stores["auto"], g); err != nil {
		return err
	}
	if err := verifySameOutputs(stores["v1"], stores["auto"], g); err != nil {
		return err
	}

	var rawRun, autoRun *EncodingRun
	for i := range report.Runs {
		switch report.Runs[i].Mode {
		case "raw":
			rawRun = &report.Runs[i]
		case "auto":
			autoRun = &report.Runs[i]
		}
	}
	report.TPCDSBytesReductionX = float64(rawRun.BytesWritten) / float64(autoRun.BytesWritten)
	t.printf("\nTPC-DS bytes-written reduction (auto vs raw): %.2fx\n", report.TPCDSBytesReductionX)
	t.printf("verified: all %d MVs identical across raw/v1/auto runs\n", g.Len())

	// Synthetic wlgen workload on the simulator: apply the measured ratio
	// to model compressed catalog entries and storage transfers.
	wlRuns, err := encodingWlgenRuns(ctx, cfg, device, measuredRatio)
	if err != nil {
		return err
	}
	for _, run := range wlRuns {
		report.Runs = append(report.Runs, run)
		t.printf("%-12s %-6s %12d %11.2fx %10s %10.2f %9d\n",
			run.Workload, run.Mode, run.BytesWritten, run.CompressionRatio,
			time.Duration(run.WallSeconds*float64(time.Second)).Round(time.Millisecond),
			float64(run.PeakMemoryBytes)/1e6, run.ResidentMVs)
	}
	report.WlgenFlaggedDelta = wlRuns[1].FlaggedNodes - wlRuns[0].FlaggedNodes
	t.printf("wlgen catalog-residency delta with compression: +%d flagged nodes\n", report.WlgenFlaggedDelta)

	path := filepath.Join(cfg.OutDir, "BENCH_encoding.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	t.printf("wrote %s\n", path)
	return t.err
}

// encodingRealRun executes observe → optimize → refresh on the real engine
// with one encoding configuration and measures the optimized refresh.
func encodingRealRun(ctx context.Context, cfg EncodingConfig, ds *tpcds.Dataset, memory int64, device costmodel.DeviceProfile, enc *encoding.Options) (*EncodingRun, storage.Store, error) {
	newStore := func() (storage.Store, error) {
		inner := storage.NewMemStore()
		if err := ds.Save(inner, exec.SaveTable); err != nil {
			return nil, err
		}
		return &storage.Throttled{
			Inner: inner, ReadBWBps: cfg.ReadBW, WriteBWBps: cfg.WriteBW,
			Latency: cfg.Latency, SleepScale: cfg.SleepScale,
		}, nil
	}
	wl := tpcds.RealWorkload()
	g, _, err := wl.BuildGraph()
	if err != nil {
		return nil, nil, err
	}
	topo, err := g.TopoSort()
	if err != nil {
		return nil, nil, err
	}

	// Pass 1: unoptimized, collecting sizes (raw and encoded).
	store1, err := newStore()
	if err != nil {
		return nil, nil, err
	}
	ctl1 := &exec.Controller{Store: store1, Mem: memcat.New(0), Encoding: enc}
	base, err := ctl1.Run(ctx, wl, g, core.NewPlan(topo))
	if err != nil {
		return nil, nil, err
	}
	md := metrics.NewStore()
	for _, n := range base.Nodes {
		md.Record(metrics.Observation{
			Name: n.Name, OutputBytes: n.OutputBytes, EncodedBytes: n.EncodedSize,
			ReadTime: n.ReadTime, WriteTime: n.WriteTime, ComputeTime: n.ComputeTime,
			When: time.Now(),
		})
	}

	// Optimize with the footprints this configuration actually produces.
	raw := md.Sizes(g, 1<<20)
	prob := &core.Problem{G: g, Memory: memory}
	if enc != nil {
		encSizes := md.EncodedSizes(g, 1<<20)
		prob.Sizes = encSizes
		prob.Scores = md.ScoresSized(g, raw, encSizes, device)
	} else {
		prob.Sizes = raw
		prob.Scores = md.Scores(g, raw, device)
	}
	plan, _, err := opt.Solve(ctx, prob, opt.Options{})
	if err != nil {
		return nil, nil, err
	}

	// Pass 2: the measured refresh.
	store2, err := newStore()
	if err != nil {
		return nil, nil, err
	}
	ctl2 := &exec.Controller{Store: store2, Mem: memcat.New(memory), Encoding: enc}
	res, err := ctl2.Run(ctx, wl, g, plan)
	if err != nil {
		return nil, nil, err
	}

	var rawBytes, written int64
	for _, n := range res.Nodes {
		rawBytes += n.OutputBytes
		written += n.EncodedSize
	}
	ratio := 1.0
	if written > 0 {
		ratio = float64(rawBytes) / float64(written)
	}
	return &EncodingRun{
		Workload:         "tpcds-real",
		WallSeconds:      res.Total.Seconds(),
		BytesWritten:     written,
		CompressionRatio: ratio,
		PeakMemoryBytes:  res.PeakMemory,
		FlaggedNodes:     len(plan.FlaggedIDs()),
		Fallbacks:        res.FallbackWrites,
		ResidentMVs:      len(plan.FlaggedIDs()) - res.FallbackWrites,
	}, store2, nil
}

// encodingWlgenRuns repeats the comparison on a synthetic wlgen DAG with
// the calibrated simulator: compressed entries shrink both the knapsack
// weights and the storage transfers by the measured ratio.
func encodingWlgenRuns(ctx context.Context, cfg EncodingConfig, device costmodel.DeviceProfile, ratio float64) ([]EncodingRun, error) {
	gen, err := wlgen.Generate(wlgen.Params{Nodes: cfg.WlgenNodes, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	var totalRaw int64
	for _, n := range gen.Workload.Nodes {
		totalRaw += n.OutputBytes
	}
	memory := int64(float64(totalRaw) * cfg.MemoryFrac)

	runOne := func(r float64) (*EncodingRun, error) {
		w := &sim.Workload{G: gen.Workload.G}
		var sizes []int64
		for _, n := range gen.Workload.Nodes {
			node := n
			node.OutputBytes = int64(float64(n.OutputBytes) / r)
			if node.OutputBytes < 1 {
				node.OutputBytes = 1
			}
			w.Nodes = append(w.Nodes, node)
			sizes = append(sizes, node.OutputBytes)
		}
		prob := &core.Problem{
			G:      w.G,
			Sizes:  sizes,
			Scores: costmodel.Scores(device, w.G, sizes),
			Memory: memory,
		}
		plan, _, err := opt.Solve(ctx, prob, opt.Options{})
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(ctx, w, plan, sim.Config{Device: device, Memory: memory})
		if err != nil {
			return nil, err
		}
		var written int64
		for _, n := range w.Nodes {
			written += n.OutputBytes
		}
		return &EncodingRun{
			Workload:         "wlgen-sim",
			WallSeconds:      res.Total,
			BytesWritten:     written,
			CompressionRatio: r,
			PeakMemoryBytes:  res.PeakMemory,
			FlaggedNodes:     len(plan.FlaggedIDs()),
			Fallbacks:        res.Fallbacks,
			ResidentMVs:      len(plan.FlaggedIDs()) - res.Fallbacks,
		}, nil
	}

	rawRun, err := runOne(1)
	if err != nil {
		return nil, err
	}
	rawRun.Mode = "raw"
	autoRun, err := runOne(ratio)
	if err != nil {
		return nil, err
	}
	autoRun.Mode = "auto"
	return []EncodingRun{*rawRun, *autoRun}, nil
}
