package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/costmodel"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/exec"
	"github.com/shortcircuit-db/sc/internal/memcat"
	"github.com/shortcircuit-db/sc/internal/metrics"
	"github.com/shortcircuit-db/sc/internal/opt"
	"github.com/shortcircuit-db/sc/internal/storage"
	"github.com/shortcircuit-db/sc/internal/tpcds"
)

// RealConfig controls the real-engine validation run.
type RealConfig struct {
	// ScaleFactor sizes the generated dataset (1.0 ≈ 20k fact rows).
	ScaleFactor float64
	// ReadBW/WriteBW throttle the storage backend so laptop hardware
	// reproduces the paper's storage-bound regime. Zero disables.
	ReadBW, WriteBW float64
	Latency         time.Duration
	// MemoryFrac sizes the Memory Catalog as a fraction of dataset bytes.
	MemoryFrac float64
	Seed       int64
}

// DefaultRealConfig throttles storage to an NFS-like 60/40 MB/s device.
func DefaultRealConfig() RealConfig {
	return RealConfig{
		ScaleFactor: 1.0,
		ReadBW:      60e6,
		WriteBW:     40e6,
		Latency:     2 * time.Millisecond,
		MemoryFrac:  0.30,
		Seed:        42,
	}
}

// Real runs the paper's mechanism end to end on the real engine: generate
// data, execute the I/O 1-style SQL workload unoptimized to collect
// execution metadata (§III-A), optimize with the observed sizes, re-run
// with S/C's plan, and report measured wall-clock speedup. Cancelling ctx
// aborts the run between nodes.
func Real(ctx context.Context, w io.Writer, cfg RealConfig) error {
	t := &tw{w: w}
	ds, err := tpcds.Generate(tpcds.GenConfig{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	newStore := func() (storage.Store, error) {
		inner := storage.NewMemStore()
		if err := ds.Save(inner, exec.SaveTable); err != nil {
			return nil, err
		}
		if cfg.ReadBW == 0 && cfg.WriteBW == 0 && cfg.Latency == 0 {
			return inner, nil
		}
		return &storage.Throttled{
			Inner: inner, ReadBWBps: cfg.ReadBW, WriteBWBps: cfg.WriteBW, Latency: cfg.Latency,
		}, nil
	}
	wl := tpcds.RealWorkload()
	g, _, err := wl.BuildGraph()
	if err != nil {
		return err
	}
	topo, err := g.TopoSort()
	if err != nil {
		return err
	}
	memory := int64(float64(ds.TotalBytes()) * cfg.MemoryFrac)

	t.printf("Real-engine validation: %d base tables (%.1f MB), %d MV nodes, Memory Catalog %.1f MB\n",
		len(ds.Tables), float64(ds.TotalBytes())/1e6, g.Len(), float64(memory)/1e6)

	// Pass 1: unoptimized run, collecting execution metadata.
	store1, err := newStore()
	if err != nil {
		return err
	}
	ctl1 := &exec.Controller{Store: store1, Mem: memcat.New(0)}
	base, err := ctl1.Run(ctx, wl, g, core.NewPlan(topo))
	if err != nil {
		return err
	}
	md := metrics.NewStore()
	for _, n := range base.Nodes {
		md.Record(metrics.Observation{
			Name: n.Name, OutputBytes: n.OutputBytes,
			ReadTime: n.ReadTime, WriteTime: n.WriteTime, ComputeTime: n.ComputeTime,
			When: time.Now(),
		})
	}

	// Optimize with observed sizes and a device profile matching the
	// throttled store.
	device := costmodel.DeviceProfile{
		DiskReadBW: cfg.ReadBW, DiskWriteBW: cfg.WriteBW, DiskLatency: cfg.Latency,
		MemReadBW: 10e9, MemWriteBW: 10e9, ComputeScale: 1,
	}
	if cfg.ReadBW == 0 {
		device = costmodel.PaperProfile()
	}
	sizes := md.Sizes(g, 1<<20)
	prob := &core.Problem{G: g, Sizes: sizes, Scores: md.Scores(g, sizes, device), Memory: memory}
	plan, st, err := opt.Solve(ctx, prob, opt.Options{})
	if err != nil {
		return err
	}
	t.printf("optimizer: flagged %d of %d nodes, score %.2fs, %d iterations (%.1fms)\n",
		len(plan.FlaggedIDs()), g.Len(), st.Score, st.Iterations,
		float64(st.Elapsed.Microseconds())/1000)

	// Pass 2: S/C run.
	store2, err := newStore()
	if err != nil {
		return err
	}
	ctl2 := &exec.Controller{Store: store2, Mem: memcat.New(memory)}
	ours, err := ctl2.Run(ctx, wl, g, plan)
	if err != nil {
		return err
	}

	t.printf("\n%-14s %12s %12s %12s %12s\n", "run", "total", "read", "compute", "write(blk)")
	var baseWrite, oursWrite time.Duration
	for _, n := range base.Nodes {
		baseWrite += n.WriteTime
	}
	for _, n := range ours.Nodes {
		oursWrite += n.WriteTime
	}
	t.printf("%-14s %12v %12v %12v %12v\n", "no opt", base.Total.Round(time.Millisecond),
		base.TotalRead().Round(time.Millisecond), base.TotalCompute().Round(time.Millisecond), baseWrite.Round(time.Millisecond))
	t.printf("%-14s %12v %12v %12v %12v\n", "S/C", ours.Total.Round(time.Millisecond),
		ours.TotalRead().Round(time.Millisecond), ours.TotalCompute().Round(time.Millisecond), oursWrite.Round(time.Millisecond))
	t.printf("\nmeasured end-to-end speedup: %.2fx (peak Memory Catalog %.1f MB, fallbacks %d)\n",
		float64(base.Total)/float64(ours.Total), float64(ours.PeakMemory)/1e6, ours.FallbackWrites)

	// Correctness: both runs must materialize identical MVs.
	if err := verifySameOutputs(store1, store2, g); err != nil {
		return err
	}
	t.printf("verified: all %d materialized views byte-identical across runs\n", g.Len())
	return t.err
}

func verifySameOutputs(a, b storage.Store, g *dag.Graph) error {
	for i := 0; i < g.Len(); i++ {
		name := g.Name(dag.NodeID(i))
		ta, err := exec.LoadTable(a, name)
		if err != nil {
			return fmt.Errorf("bench: load %s from baseline: %w", name, err)
		}
		tb, err := exec.LoadTable(b, name)
		if err != nil {
			return fmt.Errorf("bench: load %s from S/C run: %w", name, err)
		}
		if ta.NumRows() != tb.NumRows() || !ta.Schema.Equal(tb.Schema) {
			return fmt.Errorf("bench: %s differs between runs", name)
		}
		for r := 0; r < ta.NumRows(); r++ {
			ra, rb := ta.Row(r), tb.Row(r)
			for c := range ra {
				if ra[c] != rb[c] {
					return fmt.Errorf("bench: %s row %d differs between runs", name, r)
				}
			}
		}
	}
	return nil
}
