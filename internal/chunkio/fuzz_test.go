package chunkio

import (
	"testing"

	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/table"
)

// FuzzBuilder derives a table, a chunk layout, a selection and a builder
// configuration from the fuzz input, drives the source chunks through the
// builder's append paths, and requires the decoded output to equal a
// direct gather of the selected rows. It hunts for row drops, code/value
// space transitions that lose data, misaligned flushes and dictionary
// overflow corruption.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{1, 40, 8, 3, 0xAA, 0x55, 16, 2})
	f.Add([]byte{2, 200, 64, 1, 0xFF, 0x00, 4, 0})
	f.Add([]byte{3, 13, 1, 30, 0x0F, 0xF0, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		nCols := 1 + int(data[0]%3)
		n := int(data[1])
		chunkRows := 1 + int(data[2])
		card := 1 + int(data[3])
		target := 1 + int(data[6])
		maxEntries := int(data[7])
		sel := data[8:]

		types := []table.Type{table.Int, table.Str, table.Float}
		cols := make([]table.Column, nCols)
		for c := range cols {
			cols[c] = table.Column{Name: string(rune('a' + c)), Type: types[(int(data[0])+c)%3]}
		}
		tb := table.New(table.NewSchema(cols...))
		for r := 0; r < n; r++ {
			for c := range cols {
				// Values derived from the input bytes, modulo a cardinality
				// that decides which codecs the auto-selector picks.
				x := int(data[(r+c*7)%len(data)]) % card
				switch cols[c].Type {
				case table.Int:
					tb.Cols[c].Ints = append(tb.Cols[c].Ints, int64(x))
				case table.Float:
					tb.Cols[c].Floats = append(tb.Cols[c].Floats, float64(x)/4)
				default:
					tb.Cols[c].Strs = append(tb.Cols[c].Strs, string(byte('A'+x%26)))
				}
			}
		}
		ct, err := encoding.FromTable(tb, encoding.Options{ChunkRows: chunkRows})
		if err != nil {
			t.Fatalf("FromTable: %v", err)
		}
		var sess *Session
		if maxEntries > 0 {
			sess = NewSession()
			sess.MaxEntries = maxEntries
			sess.BeginRun()
		}
		b := NewBuilder(tb.Schema, encoding.Options{ChunkRows: target}, sess, "fuzz#1")
		global := []int{}
		base := 0
		for g, rows := range ct.RowGroups() {
			pass := len(sel) > 0 && sel[g%len(sel)]&1 != 0
			if pass {
				getChunk := func(ci int) encoding.Chunk { return ct.Cols[ci][g] }
				if err := b.PassGroup(getChunk, rows); err != nil {
					t.Fatalf("PassGroup: %v", err)
				}
				for i := 0; i < rows; i++ {
					global = append(global, base+i)
				}
			} else {
				var idxs []int32
				for i := 0; i < rows; i++ {
					bit := 0
					if len(sel) > 0 {
						bit = int(sel[(base+i)/8%len(sel)] >> uint((base+i)%8) & 1)
					}
					if bit == 1 {
						idxs = append(idxs, int32(i))
						global = append(global, base+i)
					}
				}
				if len(idxs) > 0 {
					fuzzFeed(t, b, ct, g, idxs)
				}
			}
			if g%2 == 0 {
				if err := b.FlushFull(); err != nil {
					t.Fatalf("FlushFull: %v", err)
				}
			}
			base += rows
		}
		out, err := b.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("invalid output: %v", err)
		}
		if out.RowGroups() == nil {
			t.Fatal("misaligned output row groups")
		}
		got, err := out.Table()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		want := gather(tb, global)
		if got.NumRows() != want.NumRows() {
			t.Fatalf("rows: got %d, want %d", got.NumRows(), want.NumRows())
		}
		for r := 0; r < want.NumRows(); r++ {
			for c := range want.Cols {
				if want.Cols[c].Value(r) != got.Cols[c].Value(r) {
					t.Fatalf("row %d col %d: got %v, want %v", r, c, got.Cols[c].Value(r), want.Cols[c].Value(r))
				}
			}
		}
	})
}

// fuzzFeed mirrors the kernels' per-chunk walk without failing the fuzz
// run on expected errors.
func fuzzFeed(t *testing.T, b *Builder, ct *encoding.Compressed, group int, sel []int32) {
	t.Helper()
	for ci := range ct.Cols {
		ch := ct.Cols[ci][group]
		typ := ct.Schema.Cols[ci].Type
		var err error
		switch ch.Codec {
		case encoding.Dict:
			var dv *encoding.DictView
			if dv, err = encoding.ParseDict(ch, typ); err == nil {
				err = b.AppendDict(ci, dv, sel)
			}
		case encoding.RLE:
			var runs []encoding.Run
			if runs, err = encoding.ParseRuns(ch, typ); err == nil {
				err = b.AppendRuns(ci, runs, sel)
			}
		default:
			var vec *table.Vector
			if vec, err = encoding.DecodeChunk(ch, typ); err == nil {
				err = b.AppendVector(ci, vec, sel)
			}
		}
		if err != nil {
			t.Fatalf("feed column %d: %v", ci, err)
		}
	}
}
