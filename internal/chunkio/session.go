// Package chunkio is S/C's streaming compressed-output subsystem: it lets
// the compressed-execution kernels (internal/kernels) *emit* encoding.
// Compressed chunks as cheaply as they read them, so an operator tree's
// intermediates stay in code space end to end instead of materializing a
// full table between every pair of operators.
//
// Two pieces cooperate:
//
//   - Builder assembles a compressed table incrementally from whatever a
//     kernel has in hand — whole untouched chunks (passthrough), gathered
//     dictionary codes (the chunk's dictionary is remapped once through a
//     shared dictionary and the selected codes flow through unchanged),
//     run-length runs, or, when nothing cheaper applies, materialized
//     values that are re-encoded with the same per-chunk codec
//     auto-selection FromTable uses;
//   - Session carries the shared dictionaries across refresh runs, keyed
//     by (producer, column): a recurring pipeline re-derives the same
//     category dictionaries every night, and reusing yesterday's entries
//     turns tonight's dictionary build into pure id lookups.
//
// Decoding a Builder output always yields exactly the rows that were
// appended, in order — byte-identical to the table the materializing path
// would have produced.
package chunkio

import (
	"sync"

	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/table"
)

// DefaultMaxEntries caps a shared dictionary's cardinality. A column whose
// distinct-value count outgrows the cap stops being dictionary material —
// per-chunk codec auto-selection would not pick dict for it either — so the
// Builder falls back to value-space re-encoding instead of growing an
// unbounded session-lifetime map.
const DefaultMaxEntries = 1 << 16

// Session is the cross-run state of the compressed intermediate pipeline:
// one shared dictionary per (producer, column). It is safe for concurrent
// use by the Controller's worker pool — distinct nodes use distinct
// dictionaries, and each dictionary serializes its own access.
//
// Invalidation: a dictionary is discarded when its column's name or type
// changes (schema drift across runs); entries otherwise only accumulate,
// bounded by MaxEntries per column.
type Session struct {
	// MaxEntries caps each shared dictionary's cardinality; zero means
	// DefaultMaxEntries.
	MaxEntries int

	mu    sync.Mutex
	run   uint64
	dicts map[dictKey]*Shared
}

type dictKey struct {
	producer string
	col      int
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{dicts: make(map[dictKey]*Shared)}
}

// BeginRun marks the start of one refresh run. Dictionary entries present
// before this point are "yesterday's": chunks served entirely from them
// count as dictionary reuse (Counters.DictReused).
func (s *Session) BeginRun() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.run++
	s.mu.Unlock()
}

// Len reports the number of cached dictionaries (tests, stats).
func (s *Session) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dicts)
}

// shared returns the session dictionary for one producer column, creating
// or invalidating as needed.
func (s *Session) shared(producer string, ci int, col table.Column, maxEntries int) *Shared {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := dictKey{producer: producer, col: ci}
	sh := s.dicts[key]
	if sh == nil || sh.typ != col.Type || sh.colName != col.Name {
		sh = newShared(col.Type, col.Name, maxEntries)
		s.dicts[key] = sh
	}
	sh.attach(s.run)
	return sh
}

// Shared is a growing dictionary of column values shared across chunks and
// across runs. Ids are dense, assigned in insertion order. It holds INT or
// STRING values — the types the dict codec encodes.
type Shared struct {
	mu      sync.Mutex
	typ     table.Type
	colName string
	max     int
	ints    map[int64]int32
	strs    map[string]int32
	entsI   []int64
	entsS   []string
	// base is the entry count when the current run attached: ids below it
	// predate this run, so a chunk using only those ids was served entirely
	// by the cache.
	base int
	run  uint64
}

func newShared(t table.Type, name string, max int) *Shared {
	if max <= 0 {
		max = DefaultMaxEntries
	}
	sh := &Shared{typ: t, colName: name, max: max}
	if t == table.Int {
		sh.ints = make(map[int64]int32)
	} else {
		sh.strs = make(map[string]int32)
	}
	return sh
}

// NewShared returns a standalone dictionary (no session), used by builders
// running without cross-run state. max <= 0 means DefaultMaxEntries.
func NewShared(t table.Type, max int) *Shared {
	return newShared(t, "", max)
}

// attach snapshots the reuse baseline once per run.
func (sh *Shared) attach(run uint64) {
	sh.mu.Lock()
	if sh.run != run {
		sh.run = run
		sh.base = sh.len()
	}
	sh.mu.Unlock()
}

func (sh *Shared) len() int {
	if sh.typ == table.Int {
		return len(sh.entsI)
	}
	return len(sh.entsS)
}

// Len returns the number of distinct values interned.
func (sh *Shared) Len() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.len()
}

// Base returns the reuse baseline: ids below it predate the current run.
func (sh *Shared) Base() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.base
}

// addIntLocked interns one int value; ok is false on overflow.
func (sh *Shared) addIntLocked(x int64) (int32, bool) {
	if id, ok := sh.ints[x]; ok {
		return id, true
	}
	if len(sh.entsI) >= sh.max {
		return 0, false
	}
	id := int32(len(sh.entsI))
	sh.ints[x] = id
	sh.entsI = append(sh.entsI, x)
	return id, true
}

// addStrLocked interns one string value; ok is false on overflow.
func (sh *Shared) addStrLocked(s string) (int32, bool) {
	if id, ok := sh.strs[s]; ok {
		return id, true
	}
	if len(sh.entsS) >= sh.max {
		return 0, false
	}
	id := int32(len(sh.entsS))
	sh.strs[s] = id
	sh.entsS = append(sh.entsS, s)
	return id, true
}

// Add interns one value of the dictionary's type; ok is false when the
// dictionary is full and the value is new (overflow).
func (sh *Shared) Add(v table.Value) (int32, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.typ == table.Int {
		return sh.addIntLocked(v.I)
	}
	return sh.addStrLocked(v.S)
}

// Value returns the entry for a shared id.
func (sh *Shared) Value(id int32) table.Value {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.typ == table.Int {
		return table.IntValue(sh.entsI[id])
	}
	return table.StrValue(sh.entsS[id])
}

// valueSize returns the raw in-memory footprint of one entry, matching
// table.Vector.ByteSize accounting.
func (sh *Shared) valueSize(id int32) int64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.typ == table.Int {
		return 8
	}
	return int64(len(sh.entsS[id])) + 16
}

// remapDict interns every entry of a source chunk's dictionary, returning
// the shared id per local code — the KeyDict-style translation that lets
// gathered codes pass through unchanged. ok is false on overflow (entries
// interned before the overflow remain; they are harmless).
func (sh *Shared) remapDict(dv *encoding.DictView) ([]int32, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]int32, dv.Card())
	if sh.typ == table.Int {
		for c, x := range dv.Ints {
			id, ok := sh.addIntLocked(x)
			if !ok {
				return nil, false
			}
			out[c] = id
		}
	} else {
		for c, s := range dv.Strs {
			id, ok := sh.addStrLocked(s)
			if !ok {
				return nil, false
			}
			out[c] = id
		}
	}
	return out, true
}

// dense translates pending shared ids into a dense chunk-local dictionary
// in first-use order — exactly the layout dictCodec.Encode would have built
// from the values, produced without touching a value. scratch is a caller-
// owned grow-only remap buffer. maxUsed is the largest shared id seen, the
// reuse test against Base.
func (sh *Shared) dense(codes []int32, scratch *[]int32) (ints []int64, strs []string, out []uint64, maxUsed int32) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	maxUsed = -1
	for _, id := range codes {
		if id > maxUsed {
			maxUsed = id
		}
	}
	need := int(maxUsed) + 1
	if cap(*scratch) < need {
		*scratch = make([]int32, need)
	}
	remap := (*scratch)[:need]
	for i := range remap {
		remap[i] = -1
	}
	out = make([]uint64, len(codes))
	for k, id := range codes {
		local := remap[id]
		if local < 0 {
			if sh.typ == table.Int {
				local = int32(len(ints))
				ints = append(ints, sh.entsI[id])
			} else {
				local = int32(len(strs))
				strs = append(strs, sh.entsS[id])
			}
			remap[id] = local
		}
		out[k] = uint64(local)
	}
	return ints, strs, out, maxUsed
}
