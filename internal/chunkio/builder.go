package chunkio

import (
	"fmt"

	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/table"
)

// Counters reports what one Builder did, in units the kernel Stats and the
// benchmark JSON surface directly.
type Counters struct {
	// Passthrough counts column-chunks reused verbatim from the source —
	// zero encode and zero decode work.
	Passthrough int64
	// CodeChunks counts column-chunks emitted from gathered dictionary
	// codes: values never materialized, the dictionary was remapped instead
	// of rebuilt.
	CodeChunks int64
	// Reencoded counts column-chunks encoded from materialized values with
	// per-chunk codec auto-selection — the work the code-space paths avoid.
	Reencoded int64
	// DictReused counts code-space chunks whose every dictionary entry
	// predated the current run: the session cache supplied the whole
	// dictionary and the chunk's encode was pure id gathering.
	DictReused int64
	// MaterializedBytes counts raw bytes the builder itself had to
	// materialize (code→value conversions on dictionary overflow). Bytes
	// decoded by the caller before appending are the caller's to count.
	MaterializedBytes int64
}

// Builder assembles one compressed table incrementally. Columns advance in
// lockstep: between flush points every column must receive the same number
// of rows (the selection the kernels apply is shared across columns), which
// is what keeps the emitted chunk boundaries aligned — RowGroups on the
// result never returns nil, so downstream kernels can consume it directly.
//
// Appenders pick the cheapest representation the source allows:
//
//	PassGroup    whole chunks, reused verbatim (full-selection groups)
//	AppendDict   gathered dictionary codes, remapped through the shared dict
//	AppendRuns   RLE runs; INT/STRING run values intern to codes
//	AppendVector decoded values (gathered by selection)
//	AppendValue  one decoded value (late materialization)
//	AppendCode   one shared-dictionary id (code-space joins; see Remap)
//
// Callers should invoke FlushFull at row-aligned points (for instance after
// each input row group) to bound pending memory; Finish flushes the
// remainder and returns the table.
type Builder struct {
	sch    table.Schema
	opts   encoding.Options
	sess   *Session
	target int
	cols   []colBuf
	out    [][]encoding.Chunk
	nrows  int
	raw    int64

	// Counters accumulates this builder's work; read it after Finish.
	Counters Counters
}

// colBuf is one column's pending state: gathered shared-dictionary codes
// (code space) until something forces materialized values (value space).
// The mode resets to code space after every flush.
type colBuf struct {
	typ    table.Type
	shared *Shared       // nil for FLOAT columns
	warm   bool          // shared holds entries from an earlier run
	codes  []int32       // pending shared ids (code space)
	vals   *table.Vector // pending values (value space; non-nil once active)
	dense  []int32       // scratch for code densification, grow-only
	// entSize memoizes each shared id's raw footprint as this builder
	// learns it (Remap, interning), so per-row accounting in AppendCode
	// never takes the shared dictionary's lock.
	entSize []int64
}

// noteSize memoizes one shared id's raw footprint.
func (cb *colBuf) noteSize(id int32, sz int64) {
	for int(id) >= len(cb.entSize) {
		cb.entSize = append(cb.entSize, 0)
	}
	cb.entSize[id] = sz
}

func (cb *colBuf) pending() int {
	if cb.vals != nil {
		return cb.vals.Len()
	}
	return len(cb.codes)
}

// NewBuilder returns a builder for one producer's output. opts supplies the
// codec policy for re-encoded chunks and the target chunk size. sess may be
// nil (no cross-run dictionary reuse); producer keys the session
// dictionaries and should uniquely identify the operator within the
// pipeline (e.g. "node#2").
func NewBuilder(sch table.Schema, opts encoding.Options, sess *Session, producer string) *Builder {
	target := opts.ChunkRows
	if target <= 0 {
		target = encoding.DefaultChunkRows
	}
	if target > encoding.MaxChunkRows {
		target = encoding.MaxChunkRows
	}
	b := &Builder{
		sch:    sch,
		opts:   opts,
		sess:   sess,
		target: target,
		cols:   make([]colBuf, len(sch.Cols)),
		out:    make([][]encoding.Chunk, len(sch.Cols)),
	}
	for ci, col := range sch.Cols {
		cb := &b.cols[ci]
		cb.typ = col.Type
		if col.Type == table.Int || col.Type == table.Str {
			if sess != nil {
				cb.shared = sess.shared(producer, ci, col, sess.MaxEntries)
			} else {
				cb.shared = NewShared(col.Type, 0)
			}
			cb.warm = cb.shared.Base() > 0
		}
	}
	return b
}

// PassGroup appends one aligned row group verbatim: chunk(ci) supplies each
// column's encoded chunk, reused as-is. Pending gathered rows are flushed
// first so chunk boundaries stay aligned across columns. Every chunk must
// hold exactly rows rows.
func (b *Builder) PassGroup(chunk func(ci int) encoding.Chunk, rows int) error {
	if rows == 0 {
		return nil
	}
	if err := b.flush(); err != nil {
		return err
	}
	for ci := range b.cols {
		ch := chunk(ci)
		if ch.Rows != rows {
			return fmt.Errorf("chunkio: passthrough chunk has %d rows, group has %d", ch.Rows, rows)
		}
		rb, err := encoding.ChunkRawBytes(ch, b.cols[ci].typ)
		if err != nil {
			return err
		}
		b.out[ci] = append(b.out[ci], ch)
		b.raw += rb
		b.Counters.Passthrough++
	}
	b.nrows += rows
	return nil
}

// Remap translates a source chunk's dictionary into the column's shared
// dictionary, for use with AppendCode. It returns nil, false when the
// column cannot take codes right now — FLOAT column, value space already
// active for the pending chunk, or dictionary overflow — in which case the
// caller appends values instead.
func (b *Builder) Remap(ci int, dv *encoding.DictView) ([]int32, bool) {
	cb := &b.cols[ci]
	if cb.shared == nil || cb.vals != nil {
		return nil, false
	}
	ids, ok := cb.shared.remapDict(dv)
	if !ok {
		return nil, false
	}
	for c, sz := range entrySizes(dv) {
		cb.noteSize(ids[c], sz)
	}
	return ids, true
}

// AppendCode appends one row by shared-dictionary id (from Remap). If the
// column has fallen to value space since the remap, the id is materialized
// through the shared dictionary instead.
func (b *Builder) AppendCode(ci int, id int32) {
	cb := &b.cols[ci]
	if cb.vals != nil {
		v := cb.shared.Value(id)
		b.Counters.MaterializedBytes += valueSizeOf(v)
		b.pushVal(cb, v)
		return
	}
	cb.codes = append(cb.codes, id)
	if int(id) < len(cb.entSize) {
		b.raw += cb.entSize[id] // memoized: no lock on the per-row path
	} else {
		b.raw += cb.shared.valueSize(id)
	}
}

// AppendDict appends the selected rows of a dictionary-encoded source
// chunk: the source dictionary is remapped once through the shared
// dictionary and the selected codes flow through without materializing any
// value. sel lists the selected local rows ascending; nil selects all. On
// dictionary overflow the rows are materialized and appended as values.
func (b *Builder) AppendDict(ci int, dv *encoding.DictView, sel []int32) error {
	codes, err := dv.Codes()
	if err != nil {
		return err
	}
	cb := &b.cols[ci]
	if ids, ok := b.Remap(ci, dv); ok {
		sizes := entrySizes(dv)
		if sel == nil {
			for _, c := range codes {
				cb.codes = append(cb.codes, ids[c])
				b.raw += sizes[c]
			}
		} else {
			for _, i := range sel {
				c := codes[i]
				cb.codes = append(cb.codes, ids[c])
				b.raw += sizes[c]
			}
		}
		return nil
	}
	// Overflow or value space: late-materialize the selected entries.
	if sel == nil {
		for _, c := range codes {
			b.appendMaterialized(cb, dv.Value(int(c)))
		}
	} else {
		for _, i := range sel {
			b.appendMaterialized(cb, dv.Value(int(codes[i])))
		}
	}
	return nil
}

// AppendRuns appends the selected rows of a run-length source chunk. INT
// and STRING run values intern into the shared dictionary (once per run)
// so the rows stay in code space; FLOAT runs and overflow append values.
func (b *Builder) AppendRuns(ci int, runs []encoding.Run, sel []int32) error {
	cb := &b.cols[ci]
	k := 0 // cursor into sel
	pos := 0
	for _, r := range runs {
		end := pos + r.Len
		n := r.Len
		if sel != nil {
			n = 0
			for k < len(sel) && int(sel[k]) < end {
				k++
				n++
			}
		}
		if n > 0 {
			b.appendRepeat(cb, r.Val, n)
		}
		pos = end
	}
	return nil
}

// AppendVector appends the selected rows of a decoded source vector. When
// the column's shared dictionary is warm (holds entries from an earlier
// run), INT and STRING values intern to codes — yesterday's dictionary
// turns the encode into id lookups; otherwise, and for FLOAT, the values
// buffer for re-encoding with codec auto-selection.
func (b *Builder) AppendVector(ci int, vec *table.Vector, sel []int32) error {
	cb := &b.cols[ci]
	if sel == nil {
		n := vec.Len()
		for i := 0; i < n; i++ {
			b.appendAuto(cb, vec.Value(i))
		}
		return nil
	}
	for _, i := range sel {
		b.appendAuto(cb, vec.Value(int(i)))
	}
	return nil
}

// AppendValue appends one decoded value (late materialization), interning
// through a warm shared dictionary when possible.
func (b *Builder) AppendValue(ci int, v table.Value) {
	b.appendAuto(&b.cols[ci], v)
}

// appendAuto routes one value: warm dictionaries intern in code space,
// everything else buffers in value space. Raw bytes are counted here.
func (b *Builder) appendAuto(cb *colBuf, v table.Value) {
	b.raw += valueSizeOf(v)
	if cb.vals == nil && cb.shared != nil && cb.warm {
		if id, ok := cb.shared.Add(v); ok {
			cb.noteSize(id, valueSizeOf(v))
			cb.codes = append(cb.codes, id)
			return
		}
	}
	b.pushVal(cb, v)
}

// appendRepeat appends one value n times, interning once when possible.
func (b *Builder) appendRepeat(cb *colBuf, v table.Value, n int) {
	b.raw += valueSizeOf(v) * int64(n)
	if cb.vals == nil && cb.shared != nil {
		if id, ok := cb.shared.Add(v); ok {
			cb.noteSize(id, valueSizeOf(v))
			for i := 0; i < n; i++ {
				cb.codes = append(cb.codes, id)
			}
			return
		}
	}
	b.materializePending(cb)
	for i := 0; i < n; i++ {
		appendToVec(cb.vals, v)
	}
}

// appendMaterialized appends one value the caller materialized for the
// builder's sake (overflow paths), counting it.
func (b *Builder) appendMaterialized(cb *colBuf, v table.Value) {
	b.raw += valueSizeOf(v)
	b.Counters.MaterializedBytes += valueSizeOf(v)
	b.pushVal(cb, v)
}

// pushVal appends one value in value space, converting pending codes
// first.
func (b *Builder) pushVal(cb *colBuf, v table.Value) {
	b.materializePending(cb)
	appendToVec(cb.vals, v)
}

// materializePending converts a column's pending codes into values — the
// dictionary overflowed mid-build, so the chunk finishes in value space.
func (b *Builder) materializePending(cb *colBuf) {
	if cb.vals == nil {
		cb.vals = &table.Vector{Type: cb.typ}
	}
	if len(cb.codes) == 0 {
		return
	}
	for _, id := range cb.codes {
		v := cb.shared.Value(id)
		b.Counters.MaterializedBytes += valueSizeOf(v)
		appendToVec(cb.vals, v)
	}
	cb.codes = cb.codes[:0]
}

// FlushFull emits the pending rows as target-sized chunks once the target
// chunk size is reached. Call it at row-aligned points.
func (b *Builder) FlushFull() error {
	if len(b.cols) > 0 && b.cols[0].pending() >= b.target {
		return b.flush()
	}
	return nil
}

// flush emits every column's pending rows as aligned chunks, splitting at
// the target chunk size (a caller may buffer a whole output — the join's
// scatter phase does — and still get bounded, aligned chunks out).
func (b *Builder) flush() error {
	n := -1
	for ci := range b.cols {
		p := b.cols[ci].pending()
		if n < 0 {
			n = p
		} else if p != n {
			return fmt.Errorf("chunkio: column %d has %d pending rows, column 0 has %d", ci, p, n)
		}
	}
	if n <= 0 {
		return nil
	}
	for lo := 0; lo < n; lo += b.target {
		hi := lo + b.target
		if hi > n {
			hi = n
		}
		for ci := range b.cols {
			ch, err := b.emitCol(&b.cols[ci], lo, hi)
			if err != nil {
				return fmt.Errorf("chunkio: column %q: %w", b.sch.Cols[ci].Name, err)
			}
			b.out[ci] = append(b.out[ci], ch)
		}
		b.nrows += hi - lo
	}
	for ci := range b.cols {
		cb := &b.cols[ci]
		cb.codes = cb.codes[:0]
		cb.vals = nil
	}
	return nil
}

// emitCol encodes rows [lo, hi) of one column's pending buffer.
func (b *Builder) emitCol(cb *colBuf, lo, hi int) (encoding.Chunk, error) {
	if cb.vals != nil {
		ch, err := encoding.EncodeChunk(vecSlice(cb.vals, lo, hi), b.opts)
		if err != nil {
			return encoding.Chunk{}, err
		}
		b.Counters.Reencoded++
		b.seed(cb, ch)
		return ch, nil
	}
	window := cb.codes[lo:hi]
	ints, strs, codes, maxUsed := cb.shared.dense(window, &cb.dense)
	// A drifting column can intern to a dictionary worse than what codec
	// auto-selection would pick (near-unique values). Interned values fall
	// back to re-encoding then; gathered codes from a real dict source
	// (card bounded by the source encoder's choice) stay dictionary.
	if cb.warm && len(codes) > 0 && (len(ints)+len(strs)) > len(codes)/2+1 {
		vec := &table.Vector{Type: cb.typ}
		for _, id := range window {
			appendToVec(vec, cb.shared.Value(id))
		}
		ch, err := encoding.EncodeChunk(vec, b.opts)
		if err != nil {
			return encoding.Chunk{}, err
		}
		b.Counters.Reencoded++
		return ch, nil
	}
	ch, err := encoding.BuildDictChunk(cb.typ, ints, strs, codes)
	if err != nil {
		return encoding.Chunk{}, err
	}
	b.Counters.CodeChunks++
	if int(maxUsed) < cb.shared.Base() {
		b.Counters.DictReused++
	}
	return ch, nil
}

// seed warms the shared dictionary from a re-encoded chunk that codec
// auto-selection decided is dictionary material, so the next run's encode
// of this column can run as pure id lookups.
func (b *Builder) seed(cb *colBuf, ch encoding.Chunk) {
	if b.sess == nil || cb.shared == nil || ch.Codec != encoding.Dict {
		return
	}
	if dv, err := encoding.ParseDict(ch, cb.typ); err == nil {
		cb.shared.remapDict(dv)
	}
}

// Finish flushes the remainder and returns the assembled table. The
// builder must not be reused afterwards.
func (b *Builder) Finish() (*encoding.Compressed, error) {
	if err := b.flush(); err != nil {
		return nil, err
	}
	ct := &encoding.Compressed{
		Schema:   b.sch,
		NRows:    b.nrows,
		Cols:     b.out,
		RawBytes: b.raw,
	}
	if err := ct.Validate(); err != nil {
		return nil, fmt.Errorf("chunkio: %w", err)
	}
	return ct, nil
}

// --- small helpers ---

// vecSlice views rows [lo, hi) of a vector without copying.
func vecSlice(v *table.Vector, lo, hi int) *table.Vector {
	out := &table.Vector{Type: v.Type}
	switch v.Type {
	case table.Int:
		out.Ints = v.Ints[lo:hi]
	case table.Float:
		out.Floats = v.Floats[lo:hi]
	default:
		out.Strs = v.Strs[lo:hi]
	}
	return out
}

func appendToVec(dst *table.Vector, v table.Value) {
	switch dst.Type {
	case table.Int:
		dst.Ints = append(dst.Ints, v.I)
	case table.Float:
		dst.Floats = append(dst.Floats, v.F)
	default:
		dst.Strs = append(dst.Strs, v.S)
	}
}

func valueSizeOf(v table.Value) int64 {
	if v.Type == table.Str {
		return int64(len(v.S)) + 16
	}
	return 8
}

// entrySizes precomputes the raw footprint of each dictionary entry so
// per-row accounting during a gather is an array read.
func entrySizes(dv *encoding.DictView) []int64 {
	out := make([]int64, dv.Card())
	if dv.Type == table.Int {
		for i := range out {
			out[i] = 8
		}
		return out
	}
	for i, s := range dv.Strs {
		out[i] = int64(len(s)) + 16
	}
	return out
}
