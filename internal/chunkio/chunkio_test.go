package chunkio

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/table"
)

// gather returns the rows of src selected by sel (nil = all), per column.
func gather(src *table.Table, sel []int) *table.Table {
	out := table.New(src.Schema)
	n := src.NumRows()
	rows := sel
	if rows == nil {
		rows = make([]int, n)
		for i := range rows {
			rows[i] = i
		}
	}
	for ci := range src.Cols {
		for _, r := range rows {
			v := src.Cols[ci].Value(r)
			switch src.Cols[ci].Type {
			case table.Int:
				out.Cols[ci].Ints = append(out.Cols[ci].Ints, v.I)
			case table.Float:
				out.Cols[ci].Floats = append(out.Cols[ci].Floats, v.F)
			default:
				out.Cols[ci].Strs = append(out.Cols[ci].Strs, v.S)
			}
		}
	}
	return out
}

func mustEqualTables(t *testing.T, desc string, want, got *table.Table) {
	t.Helper()
	if want.NumRows() != got.NumRows() || !want.Schema.Equal(got.Schema) {
		t.Fatalf("%s: shape differs: want %d rows %v, got %d rows %v",
			desc, want.NumRows(), want.Schema, got.NumRows(), got.Schema)
	}
	for r := 0; r < want.NumRows(); r++ {
		for c := range want.Cols {
			if want.Cols[c].Value(r) != got.Cols[c].Value(r) {
				t.Fatalf("%s: row %d col %d: want %v, got %v",
					desc, r, c, want.Cols[c].Value(r), got.Cols[c].Value(r))
			}
		}
	}
}

// feedGroup appends one row group of a compressed table to the builder via
// the cheapest per-chunk path — the walk the kernels perform.
func feedGroup(t *testing.T, b *Builder, ct *encoding.Compressed, group int, sel []int32) {
	t.Helper()
	for ci := range ct.Cols {
		ch := ct.Cols[ci][group]
		typ := ct.Schema.Cols[ci].Type
		var err error
		switch ch.Codec {
		case encoding.Dict:
			var dv *encoding.DictView
			if dv, err = encoding.ParseDict(ch, typ); err == nil {
				err = b.AppendDict(ci, dv, sel)
			}
		case encoding.RLE:
			var runs []encoding.Run
			if runs, err = encoding.ParseRuns(ch, typ); err == nil {
				err = b.AppendRuns(ci, runs, sel)
			}
		default:
			var vec *table.Vector
			if vec, err = encoding.DecodeChunk(ch, typ); err == nil {
				err = b.AppendVector(ci, vec, sel)
			}
		}
		if err != nil {
			t.Fatalf("feed column %d: %v", ci, err)
		}
	}
}

func threeColTable(n int, card int) *table.Table {
	tb := table.New(table.NewSchema(
		table.Column{Name: "s", Type: table.Str},
		table.Column{Name: "i", Type: table.Int},
		table.Column{Name: "f", Type: table.Float},
	))
	for r := 0; r < n; r++ {
		tb.Cols[0].Strs = append(tb.Cols[0].Strs, fmt.Sprintf("cat-%d", r%card))
		tb.Cols[1].Ints = append(tb.Cols[1].Ints, int64(r%card))
		tb.Cols[2].Floats = append(tb.Cols[2].Floats, float64(r%7)/2)
	}
	return tb
}

func TestBuilderPassthroughRoundTrip(t *testing.T) {
	src := threeColTable(500, 9)
	ct, err := encoding.FromTable(src, encoding.Options{ChunkRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(src.Schema, encoding.Options{ChunkRows: 128}, nil, "")
	for g, rows := range ct.RowGroups() {
		getChunk := func(ci int) encoding.Chunk { return ct.Cols[ci][g] }
		if err := b.PassGroup(getChunk, rows); err != nil {
			t.Fatal(err)
		}
	}
	out, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Table()
	if err != nil {
		t.Fatal(err)
	}
	mustEqualTables(t, "passthrough", src, got)
	if b.Counters.Passthrough == 0 || b.Counters.Reencoded != 0 {
		t.Fatalf("counters = %+v: passthrough groups must not re-encode", b.Counters)
	}
	if out.RawBytes != src.ByteSize() {
		t.Fatalf("RawBytes = %d, want %d", out.RawBytes, src.ByteSize())
	}
	if out.RowGroups() == nil {
		t.Fatal("builder output has misaligned row groups")
	}
}

func TestBuilderGatherSelections(t *testing.T) {
	src := threeColTable(400, 5)
	ct, err := encoding.FromTable(src, encoding.Options{ChunkRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Select every third row; group 1 entirely empty.
	var global []int
	b := NewBuilder(src.Schema, encoding.Options{ChunkRows: 100}, nil, "")
	base := 0
	for g, rows := range ct.RowGroups() {
		var sel []int32
		if g != 1 {
			for i := 0; i < rows; i += 3 {
				sel = append(sel, int32(i))
				global = append(global, base+i)
			}
		}
		if len(sel) > 0 {
			feedGroup(t, b, ct, g, sel)
		}
		if err := b.FlushFull(); err != nil {
			t.Fatal(err)
		}
		base += rows
	}
	out, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Table()
	if err != nil {
		t.Fatal(err)
	}
	mustEqualTables(t, "gather", gather(src, global), got)
	if b.Counters.CodeChunks == 0 {
		t.Fatalf("counters = %+v: dictionary gathers should stay in code space", b.Counters)
	}
}

func TestBuilderEmptyOutput(t *testing.T) {
	sch := table.NewSchema(table.Column{Name: "x", Type: table.Int})
	b := NewBuilder(sch, encoding.Options{}, nil, "")
	out, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows != 0 || len(out.Cols) != 1 || len(out.Cols[0]) != 0 {
		t.Fatalf("empty builder produced %+v", out)
	}
	if out.RowGroups() == nil {
		t.Fatal("empty output must still report aligned (empty) row groups")
	}
}

func TestBuilderDictOverflowMidBuild(t *testing.T) {
	// A session capped at 8 entries overflows partway through a 100-row
	// append of 20 distinct strings: the column must convert its pending
	// codes to values and finish in value space, byte-identically.
	sess := NewSession()
	sess.MaxEntries = 8
	src := threeColTable(100, 20)
	ct, err := encoding.FromTable(src, encoding.Options{ChunkRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(src.Schema, encoding.Options{ChunkRows: 100}, sess, "n")
	for g := range ct.RowGroups() {
		feedGroup(t, b, ct, g, nil)
	}
	out, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Table()
	if err != nil {
		t.Fatal(err)
	}
	mustEqualTables(t, "overflow", src, got)
	if b.Counters.Reencoded == 0 {
		t.Fatalf("counters = %+v: overflow must fall back to re-encoding", b.Counters)
	}
}

func TestBuilderRLEHeavy(t *testing.T) {
	tb := table.New(table.NewSchema(
		table.Column{Name: "k", Type: table.Str},
		table.Column{Name: "f", Type: table.Float},
	))
	for r := 0; r < 300; r++ {
		tb.Cols[0].Strs = append(tb.Cols[0].Strs, fmt.Sprintf("run-%d", r/75))
		tb.Cols[1].Floats = append(tb.Cols[1].Floats, float64(r/150))
	}
	ct, err := encoding.FromTable(tb, encoding.Options{ChunkRows: 150})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(tb.Schema, encoding.Options{ChunkRows: 150}, nil, "")
	var sel []int32
	var global []int
	for i := 0; i < 150; i += 2 {
		sel = append(sel, int32(i))
	}
	for g, rows := range ct.RowGroups() {
		feedGroup(t, b, ct, g, sel)
		for i := 0; i < rows; i += 2 {
			global = append(global, g*150+i)
		}
	}
	out, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Table()
	if err != nil {
		t.Fatal(err)
	}
	mustEqualTables(t, "rle", gather(tb, global), got)
}

func TestSessionDictReuseAcrossRuns(t *testing.T) {
	sess := NewSession()
	src := threeColTable(256, 6)
	ct, err := encoding.FromTable(src, encoding.Options{ChunkRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	run := func() Counters {
		sess.BeginRun()
		b := NewBuilder(src.Schema, encoding.Options{ChunkRows: 64}, sess, "node#1")
		for g := range ct.RowGroups() {
			feedGroup(t, b, ct, g, nil)
			if err := b.FlushFull(); err != nil {
				t.Fatal(err)
			}
		}
		out, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		got, err := out.Table()
		if err != nil {
			t.Fatal(err)
		}
		mustEqualTables(t, "session run", src, got)
		return b.Counters
	}
	first := run()
	if first.DictReused != 0 {
		t.Fatalf("first run reports DictReused = %d before any cache exists", first.DictReused)
	}
	second := run()
	if second.DictReused == 0 {
		t.Fatalf("second run counters = %+v: recurring refresh should reuse yesterday's dictionaries", second)
	}
}

func TestSessionInvalidatesOnSchemaDrift(t *testing.T) {
	sess := NewSession()
	sess.BeginRun()
	a := sess.shared("n", 0, table.Column{Name: "x", Type: table.Str}, 0)
	a.Add(table.StrValue("v"))
	// Same slot, same name, new type: the cached dictionary must not leak.
	b := sess.shared("n", 0, table.Column{Name: "x", Type: table.Int}, 0)
	if b.Len() != 0 {
		t.Fatal("type drift kept the stale dictionary")
	}
	c := sess.shared("n", 0, table.Column{Name: "renamed", Type: table.Int}, 0)
	if c == b {
		t.Fatal("column rename kept the stale dictionary")
	}
}

func TestBuilderMisalignedColumnsError(t *testing.T) {
	sch := table.NewSchema(
		table.Column{Name: "a", Type: table.Int},
		table.Column{Name: "b", Type: table.Int},
	)
	b := NewBuilder(sch, encoding.Options{}, nil, "")
	b.AppendValue(0, table.IntValue(1))
	if _, err := b.Finish(); err == nil {
		t.Fatal("columns out of step must not silently finish")
	}
}

// TestDifferentialBuilder drives random tables, chunk layouts and
// selections through the builder and requires the decoded output to equal
// a direct gather of the source rows.
func TestDifferentialBuilder(t *testing.T) {
	iters := 150
	if testing.Short() {
		iters = 30
	}
	types := []table.Type{table.Int, table.Float, table.Str}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		nCols := 1 + rng.Intn(3)
		cols := make([]table.Column, nCols)
		for c := range cols {
			cols[c] = table.Column{Name: fmt.Sprintf("c%d", c), Type: types[rng.Intn(len(types))]}
		}
		n := rng.Intn(600)
		tb := table.New(table.NewSchema(cols...))
		for r := 0; r < n; r++ {
			for c := range cols {
				switch cols[c].Type {
				case table.Int:
					tb.Cols[c].Ints = append(tb.Cols[c].Ints, int64(rng.Intn(1+rng.Intn(1000))))
				case table.Float:
					tb.Cols[c].Floats = append(tb.Cols[c].Floats, float64(rng.Intn(40))/4)
				default:
					tb.Cols[c].Strs = append(tb.Cols[c].Strs, fmt.Sprintf("v%d", rng.Intn(1+rng.Intn(200))))
				}
			}
		}
		chunkRows := 1 + rng.Intn(200)
		ct, err := encoding.FromTable(tb, encoding.Options{ChunkRows: chunkRows})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var sess *Session
		if rng.Intn(2) == 0 {
			sess = NewSession()
			if rng.Intn(3) == 0 {
				sess.MaxEntries = 1 + rng.Intn(32) // force overflows
			}
			sess.BeginRun()
		}
		b := NewBuilder(tb.Schema, encoding.Options{ChunkRows: 1 + rng.Intn(300)}, sess, "p#1")
		global := []int{} // non-nil: gather(nil) means every row
		base := 0
		for g, rows := range ct.RowGroups() {
			mode := rng.Intn(4)
			switch {
			case mode == 0: // whole group passes through
				getChunk := func(ci int) encoding.Chunk { return ct.Cols[ci][g] }
				if err := b.PassGroup(getChunk, rows); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for i := 0; i < rows; i++ {
					global = append(global, base+i)
				}
			case mode == 1: // empty selection
			default:
				var sel []int32
				for i := 0; i < rows; i++ {
					if rng.Intn(3) > 0 {
						sel = append(sel, int32(i))
						global = append(global, base+i)
					}
				}
				if len(sel) > 0 {
					feedGroup(t, b, ct, g, sel)
				}
			}
			if rng.Intn(2) == 0 {
				if err := b.FlushFull(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
			base += rows
		}
		out, err := b.Finish()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("seed %d: invalid output: %v", seed, err)
		}
		if out.RowGroups() == nil {
			t.Fatalf("seed %d: misaligned output row groups", seed)
		}
		got, err := out.Table()
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		mustEqualTables(t, fmt.Sprintf("seed %d", seed), gather(tb, global), got)
	}
}
