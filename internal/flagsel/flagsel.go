// Package flagsel implements solutions to S/C Opt Nodes (Problem 2 of the
// paper): choosing which node outputs to keep in the bounded Memory Catalog
// for a fixed execution order, maximizing the total speedup score.
//
// SimplifiedMKP is the paper's Algorithm 1—an exact multidimensional-
// knapsack formulation over the maximal non-trivial constraint sets—and
// Greedy, Random and Ratio are the baselines it is evaluated against
// (§VI-A, §VI-F).
package flagsel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/dag"
	"github.com/shortcircuit-db/sc/internal/knapsack"
)

// Selector chooses flagged nodes for a fixed execution order.
type Selector interface {
	// Name identifies the algorithm in reports and benchmarks.
	Name() string
	// Select returns a plan with Order set to order and Flagged filled in.
	// The returned plan is always feasible (peak Memory Catalog usage ≤ M).
	Select(p *core.Problem, order []dag.NodeID) (*core.Plan, error)
}

// scoreScale converts fractional-second speedup scores to integer MKP
// profits at millisecond granularity. The paper rounds scores to the
// nearest integer (footnote 3); milliseconds preserve sub-second scores on
// laptop-scale data.
const scoreScale = 1000

func intScore(s float64) int64 {
	v := math.Round(s * scoreScale)
	if v < 0 {
		return 0
	}
	return int64(v)
}

// MKP is Algorithm 1 (SimplifiedMKP): excluded nodes are dropped, the
// maximal non-trivial constraint sets become knapsack constraints, the
// exact branch-and-bound solver picks the optimal candidate subset, and
// unconstrained nodes are flagged for free.
type MKP struct{}

// Name implements Selector.
func (MKP) Name() string { return "MKP" }

// Select implements Selector.
func (MKP) Select(p *core.Problem, order []dag.NodeID) (*core.Plan, error) {
	pl := core.NewPlan(order)
	cs := core.GetConstraints(p, order)
	// Line 9: nodes outside every constraint set (and not excluded) are
	// flagged unconditionally when profitable.
	for _, id := range cs.Free {
		pl.Flagged[id] = true
	}
	if len(cs.Candidates) == 0 {
		return pl, nil
	}
	kp := &knapsack.Problem{
		Profits:    make([]int64, len(cs.Candidates)),
		Weights:    make([][]int64, len(cs.Sets)),
		Capacities: make([]int64, len(cs.Sets)),
	}
	colOf := make(map[dag.NodeID]int, len(cs.Candidates))
	for col, id := range cs.Candidates {
		colOf[id] = col
		kp.Profits[col] = intScore(p.Scores[id])
	}
	for row, set := range cs.Sets {
		kp.Weights[row] = make([]int64, len(cs.Candidates))
		kp.Capacities[row] = p.Memory
		for _, id := range set {
			kp.Weights[row][colOf[id]] = p.Sizes[id]
		}
	}
	sol, err := knapsack.Solve(kp)
	if err != nil {
		return nil, fmt.Errorf("flagsel: %w", err)
	}
	for col, take := range sol.Take {
		if take {
			pl.Flagged[cs.Candidates[col]] = true
		}
	}
	return pl, nil
}

// Greedy iterates nodes in execution order and flags each node if doing so
// keeps the plan feasible.
type Greedy struct{}

// Name implements Selector.
func (Greedy) Name() string { return "Greedy" }

// Select implements Selector.
func (Greedy) Select(p *core.Problem, order []dag.NodeID) (*core.Plan, error) {
	pl := core.NewPlan(order)
	flagIfFits(p, pl, order)
	return pl, nil
}

// Random iterates nodes in a seeded random order and flags each node if
// doing so keeps the plan feasible.
type Random struct {
	Seed int64
}

// Name implements Selector.
func (Random) Name() string { return "Random" }

// Select implements Selector.
func (r Random) Select(p *core.Problem, order []dag.NodeID) (*core.Plan, error) {
	pl := core.NewPlan(order)
	perm := append([]dag.NodeID(nil), order...)
	rng := rand.New(rand.NewSource(r.Seed))
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	flagIfFits(p, pl, perm)
	return pl, nil
}

// Ratio is the heuristic of Xin et al. [60]: consider nodes by descending
// speedup-score/size ratio and flag each if it fits.
type Ratio struct{}

// Name implements Selector.
func (Ratio) Name() string { return "Ratio" }

// Select implements Selector.
func (Ratio) Select(p *core.Problem, order []dag.NodeID) (*core.Plan, error) {
	pl := core.NewPlan(order)
	perm := append([]dag.NodeID(nil), order...)
	ratio := func(id dag.NodeID) float64 {
		if p.Sizes[id] == 0 {
			if p.Scores[id] > 0 {
				return math.Inf(1)
			}
			return 0
		}
		return p.Scores[id] / float64(p.Sizes[id])
	}
	sort.SliceStable(perm, func(i, j int) bool { return ratio(perm[i]) > ratio(perm[j]) })
	flagIfFits(p, pl, perm)
	return pl, nil
}

// flagIfFits flags nodes in the given visit sequence whenever the plan
// stays feasible, mirroring the paper's baseline definitions (memory is the
// only criterion; scores are not consulted).
func flagIfFits(p *core.Problem, pl *core.Plan, visit []dag.NodeID) {
	for _, id := range visit {
		if p.Sizes[id] > p.Memory {
			continue
		}
		pl.Flagged[id] = true
		if !core.Feasible(p, pl) {
			pl.Flagged[id] = false
		}
	}
}
