package flagsel

import "github.com/shortcircuit-db/sc/internal/registry"

// Factory builds a Selector; seed feeds randomized algorithms and is ignored
// by deterministic ones.
type Factory func(seed int64) Selector

var reg = registry.New[Selector]("flagsel", "selector", nil)

// Register makes a selector available under name (case-insensitive). It
// panics on an empty name, a nil factory, or a duplicate registration.
func Register(name string, f Factory) { reg.Register(name, f) }

// New returns a selector registered under name (case-insensitive).
func New(name string, seed int64) (Selector, error) { return reg.New(name, seed) }

// Names lists registered selector names, sorted.
func Names() []string { return reg.Names() }

// ByName returns the named selector.
//
// Deprecated: ByName is kept for old call sites; use New.
func ByName(name string, seed int64) (Selector, error) { return New(name, seed) }

func init() {
	Register("mkp", func(int64) Selector { return MKP{} })
	Register("greedy", func(int64) Selector { return Greedy{} })
	Register("random", func(seed int64) Selector { return Random{Seed: seed} })
	Register("ratio", func(int64) Selector { return Ratio{} })
}
