package flagsel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/testutil"
)

var allSelectors = []Selector{MKP{}, Greedy{}, Random{Seed: 1}, Ratio{}}

func TestAllSelectorsFeasibleProperty(t *testing.T) {
	for _, s := range allSelectors {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				p := testutil.RandomProblem(rng, 20)
				ord, err := p.G.TopoSort()
				if err != nil {
					return false
				}
				pl, err := s.Select(p, ord)
				if err != nil {
					return false
				}
				return core.Feasible(p, pl) && p.G.IsTopological(pl.Order)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMKPDominatesBaselinesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := testutil.RandomProblem(rng, 20)
		ord, err := p.G.TopoSort()
		if err != nil {
			return false
		}
		mkp, err := MKP{}.Select(p, ord)
		if err != nil {
			return false
		}
		for _, base := range []Selector{Greedy{}, Random{Seed: seed}, Ratio{}} {
			bl, err := base.Select(p, ord)
			if err != nil {
				return false
			}
			// MKP is exact over the same feasible region, so with
			// non-negative scores it can never lose. Allow for the
			// millisecond rounding of profits.
			if mkp.TotalScore(p)+0.001 < bl.TotalScore(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMKPFigure7UnderBothOrders(t *testing.T) {
	p := testutil.Figure7()

	pl1, err := MKP{}.Select(p, testutil.Tau1)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl1.TotalScore(p); got != 120 {
		t.Fatalf("τ1 score = %v, want 120 (flagged %v)", got, pl1.FlaggedIDs())
	}

	pl2, err := MKP{}.Select(p, testutil.Tau2)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl2.TotalScore(p); got != 210 {
		t.Fatalf("τ2 score = %v, want 210 (flagged %v)", got, pl2.FlaggedIDs())
	}
	if !pl2.Flagged[0] || !pl2.Flagged[2] || !pl2.Flagged[5] {
		t.Fatalf("τ2 flagged = %v, want v1,v3,v6", pl2.FlaggedIDs())
	}
}

func TestMKPNeverFlagsOversizedOrZeroScore(t *testing.T) {
	p := testutil.Figure7()
	p.Sizes[1] = 500 * testutil.GB // v2 larger than M
	p.Scores[3] = 0                // v4 worthless
	pl, err := MKP{}.Select(p, testutil.Tau2)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Flagged[1] {
		t.Fatal("flagged node larger than Memory Catalog")
	}
	if pl.Flagged[3] {
		t.Fatal("flagged zero-score node")
	}
}

func TestGreedyFlagsEverythingWhenMemoryHuge(t *testing.T) {
	p := testutil.Figure7()
	p.Memory = 1000 * testutil.GB
	pl, err := Greedy{}.Select(p, testutil.Tau1)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range pl.Flagged {
		if !f {
			t.Fatalf("node %d not flagged despite huge memory", i)
		}
	}
}

func TestGreedySkipsOversizedNodes(t *testing.T) {
	p := testutil.Figure7()
	p.Memory = 50 * testutil.GB
	pl, err := Greedy{}.Select(p, testutil.Tau1)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Flagged[0] || pl.Flagged[2] {
		t.Fatalf("flagged 100GB node with 50GB catalog: %v", pl.FlaggedIDs())
	}
	// The 10GB nodes all fit one at a time.
	for _, id := range []int{1, 3, 4, 5} {
		if !pl.Flagged[id] {
			t.Fatalf("node %d should be flagged: %v", id, pl.FlaggedIDs())
		}
	}
}

func TestRandomIsSeedDeterministic(t *testing.T) {
	p := testutil.Figure7()
	a, err := Random{Seed: 7}.Select(p, testutil.Tau1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random{Seed: 7}.Select(p, testutil.Tau1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Flagged {
		if a.Flagged[i] != b.Flagged[i] {
			t.Fatal("Random selector not deterministic for fixed seed")
		}
	}
}

func TestRatioPrefersDenseNodes(t *testing.T) {
	p := testutil.Figure7()
	// Make v5 enormously dense: tiny size, huge score.
	p.Sizes[4] = 1
	p.Scores[4] = 1000
	pl, err := Ratio{}.Select(p, testutil.Tau1)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Flagged[4] {
		t.Fatalf("densest node not flagged: %v", pl.FlaggedIDs())
	}
}

func TestZeroMemoryFlagsOnlyZeroSizedNodes(t *testing.T) {
	p := testutil.Figure7()
	p.Memory = 0
	for _, s := range allSelectors {
		pl, err := s.Select(p, testutil.Tau1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for i, f := range pl.Flagged {
			if f && p.Sizes[i] > 0 {
				t.Fatalf("%s flagged node %d with zero memory", s.Name(), i)
			}
		}
	}
}

func TestIntScore(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{0, 0}, {1.0, 1000}, {0.0004, 0}, {0.0006, 1}, {-3, 0}, {2.5, 2500},
	}
	for _, c := range cases {
		if got := intScore(c.in); got != c.want {
			t.Errorf("intScore(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"mkp", "greedy", "random", "ratio"} {
		if _, err := ByName(name, 1); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown selector accepted")
	}
}
