package sql

import (
	"fmt"
	"strings"

	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// Catalog resolves table names to schemas at plan time.
type Catalog interface {
	TableSchema(name string) (table.Schema, error)
}

// CatalogFunc adapts a function to the Catalog interface.
type CatalogFunc func(name string) (table.Schema, error)

// TableSchema implements Catalog.
func (f CatalogFunc) TableSchema(name string) (table.Schema, error) { return f(name) }

// Plan lowers a parsed statement to an executable engine plan. It returns
// the plan and the list of base/input table names the statement scans,
// which the controller uses to wire dependencies.
func Plan(stmt *Statement, cat Catalog) (engine.Node, []string, error) {
	sel := stmt.Select
	sc := &scope{}
	var inputs []string

	// FROM and JOINs.
	node, err := addTable(sc, cat, sel.From)
	if err != nil {
		return nil, nil, err
	}
	inputs = append(inputs, sel.From.Name)
	for _, jc := range sel.Joins {
		right, err := addTable(sc, cat, jc.Table)
		if err != nil {
			return nil, nil, err
		}
		inputs = append(inputs, jc.Table.Name)
		node, err = planJoin(sc, node, right, jc)
		if err != nil {
			return nil, nil, err
		}
	}

	// WHERE.
	if sel.Where != nil {
		pred, err := lowerExpr(sc, sel.Where, false)
		if err != nil {
			return nil, nil, err
		}
		node = &engine.Filter{Input: node, Pred: pred}
	}

	// SELECT / GROUP BY.
	node, err = planSelectList(sc, node, sel)
	if err != nil {
		return nil, nil, err
	}

	// ORDER BY (resolved against the output schema).
	if len(sel.OrderBy) > 0 {
		outSch := node.Schema()
		var keys []engine.SortKey
		for _, oi := range sel.OrderBy {
			id, ok := oi.Expr.(*Ident)
			if !ok {
				return nil, nil, fmt.Errorf("sql: ORDER BY supports only column names")
			}
			idx := outSch.ColIndex(id.Name)
			if idx < 0 {
				return nil, nil, fmt.Errorf("sql: ORDER BY column %q not in output", id.Name)
			}
			keys = append(keys, engine.SortKey{Col: idx, Desc: oi.Desc})
		}
		node = &engine.Sort{Input: node, Keys: keys}
	}

	if sel.Limit >= 0 {
		node = &engine.Limit{Input: node, N: sel.Limit}
	}
	return node, inputs, nil
}

// PlanString parses and plans in one step, for callers holding SQL text.
func PlanString(sqlText string, cat Catalog) (engine.Node, []string, error) {
	stmt, err := Parse(sqlText)
	if err != nil {
		return nil, nil, err
	}
	return Plan(stmt, cat)
}

// InputTables parses the statement and returns only the scanned table
// names; the controller uses it to extract the dependency graph from MV
// definitions without a catalog.
func InputTables(sqlText string) ([]string, error) {
	stmt, err := Parse(sqlText)
	if err != nil {
		return nil, err
	}
	inputs := []string{stmt.Select.From.Name}
	for _, j := range stmt.Select.Joins {
		inputs = append(inputs, j.Table.Name)
	}
	return inputs, nil
}

// scope tracks the flattened column namespace of the current row.
type scope struct {
	entries []scopeEntry
}

type scopeEntry struct {
	qualifier string // table bind name
	name      string // column name
	typ       table.Type
}

func (s *scope) add(qualifier string, sch table.Schema) {
	for _, c := range sch.Cols {
		s.entries = append(s.entries, scopeEntry{qualifier, c.Name, c.Type})
	}
}

// resolve returns the index of the identifier in the flattened row.
func (s *scope) resolve(id *Ident) (int, table.Type, error) {
	found := -1
	var typ table.Type
	for i, e := range s.entries {
		if !strings.EqualFold(e.name, id.Name) {
			continue
		}
		if id.Qualifier != "" && !strings.EqualFold(e.qualifier, id.Qualifier) {
			continue
		}
		if found >= 0 {
			return 0, 0, fmt.Errorf("sql: ambiguous column %q", display(id))
		}
		found = i
		typ = e.typ
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sql: unknown column %q", display(id))
	}
	return found, typ, nil
}

func display(id *Ident) string {
	if id.Qualifier != "" {
		return id.Qualifier + "." + id.Name
	}
	return id.Name
}

func addTable(sc *scope, cat Catalog, ref TableRef) (engine.Node, error) {
	sch, err := cat.TableSchema(ref.Name)
	if err != nil {
		return nil, fmt.Errorf("sql: table %q: %w", ref.Name, err)
	}
	sc.add(ref.Bind(), sch)
	return &engine.Scan{Name: ref.Name, Sch: sch}, nil
}

// planJoin lowers one JOIN clause: equi-conjuncts on the ON condition
// become hash-join keys; any remaining conjuncts become a post-join filter.
// The scope already contains the right table's columns (appended last), so
// right-scope indices are >= leftWidth.
func planJoin(sc *scope, left, right engine.Node, jc JoinClause) (engine.Node, error) {
	leftWidth := left.Schema().NumCols()
	conjuncts := splitConjuncts(jc.On)
	var leftKeys, rightKeys []int
	var residual []Expr
	for _, c := range conjuncts {
		be, ok := c.(*BinExpr)
		if !ok || be.Op != "=" {
			residual = append(residual, c)
			continue
		}
		li, lok := be.L.(*Ident)
		ri, rok := be.R.(*Ident)
		if !lok || !rok {
			residual = append(residual, c)
			continue
		}
		a, _, errA := sc.resolve(li)
		b, _, errB := sc.resolve(ri)
		if errA != nil || errB != nil {
			if errA != nil {
				return nil, errA
			}
			return nil, errB
		}
		switch {
		case a < leftWidth && b >= leftWidth:
			leftKeys = append(leftKeys, a)
			rightKeys = append(rightKeys, b-leftWidth)
		case b < leftWidth && a >= leftWidth:
			leftKeys = append(leftKeys, b)
			rightKeys = append(rightKeys, a-leftWidth)
		default:
			residual = append(residual, c)
		}
	}
	if len(leftKeys) == 0 {
		return nil, fmt.Errorf("sql: JOIN requires at least one cross-table equality in ON")
	}
	var node engine.Node = &engine.HashJoin{
		Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys,
	}
	if len(residual) > 0 {
		pred, err := lowerExpr(sc, andAll(residual), false)
		if err != nil {
			return nil, err
		}
		node = &engine.Filter{Input: node, Pred: pred}
	}
	return node, nil
}

func splitConjuncts(e Expr) []Expr {
	if be, ok := e.(*BinExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.L), splitConjuncts(be.R)...)
	}
	return []Expr{e}
}

func andAll(es []Expr) Expr {
	out := es[0]
	for _, e := range es[1:] {
		out = &BinExpr{Op: "AND", L: out, R: e}
	}
	return out
}

// planSelectList lowers the SELECT list, inserting an Aggregate when the
// query groups or uses aggregate functions.
func planSelectList(sc *scope, node engine.Node, sel *SelectStmt) (engine.Node, error) {
	if sel.Star {
		if len(sel.GroupBy) > 0 {
			return nil, fmt.Errorf("sql: SELECT * with GROUP BY is not supported")
		}
		return node, nil
	}
	hasAgg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if containsAgg(item.Expr) {
			hasAgg = true
		}
	}
	if !hasAgg {
		var exprs []engine.Expr
		var names []string
		for i, item := range sel.Items {
			e, err := lowerExpr(sc, item.Expr, false)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			names = append(names, outputName(item, i))
		}
		return engine.NewProject(node, exprs, names)
	}
	return planAggregate(sc, node, sel)
}

// planAggregate builds Aggregate + a reordering projection so output
// columns appear in SELECT order.
func planAggregate(sc *scope, node engine.Node, sel *SelectStmt) (engine.Node, error) {
	// Group-by keys must be plain columns.
	var groupIdx []int
	groupPos := map[int]int{} // input column index -> position among keys
	for _, g := range sel.GroupBy {
		id, ok := g.(*Ident)
		if !ok {
			return nil, fmt.Errorf("sql: GROUP BY supports only column names")
		}
		idx, _, err := sc.resolve(id)
		if err != nil {
			return nil, err
		}
		if _, dup := groupPos[idx]; !dup {
			groupPos[idx] = len(groupIdx)
			groupIdx = append(groupIdx, idx)
		}
	}
	var specs []engine.AggSpec
	// outputRef[i] describes where select item i comes from in the
	// aggregate output: group key k (>=0) or aggregate -(a+1).
	outputRef := make([]int, len(sel.Items))
	names := make([]string, len(sel.Items))
	for i, item := range sel.Items {
		names[i] = outputName(item, i)
		switch e := item.Expr.(type) {
		case *Ident:
			idx, _, err := sc.resolve(e)
			if err != nil {
				return nil, err
			}
			k, ok := groupPos[idx]
			if !ok {
				return nil, fmt.Errorf("sql: column %q must appear in GROUP BY", display(e))
			}
			outputRef[i] = k
		case *FuncCall:
			spec, err := lowerAgg(sc, e, names[i])
			if err != nil {
				return nil, err
			}
			outputRef[i] = -(len(specs) + 1)
			specs = append(specs, spec)
		default:
			return nil, fmt.Errorf("sql: select item %d must be a grouped column or aggregate", i+1)
		}
	}
	agg, err := engine.NewAggregate(node, groupIdx, specs)
	if err != nil {
		return nil, err
	}
	// Reorder aggregate output (keys first, then aggs) into SELECT order.
	aggSch := agg.Schema()
	var exprs []engine.Expr
	for i := range sel.Items {
		var srcIdx int
		if outputRef[i] >= 0 {
			srcIdx = outputRef[i]
		} else {
			srcIdx = len(groupIdx) + (-outputRef[i] - 1)
		}
		exprs = append(exprs, &engine.ColRef{Idx: srcIdx, Name: aggSch.Cols[srcIdx].Name})
	}
	return engine.NewProject(agg, exprs, names)
}

func lowerAgg(sc *scope, fc *FuncCall, name string) (engine.AggSpec, error) {
	var fn engine.AggFunc
	switch fc.Name {
	case "COUNT":
		fn = engine.AggCount
	case "SUM":
		fn = engine.AggSum
	case "AVG":
		fn = engine.AggAvg
	case "MIN":
		fn = engine.AggMin
	case "MAX":
		fn = engine.AggMax
	default:
		return engine.AggSpec{}, fmt.Errorf("sql: unknown aggregate %q", fc.Name)
	}
	spec := engine.AggSpec{Func: fn, Name: name}
	if !fc.Star {
		arg, err := lowerExpr(sc, fc.Arg, true)
		if err != nil {
			return engine.AggSpec{}, err
		}
		spec.Arg = arg
	}
	return spec, nil
}

func containsAgg(e Expr) bool {
	switch v := e.(type) {
	case *FuncCall:
		return true
	case *BinExpr:
		return containsAgg(v.L) || containsAgg(v.R)
	case *NotExpr:
		return containsAgg(v.E)
	case *InExpr:
		return containsAgg(v.E)
	}
	return false
}

func outputName(item SelectItem, i int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if id, ok := item.Expr.(*Ident); ok {
		return id.Name
	}
	if fc, ok := item.Expr.(*FuncCall); ok {
		return strings.ToLower(fc.Name)
	}
	return fmt.Sprintf("col%d", i)
}

// lowerExpr converts an AST expression to an engine expression. insideAgg
// rejects nested aggregate calls.
func lowerExpr(sc *scope, e Expr, insideAgg bool) (engine.Expr, error) {
	switch v := e.(type) {
	case *Ident:
		idx, _, err := sc.resolve(v)
		if err != nil {
			return nil, err
		}
		return &engine.ColRef{Idx: idx, Name: display(v)}, nil
	case *NumLit:
		if v.IsFloat {
			return &engine.Lit{V: table.FloatValue(v.F)}, nil
		}
		return &engine.Lit{V: table.IntValue(v.I)}, nil
	case *StrLit:
		return &engine.Lit{V: table.StrValue(v.S)}, nil
	case *BinExpr:
		l, err := lowerExpr(sc, v.L, insideAgg)
		if err != nil {
			return nil, err
		}
		r, err := lowerExpr(sc, v.R, insideAgg)
		if err != nil {
			return nil, err
		}
		op, err := binOpFor(v.Op)
		if err != nil {
			return nil, err
		}
		return &engine.Bin{Op: op, L: l, R: r}, nil
	case *NotExpr:
		inner, err := lowerExpr(sc, v.E, insideAgg)
		if err != nil {
			return nil, err
		}
		return &engine.Not{E: inner}, nil
	case *InExpr:
		inner, err := lowerExpr(sc, v.E, insideAgg)
		if err != nil {
			return nil, err
		}
		var list []table.Value
		for _, item := range v.List {
			switch lit := item.(type) {
			case *NumLit:
				if lit.IsFloat {
					list = append(list, table.FloatValue(lit.F))
				} else {
					list = append(list, table.IntValue(lit.I))
				}
			case *StrLit:
				list = append(list, table.StrValue(lit.S))
			default:
				return nil, fmt.Errorf("sql: IN list supports only literals")
			}
		}
		var out engine.Expr = &engine.InList{E: inner, List: list}
		if v.Neg {
			out = &engine.Not{E: out}
		}
		return out, nil
	case *FuncCall:
		return nil, fmt.Errorf("sql: aggregate %s not allowed here", v.Name)
	}
	return nil, fmt.Errorf("sql: unsupported expression %T", e)
}

func binOpFor(op string) (engine.BinOp, error) {
	switch op {
	case "+":
		return engine.OpAdd, nil
	case "-":
		return engine.OpSub, nil
	case "*":
		return engine.OpMul, nil
	case "/":
		return engine.OpDiv, nil
	case "%":
		return engine.OpMod, nil
	case "=":
		return engine.OpEq, nil
	case "<>":
		return engine.OpNe, nil
	case "<":
		return engine.OpLt, nil
	case "<=":
		return engine.OpLe, nil
	case ">":
		return engine.OpGt, nil
	case ">=":
		return engine.OpGe, nil
	case "AND":
		return engine.OpAnd, nil
	case "OR":
		return engine.OpOr, nil
	}
	return 0, fmt.Errorf("sql: unknown operator %q", op)
}
