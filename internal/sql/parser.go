package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// --- AST ---

// Statement is a parsed SQL statement: either a bare SELECT or a
// CREATE MATERIALIZED VIEW wrapping one.
type Statement struct {
	// CreateView is the MV name, or "" for a bare SELECT.
	CreateView string
	Select     *SelectStmt
}

// SelectStmt is a select block.
type SelectStmt struct {
	Items   []SelectItem
	Star    bool // SELECT *
	From    TableRef
	Joins   []JoinClause
	Where   Expr
	GroupBy []Expr
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Bind returns the name the table is referred to by.
func (t TableRef) Bind() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is an inner join with an ON condition.
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is a parsed expression node.
type Expr interface{ exprNode() }

// Ident is a possibly qualified identifier (a or a.b).
type Ident struct {
	Qualifier string // "" when unqualified
	Name      string
}

// NumLit is an integer or float literal.
type NumLit struct {
	IsFloat bool
	I       int64
	F       float64
}

// StrLit is a string literal.
type StrLit struct {
	S string
}

// BinExpr is a binary operation; Op is the SQL spelling (e.g. "<=", "AND").
type BinExpr struct {
	Op   string
	L, R Expr
}

// NotExpr negates a boolean expression.
type NotExpr struct {
	E Expr
}

// InExpr tests membership in a literal list.
type InExpr struct {
	E    Expr
	List []Expr
	Neg  bool
}

// FuncCall is an aggregate call: COUNT/SUM/AVG/MIN/MAX. Star marks
// COUNT(*).
type FuncCall struct {
	Name string // upper-case
	Arg  Expr   // nil for COUNT(*)
	Star bool
}

func (*Ident) exprNode()    {}
func (*NumLit) exprNode()   {}
func (*StrLit) exprNode()   {}
func (*BinExpr) exprNode()  {}
func (*NotExpr) exprNode()  {}
func (*InExpr) exprNode()   {}
func (*FuncCall) exprNode() {}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

// Parse parses a single statement.
func Parse(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input starting with %q", p.cur().text)
	}
	return stmt, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(kind tokKind, text string) bool {
	if p.cur().kind == kind && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) error {
	if !p.accept(kind, text) {
		return p.errf("expected %q, found %q", text, p.cur().text)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement() (*Statement, error) {
	stmt := &Statement{}
	if p.accept(tokKeyword, "CREATE") {
		if err := p.expect(tokKeyword, "MATERIALIZED"); err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "VIEW"); err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected view name, found %q", p.cur().text)
		}
		stmt.CreateView = p.next().text
		if err := p.expect(tokKeyword, "AS"); err != nil {
			return nil, err
		}
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Select = sel
	return stmt, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	if p.accept(tokSymbol, "*") {
		sel.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from
	for {
		if p.accept(tokKeyword, "INNER") {
			if err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept(tokKeyword, "JOIN") {
			break
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Table: ref, On: cond})
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		if p.cur().kind != tokNumber {
			return nil, p.errf("expected LIMIT count, found %q", p.cur().text)
		}
		v, err := strconv.Atoi(p.next().text)
		if err != nil || v < 0 {
			return nil, p.errf("bad LIMIT count")
		}
		sel.Limit = v
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		if p.cur().kind != tokIdent {
			return SelectItem{}, p.errf("expected alias, found %q", p.cur().text)
		}
		item.Alias = p.next().text
	} else if p.cur().kind == tokIdent {
		// Bare alias: SELECT a b FROM ...
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.cur().kind != tokIdent {
		return TableRef{}, p.errf("expected table name, found %q", p.cur().text)
	}
	ref := TableRef{Name: p.next().text}
	if p.accept(tokKeyword, "AS") {
		if p.cur().kind != tokIdent {
			return TableRef{}, p.errf("expected table alias, found %q", p.cur().text)
		}
		ref.Alias = p.next().text
	} else if p.cur().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// Expression precedence: OR < AND < NOT < comparison/IN < additive <
// multiplicative < unary < primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IN / NOT IN
	neg := false
	if p.cur().kind == tokKeyword && p.cur().text == "NOT" &&
		p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "IN" {
		p.pos += 2
		neg = true
		return p.parseInList(l, neg)
	}
	if p.accept(tokKeyword, "IN") {
		return p.parseInList(l, neg)
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseInList(l Expr, neg bool) (Expr, error) {
	if err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	in := &InExpr{E: l, Neg: neg}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "+", L: l, R: r}
		case p.accept(tokSymbol, "-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "*", L: l, R: r}
		case p.accept(tokSymbol, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "/", L: l, R: r}
		case p.accept(tokSymbol, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: "-", L: &NumLit{I: 0}, R: e}, nil
	}
	return p.parsePrimary()
}

var aggFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &NumLit{IsFloat: true, F: f}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &NumLit{I: i}, nil
	case tokString:
		p.pos++
		return &StrLit{S: t.text}, nil
	case tokKeyword:
		if aggFuncs[t.text] {
			p.pos++
			if err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			fc := &FuncCall{Name: t.text}
			if p.accept(tokSymbol, "*") {
				if t.text != "COUNT" {
					return nil, p.errf("%s(*) is not valid", t.text)
				}
				fc.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Arg = arg
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		return nil, p.errf("unexpected keyword %q", t.text)
	case tokIdent:
		p.pos++
		id := &Ident{Name: t.text}
		if p.accept(tokSymbol, ".") {
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected column after %q.", t.text)
			}
			id.Qualifier = t.text
			id.Name = p.next().text
		}
		return id, nil
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q", t.text)
}
