// Package sql provides the SQL subset S/C workload nodes are written in:
// SELECT-PROJECT-JOIN blocks with aggregation, the unit the paper's
// workloads decompose TPC-DS queries into (§VI-A). It contains a lexer, a
// recursive-descent parser, and a planner that lowers statements onto the
// execution engine against a schema catalog.
//
// Supported grammar (case-insensitive keywords):
//
//	stmt     := [CREATE MATERIALIZED VIEW name AS] select
//	select   := SELECT item ("," item)* FROM ref (JOIN ref ON cond)*
//	            [WHERE expr] [GROUP BY expr ("," expr)*]
//	            [ORDER BY ordItem ("," ordItem)*] [LIMIT int]
//	item     := expr [AS ident] | "*"
//	ref      := ident [ident]                      -- table with optional alias
//	expr     := disjunction with AND/OR/NOT, comparisons, + - * / %,
//	            IN (literal list), parentheses, aggregate calls
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string // keywords upper-cased; identifiers as written
	pos  int    // byte offset for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "JOIN": true, "ON": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "ASC": true, "DESC": true,
	"CREATE": true, "MATERIALIZED": true, "VIEW": true, "UNION": true, "ALL": true,
	"INNER": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (isIdentChar(rune(input[i]))) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case unicode.IsDigit(c):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (!seenDot && input[i] == '.')) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
		default:
			start := i
			// Two-char operators first.
			if i+1 < n {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					toks = append(toks, token{tokSymbol, two, start})
					i += 2
					continue
				}
			}
			switch c {
			case ',', '(', ')', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
				toks = append(toks, token{tokSymbol, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}
