package sql

import (
	"fmt"
	"strings"
	"testing"

	"github.com/shortcircuit-db/sc/internal/engine"
	"github.com/shortcircuit-db/sc/internal/table"
)

// testCatalog serves two tables: orders and customers.
func testCatalog() (Catalog, *engine.Context) {
	orders := table.New(table.NewSchema(
		table.Column{Name: "o_id", Type: table.Int},
		table.Column{Name: "o_cust", Type: table.Int},
		table.Column{Name: "o_total", Type: table.Float},
		table.Column{Name: "o_status", Type: table.Str},
	))
	rows := []struct {
		id, cust int64
		total    float64
		status   string
	}{
		{1, 10, 99.5, "open"}, {2, 10, 20.0, "done"}, {3, 11, 5.0, "open"},
		{4, 12, 70.0, "done"}, {5, 12, 30.0, "done"},
	}
	for _, r := range rows {
		_ = orders.AppendRow(table.IntValue(r.id), table.IntValue(r.cust), table.FloatValue(r.total), table.StrValue(r.status))
	}
	customers := table.New(table.NewSchema(
		table.Column{Name: "c_id", Type: table.Int},
		table.Column{Name: "c_name", Type: table.Str},
	))
	for _, r := range []struct {
		id   int64
		name string
	}{{10, "ann"}, {11, "bob"}, {12, "cid"}} {
		_ = customers.AppendRow(table.IntValue(r.id), table.StrValue(r.name))
	}
	tabs := map[string]*table.Table{"orders": orders, "customers": customers}
	cat := CatalogFunc(func(name string) (table.Schema, error) {
		t, ok := tabs[name]
		if !ok {
			return table.Schema{}, fmt.Errorf("no table %q", name)
		}
		return t.Schema, nil
	})
	ctx := &engine.Context{Resolve: func(name string) (*table.Table, error) {
		t, ok := tabs[name]
		if !ok {
			return nil, fmt.Errorf("no table %q", name)
		}
		return t, nil
	}}
	return cat, ctx
}

func runSQL(t *testing.T, q string) *table.Table {
	t.Helper()
	cat, ctx := testCatalog()
	plan, _, err := PlanString(q, cat)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	out, err := plan.Run(ctx)
	if err != nil {
		t.Fatalf("run %q: %v", q, err)
	}
	return out
}

func TestParseCreateMaterializedView(t *testing.T) {
	stmt, err := Parse("CREATE MATERIALIZED VIEW mv1 AS SELECT o_id FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.CreateView != "mv1" || len(stmt.Select.Items) != 1 {
		t.Fatalf("stmt = %+v", stmt)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t JOIN",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT",
		"CREATE MATERIALIZED mv AS SELECT a FROM t",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t; SELECT b FROM t",
		"SELECT a@b FROM t",
		"SELECT SUM(*) FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

func TestSelectStar(t *testing.T) {
	out := runSQL(t, "SELECT * FROM orders")
	if out.NumRows() != 5 || out.Schema.NumCols() != 4 {
		t.Fatalf("got %d rows %d cols", out.NumRows(), out.Schema.NumCols())
	}
}

func TestSelectWhereProject(t *testing.T) {
	out := runSQL(t, "SELECT o_id, o_total * 2 AS dbl FROM orders WHERE o_status = 'done' AND o_total >= 30")
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
	if out.Schema.Cols[1].Name != "dbl" {
		t.Fatalf("alias = %q", out.Schema.Cols[1].Name)
	}
	if out.Cols[1].Floats[0] != 140 {
		t.Fatalf("dbl[0] = %v", out.Cols[1].Floats[0])
	}
}

func TestJoinWithQualifiedNames(t *testing.T) {
	out := runSQL(t, `SELECT o.o_id, c.c_name FROM orders o JOIN customers c ON o.o_cust = c.c_id WHERE c.c_name <> 'bob'`)
	if out.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", out.NumRows())
	}
	if out.Schema.Cols[1].Name != "c_name" {
		t.Fatalf("schema = %s", out.Schema)
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	// Join with an extra non-equi conjunct: o_total > 25 moves to a filter.
	out := runSQL(t, `SELECT o_id FROM orders o JOIN customers c ON o.o_cust = c.c_id AND o.o_total > 25`)
	// Customers present: 10,11,12. Orders with total > 25: id 1 (cust 10),
	// id 4 and id 5 (cust 12) — three rows survive the residual filter.
	if out.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", out.NumRows())
	}
}

func TestJoinWithoutEquiKeyRejected(t *testing.T) {
	cat, _ := testCatalog()
	_, _, err := PlanString(`SELECT o_id FROM orders o JOIN customers c ON o.o_total > 25`, cat)
	if err == nil {
		t.Fatal("non-equi join accepted")
	}
}

func TestGroupByAggregates(t *testing.T) {
	out := runSQL(t, `SELECT o_cust, COUNT(*) AS n, SUM(o_total) AS total, AVG(o_total) AS avg_total
		FROM orders GROUP BY o_cust ORDER BY total DESC`)
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	// Sorted by total desc: cust 10 (119.5), cust 12 (100), cust 11 (5).
	if out.Cols[0].Ints[0] != 10 || out.Cols[0].Ints[1] != 12 || out.Cols[0].Ints[2] != 11 {
		t.Fatalf("order: %v", out.Cols[0].Ints)
	}
	if out.Cols[1].Ints[0] != 2 || out.Cols[2].Floats[0] != 119.5 {
		t.Fatalf("agg row: %v", out.Row(0))
	}
	if out.Cols[3].Floats[2] != 5 {
		t.Fatalf("avg: %v", out.Cols[3].Floats)
	}
}

func TestSelectOrderInterleavesKeysAndAggs(t *testing.T) {
	out := runSQL(t, `SELECT COUNT(*) AS n, o_cust FROM orders GROUP BY o_cust`)
	if out.Schema.Cols[0].Name != "n" || out.Schema.Cols[1].Name != "o_cust" {
		t.Fatalf("schema = %s", out.Schema)
	}
	if out.Schema.Cols[0].Type != table.Int {
		t.Fatalf("count type = %s", out.Schema.Cols[0].Type)
	}
}

func TestUngroupedColumnRejected(t *testing.T) {
	cat, _ := testCatalog()
	_, _, err := PlanString(`SELECT o_id, COUNT(*) FROM orders GROUP BY o_cust`, cat)
	if err == nil {
		t.Fatal("ungrouped column accepted")
	}
}

func TestGlobalAggregate(t *testing.T) {
	out := runSQL(t, `SELECT COUNT(*) AS n, MIN(o_total) AS lo, MAX(o_total) AS hi FROM orders`)
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if out.Cols[0].Ints[0] != 5 || out.Cols[1].Floats[0] != 5.0 || out.Cols[2].Floats[0] != 99.5 {
		t.Fatalf("row = %v", out.Row(0))
	}
}

func TestInListQuery(t *testing.T) {
	out := runSQL(t, `SELECT o_id FROM orders WHERE o_cust IN (10, 11)`)
	if out.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", out.NumRows())
	}
	out = runSQL(t, `SELECT o_id FROM orders WHERE o_cust NOT IN (10, 11)`)
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
}

func TestLimitAndOrderBy(t *testing.T) {
	out := runSQL(t, `SELECT o_id, o_total FROM orders ORDER BY o_total DESC LIMIT 2`)
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if out.Cols[0].Ints[0] != 1 || out.Cols[0].Ints[1] != 4 {
		t.Fatalf("top ids = %v", out.Cols[0].Ints)
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	cat, _ := testCatalog()
	// Self-join makes o_id ambiguous.
	_, _, err := PlanString(`SELECT o_id FROM orders a JOIN orders b ON a.o_id = b.o_id`, cat)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownColumnAndTableRejected(t *testing.T) {
	cat, _ := testCatalog()
	if _, _, err := PlanString(`SELECT nope FROM orders`, cat); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, _, err := PlanString(`SELECT x FROM missing`, cat); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestInputTables(t *testing.T) {
	inputs, err := InputTables(`SELECT o.o_id FROM orders o JOIN customers c ON o.o_cust = c.c_id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) != 2 || inputs[0] != "orders" || inputs[1] != "customers" {
		t.Fatalf("inputs = %v", inputs)
	}
}

func TestUnaryMinusAndComments(t *testing.T) {
	out := runSQL(t, "SELECT o_id FROM orders -- trailing comment\nWHERE o_total > -1")
	if out.NumRows() != 5 {
		t.Fatalf("rows = %d", out.NumRows())
	}
}

func TestEscapedStringLiteral(t *testing.T) {
	stmt, err := Parse(`SELECT o_id FROM orders WHERE o_status = 'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	cmp := stmt.Select.Where.(*BinExpr)
	if cmp.R.(*StrLit).S != "it's" {
		t.Fatalf("literal = %q", cmp.R.(*StrLit).S)
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	out := runSQL(t, `SELECT a.o_id AS left_id, b.o_id AS right_id
		FROM orders a JOIN orders b ON a.o_cust = b.o_cust WHERE a.o_id < b.o_id`)
	// Pairs within same customer: (1,2) for cust 10, (4,5) for cust 12.
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
}
