package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/shortcircuit-db/sc/internal/table"
)

// floatTable builds a one-float-column table plus an int payload column.
func floatTable(t *testing.T, vals ...float64) *table.Table {
	t.Helper()
	tb := table.New(table.NewSchema(
		table.Column{Name: "k", Type: table.Float},
		table.Column{Name: "p", Type: table.Int},
	))
	for i, f := range vals {
		if err := tb.AppendRow(table.FloatValue(f), table.IntValue(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func ctxTables(tabs map[string]*table.Table) *Context {
	return &Context{Resolve: func(name string) (*table.Table, error) {
		t, ok := tabs[name]
		if !ok {
			return nil, fmt.Errorf("unknown table %q", name)
		}
		return t, nil
	}}
}

// TestJoinKeyNegativeZero pins the -0.0 fix: OpEq compares -0.0 and 0.0
// equal, so a hash join on float keys must match them too.
func TestJoinKeyNegativeZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	left := floatTable(t, negZero, 1.5)
	right := floatTable(t, 0.0, 1.5, negZero)
	j := &HashJoin{
		Left:     &Scan{Name: "L", Sch: left.Schema},
		Right:    &Scan{Name: "R", Sch: right.Schema},
		LeftKeys: []int{0}, RightKeys: []int{0},
	}
	out, err := j.Run(ctxTables(map[string]*table.Table{"L": left, "R": right}))
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 (-0.0) matches right rows 0 and 2; row 1 (1.5) matches right
	// row 1: three output rows, in probe order then build order.
	if out.NumRows() != 3 {
		t.Fatalf("join produced %d rows, want 3 (is -0.0 matching 0.0?)", out.NumRows())
	}
	wantPairs := [][2]int64{{0, 0}, {0, 2}, {1, 1}}
	for i, w := range wantPairs {
		if out.Cols[1].Ints[i] != w[0] || out.Cols[3].Ints[i] != w[1] {
			t.Fatalf("row %d: got pair (%d,%d), want %v",
				i, out.Cols[1].Ints[i], out.Cols[3].Ints[i], w)
		}
	}
}

// TestGroupKeyNegativeZero: -0.0 and 0.0 land in one group-by bucket, keyed
// by the first-seen value.
func TestGroupKeyNegativeZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	tb := floatTable(t, negZero, 0.0, negZero, 2.0)
	agg, err := NewAggregate(&Scan{Name: "t", Sch: tb.Schema}, []int{0},
		[]AggSpec{{Func: AggCount, Name: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := agg.Run(ctxTables(map[string]*table.Table{"t": tb}))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("got %d groups, want 2 (zero bucket + 2.0)", out.NumRows())
	}
	if got := out.Cols[1].Ints[0]; got != 3 {
		t.Fatalf("zero bucket count = %d, want 3", got)
	}
	// The group key is the first-appearance value: -0.0, bit for bit.
	if bits := math.Float64bits(out.Cols[0].Floats[0]); bits != math.Float64bits(negZero) {
		t.Fatalf("zero-bucket key bits = %x, want -0.0", bits)
	}
}

// TestJoinKeyNaN locks the NaN key semantics: Value.Compare reports NaN
// equal to every float (so OpEq does too), but join/group keys bucket all
// NaNs together and apart from ordinary numbers — NaN keys join NaN keys
// and nothing else. This asymmetry predates the -0.0 fix and is pinned here
// so a future change to either side is a deliberate decision.
func TestJoinKeyNaN(t *testing.T) {
	nan := math.NaN()
	left := floatTable(t, nan, 3.0)
	right := floatTable(t, 3.0, nan, nan)
	j := &HashJoin{
		Left:     &Scan{Name: "L", Sch: left.Schema},
		Right:    &Scan{Name: "R", Sch: right.Schema},
		LeftKeys: []int{0}, RightKeys: []int{0},
	}
	out, err := j.Run(ctxTables(map[string]*table.Table{"L": left, "R": right}))
	if err != nil {
		t.Fatal(err)
	}
	// NaN matches the two NaN build rows; 3.0 matches 3.0.
	if out.NumRows() != 3 {
		t.Fatalf("join produced %d rows, want 3", out.NumRows())
	}
	wantPairs := [][2]int64{{0, 1}, {0, 2}, {1, 0}}
	for i, w := range wantPairs {
		if out.Cols[1].Ints[i] != w[0] || out.Cols[3].Ints[i] != w[1] {
			t.Fatalf("row %d: got pair (%d,%d), want %v",
				i, out.Cols[1].Ints[i], out.Cols[3].Ints[i], w)
		}
	}

	// And in group-by: one bucket for all NaNs, one for 3.0.
	agg, err := NewAggregate(&Scan{Name: "t", Sch: right.Schema}, []int{0},
		[]AggSpec{{Func: AggCount, Name: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	gout, err := agg.Run(ctxTables(map[string]*table.Table{"t": right}))
	if err != nil {
		t.Fatal(err)
	}
	if gout.NumRows() != 2 {
		t.Fatalf("got %d groups, want 2", gout.NumRows())
	}
}

// oldAppendKey is the fmt-based key encoding this PR replaced, kept here so
// the benchmark documents the speedup of the strconv path.
func oldAppendKey(b *strings.Builder, v table.Value) {
	switch v.Type {
	case table.Int:
		fmt.Fprintf(b, "i%d|", v.I)
	case table.Float:
		fmt.Fprintf(b, "f%g|", v.F)
	default:
		fmt.Fprintf(b, "s%d:%s|", len(v.S), v.S)
	}
}

func benchKeyValues() []table.Value {
	return []table.Value{
		table.IntValue(123456789),
		table.FloatValue(98.75),
		table.StrValue("category-name"),
	}
}

func BenchmarkJoinKeyFprintf(b *testing.B) {
	vals := benchKeyValues()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		for _, v := range vals {
			oldAppendKey(&sb, v)
		}
	}
}

func BenchmarkJoinKeyStrconv(b *testing.B) {
	vals := benchKeyValues()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		for _, v := range vals {
			buf = appendKey(buf, v)
		}
	}
}

// BenchmarkHashJoinRun measures the row-engine join fallback end to end:
// a 20k-row probe side against a 2k-row build side on a string+int key.
func BenchmarkHashJoinRun(b *testing.B) {
	mk := func(n, card int) *table.Table {
		tb := table.New(table.NewSchema(
			table.Column{Name: "ks", Type: table.Str},
			table.Column{Name: "ki", Type: table.Int},
			table.Column{Name: "pay", Type: table.Float},
		))
		for i := 0; i < n; i++ {
			_ = tb.AppendRow(
				table.StrValue(fmt.Sprintf("cat-%d", i%card)),
				table.IntValue(int64(i%card)),
				table.FloatValue(float64(i)),
			)
		}
		return tb
	}
	left, right := mk(20000, 512), mk(2000, 512)
	ctx := ctxTables(map[string]*table.Table{"L": left, "R": right})
	j := &HashJoin{
		Left:     &Scan{Name: "L", Sch: left.Schema},
		Right:    &Scan{Name: "R", Sch: right.Schema},
		LeftKeys: []int{0, 1}, RightKeys: []int{0, 1},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
