// Package engine is the columnar execution engine S/C submits MV-refresh
// statements to, standing in for the Presto cluster in the paper's stack.
// It evaluates plan trees of scans, filters, projections, hash joins, hash
// aggregations, sorts and limits over tables resolved by name—from the
// Memory Catalog or from external storage, which is exactly the distinction
// S/C's optimization exploits.
package engine

import (
	"fmt"

	"github.com/shortcircuit-db/sc/internal/table"
)

// Expr is a row-wise expression over an input row.
type Expr interface {
	// Type returns the static result type given the input schema.
	Type(sch table.Schema) (table.Type, error)
	// Eval computes the value for one row.
	Eval(row []table.Value) (table.Value, error)
	// String renders the expression for plan display.
	String() string
}

// ColRef references an input column by position.
type ColRef struct {
	Idx  int
	Name string // for display only
}

// Type implements Expr.
func (c *ColRef) Type(sch table.Schema) (table.Type, error) {
	if c.Idx < 0 || c.Idx >= sch.NumCols() {
		return 0, fmt.Errorf("engine: column index %d out of range for %s", c.Idx, sch)
	}
	return sch.Cols[c.Idx].Type, nil
}

// Eval implements Expr.
func (c *ColRef) Eval(row []table.Value) (table.Value, error) {
	if c.Idx < 0 || c.Idx >= len(row) {
		return table.Value{}, fmt.Errorf("engine: column index %d out of range", c.Idx)
	}
	return row[c.Idx], nil
}

// String implements Expr.
func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Lit is a constant.
type Lit struct {
	V table.Value
}

// Type implements Expr.
func (l *Lit) Type(table.Schema) (table.Type, error) { return l.V.Type, nil }

// Eval implements Expr.
func (l *Lit) Eval([]table.Value) (table.Value, error) { return l.V, nil }

// String implements Expr.
func (l *Lit) String() string {
	if l.V.Type == table.Str {
		return fmt.Sprintf("%q", l.V.S)
	}
	return l.V.String()
}

// BinOp enumerates binary operators. Comparison and logical operators
// return INT 0/1 booleans.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// IsComparison reports whether the operator yields a boolean from two
// comparable operands.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// IsLogical reports whether the operator combines booleans.
func (op BinOp) IsLogical() bool { return op == OpAnd || op == OpOr }

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Type implements Expr.
func (b *Bin) Type(sch table.Schema) (table.Type, error) {
	lt, err := b.L.Type(sch)
	if err != nil {
		return 0, err
	}
	rt, err := b.R.Type(sch)
	if err != nil {
		return 0, err
	}
	switch {
	case b.Op.IsComparison(), b.Op.IsLogical():
		if b.Op.IsComparison() && (lt == table.Str) != (rt == table.Str) {
			return 0, fmt.Errorf("engine: cannot compare %s with %s", lt, rt)
		}
		return table.Int, nil
	default: // arithmetic
		if lt == table.Str || rt == table.Str {
			return 0, fmt.Errorf("engine: arithmetic on STRING")
		}
		if lt == table.Float || rt == table.Float || b.Op == OpDiv {
			return table.Float, nil
		}
		return table.Int, nil
	}
}

// Eval implements Expr.
func (b *Bin) Eval(row []table.Value) (table.Value, error) {
	l, err := b.L.Eval(row)
	if err != nil {
		return table.Value{}, err
	}
	// Short-circuit logical operators.
	if b.Op == OpAnd && !truthy(l) {
		return table.IntValue(0), nil
	}
	if b.Op == OpOr && truthy(l) {
		return table.IntValue(1), nil
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return table.Value{}, err
	}
	switch {
	case b.Op.IsLogical():
		return boolValue(truthy(r)), nil
	case b.Op.IsComparison():
		c, err := l.Compare(r)
		if err != nil {
			return table.Value{}, err
		}
		switch b.Op {
		case OpEq:
			return boolValue(c == 0), nil
		case OpNe:
			return boolValue(c != 0), nil
		case OpLt:
			return boolValue(c < 0), nil
		case OpLe:
			return boolValue(c <= 0), nil
		case OpGt:
			return boolValue(c > 0), nil
		default:
			return boolValue(c >= 0), nil
		}
	default:
		return evalArith(b.Op, l, r)
	}
}

func evalArith(op BinOp, l, r table.Value) (table.Value, error) {
	if l.Type == table.Str || r.Type == table.Str {
		return table.Value{}, fmt.Errorf("engine: arithmetic on STRING")
	}
	if l.Type == table.Int && r.Type == table.Int && op != OpDiv {
		a, b := l.I, r.I
		switch op {
		case OpAdd:
			return table.IntValue(a + b), nil
		case OpSub:
			return table.IntValue(a - b), nil
		case OpMul:
			return table.IntValue(a * b), nil
		case OpMod:
			if b == 0 {
				return table.Value{}, fmt.Errorf("engine: modulo by zero")
			}
			return table.IntValue(a % b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case OpAdd:
		return table.FloatValue(a + b), nil
	case OpSub:
		return table.FloatValue(a - b), nil
	case OpMul:
		return table.FloatValue(a * b), nil
	case OpDiv:
		if b == 0 {
			return table.Value{}, fmt.Errorf("engine: division by zero")
		}
		return table.FloatValue(a / b), nil
	case OpMod:
		return table.Value{}, fmt.Errorf("engine: modulo on FLOAT")
	}
	return table.Value{}, fmt.Errorf("engine: bad arithmetic op %d", op)
}

// String implements Expr.
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, binOpNames[b.Op], b.R)
}

// Not negates a boolean expression.
type Not struct {
	E Expr
}

// Type implements Expr.
func (n *Not) Type(sch table.Schema) (table.Type, error) {
	if _, err := n.E.Type(sch); err != nil {
		return 0, err
	}
	return table.Int, nil
}

// Eval implements Expr.
func (n *Not) Eval(row []table.Value) (table.Value, error) {
	v, err := n.E.Eval(row)
	if err != nil {
		return table.Value{}, err
	}
	return boolValue(!truthy(v)), nil
}

// String implements Expr.
func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// InList tests membership in a literal list (SQL IN).
type InList struct {
	E    Expr
	List []table.Value
}

// Type implements Expr.
func (in *InList) Type(sch table.Schema) (table.Type, error) {
	if _, err := in.E.Type(sch); err != nil {
		return 0, err
	}
	return table.Int, nil
}

// Eval implements Expr.
func (in *InList) Eval(row []table.Value) (table.Value, error) {
	v, err := in.E.Eval(row)
	if err != nil {
		return table.Value{}, err
	}
	for _, item := range in.List {
		c, err := v.Compare(item)
		if err != nil {
			return table.Value{}, err
		}
		if c == 0 {
			return table.IntValue(1), nil
		}
	}
	return table.IntValue(0), nil
}

// String implements Expr.
func (in *InList) String() string { return fmt.Sprintf("(%s IN [%d items])", in.E, len(in.List)) }

func truthy(v table.Value) bool {
	switch v.Type {
	case table.Int:
		return v.I != 0
	case table.Float:
		return v.F != 0
	default:
		return v.S != ""
	}
}

func boolValue(b bool) table.Value {
	if b {
		return table.IntValue(1)
	}
	return table.IntValue(0)
}
