package engine

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/shortcircuit-db/sc/internal/table"
)

// fixedResolver serves tables from a map.
func fixedResolver(tabs map[string]*table.Table) *Context {
	return &Context{Resolve: func(name string) (*table.Table, error) {
		t, ok := tabs[name]
		if !ok {
			return nil, &missingErr{name}
		}
		return t, nil
	}}
}

type missingErr struct{ name string }

func (e *missingErr) Error() string { return "missing table " + e.name }

func ordersTable(t *testing.T) *table.Table {
	t.Helper()
	tb := table.New(table.NewSchema(
		table.Column{Name: "o_id", Type: table.Int},
		table.Column{Name: "o_cust", Type: table.Int},
		table.Column{Name: "o_total", Type: table.Float},
		table.Column{Name: "o_status", Type: table.Str},
	))
	rows := []struct {
		id, cust int64
		total    float64
		status   string
	}{
		{1, 10, 99.5, "open"},
		{2, 10, 20.0, "done"},
		{3, 11, 5.0, "open"},
		{4, 12, 70.0, "done"},
		{5, 12, 30.0, "done"},
	}
	for _, r := range rows {
		if err := tb.AppendRow(table.IntValue(r.id), table.IntValue(r.cust), table.FloatValue(r.total), table.StrValue(r.status)); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func custTable(t *testing.T) *table.Table {
	t.Helper()
	tb := table.New(table.NewSchema(
		table.Column{Name: "c_id", Type: table.Int},
		table.Column{Name: "c_name", Type: table.Str},
	))
	for _, r := range []struct {
		id   int64
		name string
	}{{10, "ann"}, {11, "bob"}, {13, "eve"}} {
		if err := tb.AppendRow(table.IntValue(r.id), table.StrValue(r.name)); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func scanOf(t *testing.T, tb *table.Table, name string) *Scan {
	t.Helper()
	return &Scan{Name: name, Sch: tb.Schema}
}

func TestScanResolvesAndChecksSchema(t *testing.T) {
	orders := ordersTable(t)
	ctx := fixedResolver(map[string]*table.Table{"orders": orders})
	got, err := scanOf(t, orders, "orders").Run(ctx)
	if err != nil || got.NumRows() != 5 {
		t.Fatalf("scan: %v rows, err %v", got.NumRows(), err)
	}
	bad := &Scan{Name: "orders", Sch: table.NewSchema(table.Column{Name: "x", Type: table.Int})}
	if _, err := bad.Run(ctx); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	if _, err := scanOf(t, orders, "nope").Run(ctx); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestFilterComparisons(t *testing.T) {
	orders := ordersTable(t)
	ctx := fixedResolver(map[string]*table.Table{"orders": orders})
	f := &Filter{
		Input: scanOf(t, orders, "orders"),
		Pred: &Bin{Op: OpAnd,
			L: &Bin{Op: OpGt, L: &ColRef{Idx: 2}, R: &Lit{V: table.FloatValue(10)}},
			R: &Bin{Op: OpEq, L: &ColRef{Idx: 3}, R: &Lit{V: table.StrValue("done")}},
		},
	}
	got, err := f.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("filtered rows = %d, want 3", got.NumRows())
	}
}

func TestProjectArithmetic(t *testing.T) {
	orders := ordersTable(t)
	ctx := fixedResolver(map[string]*table.Table{"orders": orders})
	p, err := NewProject(scanOf(t, orders, "orders"),
		[]Expr{
			&ColRef{Idx: 0},
			&Bin{Op: OpMul, L: &ColRef{Idx: 2}, R: &Lit{V: table.FloatValue(2)}},
		},
		[]string{"id", "double_total"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Cols[1].Type != table.Float {
		t.Fatalf("double_total type = %s", got.Schema.Cols[1].Type)
	}
	if got.Cols[1].Floats[0] != 199 {
		t.Fatalf("double_total[0] = %v", got.Cols[1].Floats[0])
	}
}

func TestProjectTypeErrorAtPlanTime(t *testing.T) {
	orders := ordersTable(t)
	_, err := NewProject(scanOf(t, orders, "orders"),
		[]Expr{&Bin{Op: OpAdd, L: &ColRef{Idx: 3}, R: &Lit{V: table.IntValue(1)}}},
		[]string{"bad"})
	if err == nil {
		t.Fatal("string arithmetic accepted at plan time")
	}
}

func TestHashJoinInner(t *testing.T) {
	orders, cust := ordersTable(t), custTable(t)
	ctx := fixedResolver(map[string]*table.Table{"orders": orders, "cust": cust})
	j := &HashJoin{
		Left: scanOf(t, orders, "orders"), Right: scanOf(t, cust, "cust"),
		LeftKeys: []int{1}, RightKeys: []int{0},
	}
	got, err := j.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Customers 10 (2 orders) and 11 (1 order) match; 12 has no customer
	// row, 13 has no orders.
	if got.NumRows() != 3 {
		t.Fatalf("join rows = %d, want 3", got.NumRows())
	}
	if got.Schema.NumCols() != 6 {
		t.Fatalf("join cols = %d, want 6", got.Schema.NumCols())
	}
}

func TestHashJoinEmptyKeyListRejected(t *testing.T) {
	orders := ordersTable(t)
	ctx := fixedResolver(map[string]*table.Table{"orders": orders})
	j := &HashJoin{Left: scanOf(t, orders, "orders"), Right: scanOf(t, orders, "orders")}
	if _, err := j.Run(ctx); err == nil {
		t.Fatal("empty key join accepted")
	}
}

// nested-loop reference join for the property test.
func nestedLoopJoin(l, r *table.Table, lk, rk []int) [][2]int {
	var out [][2]int
	for i := 0; i < l.NumRows(); i++ {
		for j := 0; j < r.NumRows(); j++ {
			match := true
			for k := range lk {
				c, err := l.Cols[lk[k]].Value(i).Compare(r.Cols[rk[k]].Value(j))
				if err != nil || c != 0 {
					match = false
					break
				}
			}
			if match {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

func TestHashJoinMatchesNestedLoopProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int) *table.Table {
			tb := table.New(table.NewSchema(
				table.Column{Name: "k", Type: table.Int},
				table.Column{Name: "v", Type: table.Str},
			))
			for i := 0; i < n; i++ {
				_ = tb.AppendRow(table.IntValue(rng.Int63n(8)), table.StrValue(strings.Repeat("x", rng.Intn(3))))
			}
			return tb
		}
		l, r := mk(rng.Intn(30)), mk(rng.Intn(30))
		ctx := fixedResolver(map[string]*table.Table{"l": l, "r": r})
		j := &HashJoin{
			Left:     &Scan{Name: "l", Sch: l.Schema},
			Right:    &Scan{Name: "r", Sch: r.Schema},
			LeftKeys: []int{0}, RightKeys: []int{0},
		}
		got, err := j.Run(ctx)
		if err != nil {
			return false
		}
		want := nestedLoopJoin(l, r, []int{0}, []int{0})
		if got.NumRows() != len(want) {
			return false
		}
		// Hash join preserves left-major order with our build/probe.
		for i, pair := range want {
			if got.Cols[0].Ints[i] != l.Cols[0].Ints[pair[0]] {
				return false
			}
			if got.Cols[2].Ints[i] != r.Cols[0].Ints[pair[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateGroupBy(t *testing.T) {
	orders := ordersTable(t)
	ctx := fixedResolver(map[string]*table.Table{"orders": orders})
	agg, err := NewAggregate(scanOf(t, orders, "orders"),
		[]int{1}, // group by o_cust
		[]AggSpec{
			{Func: AggCount, Name: "n"},
			{Func: AggSum, Arg: &ColRef{Idx: 2}, Name: "total"},
			{Func: AggMax, Arg: &ColRef{Idx: 2}, Name: "biggest"},
		})
	if err != nil {
		t.Fatal(err)
	}
	got, err := agg.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3", got.NumRows())
	}
	// First group in input order is customer 10: count 2, sum 119.5.
	if got.Cols[0].Ints[0] != 10 || got.Cols[1].Ints[0] != 2 || got.Cols[2].Floats[0] != 119.5 {
		t.Fatalf("group row = %v", got.Row(0))
	}
	if got.Cols[3].Floats[0] != 99.5 {
		t.Fatalf("max = %v", got.Cols[3].Floats[0])
	}
}

func TestAggregateGlobalEmptyInput(t *testing.T) {
	empty := table.New(table.NewSchema(table.Column{Name: "x", Type: table.Int}))
	ctx := fixedResolver(map[string]*table.Table{"e": empty})
	agg, err := NewAggregate(&Scan{Name: "e", Sch: empty.Schema}, nil,
		[]AggSpec{{Func: AggCount, Name: "n"}, {Func: AggSum, Arg: &ColRef{Idx: 0}, Name: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := agg.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 || got.Cols[0].Ints[0] != 0 {
		t.Fatalf("global agg over empty: %v", got.Row(0))
	}
}

func TestAggregateMatchesNaiveSumProperty(t *testing.T) {
	f := func(vals []int8) bool {
		tb := table.New(table.NewSchema(
			table.Column{Name: "g", Type: table.Int},
			table.Column{Name: "v", Type: table.Int},
		))
		want := map[int64]int64{}
		for i, v := range vals {
			g := int64(i % 3)
			_ = tb.AppendRow(table.IntValue(g), table.IntValue(int64(v)))
			want[g] += int64(v)
		}
		ctx := fixedResolver(map[string]*table.Table{"t": tb})
		agg, err := NewAggregate(&Scan{Name: "t", Sch: tb.Schema}, []int{0},
			[]AggSpec{{Func: AggSum, Arg: &ColRef{Idx: 1}, Name: "s"}})
		if err != nil {
			return false
		}
		got, err := agg.Run(ctx)
		if err != nil {
			return false
		}
		if got.NumRows() != len(want) {
			return false
		}
		for i := 0; i < got.NumRows(); i++ {
			if got.Cols[1].Ints[i] != want[got.Cols[0].Ints[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortAscDescStable(t *testing.T) {
	orders := ordersTable(t)
	ctx := fixedResolver(map[string]*table.Table{"orders": orders})
	s := &Sort{Input: scanOf(t, orders, "orders"), Keys: []SortKey{{Col: 1, Desc: false}, {Col: 2, Desc: true}}}
	got, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	custs := got.Cols[1].Ints
	for i := 1; i < len(custs); i++ {
		if custs[i-1] > custs[i] {
			t.Fatalf("not sorted by cust: %v", custs)
		}
	}
	// Within customer 10: totals descending 99.5 then 20.
	if got.Cols[2].Floats[0] != 99.5 || got.Cols[2].Floats[1] != 20 {
		t.Fatalf("secondary sort wrong: %v", got.Cols[2].Floats)
	}
}

func TestLimit(t *testing.T) {
	orders := ordersTable(t)
	ctx := fixedResolver(map[string]*table.Table{"orders": orders})
	got, err := (&Limit{Input: scanOf(t, orders, "orders"), N: 2}).Run(ctx)
	if err != nil || got.NumRows() != 2 {
		t.Fatalf("limit: %d rows, %v", got.NumRows(), err)
	}
	got, err = (&Limit{Input: scanOf(t, orders, "orders"), N: 100}).Run(ctx)
	if err != nil || got.NumRows() != 5 {
		t.Fatalf("limit over-count: %d rows, %v", got.NumRows(), err)
	}
}

func TestUnionAll(t *testing.T) {
	orders := ordersTable(t)
	ctx := fixedResolver(map[string]*table.Table{"orders": orders})
	u := &UnionAll{Inputs: []Node{scanOf(t, orders, "orders"), scanOf(t, orders, "orders")}}
	got, err := u.Run(ctx)
	if err != nil || got.NumRows() != 10 {
		t.Fatalf("union: %d rows, %v", got.NumRows(), err)
	}
	mismatched := &UnionAll{Inputs: []Node{scanOf(t, orders, "orders"), scanOf(t, custTable(t), "cust")}}
	if _, err := mismatched.Run(ctx); err == nil {
		t.Fatal("schema mismatch union accepted")
	}
}

func TestExprShortCircuit(t *testing.T) {
	// (0 AND (1/0)) must not evaluate the division.
	e := &Bin{Op: OpAnd,
		L: &Lit{V: table.IntValue(0)},
		R: &Bin{Op: OpDiv, L: &Lit{V: table.IntValue(1)}, R: &Lit{V: table.IntValue(0)}},
	}
	v, err := e.Eval(nil)
	if err != nil || v.I != 0 {
		t.Fatalf("AND short-circuit: %v, %v", v, err)
	}
	e2 := &Bin{Op: OpOr,
		L: &Lit{V: table.IntValue(1)},
		R: &Bin{Op: OpDiv, L: &Lit{V: table.IntValue(1)}, R: &Lit{V: table.IntValue(0)}},
	}
	v, err = e2.Eval(nil)
	if err != nil || v.I != 1 {
		t.Fatalf("OR short-circuit: %v, %v", v, err)
	}
}

func TestExprErrors(t *testing.T) {
	div := &Bin{Op: OpDiv, L: &Lit{V: table.IntValue(1)}, R: &Lit{V: table.IntValue(0)}}
	if _, err := div.Eval(nil); err == nil {
		t.Fatal("division by zero accepted")
	}
	mod := &Bin{Op: OpMod, L: &Lit{V: table.IntValue(1)}, R: &Lit{V: table.IntValue(0)}}
	if _, err := mod.Eval(nil); err == nil {
		t.Fatal("modulo by zero accepted")
	}
	badCmp := &Bin{Op: OpLt, L: &Lit{V: table.StrValue("a")}, R: &Lit{V: table.IntValue(1)}}
	if _, err := badCmp.Eval(nil); err == nil {
		t.Fatal("string<int comparison accepted")
	}
}

func TestInListAndNot(t *testing.T) {
	in := &InList{E: &Lit{V: table.IntValue(2)}, List: []table.Value{table.IntValue(1), table.IntValue(2)}}
	v, err := in.Eval(nil)
	if err != nil || v.I != 1 {
		t.Fatalf("IN: %v, %v", v, err)
	}
	n := &Not{E: in}
	v, err = n.Eval(nil)
	if err != nil || v.I != 0 {
		t.Fatalf("NOT IN: %v, %v", v, err)
	}
}

func TestIntArithmeticStaysInt(t *testing.T) {
	e := &Bin{Op: OpAdd, L: &Lit{V: table.IntValue(2)}, R: &Lit{V: table.IntValue(3)}}
	v, err := e.Eval(nil)
	if err != nil || v.Type != table.Int || v.I != 5 {
		t.Fatalf("2+3 = %v (%v)", v, err)
	}
	// Division always yields float.
	d := &Bin{Op: OpDiv, L: &Lit{V: table.IntValue(5)}, R: &Lit{V: table.IntValue(2)}}
	v, err = d.Eval(nil)
	if err != nil || v.Type != table.Float || v.F != 2.5 {
		t.Fatalf("5/2 = %v (%v)", v, err)
	}
}

// Sort must output a permutation of its input, ordered by the key.
func TestSortPermutationProperty(t *testing.T) {
	f := func(vals []int16) bool {
		tb := table.New(table.NewSchema(table.Column{Name: "v", Type: table.Int}))
		sum := int64(0)
		for _, v := range vals {
			_ = tb.AppendRow(table.IntValue(int64(v)))
			sum += int64(v)
		}
		ctx := fixedResolver(map[string]*table.Table{"t": tb})
		got, err := (&Sort{Input: &Scan{Name: "t", Sch: tb.Schema}, Keys: []SortKey{{Col: 0}}}).Run(ctx)
		if err != nil || got.NumRows() != len(vals) {
			return false
		}
		var gotSum int64
		for i, v := range got.Cols[0].Ints {
			gotSum += v
			if i > 0 && got.Cols[0].Ints[i-1] > v {
				return false
			}
		}
		return gotSum == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Filter(pred) and Filter(NOT pred) must partition the input exactly.
func TestFilterPartitionProperty(t *testing.T) {
	f := func(vals []int8, threshold int8) bool {
		tb := table.New(table.NewSchema(table.Column{Name: "v", Type: table.Int}))
		for _, v := range vals {
			_ = tb.AppendRow(table.IntValue(int64(v)))
		}
		ctx := fixedResolver(map[string]*table.Table{"t": tb})
		pred := &Bin{Op: OpGt, L: &ColRef{Idx: 0}, R: &Lit{V: table.IntValue(int64(threshold))}}
		pos, err := (&Filter{Input: &Scan{Name: "t", Sch: tb.Schema}, Pred: pred}).Run(ctx)
		if err != nil {
			return false
		}
		neg, err := (&Filter{Input: &Scan{Name: "t", Sch: tb.Schema}, Pred: &Not{E: pred}}).Run(ctx)
		if err != nil {
			return false
		}
		return pos.NumRows()+neg.NumRows() == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// AVG must equal SUM/COUNT per group.
func TestAggregateAvgConsistencyProperty(t *testing.T) {
	f := func(vals []int8) bool {
		tb := table.New(table.NewSchema(
			table.Column{Name: "g", Type: table.Int},
			table.Column{Name: "v", Type: table.Float},
		))
		for i, v := range vals {
			_ = tb.AppendRow(table.IntValue(int64(i%4)), table.FloatValue(float64(v)))
		}
		ctx := fixedResolver(map[string]*table.Table{"t": tb})
		agg, err := NewAggregate(&Scan{Name: "t", Sch: tb.Schema}, []int{0}, []AggSpec{
			{Func: AggSum, Arg: &ColRef{Idx: 1}, Name: "s"},
			{Func: AggCount, Name: "n"},
			{Func: AggAvg, Arg: &ColRef{Idx: 1}, Name: "a"},
		})
		if err != nil {
			return false
		}
		got, err := agg.Run(ctx)
		if err != nil {
			return false
		}
		for i := 0; i < got.NumRows(); i++ {
			s := got.Cols[1].Floats[i]
			n := got.Cols[2].Ints[i]
			a := got.Cols[3].Floats[i]
			if n == 0 {
				return false
			}
			if diff := a - s/float64(n); diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// MIN and MAX bracket every input value of the group.
func TestAggregateMinMaxBracketProperty(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		tb := table.New(table.NewSchema(table.Column{Name: "v", Type: table.Int}))
		lo, hi := int64(vals[0]), int64(vals[0])
		for _, v := range vals {
			_ = tb.AppendRow(table.IntValue(int64(v)))
			if int64(v) < lo {
				lo = int64(v)
			}
			if int64(v) > hi {
				hi = int64(v)
			}
		}
		ctx := fixedResolver(map[string]*table.Table{"t": tb})
		agg, err := NewAggregate(&Scan{Name: "t", Sch: tb.Schema}, nil, []AggSpec{
			{Func: AggMin, Arg: &ColRef{Idx: 0}, Name: "lo"},
			{Func: AggMax, Arg: &ColRef{Idx: 0}, Name: "hi"},
		})
		if err != nil {
			return false
		}
		got, err := agg.Run(ctx)
		if err != nil || got.NumRows() != 1 {
			return false
		}
		return got.Cols[0].Ints[0] == lo && got.Cols[1].Ints[0] == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
