package engine

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/shortcircuit-db/sc/internal/encoding"
	"github.com/shortcircuit-db/sc/internal/sched"
	"github.com/shortcircuit-db/sc/internal/table"
)

// Context supplies table resolution during execution. The controller wires
// Resolve to check the Memory Catalog first and fall back to external
// storage, which is where S/C's read short-circuiting happens.
type Context struct {
	Resolve func(name string) (*table.Table, error)
	// ResolveCompressed, when non-nil, resolves a table in compressed
	// chunked form without decoding any chunk: compressed Memory Catalog
	// entries are returned as-is and chunked storage files are parsed
	// lazily. Kernel-backed operators (internal/kernels) use it to decode
	// per chunk instead of per table; (nil, nil) means the table is not
	// available in chunked form and the caller should fall back to Resolve.
	ResolveCompressed func(name string) (*encoding.Compressed, error)
	// Sched, when non-nil, is the scheduler-wide token budget shared with
	// the exec Controller's node dispatcher. Kernels may widen a chunk scan
	// by borrowing idle tokens (sched.Scheduler.TryAcquire — never
	// blocking), so intra-node parallelism composes with node-level
	// parallelism under one bound.
	Sched *sched.Scheduler
	// ParallelScan enables the kernels' partitioned chunk path when Sched
	// has idle tokens to lend. Output stays byte-identical to serial.
	ParallelScan bool
}

// Node is an executable plan operator.
type Node interface {
	// Schema returns the operator's output schema.
	Schema() table.Schema
	// Run executes the operator and returns its full result.
	Run(ctx *Context) (*table.Table, error)
	// String renders a one-line description for plan display.
	String() string
}

// --- Scan ---

// Scan reads a named table. The expected schema is fixed at plan time; at
// run time the resolved table must match.
type Scan struct {
	Name string
	Sch  table.Schema
}

// Schema implements Node.
func (s *Scan) Schema() table.Schema { return s.Sch }

// Run implements Node.
func (s *Scan) Run(ctx *Context) (*table.Table, error) {
	if ctx == nil || ctx.Resolve == nil {
		return nil, fmt.Errorf("engine: no resolver for scan of %q", s.Name)
	}
	t, err := ctx.Resolve(s.Name)
	if err != nil {
		return nil, fmt.Errorf("engine: scan %q: %w", s.Name, err)
	}
	if !t.Schema.Equal(s.Sch) {
		return nil, fmt.Errorf("engine: scan %q: schema %s, expected %s", s.Name, t.Schema, s.Sch)
	}
	return t, nil
}

// String implements Node.
func (s *Scan) String() string { return fmt.Sprintf("Scan(%s)", s.Name) }

// --- Filter ---

// Filter keeps rows where Pred is truthy.
type Filter struct {
	Input Node
	Pred  Expr
}

// Schema implements Node.
func (f *Filter) Schema() table.Schema { return f.Input.Schema() }

// Run implements Node.
func (f *Filter) Run(ctx *Context) (*table.Table, error) {
	in, err := f.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	var idx []int
	row := make([]table.Value, len(in.Cols))
	for i := 0; i < in.NumRows(); i++ {
		fillRow(in, i, row)
		v, err := f.Pred.Eval(row)
		if err != nil {
			return nil, fmt.Errorf("engine: filter: %w", err)
		}
		if truthy(v) {
			idx = append(idx, i)
		}
	}
	return in.Gather(idx), nil
}

// String implements Node.
func (f *Filter) String() string { return fmt.Sprintf("Filter(%s)", f.Pred) }

// --- Project ---

// Project computes one output column per expression.
type Project struct {
	Input Node
	Exprs []Expr
	Names []string
	sch   table.Schema
}

// NewProject builds a projection, computing the output schema eagerly so
// type errors surface at plan time.
func NewProject(input Node, exprs []Expr, names []string) (*Project, error) {
	if len(exprs) != len(names) {
		return nil, fmt.Errorf("engine: %d exprs, %d names", len(exprs), len(names))
	}
	inSch := input.Schema()
	p := &Project{Input: input, Exprs: exprs, Names: names}
	for i, e := range exprs {
		t, err := e.Type(inSch)
		if err != nil {
			return nil, fmt.Errorf("engine: project %q: %w", names[i], err)
		}
		p.sch.Cols = append(p.sch.Cols, table.Column{Name: names[i], Type: t})
	}
	return p, nil
}

// Schema implements Node.
func (p *Project) Schema() table.Schema { return p.sch }

// Run implements Node.
func (p *Project) Run(ctx *Context) (*table.Table, error) {
	in, err := p.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := table.New(p.sch)
	row := make([]table.Value, len(in.Cols))
	vals := make([]table.Value, len(p.Exprs))
	for i := 0; i < in.NumRows(); i++ {
		fillRow(in, i, row)
		for c, e := range p.Exprs {
			v, err := e.Eval(row)
			if err != nil {
				return nil, fmt.Errorf("engine: project %q: %w", p.Names[c], err)
			}
			vals[c] = coerce(v, p.sch.Cols[c].Type)
		}
		if err := out.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// String implements Node.
func (p *Project) String() string { return fmt.Sprintf("Project(%d cols)", len(p.Exprs)) }

// coerce widens INT to FLOAT when the planned type demands it (mixed
// arithmetic can produce either at runtime).
func coerce(v table.Value, want table.Type) table.Value {
	if v.Type == table.Int && want == table.Float {
		return table.FloatValue(float64(v.I))
	}
	return v
}

// --- HashJoin ---

// HashJoin is an inner equi-join: build a hash table on the right input,
// probe with the left. Output columns are left columns followed by right
// columns.
type HashJoin struct {
	Left, Right         Node
	LeftKeys, RightKeys []int // column indices, parallel slices
}

// Schema implements Node.
func (j *HashJoin) Schema() table.Schema {
	var sch table.Schema
	sch.Cols = append(sch.Cols, j.Left.Schema().Cols...)
	sch.Cols = append(sch.Cols, j.Right.Schema().Cols...)
	return sch
}

// Run implements Node.
func (j *HashJoin) Run(ctx *Context) (*table.Table, error) {
	if len(j.LeftKeys) != len(j.RightKeys) || len(j.LeftKeys) == 0 {
		return nil, fmt.Errorf("engine: join needs matching non-empty key lists")
	}
	left, err := j.Left.Run(ctx)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.Run(ctx)
	if err != nil {
		return nil, err
	}
	build := make(map[string][]int)
	var key []byte
	for i := 0; i < right.NumRows(); i++ {
		key = key[:0]
		for _, c := range j.RightKeys {
			key = appendKey(key, right.Cols[c].Value(i))
		}
		build[string(key)] = append(build[string(key)], i)
	}
	var leftIdx, rightIdx []int
	for i := 0; i < left.NumRows(); i++ {
		key = key[:0]
		for _, c := range j.LeftKeys {
			key = appendKey(key, left.Cols[c].Value(i))
		}
		for _, r := range build[string(key)] {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, r)
		}
	}
	lg := left.Gather(leftIdx)
	rg := right.Gather(rightIdx)
	out := &table.Table{Schema: j.Schema()}
	out.Cols = append(out.Cols, lg.Cols...)
	out.Cols = append(out.Cols, rg.Cols...)
	return out, nil
}

// String implements Node.
func (j *HashJoin) String() string {
	return fmt.Sprintf("HashJoin(keys=%v=%v)", j.LeftKeys, j.RightKeys)
}

// appendKey encodes a value unambiguously into a join/group key, bucketing
// values together when OpEq compares them equal: negative zero folds into
// positive zero (-0.0 == 0.0; the %g formatting this replaced split them).
// NaN is the deliberate exception — Value.Compare reports NaN equal to
// EVERY float, which no hash key can express, so keys bucket all NaNs
// together and apart from ordinary numbers; TestJoinKeyNaN pins that
// asymmetry. Keys build with strconv into a caller-reused buffer instead
// of allocating through fmt.Fprintf per value.
func appendKey(b []byte, v table.Value) []byte {
	switch v.Type {
	case table.Int:
		b = append(b, 'i')
		b = strconv.AppendInt(b, v.I, 10)
	case table.Float:
		f := v.F
		if f == 0 {
			f = 0 // fold -0.0 into +0.0: OpEq compares them equal
		}
		b = append(b, 'f')
		b = strconv.AppendFloat(b, f, 'g', -1, 64)
	default:
		b = append(b, 's')
		b = strconv.AppendInt(b, int64(len(v.S)), 10)
		b = append(b, ':')
		b = append(b, v.S...)
	}
	return append(b, '|')
}

// --- Aggregate ---

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota // COUNT(*) when Arg is nil
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = map[AggFunc]string{
	AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX",
}

// AggSpec is one aggregate output column.
type AggSpec struct {
	Func AggFunc
	Arg  Expr // nil only for COUNT(*)
	Name string
}

// Aggregate is a hash aggregation: group by the given input column indices
// and compute each AggSpec per group. Output columns are the group-by
// columns followed by the aggregates. With no group-by columns it produces
// exactly one row (global aggregation).
type Aggregate struct {
	Input   Node
	GroupBy []int
	Aggs    []AggSpec
	sch     table.Schema
}

// NewAggregate builds an aggregation, validating argument types eagerly.
func NewAggregate(input Node, groupBy []int, aggs []AggSpec) (*Aggregate, error) {
	inSch := input.Schema()
	a := &Aggregate{Input: input, GroupBy: groupBy, Aggs: aggs}
	for _, g := range groupBy {
		if g < 0 || g >= inSch.NumCols() {
			return nil, fmt.Errorf("engine: group-by column %d out of range", g)
		}
		a.sch.Cols = append(a.sch.Cols, inSch.Cols[g])
	}
	for _, spec := range aggs {
		var t table.Type
		switch {
		case spec.Func == AggCount:
			t = table.Int
		case spec.Arg == nil:
			return nil, fmt.Errorf("engine: %s requires an argument", aggNames[spec.Func])
		default:
			at, err := spec.Arg.Type(inSch)
			if err != nil {
				return nil, fmt.Errorf("engine: agg %q: %w", spec.Name, err)
			}
			if spec.Func == AggMin || spec.Func == AggMax {
				t = at
			} else if spec.Func == AggAvg {
				t = table.Float
			} else { // SUM
				if at == table.Str {
					return nil, fmt.Errorf("engine: SUM over STRING")
				}
				t = at
			}
		}
		a.sch.Cols = append(a.sch.Cols, table.Column{Name: spec.Name, Type: t})
	}
	return a, nil
}

// Schema implements Node.
func (a *Aggregate) Schema() table.Schema { return a.sch }

type aggState struct {
	count   int64
	sumF    float64
	sumI    int64
	min     table.Value
	max     table.Value
	haveExt bool
}

type aggGroup struct {
	keyRow []table.Value
	states []aggState
}

// AggAcc accumulates input rows into an Aggregate's groups. It exists so
// the compressed-execution kernels (internal/kernels) share the row
// engine's grouping, accumulation and output-ordering semantics by
// construction: Aggregate.Run itself is implemented on top of it, and a
// kernel feeding the same rows in the same order produces a byte-identical
// result table.
type AggAcc struct {
	a      *Aggregate
	groups map[string]*aggGroup
	order  []string
	key    []byte // reused group-key buffer
	// sumFLive marks specs whose float accumulator is output-relevant, so
	// AddRepeat knows when it must reproduce bit-exact repeated addition
	// and when a closed form suffices.
	sumFLive []bool
}

// NewAcc returns an empty accumulator for the aggregate.
func (a *Aggregate) NewAcc() *AggAcc {
	acc := &AggAcc{a: a, groups: make(map[string]*aggGroup)}
	for si, spec := range a.Aggs {
		outType := a.sch.Cols[len(a.GroupBy)+si].Type
		acc.sumFLive = append(acc.sumFLive,
			spec.Func == AggAvg || (spec.Func == AggSum && outType == table.Float))
	}
	return acc
}

// group finds or creates the group for the current input row. The map
// lookup converts the key buffer without allocating; a string key is only
// materialized once per distinct group.
func (acc *AggAcc) group(row []table.Value) *aggGroup {
	a := acc.a
	acc.key = acc.key[:0]
	for _, g := range a.GroupBy {
		acc.key = appendKey(acc.key, row[g])
	}
	grp, ok := acc.groups[string(acc.key)]
	if !ok {
		k := string(acc.key)
		keyRow := make([]table.Value, len(a.GroupBy))
		for gi, g := range a.GroupBy {
			keyRow[gi] = row[g]
		}
		grp = &aggGroup{keyRow: keyRow, states: make([]aggState, len(a.Aggs))}
		acc.groups[k] = grp
		acc.order = append(acc.order, k)
	}
	return grp
}

// Add folds one input row into the accumulator.
func (acc *AggAcc) Add(row []table.Value) error {
	return acc.AddRepeat(row, 1)
}

// AddRepeat folds n identical input rows into the accumulator, as if Add
// were called n times: counts and integer sums accumulate in closed form,
// while output-relevant float sums repeat the addition so the result stays
// bit-identical to the row-at-a-time engine. RLE aggregation kernels use
// it to consume a run without expanding it.
func (acc *AggAcc) AddRepeat(row []table.Value, n int) error {
	if n <= 0 {
		return nil
	}
	grp := acc.group(row)
	for si, spec := range acc.a.Aggs {
		st := &grp.states[si]
		if spec.Func == AggCount && spec.Arg == nil {
			st.count += int64(n)
			continue
		}
		v, err := spec.Arg.Eval(row)
		if err != nil {
			return fmt.Errorf("engine: agg %q: %w", spec.Name, err)
		}
		st.count += int64(n)
		switch spec.Func {
		case AggSum, AggAvg:
			if v.Type == table.Str {
				return fmt.Errorf("engine: %s over STRING", aggNames[spec.Func])
			}
			if acc.sumFLive[si] {
				f := v.AsFloat()
				for r := 0; r < n; r++ {
					st.sumF += f
				}
			}
			if v.Type == table.Int {
				st.sumI += v.I * int64(n)
			}
		case AggMin, AggMax:
			if !st.haveExt {
				st.min, st.max, st.haveExt = v, v, true
				continue
			}
			if c, err := v.Compare(st.min); err == nil && c < 0 {
				st.min = v
			}
			if c, err := v.Compare(st.max); err == nil && c > 0 {
				st.max = v
			}
		}
	}
	return nil
}

// ExactMergeable reports whether partial accumulators for this aggregate
// merge without changing the result's bytes. Counts, integer sums and
// Compare-based min/max are order-insensitive; an output-relevant float
// sum (AVG, or SUM with a float result) is not — its value depends on the
// exact addition order — so such aggregates must accumulate serially.
func (acc *AggAcc) ExactMergeable() bool {
	for _, live := range acc.sumFLive {
		if live {
			return false
		}
	}
	return true
}

// Merge folds another accumulator for the same aggregate into acc,
// preserving first-appearance group order: groups already in acc keep
// their position, and other's new groups append in other's own order. The
// chunk-parallel aggregation kernel merges per-partition accumulators in
// partition order, which makes the merged result identical to a serial
// pass whenever ExactMergeable holds.
func (acc *AggAcc) Merge(other *AggAcc) {
	for _, k := range other.order {
		og := other.groups[k]
		grp, ok := acc.groups[k]
		if !ok {
			acc.groups[k] = og
			acc.order = append(acc.order, k)
			continue
		}
		for si := range grp.states {
			st, os := &grp.states[si], &og.states[si]
			st.count += os.count
			st.sumI += os.sumI
			st.sumF += os.sumF
			if os.haveExt {
				if !st.haveExt {
					st.min, st.max, st.haveExt = os.min, os.max, true
					continue
				}
				// Strict comparisons keep acc's (earlier partition's) value
				// on ties, matching what serial accumulation would have kept.
				if c, err := os.min.Compare(st.min); err == nil && c < 0 {
					st.min = os.min
				}
				if c, err := os.max.Compare(st.max); err == nil && c > 0 {
					st.max = os.max
				}
			}
		}
	}
}

// Result builds the output table: group keys in first-appearance order,
// and for a global aggregation over empty input the single row of zeros.
func (acc *AggAcc) Result() (*table.Table, error) {
	a := acc.a
	if len(a.GroupBy) == 0 && len(acc.groups) == 0 {
		acc.groups[""] = &aggGroup{states: make([]aggState, len(a.Aggs))}
		acc.order = append(acc.order, "")
	}
	out := table.New(a.sch)
	for _, k := range acc.order {
		grp := acc.groups[k]
		vals := make([]table.Value, 0, a.sch.NumCols())
		vals = append(vals, grp.keyRow...)
		for si, spec := range a.Aggs {
			st := grp.states[si]
			outType := a.sch.Cols[len(a.GroupBy)+si].Type
			switch spec.Func {
			case AggCount:
				vals = append(vals, table.IntValue(st.count))
			case AggSum:
				if outType == table.Int {
					vals = append(vals, table.IntValue(st.sumI))
				} else {
					vals = append(vals, table.FloatValue(st.sumF))
				}
			case AggAvg:
				if st.count == 0 {
					vals = append(vals, table.FloatValue(0))
				} else {
					vals = append(vals, table.FloatValue(st.sumF/float64(st.count)))
				}
			case AggMin:
				vals = append(vals, extremeOrZero(st.min, st.haveExt, outType))
			case AggMax:
				vals = append(vals, extremeOrZero(st.max, st.haveExt, outType))
			}
		}
		if err := out.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Run implements Node.
func (a *Aggregate) Run(ctx *Context) (*table.Table, error) {
	in, err := a.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	acc := a.NewAcc()
	row := make([]table.Value, len(in.Cols))
	for i := 0; i < in.NumRows(); i++ {
		fillRow(in, i, row)
		if err := acc.Add(row); err != nil {
			return nil, err
		}
	}
	return acc.Result()
}

func extremeOrZero(v table.Value, have bool, t table.Type) table.Value {
	if have {
		return coerce(v, t)
	}
	switch t {
	case table.Int:
		return table.IntValue(0)
	case table.Float:
		return table.FloatValue(0)
	default:
		return table.StrValue("")
	}
}

// String implements Node.
func (a *Aggregate) String() string {
	return fmt.Sprintf("Aggregate(groups=%v, aggs=%d)", a.GroupBy, len(a.Aggs))
}

// --- Sort ---

// SortKey orders by one column.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort orders rows by the given keys (stable).
type Sort struct {
	Input Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() table.Schema { return s.Input.Schema() }

// Run implements Node.
func (s *Sort) Run(ctx *Context) (*table.Table, error) {
	in, err := s.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	idx := make([]int, in.NumRows())
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		for _, k := range s.Keys {
			va := in.Cols[k.Col].Value(idx[a])
			vb := in.Cols[k.Col].Value(idx[b])
			c, err := va.Compare(vb)
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return nil, fmt.Errorf("engine: sort: %w", sortErr)
	}
	return in.Gather(idx), nil
}

// String implements Node.
func (s *Sort) String() string { return fmt.Sprintf("Sort(%d keys)", len(s.Keys)) }

// --- Limit ---

// Limit passes through at most N rows.
type Limit struct {
	Input Node
	N     int
}

// Schema implements Node.
func (l *Limit) Schema() table.Schema { return l.Input.Schema() }

// Run implements Node.
func (l *Limit) Run(ctx *Context) (*table.Table, error) {
	in, err := l.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	n := l.N
	if n > in.NumRows() {
		n = in.NumRows()
	}
	if n < 0 {
		n = 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return in.Gather(idx), nil
}

// String implements Node.
func (l *Limit) String() string { return fmt.Sprintf("Limit(%d)", l.N) }

// --- UnionAll ---

// UnionAll concatenates inputs with identical schemas.
type UnionAll struct {
	Inputs []Node
}

// Schema implements Node.
func (u *UnionAll) Schema() table.Schema {
	if len(u.Inputs) == 0 {
		return table.Schema{}
	}
	return u.Inputs[0].Schema()
}

// Run implements Node.
func (u *UnionAll) Run(ctx *Context) (*table.Table, error) {
	if len(u.Inputs) == 0 {
		return table.New(table.Schema{}), nil
	}
	sch := u.Inputs[0].Schema()
	out := table.New(sch)
	for _, in := range u.Inputs {
		if !in.Schema().Equal(sch) {
			return nil, fmt.Errorf("engine: UNION ALL schema mismatch: %s vs %s", in.Schema(), sch)
		}
		t, err := in.Run(ctx)
		if err != nil {
			return nil, err
		}
		for c, v := range t.Cols {
			switch v.Type {
			case table.Int:
				out.Cols[c].Ints = append(out.Cols[c].Ints, v.Ints...)
			case table.Float:
				out.Cols[c].Floats = append(out.Cols[c].Floats, v.Floats...)
			default:
				out.Cols[c].Strs = append(out.Cols[c].Strs, v.Strs...)
			}
		}
	}
	return out, nil
}

// String implements Node.
func (u *UnionAll) String() string { return fmt.Sprintf("UnionAll(%d inputs)", len(u.Inputs)) }

// fillRow copies row i of t into row (avoiding per-row allocation).
func fillRow(t *table.Table, i int, row []table.Value) {
	for c, v := range t.Cols {
		row[c] = v.Value(i)
	}
}
