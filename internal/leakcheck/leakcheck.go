// Package leakcheck is a dependency-free goroutine-leak assertion in the
// spirit of go.uber.org/goleak (which the build deliberately does not
// vendor). Check parses the full runtime stack dump, discards the test
// harness's own goroutines, and retries with a deadline so goroutines
// that are mid-exit when the test body returns get a grace period before
// being reported.
//
// Usage, first line of the test so the cleanup runs after all others:
//
//	defer leakcheck.Check(t)
package leakcheck

import (
	"runtime"
	"strings"
	"time"
)

// TB is the subset of *testing.T Check needs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// Check asserts every goroutine started during the test has exited. It
// retries for up to five seconds — goroutines unwinding after a cancel
// or Close are given time to finish — then reports the surviving stacks.
func Check(t TB) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var leaked []string
	for {
		leaked = leakedGoroutines()
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("leaked %d goroutine(s):\n\n%s", len(leaked), strings.Join(leaked, "\n\n"))
}

// leakedGoroutines returns the stacks of all non-harness goroutines other
// than the caller's.
func leakedGoroutines() []string {
	buf := make([]byte, 2<<20)
	n := runtime.Stack(buf, true)
	stacks := strings.Split(string(buf[:n]), "\n\n")
	var out []string
	for i, g := range stacks {
		if i == 0 || harness(g) {
			// The current goroutine is always first in the dump.
			continue
		}
		out = append(out, g)
	}
	return out
}

// harness reports whether a goroutine belongs to the test binary itself
// rather than code under test: the testing main loop, parked runners of
// parallel tests, and the os/signal watcher the runtime starts lazily.
func harness(g string) bool {
	for _, pat := range []string{
		"testing.Main(",
		"testing.(*T).Run(",
		"testing.tRunner(",
		"testing.runTests(",
		"signal.signal_recv",
		"signal.loop",
		"runtime.ensureSigM",
	} {
		if strings.Contains(g, pat) {
			return true
		}
	}
	return false
}
