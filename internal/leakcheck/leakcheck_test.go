package leakcheck

import (
	"strings"
	"testing"
)

// recorder captures Errorf output so the checker can be tested both ways.
type recorder struct {
	msgs []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.msgs = append(r.msgs, format)
}

func TestCheckPassesWhenClean(t *testing.T) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	var r recorder
	Check(&r)
	if len(r.msgs) != 0 {
		t.Fatalf("clean state reported as leak: %v", r.msgs)
	}
}

// TestCheckDetectsLeak proves the checker is not vacuously green: a
// goroutine parked on a channel must show up in the leak report. It
// probes leakedGoroutines directly rather than Check to avoid paying the
// checker's full 5-second retry window on the intentionally-failing path.
func TestCheckDetectsLeak(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop // parked until the test ends: a deliberate leak
	}()
	<-started

	found := false
	for _, g := range leakedGoroutines() {
		if strings.Contains(g, "leakcheck.TestCheckDetectsLeak") {
			found = true
		}
	}
	if !found {
		t.Fatal("parked goroutine not reported by leakedGoroutines")
	}
}
