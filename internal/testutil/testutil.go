// Package testutil provides shared problem fixtures for tests across the
// optimizer packages: the paper's toy examples and random problem
// generators for property-based testing.
package testutil

import (
	"math/rand"

	"github.com/shortcircuit-db/sc/internal/core"
	"github.com/shortcircuit-db/sc/internal/dag"
)

// GB is one gibibyte.
const GB = int64(1) << 30

// Figure7 builds the toy example of Figure 7: six nodes where execution
// order determines whether both 100GB nodes can be flagged under a 100GB
// Memory Catalog. Speedup scores equal sizes in GB.
//
// Edges: v1→v2, v1→v4, v2→v3, v3→v5; v6 is isolated.
func Figure7() *core.Problem {
	g := dag.New()
	v1 := g.AddNode("v1")
	v2 := g.AddNode("v2")
	v3 := g.AddNode("v3")
	v4 := g.AddNode("v4")
	v5 := g.AddNode("v5")
	g.AddNode("v6")
	g.MustAddEdge(v1, v2)
	g.MustAddEdge(v1, v4)
	g.MustAddEdge(v2, v3)
	g.MustAddEdge(v3, v5)
	return &core.Problem{
		G:      g,
		Sizes:  []int64{100 * GB, 10 * GB, 100 * GB, 10 * GB, 10 * GB, 10 * GB},
		Scores: []float64{100, 10, 100, 10, 10, 10},
		Memory: 100 * GB,
	}
}

// Tau1 and Tau2 are the two orders contrasted in Figure 7.
var (
	Tau1 = []dag.NodeID{0, 1, 2, 3, 4, 5}
	Tau2 = []dag.NodeID{0, 1, 3, 2, 4, 5}
)

// Diamond builds r→{a,b}, {a,b}→c with a large flagged-candidate branch:
// sizes r=1, a=100GB, b=1, c=1. Used to exercise MA-DFS tie-breaking.
func Diamond() *core.Problem {
	g := dag.New()
	r := g.AddNode("r")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.MustAddEdge(r, a)
	g.MustAddEdge(r, b)
	g.MustAddEdge(a, c)
	g.MustAddEdge(b, c)
	return &core.Problem{
		G:      g,
		Sizes:  []int64{1, 100 * GB, 1, 1},
		Scores: []float64{1, 100, 1, 1},
		Memory: 200 * GB,
	}
}

// RandomProblem generates a random DAG problem for property tests: n in
// [3, 3+maxExtra), random forward edges, sizes in [1,100], scores in
// [0,50), memory in [50, 250).
func RandomProblem(rng *rand.Rand, maxExtra int) *core.Problem {
	g := dag.New()
	n := 3 + rng.Intn(maxExtra)
	for i := 0; i < n; i++ {
		g.AddNode("n")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				g.MustAddEdge(dag.NodeID(i), dag.NodeID(j))
			}
		}
	}
	sizes := make([]int64, n)
	scores := make([]float64, n)
	for i := range sizes {
		sizes[i] = int64(rng.Intn(100)) + 1
		scores[i] = float64(rng.Intn(50))
	}
	return &core.Problem{G: g, Sizes: sizes, Scores: scores, Memory: int64(rng.Intn(200)) + 50}
}

// RandomFlagged returns a random flagged subset of the problem's nodes.
func RandomFlagged(rng *rand.Rand, p *core.Problem) []bool {
	f := make([]bool, p.G.Len())
	for i := range f {
		f[i] = rng.Intn(2) == 0
	}
	return f
}
