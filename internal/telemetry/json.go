package telemetry

import "time"

// SpanJSON is a span's HTTP-facing shape (the gateway's
// GET /v1/runs/{id}/trace): hex IDs, RFC 3339 times, attributes as a
// plain map. The OTLP wire shape lives in otlp.go; this one is for
// humans and dashboards.
type SpanJSON struct {
	TraceID         string          `json:"trace_id"`
	SpanID          string          `json:"span_id"`
	ParentSpanID    string          `json:"parent_span_id,omitempty"`
	Name            string          `json:"name"`
	Kind            int             `json:"kind"`
	Start           time.Time       `json:"start"`
	End             time.Time       `json:"end,omitzero"`
	DurationSeconds float64         `json:"duration_seconds"`
	Attrs           map[string]any  `json:"attrs,omitempty"`
	Events          []SpanEventJSON `json:"events,omitempty"`
	Links           []SpanLinkJSON  `json:"links,omitempty"`
	Error           string          `json:"error,omitempty"`
}

// SpanEventJSON is a span event's HTTP-facing shape.
type SpanEventJSON struct {
	Name  string         `json:"name"`
	Time  time.Time      `json:"time"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// SpanLinkJSON is a span link's HTTP-facing shape.
type SpanLinkJSON struct {
	TraceID string         `json:"trace_id"`
	SpanID  string         `json:"span_id"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// SpanToJSON renders one span.
func SpanToJSON(s Span) SpanJSON {
	j := SpanJSON{
		TraceID:         s.TraceID.String(),
		SpanID:          s.SpanID.String(),
		Name:            s.Name,
		Kind:            int(s.Kind),
		Start:           s.Start,
		End:             s.End,
		DurationSeconds: s.Duration().Seconds(),
		Attrs:           attrMap(s.Attrs),
		Error:           s.Err,
	}
	if s.Parent.IsValid() {
		j.ParentSpanID = s.Parent.String()
	}
	for _, ev := range s.Events {
		j.Events = append(j.Events, SpanEventJSON{Name: ev.Name, Time: ev.Time, Attrs: attrMap(ev.Attrs)})
	}
	for _, l := range s.Links {
		j.Links = append(j.Links, SpanLinkJSON{TraceID: l.TraceID.String(), SpanID: l.SpanID.String(), Attrs: attrMap(l.Attrs)})
	}
	return j
}

// SpansToJSON renders a trace snapshot.
func SpansToJSON(spans []Span) []SpanJSON {
	out := make([]SpanJSON, len(spans))
	for i, s := range spans {
		out[i] = SpanToJSON(s)
	}
	return out
}
