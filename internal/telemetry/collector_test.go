package telemetry

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/shortcircuit-db/sc/internal/obs"
)

func spanByName(t *testing.T, spans []Span, name string) Span {
	t.Helper()
	for _, s := range spans {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("span %q not found among %d spans", name, len(spans))
	return Span{}
}

func TestCollectorRealRun(t *testing.T) {
	c := NewCollector(CollectorConfig{RunID: "run-000001"})
	c.OnEvent(obs.Event{Kind: obs.NodeStart, Node: "a", Step: 0})
	c.OnEvent(obs.Event{Kind: obs.KernelDone, Node: "a", Step: 0, Lowered: 3})
	c.OnEvent(obs.Event{Kind: obs.EncodeDone, Node: "a", Step: 0, Bytes: 100, Encoded: 40, Ratio: 2.5})
	c.OnEvent(obs.Event{Kind: obs.NodeDone, Node: "a", Step: 0, Bytes: 100, Elapsed: 5 * time.Millisecond, Flagged: true})
	// Decode of a's output while b runs: a's span is closed, so the event
	// attaches to the completed span.
	c.OnEvent(obs.Event{Kind: obs.NodeStart, Node: "b", Step: 1})
	c.OnEvent(obs.Event{Kind: obs.DecodeDone, Node: "a", Bytes: 100, Encoded: 40})
	c.OnEvent(obs.Event{Kind: obs.MemoryHighWater, Bytes: 140})
	c.OnEvent(obs.Event{Kind: obs.NodeDone, Node: "b", Step: 1, Elapsed: 3 * time.Millisecond, Err: errors.New("boom")})
	c.OnEvent(obs.Event{Kind: obs.Evicted, Node: "a", Bytes: 40})
	c.Finish(time.Time{}, "")

	spans := c.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans, want root + 2 nodes", len(spans))
	}
	root := spans[0]
	if root.StrAttr("sc.run_id") != "run-000001" || root.Kind != KindServer {
		t.Fatalf("root: %+v", root)
	}
	if root.Parent.IsValid() {
		t.Fatal("root must have no parent")
	}
	a := spanByName(t, spans, "node a")
	b := spanByName(t, spans, "node b")
	for _, sp := range []Span{a, b} {
		if sp.TraceID != root.TraceID || sp.Parent != root.SpanID {
			t.Fatalf("node span not parented under root: %+v", sp)
		}
	}
	if d := a.Duration(); d != 5*time.Millisecond {
		t.Fatalf("a duration %v: exec Elapsed must set span duration", d)
	}
	// KernelDone + EncodeDone landed while a was open; the late DecodeDone
	// and Evicted found the completed span by node name.
	names := map[string]bool{}
	for _, ev := range a.Events {
		names[ev.Name] = true
	}
	for _, want := range []string{"KernelDone", "EncodeDone", "DecodeDone", "Evicted"} {
		if !names[want] {
			t.Fatalf("a events %v missing %s", names, want)
		}
	}
	if b.Err != "boom" {
		t.Fatalf("b.Err = %q", b.Err)
	}
	// MemoryHighWater has no node: it lands on the root.
	if len(root.Events) != 1 || root.Events[0].Name != "MemoryHighWater" {
		t.Fatalf("root events: %+v", root.Events)
	}
	if c.NodeSpanCount() != 2 {
		t.Fatalf("NodeSpanCount = %d", c.NodeSpanCount())
	}
	if !root.End.After(root.Start) && root.End != root.Start {
		t.Fatal("root not closed")
	}
}

func TestCollectorVirtualClock(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewCollector(CollectorConfig{Virtual: true, Start: base, VirtualBase: base})
	// Simulator events carry absolute virtual-clock offsets in Elapsed.
	c.OnEvent(obs.Event{Kind: obs.NodeStart, Node: "a", Elapsed: 1 * time.Second})
	c.OnEvent(obs.Event{Kind: obs.NodeDone, Node: "a", Elapsed: 4 * time.Second})
	c.OnEvent(obs.Event{Kind: obs.NodeStart, Node: "b", Elapsed: 4 * time.Second})
	c.OnEvent(obs.Event{Kind: obs.NodeDone, Node: "b", Elapsed: 9 * time.Second})
	c.Finish(time.Time{}, "")
	spans := c.Spans()
	a := spanByName(t, spans, "node a")
	if a.Start != base.Add(1*time.Second) || a.End != base.Add(4*time.Second) {
		t.Fatalf("a bounds %v..%v", a.Start, a.End)
	}
	// Zero Finish end in virtual mode = latest node end.
	if spans[0].End != base.Add(9*time.Second) {
		t.Fatalf("root end %v, want vclock 9s", spans[0].End)
	}
	if spans[0].Duration() != 9*time.Second {
		t.Fatalf("root duration %v", spans[0].Duration())
	}
}

func TestCollectorParentContextAndChildSpan(t *testing.T) {
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	start := time.Now()
	c := NewCollector(CollectorConfig{Parent: remote, Start: start})
	if c.Context().TraceID != remote.TraceID {
		t.Fatal("remote trace ID not inherited")
	}
	c.AddChildSpan("admission", start, start.Add(2*time.Millisecond), Str("sc.tenant", "t1"))
	c.Finish(time.Time{}, "capacity")
	spans := c.Spans()
	if spans[0].Parent != remote.SpanID {
		t.Fatal("root must parent under the remote span")
	}
	if spans[0].Err != "capacity" {
		t.Fatalf("root.Err = %q", spans[0].Err)
	}
	adm := spanByName(t, spans, "admission")
	if adm.Parent != spans[0].SpanID || adm.StrAttr("sc.tenant") != "t1" {
		t.Fatalf("admission span: %+v", adm)
	}
	if adm.Duration() != 2*time.Millisecond {
		t.Fatalf("admission duration %v", adm.Duration())
	}
}

func TestCollectorFinishClosesOpenSpansAndIsIdempotent(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	c.OnEvent(obs.Event{Kind: obs.NodeStart, Node: "a"})
	end := time.Now().Add(time.Second)
	c.Finish(end, "canceled")
	c.Finish(end.Add(time.Hour), "second call ignored")
	if !c.Finished() {
		t.Fatal("Finished() = false")
	}
	spans := c.Spans()
	if spans[0].Err != "canceled" || !spans[0].End.Equal(end) {
		t.Fatalf("root: err=%q end=%v", spans[0].Err, spans[0].End)
	}
	a := spanByName(t, spans, "node a")
	if !a.End.Equal(end) {
		t.Fatalf("open span must close at Finish: %v", a.End)
	}
	// Events after Finish are dropped.
	c.OnEvent(obs.Event{Kind: obs.NodeStart, Node: "late"})
	if n := len(c.Spans()); n != 2 {
		t.Fatalf("%d spans after post-finish event", n)
	}
}

func TestCollectorProfileAttrs(t *testing.T) {
	c := NewCollector(CollectorConfig{Profile: true})
	// Allocate measurably between start and finish.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	_ = sink
	c.Finish(time.Time{}, "")
	root := c.Spans()[0]
	if a, ok := root.Attr("runtime.heap_alloc_bytes"); !ok || a.Int <= 0 {
		t.Fatalf("heap_alloc_bytes: %+v ok=%v", a, ok)
	}
	if a, ok := root.Attr("runtime.goroutine_peak"); !ok || a.Int < 1 {
		t.Fatalf("goroutine_peak: %+v ok=%v", a, ok)
	}
	if _, ok := root.Attr("runtime.gc_pause_seconds"); !ok {
		t.Fatal("gc_pause_seconds missing")
	}
	if _, ok := root.Attr("runtime.gc_count"); !ok {
		t.Fatal("gc_count missing")
	}
}

func TestCollectorConcurrentEmitters(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				node := string(rune('a' + g))
				c.OnEvent(obs.Event{Kind: obs.NodeStart, Node: node})
				c.OnEvent(obs.Event{Kind: obs.KernelDone, Node: node, Lowered: 1})
				c.OnEvent(obs.Event{Kind: obs.NodeDone, Node: node, Elapsed: time.Microsecond})
			}
		}(g)
	}
	wg.Wait()
	c.Finish(time.Time{}, "")
	if got := c.NodeSpanCount(); got != 8*50 {
		t.Fatalf("NodeSpanCount = %d, want 400", got)
	}
}

// The disabled-telemetry hot path must stay allocation-free: a nil
// observer chain is a single nil check, and the WithRun stamper passes the
// event through by value.
func TestDisabledHotPathZeroAllocs(t *testing.T) {
	e := obs.Event{Kind: obs.NodeDone, Node: "a", Bytes: 1 << 20, Elapsed: time.Millisecond}
	if n := testing.AllocsPerRun(1000, func() {
		obs.Emit(nil, e)
	}); n != 0 {
		t.Fatalf("nil-observer emit allocates %.1f/op", n)
	}
	if o := obs.WithRun("run-000001", nil); o != nil {
		t.Fatal("WithRun(nil) must stay nil")
	}
	stamped := obs.WithRun("run-000001", obs.Func(func(obs.Event) {}))
	if n := testing.AllocsPerRun(1000, func() {
		stamped.OnEvent(e)
	}); n != 0 {
		t.Fatalf("WithRun stamper allocates %.1f/op", n)
	}
}

func BenchmarkDisabledEmit(b *testing.B) {
	e := obs.Event{Kind: obs.NodeDone, Node: "a", Bytes: 1 << 20, Elapsed: time.Millisecond}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obs.Emit(nil, e)
	}
}

func BenchmarkWithRunStamp(b *testing.B) {
	e := obs.Event{Kind: obs.NodeDone, Node: "a", Bytes: 1 << 20, Elapsed: time.Millisecond}
	o := obs.WithRun("run-000001", obs.Func(func(obs.Event) {}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.OnEvent(e)
	}
}
