package telemetry

import (
	"math"
	"testing"
	"time"

	"github.com/shortcircuit-db/sc/internal/obs"
)

// buildTrace assembles a synthetic completed trace: root spanning
// [0, wall), one node span per entry with explicit offsets.
func buildTrace(wall float64, nodes map[string][2]float64) []Span {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	trace := NewTraceID()
	root := Span{
		TraceID: trace, SpanID: NewSpanID(), Name: "refresh", Kind: KindServer,
		Start: base, End: base.Add(time.Duration(wall * float64(time.Second))),
		Attrs: []Attr{Str("sc.run_id", "run-000009")},
	}
	spans := []Span{root}
	for name, b := range nodes {
		spans = append(spans, Span{
			TraceID: trace, SpanID: NewSpanID(), Parent: root.SpanID,
			Name: "node " + name, Kind: KindInternal,
			Start: base.Add(time.Duration(b[0] * float64(time.Second))),
			End:   base.Add(time.Duration(b[1] * float64(time.Second))),
			Attrs: []Attr{Str(AttrNode, name)},
		})
	}
	return spans
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCriticalPathDiamond(t *testing.T) {
	// a -> {b, c} -> d. b is slow (the blocking branch); c is fast.
	// Timeline: a [0.1, 1.1), b [1.1, 4.1), c [1.1, 1.6), d [4.1, 5.1);
	// root wall 5.3s (trailing background materialization).
	spans := buildTrace(5.3, map[string][2]float64{
		"a": {0.1, 1.1},
		"b": {1.1, 4.1},
		"c": {1.1, 1.6},
		"d": {4.1, 5.1},
	})
	parents := map[string][]string{
		"b": {"a"}, "c": {"a"}, "d": {"b", "c"},
	}
	rep := CriticalPath(spans, parents)
	if rep.RunID != "run-000009" {
		t.Fatalf("RunID = %q", rep.RunID)
	}
	want := []string{"a", "b", "d"}
	if len(rep.Chain) != len(want) {
		t.Fatalf("chain %v, want %v", rep.Chain, want)
	}
	for i := range want {
		if rep.Chain[i] != want[i] {
			t.Fatalf("chain %v, want %v", rep.Chain, want)
		}
	}
	// Chain telescopes to d's end offset: 5.1s.
	if !approx(rep.ChainSeconds, 5.1) {
		t.Fatalf("ChainSeconds = %v", rep.ChainSeconds)
	}
	if !approx(rep.WallSeconds, 5.3) || !approx(rep.Coverage, 5.1/5.3) {
		t.Fatalf("wall %v coverage %v", rep.WallSeconds, rep.Coverage)
	}
	byName := map[string]CritNode{}
	for _, n := range rep.Nodes {
		byName[n.Node] = n
	}
	// a: source node — wait is root start to a start (queue/admission).
	if n := byName["a"]; !approx(n.WaitSeconds, 0.1) || !approx(n.SelfSeconds, 1.0) || !n.Critical {
		t.Fatalf("a: %+v", n)
	}
	// d waited on b (latest-ending parent), not c: 4.1 - 4.1 = 0.
	if n := byName["d"]; !approx(n.WaitSeconds, 0) || !n.Critical {
		t.Fatalf("d: %+v", n)
	}
	if n := byName["c"]; n.Critical {
		t.Fatalf("c must be off the critical path: %+v", n)
	}
	// Nodes sorted by start.
	if rep.Nodes[0].Node != "a" || rep.Nodes[len(rep.Nodes)-1].Node != "d" {
		t.Fatalf("node order: %+v", rep.Nodes)
	}
}

func TestCriticalPathSchedulingWait(t *testing.T) {
	// b's parent a ends at 1.0 but b starts at 2.5 (worker contention):
	// the gap is wait, not self time.
	spans := buildTrace(4.0, map[string][2]float64{
		"a": {0.0, 1.0},
		"b": {2.5, 4.0},
	})
	rep := CriticalPath(spans, map[string][]string{"b": {"a"}})
	var b CritNode
	for _, n := range rep.Nodes {
		if n.Node == "b" {
			b = n
		}
	}
	if !approx(b.WaitSeconds, 1.5) || !approx(b.SelfSeconds, 1.5) {
		t.Fatalf("b decomposition: %+v", b)
	}
	if !approx(rep.ChainSeconds, 4.0) || !approx(rep.Coverage, 1.0) {
		t.Fatalf("chain %v coverage %v", rep.ChainSeconds, rep.Coverage)
	}
}

func TestCriticalPathUnexecutedParent(t *testing.T) {
	// b depends on a cached MV "a" that produced no span this run: b is
	// treated as a source (wait measured from root start) and the walk
	// terminates cleanly.
	spans := buildTrace(2.0, map[string][2]float64{
		"b": {0.5, 2.0},
	})
	rep := CriticalPath(spans, map[string][]string{"b": {"a"}})
	if len(rep.Chain) != 1 || rep.Chain[0] != "b" {
		t.Fatalf("chain %v", rep.Chain)
	}
	if !approx(rep.Nodes[0].WaitSeconds, 0.5) {
		t.Fatalf("b wait: %+v", rep.Nodes[0])
	}
}

func TestCriticalPathIgnoresGatewaySpans(t *testing.T) {
	spans := buildTrace(1.0, map[string][2]float64{"a": {0.2, 1.0}})
	// An admission span without AttrNode must not enter the DAG walk.
	base := spans[0].Start
	spans = append(spans, Span{
		TraceID: spans[0].TraceID, SpanID: NewSpanID(), Parent: spans[0].SpanID,
		Name: "admission", Kind: KindInternal,
		Start: base, End: base.Add(200 * time.Millisecond),
	})
	rep := CriticalPath(spans, nil)
	if len(rep.Nodes) != 1 || rep.Nodes[0].Node != "a" {
		t.Fatalf("nodes: %+v", rep.Nodes)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	if rep := CriticalPath(nil, nil); len(rep.Chain) != 0 || rep.WallSeconds != 0 {
		t.Fatalf("empty trace: %+v", rep)
	}
	spans := buildTrace(1.0, nil)
	if rep := CriticalPath(spans, nil); len(rep.Chain) != 0 || !approx(rep.WallSeconds, 1.0) {
		t.Fatalf("root-only trace: %+v", rep)
	}
}

// eventAt builds a simulator-style event: Elapsed is the absolute virtual
// clock at emission.
func eventAt(node string, start bool, at time.Duration) obs.Event {
	kind := obs.NodeDone
	if start {
		kind = obs.NodeStart
	}
	return obs.Event{Kind: kind, Node: node, Elapsed: at}
}

func TestCriticalPathCollectorEndToEnd(t *testing.T) {
	// Drive a collector with a virtual-clock event sequence and check the
	// wall-time accounting closes within the 10% acceptance bound (exact,
	// here, since the clock is synthetic).
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewCollector(CollectorConfig{RunID: "run-000033", Virtual: true, Start: base, VirtualBase: base})
	emitNode := func(name string, start, end time.Duration) {
		c.OnEvent(eventAt(name, true, start))
		c.OnEvent(eventAt(name, false, end))
	}
	emitNode("src", 0, 2*time.Second)
	emitNode("mid", 2*time.Second, 5*time.Second)
	emitNode("out", 5*time.Second, 6*time.Second)
	c.Finish(time.Time{}, "")
	rep := CriticalPath(c.Spans(), map[string][]string{
		"mid": {"src"}, "out": {"mid"},
	})
	if len(rep.Chain) != 3 {
		t.Fatalf("chain %v", rep.Chain)
	}
	if rep.Coverage < 0.9 {
		t.Fatalf("coverage %v < 0.9: chain %vs of wall %vs", rep.Coverage, rep.ChainSeconds, rep.WallSeconds)
	}
}
