package telemetry

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// FileExporter writes each trace as one OTLP/HTTP JSON payload per line
// (NDJSON of ExportTraceServiceRequest objects) — the same bytes an OTLP
// collector would receive, replayable with curl. It is synchronous and
// mutex-serialized: tests and the CI smoke read the file immediately after
// a run finishes, so there is no queue to race against.
type FileExporter struct {
	mu      sync.Mutex
	w       io.Writer
	c       io.Closer // nil for stdout/stderr
	service string
	err     error
}

// NewFileExporter opens path for appending; "-" means stdout.
func NewFileExporter(path, service string) (*FileExporter, error) {
	if service == "" {
		service = "sc"
	}
	if path == "-" {
		return &FileExporter{w: os.Stdout, service: service}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open trace file: %w", err)
	}
	return &FileExporter{w: f, c: f, service: service}, nil
}

// NewWriterExporter wraps an arbitrary writer (tests).
func NewWriterExporter(w io.Writer, service string) *FileExporter {
	if service == "" {
		service = "sc"
	}
	return &FileExporter{w: w, service: service}
}

// Export implements Exporter.
func (f *FileExporter) Export(spans []Span) {
	if len(spans) == 0 {
		return
	}
	line := MarshalOTLP(f.service, [][]Span{spans})
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return
	}
	if _, err := f.w.Write(append(line, '\n')); err != nil {
		f.err = err
	}
}

// Err reports the first write failure, if any.
func (f *FileExporter) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Close implements Exporter.
func (f *FileExporter) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.c != nil {
		return f.c.Close()
	}
	return nil
}
