// Package telemetry is S/C's tracing and profiling subsystem, layered on
// the obs event stream. A Collector assembles one refresh run's events into
// a trace: a root span for the run, one child span per executed node
// (NodeStart/NodeDone), with encode/decode/kernel/eviction observations
// attached as span events. Traces export over OTLP/HTTP JSON (hand-rolled,
// no SDK dependency) or to a file/stdout for tests, and a pure
// critical-path analysis over a completed trace reports where the run's
// wall time actually went — per-node self time vs wait time, and the
// longest blocking chain through the DAG.
package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"time"
)

// TraceID is a W3C/OTLP 16-byte trace identifier.
type TraceID [16]byte

// SpanID is a W3C/OTLP 8-byte span identifier.
type SpanID [8]byte

// IsValid reports whether the ID is non-zero.
func (t TraceID) IsValid() bool { return t != TraceID{} }

// IsValid reports whether the ID is non-zero.
func (s SpanID) IsValid() bool { return s != SpanID{} }

// String returns the lowercase hex form (32 chars).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the lowercase hex form (16 chars).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for !t.IsValid() {
		_, _ = rand.Read(t[:])
	}
	return t
}

// NewSpanID returns a random non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for !s.IsValid() {
		_, _ = rand.Read(s[:])
	}
	return s
}

// SpanContext identifies a position in a distributed trace: the trace and
// the span a child should parent under.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// IsValid reports whether both IDs are non-zero.
func (sc SpanContext) IsValid() bool { return sc.TraceID.IsValid() && sc.SpanID.IsValid() }

// Traceparent renders the context as a W3C traceparent header value.
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return fmt.Sprintf("00-%s-%s-%s", sc.TraceID, sc.SpanID, flags)
}

// ParseTraceparent parses a W3C traceparent header value
// (version-traceid-spanid-flags). It accepts any known-length version
// except the reserved ff, and rejects all-zero IDs, per the spec.
func ParseTraceparent(h string) (SpanContext, bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	ver, traceHex, spanHex, flagsHex := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || len(traceHex) != 32 || len(spanHex) != 16 || len(flagsHex) != 2 {
		return SpanContext{}, false
	}
	if strings.EqualFold(ver, "ff") {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(make([]byte, 1), []byte(ver)); err != nil {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(strings.ToLower(traceHex))); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(strings.ToLower(spanHex))); err != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(strings.ToLower(flagsHex))); err != nil {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&0x01 != 0
	if !sc.IsValid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Kind classifies a span per OTLP numbering.
type Kind int8

// Span kinds (OTLP SpanKind values).
const (
	KindInternal Kind = 1
	KindServer   Kind = 2
)

// AttrType discriminates Attr values.
type AttrType int8

// Attribute value types.
const (
	AttrString AttrType = iota
	AttrInt
	AttrFloat
	AttrBool
)

// Attr is one typed key/value attribute on a span or span event.
type Attr struct {
	Key  string
	Type AttrType
	Str  string
	Int  int64
	Flt  float64
	Bool bool
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Type: AttrString, Str: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Type: AttrInt, Int: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Type: AttrFloat, Flt: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Type: AttrBool, Bool: v} }

// Value returns the attribute's value as an any, for JSON summaries.
func (a Attr) Value() any {
	switch a.Type {
	case AttrInt:
		return a.Int
	case AttrFloat:
		return a.Flt
	case AttrBool:
		return a.Bool
	}
	return a.Str
}

// SpanEvent is a point-in-time observation attached to a span (an
// EncodeDone, DecodeDone, KernelDone or Evicted obs event).
type SpanEvent struct {
	Name  string
	Time  time.Time
	Attrs []Attr
}

// Link connects a span to a causally related span it does not parent
// under — in S/C, a node whose input read was served from cache links to
// the span that produced (or last encoded) that output, in this run or a
// previous one. Attributes carry the reason (sc.link.reason) and the
// producing node (sc.node).
type Link struct {
	TraceID TraceID
	SpanID  SpanID
	Attrs   []Attr
}

// Span is one completed (or still-open) trace span.
type Span struct {
	TraceID TraceID
	SpanID  SpanID
	Parent  SpanID // zero for a trace root
	Name    string
	Kind    Kind
	Start   time.Time
	End     time.Time
	Attrs   []Attr
	Events  []SpanEvent
	Links   []Link
	// Err carries the failure message; empty means STATUS_CODE_OK.
	Err string
}

// Duration returns End - Start (zero for open spans).
func (s *Span) Duration() time.Duration {
	if s.End.Before(s.Start) {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Attr returns the named attribute's value and whether it exists.
func (s *Span) Attr(key string) (Attr, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// FloatAttr returns a float-typed attribute's value, or 0.
func (s *Span) FloatAttr(key string) float64 {
	if a, ok := s.Attr(key); ok && a.Type == AttrFloat {
		return a.Flt
	}
	return 0
}

// StrAttr returns a string-typed attribute's value, or "".
func (s *Span) StrAttr(key string) string {
	if a, ok := s.Attr(key); ok && a.Type == AttrString {
		return a.Str
	}
	return ""
}
