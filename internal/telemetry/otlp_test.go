package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func sampleTrace() []Span {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	trace := NewTraceID()
	root := Span{
		TraceID: trace, SpanID: NewSpanID(), Name: "refresh", Kind: KindServer,
		Start: base, End: base.Add(time.Second),
		Attrs: []Attr{Str("sc.run_id", "run-000001")},
	}
	child := Span{
		TraceID: trace, SpanID: NewSpanID(), Parent: root.SpanID,
		Name: "node a", Kind: KindInternal,
		Start: base.Add(100 * time.Millisecond), End: base.Add(900 * time.Millisecond),
		Attrs: []Attr{Str(AttrNode, "a"), Int("sc.output_bytes", 4096), Float("sc.ratio", 2.5), Bool("sc.flagged", true)},
		Events: []SpanEvent{{
			Name: "EncodeDone", Time: base.Add(850 * time.Millisecond),
			Attrs: []Attr{Int("sc.encoded_bytes", 1638)},
		}},
		Err: "",
	}
	return []Span{root, child}
}

func TestMarshalOTLPShape(t *testing.T) {
	spans := sampleTrace()
	spans[1].Err = "boom"
	payload := MarshalOTLP("sc-test", [][]Span{spans})
	var doc map[string]any
	if err := json.Unmarshal(payload, &doc); err != nil {
		t.Fatalf("payload not JSON: %v", err)
	}
	rs := doc["resourceSpans"].([]any)[0].(map[string]any)
	resAttrs := rs["resource"].(map[string]any)["attributes"].([]any)
	svc := resAttrs[0].(map[string]any)
	if svc["key"] != "service.name" || svc["value"].(map[string]any)["stringValue"] != "sc-test" {
		t.Fatalf("resource attrs: %+v", resAttrs)
	}
	ss := rs["scopeSpans"].([]any)[0].(map[string]any)
	otlpSpans := ss["spans"].([]any)
	if len(otlpSpans) != 2 {
		t.Fatalf("%d spans", len(otlpSpans))
	}
	rootJSON := otlpSpans[0].(map[string]any)
	childJSON := otlpSpans[1].(map[string]any)
	if len(rootJSON["traceId"].(string)) != 32 || len(rootJSON["spanId"].(string)) != 16 {
		t.Fatalf("ID hex lengths: %+v", rootJSON)
	}
	if _, has := rootJSON["parentSpanId"]; has {
		t.Fatal("root must omit parentSpanId")
	}
	if childJSON["parentSpanId"] != rootJSON["spanId"] {
		t.Fatal("child parentSpanId mismatch")
	}
	if rootJSON["kind"].(float64) != 2 || childJSON["kind"].(float64) != 1 {
		t.Fatalf("kinds: root %v child %v", rootJSON["kind"], childJSON["kind"])
	}
	// Timestamps are unix-nano decimal strings per proto3 JSON mapping.
	startStr := rootJSON["startTimeUnixNano"].(string)
	if startStr != "1767225600000000000" {
		t.Fatalf("startTimeUnixNano = %q", startStr)
	}
	// Typed attribute encoding: int64 as string, double and bool native.
	attrs := childJSON["attributes"].([]any)
	byKey := map[string]map[string]any{}
	for _, a := range attrs {
		kv := a.(map[string]any)
		byKey[kv["key"].(string)] = kv["value"].(map[string]any)
	}
	if byKey["sc.output_bytes"]["intValue"] != "4096" {
		t.Fatalf("intValue: %+v", byKey["sc.output_bytes"])
	}
	if byKey["sc.ratio"]["doubleValue"].(float64) != 2.5 {
		t.Fatalf("doubleValue: %+v", byKey["sc.ratio"])
	}
	if byKey["sc.flagged"]["boolValue"].(bool) != true {
		t.Fatalf("boolValue: %+v", byKey["sc.flagged"])
	}
	// Span events and error status.
	evs := childJSON["events"].([]any)
	if len(evs) != 1 || evs[0].(map[string]any)["name"] != "EncodeDone" {
		t.Fatalf("events: %+v", evs)
	}
	status := childJSON["status"].(map[string]any)
	if status["code"].(float64) != 2 || status["message"] != "boom" {
		t.Fatalf("status: %+v", status)
	}
	if rootJSON["status"].(map[string]any)["code"].(float64) != 1 {
		t.Fatalf("root status: %+v", rootJSON["status"])
	}
}

func TestOTLPExporterDelivers(t *testing.T) {
	var mu sync.Mutex
	var bodies [][]byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %q", ct)
		}
		if r.Header.Get("X-Auth") != "secret" {
			t.Errorf("custom header missing")
		}
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		mu.Lock()
		bodies = append(bodies, buf.Bytes())
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	e, err := NewOTLP(OTLPConfig{
		Endpoint: srv.URL,
		Headers:  map[string]string{"X-Auth": "secret"},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Export(sampleTrace())
	e.Export(sampleTrace())
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Sent() != 2 || e.Dropped() != 0 {
		t.Fatalf("sent %d dropped %d", e.Sent(), e.Dropped())
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, b := range bodies {
		var doc otlpExportRequest
		if err := json.Unmarshal(b, &doc); err != nil {
			t.Fatalf("body not an export request: %v", err)
		}
		total += len(doc.ResourceSpans[0].ScopeSpans[0].Spans)
	}
	if total != 4 {
		t.Fatalf("%d spans delivered, want 4", total)
	}
}

func TestOTLPExporterRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	e, err := NewOTLP(OTLPConfig{Endpoint: srv.URL, RetryBase: time.Millisecond, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	e.Export(sampleTrace())
	e.Close()
	if calls.Load() != 3 {
		t.Fatalf("%d attempts, want 3 (two 503s then success)", calls.Load())
	}
	if e.Sent() != 1 || e.Dropped() != 0 {
		t.Fatalf("sent %d dropped %d", e.Sent(), e.Dropped())
	}
}

func TestOTLPExporterDropsAfterRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	e, err := NewOTLP(OTLPConfig{Endpoint: srv.URL, RetryBase: time.Millisecond, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.Export(sampleTrace())
	e.Close()
	if calls.Load() != 3 {
		t.Fatalf("%d attempts, want 1 + 2 retries", calls.Load())
	}
	if e.Dropped() != 1 || e.Sent() != 0 {
		t.Fatalf("sent %d dropped %d", e.Sent(), e.Dropped())
	}
}

func TestOTLPExporterNonRetriableDropsImmediately(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()
	e, err := NewOTLP(OTLPConfig{Endpoint: srv.URL, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e.Export(sampleTrace())
	e.Close()
	if calls.Load() != 1 {
		t.Fatalf("%d attempts, want 1 (400 is not retriable)", calls.Load())
	}
	if e.Dropped() != 1 {
		t.Fatalf("dropped %d", e.Dropped())
	}
}

func TestOTLPExporterQueueFullDrops(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	e, err := NewOTLP(OTLPConfig{Endpoint: srv.URL, QueueSize: 2, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One trace occupies the worker (blocked on the server); two fill the
	// queue; the rest must drop without blocking.
	for i := 0; i < 8; i++ {
		e.Export(sampleTrace())
	}
	deadline := time.After(2 * time.Second)
	for e.Dropped() < 5 {
		select {
		case <-deadline:
			t.Fatalf("dropped %d, want >= 5", e.Dropped())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	e.Close()
	if e.Sent()+e.Dropped() != 8 {
		t.Fatalf("sent %d + dropped %d != 8", e.Sent(), e.Dropped())
	}
}

func TestNewOTLPRequiresEndpoint(t *testing.T) {
	if _, err := NewOTLP(OTLPConfig{}); err == nil {
		t.Fatal("empty endpoint accepted")
	}
}

func TestFileExporterNDJSON(t *testing.T) {
	var buf bytes.Buffer
	e := NewWriterExporter(&buf, "sc-test")
	e.Export(sampleTrace())
	e.Export(sampleTrace())
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var doc otlpExportRequest
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("line not an OTLP payload: %v", err)
		}
		spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
		if len(spans) != 2 || spans[0].Name != "refresh" {
			t.Fatalf("spans: %+v", spans)
		}
	}
}

func TestFileExporterFile(t *testing.T) {
	path := t.TempDir() + "/trace.ndjson"
	e, err := NewFileExporter(path, "")
	if err != nil {
		t.Fatal(err)
	}
	e.Export(sampleTrace())
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Append mode: a second exporter adds a second line.
	e2, err := NewFileExporter(path, "")
	if err != nil {
		t.Fatal(err)
	}
	e2.Export(sampleTrace())
	e2.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Fatalf("%d lines in trace file", n)
	}
	if !strings.Contains(string(data), `"service.name"`) {
		t.Fatal("resource attrs missing from file payload")
	}
}
